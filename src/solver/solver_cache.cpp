#include "solver/solver_cache.h"

#include <sstream>
#include <stdexcept>
#include <utility>

namespace compsynth::solver {

namespace {

[[noreturn]] void bad(const char* why) {
  throw std::invalid_argument(std::string("SolverCache::restore_state: ") +
                              why);
}

}  // namespace

SolverCache::SolverCache(std::size_t max_entries)
    : max_entries_(max_entries == 0 ? 1 : max_entries) {}

std::optional<std::string> SolverCache::lookup(const std::string& key) {
  const util::MutexLock lock(mutex_);
  const auto it = entries_.find(key);
  if (it == entries_.end()) {
    ++stats_.misses;
    return std::nullopt;
  }
  ++stats_.hits;
  return it->second;
}

void SolverCache::store(const std::string& key, std::string value) {
  const util::MutexLock lock(mutex_);
  ++stats_.stores;
  const auto it = entries_.find(key);
  if (it != entries_.end()) {
    it->second = std::move(value);
    return;
  }
  while (entries_.size() >= max_entries_) {
    entries_.erase(order_.front());
    order_.pop_front();
    ++stats_.evictions;
  }
  order_.push_back(key);
  entries_.emplace(key, std::move(value));
}

std::size_t SolverCache::size() const {
  const util::MutexLock lock(mutex_);
  return entries_.size();
}

SolverCache::Stats SolverCache::stats() const {
  const util::MutexLock lock(mutex_);
  return stats_;
}

std::uint64_t SolverCache::key_hash(const std::string& key) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : key) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

std::string SolverCache::save_state() const {
  const util::MutexLock lock(mutex_);
  std::ostringstream os;
  os << "solvercache 1\n"
     << "stats " << stats_.hits << ' ' << stats_.misses << ' ' << stats_.stores
     << ' ' << stats_.evictions << '\n'
     << "entries " << order_.size() << '\n';
  for (const std::string& key : order_) {
    const std::string& value = entries_.at(key);
    os << "entry " << key.size() << ' ' << value.size() << '\n'
       << key << value << '\n';
  }
  return os.str();
}

void SolverCache::restore_state(const std::string& state) {
  std::istringstream in(state);
  std::string tag;
  int version = 0;
  if (!(in >> tag >> version) || tag != "solvercache") bad("malformed header");
  if (version != 1) bad("unsupported version");
  Stats stats;
  if (!(in >> tag >> stats.hits >> stats.misses >> stats.stores >>
        stats.evictions) ||
      tag != "stats") {
    bad("malformed stats line");
  }
  std::size_t count = 0;
  if (!(in >> tag >> count) || tag != "entries") bad("malformed entry count");
  if (count > max_entries_) bad("more entries than this cache can hold");

  std::unordered_map<std::string, std::string> entries;
  std::deque<std::string> order;
  for (std::size_t i = 0; i < count; ++i) {
    std::size_t key_bytes = 0, value_bytes = 0;
    if (!(in >> tag >> key_bytes >> value_bytes) || tag != "entry") {
      bad("malformed entry header");
    }
    in.ignore();  // the newline ending the header
    std::string key(key_bytes, '\0');
    std::string value(value_bytes, '\0');
    if (!in.read(key.data(), static_cast<std::streamsize>(key_bytes)) ||
        !in.read(value.data(), static_cast<std::streamsize>(value_bytes))) {
      bad("truncated entry body");
    }
    if (in.get() != '\n') bad("entry body is not newline-terminated");
    if (!entries.emplace(key, std::move(value)).second) {
      bad("duplicate key");
    }
    order.push_back(std::move(key));
  }

  const util::MutexLock lock(mutex_);
  entries_ = std::move(entries);
  order_ = std::move(order);
  stats_ = stats;
}

}  // namespace compsynth::solver
