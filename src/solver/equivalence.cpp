#include "solver/equivalence.h"

#include <z3++.h>

#include <string>

#include "solver/z3_encoder.h"

namespace compsynth::solver {

std::optional<DistinguishingPair> find_ranking_difference(
    const sketch::Sketch& sketch, const sketch::HoleAssignment& a,
    const sketch::HoleAssignment& b, const FinderConfig& config) {
  z3::context ctx;
  z3::solver solver(ctx);
  if (config.timeout_ms > 0) {
    z3::params p(ctx);
    p.set("timeout", config.timeout_ms);
    solver.set(p);
  }

  auto hole_numerals = [&](const sketch::HoleAssignment& assignment) {
    std::vector<z3::expr> out;
    for (const double v : sketch.hole_values(assignment)) {
      out.push_back(real_of_double(ctx, v));
    }
    return out;
  };
  const std::vector<z3::expr> ha = hole_numerals(a);
  const std::vector<z3::expr> hb = hole_numerals(b);

  auto make_scenario_vars = [&](const char* tag) {
    std::vector<z3::expr> vars;
    for (const sketch::MetricSpec& m : sketch.metrics()) {
      z3::expr v = ctx.real_const((std::string(tag) + "_" + m.name).c_str());
      solver.add(v >= real_of_double(ctx, m.lo));
      solver.add(v <= real_of_double(ctx, m.hi));
      vars.push_back(std::move(v));
    }
    return vars;
  };
  const std::vector<z3::expr> s1 = make_scenario_vars("s1");
  const std::vector<z3::expr> s2 = make_scenario_vars("s2");

  // Both orientations of the disagreement are covered by the existential
  // choice of (s1, s2): swapping the pair swaps the roles of a and b.
  const z3::expr margin = real_of_double(ctx, config.distinguish_margin);
  const z3::expr fa1 = encode_numeric(ctx, *sketch.body(), s1, ha);
  const z3::expr fa2 = encode_numeric(ctx, *sketch.body(), s2, ha);
  const z3::expr fb1 = encode_numeric(ctx, *sketch.body(), s1, hb);
  const z3::expr fb2 = encode_numeric(ctx, *sketch.body(), s2, hb);
  solver.add(fa1 >= fa2 + margin);
  solver.add(fb2 >= fb1 + margin);

  z3::check_result r = solver.check();
  if (r == z3::unknown) {
    z3::solver nl = z3::tactic(ctx, "qfnra-nlsat").mk_solver();
    for (const z3::expr& assertion : solver.assertions()) nl.add(assertion);
    r = nl.check();
    if (r == z3::sat) solver = std::move(nl);
  }
  if (r != z3::sat) return std::nullopt;

  const z3::model model = solver.get_model();
  DistinguishingPair pair;
  for (const z3::expr& v : s1) pair.preferred_by_a.metrics.push_back(value_of(model, v));
  for (const z3::expr& v : s2) pair.preferred_by_b.metrics.push_back(value_of(model, v));
  return pair;
}

bool ranking_equivalent(const sketch::Sketch& sketch,
                        const sketch::HoleAssignment& a,
                        const sketch::HoleAssignment& b,
                        const FinderConfig& config) {
  return !find_ranking_difference(sketch, a, b, config).has_value();
}

}  // namespace compsynth::solver
