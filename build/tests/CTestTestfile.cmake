# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_util[1]_include.cmake")
include("/root/repo/build/tests/test_sketch[1]_include.cmake")
include("/root/repo/build/tests/test_smoke[1]_include.cmake")
include("/root/repo/build/tests/test_simplex[1]_include.cmake")
include("/root/repo/build/tests/test_te[1]_include.cmake")
include("/root/repo/build/tests/test_pref[1]_include.cmake")
include("/root/repo/build/tests/test_oracle[1]_include.cmake")
include("/root/repo/build/tests/test_solver[1]_include.cmake")
include("/root/repo/build/tests/test_abr[1]_include.cmake")
include("/root/repo/build/tests/test_homenet[1]_include.cmake")
include("/root/repo/build/tests/test_synth[1]_include.cmake")
include("/root/repo/build/tests/test_choice[1]_include.cmake")
include("/root/repo/build/tests/test_serialize[1]_include.cmake")
include("/root/repo/build/tests/test_te_synth[1]_include.cmake")
include("/root/repo/build/tests/test_abr_synth[1]_include.cmake")
include("/root/repo/build/tests/test_domain[1]_include.cmake")
include("/root/repo/build/tests/test_fuzz[1]_include.cmake")
include("/root/repo/build/tests/test_robustness[1]_include.cmake")
