// Randomized property tests over the whole sketch pipeline:
//   * random well-typed expression -> print -> parse -> print is a fixpoint;
//   * the reparsed tree evaluates identically;
//   * the Z3 encoding agrees with the interpreter at random points;
//   * random garbage never crashes the lexer/parser (it throws ParseError).
#include <gtest/gtest.h>

#include <z3++.h>

#include <cmath>
#include <string>

#include "sketch/eval.h"
#include "sketch/parser.h"
#include "sketch/printer.h"
#include "sketch/typecheck.h"
#include "solver/z3_encoder.h"
#include "util/rng.h"

namespace compsynth::sketch {
namespace {

// Random well-typed numeric/boolean expression generator. Division is only
// generated with a nonzero constant divisor so evaluation is total.
class ExprGen {
 public:
  ExprGen(util::Rng& rng, std::size_t metrics, std::size_t holes)
      : rng_(rng), metrics_(metrics), holes_(holes) {}

  ExprPtr numeric(int depth) {
    if (depth <= 0) return leaf();
    switch (rng_.uniform_int(0, 9)) {
      case 0:
      case 1:
        return leaf();
      case 2:
        return neg(numeric(depth - 1));
      case 3:
        return add(numeric(depth - 1), numeric(depth - 1));
      case 4:
        return sub(numeric(depth - 1), numeric(depth - 1));
      case 5:
        return mul(numeric(depth - 1), numeric(depth - 1));
      case 6:
        return binary(rng_.bernoulli(0.5) ? BinOp::kMin : BinOp::kMax,
                      numeric(depth - 1), numeric(depth - 1));
      case 7:
        return binary(BinOp::kDiv, numeric(depth - 1), nonzero_constant());
      case 8:
        return ite(boolean(depth - 1), numeric(depth - 1), numeric(depth - 1));
      default: {
        // A choice node selected by hole 0 (declared as grid(0,1,3)).
        if (holes_ == 0) return leaf();
        std::vector<ExprPtr> alts{numeric(depth - 1), numeric(depth - 1),
                                  numeric(depth - 1)};
        return choice(0, std::move(alts));
      }
    }
  }

  ExprPtr boolean(int depth) {
    if (depth <= 0) {
      return compare(random_cmp(), leaf(), leaf());
    }
    switch (rng_.uniform_int(0, 3)) {
      case 0:
        return compare(random_cmp(), numeric(depth - 1), numeric(depth - 1));
      case 1:
        return bool_binary(rng_.bernoulli(0.5) ? BoolOp::kAnd : BoolOp::kOr,
                           boolean(depth - 1), boolean(depth - 1));
      case 2:
        return logical_not(boolean(depth - 1));
      default:
        return bool_constant(rng_.bernoulli(0.5));
    }
  }

 private:
  ExprPtr leaf() {
    const auto kind = rng_.uniform_int(0, 2);
    if (kind == 0 && metrics_ > 0) return metric(rng_.index(metrics_));
    if (kind == 1 && holes_ > 0) return hole(rng_.index(holes_));
    // Quarter-grid constants keep printing/parsing exact.
    return constant(static_cast<double>(rng_.uniform_int(-20, 20)) / 4.0);
  }

  ExprPtr nonzero_constant() {
    const double v = static_cast<double>(rng_.uniform_int(1, 16)) / 4.0;
    return constant(rng_.bernoulli(0.5) ? v : -v);
  }

  CmpOp random_cmp() {
    switch (rng_.uniform_int(0, 5)) {
      case 0: return CmpOp::kLt;
      case 1: return CmpOp::kLe;
      case 2: return CmpOp::kGt;
      case 3: return CmpOp::kGe;
      case 4: return CmpOp::kEq;
      default: return CmpOp::kNe;
    }
  }

  util::Rng& rng_;
  std::size_t metrics_;
  std::size_t holes_;
};

Sketch random_sketch(util::Rng& rng) {
  std::vector<MetricSpec> metrics;
  const auto n_metrics = static_cast<std::size_t>(rng.uniform_int(1, 3));
  for (std::size_t i = 0; i < n_metrics; ++i) {
    metrics.push_back(MetricSpec{"m" + std::to_string(i), -10, 10});
  }
  std::vector<HoleSpec> holes;
  holes.push_back(HoleSpec{"sel", 0, 1, 3});  // choice selector
  holes.push_back(HoleSpec{"w", 0, 0.5, 9});
  ExprGen gen(rng, n_metrics, holes.size());
  return Sketch("fuzz", std::move(metrics), std::move(holes),
                gen.numeric(/*depth=*/4));
}

class SketchFuzz : public ::testing::TestWithParam<int> {};

TEST_P(SketchFuzz, PrintParseFixpointAndSemanticEquality) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 7919 + 3);
  const Sketch original = random_sketch(rng);

  const std::string once = print_sketch(original);
  const Sketch reparsed = parse_sketch(once);
  EXPECT_EQ(print_sketch(reparsed), once) << once;

  // Semantic equality at random points/assignments.
  for (int probe = 0; probe < 25; ++probe) {
    HoleAssignment a;
    for (const auto& h : original.holes()) {
      a.index.push_back(rng.uniform_int(0, h.count - 1));
    }
    std::vector<double> point;
    for (const auto& m : original.metrics()) {
      point.push_back(rng.uniform_real(m.lo, m.hi));
    }
    const double v1 = eval(original, a, point);
    const double v2 = eval(reparsed, a, point);
    if (std::isnan(v1)) {
      EXPECT_TRUE(std::isnan(v2));
    } else {
      EXPECT_DOUBLE_EQ(v1, v2) << once;
    }
  }
}

TEST_P(SketchFuzz, Z3EncodingMatchesInterpreter) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 104729 + 17);
  const Sketch sk = random_sketch(rng);

  HoleAssignment a;
  for (const auto& h : sk.holes()) a.index.push_back(rng.uniform_int(0, h.count - 1));
  std::vector<double> point;
  for (const auto& m : sk.metrics()) point.push_back(rng.uniform_real(m.lo, m.hi));

  const double expected = eval(sk, a, point);
  if (!std::isfinite(expected)) return;  // overflow from deep products: skip

  z3::context ctx;
  std::vector<z3::expr> hole_exprs;
  for (const double v : sk.hole_values(a)) {
    hole_exprs.push_back(solver::real_of_double(ctx, v));
  }
  const auto metric_exprs = solver::encode_scenario(ctx, point);
  z3::solver s(ctx);
  const z3::expr out = ctx.real_const("out");
  s.add(out == solver::encode_numeric(ctx, *sk.body(), metric_exprs, hole_exprs));
  ASSERT_EQ(s.check(), z3::sat);
  const double got = solver::value_of(s.get_model(), out);
  EXPECT_NEAR(got, expected, 1e-6 * std::max(1.0, std::abs(expected)))
      << print_sketch(sk);
}

INSTANTIATE_TEST_SUITE_P(Random, SketchFuzz, ::testing::Range(0, 40));

// --- Parser robustness: random garbage throws, never crashes ----------------

class ParserFuzz : public ::testing::TestWithParam<int> {};

TEST_P(ParserFuzz, GarbageInputsThrowCleanly) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 31337 + 1);
  static const char* kFragments[] = {
      "sketch", "hole", "grid", "if", "then", "else", "choose", "min", "max",
      "in", "(", ")", "{", "}", "[", "]", ",", ";", "+", "-", "*", "/", "&&",
      "||", "!", "<", "<=", ">=", "==", "!=", "x", "y", "foo", "0", "1", "2.5",
      "1e9", "true", "false", "#comment\n",
  };
  for (int round = 0; round < 20; ++round) {
    std::string input;
    const int len = static_cast<int>(rng.uniform_int(1, 40));
    for (int i = 0; i < len; ++i) {
      input += kFragments[rng.index(std::size(kFragments))];
      input += ' ';
    }
    try {
      const Sketch s = parse_sketch(input);
      // Extremely unlikely, but a valid sketch is also acceptable.
      EXPECT_FALSE(s.name().empty());
    } catch (const ParseError&) {
    } catch (const TypeError&) {
    } catch (const std::invalid_argument&) {
    }
  }
}

TEST_P(ParserFuzz, RandomBytesThrowCleanly) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 997 + 5);
  std::string input;
  const int len = static_cast<int>(rng.uniform_int(1, 200));
  for (int i = 0; i < len; ++i) {
    input += static_cast<char>(rng.uniform_int(1, 127));
  }
  try {
    parse_sketch(input);
  } catch (const ParseError&) {
  } catch (const TypeError&) {
  } catch (const std::invalid_argument&) {
  }
}

INSTANTIATE_TEST_SUITE_P(Random, ParserFuzz, ::testing::Range(0, 25));

}  // namespace
}  // namespace compsynth::sketch
