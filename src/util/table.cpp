#include "util/table.h"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace compsynth::util {

namespace {

bool needs_csv_quoting(const std::string& cell) {
  return cell.find_first_of(",\"\n") != std::string::npos;
}

std::string csv_escape(const std::string& cell) {
  if (!needs_csv_quoting(cell)) return cell;
  std::string out = "\"";
  for (char c : cell) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

}  // namespace

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

void Table::add_row(std::vector<std::string> cells) {
  cells.resize(header_.size());
  rows_.push_back(std::move(cells));
}

void Table::add_row_numeric(const std::string& label,
                            const std::vector<double>& values, int precision) {
  std::vector<std::string> cells;
  cells.reserve(values.size() + 1);
  cells.push_back(label);
  for (double v : values) cells.push_back(format_number(v, precision));
  add_row(std::move(cells));
}

std::string Table::to_string() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  std::ostringstream os;
  auto print_sep = [&] {
    os << '+';
    for (std::size_t w : widths) os << std::string(w + 2, '-') << '+';
    os << '\n';
  };
  auto print_row = [&](const std::vector<std::string>& row) {
    os << '|';
    for (std::size_t c = 0; c < widths.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string{};
      os << ' ' << cell << std::string(widths[c] - cell.size() + 1, ' ') << '|';
    }
    os << '\n';
  };

  print_sep();
  print_row(header_);
  print_sep();
  for (const auto& row : rows_) print_row(row);
  print_sep();
  return os.str();
}

std::string Table::to_csv() const {
  std::ostringstream os;
  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c > 0) os << ',';
      os << csv_escape(row[c]);
    }
    os << '\n';
  };
  print_row(header_);
  for (const auto& row : rows_) print_row(row);
  return os.str();
}

std::string format_number(double v, int precision) {
  const double rounded = std::round(v);
  if (std::abs(v - rounded) < 1e-9) {
    std::ostringstream os;
    os << static_cast<long long>(rounded);
    return os.str();
  }
  std::ostringstream os;
  os.precision(precision);
  os << std::fixed << v;
  return os.str();
}

}  // namespace compsynth::util
