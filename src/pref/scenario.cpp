#include "pref/scenario.h"

#include <sstream>

#include "util/table.h"

namespace compsynth::pref {

std::string to_string(const Scenario& s, const sketch::Sketch& context) {
  std::ostringstream os;
  os << '(';
  for (std::size_t i = 0; i < s.metrics.size(); ++i) {
    if (i > 0) os << ", ";
    const std::string name = i < context.metrics().size()
                                 ? context.metrics()[i].name
                                 : "m" + std::to_string(i);
    os << name << " = " << util::format_number(s.metrics[i], 3);
  }
  os << ')';
  return os.str();
}

bool in_range(const Scenario& s, const sketch::Sketch& context) {
  if (s.metrics.size() != context.metrics().size()) return false;
  for (std::size_t i = 0; i < s.metrics.size(); ++i) {
    const auto& m = context.metrics()[i];
    if (s.metrics[i] < m.lo || s.metrics[i] > m.hi) return false;
  }
  return true;
}

}  // namespace compsynth::pref
