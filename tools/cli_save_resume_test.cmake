# CTest script: run a budgeted session, save it, resume it to convergence.
set(SESSION "${WORKDIR}/session.prefs")
set(TARGET_EXPR "if throughput >= 2 && latency <= 60 then throughput - 2*throughput*latency + 1000 else throughput - 4*throughput*latency")

execute_process(
  COMMAND "${CLI}" "${SKETCH}" --backend grid --quiet --seed 5
          --max-iters 4 --save "${SESSION}" --target "${TARGET_EXPR}"
  RESULT_VARIABLE first_status)
# 3 = iteration budget exhausted (expected for the interrupted session).
if(NOT first_status EQUAL 3)
  message(FATAL_ERROR "budgeted run: expected exit 3, got ${first_status}")
endif()
if(NOT EXISTS "${SESSION}")
  message(FATAL_ERROR "session file was not written")
endif()

execute_process(
  COMMAND "${CLI}" "${SKETCH}" --backend grid --quiet --seed 6
          --resume "${SESSION}" --target "${TARGET_EXPR}"
  RESULT_VARIABLE second_status OUTPUT_VARIABLE out)
if(NOT second_status EQUAL 0)
  message(FATAL_ERROR "resumed run: expected convergence (0), got ${second_status}")
endif()
if(NOT out MATCHES "converged")
  message(FATAL_ERROR "resumed run did not report convergence: ${out}")
endif()
