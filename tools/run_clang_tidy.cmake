# Runs clang-tidy over every first-party translation unit recorded in the
# build's compile_commands.json. Invoked by the `lint_cxx` ctest:
#
#   cmake -DBUILD_DIR=<build> -DSOURCE_DIR=<repo> -P run_clang_tidy.cmake
#
# Outcomes: exit 0 clean, FATAL_ERROR on findings, or print "lint_cxx: SKIP"
# when clang-tidy / the compilation database is unavailable -- the ctest
# registration marks the test skipped via SKIP_REGULAR_EXPRESSION.

find_program(CLANG_TIDY NAMES clang-tidy clang-tidy-18 clang-tidy-17 clang-tidy-16)
if(NOT CLANG_TIDY)
  message(STATUS "lint_cxx: SKIP (clang-tidy not found on this toolchain)")
  return()
endif()

set(DB ${BUILD_DIR}/compile_commands.json)
if(NOT EXISTS ${DB})
  message(STATUS "lint_cxx: SKIP (no compile_commands.json in ${BUILD_DIR})")
  return()
endif()

# Lint first-party sources: src/, tools/ and bench/, not tests or third
# parties.
file(GLOB_RECURSE SOURCES
  ${SOURCE_DIR}/src/*.cpp
  ${SOURCE_DIR}/tools/*.cpp
  ${SOURCE_DIR}/bench/*.cpp)

set(FAILED 0)
foreach(src IN LISTS SOURCES)
  execute_process(
    COMMAND ${CLANG_TIDY} -p ${BUILD_DIR} --quiet ${src}
    RESULT_VARIABLE rc
    OUTPUT_VARIABLE out
    ERROR_VARIABLE err)
  if(NOT rc EQUAL 0)
    message(STATUS "clang-tidy findings in ${src}:\n${out}${err}")
    set(FAILED 1)
  endif()
endforeach()

if(FAILED)
  message(FATAL_ERROR "clang-tidy reported findings")
endif()
message(STATUS "clang-tidy: all first-party sources clean")
