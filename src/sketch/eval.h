// Concrete interpreter for sketch expressions.
//
// Evaluates a sketch body over concrete metric values (a scenario) and
// concrete hole values (a candidate). This is the reference semantics; the
// Z3 encoder (solver/z3_encoder.h) mirrors it symbolically and the two are
// differentially tested against each other.
#pragma once

#include <span>
#include <stdexcept>
#include <string>

#include "sketch/ast.h"

namespace compsynth::sketch {

/// Thrown on runtime evaluation faults (currently: division by zero).
class EvalError : public std::runtime_error {
 public:
  explicit EvalError(const std::string& what) : std::runtime_error(what) {}
};

/// Evaluates a numeric expression. `metrics[i]` supplies Kind::kMetric nodes
/// with id i, `holes[i]` supplies Kind::kHole nodes. The expression must be
/// well-typed (see typecheck.h); ill-typed trees trigger undefined lookups
/// guarded only by assertions.
double eval_numeric(const Expr& e, std::span<const double> metrics,
                    std::span<const double> holes);

/// Evaluates a boolean expression under the same environment.
bool eval_bool(const Expr& e, std::span<const double> metrics,
               std::span<const double> holes);

/// Evaluates a sketch at a scenario under a hole assignment.
/// `metrics.size()` must equal sketch.metrics().size().
double eval(const Sketch& sketch, const HoleAssignment& assignment,
            std::span<const double> metrics);

/// Same, with hole values given directly (e.g. from a ground-truth target).
double eval_with_values(const Sketch& sketch, std::span<const double> hole_values,
                        std::span<const double> metrics);

}  // namespace compsynth::sketch
