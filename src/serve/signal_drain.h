// Graceful SIGTERM/SIGINT handling for the long-running daemons
// (tools/compsynth_serve.cpp, tools/compsynth_worker.cpp).
//
// Construct one SignalDrain *before* spawning any server threads: the
// constructor blocks SIGTERM/SIGINT/SIGUSR1 in the calling thread (child
// threads inherit the mask) and starts a dedicated sigwait() thread. When
// SIGTERM or SIGINT arrives, that thread invokes the callback exactly once —
// from a normal thread context, not a signal handler, so the callback may
// take locks, call Server::stop(), flush traces, anything. A second signal
// while draining is absorbed (the process finishes its drain and exits 0
// rather than dying mid-flush).
//
// SIGUSR1 is reserved as the internal wake-up the destructor uses to retire
// the sigwait thread when the process shuts down for some other reason.
#pragma once

#include <atomic>
#include <functional>
#include <thread>

namespace compsynth::serve {

class SignalDrain {
 public:
  /// `on_signal` runs at most once, on the internal thread, when SIGTERM or
  /// SIGINT arrives.
  explicit SignalDrain(std::function<void()> on_signal);
  ~SignalDrain();

  SignalDrain(const SignalDrain&) = delete;
  SignalDrain& operator=(const SignalDrain&) = delete;

  /// True once a termination signal has been observed.
  bool signaled() const { return signaled_.load(std::memory_order_acquire); }

 private:
  std::function<void()> on_signal_;
  std::atomic<bool> stopping_{false};
  std::atomic<bool> signaled_{false};
  std::thread waiter_;
};

}  // namespace compsynth::serve
