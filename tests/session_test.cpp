// Durable sessions: snapshot round trips, torn-file rejection, recovery
// ordering, and the central differential guarantee — a run that is
// checkpointed, killed and resumed at ANY iteration boundary produces the
// same objective and the same oracle query sequence as a run that was never
// interrupted.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "oracle/ground_truth.h"
#include "pref/serialize.h"
#include "session/checkpoint.h"
#include "session/snapshot.h"
#include "sketch/library.h"
#include "synth/synthesizer.h"
#include "util/checksum.h"

namespace compsynth::session {
namespace {

// ---------------------------------------------------------------------------
// Query-sequence logging oracle: wraps a ground-truth oracle and records a
// canonical line per do_compare / do_rank call. The log is NOT part of the
// persisted state — the differential tests compare a resumed run's log
// against the reference run's suffix.

std::string scenario_key(const pref::Scenario& s) {
  std::string out;
  char buf[40];
  for (double m : s.metrics) {
    std::snprintf(buf, sizeof(buf), " %.17g", m);
    out += buf;
  }
  return out;
}

class LoggingOracle final : public oracle::Oracle {
 public:
  LoggingOracle(const sketch::Sketch& sk, const sketch::HoleAssignment& target,
                double tie_tolerance)
      : inner_(sk, target, tie_tolerance) {}

  std::vector<std::string> log;

 protected:
  oracle::Preference do_compare(const pref::Scenario& a,
                                const pref::Scenario& b) override {
    log.push_back("cmp" + scenario_key(a) + " |" + scenario_key(b));
    return inner_.compare(a, b);
  }
  oracle::RankingResponse do_rank(
      std::span<const pref::Scenario> scenarios) override {
    std::string entry = "rank";
    for (const auto& s : scenarios) entry += scenario_key(s);
    log.push_back(entry);
    return inner_.rank(scenarios);
  }
  void do_save_state(std::ostream& out) const override {
    inner_.save_state(out);
  }
  void do_restore_state(std::istream& in) override { inner_.restore_state(in); }

 private:
  oracle::GroundTruthOracle inner_;
};

// ---------------------------------------------------------------------------
// The differential kill/resume harness.

struct DifferentialCase {
  const sketch::Sketch& sketch;
  sketch::HoleAssignment target;
  std::uint64_t seed = 1;
};

synth::Synthesizer make_synth(const DifferentialCase& c, bool z3,
                              synth::SynthesisConfig config) {
  return z3 ? synth::make_z3_synthesizer(c.sketch, std::move(config))
            : synth::make_grid_synthesizer(c.sketch, std::move(config));
}

void run_differential(const DifferentialCase& c, bool z3 = false) {
  synth::SynthesisConfig config;
  config.seed = c.seed;
  config.max_iterations = 300;

  // Reference: an uninterrupted run.
  LoggingOracle ref_user(c.sketch, c.target, config.finder.tie_tolerance);
  synth::Synthesizer ref_synth = make_synth(c, z3, config);
  const synth::SynthesisResult ref = ref_synth.run(ref_user);
  ASSERT_EQ(ref.status, synth::SynthesisStatus::kConverged);
  ASSERT_TRUE(ref.objective.has_value());

  // Capture: the same run with a checkpoint hook recording every
  // SessionState (and the query-log length at capture time). Checkpointing
  // must not perturb the run.
  std::vector<std::pair<synth::SessionState, std::size_t>> checkpoints;
  LoggingOracle cap_user(c.sketch, c.target, config.finder.tie_tolerance);
  synth::SynthesisConfig cap_config = config;
  cap_config.checkpoint = [&](const synth::SessionState& st) {
    checkpoints.emplace_back(st, cap_user.log.size());
  };
  synth::Synthesizer cap_synth = make_synth(c, z3, cap_config);
  const synth::SynthesisResult cap = cap_synth.run(cap_user);
  ASSERT_EQ(cap.status, synth::SynthesisStatus::kConverged);
  EXPECT_EQ(cap.objective->index, ref.objective->index);
  EXPECT_EQ(cap_user.log, ref_user.log);
  ASSERT_GE(checkpoints.size(), 2u);  // at least one mid-run + the final one

  // Kill at every mid-run iteration boundary, resume with a FRESH
  // synthesizer and a FRESH oracle, and demand the identical continuation.
  for (const auto& [state, log_len] : checkpoints) {
    if (state.iterations >= ref.iterations) continue;  // final checkpoint
    LoggingOracle user(c.sketch, c.target, config.finder.tie_tolerance);
    synth::Synthesizer s = make_synth(c, z3, config);
    const synth::SynthesisResult r = s.resume(user, state);
    ASSERT_EQ(r.status, synth::SynthesisStatus::kConverged)
        << "resume at iteration " << state.iterations;
    ASSERT_TRUE(r.objective.has_value());
    EXPECT_EQ(r.objective->index, ref.objective->index)
        << "resume at iteration " << state.iterations;
    EXPECT_EQ(r.iterations, ref.iterations);
    EXPECT_EQ(r.oracle_comparisons, ref.oracle_comparisons);
    const std::vector<std::string> expected(ref_user.log.begin() + log_len,
                                            ref_user.log.end());
    EXPECT_EQ(user.log, expected)
        << "resumed query sequence diverged at iteration "
        << state.iterations;
  }
}

TEST(SessionDifferential, SwanKillResumeAtEveryIteration) {
  const auto& sk = sketch::swan_sketch();
  run_differential({sk, sketch::swan_target(), 11});
}

TEST(SessionDifferential, AbrQoeKillResumeAtEveryIteration) {
  const auto& sk = sketch::abr_qoe_sketch();
  sketch::HoleAssignment target;
  target.index = {sk.holes()[0].nearest_index(2),
                  sk.holes()[1].nearest_index(2),
                  sk.holes()[2].nearest_index(0.5),
                  sk.holes()[3].nearest_index(1)};
  run_differential({sk, target, 606});
}

TEST(SessionDifferential, HomenetKillResumeAtEveryIteration) {
  const auto& sk = sketch::homenet_sketch();
  sketch::HoleAssignment target;
  target.index = {sk.holes()[0].nearest_index(20),
                  sk.holes()[1].nearest_index(1),
                  sk.holes()[2].nearest_index(1)};
  run_differential({sk, target, 77});
}

TEST(SessionDifferential, Z3BackendKillResumeSmoke) {
  const auto& sk = sketch::swan_sketch();
  run_differential({sk, sketch::swan_target(), 5}, /*z3=*/true);
}

// ---------------------------------------------------------------------------
// Snapshot format.

Snapshot sample_snapshot() {
  Snapshot snap;
  snap.meta.sketch = "swan";
  snap.meta.backend = "grid";
  snap.meta.seed = 42;
  snap.meta.run_id = "test-run";
  snap.meta.iteration = 7;
  snap.state.iterations = 7;
  snap.state.interactions = 6;
  snap.state.repair_rounds = 1;
  snap.state.total_solver_seconds = 0.125;
  snap.state.oracle_comparisons = 19;
  snap.state.transcript.push_back({1, 0.5, 1, 1, 0});
  snap.state.transcript.push_back({2, 0.25, 1, 0, 1});
  pref::PreferenceGraph g;
  const auto a = g.intern(pref::Scenario{{5, 10}});
  const auto b = g.intern(pref::Scenario{{2, 100}});
  g.add_preference(a, b, 2.5);
  g.set_label(a, "peak-hour");
  snap.state.graph = std::move(g);
  snap.state.finder_state = "finder-blob\nwith @lines\nand no trailing nl";
  snap.state.oracle_state = "oracle 19 1\n";
  return snap;
}

TEST(Snapshot, EncodeDecodeRoundTrip) {
  const Snapshot snap = sample_snapshot();
  const std::string bytes = encode(snap);
  const Snapshot back = decode(bytes);
  EXPECT_EQ(back.meta.version, kSnapshotFormatVersion);
  EXPECT_EQ(back.meta.sketch, snap.meta.sketch);
  EXPECT_EQ(back.meta.backend, snap.meta.backend);
  EXPECT_EQ(back.meta.seed, snap.meta.seed);
  EXPECT_EQ(back.meta.run_id, snap.meta.run_id);
  EXPECT_EQ(back.meta.iteration, snap.meta.iteration);
  EXPECT_EQ(back.state.iterations, snap.state.iterations);
  EXPECT_EQ(back.state.interactions, snap.state.interactions);
  EXPECT_EQ(back.state.repair_rounds, snap.state.repair_rounds);
  EXPECT_EQ(back.state.total_solver_seconds, snap.state.total_solver_seconds);
  EXPECT_EQ(back.state.oracle_comparisons, snap.state.oracle_comparisons);
  ASSERT_EQ(back.state.transcript.size(), snap.state.transcript.size());
  EXPECT_EQ(back.state.transcript[1].solver_seconds,
            snap.state.transcript[1].solver_seconds);
  EXPECT_EQ(pref::serialize(back.state.graph),
            pref::serialize(snap.state.graph));
  EXPECT_EQ(back.state.finder_state, snap.state.finder_state);
  EXPECT_EQ(back.state.oracle_state, snap.state.oracle_state);
  // Encoding is deterministic.
  EXPECT_EQ(encode(back), bytes);
}

TEST(Snapshot, RejectsTornAndTamperedBytes) {
  const std::string bytes = encode(sample_snapshot());
  // Truncation at any point after the manifest must be detected.
  EXPECT_THROW(decode(bytes.substr(0, bytes.size() / 2)), SnapshotError);
  EXPECT_THROW(decode(bytes.substr(0, bytes.size() - 1)), SnapshotError);
  // A flipped payload byte fails the CRC.
  std::string flipped = bytes;
  flipped[bytes.size() - 2] ^= 0x20;
  EXPECT_THROW(decode(flipped), SnapshotError);
  // Garbage and empty input.
  EXPECT_THROW(decode(""), SnapshotError);
  EXPECT_THROW(decode("not a snapshot\n"), SnapshotError);
}

TEST(Snapshot, RejectsNewerFormatVersion) {
  std::string bytes = encode(sample_snapshot());
  const std::string current =
      "COMPSYNTH-SNAPSHOT " + std::to_string(kSnapshotFormatVersion) + "\n";
  ASSERT_EQ(bytes.rfind(current, 0), 0u);
  bytes.replace(0, current.size(),
                "COMPSYNTH-SNAPSHOT " +
                    std::to_string(kSnapshotFormatVersion + 1) + "\n");
  try {
    decode(bytes);
    FAIL() << "a newer format version must be rejected";
  } catch (const SnapshotError& e) {
    EXPECT_NE(std::string(e.what()).find("newer"), std::string::npos);
  }
}

// Version-1 files predate the @cache section; decode must still accept them
// (yielding an empty, cold cache). The v1 bytes are reconstructed from a v2
// encoding by stripping the trailing @cache section and rewriting the
// envelope exactly as the v1 writer produced it.
TEST(Snapshot, DecodesVersion1FilesWithoutCacheSection) {
  const Snapshot snap = sample_snapshot();
  const std::string bytes = encode(snap);
  const std::string cache_section = "@cache 0\n\n";
  ASSERT_TRUE(bytes.size() >= cache_section.size() &&
              bytes.compare(bytes.size() - cache_section.size(),
                            cache_section.size(), cache_section) == 0)
      << "expected the empty @cache section to close a v2 snapshot";
  const std::size_t manifest_begin = bytes.find('\n') + 1;
  const std::size_t payload_begin = bytes.find('\n', manifest_begin) + 1;
  std::string manifest =
      bytes.substr(manifest_begin, payload_begin - manifest_begin - 1);
  std::string payload = bytes.substr(payload_begin);
  payload.resize(payload.size() - cache_section.size());

  const auto rewrite = [&manifest](const std::string& from,
                                   const std::string& to) {
    const std::size_t at = manifest.find(from);
    ASSERT_NE(at, std::string::npos) << "manifest lacks '" << from << "'";
    manifest.replace(at, from.size(), to);
  };
  rewrite("\"v\":" + std::to_string(kSnapshotFormatVersion), "\"v\":1");
  rewrite("\"payload_bytes\":" +
              std::to_string(payload.size() + cache_section.size()),
          "\"payload_bytes\":" + std::to_string(payload.size()));
  rewrite(util::crc32_hex(
              util::crc32(bytes.substr(payload_begin))),
          util::crc32_hex(util::crc32(payload)));

  const std::string v1 = "COMPSYNTH-SNAPSHOT 1\n" + manifest + "\n" + payload;
  const Snapshot back = decode(v1);
  EXPECT_EQ(back.meta.version, 1);
  EXPECT_TRUE(back.state.cache_state.empty());
  EXPECT_EQ(back.state.finder_state, snap.state.finder_state);
  EXPECT_EQ(back.state.oracle_state, snap.state.oracle_state);
  EXPECT_EQ(pref::serialize(back.state.graph),
            pref::serialize(snap.state.graph));
}

TEST(Snapshot, WriteReadFileRoundTrip) {
  const std::string dir = testing::TempDir() + "compsynth_snapshot_rt";
  std::filesystem::create_directories(dir);
  const std::string path = dir + "/one" + kSnapshotExtension;
  const Snapshot snap = sample_snapshot();
  write_file(snap, path);
  const Snapshot back = read_file(path);
  EXPECT_EQ(encode(back), encode(snap));
  EXPECT_THROW(read_file(dir + "/missing.csnap"), SnapshotError);
}

// ---------------------------------------------------------------------------
// Checkpoint manager: retention and recovery ordering.

TEST(CheckpointManager, RecoversLatestValidSnapshotOverCorrupt) {
  const std::string dir = testing::TempDir() + "compsynth_recover";
  std::filesystem::remove_all(dir);
  CheckpointConfig config;
  config.directory = dir;
  CheckpointManager manager(config);

  Snapshot snap = sample_snapshot();
  snap.meta.iteration = snap.state.iterations = 1;
  manager.write(snap);
  snap.meta.iteration = snap.state.iterations = 2;
  const std::string good = manager.write(snap);
  snap.meta.iteration = snap.state.iterations = 3;
  const std::string newest = manager.write(snap);

  // Corrupt the newest file (simulated torn write at the final path).
  {
    std::ifstream in(newest, std::ios::binary);
    std::string bytes((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
    std::ofstream out(newest, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(),
              static_cast<std::streamsize>(bytes.size() / 2));
  }

  std::string recovered_path;
  std::vector<std::string> corrupt;
  const auto recovered =
      CheckpointManager::recover_latest(dir, &recovered_path, &corrupt);
  ASSERT_TRUE(recovered.has_value());
  EXPECT_EQ(recovered->meta.iteration, 2);
  EXPECT_EQ(recovered_path, good);
  ASSERT_EQ(corrupt.size(), 1u);
  EXPECT_EQ(corrupt[0], newest);
}

TEST(CheckpointManager, RetentionKeepsNewest) {
  const std::string dir = testing::TempDir() + "compsynth_retention";
  std::filesystem::remove_all(dir);
  CheckpointConfig config;
  config.directory = dir;
  config.keep = 2;
  CheckpointManager manager(config);
  Snapshot snap = sample_snapshot();
  for (int i = 1; i <= 5; ++i) {
    snap.meta.iteration = snap.state.iterations = i;
    manager.write(snap);
  }
  const auto files = manager.list();
  ASSERT_EQ(files.size(), 2u);
  EXPECT_NE(files[0].find("-000004"), std::string::npos);
  EXPECT_NE(files[1].find("-000005"), std::string::npos);
}

TEST(CheckpointManager, EndToEndCheckpointHookAndResume) {
  // Wire the real hook: run with a manager writing every snapshot, recover
  // the latest from disk, resume, and demand the reference objective.
  const std::string dir = testing::TempDir() + "compsynth_hook_resume";
  std::filesystem::remove_all(dir);
  const auto& sk = sketch::swan_sketch();
  const auto target = sketch::swan_target();

  synth::SynthesisConfig config;
  config.seed = 29;
  config.max_iterations = 300;

  oracle::GroundTruthOracle ref_user(sk, target, config.finder.tie_tolerance);
  synth::Synthesizer ref_synth = synth::make_grid_synthesizer(sk, config);
  const synth::SynthesisResult ref = ref_synth.run(ref_user);
  ASSERT_EQ(ref.status, synth::SynthesisStatus::kConverged);

  CheckpointConfig ck;
  ck.directory = dir;
  ck.keep = 3;
  CheckpointManager manager(ck);
  SnapshotMeta meta;
  meta.sketch = sk.name();
  meta.backend = "grid";
  meta.seed = config.seed;

  // "Crash" by iteration budget: stop after 3 iterations, leaving
  // checkpoints on disk.
  synth::SynthesisConfig crash_config = config;
  crash_config.max_iterations = 3;
  crash_config.checkpoint = checkpoint_hook(manager, meta);
  oracle::GroundTruthOracle crash_user(sk, target, config.finder.tie_tolerance);
  synth::Synthesizer crash_synth =
      synth::make_grid_synthesizer(sk, crash_config);
  (void)crash_synth.run(crash_user);
  ASSERT_FALSE(manager.list().empty());

  const auto recovered = CheckpointManager::recover_latest(dir);
  ASSERT_TRUE(recovered.has_value());
  EXPECT_EQ(recovered->meta.sketch, sk.name());

  oracle::GroundTruthOracle user(sk, target, config.finder.tie_tolerance);
  synth::Synthesizer s = synth::make_grid_synthesizer(sk, config);
  const synth::SynthesisResult r = s.resume(user, recovered->state);
  ASSERT_EQ(r.status, synth::SynthesisStatus::kConverged);
  EXPECT_EQ(r.objective->index, ref.objective->index);
}

}  // namespace
}  // namespace compsynth::session
