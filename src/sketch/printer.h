// Pretty-printing of sketches and expressions back to DSL syntax.
//
// print_sketch(parse_sketch(s)) re-parses to a structurally identical sketch
// (a round-trip property the tests enforce). print_instantiated renders the
// *solution* view of Fig. 2b: the sketch body with every hole replaced by its
// synthesized value.
#pragma once

#include <string>

#include "sketch/ast.h"

namespace compsynth::sketch {

/// Renders an expression in DSL concrete syntax. Parenthesizes exactly where
/// precedence demands it. Metric/hole references are printed by name using
/// the supplying sketch's declarations.
std::string print_expr(const Expr& e, const Sketch& context);

/// Renders a full sketch definition (declarations + body).
std::string print_sketch(const Sketch& sketch);

/// Renders the body with holes substituted by assignment values — the
/// "solution" form shown in the paper's Fig. 2b.
std::string print_instantiated(const Sketch& sketch, const HoleAssignment& a);

}  // namespace compsynth::sketch
