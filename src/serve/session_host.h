// Multi-session synthesis hosting: many concurrent interaction loops in one
// process, each parked at zero cost while its architect thinks.
//
// The synthesizer's loop is written to *block* on the oracle
// (Oracle::compare). A daemon cannot afford a thread per thinking human, so
// the host inverts the control flow with a passive replay model:
//
//   * Every acked answer is appended to the session's answers.log (flushed
//     before the ack) — the log IS the session's oracle-query sequence.
//   * An "advance" reconstructs the synthesizer, resumes it from the newest
//     checkpoint, and drives it with a ReplayOracle that feeds answers from
//     the log. When the log runs dry the oracle throws PendingQuerySignal,
//     unwinding the loop; the host publishes the discovered (s1, s2) pair
//     as the session's pending query and the worker thread moves on.
//   * `answer` validates the index against the pending query, appends to
//     the log, and schedules the next advance. `next` just reads (or briefly
//     waits for) the published pending query.
//
// During replay the ReplayOracle verifies that each re-found query matches
// the logged pair byte-for-byte (protocol::scenario_key) — the
// identical-query-sequence invariant of Synthesizer::resume
// (docs/PERSISTENCE.md), enforced in production, not just in tests.
//
// Because durability (checkpoint + log) precedes every ack, eviction is
// trivially safe: dropping a session's in-memory entry loses nothing, and
// rehydration is session.json + newest valid snapshot + log replay. An LRU
// active-set bounded by HostConfig::max_active applies that eviction
// automatically, so memory stays bounded while session count grows.
//
// The price of passivity: each advance re-runs the finder query that
// discovered the pending pair (the discovery result is deliberately not
// trusted across the user's think-time — only checkpoints and the log are).
// Per answered query the finder work is therefore roughly doubled;
// docs/SERVICE.md §Costs quantifies it.
#pragma once

#include <cstdint>
#include <filesystem>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "obs/run_context.h"
#include "oracle/oracle.h"
#include "pref/scenario.h"
#include "serve/protocol.h"
#include "sketch/ast.h"
#include "util/fault.h"
#include "util/sync.h"
#include "util/thread_annotations.h"
#include "util/thread_pool.h"

namespace compsynth::serve {

/// One acked comparison: the canonical renderings of the pair as presented
/// (first = the candidate-A-preferred scenario) plus the architect's answer.
/// The per-session answers.log is exactly this sequence, one per line.
struct AnswerRecord {
  oracle::Preference answer = oracle::Preference::kTie;
  std::string key_a;
  std::string key_b;
};

/// The distinguishing pair a session is currently waiting on. `index` is the
/// answer-log position the answer will occupy (== answers acked so far).
struct PendingQuery {
  long index = 0;
  pref::Scenario a;
  pref::Scenario b;
};

/// Where a session is in its life. kSwapped appears only in views of
/// non-resident sessions (on disk, not in memory).
enum class SessionPhase { kAdvancing, kWaiting, kDone, kFailed, kSwapped };
const char* phase_name(SessionPhase phase);

/// Outcome of a host call; `code`/`message` use the protocol error codes.
struct HostResult {
  bool ok = true;
  std::string code;
  std::string message;

  static HostResult success() { return {}; }
  static HostResult failure(std::string code, std::string message) {
    return {false, std::move(code), std::move(message)};
  }
};

struct CreateParams {
  std::string id;
  std::string sketch;  // registered name; empty = host default
  std::string backend = "grid";
  std::uint64_t seed = 1;
  int initial = 5;
  int pairs = 1;
  int max_iters = 500;
};

/// Read-only session status snapshot (the `next` / `inspect` payload).
struct SessionView {
  std::string id;
  SessionPhase phase = SessionPhase::kAdvancing;
  bool resident = false;
  long answers = 0;
  int iterations = 0;
  std::optional<PendingQuery> pending;  // set iff phase == kWaiting
  std::string status;                   // set iff phase == kDone
  std::string objective;                // set iff phase == kDone
  std::string error;                    // set iff phase == kFailed
};

struct HostStats {
  long sessions_created = 0;
  long sessions_resident = 0;
  long swaps = 0;
  long rehydrations = 0;
  long advances = 0;
};

struct HostConfig {
  /// Root directory; each session owns `<root>/<id>/` (session.json +
  /// answers.log + snapshots + done.json).
  std::string root;

  /// Resident-session bound: beyond it the least-recently-touched idle
  /// session is swapped to disk. <= 0 disables the bound.
  int max_active = 64;

  int keep_snapshots = 4;
  int checkpoint_every = 1;

  /// GridFinder parallelism per session (SynthesisConfig::grid_threads).
  /// Defaults to fully sequential: daemon parallelism comes from many
  /// concurrent sessions on the advance pool, and advance tasks must not
  /// fan out into the same pool (util::ThreadPool's nested-use rule).
  int grid_threads = 1;

  /// Checkpoint fault injection (torn_write_p only), for rehearsing
  /// torn-snapshot rehydration. Each session derives its own injector
  /// seeded by `seed ^ hash(id)` so the fault stream is per-session
  /// deterministic regardless of request interleaving.
  util::FaultPlan checkpoint_faults;

  /// Daemon-level observability (run id "serve"); per-session synthesis
  /// events reuse the same sinks under the session id.
  obs::RunContext obs;

  /// Advance workers; null runs advances inline on the calling thread.
  util::ThreadPool* pool = nullptr;
};

class SessionHost {
 public:
  explicit SessionHost(HostConfig config);

  /// Drains in-flight advances before tearing down.
  ~SessionHost();

  SessionHost(const SessionHost&) = delete;
  SessionHost& operator=(const SessionHost&) = delete;

  /// Registers a sketch under its own name; the first registration becomes
  /// the default for create requests that name none. Not thread-safe against
  /// serving — register everything before the first request.
  void register_sketch(sketch::Sketch sk);

  const HostConfig& config() const { return config_; }

  /// Registers the id, persists session.json, and schedules the first
  /// advance. Fails with E_EXISTS when the id is resident *or* already on
  /// disk (a restarted daemon still refuses double-creates).
  HostResult create(const CreateParams& params);

  /// Fills `view` with the session's current state, rehydrating it if
  /// swapped out. Waits up to `wait_ms` for an in-flight advance to publish
  /// a pending query (0 = return "advancing" immediately).
  HostResult next(const std::string& id, int wait_ms, SessionView* view);

  /// Accepts the answer for pending-query `index`. Re-sending an already
  /// acked index with the same preference succeeds idempotently; a
  /// contradictory re-delivery fails with E_ANSWER (the logged answer
  /// stands), and anything else out of step fails with E_INDEX / E_STATE.
  HostResult answer(const std::string& id, long index,
                    oracle::Preference answer);

  /// Swaps the session to disk now, waiting out any in-flight advance.
  /// Succeeds (as a no-op) when the session is already swapped.
  HostResult evict(const std::string& id);

  /// Cheap status read: never rehydrates, never schedules work.
  HostResult inspect(const std::string& id, SessionView* view);

  HostStats stats() const EXCLUDES(mu_);

  /// Blocks until no advance is in flight. New requests may schedule more;
  /// callers stop the request source first.
  void drain() EXCLUDES(mu_);

 private:
  struct SessionEntry;

  std::shared_ptr<SessionEntry> acquire(const std::string& id,
                                        HostResult* error) EXCLUDES(mu_);
  std::shared_ptr<SessionEntry> rehydrate_locked(const std::string& id,
                                                 HostResult* error)
      REQUIRES(mu_);
  void init_entry(SessionEntry& entry);
  static void write_session_json(const SessionEntry& entry);
  static void load_answer_log(SessionEntry& entry);
  static void open_answer_log(SessionEntry& entry);
  void schedule_advance(const std::shared_ptr<SessionEntry>& entry)
      EXCLUDES(mu_);
  void run_advance(const std::shared_ptr<SessionEntry>& entry) EXCLUDES(mu_);
  void enforce_cap() EXCLUDES(mu_);
  void drop(const std::shared_ptr<SessionEntry>& entry, const char* reason)
      EXCLUDES(mu_);
  // view_of additionally requires the entry's own mutex; the REQUIRES
  // attribute lives on the definition (SessionEntry is incomplete here, so
  // `entry.mu` cannot be named in this header).
  SessionView view_of(SessionEntry& entry) const;
  const sketch::Sketch* find_sketch(const std::string& name) const;

  HostConfig config_;
  std::filesystem::path root_;
  std::vector<sketch::Sketch> sketches_;

  /// Host-level lock. When an entry's own mutex is also needed, mu_ is
  /// acquired FIRST (drop, enforce_cap, inspect); never the reverse — see
  /// docs/CONCURRENCY.md §Lock ordering.
  mutable util::Mutex mu_;
  /// Signaled whenever in_flight_ drops; drain() waits on it.
  util::CondVar drained_;
  std::map<std::string, std::shared_ptr<SessionEntry>> residents_
      GUARDED_BY(mu_);
  HostStats stats_ GUARDED_BY(mu_);
  int in_flight_ GUARDED_BY(mu_) = 0;
  std::uint64_t lru_clock_ GUARDED_BY(mu_) = 0;
};

}  // namespace compsynth::serve
