# Empty compiler generated dependencies file for compsynth_oracle.
# This may be replaced when dependencies are built.
