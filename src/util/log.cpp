#include "util/log.h"

#include <atomic>
#include <iostream>

namespace compsynth::util {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarn};

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kError: return "ERROR";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kOff: break;
  }
  return "OFF";
}
}  // namespace

void set_level(LogLevel level) { g_level.store(level); }

LogLevel level() { return g_level.load(); }

void log_line(LogLevel lvl, const std::string& message) {
  if (static_cast<int>(lvl) > static_cast<int>(level())) return;
  std::cerr << "[compsynth " << level_name(lvl) << "] " << message << '\n';
}

}  // namespace compsynth::util
