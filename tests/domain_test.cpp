// Scenario-domain constraints: validation, containment semantics, and
// enforcement by both candidate finders and the synthesizer loop.
#include <gtest/gtest.h>

#include "oracle/ground_truth.h"
#include "sketch/eval.h"
#include "sketch/library.h"
#include "sketch/parser.h"
#include "sketch/typecheck.h"
#include "solver/equivalence.h"
#include "solver/grid_finder.h"
#include "solver/z3_finder.h"
#include "synth/synthesizer.h"

namespace compsynth::solver {
namespace {

using pref::Scenario;

// A frontier-ish region: pushing more throughput costs at least 3 ms per
// Gbps of base latency — low-latency high-throughput corners are unreal.
ScenarioDomain frontier_domain() {
  return ScenarioDomain{
      sketch::parse_expr("latency >= 3*throughput", sketch::swan_sketch())};
}

TEST(Domain, ValidationRejectsBadConstraints) {
  const auto& sk = sketch::swan_sketch();
  // Numeric (not boolean) constraint.
  EXPECT_THROW(validate_domain(sk, ScenarioDomain{sketch::parse_expr("latency", sk)}),
               sketch::TypeError);
  // References a hole.
  ScenarioDomain hole_ref{sketch::compare(sketch::CmpOp::kGe, sketch::hole(0),
                                          sketch::constant(1))};
  EXPECT_THROW(validate_domain(sk, hole_ref), sketch::TypeError);
  // Null constraint is fine.
  EXPECT_NO_THROW(validate_domain(sk, ScenarioDomain{}));
}

TEST(Domain, ContainmentChecksBoxAndConstraint) {
  const auto& sk = sketch::swan_sketch();
  const ScenarioDomain d = frontier_domain();
  EXPECT_TRUE(domain_contains(sk, d, std::vector<double>{2, 10}));   // 10 >= 6
  EXPECT_FALSE(domain_contains(sk, d, std::vector<double>{5, 10}));  // 10 < 15
  EXPECT_FALSE(domain_contains(sk, d, std::vector<double>{11, 100}));  // box
  EXPECT_TRUE(domain_contains(sk, ScenarioDomain{}, std::vector<double>{5, 10}));
}

TEST(Domain, Z3FinderScenariosRespectConstraint) {
  const auto& sk = sketch::swan_sketch();
  Z3Finder finder(sk, {}, {}, frontier_domain());
  pref::PreferenceGraph g;
  const FinderResult r = finder.find_distinguishing(g, 2);
  ASSERT_EQ(r.status, FinderStatus::kFound);
  for (const auto& p : r.pairs) {
    EXPECT_GE(p.preferred_by_a.metrics[1], 3 * p.preferred_by_a.metrics[0] - 1e-9);
    EXPECT_GE(p.preferred_by_b.metrics[1], 3 * p.preferred_by_b.metrics[0] - 1e-9);
  }
}

TEST(Domain, GridFinderScenariosRespectConstraint) {
  const auto& sk = sketch::swan_sketch();
  GridFinder finder(sk, {}, {}, frontier_domain());
  pref::PreferenceGraph g;
  const FinderResult r = finder.find_distinguishing(g, 2);
  ASSERT_EQ(r.status, FinderStatus::kFound);
  for (const auto& p : r.pairs) {
    EXPECT_GE(p.preferred_by_a.metrics[1], 3 * p.preferred_by_a.metrics[0] - 1e-9);
    EXPECT_GE(p.preferred_by_b.metrics[1], 3 * p.preferred_by_b.metrics[0] - 1e-9);
  }
}

// Oracle wrapper that records every scenario it was shown.
class RecordingOracle final : public oracle::Oracle {
 public:
  explicit RecordingOracle(oracle::GroundTruthOracle& inner) : inner_(inner) {}
  std::vector<Scenario> seen;

 protected:
  oracle::Preference do_compare(const Scenario& a, const Scenario& b) override {
    seen.push_back(a);
    seen.push_back(b);
    return inner_.compare(a, b);
  }

 private:
  oracle::GroundTruthOracle& inner_;
};

TEST(Domain, SynthesizerOnlyAsksAboutDomainScenarios) {
  const auto& sk = sketch::swan_sketch();
  synth::SynthesisConfig config;
  config.seed = 12;
  config.scenario_domain = frontier_domain();
  config.initial_scenarios = 0;  // focus on solver-proposed scenarios
  config.max_iterations = 40;
  synth::Synthesizer s = synth::make_grid_synthesizer(sk, config);
  oracle::GroundTruthOracle truth(sk, sketch::swan_target(),
                                  config.finder.tie_tolerance);
  RecordingOracle user(truth);
  const synth::SynthesisResult r = s.run(user);
  ASSERT_GT(user.seen.size(), 0u);
  for (const Scenario& sc : user.seen) {
    EXPECT_GE(sc.metrics[1], 3 * sc.metrics[0] - 1e-9)
        << pref::to_string(sc, sk);
  }
  (void)r;
}

TEST(Domain, ConstrainedSynthesisStillConverges) {
  // With fewer askable scenarios the ranking is pinned down over the domain
  // only — convergence is to domain-restricted equivalence.
  const auto& sk = sketch::swan_sketch();
  synth::SynthesisConfig config;
  config.seed = 13;
  config.scenario_domain = frontier_domain();
  synth::Synthesizer s = synth::make_grid_synthesizer(sk, config);
  oracle::GroundTruthOracle user(sk, sketch::swan_target(),
                                 config.finder.tie_tolerance);
  const synth::SynthesisResult r = s.run(user);
  ASSERT_EQ(r.status, synth::SynthesisStatus::kConverged);
  ASSERT_TRUE(r.objective.has_value());
  // Within the domain, the learned objective agrees with the target on a
  // sample of scenario pairs.
  util::Rng rng(55);
  const auto target = sketch::swan_target();
  int checked = 0;
  while (checked < 200) {
    const Scenario s1{{rng.uniform_real(0, 10), rng.uniform_real(0, 200)}};
    const Scenario s2{{rng.uniform_real(0, 10), rng.uniform_real(0, 200)}};
    if (!domain_contains(sk, config.scenario_domain, s1.metrics) ||
        !domain_contains(sk, config.scenario_domain, s2.metrics)) {
      continue;
    }
    ++checked;
    const double t1 = sketch::eval(sk, target, s1.metrics);
    const double t2 = sketch::eval(sk, target, s2.metrics);
    const double l1 = sketch::eval(sk, *r.objective, s1.metrics);
    const double l2 = sketch::eval(sk, *r.objective, s2.metrics);
    if (t1 > t2 + 1e-3) {
      EXPECT_GE(l1, l2 - 4e-4) << pref::to_string(s1, sk) << " vs "
                               << pref::to_string(s2, sk);
    } else if (t2 > t1 + 1e-3) {
      EXPECT_GE(l2, l1 - 4e-4);
    }
  }
}

TEST(Domain, UnsatisfiableDomainDegradesGracefully) {
  const auto& sk = sketch::swan_sketch();
  synth::SynthesisConfig config;
  config.seed = 14;
  config.max_iterations = 5;
  config.scenario_domain =
      ScenarioDomain{sketch::parse_expr("throughput > 11", sk)};  // empty region
  synth::Synthesizer s = synth::make_grid_synthesizer(sk, config);
  oracle::GroundTruthOracle user(sk, sketch::swan_target(),
                                 config.finder.tie_tolerance);
  const synth::SynthesisResult r = s.run(user);
  // No scenario can ever be asked: the loop must terminate, not hang.
  EXPECT_TRUE(r.status == synth::SynthesisStatus::kConverged ||
              r.status == synth::SynthesisStatus::kIterationLimit);
  EXPECT_EQ(r.oracle_comparisons, 0);
}

}  // namespace
}  // namespace compsynth::solver
