// Minimal leveled logger.
//
// The synthesizer is a library: it never writes to stdout on its own. All
// diagnostic output flows through this logger, which is off by default and
// can be raised to Info/Debug by examples and benches via set_level().
#pragma once

#include <sstream>
#include <string>

namespace compsynth::util {

enum class LogLevel { kOff = 0, kError, kWarn, kInfo, kDebug };

/// Sets the global threshold; messages at a more verbose level are dropped.
void set_level(LogLevel level);
LogLevel level();

/// Emits a single log line (with level prefix) to stderr if enabled.
void log_line(LogLevel level, const std::string& message);

namespace detail {
inline void append_all(std::ostringstream&) {}
template <typename T, typename... Rest>
void append_all(std::ostringstream& os, const T& first, const Rest&... rest) {
  os << first;
  append_all(os, rest...);
}
}  // namespace detail

/// Variadic convenience: util::log(LogLevel::kInfo, "iter ", n, " time ", t).
template <typename... Args>
void log(LogLevel lvl, const Args&... args) {
  if (static_cast<int>(lvl) > static_cast<int>(level())) return;
  std::ostringstream os;
  detail::append_all(os, args...);
  log_line(lvl, os.str());
}

}  // namespace compsynth::util
