// Scenarios: concrete metric combinations shown to the user for ranking.
//
// In the SWAN case study a scenario is a (throughput, latency) pair; in
// general it is one value per metric declared by the sketch (paper §3 calls
// each distinct metric combination a "scenario").
#pragma once

#include <string>
#include <vector>

#include "sketch/ast.h"

namespace compsynth::pref {

/// One concrete metric combination, in sketch metric order.
struct Scenario {
  std::vector<double> metrics;

  /// Optional human-readable annotation ("peak-hour", "流量高峰" — any
  /// UTF-8, no newlines). Labels are NOT part of scenario identity: the
  /// graph interns on metrics alone, so a labelled and an unlabelled
  /// scenario with equal metrics are the same vertex.
  std::string label;

  friend bool operator==(const Scenario& a, const Scenario& b) {
    return a.metrics == b.metrics;
  }
};

/// Renders e.g. "(throughput = 2, latency = 100)" using the sketch's names.
std::string to_string(const Scenario& s, const sketch::Sketch& context);

/// True when every metric value lies within the sketch's ClosedInRange
/// bounds (inclusive).
bool in_range(const Scenario& s, const sketch::Sketch& context);

}  // namespace compsynth::pref
