// RunContext: the handle instrumented code records through.
//
// One RunContext identifies one synthesis run (run id + RNG seed) and
// carries non-owning pointers to the two optional back-ends: a
// MetricsRegistry (aggregates) and a TraceSink (per-event JSONL). Both
// default to null, which is the contract that keeps instrumentation
// near-free: every recording site first checks active()/tracing() — a
// pointer test — and only then builds events or touches atomics. The
// synthesizer threads one RunContext through itself, its finder, the
// oracle and the preference graph (synth::SynthesisConfig::obs,
// synth::ExperimentSpec::obs), so a whole run records to one stream.
//
// Span is the scoped-timing helper: it measures a region, records the
// duration into the histogram "<name>.seconds" and emits one "<name>"
// event with a "secs" field (plus any fields the caller attached via
// event()). When the context is inactive a Span never reads the clock.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/timer.h"

namespace compsynth::obs {

struct RunContext {
  MetricsRegistry* metrics = nullptr;
  TraceSink* tracer = nullptr;
  /// Stamped into every trace record as "run"; distinguishes repetitions
  /// and configurations sharing one sink.
  std::string run_id;
  /// The run's RNG seed, for reproducing a traced run.
  std::uint64_t seed = 0;

  bool tracing() const { return tracer != nullptr && tracer->enabled(); }
  bool active() const { return metrics != nullptr || tracing(); }

  /// Forwards to the sink (no-op unless tracing()).
  void emit(const TraceEvent& event) const {
    if (tracing()) tracer->emit(run_id, event);
  }

  void count(const std::string& name, long delta = 1) const {
    if (metrics != nullptr) metrics->counter(name).add(delta);
  }
  void gauge(const std::string& name, double value) const {
    if (metrics != nullptr) metrics->gauge(name).set(value);
  }
  void observe(const std::string& name, double value) const {
    if (metrics != nullptr) metrics->histogram(name).record(value);
  }
};

/// Null-safe helpers for code holding a possibly-null context pointer.
inline bool active(const RunContext* ctx) {
  return ctx != nullptr && ctx->active();
}
inline bool tracing(const RunContext* ctx) {
  return ctx != nullptr && ctx->tracing();
}

/// Scoped span: times from construction to finish() (or destruction),
/// records histogram "<name>.seconds" and emits event "<name>" with the
/// duration as "secs". Attach event-specific fields through event(), which
/// returns null when tracing is off.
class Span {
 public:
  Span(const RunContext* ctx, std::string_view name)
      : ctx_(active(ctx) ? ctx : nullptr), name_(name) {
    if (ctx_ != nullptr) {
      if (ctx_->tracing()) event_.emplace(name_);
      watch_.emplace();
    }
  }

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  ~Span() { finish(); }

  /// The pending event, for attaching fields; null when not tracing.
  TraceEvent* event() { return event_ ? &*event_ : nullptr; }

  /// Stops the clock, records and emits (idempotent). Returns the measured
  /// seconds (0 when the context was inactive).
  double finish() {
    if (ctx_ == nullptr || finished_) return 0;
    finished_ = true;
    const double secs = watch_->elapsed_seconds();
    ctx_->observe(name_ + ".seconds", secs);
    if (event_) {
      event_->num("secs", secs);
      ctx_->emit(*event_);
    }
    return secs;
  }

 private:
  const RunContext* ctx_;
  std::string name_;
  std::optional<util::Stopwatch> watch_;
  std::optional<TraceEvent> event_;
  bool finished_ = false;
};

}  // namespace compsynth::obs
