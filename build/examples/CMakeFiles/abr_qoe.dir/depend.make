# Empty dependencies file for abr_qoe.
# This may be replaced when dependencies are built.
