# Empty compiler generated dependencies file for compsynth_abr.
# This may be replaced when dependencies are built.
