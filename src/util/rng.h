// Deterministic, seedable random number generation.
//
// Every stochastic component in compsynth (initial-scenario sampling, noisy
// oracles, topology generators, trace generators) draws from an explicitly
// seeded Rng instance so that experiments are reproducible run-to-run. Never
// use std::rand or an unseeded engine inside the library.
#pragma once

#include <cassert>
#include <cstdint>
#include <random>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

namespace compsynth::util {

/// A seedable pseudo-random source wrapping std::mt19937_64.
///
/// The class is cheap to copy (copying forks the stream deterministically)
/// and intentionally not thread-safe; give each thread its own instance.
class Rng {
 public:
  /// Constructs a generator from an explicit 64-bit seed.
  explicit Rng(std::uint64_t seed) : engine_(seed) {}

  /// Uniform integer in the closed interval [lo, hi]. Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    assert(lo <= hi);
    return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
  }

  /// Uniform real in the half-open interval [lo, hi). Requires lo <= hi.
  double uniform_real(double lo, double hi) {
    assert(lo <= hi);
    if (lo == hi) return lo;
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  /// Bernoulli trial that succeeds with probability p in [0, 1].
  bool bernoulli(double p) {
    if (p <= 0.0) return false;
    if (p >= 1.0) return true;
    return std::bernoulli_distribution(p)(engine_);
  }

  /// Normally distributed value with the given mean and standard deviation.
  double gaussian(double mean, double stddev) {
    return std::normal_distribution<double>(mean, stddev)(engine_);
  }

  /// Exponentially distributed value with the given rate (lambda > 0).
  double exponential(double rate) {
    return std::exponential_distribution<double>(rate)(engine_);
  }

  /// Picks a uniformly random index in [0, size). Requires size > 0.
  std::size_t index(std::size_t size) {
    assert(size > 0);
    return static_cast<std::size_t>(
        uniform_int(0, static_cast<std::int64_t>(size) - 1));
  }

  /// Fisher-Yates shuffle of a vector, using this stream.
  template <typename T>
  void shuffle(std::vector<T>& items) {
    for (std::size_t i = items.size(); i > 1; --i) {
      using std::swap;
      swap(items[i - 1], items[index(i)]);
    }
  }

  /// Derives an independent child generator; useful to give each experiment
  /// repetition its own stream while keeping the parent reproducible.
  Rng fork() { return Rng(engine_()); }

  /// Serializes the full engine state (mt19937_64's 312-word state vector as
  /// space-separated decimals) so a stream can be resumed exactly where it
  /// left off across process restarts (docs/PERSISTENCE.md).
  std::string save_state() const {
    std::ostringstream os;
    os << engine_;
    return os.str();
  }

  /// Restores a state produced by save_state(); the next draw continues the
  /// saved stream. Throws std::invalid_argument on malformed input.
  void restore_state(const std::string& state) {
    std::istringstream is(state);
    std::mt19937_64 engine;
    is >> engine;
    if (is.fail()) {
      throw std::invalid_argument("Rng::restore_state: malformed state");
    }
    engine_ = engine;
  }

  /// Access to the raw engine for std distributions not wrapped here.
  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace compsynth::util
