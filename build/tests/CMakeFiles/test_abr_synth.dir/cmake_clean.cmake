file(REMOVE_RECURSE
  "CMakeFiles/test_abr_synth.dir/abr_synth_integration_test.cpp.o"
  "CMakeFiles/test_abr_synth.dir/abr_synth_integration_test.cpp.o.d"
  "test_abr_synth"
  "test_abr_synth.pdb"
  "test_abr_synth[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_abr_synth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
