#include "abr/qoe.h"

#include <limits>
#include <stdexcept>

#include "abr/algorithms.h"
#include "sketch/eval.h"
#include "sketch/library.h"

namespace compsynth::abr {

std::vector<PortfolioEntry> standard_portfolio() {
  return {
      {"fixed-sd", [] { return std::make_unique<FixedAbr>(1); }},
      {"rate", [] { return std::make_unique<RateBasedAbr>(); }},
      {"buffer", [] { return std::make_unique<BufferBasedAbr>(); }},
      {"bola", [] { return std::make_unique<BolaAbr>(); }},
      {"hybrid", [] { return std::make_unique<HybridAbr>(); }},
  };
}

std::vector<AbrCandidate> evaluate_portfolio(
    const Video& video, std::span<const Trace> traces,
    std::span<const PortfolioEntry> portfolio, SimulatorConfig config) {
  if (traces.empty()) throw std::invalid_argument("evaluate_portfolio: no traces");
  std::vector<AbrCandidate> out;
  out.reserve(portfolio.size());
  for (const PortfolioEntry& entry : portfolio) {
    AbrCandidate c;
    c.label = entry.label;
    for (const Trace& trace : traces) {
      const std::unique_ptr<AbrAlgorithm> algo = entry.make();
      const SessionMetrics m = simulate(video, trace, *algo, config);
      c.mean_metrics.average_bitrate_mbps += m.average_bitrate_mbps;
      c.mean_metrics.rebuffer_ratio_percent += m.rebuffer_ratio_percent;
      c.mean_metrics.switch_count += m.switch_count;
      c.mean_metrics.startup_seconds += m.startup_seconds;
      c.mean_metrics.total_stall_seconds += m.total_stall_seconds;
    }
    const auto n = static_cast<double>(traces.size());
    c.mean_metrics.average_bitrate_mbps /= n;
    c.mean_metrics.rebuffer_ratio_percent /= n;
    c.mean_metrics.switch_count /= n;
    c.mean_metrics.startup_seconds /= n;
    c.mean_metrics.total_stall_seconds /= n;
    c.scenario = to_scenario(c.mean_metrics);
    out.push_back(std::move(c));
  }
  return out;
}

std::size_t pick_best(const sketch::Sketch& sketch,
                      const sketch::HoleAssignment& objective,
                      std::span<const AbrCandidate> candidates) {
  if (candidates.empty()) throw std::invalid_argument("pick_best: no candidates");
  std::size_t best = 0;
  double best_value = -std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    const double v =
        sketch::eval(sketch, objective, candidates[i].scenario.metrics);
    if (v > best_value) {
      best_value = v;
      best = i;
    }
  }
  return best;
}

}  // namespace compsynth::abr
