// Cross-module integration: learn a QoE objective over the 4-metric ABR
// sketch and use it to select an ABR algorithm — the paper's §6.2 video
// workflow end to end.
#include <gtest/gtest.h>

#include "abr/qoe.h"
#include "oracle/ground_truth.h"
#include "sketch/eval.h"
#include "sketch/library.h"
#include "solver/equivalence.h"
#include "synth/synthesizer.h"
#include "util/rng.h"

namespace compsynth {
namespace {

sketch::HoleAssignment qoe_target(double rb_thrsh, double w_rebuf,
                                  double w_switch, double w_startup) {
  const auto& sk = sketch::abr_qoe_sketch();
  sketch::HoleAssignment a;
  a.index = {sk.holes()[0].nearest_index(rb_thrsh),
             sk.holes()[1].nearest_index(w_rebuf),
             sk.holes()[2].nearest_index(w_switch),
             sk.holes()[3].nearest_index(w_startup)};
  return a;
}

TEST(AbrSynthIntegration, FourMetricSynthesisConverges) {
  const auto& sk = sketch::abr_qoe_sketch();
  const auto target = qoe_target(2, 2, 0.5, 1);
  synth::SynthesisConfig config;
  config.seed = 606;
  config.max_iterations = 300;
  synth::Synthesizer s = synth::make_grid_synthesizer(sk, config);
  oracle::GroundTruthOracle viewer(sk, target, config.finder.tie_tolerance);
  const synth::SynthesisResult r = s.run(viewer);
  ASSERT_EQ(r.status, synth::SynthesisStatus::kConverged);
  ASSERT_TRUE(r.objective.has_value());
  EXPECT_TRUE(solver::ranking_equivalent(sk, *r.objective, target, config.finder));
}

TEST(AbrSynthIntegration, LearnedQoePicksSameAlgorithmAsLatent) {
  util::Rng rng(17);
  std::vector<abr::Trace> traces{abr::constant_trace(3.0),
                                 abr::square_trace(6, 0.8, 15),
                                 abr::random_walk_trace(rng, 3, 0.5, 8)};
  const auto candidates =
      abr::evaluate_portfolio(abr::Video{}, traces, abr::standard_portfolio());

  const auto& sk = sketch::abr_qoe_sketch();
  for (const auto& target :
       {qoe_target(0, 4, 0, 0),       // rebuffer-phobic
        qoe_target(5, 0.5, 0, 0),     // bitrate-hungry, stall-tolerant
        qoe_target(2, 2, 1, 1)}) {    // balanced
    synth::SynthesisConfig config;
    config.seed = 1000 + static_cast<std::uint64_t>(target.index[0]);
    config.max_iterations = 300;
    synth::Synthesizer s = synth::make_grid_synthesizer(sk, config);
    oracle::GroundTruthOracle viewer(sk, target, config.finder.tie_tolerance);
    const synth::SynthesisResult learned = s.run(viewer);
    ASSERT_TRUE(learned.objective.has_value());

    const std::size_t latent_pick = abr::pick_best(sk, target, candidates);
    const std::size_t learned_pick =
        abr::pick_best(sk, *learned.objective, candidates);
    // Ranking-equivalent objectives agree on the argmax up to exact ties.
    EXPECT_EQ(candidates[learned_pick].scenario, candidates[latent_pick].scenario);
  }
}

TEST(AbrSynthIntegration, BisectionStrategyAlsoCorrectOnQoeSketch) {
  const auto& sk = sketch::abr_qoe_sketch();
  const auto target = qoe_target(3, 1.5, 0.25, 0.5);
  synth::SynthesisConfig config;
  config.seed = 21;
  config.max_iterations = 300;
  synth::Synthesizer s = synth::make_bisection_synthesizer(sk, config);
  oracle::GroundTruthOracle viewer(sk, target, config.finder.tie_tolerance);
  const synth::SynthesisResult r = s.run(viewer);
  ASSERT_EQ(r.status, synth::SynthesisStatus::kConverged);
  ASSERT_TRUE(r.objective.has_value());
  EXPECT_TRUE(solver::ranking_equivalent(sk, *r.objective, target, config.finder));
}

TEST(AbrSynthIntegration, BisectionNeedsNoMoreInteractionsOnAverage) {
  const auto& sk = sketch::swan_sketch();
  const auto target = sketch::swan_target();
  double plain = 0, bisect = 0;
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    synth::SynthesisConfig config;
    config.seed = 3000 + seed;
    oracle::GroundTruthOracle u1(sk, target, config.finder.tie_tolerance);
    plain += synth::make_grid_synthesizer(sk, config).run(u1).interactions;
    oracle::GroundTruthOracle u2(sk, target, config.finder.tie_tolerance);
    bisect += synth::make_bisection_synthesizer(sk, config).run(u2).interactions;
  }
  EXPECT_LE(bisect, plain);
}

}  // namespace
}  // namespace compsynth
