file(REMOVE_RECURSE
  "CMakeFiles/compsynth_pref.dir/graph.cpp.o"
  "CMakeFiles/compsynth_pref.dir/graph.cpp.o.d"
  "CMakeFiles/compsynth_pref.dir/scenario.cpp.o"
  "CMakeFiles/compsynth_pref.dir/scenario.cpp.o.d"
  "CMakeFiles/compsynth_pref.dir/serialize.cpp.o"
  "CMakeFiles/compsynth_pref.dir/serialize.cpp.o.d"
  "libcompsynth_pref.a"
  "libcompsynth_pref.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compsynth_pref.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
