// Mutex-guarded whole-line writer.
//
// Both the leveled logger (util/log.h) and the trace file sink
// (obs/trace.h) write one self-contained line per call, possibly from
// several util::ThreadPool workers at once. Raw `stream << line` calls can
// interleave mid-line under contention; LineWriter serializes at line
// granularity so every emitted line stays intact. One writer guards one
// stream — sharing the stderr writer between the logger and any
// stderr-directed sink keeps their lines from splicing into each other.
#pragma once

#include <iostream>
#include <ostream>
#include <string_view>

#include "util/sync.h"
#include "util/thread_annotations.h"

namespace compsynth::util {

class LineWriter {
 public:
  /// Binds to a stream the caller keeps alive for the writer's lifetime.
  explicit LineWriter(std::ostream& os) : os_(&os) {}

  LineWriter(const LineWriter&) = delete;
  LineWriter& operator=(const LineWriter&) = delete;

  /// Writes `line` plus a trailing newline atomically with respect to other
  /// write_line calls on this writer, then flushes (lines are observability
  /// output: losing buffered tail lines on a crash would defeat the point).
  void write_line(std::string_view line) EXCLUDES(mutex_) {
    const MutexLock lock(mutex_);
    *os_ << line << '\n';
    os_->flush();
  }

 private:
  Mutex mutex_;
  /// The pointer is set once in the constructor; the stream behind it is
  /// only ever touched with mutex_ held.
  std::ostream* os_ PT_GUARDED_BY(mutex_);
};

/// The process-wide stderr writer. util::log_line routes through it, and
/// any sink that targets stderr should share it rather than writing to
/// std::cerr directly.
inline LineWriter& stderr_line_writer() {
  static LineWriter writer(std::cerr);
  return writer;
}

}  // namespace compsynth::util
