#include "solver/grid_finder.h"

#include <algorithm>
#include <array>
#include <atomic>
#include <bit>
#include <cmath>
#include <limits>
#include <sstream>
#include <stdexcept>
#include <string>
#include <utility>

#include "obs/run_context.h"
#include "sketch/analyze.h"
#include "sketch/eval.h"
#include "util/log.h"
#include "util/timer.h"

namespace compsynth::solver {

namespace {

constexpr std::int64_t kMaxEnumerableCandidates = 4'000'000;

// Below this many candidates a parallel rebuild costs more in scheduling
// than it saves; run inline.
constexpr std::int64_t kMinParallelCandidates = 2048;

constexpr double kNotComputed = std::numeric_limits<double>::quiet_NaN();

}  // namespace

GridFinder::GridFinder(sketch::Sketch sketch, GridFinderConfig config,
                       Viability viability, ScenarioDomain domain)
    : sketch_(std::move(sketch)),
      compiled_(sketch_),
      batch_(sketch_),
      hole_used_(sketch::used_holes(*sketch_.body(), sketch_.holes().size())),
      config_(config),
      viability_(std::move(viability)),
      domain_(std::move(domain)),
      rng_(config.seed) {
  validate_domain(sketch_, domain_);
  if (config_.base.distinguish_margin <= config_.base.tie_tolerance) {
    throw std::invalid_argument(
        "GridFinder: distinguish_margin must exceed tie_tolerance");
  }
  if (config_.threads < 0) {
    throw std::invalid_argument("GridFinder: threads must be >= 0");
  }
  if (sketch_.candidate_space_size() > kMaxEnumerableCandidates) {
    throw std::invalid_argument(
        "GridFinder: hole grid too large to enumerate; use Z3Finder");
  }
  if (config_.threads > 1) {
    own_pool_ = std::make_unique<util::ThreadPool>(
        static_cast<std::size_t>(config_.threads));
  }
}

util::ThreadPool* GridFinder::pool() const {
  if (config_.threads == 1) return nullptr;
  if (own_pool_ != nullptr) return own_pool_.get();
  return &util::ThreadPool::shared();
}

double GridFinder::objective(std::span<const double> hole_values,
                             std::span<const double> metrics) const {
  // kBatch shares the scalar tape here: distinguishing-pair search and
  // bisection scoring evaluate ONE candidate against many scenarios — the
  // transpose of the lane tape's 8-candidates-1-scenario shape — and the
  // two tapes are bit-identical anyway (tests/compile_test.cpp).
  if (config_.eval_backend != EvalBackend::kTree) {
    return compiled_.eval(metrics, hole_values);
  }
  return sketch::eval_with_values(sketch_, hole_values, metrics);
}

std::vector<double> GridFinder::objective_batch(
    std::span<const double> hole_values,
    const std::vector<pref::Scenario>& scenarios) const {
  std::vector<double> out(scenarios.size());
  if (config_.eval_backend != EvalBackend::kTree) {
    const std::size_t width = sketch_.metrics().size();
    std::vector<double> flat(scenarios.size() * width);
    for (std::size_t i = 0; i < scenarios.size(); ++i) {
      std::copy(scenarios[i].metrics.begin(), scenarios[i].metrics.end(),
                flat.begin() + static_cast<std::ptrdiff_t>(i * width));
    }
    compiled_.eval_many(flat, hole_values, out);
  } else {
    for (std::size_t i = 0; i < scenarios.size(); ++i) {
      out[i] = sketch::eval_with_values(sketch_, hole_values,
                                        scenarios[i].metrics);
    }
  }
  return out;
}

double GridFinder::value_at(Survivor& s, const pref::PreferenceGraph& graph,
                            pref::VertexId v) const {
  if (v >= s.vertex_values.size()) {
    s.vertex_values.resize(graph.vertex_count(), kNotComputed);
  }
  double& slot = s.vertex_values[v];
  if (std::isnan(slot)) {
    slot = objective(s.hole_values, graph.scenario(v).metrics);
  }
  return slot;
}

bool GridFinder::consistent(Survivor& s, const pref::PreferenceGraph& graph,
                            std::size_t first_edge,
                            std::size_t first_tie) const {
  const double tie_bound = config_.base.tie_tolerance + 1e-9;
  const auto& edges = graph.edges();
  for (std::size_t i = first_edge; i < edges.size(); ++i) {
    const double better = value_at(s, graph, edges[i].better);
    const double worse = value_at(s, graph, edges[i].worse);
    if (!(better > worse)) return false;
  }
  const auto& ties = graph.ties();
  for (std::size_t i = first_tie; i < ties.size(); ++i) {
    const double fu = value_at(s, graph, ties[i].first);
    const double fv = value_at(s, graph, ties[i].second);
    if (std::abs(fu - fv) > tie_bound) return false;
  }
  return true;
}

sketch::HoleAssignment GridFinder::assignment_at(std::int64_t linear) const {
  sketch::HoleAssignment a;
  a.index.resize(sketch_.holes().size());
  for (std::size_t i = 0; i < a.index.size(); ++i) {
    const std::int64_t count = sketch_.holes()[i].count;
    a.index[i] = linear % count;
    linear /= count;
  }
  return a;
}

void GridFinder::enumerate_range(std::int64_t lo, std::int64_t hi,
                                 const pref::PreferenceGraph& graph,
                                 std::vector<Survivor>& out) const {
  const std::size_t n_vertices = graph.vertex_count();
  const auto& holes = sketch_.holes();
  Survivor scratch;
  scratch.assignment = assignment_at(lo);
  scratch.hole_values.resize(holes.size());
  for (std::int64_t i = lo; i < hi; ++i) {
    scratch.linear = i;
    for (std::size_t h = 0; h < holes.size(); ++h) {
      scratch.hole_values[h] = holes[h].value_at(scratch.assignment.index[h]);
    }
    const bool viable =
        !viability_.concrete || viability_.concrete(scratch.hole_values);
    if (viable) {
      scratch.vertex_values.assign(n_vertices, kNotComputed);
      if (consistent(scratch, graph, 0, 0)) out.push_back(scratch);
    }
    // Odometer increment over the grid (index 0 varies fastest, matching
    // assignment_at's linear decoding).
    std::size_t pos = 0;
    while (pos < scratch.assignment.index.size()) {
      if (++scratch.assignment.index[pos] < holes[pos].count) break;
      scratch.assignment.index[pos] = 0;
      ++pos;
    }
  }
}

std::int64_t GridFinder::shard_span(std::int64_t total) {
  // Wide enough that per-shard overhead (part vectors, scratch buffers) is
  // noise, narrow enough that a big grid still yields ~64 shards to balance
  // across a pool. Depends only on `total`, never on the thread count, so
  // the serialized per-shard state (save_state v2) is machine-independent.
  return std::max<std::int64_t>(4096, (total + 63) / 64);
}

void GridFinder::enumerate_range_batch(std::int64_t lo, std::int64_t hi,
                                       const pref::PreferenceGraph& graph,
                                       std::vector<Survivor>& out,
                                       BatchCounters& counters) const {
  constexpr std::size_t W = sketch::kBatchLaneWidth;
  const std::size_t n_vertices = graph.vertex_count();
  const auto& holes = sketch_.holes();
  const std::size_t n_holes = holes.size();
  const double tie_bound = config_.base.tie_tolerance + 1e-9;
  const auto& edges = graph.edges();
  const auto& ties = graph.ties();

  // Odometer cursor shared across groups (index 0 varies fastest, matching
  // assignment_at / enumerate_range).
  sketch::HoleAssignment cursor = assignment_at(lo);

  std::vector<std::int64_t> idx(W * n_holes);    // lane-major hole indices
  std::vector<double> holes_soa(n_holes * W);    // hole h, lane l at h*W+l
  std::vector<double> lane_values(n_holes);      // AoS view for viability
  std::vector<double> vvals(n_vertices * W);     // vertex v, lane l at v*W+l
  std::vector<sketch::LaneError> verrs(n_vertices * W);
  std::vector<char> vdone(n_vertices, 0);
  // Bit l of verr_bits[v] = lane l errored on vertex v (valid when vdone[v]).
  std::vector<unsigned char> verr_bits(n_vertices, 0);
  std::array<sketch::LaneError, W> lane_err{};

  for (std::int64_t base = lo; base < hi; base += W) {
    const std::size_t n =
        static_cast<std::size_t>(std::min<std::int64_t>(W, hi - base));
    ++counters.groups;

    // Stage the group: decode + advance the odometer per lane, compute hole
    // values, run the viability gate. Spare lanes (a tail group narrower
    // than W) copy the last real candidate so every lane holds in-domain
    // values; they start dead and their outputs are ignored.
    unsigned alive_bits = 0;  // bit l = lane l still satisfies everything
    for (std::size_t l = 0; l < n; ++l) {
      for (std::size_t h = 0; h < n_holes; ++h) {
        idx[l * n_holes + h] = cursor.index[h];
        const double v = holes[h].value_at(cursor.index[h]);
        lane_values[h] = v;
        holes_soa[h * W + l] = v;
      }
      if (!viability_.concrete || viability_.concrete(lane_values)) {
        alive_bits |= 1u << l;
      }
      lane_err[l] = sketch::LaneError::kNone;
      std::size_t pos = 0;
      while (pos < n_holes) {
        if (++cursor.index[pos] < holes[pos].count) break;
        cursor.index[pos] = 0;
        ++pos;
      }
    }
    for (std::size_t l = n; l < W; ++l) {
      for (std::size_t h = 0; h < n_holes; ++h) {
        holes_soa[h * W + l] = holes_soa[h * W + (n - 1)];
      }
      lane_err[l] = sketch::LaneError::kNone;
    }
    std::fill(vdone.begin(), vdone.end(), char{0});

    const auto ensure = [&](pref::VertexId v) {
      if (vdone[v]) return;
      vdone[v] = 1;
      batch_.eval_lanes(graph.scenario(v).metrics, holes_soa, &vvals[v * W],
                        &verrs[v * W]);
      unsigned bits = 0;
      for (std::size_t l = 0; l < n; ++l) {
        if (verrs[v * W + l] != sketch::LaneError::kNone) bits |= 1u << l;
      }
      verr_bits[v] = static_cast<unsigned char>(bits);
      counters.lane_evals += static_cast<long long>(W);
    };

    // Constraint checks mirror consistent() per lane: the better vertex's
    // error is observed first (value_at order), then the worse one's, then
    // the comparison — so each lane's first recorded error is exactly the
    // EvalError the scalar scan would have thrown for that candidate. Error
    // lanes take the scalar slow path (rare); the comparison itself is one
    // vectorized mask per edge. lane_gt_bits is false on NaN, matching
    // `!(fb > fw)` killing the lane.
    for (const auto& e : edges) {
      if (alive_bits == 0) break;
      ensure(e.better);
      ensure(e.worse);
      const unsigned err_mask =
          static_cast<unsigned>(verr_bits[e.better] | verr_bits[e.worse]) &
          alive_bits;
      if (err_mask != 0) {
        for (unsigned bits = err_mask; bits != 0; bits &= bits - 1) {
          const auto l = static_cast<std::size_t>(std::countr_zero(bits));
          const sketch::LaneError eb = verrs[e.better * W + l];
          lane_err[l] =
              eb != sketch::LaneError::kNone ? eb : verrs[e.worse * W + l];
        }
        alive_bits &= ~err_mask;
      }
      alive_bits &=
          sketch::lane_gt_bits(&vvals[e.better * W], &vvals[e.worse * W]);
    }
    // lane_abs_diff_gt_bits is false on NaN, so a NaN difference never
    // exceeds the bound and the lane survives, matching consistent().
    for (const auto& t : ties) {
      if (alive_bits == 0) break;
      ensure(t.first);
      ensure(t.second);
      const unsigned err_mask =
          static_cast<unsigned>(verr_bits[t.first] | verr_bits[t.second]) &
          alive_bits;
      if (err_mask != 0) {
        for (unsigned bits = err_mask; bits != 0; bits &= bits - 1) {
          const auto l = static_cast<std::size_t>(std::countr_zero(bits));
          const sketch::LaneError eu = verrs[t.first * W + l];
          lane_err[l] =
              eu != sketch::LaneError::kNone ? eu : verrs[t.second * W + l];
        }
        alive_bits &= ~err_mask;
      }
      alive_bits &= ~sketch::lane_abs_diff_gt_bits(
          &vvals[t.first * W], &vvals[t.second * W], tie_bound);
    }

    // Drain the group in candidate order: survivors below an erroring lane
    // are appended before its EvalError is re-thrown, exactly as the scalar
    // scan would have produced them before throwing.
    for (std::size_t l = 0; l < n; ++l) {
      if (lane_err[l] != sketch::LaneError::kNone) {
        sketch::throw_lane_error(lane_err[l]);
      }
      if (((alive_bits >> l) & 1u) == 0) continue;
      Survivor s;
      s.linear = base + static_cast<std::int64_t>(l);
      s.assignment.index.assign(
          idx.begin() + static_cast<std::ptrdiff_t>(l * n_holes),
          idx.begin() + static_cast<std::ptrdiff_t>((l + 1) * n_holes));
      s.hole_values.resize(n_holes);
      for (std::size_t h = 0; h < n_holes; ++h) {
        s.hole_values[h] = holes_soa[h * W + l];
      }
      // An alive lane was alive through every constraint check, so every
      // evaluated vertex had its error flag inspected for this lane: all
      // its values are clean and safe to memoize.
      s.vertex_values.assign(n_vertices, kNotComputed);
      for (std::size_t v = 0; v < n_vertices; ++v) {
        if (vdone[v]) s.vertex_values[v] = vvals[v * W + l];
      }
      out.push_back(std::move(s));
    }
  }
}

void GridFinder::filter_range_batch(std::size_t lo, std::size_t hi,
                                    const pref::PreferenceGraph& graph,
                                    std::vector<char>& keep,
                                    BatchCounters& counters) {
  constexpr std::size_t W = sketch::kBatchLaneWidth;
  const std::size_t n_vertices = graph.vertex_count();
  const std::size_t n_holes = sketch_.holes().size();
  const double tie_bound = config_.base.tie_tolerance + 1e-9;
  const auto& edges = graph.edges();
  const auto& ties = graph.ties();

  std::vector<double> holes_soa(n_holes * W);
  std::vector<double> vvals(n_vertices * W);
  std::vector<sketch::LaneError> verrs(n_vertices * W);
  std::vector<char> vdone(n_vertices, 0);
  // Bit l of verr_bits[v] = lane l errored on vertex v (valid when vdone[v]).
  std::vector<unsigned char> verr_bits(n_vertices, 0);
  std::array<double, W> fresh_vals{};
  std::array<sketch::LaneError, W> fresh_errs{};
  std::array<sketch::LaneError, W> lane_err{};

  for (std::size_t base = lo; base < hi; base += W) {
    const std::size_t n = std::min(W, hi - base);
    ++counters.groups;
    unsigned alive_bits =
        static_cast<unsigned>((1u << n) - 1);  // real lanes start alive
    for (std::size_t l = 0; l < n; ++l) {
      const Survivor& s = survivors_[base + l];
      for (std::size_t h = 0; h < n_holes; ++h) {
        holes_soa[h * W + l] = s.hole_values[h];
      }
      lane_err[l] = sketch::LaneError::kNone;
    }
    for (std::size_t l = n; l < W; ++l) {
      for (std::size_t h = 0; h < n_holes; ++h) {
        holes_soa[h * W + l] = holes_soa[h * W + (n - 1)];
      }
      lane_err[l] = sketch::LaneError::kNone;
    }
    std::fill(vdone.begin(), vdone.end(), char{0});

    // Memo-aware vertex evaluation, the same contract as value_at: a lane
    // with a cached (non-NaN) value for `v` reuses it and cannot error; the
    // tape runs only when at least one lane lacks the memo. Evaluation is
    // deterministic, so a memoized lane's recomputed value would be
    // bit-identical anyway — using the memo just skips the work.
    const auto ensure = [&](pref::VertexId v) {
      if (vdone[v]) return;
      vdone[v] = 1;
      double* vals = &vvals[v * W];
      sketch::LaneError* errs = &verrs[v * W];
      bool any_fresh = false;
      for (std::size_t l = 0; l < n; ++l) {
        const Survivor& s = survivors_[base + l];
        if (v < s.vertex_values.size() && !std::isnan(s.vertex_values[v])) {
          vals[l] = s.vertex_values[v];
          errs[l] = sketch::LaneError::kNone;
        } else {
          any_fresh = true;
        }
      }
      if (!any_fresh) {
        verr_bits[v] = 0;  // memoized values cannot error
        return;
      }
      batch_.eval_lanes(graph.scenario(v).metrics, holes_soa,
                        fresh_vals.data(), fresh_errs.data());
      counters.lane_evals += static_cast<long long>(W);
      unsigned bits = 0;
      for (std::size_t l = 0; l < n; ++l) {
        const Survivor& s = survivors_[base + l];
        if (v < s.vertex_values.size() && !std::isnan(s.vertex_values[v])) {
          continue;  // memo already copied above
        }
        vals[l] = fresh_vals[l];
        errs[l] = fresh_errs[l];
        if (errs[l] != sketch::LaneError::kNone) bits |= 1u << l;
      }
      verr_bits[v] = static_cast<unsigned char>(bits);
    };

    // Same bitmask pattern as enumerate_range_batch: scalar slow path only
    // for erroring lanes, one vectorized mask per constraint otherwise.
    for (std::size_t ei = edges_seen_; ei < edges.size(); ++ei) {
      if (alive_bits == 0) break;
      const auto& e = edges[ei];
      ensure(e.better);
      ensure(e.worse);
      const unsigned err_mask =
          static_cast<unsigned>(verr_bits[e.better] | verr_bits[e.worse]) &
          alive_bits;
      if (err_mask != 0) {
        for (unsigned bits = err_mask; bits != 0; bits &= bits - 1) {
          const auto l = static_cast<std::size_t>(std::countr_zero(bits));
          const sketch::LaneError eb = verrs[e.better * W + l];
          lane_err[l] =
              eb != sketch::LaneError::kNone ? eb : verrs[e.worse * W + l];
        }
        alive_bits &= ~err_mask;
      }
      alive_bits &=
          sketch::lane_gt_bits(&vvals[e.better * W], &vvals[e.worse * W]);
    }
    for (std::size_t ti = ties_seen_; ti < ties.size(); ++ti) {
      if (alive_bits == 0) break;
      const auto& t = ties[ti];
      ensure(t.first);
      ensure(t.second);
      const unsigned err_mask =
          static_cast<unsigned>(verr_bits[t.first] | verr_bits[t.second]) &
          alive_bits;
      if (err_mask != 0) {
        for (unsigned bits = err_mask; bits != 0; bits &= bits - 1) {
          const auto l = static_cast<std::size_t>(std::countr_zero(bits));
          const sketch::LaneError eu = verrs[t.first * W + l];
          lane_err[l] =
              eu != sketch::LaneError::kNone ? eu : verrs[t.second * W + l];
        }
        alive_bits &= ~err_mask;
      }
      alive_bits &= ~sketch::lane_abs_diff_gt_bits(
          &vvals[t.first * W], &vvals[t.second * W], tie_bound);
    }

    for (std::size_t l = 0; l < n; ++l) {
      if (lane_err[l] != sketch::LaneError::kNone) {
        sketch::throw_lane_error(lane_err[l]);
      }
      if (((alive_bits >> l) & 1u) == 0) {
        keep[base + l] = 0;
        continue;
      }
      keep[base + l] = 1;
      Survivor& s = survivors_[base + l];
      if (s.vertex_values.size() < n_vertices) {
        s.vertex_values.resize(n_vertices, kNotComputed);
      }
      for (std::size_t v = 0; v < n_vertices; ++v) {
        if (vdone[v]) s.vertex_values[v] = vvals[v * W + l];
      }
    }
  }
}

bool GridFinder::rebuild_pruned(const pref::PreferenceGraph& graph) {
  const auto& holes = sketch_.holes();
  const std::size_t n_holes = holes.size();

  // Degenerate dimensions: holes the body never reads cannot influence any
  // objective value, so consistency is decided by the used dimensions alone.
  // Enumerate index 0 of each unread dimension and replicate the survivors
  // across its full grid afterwards. A concrete viability callback may
  // inspect unread hole values, so pinning is disabled in that case.
  std::vector<std::size_t> pinned;
  if (!viability_.concrete) {
    for (std::size_t h = 0; h < n_holes; ++h) {
      if (!hole_used_[h] && holes[h].count > 1) pinned.push_back(h);
    }
  }
  const bool have_constraints =
      !graph.edges().empty() || !graph.ties().empty();
  if (pinned.empty() && !have_constraints) return false;  // nothing to gain

  obs::Span span(obs_, "analysis");

  const sketch::Expr& body = *sketch_.body();
  const double tie_bound = config_.base.tie_tolerance + 1e-9;

  // Every graph vertex as a point metric box, built once.
  std::vector<std::vector<sketch::Interval>> vertex_metrics(
      graph.vertex_count());
  for (pref::VertexId v = 0; v < graph.vertex_count(); ++v) {
    auto& mv = vertex_metrics[v];
    const auto& metrics = graph.scenario(v).metrics;
    mv.reserve(metrics.size());
    for (const double x : metrics) mv.push_back(sketch::Interval::point(x));
  }

  // An inclusive index sub-box of the hole grid.
  struct Node {
    std::vector<std::int64_t> lo, hi;
  };
  const auto volume_of = [&](const Node& nd) {
    std::int64_t vol = 1;
    for (std::size_t h = 0; h < nd.lo.size(); ++h) {
      vol *= nd.hi[h] - nd.lo[h] + 1;
    }
    return vol;
  };

  // A box is refuted when the interval evaluation proves every candidate in
  // it violates some edge or tie of the graph. Edge {better, worse} fails
  // for a candidate unless f(better) > f(worse); if the better-vertex
  // enclosure lies entirely at or below the worse-vertex enclosure, no
  // candidate can pass (NaN outcomes fail `better > worse` anyway), provided
  // neither side can throw (a throwing candidate must be reached so the
  // exhaustive scan's behaviour is preserved). A tie fails only when
  // |f(u) - f(v)| > tie_bound, which a NaN never satisfies — so tie
  // refutation additionally requires NaN-freedom.
  const auto refuted = [&](const Node& nd) {
    std::vector<sketch::Interval> hole_iv(n_holes);
    for (std::size_t h = 0; h < n_holes; ++h) {
      hole_iv[h] = sketch::grid_interval(holes[h], nd.lo[h], nd.hi[h]);
    }
    sketch::Box box;
    box.holes = std::move(hole_iv);
    const auto eval_vertex = [&](pref::VertexId v) {
      box.metrics = vertex_metrics[v];
      return sketch::eval_interval(body, box);
    };
    for (const auto& e : graph.edges()) {
      const sketch::Interval ib = eval_vertex(e.better);
      const sketch::Interval iw = eval_vertex(e.worse);
      if (!ib.maybe_error && !iw.maybe_error && ib.hi <= iw.lo) return true;
    }
    for (const auto& t : graph.ties()) {
      const sketch::Interval iu = eval_vertex(t.first);
      const sketch::Interval iv = eval_vertex(t.second);
      const sketch::Interval d = sketch::interval_sub(iu, iv);
      if (!d.maybe_nan && !d.maybe_error &&
          (d.lo > tie_bound || d.hi < -tie_bound)) {
        return true;
      }
    }
    return false;
  };

  // Branch and prune: subdivide until a box is refuted or small enough to
  // enumerate. Below the leaf volume the per-candidate scan is cheaper than
  // further interval evaluations.
  constexpr std::int64_t kLeafVolume = 512;
  Node root;
  root.lo.assign(n_holes, 0);
  root.hi.resize(n_holes);
  for (std::size_t h = 0; h < n_holes; ++h) root.hi[h] = holes[h].count - 1;
  for (const std::size_t p : pinned) root.hi[p] = 0;

  std::vector<Node> leaves;
  long long pruned_regions = 0;
  long long pruned_candidates = 0;
  if (!have_constraints) {
    leaves.push_back(std::move(root));  // pinning alone does the work
  } else {
    std::vector<Node> work;
    work.push_back(std::move(root));
    while (!work.empty()) {
      Node nd = std::move(work.back());
      work.pop_back();
      if (refuted(nd)) {
        ++pruned_regions;
        pruned_candidates += volume_of(nd);
        continue;
      }
      std::size_t widest = 0;
      std::int64_t width = 0;
      for (std::size_t h = 0; h < n_holes; ++h) {
        if (nd.hi[h] - nd.lo[h] > width) {
          width = nd.hi[h] - nd.lo[h];
          widest = h;
        }
      }
      if (width == 0 || volume_of(nd) <= kLeafVolume) {
        leaves.push_back(std::move(nd));
        continue;
      }
      const std::int64_t mid = nd.lo[widest] + (nd.hi[widest] - nd.lo[widest]) / 2;
      Node right = nd;
      nd.hi[widest] = mid;
      right.lo[widest] = mid + 1;
      // Push the upper half first so the lower half is processed first,
      // keeping leaf discovery roughly in ascending index order.
      work.push_back(std::move(right));
      work.push_back(std::move(nd));
    }
  }

  // Linear index strides (index 0 fastest, matching assignment_at).
  std::vector<std::int64_t> stride(n_holes, 1);
  for (std::size_t h = 1; h < n_holes; ++h) {
    stride[h] = stride[h - 1] * holes[h - 1].count;
  }

  // Enumerate the surviving leaves; each survivor carries its linear
  // candidate index so the final sort reproduces the exhaustive scan order.
  const auto enumerate_leaf = [&](const Node& nd, std::vector<Survivor>& out) {
    const std::size_t n_vertices = graph.vertex_count();
    Survivor scratch;
    scratch.assignment.index = nd.lo;
    scratch.hole_values.resize(n_holes);
    for (;;) {
      scratch.linear = 0;
      for (std::size_t h = 0; h < n_holes; ++h) {
        scratch.hole_values[h] =
            holes[h].value_at(scratch.assignment.index[h]);
        scratch.linear += scratch.assignment.index[h] * stride[h];
      }
      const bool viable =
          !viability_.concrete || viability_.concrete(scratch.hole_values);
      if (viable) {
        scratch.vertex_values.assign(n_vertices, kNotComputed);
        if (consistent(scratch, graph, 0, 0)) out.push_back(scratch);
      }
      std::size_t pos = 0;
      while (pos < n_holes) {
        if (++scratch.assignment.index[pos] <= nd.hi[pos]) break;
        scratch.assignment.index[pos] = nd.lo[pos];
        ++pos;
      }
      if (pos == n_holes) break;
    }
  };

  // The parallel path pays per-leaf scheduling and a result merge; with few
  // surviving candidates that overhead exceeds the scan itself (the
  // BENCH_eval "parallel vs compiled" regression), so small totals stay
  // serial just like the exhaustive rebuild below.
  std::int64_t leaf_volume = 0;
  for (const Node& nd : leaves) leaf_volume += volume_of(nd);

  std::vector<Survivor> found;
  util::ThreadPool* pool = this->pool();
  if (pool == nullptr || leaves.size() <= 1 ||
      leaf_volume < kMinParallelCandidates) {
    last_sync_threads_ = 1;
    last_sync_shards_ = 1;
    for (const Node& nd : leaves) enumerate_leaf(nd, found);
  } else {
    last_sync_threads_ = pool->size();
    last_sync_shards_ = leaves.size();
    std::vector<std::vector<Survivor>> parts(leaves.size());
    pool->parallel_for(0, leaves.size(), [&](std::size_t lo, std::size_t hi) {
      for (std::size_t k = lo; k < hi; ++k) enumerate_leaf(leaves[k], parts[k]);
    });
    std::size_t total = 0;
    for (const auto& p : parts) total += p.size();
    found.reserve(total);
    for (auto& p : parts) {
      for (Survivor& s : p) found.push_back(std::move(s));
    }
  }

  // Replicate across pinned dimensions: the objective never reads them, so
  // each replica shares the base survivor's memoized vertex values and its
  // consistency verdict.
  for (const std::size_t p : pinned) {
    const sketch::HoleSpec& spec = holes[p];
    const std::size_t base_n = found.size();
    for (std::int64_t idx = 1; idx < spec.count; ++idx) {
      const double val = spec.value_at(idx);
      for (std::size_t i = 0; i < base_n; ++i) {
        Survivor copy = found[i];
        copy.linear += idx * stride[p];
        copy.assignment.index[p] = idx;
        copy.hole_values[p] = val;
        found.push_back(std::move(copy));
      }
    }
  }

  std::sort(found.begin(), found.end(), [](const Survivor& a,
                                           const Survivor& b) {
    return a.linear < b.linear;
  });
  survivors_ = std::move(found);

  if (obs::active(obs_)) {
    obs_->count("analysis.pruned_regions", pruned_regions);
    obs_->count("analysis.pruned_candidates", pruned_candidates);
    if (obs::TraceEvent* e = span.event()) {
      e->str("kind", "prune")
          .integer("edges", static_cast<long long>(graph.edges().size()))
          .integer("ties", static_cast<long long>(graph.ties().size()))
          .integer("pruned_regions", pruned_regions)
          .integer("pruned_candidates", pruned_candidates)
          .integer("degenerate_dims", static_cast<long long>(pinned.size()))
          .integer("leaves", static_cast<long long>(leaves.size()))
          .integer("survivors", static_cast<long long>(survivors_.size()));
    }
  }
  return true;
}

void GridFinder::sync(const pref::PreferenceGraph& graph) {
  const bool shrunk =
      graph.edges().size() < edges_seen_ || graph.ties().size() < ties_seen_;
  const bool rebuild = !initialized_ || shrunk;
  const bool grown = graph.edges().size() > edges_seen_ ||
                     graph.ties().size() > ties_seen_;
  if (!rebuild && !grown) return;  // already in line with `graph`

  obs::Span span(obs_, "grid_sync");
  const std::size_t survivors_before = survivors_.size();
  const long long new_edges =
      static_cast<long long>(graph.edges().size()) -
      static_cast<long long>(edges_seen_);
  const long long new_ties = static_cast<long long>(graph.ties().size()) -
                             static_cast<long long>(ties_seen_);
  std::size_t shards = 1;
  std::vector<double> shard_secs;
  const bool batch_backend = config_.eval_backend == EvalBackend::kBatch;
  BatchCounters batch_tally;

  util::ThreadPool* pool = this->pool();
  bool pruned = false;
  bool distributed = false;
  if (rebuild) {
    survivors_.clear();
    // kBatch always runs the sharded exhaustive scan: interval refutation
    // costs more than it saves at lane-tape speeds (measured in
    // docs/EVALUATOR.md §Why kBatch skips analysis pruning), and the
    // differential suite proves pruning never changes the sequence anyway.
    if (!batch_backend && config_.analysis_pruning) {
      pruned = rebuild_pruned(graph);
    }
    const std::int64_t total = sketch_.candidate_space_size();
    if (batch_backend) {
      // Fixed-range shards: geometry is a pure function of the candidate
      // space (shard_span), never of the thread count, so the shard list —
      // and the per-shard snapshot state derived from it — is identical
      // whether the scan runs serially or across a pool. Shards share no
      // mutable state: each appends to its own part vector, merged here in
      // shard order, which reproduces the sequential survivor order.
      const std::int64_t span_len = shard_span(total);
      const auto n_shards =
          static_cast<std::size_t>((total + span_len - 1) / span_len);
      // Distribution seam: a configured backend gets first crack at the
      // fixed-range shards (full rebuilds only — they are pure functions of
      // sketch + graph + range). Viability callbacks cannot cross the wire,
      // so their presence pins the scan local. Any backend failure falls
      // through to the local scan below; a remote sync can change where the
      // work runs but never whether it completes.
      if (config_.shard_backend != nullptr && !viability_.concrete) {
        distributed = rebuild_remote(graph, n_shards, span_len, total);
      }
      if (distributed) {
        shards = n_shards;
        last_sync_shards_ = n_shards;
        last_sync_threads_ = 1;
      } else {
        std::vector<std::vector<Survivor>> parts(n_shards);
        std::vector<BatchCounters> tallies(n_shards);
        if (obs::active(obs_)) shard_secs.assign(n_shards, 0);
        const auto run_shard = [&](std::size_t k) {
          const std::int64_t a = static_cast<std::int64_t>(k) * span_len;
          const std::int64_t b = std::min<std::int64_t>(total, a + span_len);
          if (shard_secs.empty()) {
            enumerate_range_batch(a, b, graph, parts[k], tallies[k]);
          } else {
            util::Stopwatch shard_watch;
            enumerate_range_batch(a, b, graph, parts[k], tallies[k]);
            shard_secs[k] = shard_watch.elapsed_seconds();
          }
        };
        if (pool == nullptr || n_shards <= 1 ||
            total < kMinParallelCandidates) {
          last_sync_threads_ = 1;
          for (std::size_t k = 0; k < n_shards; ++k) run_shard(k);
        } else {
          last_sync_threads_ = pool->size();
          pool->parallel_for(0, n_shards, [&](std::size_t lo, std::size_t hi) {
            for (std::size_t k = lo; k < hi; ++k) run_shard(k);
          });
        }
        shards = n_shards;
        last_sync_shards_ = n_shards;
        std::size_t found = 0;
        for (const auto& p : parts) found += p.size();
        survivors_.reserve(found);
        for (auto& p : parts) {
          for (Survivor& s : p) survivors_.push_back(std::move(s));
        }
        for (const BatchCounters& t : tallies) {
          batch_tally.lane_evals += t.lane_evals;
          batch_tally.groups += t.groups;
        }
      }
    } else if (pruned) {
      // rebuild_pruned already produced the full survivor sequence (and
      // recorded the threads/shards it used).
    } else if (pool == nullptr || total < kMinParallelCandidates) {
      last_sync_threads_ = 1;
      last_sync_shards_ = 1;
      enumerate_range(0, total, graph, survivors_);
    } else {
      // Shard the linear candidate range; concatenating the per-chunk
      // results in chunk order reproduces the sequential survivor order
      // exactly, so parallelism never changes the version space.
      const auto n_chunks = static_cast<std::size_t>(std::min<std::int64_t>(
          total, static_cast<std::int64_t>(pool->size() * 8)));
      const std::int64_t chunk =
          (total + static_cast<std::int64_t>(n_chunks) - 1) /
          static_cast<std::int64_t>(n_chunks);
      std::vector<std::vector<Survivor>> parts(n_chunks);
      shards = n_chunks;
      last_sync_threads_ = pool->size();
      last_sync_shards_ = n_chunks;
      // Per-shard wall times, written into disjoint slots by the workers;
      // only measured when someone is listening.
      if (obs::active(obs_)) shard_secs.assign(n_chunks, 0);
      pool->parallel_for(0, n_chunks, [&](std::size_t lo, std::size_t hi) {
        for (std::size_t k = lo; k < hi; ++k) {
          const std::int64_t a = static_cast<std::int64_t>(k) * chunk;
          const std::int64_t b = std::min<std::int64_t>(total, a + chunk);
          if (a >= b) continue;
          if (shard_secs.empty()) {
            enumerate_range(a, b, graph, parts[k]);
          } else {
            util::Stopwatch shard_watch;
            enumerate_range(a, b, graph, parts[k]);
            shard_secs[k] = shard_watch.elapsed_seconds();
          }
        }
      });
      std::size_t found = 0;
      for (const auto& p : parts) found += p.size();
      survivors_.reserve(found);
      for (auto& p : parts) {
        for (Survivor& s : p) survivors_.push_back(std::move(s));
      }
    }
    initialized_ = true;
  } else {
    // Incremental filter: only the new edges/ties are checked, and each
    // survivor's memoized vertex values mean only newly interned scenarios
    // are evaluated at all.
    std::vector<char> keep(survivors_.size(), 1);
    // Work estimate: each survivor re-checks only the new edges/ties (plus
    // one freshly interned vertex evaluation at most). Late-loop syncs see a
    // handful of survivors x one new edge — dispatching pool chunks for that
    // costs more than the filter itself (the BENCH_eval "parallel" full-sync
    // regression), so small workloads run on the caller.
    const std::size_t filter_work =
        survivors_.size() *
        (graph.edges().size() - edges_seen_ + graph.ties().size() -
         ties_seen_ + 1);
    constexpr std::size_t kMinParallelFilterWork = 8192;
    if (batch_backend) {
      // survivors_ stays sorted by linear index, so each fixed-range shard
      // owns a contiguous position range: find the boundaries by shard id
      // (linear / span). Shards mutate only their own survivors' memos and
      // keep slots — no shared mutable state until the compaction below.
      const std::int64_t span_len = shard_span(sketch_.candidate_space_size());
      std::vector<std::size_t> bounds{0};
      for (std::size_t i = 1; i < survivors_.size(); ++i) {
        if (survivors_[i].linear / span_len !=
            survivors_[i - 1].linear / span_len) {
          bounds.push_back(i);
        }
      }
      bounds.push_back(survivors_.size());
      const std::size_t n_ranges = bounds.size() - 1;
      std::vector<BatchCounters> tallies(n_ranges);
      if (obs::active(obs_)) shard_secs.assign(n_ranges, 0);
      const auto run_range = [&](std::size_t k) {
        if (shard_secs.empty()) {
          filter_range_batch(bounds[k], bounds[k + 1], graph, keep,
                             tallies[k]);
        } else {
          util::Stopwatch shard_watch;
          filter_range_batch(bounds[k], bounds[k + 1], graph, keep,
                             tallies[k]);
          shard_secs[k] = shard_watch.elapsed_seconds();
        }
      };
      if (pool == nullptr || n_ranges <= 1 ||
          filter_work < kMinParallelFilterWork) {
        last_sync_threads_ = 1;
        for (std::size_t k = 0; k < n_ranges; ++k) run_range(k);
      } else {
        last_sync_threads_ = pool->size();
        pool->parallel_for(0, n_ranges, [&](std::size_t lo, std::size_t hi) {
          for (std::size_t k = lo; k < hi; ++k) run_range(k);
        });
      }
      shards = n_ranges;
      last_sync_shards_ = n_ranges;
      for (const BatchCounters& t : tallies) {
        batch_tally.lane_evals += t.lane_evals;
        batch_tally.groups += t.groups;
      }
    } else {
      auto filter = [&](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) {
          keep[i] =
              consistent(survivors_[i], graph, edges_seen_, ties_seen_) ? 1
                                                                        : 0;
        }
      };
      if (pool == nullptr || filter_work < kMinParallelFilterWork) {
        last_sync_threads_ = 1;
        last_sync_shards_ = 1;
        filter(0, survivors_.size());
      } else {
        last_sync_threads_ = pool->size();
        last_sync_shards_ = (survivors_.size() + 15) / 16;
        pool->parallel_for(0, survivors_.size(), filter, /*min_chunk=*/16);
      }
    }
    std::size_t out = 0;
    for (std::size_t i = 0; i < survivors_.size(); ++i) {
      if (!keep[i]) continue;
      if (out != i) survivors_[out] = std::move(survivors_[i]);
      ++out;
    }
    survivors_.resize(out);
  }
  edges_seen_ = graph.edges().size();
  ties_seen_ = graph.ties().size();
  util::log(util::LogLevel::kDebug, "GridFinder: version space size ",
            survivors_.size());

  if (obs::active(obs_)) {
    obs_->count("grid.syncs");
    obs_->gauge("grid.survivors", static_cast<double>(survivors_.size()));
    if (batch_backend) {
      obs_->count("grid.lane_evals", batch_tally.lane_evals);
      obs_->count("grid.batch_groups", batch_tally.groups);
    }
    double shard_min = 0, shard_max = 0;
    for (std::size_t k = 0; k < shard_secs.size(); ++k) {
      obs_->observe("grid.shard.seconds", shard_secs[k]);
      shard_min = k == 0 ? shard_secs[k] : std::min(shard_min, shard_secs[k]);
      shard_max = std::max(shard_max, shard_secs[k]);
    }
    if (obs::TraceEvent* e = span.event()) {
      e->str("mode", rebuild ? "full" : "incremental")
          .integer("pruned", pruned ? 1 : 0)
          .integer("survivors", static_cast<long long>(survivors_.size()))
          .integer("survivors_before",
                   static_cast<long long>(survivors_before))
          .integer("new_edges", new_edges)
          .integer("new_ties", new_ties)
          .integer("shards", static_cast<long long>(shards))
          .integer("threads", static_cast<long long>(last_sync_threads_));
      if (batch_backend) {
        // Which lane kernel the dispatcher ran (schema rev 1.5): the ISA is
        // selected once at startup, so benches and bug reports can tell the
        // SIMD and scalar paths apart from the trace alone. "distributed"
        // (schema rev 1.6) marks a full rebuild satisfied by the configured
        // ShardSyncBackend instead of the local scan.
        e->str("lane_isa", sketch::lane_isa_name(sketch::active_lane_isa()))
            .integer("lane_width",
                     static_cast<long long>(sketch::kBatchLaneWidth))
            .integer("distributed", distributed ? 1 : 0);
      }
      if (!shard_secs.empty()) {
        e->num("shard_min_s", shard_min).num("shard_max_s", shard_max);
      }
    }
  }
}

std::vector<double> GridFinder::boundary_values(
    std::span<const double> hole_values, std::size_t metric) const {
  const sketch::MetricSpec& m = sketch_.metrics()[metric];
  const double nudge = (m.hi - m.lo) * 1e-3;
  std::vector<double> out{m.lo, m.hi};
  for (const double v : hole_values) {
    if (v > m.lo && v < m.hi) {
      out.push_back(v);
      out.push_back(std::min(m.hi, v + nudge));
      out.push_back(std::max(m.lo, v - nudge));
    }
  }
  return out;
}

std::optional<DistinguishingPair> GridFinder::distinguish(const Survivor& a,
                                                          const Survivor& b) {
  const double margin = config_.base.distinguish_margin;
  const std::size_t n_metrics = sketch_.metrics().size();

  // Boundary candidates per metric: hole values of either candidate (where
  // piecewise objectives flip regions), nudged to both sides, plus range
  // endpoints and midpoints.
  std::vector<std::vector<double>> boundaries(n_metrics);
  std::size_t cross_size = 1;
  for (std::size_t m = 0; m < n_metrics; ++m) {
    boundaries[m] = boundary_values(a.hole_values, m);
    const std::vector<double> more = boundary_values(b.hole_values, m);
    boundaries[m].insert(boundaries[m].end(), more.begin(), more.end());
    const sketch::MetricSpec& spec = sketch_.metrics()[m];
    boundaries[m].push_back((spec.lo + spec.hi) / 2);
    std::sort(boundaries[m].begin(), boundaries[m].end());
    // Dedupe with a tolerance relative to the metric range: boundary values
    // from the two candidates often differ only by rounding, and keeping
    // both would inflate cross_size past the deterministic-pass cutoff.
    // The tolerance is far below the 1e-3 nudge, so intentionally nudged
    // points are never merged.
    const double tol = (spec.hi - spec.lo) * 1e-6;
    std::size_t kept = 0;
    for (const double v : boundaries[m]) {
      if (kept == 0 || v - boundaries[m][kept - 1] > tol) {
        boundaries[m][kept++] = v;
      }
    }
    boundaries[m].resize(kept);
    cross_size *= boundaries[m].size();
  }

  auto check = [&](const pref::Scenario& s1, const pref::Scenario& s2)
      -> std::optional<DistinguishingPair> {
    const double fa1 = objective(a.hole_values, s1.metrics);
    const double fa2 = objective(a.hole_values, s2.metrics);
    const double fb1 = objective(b.hole_values, s1.metrics);
    const double fb2 = objective(b.hole_values, s2.metrics);
    if (fa1 >= fa2 + margin && fb2 >= fb1 + margin) {
      return DistinguishingPair{s1, s2};
    }
    if (fa2 >= fa1 + margin && fb1 >= fb2 + margin) {
      return DistinguishingPair{s2, s1};
    }
    return std::nullopt;
  };

  // Deterministic pass: for objectives that are piecewise products of the
  // metrics (the SWAN family), any ranking disagreement is witnessed at the
  // cross product of boundary values. Enumerate it when small enough.
  if (cross_size <= 1024) {
    std::vector<pref::Scenario> grid_points;
    grid_points.reserve(cross_size);
    std::vector<std::size_t> idx(n_metrics, 0);
    for (;;) {
      pref::Scenario s;
      s.metrics.reserve(n_metrics);
      for (std::size_t m = 0; m < n_metrics; ++m) {
        s.metrics.push_back(boundaries[m][idx[m]]);
      }
      if (domain_contains(sketch_, domain_, s.metrics)) {
        grid_points.push_back(std::move(s));
      }
      std::size_t pos = 0;
      while (pos < n_metrics && ++idx[pos] == boundaries[pos].size()) {
        idx[pos++] = 0;
      }
      if (pos == n_metrics) break;
    }
    // Cache both candidates' values so each pair test is two comparisons.
    const std::vector<double> fa = objective_batch(a.hole_values, grid_points);
    const std::vector<double> fb = objective_batch(b.hole_values, grid_points);
    // Randomize the scan order so repeated calls surface different pairs
    // (the synthesizer wants fresh scenarios each iteration).
    std::vector<std::size_t> order(grid_points.size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    rng_.shuffle(order);
    for (const std::size_t i : order) {
      for (const std::size_t j : order) {
        if (i == j) continue;  // a scenario can never distinguish from itself
        if (fa[i] >= fa[j] + margin && fb[j] >= fb[i] + margin) {
          return DistinguishingPair{grid_points[i], grid_points[j]};
        }
      }
    }
  }

  // Randomized fallback for sketch families whose disagreements are not
  // boundary-witnessed (or whose boundary cross product is too large).
  auto sample_scenario = [&] {
    pref::Scenario s;
    s.metrics.reserve(n_metrics);
    for (std::size_t m = 0; m < n_metrics; ++m) {
      const sketch::MetricSpec& spec = sketch_.metrics()[m];
      if (rng_.bernoulli(0.5)) {
        s.metrics.push_back(rng_.uniform_real(spec.lo, spec.hi));
      } else {
        s.metrics.push_back(boundaries[m][rng_.index(boundaries[m].size())]);
      }
    }
    return s;
  };
  for (int i = 0; i < config_.scenario_samples; ++i) {
    const pref::Scenario s1 = sample_scenario();
    const pref::Scenario s2 = sample_scenario();
    if (domain_.constraint != nullptr &&
        (!domain_contains(sketch_, domain_, s1.metrics) ||
         !domain_contains(sketch_, domain_, s2.metrics))) {
      continue;
    }
    if (auto hit = check(s1, s2)) return hit;
  }
  return std::nullopt;
}

FinderResult GridFinder::find_distinguishing(const pref::PreferenceGraph& graph,
                                             int num_pairs) {
  if (num_pairs < 1) throw std::invalid_argument("find_distinguishing: num_pairs < 1");
  if (cancelled()) {
    // Cancelled before any work: skip even the sync (the next uncancelled
    // call will bring the version space in line).
    FinderResult res;
    res.status = FinderStatus::kUnknown;
    return res;
  }
  sync(graph);

  // The span covers the candidate-pair search proper (sync has its own
  // "grid_sync" event above); `note` stamps the outcome just before return.
  obs::Span span(obs_, "pair_search");
  auto note = [&](const char* status, std::size_t examined,
                  std::size_t witnesses, std::size_t pairs) {
    if (obs_ != nullptr) obs_->count("grid.pair_searches");
    if (obs::TraceEvent* e = span.event()) {
      e->str("status", status)
          .integer("survivors", static_cast<long long>(survivors_.size()))
          .integer("examined", static_cast<long long>(examined))
          .integer("witnesses", static_cast<long long>(witnesses))
          .integer("pairs", static_cast<long long>(pairs))
          .str("strategy", config_.strategy == QueryStrategy::kBisection
                               ? "bisection"
                               : "first_found");
    }
  };

  if (survivors_.empty()) {
    note("no_candidate", 0, 0, 0);
    FinderResult res;
    res.status = FinderStatus::kNoCandidate;
    return res;
  }
  if (survivors_.size() == 1) {
    note("unique_ranking", 0, 0, 0);
    FinderResult res;
    res.status = FinderStatus::kUniqueRanking;
    res.candidate_a = survivors_.front().assignment;
    return res;
  }

  // Candidate pair schedule: exhaustive for small version spaces (so the
  // "unique ranking" verdict is as strong as possible), random otherwise.
  std::vector<std::pair<std::size_t, std::size_t>> schedule;
  if (survivors_.size() <= 48) {
    for (std::size_t i = 0; i < survivors_.size(); ++i) {
      for (std::size_t j = i + 1; j < survivors_.size(); ++j) {
        schedule.emplace_back(i, j);
      }
    }
    rng_.shuffle(schedule);
  } else {
    for (int attempt = 0; attempt < config_.candidate_pair_budget; ++attempt) {
      const std::size_t ia = rng_.index(survivors_.size());
      std::size_t ib = rng_.index(survivors_.size() - 1);
      if (ib >= ia) ++ib;
      schedule.emplace_back(ia, ib);
    }
  }

  // Collect disagreement witnesses. Under kFirstFound the first one wins
  // (mirroring an SMT solver's arbitrary model); under kBisection several
  // are scored by how evenly the user's answer would split the version
  // space, and the most informative one is asked.
  struct Witness {
    std::size_t ia = 0, ib = 0;
    DistinguishingPair pair;
  };
  std::vector<Witness> witnesses;
  const int wanted =
      config_.strategy == QueryStrategy::kBisection ? config_.bisection_samples : 1;

  std::size_t examined = 0;
  for (const auto& [ia, ib] : schedule) {
    if (static_cast<int>(witnesses.size()) >= wanted) break;
    if (cancelled()) {
      // Portfolio racing: the other leg already answered. kUnknown tells
      // the portfolio this leg has no verdict to contribute.
      note("cancelled", examined, witnesses.size(), 0);
      FinderResult res;
      res.status = FinderStatus::kUnknown;
      return res;
    }
    ++examined;
    if (auto pair = distinguish(survivors_[ia], survivors_[ib])) {
      witnesses.push_back(Witness{ia, ib, *std::move(pair)});
    }
  }

  if (witnesses.empty()) {
    // No disagreement among the survivors: report (approximate) ranking
    // uniqueness with an arbitrary representative.
    note("unique_ranking", schedule.size(), 0, 0);
    FinderResult res;
    res.status = FinderStatus::kUniqueRanking;
    res.candidate_a = survivors_.front().assignment;
    return res;
  }

  std::size_t chosen = 0;
  if (witnesses.size() > 1) {
    // Guaranteed elimination of an answer = survivors inconsistent with it;
    // the worst case over the two strict answers is the witness's value.
    // Every survivor's hole values are already materialized, and the chunked
    // counts are plain integer sums, so sharding keeps the score exact.
    util::ThreadPool* pool = this->pool();
    long best_score = -1;
    for (std::size_t w = 0; w < witnesses.size(); ++w) {
      const auto& p = witnesses[w].pair;
      std::atomic<long> prefer_1{0}, prefer_2{0};
      auto score = [&](std::size_t lo, std::size_t hi) {
        long local_1 = 0, local_2 = 0;
        for (std::size_t i = lo; i < hi; ++i) {
          const Survivor& cand = survivors_[i];
          const double f1 = objective(cand.hole_values, p.preferred_by_a.metrics);
          const double f2 = objective(cand.hole_values, p.preferred_by_b.metrics);
          if (f1 > f2) ++local_1;
          else if (f2 > f1) ++local_2;
        }
        prefer_1 += local_1;
        prefer_2 += local_2;
      };
      if (pool == nullptr) {
        score(0, survivors_.size());
      } else {
        pool->parallel_for(0, survivors_.size(), score, /*min_chunk=*/64);
      }
      const long score_w = std::min(prefer_1.load(), prefer_2.load());
      if (score_w > best_score) {
        best_score = score_w;
        chosen = w;
      }
    }
  }

  FinderResult res;
  res.status = FinderStatus::kFound;
  const std::size_t chosen_a = witnesses[chosen].ia;
  const std::size_t chosen_b = witnesses[chosen].ib;
  res.candidate_a = survivors_[chosen_a].assignment;
  res.candidate_b = survivors_[chosen_b].assignment;
  res.pairs.push_back(std::move(witnesses[chosen].pair));

  // Additional pairs (Fig. 4 protocol) come from the same candidate pair.
  for (int tries = 0;
       static_cast<int>(res.pairs.size()) < num_pairs && tries < 4 * num_pairs;
       ++tries) {
    const auto pair = distinguish(survivors_[chosen_a], survivors_[chosen_b]);
    if (!pair) break;
    const bool duplicate = std::any_of(
        res.pairs.begin(), res.pairs.end(), [&](const DistinguishingPair& p) {
          return p.preferred_by_a == pair->preferred_by_a &&
                 p.preferred_by_b == pair->preferred_by_b;
        });
    if (!duplicate) res.pairs.push_back(*pair);
  }
  note("found", schedule.size(), witnesses.size(), res.pairs.size());
  return res;
}

std::optional<sketch::HoleAssignment> GridFinder::find_consistent(
    const pref::PreferenceGraph& graph) {
  sync(graph);
  if (survivors_.empty()) return std::nullopt;
  return survivors_.front().assignment;
}

namespace {

constexpr char kGridStateTag[] = "gridfinder";
// v2 stores the survivor set as one bitmap per fixed-range shard
// (self-describing [lo, hi) ranges); v1 single-bitmap blobs still restore.
constexpr int kGridStateVersion = 2;

[[noreturn]] void bad_grid_state(const char* why) {
  throw std::invalid_argument(std::string("GridFinder::restore_state: ") + why);
}

}  // namespace

std::string GridFinder::save_state() const {
  const std::int64_t total = sketch_.candidate_space_size();
  const std::int64_t span_len = shard_span(total);
  const auto n_shards =
      static_cast<std::size_t>((total + span_len - 1) / span_len);
  std::vector<std::int64_t> stride(sketch_.holes().size(), 1);
  for (std::size_t h = 1; h < stride.size(); ++h) {
    stride[h] = stride[h - 1] * sketch_.holes()[h - 1].count;
  }
  // Per-shard survivor lists by linear index, rendered through the shared
  // record encoder (encode_shard_blob — the same lines the dist workers
  // produce). The linear index is recomputed from the assignment (not taken
  // from Survivor::linear) so serialization never depends on that cache
  // being fresh.
  std::vector<std::vector<std::int64_t>> linears(n_shards);
  for (const Survivor& s : survivors_) {
    std::int64_t linear = 0;
    for (std::size_t h = 0; h < stride.size(); ++h) {
      linear += s.assignment.index[h] * stride[h];
    }
    linears[static_cast<std::size_t>(linear / span_len)].push_back(linear);
  }
  std::ostringstream os;
  os << kGridStateTag << ' ' << kGridStateVersion << '\n'
     << "rng " << rng_.save_state() << '\n'
     << "seen " << (initialized_ ? 1 : 0) << ' ' << edges_seen_ << ' '
     << ties_seen_ << '\n'
     << "shards " << n_shards << ' ' << span_len << ' ' << total << ' '
     << survivors_.size() << '\n';
  for (std::size_t k = 0; k < n_shards; ++k) {
    const std::int64_t lo = static_cast<std::int64_t>(k) * span_len;
    const std::int64_t hi = std::min<std::int64_t>(total, lo + span_len);
    std::sort(linears[k].begin(), linears[k].end());
    os << encode_shard_blob(k, lo, hi, linears[k]) << '\n';
  }
  return os.str();
}

std::string GridFinder::encode_shard_blob(
    std::size_t index, std::int64_t lo, std::int64_t hi,
    const std::vector<std::int64_t>& linears) {
  // Bit j%8 of byte j/8 marks candidate lo + j; lowercase hex, two digits
  // per byte (low nibble first on the wire via the j%8<4 digit order the
  // decoder uses — identical to the v1/v2 save-state rendering).
  std::string bitmap(static_cast<std::size_t>((hi - lo + 7) / 8), '\0');
  for (const std::int64_t linear : linears) {
    const std::int64_t j = linear - lo;
    bitmap[static_cast<std::size_t>(j / 8)] |=
        static_cast<char>(1 << (j % 8));
  }
  std::ostringstream os;
  os << "shard " << index << ' ' << lo << ' ' << hi << ' ' << linears.size()
     << ' ';
  static constexpr char kHex[] = "0123456789abcdef";
  for (const char byte : bitmap) {
    const auto u = static_cast<unsigned char>(byte);
    os << kHex[u >> 4] << kHex[u & 0xf];
  }
  return os.str();
}

GridFinder::ParsedShardBlob GridFinder::parse_shard_blob(
    const std::string& record) {
  const auto bad = [](const char* why) {
    throw std::invalid_argument(std::string("shard record: ") + why);
  };
  std::istringstream in(record);
  std::string tag, hex;
  ParsedShardBlob blob;
  std::size_t count = 0;
  if (!(in >> tag) || tag != "shard") bad("missing 'shard' tag");
  if (!(in >> blob.index >> blob.lo >> blob.hi >> count)) {
    bad("truncated header fields");
  }
  if (blob.lo < 0 || blob.hi <= blob.lo) bad("empty or inverted range");
  if (!(in >> hex)) bad("truncated before bitmap");
  std::string trailing;
  if (in >> trailing) bad("trailing garbage after bitmap");
  const std::size_t bytes =
      static_cast<std::size_t>((blob.hi - blob.lo + 7) / 8);
  if (hex.size() != 2 * bytes) {
    bad(hex.size() < 2 * bytes ? "bitmap truncated mid-record"
                               : "bitmap longer than the shard range");
  }
  const auto nibble = [](char c) -> int {
    if (c >= '0' && c <= '9') return c - '0';
    if (c >= 'a' && c <= 'f') return c - 'a' + 10;
    return -1;
  };
  blob.linears.reserve(count);
  for (std::int64_t j = 0; j < blob.hi - blob.lo; ++j) {
    const char c =
        hex[static_cast<std::size_t>(j / 8) * 2 + (j % 8 < 4 ? 1 : 0)];
    const int nib = nibble(c);
    if (nib < 0) bad("bitmap is not lowercase hex");
    if ((nib >> (j % 4)) & 1) blob.linears.push_back(blob.lo + j);
  }
  if (blob.linears.size() != count) {
    bad("survivor count disagrees with the bitmap");
  }
  return blob;
}

std::vector<ShardRange> GridFinder::shard_ranges() const {
  const std::int64_t total = sketch_.candidate_space_size();
  const std::int64_t span_len = shard_span(total);
  const auto n_shards =
      static_cast<std::size_t>((total + span_len - 1) / span_len);
  std::vector<ShardRange> ranges(n_shards);
  for (std::size_t k = 0; k < n_shards; ++k) {
    ranges[k].index = k;
    ranges[k].lo = static_cast<std::int64_t>(k) * span_len;
    ranges[k].hi = std::min<std::int64_t>(total, ranges[k].lo + span_len);
  }
  return ranges;
}

std::string GridFinder::sync_shard_blob(const pref::PreferenceGraph& graph,
                                        std::size_t index, std::int64_t lo,
                                        std::int64_t hi) const {
  if (lo < 0 || hi <= lo || hi > sketch_.candidate_space_size()) {
    throw std::invalid_argument("sync_shard_blob: range outside the grid");
  }
  std::vector<Survivor> found;
  BatchCounters tally;
  enumerate_range_batch(lo, hi, graph, found, tally);
  std::vector<std::int64_t> linears;
  linears.reserve(found.size());
  for (const Survivor& s : found) linears.push_back(s.linear);
  return encode_shard_blob(index, lo, hi, linears);
}

Survivor GridFinder::materialize_survivor(std::int64_t linear) const {
  const auto& holes = sketch_.holes();
  Survivor s;
  s.linear = linear;
  s.assignment = assignment_at(linear);
  s.hole_values.resize(holes.size());
  for (std::size_t h = 0; h < holes.size(); ++h) {
    s.hole_values[h] = holes[h].value_at(s.assignment.index[h]);
  }
  return s;
}

bool GridFinder::rebuild_remote(const pref::PreferenceGraph& graph,
                                std::size_t n_shards, std::int64_t span_len,
                                std::int64_t total) {
  std::vector<ShardRange> ranges(n_shards);
  for (std::size_t k = 0; k < n_shards; ++k) {
    ranges[k].index = k;
    ranges[k].lo = static_cast<std::int64_t>(k) * span_len;
    ranges[k].hi = std::min<std::int64_t>(total, ranges[k].lo + span_len);
  }
  std::optional<std::vector<std::string>> records;
  try {
    records = config_.shard_backend->sync_shards(graph, ranges);
  } catch (const std::exception& ex) {
    util::log(util::LogLevel::kWarn,
              "GridFinder: remote sync failed, falling back to local scan: ",
              ex.what());
    return false;
  }
  if (!records || records->size() != n_shards) return false;
  // Decode into a scratch vector first: a torn record must leave survivors_
  // empty for the local fallback, never half-merged.
  std::vector<Survivor> merged;
  try {
    for (std::size_t k = 0; k < n_shards; ++k) {
      const ParsedShardBlob blob = parse_shard_blob((*records)[k]);
      if (blob.index != ranges[k].index || blob.lo != ranges[k].lo ||
          blob.hi != ranges[k].hi) {
        throw std::invalid_argument("shard record: range mismatch");
      }
      for (const std::int64_t linear : blob.linears) {
        merged.push_back(materialize_survivor(linear));
      }
    }
  } catch (const std::exception& ex) {
    util::log(util::LogLevel::kWarn,
              "GridFinder: rejecting remote shard record (", ex.what(),
              "); falling back to local scan");
    return false;
  }
  survivors_ = std::move(merged);
  return true;
}

void GridFinder::restore_state(const std::string& state) {
  std::istringstream in(state);
  std::string tag;
  int version = 0;
  if (!(in >> tag >> version) || tag != kGridStateTag) {
    bad_grid_state("malformed header");
  }
  if (version != 1 && version != kGridStateVersion) {
    bad_grid_state("unsupported version");
  }

  std::string rng_line;
  if (!(in >> tag) || tag != "rng") bad_grid_state("missing rng section");
  in.ignore();  // the space after "rng"
  if (!std::getline(in, rng_line)) bad_grid_state("truncated rng section");

  int initialized = 0;
  std::size_t edges_seen = 0, ties_seen = 0;
  if (!(in >> tag >> initialized >> edges_seen >> ties_seen) || tag != "seen") {
    bad_grid_state("malformed seen section");
  }

  const auto nibble = [](char c) -> int {
    if (c >= '0' && c <= '9') return c - '0';
    if (c >= 'a' && c <= 'f') return c - 'a' + 10;
    return -1;
  };
  // Decode into a fresh survivor vector first so a throw leaves `this`
  // untouched; hole values are re-materialized from the grid and the vertex
  // memoization restarts empty (value_at fills it deterministically).
  std::vector<Survivor> restored;
  const auto materialize = [&](std::int64_t linear) {
    restored.push_back(materialize_survivor(linear));
  };

  std::size_t survivor_count = 0;
  if (version == 1) {
    // v1: one bitmap over the whole candidate space.
    std::int64_t total = 0;
    if (!(in >> tag >> survivor_count >> total) || tag != "survivors") {
      bad_grid_state("malformed survivors section");
    }
    if (total != sketch_.candidate_space_size()) {
      bad_grid_state(
          "candidate space size mismatch (different sketch/config?)");
    }
    std::string hex;
    if (!(in >> hex)) bad_grid_state("truncated bitmap");
    const std::size_t bytes = static_cast<std::size_t>((total + 7) / 8);
    if (hex.size() != 2 * bytes) bad_grid_state("bitmap length mismatch");
    restored.reserve(survivor_count);
    for (std::int64_t i = 0; i < total; ++i) {
      const char c =
          hex[static_cast<std::size_t>(i / 8) * 2 + (i % 8 < 4 ? 1 : 0)];
      const int nib = nibble(c);
      if (nib < 0) bad_grid_state("bitmap is not lowercase hex");
      if ((nib >> (i % 4)) & 1) materialize(i);
    }
  } else {
    // v2: one bitmap per shard. The `shard` lines are self-describing
    // [lo, hi) ranges required to tile [0, total) contiguously in order, so
    // restore accepts any shard geometry — a future span-formula change or
    // a multi-worker split (one shard per worker) needs no format change.
    std::size_t n_shards = 0;
    std::int64_t span_len = 0, total = 0;
    if (!(in >> tag >> n_shards >> span_len >> total >> survivor_count) ||
        tag != "shards") {
      bad_grid_state("malformed shards section");
    }
    if (total != sketch_.candidate_space_size()) {
      bad_grid_state(
          "candidate space size mismatch (different sketch/config?)");
    }
    restored.reserve(survivor_count);
    std::int64_t next_lo = 0;
    for (std::size_t k = 0; k < n_shards; ++k) {
      // Each shard record is one line; parse_shard_blob is the single
      // validator for its structure (shared with the dist merge path), so a
      // blob torn mid-bitmap is rejected with the same specific error here
      // and there.
      std::string line;
      do {
        if (!std::getline(in, line)) bad_grid_state("missing shard line");
        while (!line.empty() && (line.back() == '\r' || line.back() == ' ')) {
          line.pop_back();
        }
      } while (line.empty());
      ParsedShardBlob blob;
      try {
        blob = parse_shard_blob(line);
      } catch (const std::invalid_argument& ex) {
        bad_grid_state(ex.what());
      }
      if (blob.index != k) bad_grid_state("shard lines out of order");
      if (blob.lo != next_lo || blob.hi > total) {
        bad_grid_state("shards do not tile the candidate space");
      }
      next_lo = blob.hi;
      for (const std::int64_t linear : blob.linears) materialize(linear);
    }
    if (next_lo != total) {
      bad_grid_state("shards do not tile the candidate space");
    }
  }
  if (restored.size() != survivor_count) {
    bad_grid_state("survivor count disagrees with bitmap");
  }

  util::Rng rng(config_.seed);
  rng.restore_state(rng_line);  // throws before any member is mutated

  rng_ = std::move(rng);
  survivors_ = std::move(restored);
  initialized_ = initialized != 0;
  edges_seen_ = edges_seen;
  ties_seen_ = ties_seen;
}

}  // namespace compsynth::solver
