#include "util/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <exception>

namespace compsynth::util {

namespace {

std::size_t env_thread_cap() {
  if (const char* env = std::getenv("COMPSYNTH_THREADS")) {
    const int v = std::atoi(env);
    if (v > 0) return static_cast<std::size_t>(v);
  }
  return 0;
}

std::size_t resolve_thread_count(std::size_t requested) {
  const std::size_t cap = env_thread_cap();
  if (requested == 0) {
    if (cap != 0) return cap;
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : hw;
  }
  return cap == 0 ? requested : std::min(requested, cap);
}

}  // namespace

ThreadPool::ThreadPool(std::size_t threads) {
  const std::size_t total = std::max<std::size_t>(1, resolve_thread_count(threads));
  workers_.reserve(total - 1);  // the caller counts as one executor
  for (std::size_t i = 0; i + 1 < total; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mutex_);
    stop_ = true;
  }
  work_available_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      MutexLock lock(mutex_);
      work_available_.wait(mutex_, [this]() REQUIRES(mutex_) {
        return stop_ || !tasks_.empty();
      });
      if (tasks_.empty()) return;  // stop_ set and queue drained
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
  }
}

void ThreadPool::parallel_for(
    std::size_t begin, std::size_t end,
    const std::function<void(std::size_t, std::size_t)>& body,
    std::size_t min_chunk) {
  if (begin >= end) return;
  const std::size_t n = end - begin;
  min_chunk = std::max<std::size_t>(1, min_chunk);
  if (workers_.empty() || n <= min_chunk) {
    body(begin, end);
    return;
  }

  // Shared claim counter: executors grab the next contiguous chunk until the
  // range is exhausted. Four chunks per executor balances load without
  // making chunks too small.
  const std::size_t chunk = std::max(min_chunk, n / (size() * 4));
  struct State {
    std::atomic<std::size_t> next;
    std::atomic<std::size_t> active{0};
    Mutex mutex;
    CondVar done;
    std::exception_ptr error GUARDED_BY(mutex);
  };
  auto state = std::make_shared<State>();
  state->next.store(begin);

  auto drain = [state, end, chunk, &body] {
    for (;;) {
      const std::size_t lo = state->next.fetch_add(chunk);
      if (lo >= end) return;
      const std::size_t hi = std::min(end, lo + chunk);
      try {
        body(lo, hi);
      } catch (...) {
        MutexLock lock(state->mutex);
        if (!state->error) state->error = std::current_exception();
      }
    }
  };

  // One task per worker; each loops on the claim counter so idle workers do
  // not wake for every chunk.
  const std::size_t helpers = std::min(workers_.size(), (n - 1) / min_chunk);
  state->active.store(helpers);
  {
    MutexLock lock(mutex_);
    for (std::size_t i = 0; i < helpers; ++i) {
      tasks_.push([state, drain] {
        drain();
        if (state->active.fetch_sub(1) == 1) {
          // Taking the mutex orders the notify after a concurrent waiter's
          // predicate check, so the wakeup cannot be lost.
          MutexLock lock(state->mutex);
          state->done.notify_all();
        }
      });
    }
  }
  work_available_.notify_all();

  drain();  // the caller participates

  MutexLock lock(state->mutex);
  state->done.wait(state->mutex,
                   [&] { return state->active.load() == 0; });
  if (state->error) std::rethrow_exception(state->error);
}

void ThreadPool::submit(std::function<void()> task) {
  if (workers_.empty()) {
    task();
    return;
  }
  {
    MutexLock lock(mutex_);
    tasks_.push(std::move(task));
  }
  work_available_.notify_one();
}

ThreadPool& ThreadPool::shared() {
  static ThreadPool pool(0);
  return pool;
}

}  // namespace compsynth::util
