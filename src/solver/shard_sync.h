// The distribution seam for GridFinder's sharded version-space sync.
//
// A full kBatch rebuild partitions the linear candidate space into
// machine-independent fixed ranges (GridFinder's shard_span geometry). Each
// shard is a pure function of (sketch, preference graph, [lo, hi)): the
// survivors it yields do not depend on which thread — or which *machine* —
// scans it. ShardSyncBackend exploits that purity: GridFinder hands the
// backend the graph and the shard ranges, and the backend returns one
// serialized shard record per range (the `shard <k> <lo> <hi> <count> <hex>`
// line of the `gridfinder 2` save-state format, docs/EVALUATOR.md §Shard
// state). GridFinder decodes and merges the records in shard order, which
// reproduces the exact survivor sequence of a local scan.
//
// The contract is all-or-nothing with graceful degradation: the backend
// either returns a complete, structurally valid record for every requested
// range, or nullopt — in which case GridFinder silently runs the local scan
// instead. A backend must never return partial results; recovery from
// individual worker failures (retry, re-dispatch, speculation) is its own
// responsibility. src/dist/coordinator.h is the remote multi-worker
// implementation; docs/DISTRIBUTED.md states the equivalence guarantee.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "pref/graph.h"

namespace compsynth::solver {

/// One fixed-range shard of the linear candidate space: candidates
/// [lo, hi), shard number `index` in the machine-independent geometry.
struct ShardRange {
  std::size_t index = 0;
  std::int64_t lo = 0;
  std::int64_t hi = 0;
};

/// Strategy interface for executing a full sharded sync somewhere else.
/// Implementations must be safe to call from the finder's thread (GridFinder
/// invokes it synchronously inside sync()) and must tolerate being called
/// repeatedly with different graphs.
class ShardSyncBackend {
 public:
  virtual ~ShardSyncBackend() = default;

  /// Computes every shard in `ranges` against `graph` and returns the
  /// serialized records in range order, or nullopt when the backend cannot
  /// complete the whole sync (no workers, all workers failed, ...). A
  /// returned vector has exactly ranges.size() entries; entry i is the
  /// `shard` record for ranges[i].
  virtual std::optional<std::vector<std::string>> sync_shards(
      const pref::PreferenceGraph& graph,
      const std::vector<ShardRange>& ranges) = 0;
};

}  // namespace compsynth::solver
