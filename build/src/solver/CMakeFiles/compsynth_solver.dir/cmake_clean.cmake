file(REMOVE_RECURSE
  "CMakeFiles/compsynth_solver.dir/domain.cpp.o"
  "CMakeFiles/compsynth_solver.dir/domain.cpp.o.d"
  "CMakeFiles/compsynth_solver.dir/equivalence.cpp.o"
  "CMakeFiles/compsynth_solver.dir/equivalence.cpp.o.d"
  "CMakeFiles/compsynth_solver.dir/grid_finder.cpp.o"
  "CMakeFiles/compsynth_solver.dir/grid_finder.cpp.o.d"
  "CMakeFiles/compsynth_solver.dir/z3_encoder.cpp.o"
  "CMakeFiles/compsynth_solver.dir/z3_encoder.cpp.o.d"
  "CMakeFiles/compsynth_solver.dir/z3_finder.cpp.o"
  "CMakeFiles/compsynth_solver.dir/z3_finder.cpp.o.d"
  "libcompsynth_solver.a"
  "libcompsynth_solver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compsynth_solver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
