// The daemon's network face: accepts line-delimited JSON protocol
// connections on a Unix or TCP socket and dispatches each request line to a
// SessionHost (docs/SERVICE.md documents the protocol; session_host.h the
// semantics behind it).
//
// The socket/framing plumbing lives in serve::LineServer (shared with the
// distributed shard workers, dist/worker.h): one accept thread plus one
// thread per connection. Connection threads do only parsing, dispatch and
// I/O — all synthesis work runs on the host's advance pool — so a
// connection blocked in a `next` wait costs one mostly-idle thread, and the
// architect count a daemon can serve is bounded by sessions on disk, not
// threads.
//
// Every request is measured: serve.requests / serve.errors counters, a
// per-verb serve.latency.<verb>.seconds histogram and a "serve_request"
// trace event (schema rev 1.4, docs/OBSERVABILITY.md).
#pragma once

#include <string>

#include "obs/run_context.h"
#include "serve/line_server.h"
#include "serve/session_host.h"

namespace compsynth::serve {

struct ServerConfig {
  /// "unix:<path>" or "tcp:<port>" / "tcp:<host>:<port>" (numeric IPv4
  /// host; default 127.0.0.1). TCP port 0 binds an ephemeral port —
  /// endpoint() reports the one chosen.
  std::string listen;
  int backlog = 64;
  /// Daemon-level observability (typically run id "serve").
  obs::RunContext obs;
};

class Server {
 public:
  /// Binds immediately; throws std::runtime_error on a bad endpoint or bind
  /// failure. `host` must outlive the server.
  Server(ServerConfig config, SessionHost& host);

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Starts the accept thread.
  void start();

  /// The bound endpoint in listen syntax (resolves TCP port 0).
  std::string endpoint() const;

  /// Blocks until a shutdown request or stop(), then joins every thread and
  /// drains the host.
  void wait();

  /// Initiates shutdown from outside the protocol (signal handlers, tests).
  /// Graceful: in-flight responses still reach their peers (LineServer
  /// shuts connections down read-side only).
  void stop();

 private:
  std::string handle_line(const std::string& line, bool* stop_after);

  ServerConfig config_;
  SessionHost& host_;
  LineServer line_server_;
};

}  // namespace compsynth::serve
