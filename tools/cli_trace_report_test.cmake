# CTest script: trace a synthesis run with the CLI, then render the trace
# with trace_report and check the report carries the expected sections.
set(TRACE "${WORKDIR}/cli_trace.jsonl")
set(REPORT_MD "${WORKDIR}/cli_trace_report.md")
set(TARGET_EXPR "if throughput >= 2 && latency <= 60 then throughput - 2*throughput*latency + 1000 else throughput - 4*throughput*latency")

execute_process(
  COMMAND "${CLI}" "${SKETCH}" --backend grid --quiet --seed 7
          --trace "${TRACE}" --metrics --target "${TARGET_EXPR}"
  RESULT_VARIABLE run_status OUTPUT_VARIABLE run_out)
if(NOT run_status EQUAL 0)
  message(FATAL_ERROR "traced run: expected convergence (0), got ${run_status}")
endif()
if(NOT EXISTS "${TRACE}")
  message(FATAL_ERROR "trace file was not written")
endif()
# --metrics must print the registry tables after the run.
if(NOT run_out MATCHES "Latency histograms")
  message(FATAL_ERROR "--metrics output missing histogram table: ${run_out}")
endif()

# The trace must open with run_start and close with run_end, all v1 records.
file(STRINGS "${TRACE}" trace_lines)
list(LENGTH trace_lines n_lines)
if(n_lines LESS 3)
  message(FATAL_ERROR "trace suspiciously short (${n_lines} lines)")
endif()
list(GET trace_lines 0 first_line)
list(GET trace_lines -1 last_line)
if(NOT first_line MATCHES "\"ev\":\"run_start\"")
  message(FATAL_ERROR "first trace line is not run_start: ${first_line}")
endif()
if(NOT last_line MATCHES "\"ev\":\"run_end\"")
  message(FATAL_ERROR "last trace line is not run_end: ${last_line}")
endif()
if(NOT first_line MATCHES "\"v\":1")
  message(FATAL_ERROR "trace line missing schema version: ${first_line}")
endif()

execute_process(
  COMMAND "${REPORT}" "${TRACE}" -o "${REPORT_MD}"
  RESULT_VARIABLE report_status)
if(NOT report_status EQUAL 0)
  message(FATAL_ERROR "trace_report failed with status ${report_status}")
endif()

# Substring checks (string(FIND), not MATCHES: the needles contain regex
# metacharacters like table pipes).
file(READ "${REPORT_MD}" report_text)
foreach(needle
    "# Trace report"
    "| status | converged |"
    "### Solver-time breakdown"
    "| grid_sync |"
    "### Oracle answers"
    "### Iterations")
  string(FIND "${report_text}" "${needle}" found_at)
  if(found_at EQUAL -1)
    message(FATAL_ERROR "report missing '${needle}':\n${report_text}")
  endif()
endforeach()
