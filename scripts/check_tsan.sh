#!/usr/bin/env bash
# Builds the tree with ThreadSanitizer (-DCOMPSYNTH_SANITIZE=thread) in a
# dedicated build directory and runs the concurrency-exercising tests: the
# thread pool, the parallel GridFinder sync (including the analysis-pruned
# rebuild), and the bench smoke test.
#
# Usage:
#   scripts/check_tsan.sh [ctest-regex]
#
# The default regex covers the parallel paths; pass your own (as for
# `ctest -R`) to widen or narrow it.
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
build="$repo/build-tsan"
regex="${1:-ThreadPool|GridFinder|PruneDifferential|bench_eval_smoke}"

cmake -B "$build" -S "$repo" \
  -DCOMPSYNTH_SANITIZE=thread \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo >/dev/null
cmake --build "$build" -j "$(nproc)"

export TSAN_OPTIONS="halt_on_error=1"

cd "$build"
ctest --output-on-failure -R "$regex"
echo "tsan: clean"
