// Tokenizer for the sketch DSL (see parser.h for the grammar).
#pragma once

#include <cstddef>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace compsynth::sketch {

enum class TokenKind {
  kIdent,    // identifiers and keywords (keywords resolved by the parser)
  kNumber,   // decimal literal, optional fraction/exponent
  kLParen, kRParen, kLBrace, kRBrace, kLBracket, kRBracket,
  kComma, kSemicolon,
  kPlus, kMinus, kStar, kSlash,
  kLt, kLe, kGt, kGe, kEqEq, kNe,
  kAndAnd, kOrOr, kBang,
  kEnd,      // end of input
};

/// Human-readable token-kind name for diagnostics.
std::string_view token_kind_name(TokenKind kind);

struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;      // identifier spelling / number spelling
  double number = 0;     // parsed value for kNumber
  std::size_t line = 1;  // 1-based source position
  std::size_t column = 1;
};

/// Thrown on malformed input (bad character, bad number, unterminated token)
/// and by the parser on grammar violations; carries a "line:col" prefix.
class ParseError : public std::runtime_error {
 public:
  ParseError(std::size_t line, std::size_t column, const std::string& what);

  std::size_t line() const { return line_; }
  std::size_t column() const { return column_; }

 private:
  std::size_t line_;
  std::size_t column_;
};

/// Tokenizes the whole input. `#` starts a comment running to end-of-line.
/// Always ends with a kEnd token. Throws ParseError on invalid input.
std::vector<Token> tokenize(std::string_view source);

}  // namespace compsynth::sketch
