#include "serve/server.h"

#include <utility>
#include <variant>

#include "obs/trace.h"
#include "util/timer.h"

namespace compsynth::serve {

Server::Server(ServerConfig config, SessionHost& host)
    : config_(std::move(config)),
      host_(host),
      line_server_(LineServerConfig{config_.listen, config_.backlog},
                   [this](const std::string& line, LineControl* ctl) {
                     bool stop_after = false;
                     std::string response = handle_line(line, &stop_after);
                     ctl->stop_after = stop_after;
                     return response;
                   }) {}

std::string Server::endpoint() const { return line_server_.endpoint(); }

void Server::start() { line_server_.start(); }

void Server::stop() { line_server_.stop(); }

void Server::wait() {
  line_server_.wait();
  host_.drain();
}

std::string Server::handle_line(const std::string& line, bool* stop_after) {
  const util::Stopwatch watch;
  std::variant<Request, ParseError> parsed = parse_request(line);
  std::string response;
  std::string verb_label = "invalid";
  std::string session;
  bool ok = false;
  std::string code;

  if (const ParseError* err = std::get_if<ParseError>(&parsed)) {
    code = err->code;
    response = error_response(err->code, err->message);
  } else {
    const Request& req = std::get<Request>(parsed);
    verb_label = verb_name(req.verb);
    session = req.session;
    try {
      switch (req.verb) {
        case Verb::kCreate: {
          CreateParams params;
          params.id = req.session;
          params.sketch = req.sketch;
          params.backend = req.backend;
          params.seed = req.seed;
          params.initial = req.initial;
          params.pairs = req.pairs;
          params.max_iters = req.max_iters;
          const HostResult r = host_.create(params);
          if (r.ok) {
            ok = true;
            response =
                ok_response(Verb::kCreate).str("session", req.session).done();
          } else {
            code = r.code;
            response = error_response(r.code, r.message);
          }
          break;
        }
        case Verb::kNext: {
          SessionView view;
          const HostResult r = host_.next(req.session, req.wait_ms, &view);
          if (!r.ok) {
            code = r.code;
            response = error_response(r.code, r.message);
            break;
          }
          ok = true;
          JsonWriter w = ok_response(Verb::kNext);
          w.str("session", view.id)
              .str("phase", phase_name(view.phase))
              .integer("answers", view.answers)
              .integer("iterations", view.iterations);
          if (view.pending) {
            w.integer("index", view.pending->index)
                .str("a", scenario_key(view.pending->a))
                .str("b", scenario_key(view.pending->b));
          }
          if (view.phase == SessionPhase::kDone) {
            w.str("status", view.status).str("objective", view.objective);
          }
          if (view.phase == SessionPhase::kFailed) {
            w.str("error", view.error);
          }
          response = w.done();
          break;
        }
        case Verb::kAnswer: {
          const HostResult r = host_.answer(req.session, req.index, req.answer);
          if (r.ok) {
            ok = true;
            response = ok_response(Verb::kAnswer)
                           .str("session", req.session)
                           .integer("index", req.index)
                           .done();
          } else {
            code = r.code;
            response = error_response(r.code, r.message);
          }
          break;
        }
        case Verb::kInspect: {
          if (req.session.empty()) {
            const HostStats stats = host_.stats();
            ok = true;
            response = ok_response(Verb::kInspect)
                           .integer("sessions_created", stats.sessions_created)
                           .integer("resident", stats.sessions_resident)
                           .integer("swaps", stats.swaps)
                           .integer("rehydrations", stats.rehydrations)
                           .integer("advances", stats.advances)
                           .done();
            break;
          }
          SessionView view;
          const HostResult r = host_.inspect(req.session, &view);
          if (!r.ok) {
            code = r.code;
            response = error_response(r.code, r.message);
            break;
          }
          ok = true;
          JsonWriter w = ok_response(Verb::kInspect);
          w.str("session", view.id)
              .str("phase", phase_name(view.phase))
              .boolean("resident", view.resident)
              .integer("answers", view.answers)
              .integer("iterations", view.iterations);
          if (view.phase == SessionPhase::kDone) {
            w.str("status", view.status).str("objective", view.objective);
          }
          if (view.phase == SessionPhase::kFailed) {
            w.str("error", view.error);
          }
          response = w.done();
          break;
        }
        case Verb::kEvict: {
          const HostResult r = host_.evict(req.session);
          if (r.ok) {
            ok = true;
            response = ok_response(Verb::kEvict)
                           .str("session", req.session)
                           .done();
          } else {
            code = r.code;
            response = error_response(r.code, r.message);
          }
          break;
        }
        case Verb::kShutdown: {
          ok = true;
          response = ok_response(Verb::kShutdown).done();
          *stop_after = true;  // caller stops after the response is sent
          break;
        }
      }
    } catch (const std::exception& ex) {
      code = kErrInternal;
      response = error_response(kErrInternal, ex.what());
    }
  }

  const double secs = watch.elapsed_seconds();
  config_.obs.count("serve.requests");
  if (!ok) config_.obs.count("serve.errors");
  config_.obs.observe("serve.latency." + verb_label + ".seconds", secs);
  if (config_.obs.tracing()) {
    obs::TraceEvent ev("serve_request");
    ev.str("verb", verb_label);
    if (!session.empty()) ev.str("session", session);
    ev.boolean("ok", ok);
    if (!code.empty()) ev.str("code", code);
    ev.num("secs", secs);
    config_.obs.emit(ev);
  }
  return response;
}

}  // namespace compsynth::serve
