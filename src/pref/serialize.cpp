#include "pref/serialize.h"

#include <cstdio>
#include <istream>
#include <ostream>
#include <sstream>

namespace compsynth::pref {

namespace {

std::string render_double(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

[[noreturn]] void fail(std::size_t line_no, const std::string& what) {
  throw SerializeError("line " + std::to_string(line_no) + ": " + what);
}

}  // namespace

void serialize(const PreferenceGraph& graph, std::ostream& out) {
  out << "# compsynth preference graph v1\n";
  for (VertexId v = 0; v < graph.vertex_count(); ++v) {
    out << "scenario " << v;
    for (const double m : graph.scenario(v).metrics) out << ' ' << render_double(m);
    out << '\n';
    // Labels ride in a separate directive so v1 readers that predate them
    // would fail loudly (unknown directive) rather than mis-parse metrics.
    if (!graph.scenario(v).label.empty()) {
      out << "label " << v << ' ' << graph.scenario(v).label << '\n';
    }
  }
  for (const Edge& e : graph.edges()) {
    out << "prefer " << e.better << ' ' << e.worse << ' ' << render_double(e.weight)
        << '\n';
  }
  for (const auto& [a, b] : graph.ties()) {
    out << "tie " << a << ' ' << b << '\n';
  }
}

std::string serialize(const PreferenceGraph& graph) {
  std::ostringstream os;
  serialize(graph, os);
  return os.str();
}

PreferenceGraph deserialize(std::istream& in, bool allow_inconsistent) {
  PreferenceGraph graph(allow_inconsistent);
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    std::istringstream ls(line);
    std::string directive;
    if (!(ls >> directive) || directive[0] == '#') continue;

    if (directive == "scenario") {
      VertexId id = 0;
      if (!(ls >> id)) fail(line_no, "scenario: missing id");
      if (id != graph.vertex_count()) {
        fail(line_no, "scenario ids must be dense and ascending (expected " +
                          std::to_string(graph.vertex_count()) + ")");
      }
      Scenario s;
      double m = 0;
      while (ls >> m) s.metrics.push_back(m);
      if (s.metrics.empty()) fail(line_no, "scenario: no metric values");
      if (!ls.eof()) fail(line_no, "scenario: trailing garbage");
      // intern() would deduplicate identical scenarios and break the dense-id
      // invariant; files written by serialize() never contain duplicates.
      if (graph.find(s).has_value()) fail(line_no, "duplicate scenario");
      graph.intern(s);
    } else if (directive == "prefer") {
      VertexId better = 0, worse = 0;
      double weight = 1;
      if (!(ls >> better >> worse >> weight)) fail(line_no, "prefer: expected 3 fields");
      if (better >= graph.vertex_count() || worse >= graph.vertex_count()) {
        fail(line_no, "prefer: unknown scenario id");
      }
      const AddResult r = graph.add_preference(better, worse, weight);
      if (r == AddResult::kSelfLoop) fail(line_no, "prefer: self loop");
      if (r == AddResult::kCycle) {
        fail(line_no, "prefer: closes a cycle (load with allow_inconsistent "
                      "to keep and repair)");
      }
    } else if (directive == "label") {
      VertexId id = 0;
      if (!(ls >> id)) fail(line_no, "label: missing id");
      if (id >= graph.vertex_count()) fail(line_no, "label: unknown scenario id");
      // Everything after "label <id> " is the label, verbatim (UTF-8 safe:
      // the text is never inspected byte-wise, only the leading ASCII space
      // separator is stripped).
      std::string text;
      std::getline(ls, text);
      if (!text.empty() && text.front() == ' ') text.erase(text.begin());
      if (text.empty()) fail(line_no, "label: empty label text");
      graph.set_label(id, text);
    } else if (directive == "tie") {
      VertexId a = 0, b = 0;
      if (!(ls >> a >> b)) fail(line_no, "tie: expected 2 ids");
      if (a >= graph.vertex_count() || b >= graph.vertex_count()) {
        fail(line_no, "tie: unknown scenario id");
      }
      graph.add_tie(a, b);
    } else {
      fail(line_no, "unknown directive '" + directive + "'");
    }
  }
  return graph;
}

PreferenceGraph deserialize(const std::string& text, bool allow_inconsistent) {
  std::istringstream is(text);
  return deserialize(is, allow_inconsistent);
}

}  // namespace compsynth::pref
