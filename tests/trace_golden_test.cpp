// Golden-trace test: run a tiny grid-backend synthesis with a file sink and
// validate the JSONL trace end to end against the v1 schema
// (docs/OBSERVABILITY.md) — event sequence, required keys per event type,
// monotone timestamps, and cross-checks against the metrics registry and
// the SynthesisResult.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "obs/run_context.h"
#include "obs/trace.h"
#include "oracle/ground_truth.h"
#include "sketch/library.h"
#include "synth/synthesizer.h"

namespace compsynth {
namespace {

using obs::JsonObject;
using obs::JsonValue;

void require_key(const JsonObject& obj, const std::string& key,
                 JsonValue::Kind kind, const std::string& context) {
  const auto it = obj.find(key);
  ASSERT_NE(it, obj.end()) << context << ": missing key '" << key << "'";
  ASSERT_EQ(static_cast<int>(it->second.kind), static_cast<int>(kind))
      << context << ": key '" << key << "' has wrong type";
}

double num(const JsonObject& obj, const std::string& key) {
  return obj.at(key).num;
}

class TraceGoldenTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Unique per test: ctest -j runs each TEST_F as its own process, and a
    // shared filename would let one test's TearDown delete the file another
    // is still reading.
    path_ = ::testing::TempDir() + "/golden_trace_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name() +
            ".jsonl";

    obs::FileTraceSink sink(path_);
    synth::SynthesisConfig config;
    config.seed = 11;
    config.obs.metrics = &metrics_;
    config.obs.tracer = &sink;
    config.obs.run_id = "golden";
    config.obs.seed = config.seed;

    const auto& sk = sketch::swan_sketch();
    synth::Synthesizer synthesizer = synth::make_grid_synthesizer(sk, config);
    oracle::GroundTruthOracle user(sk, sketch::swan_target(),
                                   config.finder.tie_tolerance);
    result_ = synthesizer.run(user);
    ASSERT_EQ(result_.status, synth::SynthesisStatus::kConverged);

    // Sink is destroyed here; read the finished file back.
    std::ifstream in(path_);
    ASSERT_TRUE(in.good());
    std::string line;
    while (std::getline(in, line)) {
      const auto obj = obs::parse_flat_json(line);
      ASSERT_TRUE(obj.has_value()) << "unparseable trace line: " << line;
      records_.push_back(*obj);
    }
    ASSERT_GE(records_.size(), 3u);
  }

  void TearDown() override { std::remove(path_.c_str()); }

  std::string path_;
  obs::MetricsRegistry metrics_;
  synth::SynthesisResult result_;
  std::vector<JsonObject> records_;
};

TEST_F(TraceGoldenTest, EnvelopeOnEveryRecord) {
  double last_ts = -1;
  for (const JsonObject& r : records_) {
    require_key(r, "v", JsonValue::Kind::kNumber, "envelope");
    require_key(r, "ts", JsonValue::Kind::kNumber, "envelope");
    require_key(r, "run", JsonValue::Kind::kString, "envelope");
    require_key(r, "ev", JsonValue::Kind::kString, "envelope");
    EXPECT_EQ(num(r, "v"), obs::kTraceSchemaVersion);
    EXPECT_EQ(r.at("run").str, "golden");
    EXPECT_FALSE(r.at("ev").str.empty());
    EXPECT_GE(num(r, "ts"), last_ts) << "timestamps must be monotone";
    last_ts = num(r, "ts");
  }
}

TEST_F(TraceGoldenTest, RunStartOpensAndRunEndCloses) {
  const JsonObject& start = records_.front();
  ASSERT_EQ(start.at("ev").str, "run_start");
  require_key(start, "sketch", JsonValue::Kind::kString, "run_start");
  require_key(start, "seed", JsonValue::Kind::kNumber, "run_start");
  require_key(start, "initial_scenarios", JsonValue::Kind::kNumber, "run_start");
  require_key(start, "pairs_per_iteration", JsonValue::Kind::kNumber, "run_start");
  require_key(start, "max_iterations", JsonValue::Kind::kNumber, "run_start");
  EXPECT_EQ(num(start, "seed"), 11);

  const JsonObject& end = records_.back();
  ASSERT_EQ(end.at("ev").str, "run_end");
  require_key(end, "status", JsonValue::Kind::kString, "run_end");
  require_key(end, "iterations", JsonValue::Kind::kNumber, "run_end");
  require_key(end, "interactions", JsonValue::Kind::kNumber, "run_end");
  require_key(end, "oracle_comparisons", JsonValue::Kind::kNumber, "run_end");
  require_key(end, "total_solver_seconds", JsonValue::Kind::kNumber, "run_end");
  EXPECT_EQ(end.at("status").str, "converged");
  EXPECT_EQ(num(end, "iterations"), result_.iterations);
  EXPECT_EQ(num(end, "interactions"), result_.interactions);
  EXPECT_EQ(num(end, "oracle_comparisons"), result_.oracle_comparisons);

  // run_start / run_end appear exactly once each.
  int starts = 0, ends = 0;
  for (const JsonObject& r : records_) {
    if (r.at("ev").str == "run_start") ++starts;
    if (r.at("ev").str == "run_end") ++ends;
  }
  EXPECT_EQ(starts, 1);
  EXPECT_EQ(ends, 1);
}

TEST_F(TraceGoldenTest, IterationEventsAreContiguousAndComplete) {
  long long expected_index = 1;
  for (const JsonObject& r : records_) {
    if (r.at("ev").str != "iteration") continue;
    require_key(r, "index", JsonValue::Kind::kNumber, "iteration");
    require_key(r, "secs", JsonValue::Kind::kNumber, "iteration");
    require_key(r, "status", JsonValue::Kind::kString, "iteration");
    require_key(r, "pairs_presented", JsonValue::Kind::kNumber, "iteration");
    require_key(r, "edges_added", JsonValue::Kind::kNumber, "iteration");
    require_key(r, "ties_added", JsonValue::Kind::kNumber, "iteration");
    require_key(r, "vertices", JsonValue::Kind::kNumber, "iteration");
    require_key(r, "edges", JsonValue::Kind::kNumber, "iteration");
    require_key(r, "ties", JsonValue::Kind::kNumber, "iteration");
    EXPECT_EQ(num(r, "index"), expected_index);
    ++expected_index;
  }
  EXPECT_EQ(expected_index - 1, result_.iterations);
}

TEST_F(TraceGoldenTest, GridSyncSurvivorsNeverGrow) {
  double last_survivors = -1;
  int syncs = 0;
  for (const JsonObject& r : records_) {
    if (r.at("ev").str != "grid_sync") continue;
    ++syncs;
    require_key(r, "mode", JsonValue::Kind::kString, "grid_sync");
    require_key(r, "survivors", JsonValue::Kind::kNumber, "grid_sync");
    require_key(r, "secs", JsonValue::Kind::kNumber, "grid_sync");
    const double survivors = num(r, "survivors");
    if (last_survivors >= 0) {
      EXPECT_LE(survivors, last_survivors)
          << "version space must only shrink as constraints accumulate";
    }
    last_survivors = survivors;
  }
  EXPECT_GT(syncs, 0);
  // Convergence means the surviving candidates all rank identically; the
  // final sync must have at least one survivor left.
  EXPECT_GE(last_survivors, 1);
}

TEST_F(TraceGoldenTest, PairSearchAndOracleAndPrefEventsCarryTheirKeys) {
  int pair_searches = 0, compares = 0, pref_edges = 0;
  for (const JsonObject& r : records_) {
    const std::string& ev = r.at("ev").str;
    if (ev == "pair_search") {
      ++pair_searches;
      require_key(r, "status", JsonValue::Kind::kString, "pair_search");
      require_key(r, "survivors", JsonValue::Kind::kNumber, "pair_search");
      require_key(r, "strategy", JsonValue::Kind::kString, "pair_search");
      require_key(r, "secs", JsonValue::Kind::kNumber, "pair_search");
    } else if (ev == "oracle_query") {
      require_key(r, "kind", JsonValue::Kind::kString, "oracle_query");
      require_key(r, "index", JsonValue::Kind::kNumber, "oracle_query");
      if (r.at("kind").str == "compare") {
        ++compares;
        require_key(r, "answer", JsonValue::Kind::kString, "oracle_query");
      } else {
        require_key(r, "batch", JsonValue::Kind::kNumber, "oracle_query");
      }
    } else if (ev == "pref_edge") {
      ++pref_edges;
      require_key(r, "kind", JsonValue::Kind::kString, "pref_edge");
      require_key(r, "result", JsonValue::Kind::kString, "pref_edge");
    }
  }
  // One pair_search per iteration (the grid finder's query path).
  EXPECT_EQ(pair_searches, result_.iterations);
  // Pairwise answers during the loop (the seed ranking counts separately).
  EXPECT_GT(compares, 0);
  EXPECT_GT(pref_edges, 0);
}

TEST_F(TraceGoldenTest, MetricsAgreeWithTrace) {
  int compares = 0, syncs = 0, iterations = 0;
  for (const JsonObject& r : records_) {
    const std::string& ev = r.at("ev").str;
    if (ev == "oracle_query" && r.at("kind").str == "compare") ++compares;
    if (ev == "grid_sync") ++syncs;
    if (ev == "iteration") ++iterations;
  }
  EXPECT_EQ(metrics_.counter("oracle.comparisons").value(), compares);
  EXPECT_EQ(metrics_.counter("grid.syncs").value(), syncs);
  EXPECT_EQ(metrics_.counter("synth.iterations").value(), iterations);
  EXPECT_EQ(metrics_.histogram("grid_sync.seconds").count(), syncs);
  EXPECT_EQ(metrics_.histogram("iteration.solver_seconds").count(), iterations);
  EXPECT_GT(metrics_.counter("pref.edges.added").value(), 0);
}

}  // namespace
}  // namespace compsynth
