#include "sketch/diagnostics.h"

#include <algorithm>

namespace compsynth::sketch {

std::string diag_code_name(DiagCode code) {
  const int n = static_cast<int>(code);
  std::string out = "A";
  out += static_cast<char>('0' + n / 100);
  out += static_cast<char>('0' + (n / 10) % 10);
  out += static_cast<char>('0' + n % 10);
  return out;
}

std::string_view severity_name(Severity severity) {
  switch (severity) {
    case Severity::kError: return "error";
    case Severity::kWarning: return "warning";
    case Severity::kNote: return "note";
  }
  return "?";
}

std::string render(const Diagnostic& d, std::string_view file) {
  std::string out;
  if (!file.empty()) {
    out += file;
    out += ':';
  }
  if (d.line != 0) {
    out += std::to_string(d.line) + ":" + std::to_string(d.column) + ": ";
  } else if (!file.empty()) {
    out += ' ';
  }
  out += severity_name(d.severity);
  out += ' ';
  out += diag_code_name(d.code);
  out += ": ";
  out += d.message;
  return out;
}

bool has_errors(std::span<const Diagnostic> diagnostics) {
  return std::any_of(diagnostics.begin(), diagnostics.end(),
                     [](const Diagnostic& d) { return d.severity == Severity::kError; });
}

std::size_t count_severity(std::span<const Diagnostic> diagnostics,
                           Severity severity) {
  return static_cast<std::size_t>(
      std::count_if(diagnostics.begin(), diagnostics.end(),
                    [&](const Diagnostic& d) { return d.severity == severity; }));
}

}  // namespace compsynth::sketch
