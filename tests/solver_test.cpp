// Solver-layer tests: Z3 encoding semantics (differential vs the concrete
// interpreter), both candidate finders, equivalence checking, and the
// finder-vs-finder differential property.
#include <gtest/gtest.h>

#include <z3++.h>

#include <cmath>
#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "pref/graph.h"
#include "sketch/eval.h"
#include "sketch/library.h"
#include "sketch/parser.h"
#include "solver/equivalence.h"
#include "solver/grid_finder.h"
#include "solver/z3_encoder.h"
#include "solver/z3_finder.h"
#include "util/rng.h"

namespace compsynth::solver {
namespace {

using pref::Scenario;

Scenario sc(double t, double l) { return Scenario{{t, l}}; }

// --- real_of_double -----------------------------------------------------------

TEST(Encoder, RealOfDoubleIsExactForDyadics) {
  z3::context ctx;
  for (const double v : {0.0, 1.0, -2.5, 0.125, 1000.0, -0.0625, 3.75}) {
    const z3::expr e = real_of_double(ctx, v);
    EXPECT_TRUE(e.is_numeral());
    std::string s = e.get_decimal_string(20);
    if (!s.empty() && s.back() == '?') s.pop_back();
    EXPECT_DOUBLE_EQ(std::strtod(s.c_str(), nullptr), v) << v;
  }
}

TEST(Encoder, RealOfDoubleHandlesNonDyadicDoublesExactly) {
  // 0.1 is not dyadic; its double is some m/2^k. The encoding must round-trip
  // to (essentially) the same double via model extraction.
  z3::context ctx;
  z3::solver s(ctx);
  const z3::expr out = ctx.real_const("out");
  for (const double v : {0.1, 1.0 / 3.0, 2.45, 1e-7, 123.456}) {
    s.push();
    s.add(out == real_of_double(ctx, v));
    ASSERT_EQ(s.check(), z3::sat);
    const double got = value_of(s.get_model(), out);
    EXPECT_NEAR(got, v, std::abs(v) * 1e-12) << v;
    s.pop();
  }
}

TEST(Encoder, RejectsNonFinite) {
  z3::context ctx;
  EXPECT_THROW(real_of_double(ctx, std::numeric_limits<double>::infinity()),
               std::invalid_argument);
  EXPECT_THROW(real_of_double(ctx, std::numeric_limits<double>::quiet_NaN()),
               std::invalid_argument);
}

TEST(Encoder, ExtremeMagnitudesStillEncode) {
  z3::context ctx;
  const double huge = 1e300;
  const double tiny = 1e-300;
  // These take the repeated-squaring path; just assert no throw and sign.
  EXPECT_NO_THROW(real_of_double(ctx, huge));
  EXPECT_NO_THROW(real_of_double(ctx, tiny));
  EXPECT_NO_THROW(real_of_double(ctx, -huge));
}

// --- Differential: Z3 encoding vs concrete interpreter -------------------------

class EncoderVsEval : public ::testing::TestWithParam<int> {};

TEST_P(EncoderVsEval, AgreeOnRandomPointsAndCandidates) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 1337 + 1);
  const sketch::Sketch& sk = GetParam() % 2 == 0
                                 ? sketch::swan_sketch()
                                 : sketch::swan_multi_region_sketch();

  // Random hole assignment + random scenario.
  sketch::HoleAssignment a;
  for (const auto& h : sk.holes()) {
    a.index.push_back(rng.uniform_int(0, h.count - 1));
  }
  std::vector<double> metrics;
  for (const auto& m : sk.metrics()) {
    // Mix of grid-aligned and arbitrary points (boundary semantics matter).
    metrics.push_back(rng.bernoulli(0.5)
                          ? std::floor(rng.uniform_real(m.lo, m.hi))
                          : rng.uniform_real(m.lo, m.hi));
  }

  const double expected = sketch::eval(sk, a, metrics);

  z3::context ctx;
  std::vector<z3::expr> hole_exprs;
  for (const double v : sk.hole_values(a)) hole_exprs.push_back(real_of_double(ctx, v));
  const std::vector<z3::expr> metric_exprs = encode_scenario(ctx, metrics);
  const z3::expr body = encode_numeric(ctx, *sk.body(), metric_exprs, hole_exprs);

  // Evaluate the symbolic expression to a constant via a trivial model.
  z3::solver s(ctx);
  const z3::expr out = ctx.real_const("out");
  s.add(out == body);
  ASSERT_EQ(s.check(), z3::sat);
  const double got = value_of(s.get_model(), out);
  EXPECT_NEAR(got, expected, 1e-6 * std::max(1.0, std::abs(expected)));
}

INSTANTIATE_TEST_SUITE_P(RandomPoints, EncoderVsEval, ::testing::Range(0, 30));

// --- Finder basics --------------------------------------------------------------

solver::FinderConfig tight_config() {
  FinderConfig c;
  c.timeout_ms = 60000;
  return c;
}

TEST(Z3Finder, RejectsBadMargins) {
  FinderConfig c;
  c.tie_tolerance = 1e-3;
  c.distinguish_margin = 1e-3;
  EXPECT_THROW(Z3Finder(sketch::swan_sketch(), c), std::invalid_argument);
}

TEST(Z3Finder, EmptyGraphYieldsDisagreeingCandidates) {
  Z3Finder finder(sketch::swan_sketch(), tight_config());
  pref::PreferenceGraph g;
  const FinderResult r = finder.find_distinguishing(g, 1);
  ASSERT_EQ(r.status, FinderStatus::kFound);
  ASSERT_EQ(r.pairs.size(), 1u);
  // The returned candidates must actually disagree on the returned pair.
  const auto& sk = sketch::swan_sketch();
  const double fa1 = sketch::eval(sk, r.candidate_a, r.pairs[0].preferred_by_a.metrics);
  const double fa2 = sketch::eval(sk, r.candidate_a, r.pairs[0].preferred_by_b.metrics);
  const double fb1 = sketch::eval(sk, r.candidate_b, r.pairs[0].preferred_by_a.metrics);
  const double fb2 = sketch::eval(sk, r.candidate_b, r.pairs[0].preferred_by_b.metrics);
  EXPECT_GT(fa1, fa2);
  EXPECT_GT(fb2, fb1);
  // Scenarios lie in the ClosedInRange box.
  EXPECT_TRUE(pref::in_range(r.pairs[0].preferred_by_a, sk));
  EXPECT_TRUE(pref::in_range(r.pairs[0].preferred_by_b, sk));
}

TEST(Z3Finder, HonorsRecordedPreferences) {
  // Preferring (2,10) over (5,10) is satisfiable only by candidates whose
  // bonus region excludes both (tp_thrsh > 5) and whose slope2 >= 1
  // (then f(2,10) - f(5,10) = -3 + 30*slope2 > 0).
  const auto& sk = sketch::swan_sketch();
  Z3Finder finder(sk, tight_config());
  pref::PreferenceGraph g;
  const auto a = g.intern(sc(2, 10));
  const auto b = g.intern(sc(5, 10));
  g.add_preference(a, b);
  const FinderResult r = finder.find_distinguishing(g, 1);
  ASSERT_EQ(r.status, FinderStatus::kFound);
  for (const auto& cand : {r.candidate_a, r.candidate_b}) {
    EXPECT_GT(sketch::eval(sk, cand, sc(2, 10).metrics),
              sketch::eval(sk, cand, sc(5, 10).metrics));
  }
}

TEST(Z3Finder, ImpossiblePreferenceIsNoCandidate) {
  // At equal throughput, more latency can never be strictly better for any
  // sketch instance (slopes are non-negative), so this edge empties the
  // candidate space entirely.
  const auto& sk = sketch::swan_sketch();
  Z3Finder finder(sk, tight_config());
  pref::PreferenceGraph g;
  const auto a = g.intern(sc(2, 100));
  const auto b = g.intern(sc(5, 10));
  g.add_preference(a, b);
  EXPECT_EQ(finder.find_distinguishing(g, 1).status, FinderStatus::kNoCandidate);
}

TEST(Z3Finder, MultiplePairsAreAllDistinguishing) {
  const auto& sk = sketch::swan_sketch();
  Z3Finder finder(sk, tight_config());
  pref::PreferenceGraph g;
  const FinderResult r = finder.find_distinguishing(g, 3);
  ASSERT_EQ(r.status, FinderStatus::kFound);
  ASSERT_EQ(r.pairs.size(), 3u);
  for (const auto& p : r.pairs) {
    EXPECT_GT(sketch::eval(sk, r.candidate_a, p.preferred_by_a.metrics),
              sketch::eval(sk, r.candidate_a, p.preferred_by_b.metrics));
    EXPECT_GT(sketch::eval(sk, r.candidate_b, p.preferred_by_b.metrics),
              sketch::eval(sk, r.candidate_b, p.preferred_by_a.metrics));
  }
}

TEST(Z3Finder, ContradictoryGraphYieldsNoCandidate) {
  // Prefer high latency at equal throughput — impossible for every sketch
  // instance with positive slope... but slope 0 instances are indifferent,
  // so contradict *both* directions on distinct pairs.
  const auto& sk = sketch::swan_sketch();
  Z3Finder finder(sk, tight_config());
  pref::PreferenceGraph g(true);
  const auto a = g.intern(sc(5, 100));
  const auto b = g.intern(sc(5, 10));
  // f(5,100) > f(5,10) requires... every instance gives f(5,10) >= f(5,100)
  // (latency only hurts). Strict > is therefore unsatisfiable.
  g.add_preference(a, b);
  const FinderResult r = finder.find_distinguishing(g, 1);
  EXPECT_EQ(r.status, FinderStatus::kNoCandidate);
  EXPECT_FALSE(finder.find_consistent(g).has_value());
}

TEST(Z3Finder, ViabilityBlocksExcludedCandidates) {
  const auto& sk = sketch::swan_sketch();
  // Viability: slope2 must be >= 1 (index 3 of hole values).
  Viability v;
  v.concrete = [](std::span<const double> holes) { return holes[3] >= 1.0; };
  Z3Finder finder(sk, tight_config(), v);
  pref::PreferenceGraph g;
  const FinderResult r = finder.find_distinguishing(g, 1);
  ASSERT_EQ(r.status, FinderStatus::kFound);
  EXPECT_GE(sk.hole_values(r.candidate_a)[3], 1.0);
  EXPECT_GE(sk.hole_values(r.candidate_b)[3], 1.0);
  const auto consistent = finder.find_consistent(g);
  ASSERT_TRUE(consistent.has_value());
  EXPECT_GE(sk.hole_values(*consistent)[3], 1.0);
}

TEST(GridFinder, MatchesZ3OnContradiction) {
  const auto& sk = sketch::swan_sketch();
  GridFinder finder(sk);
  pref::PreferenceGraph g(true);
  const auto a = g.intern(sc(5, 100));
  const auto b = g.intern(sc(5, 10));
  g.add_preference(a, b);
  EXPECT_EQ(finder.find_distinguishing(g, 1).status, FinderStatus::kNoCandidate);
}

TEST(GridFinder, RefusesOversizedGrids) {
  const sketch::Sketch big = sketch::parse_sketch(
      "sketch big(x in [0,1]) {"
      "  hole a in grid(0, 1, 300); hole b in grid(0, 1, 300);"
      "  hole c in grid(0, 1, 300); x + a + b + c }");
  EXPECT_THROW(GridFinder{big}, std::invalid_argument);
}

TEST(GridFinder, ShrinksVersionSpaceMonotonically) {
  const auto& sk = sketch::swan_sketch();
  GridFinder finder(sk);
  pref::PreferenceGraph g;
  finder.find_consistent(g);
  const std::size_t all = finder.version_space_size();
  EXPECT_EQ(all, static_cast<std::size_t>(sk.candidate_space_size()));
  // (5,10) over (2,10) eliminates exactly the candidates that prefer less
  // throughput at equal latency (tp_thrsh > 5 with slope2 >= 1).
  const auto a = g.intern(sc(5, 10));
  const auto b = g.intern(sc(2, 10));
  g.add_preference(a, b);
  finder.find_consistent(g);
  EXPECT_LT(finder.version_space_size(), all);
  EXPECT_GT(finder.version_space_size(), 0u);
}

// --- GridFinder durable state (docs/PERSISTENCE.md @finder, v1 + v2) ----------

// A non-trivial version space to serialize: swan ranked by its ground-truth
// target on a handful of random scenarios.
pref::PreferenceGraph state_test_graph(const sketch::Sketch& sk) {
  const sketch::HoleAssignment target = sketch::swan_target();
  util::Rng rng(99);
  pref::PreferenceGraph graph;
  std::vector<pref::VertexId> ids;
  std::vector<double> scores;
  for (int i = 0; i < 8; ++i) {
    pref::Scenario s;
    for (const auto& m : sk.metrics()) {
      s.metrics.push_back(rng.uniform_real(m.lo, m.hi));
    }
    ids.push_back(graph.intern(s));
    scores.push_back(sketch::eval(sk, target, s.metrics));
  }
  for (std::size_t i = 0; i < ids.size(); ++i) {
    for (std::size_t j = i + 1; j < ids.size(); ++j) {
      if (std::abs(scores[i] - scores[j]) <= 1e-4) {
        graph.add_tie(ids[i], ids[j]);
      } else if (scores[i] > scores[j]) {
        graph.add_preference(ids[i], ids[j]);
      } else {
        graph.add_preference(ids[j], ids[i]);
      }
    }
  }
  return graph;
}

std::vector<sketch::HoleAssignment> grid_assignments(const GridFinder& f) {
  std::vector<sketch::HoleAssignment> out;
  for (const Survivor& s : f.survivors()) out.push_back(s.assignment);
  return out;
}

TEST(GridFinderState, V2RoundTripIsExact) {
  const auto& sk = sketch::swan_sketch();
  GridFinderConfig config;
  config.threads = 1;
  GridFinder a(sk, config);
  a.sync(state_test_graph(sk));
  ASSERT_GT(a.version_space_size(), 0u);

  const std::string blob = a.save_state();
  EXPECT_EQ(blob.rfind("gridfinder 2\n", 0), 0u);

  GridFinder b(sk, config);
  b.restore_state(blob);
  EXPECT_EQ(grid_assignments(b), grid_assignments(a));
  // Byte-identical re-serialization: survivors, RNG stream and incremental
  // cursors all survived, and the shard geometry is deterministic.
  EXPECT_EQ(b.save_state(), blob);
}

TEST(GridFinderState, V1BlobsStillRestore) {
  const auto& sk = sketch::swan_sketch();
  GridFinderConfig config;
  config.threads = 1;
  GridFinder a(sk, config);
  a.sync(state_test_graph(sk));
  const std::string v2 = a.save_state();

  // Re-encode a's state in the legacy v1 layout (one bitmap over the whole
  // candidate space), reusing the rng/seen lines from the v2 blob.
  std::istringstream in(v2);
  std::string header, rng_line, seen_line;
  ASSERT_TRUE(std::getline(in, header));
  ASSERT_TRUE(std::getline(in, rng_line));
  ASSERT_TRUE(std::getline(in, seen_line));

  const std::int64_t total = sk.candidate_space_size();
  std::vector<std::int64_t> stride(sk.holes().size(), 1);
  for (std::size_t h = 1; h < stride.size(); ++h) {
    stride[h] = stride[h - 1] * sk.holes()[h - 1].count;
  }
  std::vector<unsigned char> bytes(static_cast<std::size_t>((total + 7) / 8),
                                   0);
  for (const Survivor& s : a.survivors()) {
    std::int64_t linear = 0;
    for (std::size_t h = 0; h < stride.size(); ++h) {
      linear += s.assignment.index[h] * stride[h];
    }
    bytes[static_cast<std::size_t>(linear / 8)] |=
        static_cast<unsigned char>(1 << (linear % 8));
  }
  static constexpr char kHex[] = "0123456789abcdef";
  std::ostringstream v1;
  v1 << "gridfinder 1\n"
     << rng_line << '\n'
     << seen_line << '\n'
     << "survivors " << a.version_space_size() << ' ' << total << '\n';
  for (const unsigned char u : bytes) v1 << kHex[u >> 4] << kHex[u & 0xf];
  v1 << '\n';

  GridFinder b(sk, config);
  b.restore_state(v1.str());
  EXPECT_EQ(grid_assignments(b), grid_assignments(a));
  // A v1 restore re-serializes in the canonical v2 layout.
  EXPECT_EQ(b.save_state(), v2);
}

TEST(GridFinderState, RejectsMalformedBlobs) {
  const auto& sk = sketch::swan_sketch();
  GridFinderConfig config;
  config.threads = 1;
  GridFinder a(sk, config);
  a.sync(state_test_graph(sk));
  const std::string v2 = a.save_state();

  GridFinder b(sk, config);
  EXPECT_THROW(b.restore_state("gridfinder 3\n"), std::invalid_argument);
  EXPECT_THROW(b.restore_state("not a finder blob"), std::invalid_argument);

  // Truncated: drop the final shard line.
  const std::size_t last_line = v2.rfind("shard ");
  ASSERT_NE(last_line, std::string::npos);
  EXPECT_THROW(b.restore_state(v2.substr(0, last_line)),
               std::invalid_argument);

  // Tampered survivor count in the shards header.
  const std::size_t shards_at = v2.find("shards ");
  ASSERT_NE(shards_at, std::string::npos);
  std::istringstream hdr(v2.substr(shards_at));
  std::string tag;
  std::size_t n_shards = 0, count = 0;
  std::int64_t span = 0, total = 0;
  ASSERT_TRUE(hdr >> tag >> n_shards >> span >> total >> count);
  std::ostringstream tampered_hdr;
  tampered_hdr << "shards " << n_shards << ' ' << span << ' ' << total << ' '
               << (count + 1);
  std::string tampered = v2;
  const std::size_t hdr_end = v2.find('\n', shards_at);
  tampered.replace(shards_at, hdr_end - shards_at, tampered_hdr.str());
  EXPECT_THROW(b.restore_state(tampered), std::invalid_argument);

  // A failed restore leaves the finder untouched (strong exception safety).
  GridFinder c(sk, config);
  c.restore_state(v2);
  EXPECT_THROW(c.restore_state("gridfinder 3\n"), std::invalid_argument);
  EXPECT_EQ(c.save_state(), v2);
}

// --- Equivalence -----------------------------------------------------------------

TEST(Equivalence, IdenticalCandidatesAreEquivalent) {
  const auto& sk = sketch::swan_sketch();
  const auto t = sketch::swan_target();
  EXPECT_TRUE(ranking_equivalent(sk, t, t));
}

TEST(Equivalence, DifferentSlopesAreDistinguishable) {
  const auto& sk = sketch::swan_sketch();
  const auto a = sketch::swan_target_with(1, 50, 1, 5);
  const auto b = sketch::swan_target_with(1, 50, 1, 2);
  const auto witness = find_ranking_difference(sk, a, b);
  ASSERT_TRUE(witness.has_value());
  // The witness is a genuine disagreement.
  const double fa1 = sketch::eval(sk, a, witness->preferred_by_a.metrics);
  const double fa2 = sketch::eval(sk, a, witness->preferred_by_b.metrics);
  const double fb1 = sketch::eval(sk, b, witness->preferred_by_a.metrics);
  const double fb2 = sketch::eval(sk, b, witness->preferred_by_b.metrics);
  EXPECT_GT(fa1, fa2);
  EXPECT_GT(fb2, fb1);
}

TEST(Equivalence, ScaledObjectiveMayStillRankEquivalently) {
  // With thresholds at the extremes the bonus region covers everything, and
  // the function degenerates to throughput*(1 - slope*latency)... different
  // slopes still rank differently in general, but equal-slope equal-threshold
  // candidates with different *bonus region* that never fires are equivalent.
  const auto& sk = sketch::swan_sketch();
  // tp_thrsh = 10, l_thrsh = 0: bonus region is the measure-zero corner
  // {t=10, l=0}; the 1000 bonus there still changes the ranking, so these
  // ARE distinguishable. Just assert the checker is decisive either way.
  const auto a = sketch::swan_target_with(10, 0, 2, 2);
  const auto b = sketch::swan_target_with(10, 0, 3, 3);
  const auto witness = find_ranking_difference(sk, a, b);
  SUCCEED() << (witness.has_value() ? "distinguishable" : "equivalent");
}

// --- Differential property: the two finders agree on consistency ------------------

class FinderDifferential : public ::testing::TestWithParam<int> {};

TEST_P(FinderDifferential, GridSurvivorsSatisfyZ3Constraints) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 71 + 5);
  const auto& sk = sketch::swan_sketch();

  // Random consistent preference data from a random target.
  sketch::HoleAssignment target;
  for (const auto& h : sk.holes()) {
    target.index.push_back(rng.uniform_int(0, h.count - 1));
  }
  pref::PreferenceGraph g;
  for (int i = 0; i < 6; ++i) {
    const Scenario s1 = sc(rng.uniform_real(0, 10), rng.uniform_real(0, 200));
    const Scenario s2 = sc(rng.uniform_real(0, 10), rng.uniform_real(0, 200));
    const double v1 = sketch::eval(sk, target, s1.metrics);
    const double v2 = sketch::eval(sk, target, s2.metrics);
    const auto a = g.intern(s1);
    const auto b = g.intern(s2);
    if (std::abs(v1 - v2) <= 1e-4) {
      g.add_tie(a, b);
    } else if (v1 > v2) {
      g.add_preference(a, b);
    } else {
      g.add_preference(b, a);
    }
  }

  GridFinder grid(sk);
  Z3Finder z3f(sk);
  const auto grid_pick = grid.find_consistent(g);
  const auto z3_pick = z3f.find_consistent(g);
  // The target itself is consistent, so both must find someone.
  ASSERT_TRUE(grid_pick.has_value());
  ASSERT_TRUE(z3_pick.has_value());
  // Each back-end's pick satisfies all constraints per the double evaluator.
  for (const auto& pick : {*grid_pick, *z3_pick}) {
    for (const auto& e : g.edges()) {
      EXPECT_GT(sketch::eval(sk, pick, g.scenario(e.better).metrics),
                sketch::eval(sk, pick, g.scenario(e.worse).metrics));
    }
    for (const auto& [u, v] : g.ties()) {
      EXPECT_LE(std::abs(sketch::eval(sk, pick, g.scenario(u).metrics) -
                         sketch::eval(sk, pick, g.scenario(v).metrics)),
                2e-4);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RandomGraphs, FinderDifferential, ::testing::Range(0, 10));

}  // namespace
}  // namespace compsynth::solver
