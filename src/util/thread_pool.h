// Fixed-size worker pool with a parallel_for helper.
//
// Built for the solver's bulk scoring loops: GridFinder shards candidate
// enumeration and version-space filtering across the pool. The design is
// deliberately simple — one mutex-guarded task queue, workers that live for
// the pool's lifetime — because the units of work handed to it are coarse
// (thousands of evaluations per chunk), so queue overhead is irrelevant.
//
// parallel_for is the only entry point most callers need: it splits an index
// range into contiguous chunks, runs them on the workers *and* the calling
// thread, and rethrows the first exception a chunk threw once every chunk
// has finished. Chunks are contiguous and disjoint, so callers can write
// results into per-chunk slots without synchronization.
//
// Not supported (keep it simple until something needs it): nested
// parallel_for from inside a pool worker (it would deadlock on pools of
// size 1 and oversubscribe otherwise — bodies must not call back into the
// same pool), work stealing, task priorities.
#pragma once

#include <cstddef>
#include <functional>
#include <queue>
#include <thread>
#include <vector>

#include "util/sync.h"
#include "util/thread_annotations.h"

namespace compsynth::util {

class ThreadPool {
 public:
  /// Spawns `threads` workers; 0 picks std::thread::hardware_concurrency()
  /// (overridable with the COMPSYNTH_THREADS environment variable, which
  /// also caps explicit requests — useful to serialize CI runs). A pool of
  /// size 1 spawns no threads at all: parallel_for runs inline.
  explicit ThreadPool(std::size_t threads = 0);

  /// Joins all workers; pending tasks are completed first.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of threads that execute work, including the caller during
  /// parallel_for (so a pool with 0 spawned workers has size 1).
  std::size_t size() const { return workers_.size() + 1; }

  /// Runs body(chunk_begin, chunk_end) over contiguous disjoint chunks
  /// covering [begin, end), on the workers plus the calling thread. Blocks
  /// until every chunk is done. If any chunk throws, the first exception is
  /// rethrown here (after all chunks finish). `min_chunk` bounds the
  /// scheduling overhead for cheap bodies; ranges no larger than it run
  /// inline on the caller.
  void parallel_for(std::size_t begin, std::size_t end,
                    const std::function<void(std::size_t, std::size_t)>& body,
                    std::size_t min_chunk = 1);

  /// Enqueues one opaque task for a worker thread. Built for the portfolio
  /// finder's solver racing (one long-running leg per task); keep using
  /// parallel_for for data-parallel loops. When the pool has no spawned
  /// workers (size 1) the task runs inline before submit returns — callers
  /// that need true concurrency must check size() first. Tasks must not
  /// call back into the same pool (see the nested-use note above).
  void submit(std::function<void()> task);

  /// Process-wide default pool, created on first use.
  static ThreadPool& shared();

 private:
  void worker_loop();

  Mutex mutex_;
  CondVar work_available_;
  std::queue<std::function<void()>> tasks_ GUARDED_BY(mutex_);
  /// Written only by the constructor; workers never touch it, and the
  /// destructor joins after stop_ — safe to read unlocked thereafter.
  std::vector<std::thread> workers_;
  bool stop_ GUARDED_BY(mutex_) = false;
};

}  // namespace compsynth::util
