#!/usr/bin/env bash
# Durability check for the synthesis service (docs/SERVICE.md §Durability):
# a daemon killed with SIGKILL mid-run and restarted on the same --root must
# resume every session to the *identical* oracle-query sequence.
#
# Two roots, same sessions, same seeds:
#   reference: one daemon, every session driven to completion.
#   killed:    sessions driven partway (2 answers each, parked on a pending
#              query), daemon killed -9, a fresh daemon started on the same
#              root, sessions driven to completion with --continue.
# Every per-session answers.log and done.json must then be byte-identical
# across the two roots — both files are canonical renderings, so cmp is the
# whole verification.
#
# Usage: scripts/serve_kill_resume_test.sh <compsynth_serve> <compsynth_load> <sketch>
set -euo pipefail

serve_bin="$1"
load_bin="$2"
sketch="$3"

sessions=8
work="$(mktemp -d)"
daemon_pid=""
cleanup() {
  [ -n "$daemon_pid" ] && kill -9 "$daemon_pid" 2>/dev/null
  rm -rf "$work"
  return 0
}
trap cleanup EXIT

start_daemon() {  # start_daemon <root> <logfile>
  "$serve_bin" --listen "unix:$work/sock" --root "$1" --sketch "$sketch" \
    --max-active 3 --workers 4 >"$2" 2>&1 &
  daemon_pid=$!
  for _ in $(seq 1 100); do
    grep -q "listening on" "$2" 2>/dev/null && break
    sleep 0.1
  done
  grep -q "listening on" "$2" || { echo "daemon did not come up:"; cat "$2"; exit 1; }
}

drive() {  # drive <extra-flags...>
  "$load_bin" --connect "unix:$work/sock" --sketch-file "$sketch" \
    --sessions "$sessions" --threads 2 --prefix kr --seed-base 40 "$@"
}

echo "== reference run (uninterrupted) =="
start_daemon "$work/ref" "$work/ref.log"
drive --shutdown >/dev/null
wait "$daemon_pid" || { echo "reference daemon exited non-zero"; exit 1; }
daemon_pid=""

echo "== killed run: part one, then SIGKILL =="
start_daemon "$work/killed" "$work/k1.log"
drive --stop-after-answers 2 >/dev/null
kill -9 "$daemon_pid"
wait "$daemon_pid" 2>/dev/null || true
daemon_pid=""

echo "== killed run: restart on the same root, resume to completion =="
start_daemon "$work/killed" "$work/k2.log"
drive --continue --shutdown >/dev/null
wait "$daemon_pid" || { echo "restarted daemon exited non-zero"; exit 1; }
daemon_pid=""

echo "== verify: identical query sequences and outcomes =="
for i in $(seq 0 $((sessions - 1))); do
  for f in answers.log done.json; do
    cmp "$work/ref/kr$i/$f" "$work/killed/kr$i/$f" || {
      echo "divergence in session kr$i ($f)"; exit 1; }
  done
done

echo "serve_kill_resume: OK ($sessions sessions byte-identical after kill -9)"
