# Proves the thread-safety annotations are enforced, not decorative: compile
# tests/thread_safety_negative.cpp with clang's -Werror=thread-safety and
# require that
#   1. the TU as written (a guarded read with no lock held) FAILS to compile,
#   2. the same TU with -DTSN_FIXED (lock taken) compiles cleanly.
# Failing (1) means the annotation macros expanded to nothing (or the flag
# was dropped); failing (2) means the annotations themselves are broken.
#
# Needs a clang++ on PATH — the analysis is Clang-only. Without one, report
# SKIP (matched by SKIP_REGULAR_EXPRESSION in tools/CMakeLists.txt), same
# convention as run_clang_tidy.cmake.
#
# Usage: cmake -DSOURCE_DIR=<repo root> -P thread_safety_negative_test.cmake

find_program(CLANGXX NAMES clang++ clang++-19 clang++-18 clang++-17
                           clang++-16 clang++-15 clang++-14)
if(NOT CLANGXX)
  message(STATUS "thread_safety_negative: SKIP (no clang++ on PATH; "
                 "-Wthread-safety is Clang-only)")
  return()
endif()

set(TU "${SOURCE_DIR}/tests/thread_safety_negative.cpp")
set(FLAGS -std=c++20 -fsyntax-only
          -Wthread-safety -Werror=thread-safety
          "-I${SOURCE_DIR}/src")

execute_process(
  COMMAND "${CLANGXX}" ${FLAGS} "${TU}"
  RESULT_VARIABLE seeded_result
  OUTPUT_VARIABLE seeded_out
  ERROR_VARIABLE seeded_err)
if(seeded_result EQUAL 0)
  message(FATAL_ERROR
    "thread_safety_negative: the seeded missing-lock TU compiled cleanly — "
    "the thread-safety annotations are not being enforced "
    "(check util/thread_annotations.h and the -Wthread-safety flags)")
endif()
if(NOT seeded_err MATCHES "thread-safety")
  message(FATAL_ERROR
    "thread_safety_negative: the seeded TU failed for a reason other than "
    "the thread-safety analysis:\n${seeded_err}")
endif()

execute_process(
  COMMAND "${CLANGXX}" ${FLAGS} -DTSN_FIXED "${TU}"
  RESULT_VARIABLE fixed_result
  OUTPUT_VARIABLE fixed_out
  ERROR_VARIABLE fixed_err)
if(NOT fixed_result EQUAL 0)
  message(FATAL_ERROR
    "thread_safety_negative: the corrected TU (-DTSN_FIXED) did not "
    "compile — the annotations in util/sync.h are broken:\n${fixed_err}")
endif()

message(STATUS "thread_safety_negative: OK "
               "(seeded bug rejected, corrected TU accepted; ${CLANGXX})")
