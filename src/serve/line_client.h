// Blocking client for the line-delimited JSON services in the tree: the
// synthesis daemon (serve/server.h) and the distributed shard workers
// (dist/worker.h). One connection, one outstanding request at a time —
// request() writes a line and blocks for the response line.
//
// Two robustness jobs live here so every caller inherits them:
//
//  - Connect retry. A client racing a daemon that has forked but not yet
//    bound sees ECONNREFUSED (tcp) or ENOENT/ECONNREFUSED (unix). The
//    constructor retries exactly those errnos under a util::RetryPolicy
//    before giving up, which is what lets tools/compsynth_load start before
//    compsynth_serve prints its "listening on" line.
//
//  - I/O deadlines. With io_timeout_s > 0 every send/recv carries a kernel
//    timeout (SO_SNDTIMEO/SO_RCVTIMEO); a peer that stalls past it turns
//    into util::TransientError instead of a hung thread. The coordinator's
//    per-shard deadline (dist/coordinator.h) is built on this.
//
// Transport failures — refused after retries, timeout, EOF mid-response,
// response longer than the flood guard — all surface as
// util::TransientError, the same type retry sites already catch.
#pragma once

#include <string>

#include "util/fault.h"

namespace compsynth::serve {

struct LineClientConfig {
  /// "unix:<path>" or "tcp:<port>" / "tcp:<host>:<port>" (numeric IPv4
  /// host; default 127.0.0.1) — the same syntax servers listen on.
  std::string endpoint;
  /// Retry schedule for the initial connect; only ECONNREFUSED/ENOENT are
  /// retried (anything else is a configuration error and throws
  /// std::runtime_error immediately).
  util::RetryPolicy connect_retry;
  /// Per-send/recv kernel timeout in seconds; 0 = block forever.
  double io_timeout_s = 0;
};

class LineClient {
 public:
  /// Connects (with retry); throws std::runtime_error on a bad endpoint,
  /// util::TransientError when the peer still refuses after the last
  /// attempt.
  explicit LineClient(LineClientConfig config);
  ~LineClient();

  LineClient(const LineClient&) = delete;
  LineClient& operator=(const LineClient&) = delete;

  /// Sends `line` (newline appended) and blocks for one response line
  /// (CR/LF stripped). Throws util::TransientError on any transport
  /// failure; the connection is dead afterwards.
  std::string request(const std::string& line);

 private:
  LineClientConfig config_;
  int fd_ = -1;
  std::string buffer_;  // bytes past the last returned response line
};

}  // namespace compsynth::serve
