#include "solver/z3_encoder.h"

#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <stdexcept>
#include <string>

namespace compsynth::solver {

namespace {

// Builds 2^n (n may be negative) as an exact Z3 real by repeated squaring.
// Only used for doubles outside the int64 fast path.
z3::expr power_of_two(z3::context& ctx, int n) {
  const bool invert = n < 0;
  unsigned k = static_cast<unsigned>(invert ? -n : n);
  z3::expr base = ctx.real_val(2);
  z3::expr acc = ctx.real_val(1);
  while (k > 0) {
    if (k & 1u) acc = acc * base;
    base = base * base;
    k >>= 1u;
  }
  return invert ? (ctx.real_val(1) / acc) : acc;
}

}  // namespace

z3::expr real_of_double(z3::context& ctx, double value) {
  if (!std::isfinite(value)) {
    throw std::invalid_argument("real_of_double: non-finite value");
  }
  if (value == 0) return ctx.real_val(0);

  // Every finite double is mantissa * 2^exp exactly. Z3's int/int numeral
  // constructors are 32-bit, so rationals are passed as "num/den" strings.
  int exp = 0;
  const double frac = std::frexp(value, &exp);  // |frac| in [0.5, 1)
  const auto mantissa = static_cast<std::int64_t>(std::ldexp(frac, 53));
  const int shift = exp - 53;

  if (shift >= 0 && shift <= 10) {
    return ctx.real_val(std::to_string(mantissa << shift).c_str());
  }
  if (shift < 0 && shift >= -62) {
    const std::string text = std::to_string(mantissa) + "/" +
                             std::to_string(std::int64_t{1} << (-shift));
    return ctx.real_val(text.c_str());
  }
  return ctx.real_val(std::to_string(mantissa).c_str()) * power_of_two(ctx, shift);
}

z3::expr encode_numeric(z3::context& ctx, const sketch::Expr& e,
                        std::span<const z3::expr> metrics,
                        std::span<const z3::expr> holes) {
  using sketch::BinOp;
  using Kind = sketch::Expr::Kind;
  switch (e.kind) {
    case Kind::kConst:
      return real_of_double(ctx, e.literal);
    case Kind::kMetric:
      return metrics[e.metric];
    case Kind::kHole:
      return holes[e.hole];
    case Kind::kNeg:
      return -encode_numeric(ctx, *e.children[0], metrics, holes);
    case Kind::kBinary: {
      const z3::expr a = encode_numeric(ctx, *e.children[0], metrics, holes);
      const z3::expr b = encode_numeric(ctx, *e.children[1], metrics, holes);
      switch (e.bin_op) {
        case BinOp::kAdd: return a + b;
        case BinOp::kSub: return a - b;
        case BinOp::kMul: return a * b;
        case BinOp::kDiv: return a / b;
        case BinOp::kMin: return z3::ite(a <= b, a, b);
        case BinOp::kMax: return z3::ite(a >= b, a, b);
      }
      break;
    }
    case Kind::kIte:
      return z3::ite(encode_bool(ctx, *e.children[0], metrics, holes),
                     encode_numeric(ctx, *e.children[1], metrics, holes),
                     encode_numeric(ctx, *e.children[2], metrics, holes));
    case Kind::kChoice: {
      // Nested ite chain over the selector hole (an integer grid 0..N-1).
      const z3::expr& sel = holes[e.hole];
      z3::expr out = encode_numeric(ctx, *e.children.back(), metrics, holes);
      for (std::size_t j = e.children.size() - 1; j-- > 0;) {
        out = z3::ite(sel == real_of_double(ctx, static_cast<double>(j)),
                      encode_numeric(ctx, *e.children[j], metrics, holes), out);
      }
      return out;
    }
    case Kind::kCmp:
    case Kind::kBoolBinary:
    case Kind::kNot:
    case Kind::kBoolConst:
      break;
  }
  throw std::invalid_argument("encode_numeric: boolean node in numeric position");
}

z3::expr encode_bool(z3::context& ctx, const sketch::Expr& e,
                     std::span<const z3::expr> metrics,
                     std::span<const z3::expr> holes) {
  using sketch::BoolOp;
  using sketch::CmpOp;
  using Kind = sketch::Expr::Kind;
  switch (e.kind) {
    case Kind::kBoolConst:
      return ctx.bool_val(e.literal != 0);
    case Kind::kCmp: {
      const z3::expr a = encode_numeric(ctx, *e.children[0], metrics, holes);
      const z3::expr b = encode_numeric(ctx, *e.children[1], metrics, holes);
      switch (e.cmp_op) {
        case CmpOp::kLt: return a < b;
        case CmpOp::kLe: return a <= b;
        case CmpOp::kGt: return a > b;
        case CmpOp::kGe: return a >= b;
        case CmpOp::kEq: return a == b;
        case CmpOp::kNe: return a != b;
      }
      break;
    }
    case Kind::kBoolBinary: {
      const z3::expr a = encode_bool(ctx, *e.children[0], metrics, holes);
      const z3::expr b = encode_bool(ctx, *e.children[1], metrics, holes);
      return e.bool_op == BoolOp::kAnd ? (a && b) : (a || b);
    }
    case Kind::kNot:
      return !encode_bool(ctx, *e.children[0], metrics, holes);
    case Kind::kConst:
    case Kind::kMetric:
    case Kind::kHole:
    case Kind::kNeg:
    case Kind::kBinary:
    case Kind::kIte:
    case Kind::kChoice:
      break;
  }
  throw std::invalid_argument("encode_bool: numeric node in boolean position");
}

std::vector<z3::expr> make_hole_vars(z3::context& ctx,
                                     const sketch::Sketch& sketch,
                                     const std::string& prefix) {
  std::vector<z3::expr> vars;
  vars.reserve(sketch.holes().size());
  for (const auto& h : sketch.holes()) {
    vars.push_back(ctx.real_const((prefix + h.name).c_str()));
  }
  return vars;
}

z3::expr hole_domain_constraint(z3::context& ctx, const sketch::Sketch& sketch,
                                std::span<const z3::expr> hole_vars) {
  z3::expr all = ctx.bool_val(true);
  for (std::size_t i = 0; i < sketch.holes().size(); ++i) {
    const sketch::HoleSpec& h = sketch.holes()[i];
    z3::expr member = ctx.bool_val(false);
    for (std::int64_t j = 0; j < h.count; ++j) {
      member = member || (hole_vars[i] == real_of_double(ctx, h.value_at(j)));
    }
    all = all && member;
  }
  return all;
}

std::vector<z3::expr> encode_scenario(z3::context& ctx,
                                      std::span<const double> metrics) {
  std::vector<z3::expr> out;
  out.reserve(metrics.size());
  for (const double v : metrics) out.push_back(real_of_double(ctx, v));
  return out;
}

double value_of(const z3::model& model, const z3::expr& var) {
  const z3::expr v = model.eval(var, /*model_completion=*/true);
  // Exact path: rationals whose numerator/denominator fit in int64.
  std::int64_t num = 0, den = 0;
  if (Z3_get_numeral_rational_int64(v.ctx(), v, &num, &den) && den != 0) {
    return static_cast<double>(num) / static_cast<double>(den);
  }
  // Fallback: high-precision decimal rendering ('?' marks truncation).
  std::string s = v.get_decimal_string(40);
  if (!s.empty() && s.back() == '?') s.pop_back();
  return std::strtod(s.c_str(), nullptr);
}

}  // namespace compsynth::solver
