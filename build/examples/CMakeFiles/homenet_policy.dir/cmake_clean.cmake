file(REMOVE_RECURSE
  "CMakeFiles/homenet_policy.dir/homenet_policy.cpp.o"
  "CMakeFiles/homenet_policy.dir/homenet_policy.cpp.o.d"
  "homenet_policy"
  "homenet_policy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/homenet_policy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
