file(REMOVE_RECURSE
  "CMakeFiles/test_homenet.dir/homenet_test.cpp.o"
  "CMakeFiles/test_homenet.dir/homenet_test.cpp.o.d"
  "test_homenet"
  "test_homenet.pdb"
  "test_homenet[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_homenet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
