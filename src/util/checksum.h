// CRC-32 (ISO-HDLC / zlib polynomial) for snapshot integrity checking.
//
// Durable-session snapshot files (src/session/snapshot.h) carry a CRC of
// their payload so that torn writes — a crash mid-write leaving a truncated
// or partially flushed file — are detected on load and recovery can fall
// back to the previous valid snapshot (docs/PERSISTENCE.md). CRC-32 is ample
// for this: the adversary is a power cut, not an attacker.
#pragma once

#include <cstdint>
#include <string_view>

namespace compsynth::util {

/// CRC-32 of `data` (polynomial 0xEDB88320, init/final xor 0xFFFFFFFF —
/// identical to zlib's crc32(), so snapshots can be checked with standard
/// tools).
std::uint32_t crc32(std::string_view data);

/// Renders a CRC as fixed-width lowercase hex ("0009f3a1"), the form stored
/// in snapshot manifests.
std::string crc32_hex(std::uint32_t crc);

}  // namespace compsynth::util
