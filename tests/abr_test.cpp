// ABR substrate: trace arithmetic, simulator dynamics, algorithm behaviour,
// portfolio evaluation, QoE-driven selection.
#include <gtest/gtest.h>

#include "abr/algorithms.h"
#include "abr/qoe.h"
#include "abr/simulator.h"
#include "abr/trace.h"
#include "sketch/library.h"
#include "util/rng.h"

namespace compsynth::abr {
namespace {

TEST(Trace, ConstantBandwidthDownloadTime) {
  const Trace t = constant_trace(4.0);  // 4 Mbps
  EXPECT_DOUBLE_EQ(t.bandwidth_at(0), 4.0);
  EXPECT_DOUBLE_EQ(t.bandwidth_at(1e6), 4.0);  // clamps beyond the end
  EXPECT_DOUBLE_EQ(t.download_seconds(8.0, 0), 2.0);
  EXPECT_DOUBLE_EQ(t.download_seconds(0.0, 5), 0.0);
}

TEST(Trace, DownloadIntegratesAcrossSegments) {
  // 1 Mbps for 2 s then 3 Mbps: fetching 5 Mb from t=0 takes 2 + 1 = 3 s.
  const Trace t({1, 1, 3, 3, 3}, 1.0);
  EXPECT_NEAR(t.download_seconds(5.0, 0), 3.0, 1e-12);
  // Starting mid-segment.
  EXPECT_NEAR(t.download_seconds(0.5, 1.5), 0.5, 1e-12);
}

TEST(Trace, SquareTraceAlternates) {
  const Trace t = square_trace(8, 2, 5, 30);
  EXPECT_DOUBLE_EQ(t.bandwidth_at(0), 8);
  EXPECT_DOUBLE_EQ(t.bandwidth_at(6), 2);
  EXPECT_DOUBLE_EQ(t.bandwidth_at(11), 8);
}

TEST(Trace, RandomWalkStaysWithinBounds) {
  util::Rng rng(4);
  const Trace t = random_walk_trace(rng, 4, 1, 8, 300);
  for (const double b : t.samples()) {
    EXPECT_GE(b, 1.0);
    EXPECT_LE(b, 8.0);
  }
}

TEST(Trace, RejectsBadInput) {
  EXPECT_THROW(Trace({}, 1), std::invalid_argument);
  EXPECT_THROW(Trace({1, 0}, 1), std::invalid_argument);
  EXPECT_THROW(Trace({1}, 0), std::invalid_argument);
  util::Rng rng(1);
  EXPECT_THROW(random_walk_trace(rng, 4, 0, 8), std::invalid_argument);
  EXPECT_THROW(square_trace(4, 1, 0), std::invalid_argument);
}

TEST(Simulator, FastLinkLowRungNeverStalls) {
  const Video video;
  const Trace t = constant_trace(10.0);
  FixedAbr algo(0);  // 0.3 Mbps on a 10 Mbps link
  const SessionMetrics m = simulate(video, t, algo);
  EXPECT_NEAR(m.average_bitrate_mbps, video.ladder_mbps[0], 1e-9);
  EXPECT_DOUBLE_EQ(m.rebuffer_ratio_percent, 0);
  EXPECT_DOUBLE_EQ(m.switch_count, 0);
  EXPECT_GT(m.startup_seconds, 0);
}

TEST(Simulator, OverambitiousRungStallsHard) {
  const Video video;
  const Trace t = constant_trace(1.0);  // 1 Mbps
  FixedAbr algo(5);                     // 4.3 Mbps
  const SessionMetrics m = simulate(video, t, algo);
  EXPECT_GT(m.rebuffer_ratio_percent, 50);  // download 4.3x realtime
  EXPECT_GT(m.total_stall_seconds, 0);
}

TEST(Simulator, StartupWaitsForInitialBuffer) {
  const Video video;  // 4 s chunks
  SimulatorConfig cfg;
  cfg.startup_buffer_seconds = 8;  // two chunks
  const Trace t = constant_trace(10.0);
  FixedAbr algo(0);
  const SessionMetrics m = simulate(video, t, algo, cfg);
  // Two chunks of 0.3 Mbps * 4 s = 2.4 Mb at 10 Mbps -> 0.24 s.
  EXPECT_NEAR(m.startup_seconds, 0.24, 1e-9);
}

TEST(Simulator, BufferCapThrottlesDownloads) {
  const Video video{.ladder_mbps = {1.0}, .chunk_seconds = 4, .chunk_count = 30};
  SimulatorConfig cfg;
  cfg.max_buffer_seconds = 8;
  const Trace t = constant_trace(100.0);
  FixedAbr algo(0);
  const SessionMetrics m = simulate(video, t, algo, cfg);
  EXPECT_DOUBLE_EQ(m.rebuffer_ratio_percent, 0);
}

TEST(Simulator, RejectsBadVideo) {
  const Trace t = constant_trace(1);
  FixedAbr algo(0);
  EXPECT_THROW(simulate(Video{.ladder_mbps = {}}, t, algo), std::invalid_argument);
  EXPECT_THROW(simulate(Video{.ladder_mbps = {2, 1}}, t, algo), std::invalid_argument);
  EXPECT_THROW(simulate(Video{.ladder_mbps = {1}, .chunk_count = 0}, t, algo),
               std::invalid_argument);
}

TEST(Algorithms, HarmonicMeanTail) {
  EXPECT_DOUBLE_EQ(harmonic_mean_tail({}, 3), 0);
  EXPECT_DOUBLE_EQ(harmonic_mean_tail({4}, 3), 4);
  // HM of {2, 6} = 3.
  EXPECT_DOUBLE_EQ(harmonic_mean_tail({100, 2, 6}, 2), 3);
}

TEST(Algorithms, RateBasedTracksBandwidth) {
  const Video video;
  const Trace t = constant_trace(2.0);
  RateBasedAbr algo(0.9, 5);
  const SessionMetrics m = simulate(video, t, algo);
  // Steady state: highest rung <= 1.8 Mbps is 1.2 Mbps (index 2).
  EXPECT_EQ(m.rung_choices.back(), 2u);
  EXPECT_LT(m.rebuffer_ratio_percent, 5);
}

TEST(Algorithms, BufferBasedClimbsLadderWithBuffer) {
  BufferBasedAbr algo(5, 20);
  const Video video;
  AbrObservation obs;
  obs.buffer_seconds = 0;
  EXPECT_EQ(algo.choose(obs, video), 0u);
  obs.buffer_seconds = 25;
  EXPECT_EQ(algo.choose(obs, video), video.ladder_mbps.size() - 1);
  obs.buffer_seconds = 12.5;  // midpoint -> middle of the ladder
  const std::size_t mid = algo.choose(obs, video);
  EXPECT_GT(mid, 0u);
  EXPECT_LT(mid, video.ladder_mbps.size() - 1);
}

TEST(Algorithms, HybridAvoidsStallsOnSlowLink) {
  const Video video;
  const Trace slow = constant_trace(1.0);
  HybridAbr algo;
  const SessionMetrics m = simulate(video, slow, algo);
  EXPECT_LT(m.rebuffer_ratio_percent, 10);
}

TEST(Portfolio, EvaluatesAllEntriesOverTraces) {
  util::Rng rng(9);
  const std::vector<Trace> traces{constant_trace(3), square_trace(6, 1, 20),
                                  random_walk_trace(rng, 3, 0.5, 8)};
  const auto portfolio = standard_portfolio();
  const auto candidates = evaluate_portfolio(Video{}, traces, portfolio);
  ASSERT_EQ(candidates.size(), portfolio.size());
  for (const auto& c : candidates) {
    EXPECT_TRUE(pref::in_range(c.scenario, sketch::abr_qoe_sketch())) << c.label;
    EXPECT_GT(c.mean_metrics.average_bitrate_mbps, 0) << c.label;
  }
}

TEST(Portfolio, QoeObjectivePicksSensibly) {
  util::Rng rng(10);
  const std::vector<Trace> traces{square_trace(5, 0.8, 15),
                                  random_walk_trace(rng, 3, 0.5, 8)};
  const auto candidates =
      evaluate_portfolio(Video{}, traces, standard_portfolio());
  const auto& sk = sketch::abr_qoe_sketch();

  // A rebuffer-phobic objective must not pick a candidate with strictly
  // more rebuffering AND less bitrate than some alternative.
  sketch::HoleAssignment rebuffer_hater;
  rebuffer_hater.index = {sk.holes()[0].nearest_index(0),   // rb_thrsh = 0
                          sk.holes()[1].nearest_index(4),   // w_rebuf = 4
                          sk.holes()[2].nearest_index(0),
                          sk.holes()[3].nearest_index(0)};
  const std::size_t pick = pick_best(sk, rebuffer_hater, candidates);
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    const bool dominated =
        candidates[pick].mean_metrics.rebuffer_ratio_percent >
            candidates[i].mean_metrics.rebuffer_ratio_percent + 1e-9 &&
        candidates[pick].mean_metrics.average_bitrate_mbps <
            candidates[i].mean_metrics.average_bitrate_mbps - 1e-9;
    EXPECT_FALSE(dominated) << "picked " << candidates[pick].label
                            << " dominated by " << candidates[i].label;
  }
}

TEST(Portfolio, EmptyTracesThrow) {
  const auto portfolio = standard_portfolio();
  EXPECT_THROW(evaluate_portfolio(Video{}, {}, portfolio), std::invalid_argument);
}

}  // namespace
}  // namespace compsynth::abr

// --- BOLA -----------------------------------------------------------------------

namespace compsynth::abr {
namespace {

TEST(Bola, EmptyBufferPicksLowestRung) {
  BolaAbr algo(15);
  const Video video;
  AbrObservation obs;
  obs.buffer_seconds = 0;
  EXPECT_EQ(algo.choose(obs, video), 0u);
}

TEST(Bola, FullBufferPicksTopRung) {
  BolaAbr algo(15);
  const Video video;
  AbrObservation obs;
  obs.buffer_seconds = 30;  // well past the target
  EXPECT_EQ(algo.choose(obs, video), video.ladder_mbps.size() - 1);
}

TEST(Bola, RungIsMonotoneInBuffer) {
  BolaAbr algo(15);
  const Video video;
  AbrObservation obs;
  std::size_t prev = 0;
  for (double b = 0; b <= 30; b += 1) {
    obs.buffer_seconds = b;
    const std::size_t rung = algo.choose(obs, video);
    EXPECT_GE(rung, prev) << "buffer " << b;
    prev = rung;
  }
}

TEST(Bola, BeatsNaiveTopRungOnVolatileTrace) {
  // BOLA is buffer-only (no bandwidth prediction), so collapsing traces do
  // stall it — the meaningful claims are: clearly fewer stalls than naively
  // streaming the top rung, while still climbing above the bottom rung.
  util::Rng rng(12);
  const Trace t = random_walk_trace(rng, 2.5, 0.4, 8.0);
  BolaAbr bola(15);
  const SessionMetrics m = simulate(Video{}, t, bola);
  util::Rng rng2(12);
  const Trace same = random_walk_trace(rng2, 2.5, 0.4, 8.0);
  FixedAbr greedy(Video{}.ladder_mbps.size() - 1);
  const SessionMetrics top = simulate(Video{}, same, greedy);
  EXPECT_LT(m.rebuffer_ratio_percent, top.rebuffer_ratio_percent);
  EXPECT_GT(m.average_bitrate_mbps, Video{}.ladder_mbps.front());
}

TEST(Bola, RejectsBadTarget) {
  EXPECT_THROW(BolaAbr(0), std::invalid_argument);
}

TEST(Bola, IsPartOfTheStandardPortfolio) {
  const auto portfolio = standard_portfolio();
  const bool has_bola =
      std::any_of(portfolio.begin(), portfolio.end(),
                  [](const PortfolioEntry& e) { return e.label == "bola"; });
  EXPECT_TRUE(has_bola);
}

}  // namespace
}  // namespace compsynth::abr
