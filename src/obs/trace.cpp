#include "obs/trace.h"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <sstream>
#include <stdexcept>

namespace compsynth::obs {

TraceEvent& TraceEvent::integer(std::string key, long long value) {
  FieldValue v;
  v.kind = FieldValue::Kind::kInt;
  v.i = value;
  fields_.emplace_back(std::move(key), std::move(v));
  return *this;
}

TraceEvent& TraceEvent::num(std::string key, double value) {
  FieldValue v;
  v.kind = FieldValue::Kind::kDouble;
  v.d = value;
  fields_.emplace_back(std::move(key), std::move(v));
  return *this;
}

TraceEvent& TraceEvent::str(std::string key, std::string value) {
  FieldValue v;
  v.kind = FieldValue::Kind::kString;
  v.s = std::move(value);
  fields_.emplace_back(std::move(key), std::move(v));
  return *this;
}

TraceEvent& TraceEvent::boolean(std::string key, bool value) {
  FieldValue v;
  v.kind = FieldValue::Kind::kBool;
  v.b = value;
  fields_.emplace_back(std::move(key), std::move(v));
  return *this;
}

std::string json_escape(std::string_view raw) {
  std::string out;
  out.reserve(raw.size());
  for (const char c : raw) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

namespace {

void append_number(std::string& out, double value) {
  if (!std::isfinite(value)) {
    // JSON has no Infinity/NaN; null keeps the line parseable.
    out += "null";
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.9g", value);
  out += buf;
}

}  // namespace

std::string render_trace_line(std::string_view run_id, double ts_seconds,
                              const TraceEvent& event) {
  std::string line = "{\"v\":";
  line += std::to_string(kTraceSchemaVersion);
  line += ",\"ts\":";
  append_number(line, ts_seconds);
  line += ",\"run\":\"";
  line += json_escape(run_id);
  line += "\",\"ev\":\"";
  line += json_escape(event.type());
  line += '"';
  for (const auto& [key, value] : event.fields()) {
    line += ",\"";
    line += json_escape(key);
    line += "\":";
    switch (value.kind) {
      case FieldValue::Kind::kInt:
        line += std::to_string(value.i);
        break;
      case FieldValue::Kind::kDouble:
        append_number(line, value.d);
        break;
      case FieldValue::Kind::kString:
        line += '"';
        line += json_escape(value.s);
        line += '"';
        break;
      case FieldValue::Kind::kBool:
        line += value.b ? "true" : "false";
        break;
    }
  }
  line += '}';
  return line;
}

FileTraceSink::FileTraceSink(const std::string& path)
    : path_(path), out_(path, std::ios::trunc), writer_(out_) {
  if (!out_) throw std::runtime_error("FileTraceSink: cannot write '" + path + "'");
}

void FileTraceSink::emit(std::string_view run_id, const TraceEvent& event) {
  writer_.write_line(render_trace_line(run_id, epoch_.elapsed_seconds(), event));
}

namespace {

// Minimal recursive-descent scanner for one flat JSON object.
class FlatParser {
 public:
  explicit FlatParser(std::string_view text) : text_(text) {}

  std::optional<JsonObject> parse() {
    skip_ws();
    if (!consume('{')) return std::nullopt;
    JsonObject out;
    skip_ws();
    if (consume('}')) return finish(out);
    for (;;) {
      skip_ws();
      std::string key;
      if (!parse_string(key)) return std::nullopt;
      skip_ws();
      if (!consume(':')) return std::nullopt;
      skip_ws();
      JsonValue value;
      if (!parse_value(value)) return std::nullopt;
      out[std::move(key)] = std::move(value);
      skip_ws();
      if (consume(',')) continue;
      if (consume('}')) return finish(out);
      return std::nullopt;
    }
  }

 private:
  std::optional<JsonObject> finish(JsonObject& out) {
    skip_ws();
    if (pos_ != text_.size()) return std::nullopt;  // trailing garbage
    return std::move(out);
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool consume_word(std::string_view word) {
    if (text_.substr(pos_, word.size()) == word) {
      pos_ += word.size();
      return true;
    }
    return false;
  }

  bool parse_string(std::string& out) {
    if (!consume('"')) return false;
    out.clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) return false;
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return false;
          unsigned code = 0;
          for (int k = 0; k < 4; ++k) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else return false;
          }
          // The writer only \u-escapes control characters (< 0x20); decode
          // the ASCII range and substitute '?' for anything beyond it.
          out += code < 0x80 ? static_cast<char>(code) : '?';
          break;
        }
        default:
          return false;
      }
    }
    return false;  // unterminated
  }

  bool parse_value(JsonValue& out) {
    if (pos_ >= text_.size()) return false;
    const char c = text_[pos_];
    if (c == '"') {
      out.kind = JsonValue::Kind::kString;
      return parse_string(out.str);
    }
    if (c == 't') {
      if (!consume_word("true")) return false;
      out.kind = JsonValue::Kind::kBool;
      out.b = true;
      return true;
    }
    if (c == 'f') {
      if (!consume_word("false")) return false;
      out.kind = JsonValue::Kind::kBool;
      out.b = false;
      return true;
    }
    if (c == 'n') {
      if (!consume_word("null")) return false;
      out.kind = JsonValue::Kind::kNull;
      return true;
    }
    // Number: [-]digits[.digits][(e|E)[+-]digits]
    const std::size_t start = pos_;
    if (consume('-')) {
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return false;
    const std::string_view token = text_.substr(start, pos_ - start);
    double value = 0;
    const auto [end, ec] =
        std::from_chars(token.data(), token.data() + token.size(), value);
    if (ec != std::errc() || end != token.data() + token.size()) return false;
    out.kind = JsonValue::Kind::kNumber;
    out.num = value;
    return true;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

std::optional<JsonObject> parse_flat_json(std::string_view line) {
  return FlatParser(line).parse();
}

}  // namespace compsynth::obs
