# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_swan_te "/root/repo/build/examples/swan_te")
set_tests_properties(example_swan_te PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;20;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_abr_qoe "/root/repo/build/examples/abr_qoe")
set_tests_properties(example_abr_qoe PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;21;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_homenet_policy "/root/repo/build/examples/homenet_policy")
set_tests_properties(example_homenet_policy PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;22;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_priority_te "/root/repo/build/examples/priority_te")
set_tests_properties(example_priority_te PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;26;add_test;/root/repo/examples/CMakeLists.txt;0;")
