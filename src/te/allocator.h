// SWAN-style bandwidth allocators over tunnels (paper §2).
//
// Every allocator decides, for each flow i and tunnel j, the rate b_ij to
// send, subject to link capacities and flow demands. Implemented policies:
//
//   * max_throughput      — maximize total allocated rate;
//   * swan_allocation     — the paper's Eq. (2.1): maximize
//                           sum_i b_i - epsilon * sum_ij w_j b_ij, where the
//                           tunnel weight w_j is its latency;
//   * max_min_fair        — weighted, demand-capped max-min fairness via the
//                           classic iterative freeze procedure;
//   * danna_balanced      — the fairness/throughput balance of Danna et al.
//                           [3]: maximize throughput subject to every flow
//                           keeping at least a fraction q_f of its max-min
//                           fair share;
//   * priority layering   — strict multi-class allocation (SWAN's higher
//                           classes first), wrapping any base policy.
//
// All of them reduce to LPs solved by the in-repo simplex (te/lp/simplex.h).
#pragma once

#include <functional>
#include <vector>

#include "te/topology.h"
#include "te/tunnel.h"

namespace compsynth::te {

/// The outcome of an allocation: per-tunnel rates plus summary metrics —
/// exactly the metric pair (throughput, latency) the synthesizer learns
/// objectives over.
struct Allocation {
  bool feasible = false;
  std::vector<std::vector<double>> tunnel_rates;  // [flow][tunnel], Gbps
  std::vector<double> flow_rates;                 // Gbps per flow

  double total_throughput_gbps = 0;
  /// Traffic-weighted average tunnel latency (the paper's "latency" metric);
  /// 0 when nothing is allocated.
  double weighted_latency_ms = 0;
};

/// Maximize total throughput.
Allocation max_throughput(const Topology& topo,
                          const std::vector<FlowRequest>& requests);

/// The throughput that ignores fairness entirely (T_opt in Danna et al.).
double optimal_throughput(const Topology& topo,
                          const std::vector<FlowRequest>& requests);

/// The paper's Eq. (2.1) objective with latency-penalty knob epsilon >= 0.
Allocation swan_allocation(const Topology& topo,
                           const std::vector<FlowRequest>& requests,
                           double epsilon);

/// Weighted, demand-capped max-min fair rates (single class).
Allocation max_min_fair(const Topology& topo,
                        const std::vector<FlowRequest>& requests);

/// Danna-style balance: maximize throughput subject to
/// flow_rate_i >= q_fair * maxmin_i for all i, with q_fair in [0, 1].
Allocation danna_balanced(const Topology& topo,
                          const std::vector<FlowRequest>& requests,
                          double q_fair);

/// Strict priority layering: allocates classes from highest Flow::priority
/// down, shrinking link capacities between classes; `base` allocates within
/// one class (defaults to max_min_fair, matching SWAN).
using ClassAllocator = std::function<Allocation(
    const Topology&, const std::vector<FlowRequest>&)>;
Allocation priority_layered(const Topology& topo,
                            const std::vector<FlowRequest>& requests,
                            const ClassAllocator& base = max_min_fair);

}  // namespace compsynth::te
