# Empty compiler generated dependencies file for swan_te.
# This may be replaced when dependencies are built.
