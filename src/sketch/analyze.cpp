#include "sketch/analyze.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

namespace compsynth::sketch {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// Note on rounding: every transfer function below evaluates its interval
// corners with the same double operations the concrete interpreter uses.
// IEEE rounding is monotone (u <= v implies fl(u) <= fl(v)), so the corner
// computed in double precision already dominates every interior concrete
// result of that single operation — no outward ulp padding is required.
// Containment then composes node by node.

std::string fmt_num(double v) {
  std::ostringstream os;
  os << v;
  return os.str();
}

bool contains_zero(const Interval& b) { return b.lo <= 0 && b.hi >= 0; }

bool has_pos_inf(const Interval& a) { return a.hi == kInf; }
bool has_neg_inf(const Interval& a) { return a.lo == -kInf; }

}  // namespace

Interval Interval::point(double v) {
  if (std::isnan(v)) {
    Interval r = top();
    r.maybe_error = false;
    return r;
  }
  return Interval{v, v, false, false};
}

Interval Interval::of(double a, double b) {
  if (std::isnan(a) || std::isnan(b)) {
    Interval r = top();
    r.maybe_error = false;
    return r;
  }
  return Interval{std::min(a, b), std::max(a, b), false, false};
}

Interval Interval::top() { return Interval{-kInf, kInf, true, true}; }

bool Interval::admits(double v) const {
  if (std::isnan(v)) return maybe_nan;
  return lo <= v && v <= hi;
}

bool Interval::finite() const { return std::isfinite(lo) && std::isfinite(hi); }

Interval interval_neg(const Interval& a) {
  return Interval{-a.hi, -a.lo, a.maybe_nan, a.maybe_error};
}

Interval interval_hull(const Interval& a, const Interval& b) {
  return Interval{std::min(a.lo, b.lo), std::max(a.hi, b.hi),
                  a.maybe_nan || b.maybe_nan, a.maybe_error || b.maybe_error};
}

Interval interval_add(const Interval& a, const Interval& b) {
  Interval r;
  r.maybe_nan = a.maybe_nan || b.maybe_nan;
  r.maybe_error = a.maybe_error || b.maybe_error;
  // -inf + +inf = NaN can pair any endpoint of one operand with the
  // opposite infinity of the other, not just corner-with-corner.
  if ((has_neg_inf(a) && has_pos_inf(b)) || (has_pos_inf(a) && has_neg_inf(b))) {
    r.maybe_nan = true;
  }
  r.lo = a.lo + b.lo;
  r.hi = a.hi + b.hi;
  if (std::isnan(r.lo)) r.lo = -kInf;
  if (std::isnan(r.hi)) r.hi = kInf;
  return r;
}

Interval interval_sub(const Interval& a, const Interval& b) {
  return interval_add(a, interval_neg(b));
}

Interval interval_mul(const Interval& a, const Interval& b) {
  Interval r;
  r.maybe_nan = a.maybe_nan || b.maybe_nan;
  r.maybe_error = a.maybe_error || b.maybe_error;
  // 0 * inf = NaN: an interior zero of one operand can meet an infinite
  // endpoint of the other.
  const bool a_inf = has_pos_inf(a) || has_neg_inf(a);
  const bool b_inf = has_pos_inf(b) || has_neg_inf(b);
  if ((contains_zero(a) && b_inf) || (contains_zero(b) && a_inf)) {
    r.maybe_nan = true;
  }
  const double corners[4] = {a.lo * b.lo, a.lo * b.hi, a.hi * b.lo,
                             a.hi * b.hi};
  r.lo = kInf;
  r.hi = -kInf;
  for (const double c : corners) {
    if (std::isnan(c)) {
      r.maybe_nan = true;
      continue;
    }
    r.lo = std::min(r.lo, c);
    r.hi = std::max(r.hi, c);
  }
  if (r.lo > r.hi) {  // every corner was NaN (0 * inf point intervals)
    r.lo = -kInf;
    r.hi = kInf;
  }
  return r;
}

Interval interval_div(const Interval& a, const Interval& b) {
  Interval r;
  r.maybe_nan = a.maybe_nan || b.maybe_nan;
  r.maybe_error = a.maybe_error || b.maybe_error;
  if (contains_zero(b)) {
    // Some divisor value is exactly zero: eval.cpp throws there. Divisors
    // arbitrarily close to zero drive the quotient to +/-inf, so the value
    // enclosure collapses to everything.
    r.maybe_error = true;
    r.lo = -kInf;
    r.hi = kInf;
    const bool a_inf = has_pos_inf(a) || has_neg_inf(a);
    const bool b_inf = has_pos_inf(b) || has_neg_inf(b);
    if (a_inf && b_inf) r.maybe_nan = true;  // inf / inf = NaN
    return r;
  }
  const double corners[4] = {a.lo / b.lo, a.lo / b.hi, a.hi / b.lo,
                             a.hi / b.hi};
  r.lo = kInf;
  r.hi = -kInf;
  for (const double c : corners) {
    if (std::isnan(c)) {  // inf / inf
      r.maybe_nan = true;
      continue;
    }
    r.lo = std::min(r.lo, c);
    r.hi = std::max(r.hi, c);
  }
  if (r.lo > r.hi) {
    r.lo = -kInf;
    r.hi = kInf;
  }
  return r;
}

// std::min(a, b) returns its FIRST argument when b is NaN and NaN when a is
// NaN (the comparison b < a is false either way), so a NaN right operand
// yields the left operand's value while a NaN left operand propagates.
Interval interval_min(const Interval& a, const Interval& b) {
  Interval r;
  r.lo = std::min(a.lo, b.lo);
  r.hi = std::min(a.hi, b.hi);
  if (b.maybe_nan) r.hi = std::max(r.hi, a.hi);  // min(x, NaN) == x
  r.maybe_nan = a.maybe_nan;
  r.maybe_error = a.maybe_error || b.maybe_error;
  return r;
}

Interval interval_max(const Interval& a, const Interval& b) {
  Interval r;
  r.lo = std::max(a.lo, b.lo);
  r.hi = std::max(a.hi, b.hi);
  if (b.maybe_nan) r.lo = std::min(r.lo, a.lo);  // max(x, NaN) == x
  r.maybe_nan = a.maybe_nan;
  r.maybe_error = a.maybe_error || b.maybe_error;
  return r;
}

Interval grid_interval(const HoleSpec& spec) {
  return grid_interval(spec, 0, spec.count - 1);
}

Interval grid_interval(const HoleSpec& spec, std::int64_t first,
                       std::int64_t last) {
  if (spec.count < 1) return Interval::point(spec.lo);
  first = std::clamp<std::int64_t>(first, 0, spec.count - 1);
  last = std::clamp<std::int64_t>(last, 0, spec.count - 1);
  // value_at's lo + i*step is monotone in i under IEEE rounding, so the two
  // endpoint values enclose every interior grid point exactly.
  return Interval::of(spec.lo + static_cast<double>(first) * spec.step,
                      spec.lo + static_cast<double>(last) * spec.step);
}

Box full_box(const Sketch& sketch) {
  Box box;
  box.metrics.reserve(sketch.metrics().size());
  for (const MetricSpec& m : sketch.metrics()) {
    box.metrics.push_back(Interval::of(m.lo, m.hi));
  }
  box.holes.reserve(sketch.holes().size());
  for (const HoleSpec& h : sketch.holes()) {
    box.holes.push_back(grid_interval(h));
  }
  return box;
}

std::pair<std::int64_t, std::int64_t> reachable_arms(const Interval& sel,
                                                     std::size_t arm_count) {
  const auto last = static_cast<std::int64_t>(arm_count) - 1;
  if (sel.maybe_nan || std::isnan(sel.lo) || std::isnan(sel.hi)) {
    // llround(NaN) is unspecified; after clamping any arm is possible.
    return {0, last};
  }
  // eval.cpp computes clamp(llround(v)); clamping the double first commutes
  // with it and keeps llround's argument in range (no overflow UB).
  const auto arm_of = [&](double v) {
    return std::llround(std::clamp(v, 0.0, static_cast<double>(last)));
  };
  return {arm_of(sel.lo), arm_of(sel.hi)};
}

namespace {

/// Abstract boolean: which truth values are possible, plus error poison
/// (comparison operands may throw).
struct BoolRange {
  bool can_true = false;
  bool can_false = false;
  bool maybe_error = false;
};

BoolRange compare_range(CmpOp op, const Interval& a, const Interval& b) {
  BoolRange r;
  r.maybe_error = a.maybe_error || b.maybe_error;
  switch (op) {
    case CmpOp::kLt:
      r.can_true = a.lo < b.hi;
      r.can_false = a.hi >= b.lo;
      break;
    case CmpOp::kLe:
      r.can_true = a.lo <= b.hi;
      r.can_false = a.hi > b.lo;
      break;
    case CmpOp::kGt:
      r.can_true = a.hi > b.lo;
      r.can_false = a.lo <= b.hi;
      break;
    case CmpOp::kGe:
      r.can_true = a.hi >= b.lo;
      r.can_false = a.lo < b.hi;
      break;
    case CmpOp::kEq:
      r.can_true = a.lo <= b.hi && b.lo <= a.hi;
      r.can_false = !(a.lo == a.hi && b.lo == b.hi && a.lo == b.lo);
      break;
    case CmpOp::kNe:
      r.can_true = !(a.lo == a.hi && b.lo == b.hi && a.lo == b.lo);
      r.can_false = a.lo <= b.hi && b.lo <= a.hi;
      break;
  }
  // A NaN operand compares false under every operator except !=.
  if (a.maybe_nan || b.maybe_nan) {
    if (op == CmpOp::kNe) {
      r.can_true = true;
    } else {
      r.can_false = true;
    }
  }
  return r;
}

struct EvalCtx {
  const Box* box = nullptr;
  std::vector<Diagnostic>* sink = nullptr;  // nullptr = interval-only
  // Memoized per-node results: shared sub-DAGs are analyzed (and any
  // hazards reported) exactly once, keeping the walk linear in node count.
  std::unordered_map<const Expr*, Interval> memo_num;
  std::unordered_map<const Expr*, BoolRange> memo_bool;
};

void report(EvalCtx& ctx, const Expr& e, DiagCode code, Severity severity,
            std::string message) {
  if (ctx.sink == nullptr) return;
  ctx.sink->push_back(
      Diagnostic{code, severity, e.line, e.column, std::move(message)});
}

Interval eval_num(const Expr& e, EvalCtx& ctx);
BoolRange eval_bool_range(const Expr& e, EvalCtx& ctx);

Interval eval_binary(const Expr& e, EvalCtx& ctx) {
  const Interval a = eval_num(*e.children[0], ctx);
  const Interval b = eval_num(*e.children[1], ctx);
  Interval r;
  switch (e.bin_op) {
    case BinOp::kAdd: r = interval_add(a, b); break;
    case BinOp::kSub: r = interval_sub(a, b); break;
    case BinOp::kMul: r = interval_mul(a, b); break;
    case BinOp::kDiv: r = interval_div(a, b); break;
    case BinOp::kMin: r = interval_min(a, b); break;
    case BinOp::kMax: r = interval_max(a, b); break;
  }
  const bool div_by_zero = e.bin_op == BinOp::kDiv && contains_zero(b);
  if (div_by_zero) {
    if (b.lo == 0 && b.hi == 0 && !b.maybe_nan) {
      report(ctx, e, DiagCode::kDivisionByZero, Severity::kError,
             "division by zero: the divisor is always 0");
    } else {
      report(ctx, e, DiagCode::kDivisionByZero, Severity::kWarning,
             "possible division by zero: divisor range [" + fmt_num(b.lo) +
                 ", " + fmt_num(b.hi) + "] contains 0");
    }
  }
  const bool operands_bounded = a.finite() && b.finite();
  if (operands_bounded && !div_by_zero && !r.finite()) {
    report(ctx, e, DiagCode::kPossibleOverflow, Severity::kWarning,
           "may overflow to +/-infinity over the analyzed ranges");
  }
  if (r.maybe_nan && !a.maybe_nan && !b.maybe_nan && !div_by_zero) {
    report(ctx, e, DiagCode::kPossibleNan, Severity::kWarning,
           "may produce NaN over the analyzed ranges");
  }
  return r;
}

Interval eval_choice(const Expr& e, EvalCtx& ctx) {
  if (e.hole >= ctx.box->holes.size()) return Interval::top();
  const Interval sel = ctx.box->holes[e.hole];
  const auto [first, last] = reachable_arms(sel, e.children.size());
  Interval r = eval_num(*e.children[static_cast<std::size_t>(first)], ctx);
  for (std::int64_t i = first + 1; i <= last; ++i) {
    r = interval_hull(r, eval_num(*e.children[static_cast<std::size_t>(i)], ctx));
  }
  r.maybe_error = r.maybe_error || sel.maybe_error;
  return r;
}

Interval eval_num(const Expr& e, EvalCtx& ctx) {
  if (const auto it = ctx.memo_num.find(&e); it != ctx.memo_num.end()) {
    return it->second;
  }
  Interval r = Interval::top();
  switch (e.kind) {
    case Expr::Kind::kConst:
      r = Interval::point(e.literal);
      break;
    case Expr::Kind::kMetric:
      r = e.metric < ctx.box->metrics.size() ? ctx.box->metrics[e.metric]
                                             : Interval::top();
      break;
    case Expr::Kind::kHole:
      r = e.hole < ctx.box->holes.size() ? ctx.box->holes[e.hole]
                                         : Interval::top();
      break;
    case Expr::Kind::kNeg:
      r = interval_neg(eval_num(*e.children[0], ctx));
      break;
    case Expr::Kind::kBinary:
      r = eval_binary(e, ctx);
      break;
    case Expr::Kind::kIte: {
      const BoolRange cond = eval_bool_range(*e.children[0], ctx);
      // Only evaluate branches the condition can reach: the concrete
      // interpreter never touches the other branch, so its hazards (and
      // its errors) cannot occur.
      if (cond.can_true && !cond.can_false) {
        r = eval_num(*e.children[1], ctx);
      } else if (cond.can_false && !cond.can_true) {
        r = eval_num(*e.children[2], ctx);
      } else {
        r = interval_hull(eval_num(*e.children[1], ctx),
                          eval_num(*e.children[2], ctx));
      }
      r.maybe_error = r.maybe_error || cond.maybe_error;
      break;
    }
    case Expr::Kind::kChoice:
      r = eval_choice(e, ctx);
      break;
    case Expr::Kind::kCmp:
    case Expr::Kind::kBoolBinary:
    case Expr::Kind::kNot:
    case Expr::Kind::kBoolConst:
      // Boolean node in numeric position: concrete eval throws EvalError.
      r = Interval::top();
      break;
  }
  ctx.memo_num.emplace(&e, r);
  return r;
}

BoolRange eval_bool_range(const Expr& e, EvalCtx& ctx) {
  if (const auto it = ctx.memo_bool.find(&e); it != ctx.memo_bool.end()) {
    return it->second;
  }
  BoolRange r{true, true, true};  // ill-typed default: anything may happen
  switch (e.kind) {
    case Expr::Kind::kBoolConst:
      r = BoolRange{e.literal != 0, e.literal == 0, false};
      break;
    case Expr::Kind::kCmp:
      r = compare_range(e.cmp_op, eval_num(*e.children[0], ctx),
                        eval_num(*e.children[1], ctx));
      break;
    case Expr::Kind::kBoolBinary: {
      // eval.cpp evaluates both operands unconditionally (no
      // short-circuiting), so errors from either side always propagate.
      const BoolRange a = eval_bool_range(*e.children[0], ctx);
      const BoolRange b = eval_bool_range(*e.children[1], ctx);
      if (e.bool_op == BoolOp::kAnd) {
        r.can_true = a.can_true && b.can_true;
        r.can_false = a.can_false || b.can_false;
      } else {
        r.can_true = a.can_true || b.can_true;
        r.can_false = a.can_false && b.can_false;
      }
      r.maybe_error = a.maybe_error || b.maybe_error;
      break;
    }
    case Expr::Kind::kNot: {
      const BoolRange a = eval_bool_range(*e.children[0], ctx);
      r = BoolRange{a.can_false, a.can_true, a.maybe_error};
      break;
    }
    default:
      break;  // numeric node in boolean position: keep the poisoned default
  }
  ctx.memo_bool.emplace(&e, r);
  return r;
}

// --- lint passes -----------------------------------------------------------

/// Structural equality (ignores source positions) for overlap detection.
bool struct_equal(const Expr& a, const Expr& b) {
  if (a.kind != b.kind || a.children.size() != b.children.size()) return false;
  switch (a.kind) {
    case Expr::Kind::kConst:
    case Expr::Kind::kBoolConst:
      if (a.literal != b.literal) return false;
      break;
    case Expr::Kind::kMetric:
      if (a.metric != b.metric) return false;
      break;
    case Expr::Kind::kHole:
    case Expr::Kind::kChoice:
      if (a.hole != b.hole) return false;
      break;
    case Expr::Kind::kBinary:
      if (a.bin_op != b.bin_op) return false;
      break;
    case Expr::Kind::kCmp:
      if (a.cmp_op != b.cmp_op) return false;
      break;
    case Expr::Kind::kBoolBinary:
      if (a.bool_op != b.bool_op) return false;
      break;
    case Expr::Kind::kNeg:
    case Expr::Kind::kIte:
    case Expr::Kind::kNot:
      break;
  }
  for (std::size_t i = 0; i < a.children.size(); ++i) {
    if (a.children[i] == nullptr || b.children[i] == nullptr) {
      return a.children[i] == b.children[i];
    }
    if (!struct_equal(*a.children[i], *b.children[i])) return false;
  }
  return true;
}

struct LintCtx {
  std::span<const MetricSpec> metrics;
  std::span<const HoleSpec> holes;
  std::vector<Diagnostic>* sink = nullptr;
  std::unordered_set<const Expr*> visited;
  bool ok = true;  // no error-severity structural/type problems
};

void lint_error(LintCtx& ctx, const Expr& e, std::string message) {
  ctx.ok = false;
  ctx.sink->push_back(Diagnostic{DiagCode::kTypeError, Severity::kError,
                                 e.line, e.column, std::move(message)});
}

void lint_choice_specs(LintCtx& ctx, const Expr& e) {
  const HoleSpec& spec = ctx.holes[e.hole];
  const auto arms = static_cast<std::int64_t>(e.children.size());
  if (spec.lo != 0 || (spec.count > 1 && spec.step != 1)) {
    ctx.ok = false;
    ctx.sink->push_back(Diagnostic{
        DiagCode::kNonCanonicalSelector, Severity::kError, e.line, e.column,
        "choice selector '" + spec.name + "' must be grid(0, 1, " +
            std::to_string(arms) + "), not grid(" + fmt_num(spec.lo) + ", " +
            fmt_num(spec.step) + ", " + std::to_string(spec.count) + ")"});
    return;  // arm-coverage checks below assume a canonical base/step
  }
  if (spec.count > arms) {
    ctx.ok = false;
    ctx.sink->push_back(Diagnostic{
        DiagCode::kSelectorGap, Severity::kError, e.line, e.column,
        "selector '" + spec.name + "' values " + std::to_string(arms) + ".." +
            std::to_string(spec.count - 1) +
            " have no alternative (they all clamp to the last arm)"});
  } else if (spec.count < arms) {
    ctx.ok = false;
    ctx.sink->push_back(Diagnostic{
        DiagCode::kDeadChooseArm, Severity::kError, e.line, e.column,
        "choose arms " + std::to_string(spec.count) + ".." +
            std::to_string(arms - 1) + " are dead: selector '" + spec.name +
            "' only reaches 0.." + std::to_string(spec.count - 1)});
  }
  for (std::size_t i = 0; i < e.children.size(); ++i) {
    for (std::size_t j = i + 1; j < e.children.size(); ++j) {
      if (e.children[i] != nullptr && e.children[j] != nullptr &&
          struct_equal(*e.children[i], *e.children[j])) {
        ctx.sink->push_back(Diagnostic{
            DiagCode::kOverlappingArms, Severity::kWarning, e.line, e.column,
            "choose arms " + std::to_string(i + 1) + " and " +
                std::to_string(j + 1) +
                " are structurally identical (overlapping alternatives)"});
      }
    }
  }
}

/// Tolerant type/arity/reference walk: reports every problem instead of
/// throwing on the first. Returns whether the node is numeric (implied by
/// its kind, so recovery continues past errors).
bool lint_walk(LintCtx& ctx, const Expr& e) {
  const bool first_visit = ctx.visited.insert(&e).second;
  const auto child_count = e.children.size();
  std::size_t expected = 0;
  const char* what = "";
  switch (e.kind) {
    case Expr::Kind::kConst: what = "constant"; break;
    case Expr::Kind::kBoolConst: what = "boolean constant"; break;
    case Expr::Kind::kMetric:
      what = "metric reference";
      if (first_visit && e.metric >= ctx.metrics.size()) {
        lint_error(ctx, e, "metric reference out of range");
      }
      break;
    case Expr::Kind::kHole:
      what = "hole reference";
      if (first_visit && e.hole >= ctx.holes.size()) {
        lint_error(ctx, e, "hole reference out of range");
      }
      break;
    case Expr::Kind::kNeg: expected = 1; what = "negation"; break;
    case Expr::Kind::kBinary: expected = 2; what = "binary op"; break;
    case Expr::Kind::kIte: expected = 3; what = "if-then-else"; break;
    case Expr::Kind::kChoice:
      expected = child_count;  // variadic; arity checked separately
      what = "choose";
      if (first_visit) {
        if (child_count < 2) {
          lint_error(ctx, e, "choose needs at least two alternatives");
        }
        if (e.hole >= ctx.holes.size()) {
          lint_error(ctx, e, "choice selector hole out of range");
        } else if (child_count >= 2) {
          lint_choice_specs(ctx, e);
        }
      }
      break;
    case Expr::Kind::kCmp: expected = 2; what = "comparison"; break;
    case Expr::Kind::kBoolBinary: expected = 2; what = "boolean op"; break;
    case Expr::Kind::kNot: expected = 1; what = "logical not"; break;
  }
  if (first_visit && child_count != expected) {
    lint_error(ctx, e, std::string(what) + ": wrong arity");
  }

  // Child type expectations by kind (null children are reported and skipped).
  for (std::size_t i = 0; i < child_count; ++i) {
    if (e.children[i] == nullptr) {
      if (first_visit) lint_error(ctx, e, std::string(what) + ": null child");
      continue;
    }
    const bool child_numeric = lint_walk(ctx, *e.children[i]);
    if (!first_visit) continue;
    bool want_numeric = true;
    switch (e.kind) {
      case Expr::Kind::kIte:
        want_numeric = i != 0;
        break;
      case Expr::Kind::kBoolBinary:
      case Expr::Kind::kNot:
        want_numeric = false;
        break;
      default:
        break;
    }
    if (child_numeric != want_numeric) {
      lint_error(ctx, e, std::string(what) + ": operand " +
                             std::to_string(i + 1) + " must be " +
                             (want_numeric ? "numeric" : "boolean"));
    }
  }
  return is_numeric_kind(e.kind);
}

/// True when the subtree references no metric, hole or choice — its value
/// is the same for every input.
bool is_const_subtree(const Expr& e,
                      std::unordered_map<const Expr*, bool>& memo) {
  if (const auto it = memo.find(&e); it != memo.end()) return it->second;
  bool constant = true;
  switch (e.kind) {
    case Expr::Kind::kMetric:
    case Expr::Kind::kHole:
    case Expr::Kind::kChoice:
      constant = false;
      break;
    default:
      for (const ExprPtr& c : e.children) {
        if (c == nullptr || !is_const_subtree(*c, memo)) {
          constant = false;
          break;
        }
      }
      break;
  }
  memo.emplace(&e, constant);
  return constant;
}

/// Reports the outermost constant-foldable operation nodes (leaves are
/// constants by definition and not worth a note).
void report_foldable(const Expr& e, std::unordered_map<const Expr*, bool>& memo,
                     std::unordered_set<const Expr*>& reported,
                     std::vector<Diagnostic>& sink) {
  if (is_const_subtree(e, memo)) {
    if (e.children.empty()) return;  // bare literal
    if (reported.insert(&e).second) {
      sink.push_back(Diagnostic{
          DiagCode::kConstantFoldable, Severity::kNote, e.line, e.column,
          "subtree has no metric/hole inputs and folds to a constant"});
    }
    return;
  }
  for (const ExprPtr& c : e.children) {
    if (c != nullptr) report_foldable(*c, memo, reported, sink);
  }
}

void lint_declarations(std::span<const MetricSpec> metrics,
                       std::span<const HoleSpec> holes,
                       std::vector<Diagnostic>& sink, bool& ok) {
  const auto decl_error = [&](std::uint32_t line, std::uint32_t column,
                              std::string message) {
    ok = false;
    sink.push_back(Diagnostic{DiagCode::kTypeError, Severity::kError, line,
                              column, std::move(message)});
  };
  std::vector<std::pair<std::string_view, const void*>> names;
  for (const MetricSpec& m : metrics) {
    if (m.name.empty()) decl_error(m.line, m.column, "metric name is empty");
    if (m.lo > m.hi) {
      decl_error(m.line, m.column,
                 "metric '" + m.name + "' range [" + fmt_num(m.lo) + ", " +
                     fmt_num(m.hi) + "] is inverted");
    }
    names.emplace_back(m.name, &m);
  }
  for (const HoleSpec& h : holes) {
    if (h.name.empty()) decl_error(h.line, h.column, "hole name is empty");
    if (h.count < 1) {
      decl_error(h.line, h.column, "hole '" + h.name + "' grid is empty");
    }
    if (h.count > 1 && h.step <= 0) {
      decl_error(h.line, h.column,
                 "hole '" + h.name + "' grid step must be positive");
    }
    names.emplace_back(h.name, &h);
  }
  std::sort(names.begin(), names.end());
  for (std::size_t i = 1; i < names.size(); ++i) {
    if (!names[i].first.empty() && names[i].first == names[i - 1].first) {
      decl_error(0, 0, "duplicate metric/hole name '" +
                           std::string(names[i].first) + "'");
    }
  }
}

void lint_usage(const Expr& body, std::span<const MetricSpec> metrics,
                std::span<const HoleSpec> holes,
                std::vector<Diagnostic>& sink) {
  const std::vector<bool> m_used = used_metrics(body, metrics.size());
  for (std::size_t i = 0; i < metrics.size(); ++i) {
    if (m_used[i]) continue;
    sink.push_back(Diagnostic{
        DiagCode::kUnusedMetric, Severity::kWarning, metrics[i].line,
        metrics[i].column,
        "metric '" + metrics[i].name + "' is never read by the body"});
  }
  const std::vector<bool> h_used = used_holes(body, holes.size());
  for (std::size_t i = 0; i < holes.size(); ++i) {
    if (!h_used[i]) {
      sink.push_back(Diagnostic{
          DiagCode::kUnusedHole, Severity::kWarning, holes[i].line,
          holes[i].column,
          "hole '" + holes[i].name +
              "' is never read; every grid point yields the same objective"});
    } else if (holes[i].count == 1) {
      sink.push_back(Diagnostic{
          DiagCode::kDegenerateGrid, Severity::kWarning, holes[i].line,
          holes[i].column,
          "hole '" + holes[i].name +
              "' has a single-point grid: the dimension cannot vary (degenerate)"});
    }
  }
}

void mark_used(const Expr& e, std::vector<bool>& metrics,
               std::vector<bool>& holes) {
  switch (e.kind) {
    case Expr::Kind::kMetric:
      if (e.metric < metrics.size()) metrics[e.metric] = true;
      break;
    case Expr::Kind::kHole:
      if (e.hole < holes.size()) holes[e.hole] = true;
      break;
    case Expr::Kind::kChoice:
      if (e.hole < holes.size()) holes[e.hole] = true;
      break;
    default:
      break;
  }
  for (const ExprPtr& c : e.children) {
    if (c != nullptr) mark_used(*c, metrics, holes);
  }
}

}  // namespace

std::vector<bool> used_metrics(const Expr& e, std::size_t metric_count) {
  std::vector<bool> metrics(metric_count, false);
  std::vector<bool> holes;
  mark_used(e, metrics, holes);
  return metrics;
}

std::vector<bool> used_holes(const Expr& e, std::size_t hole_count) {
  std::vector<bool> metrics;
  std::vector<bool> holes(hole_count, false);
  mark_used(e, metrics, holes);
  return holes;
}

Interval eval_interval(const Expr& e, const Box& box) {
  EvalCtx ctx;
  ctx.box = &box;
  return eval_num(e, ctx);
}

AnalysisResult analyze_expr(const Expr& body,
                            std::span<const MetricSpec> metrics,
                            std::span<const HoleSpec> holes) {
  AnalysisResult res;
  bool decls_ok = true;
  lint_declarations(metrics, holes, res.diagnostics, decls_ok);

  LintCtx lint;
  lint.metrics = metrics;
  lint.holes = holes;
  lint.sink = &res.diagnostics;
  const bool body_numeric = lint_walk(lint, body);
  if (!body_numeric) {
    lint.ok = false;
    res.diagnostics.push_back(
        Diagnostic{DiagCode::kTypeError, Severity::kError, body.line,
                   body.column, "sketch body must be numeric, not boolean"});
  }
  res.well_typed = lint.ok && decls_ok;

  if (res.well_typed) {
    Box box;
    box.metrics.reserve(metrics.size());
    for (const MetricSpec& m : metrics) {
      box.metrics.push_back(Interval::of(m.lo, m.hi));
    }
    box.holes.reserve(holes.size());
    for (const HoleSpec& h : holes) box.holes.push_back(grid_interval(h));
    EvalCtx eval;
    eval.box = &box;
    eval.sink = &res.diagnostics;
    res.output = eval_num(body, eval);
  }

  lint_usage(body, metrics, holes, res.diagnostics);
  {
    std::unordered_map<const Expr*, bool> memo;
    std::unordered_set<const Expr*> reported;
    report_foldable(body, memo, reported, res.diagnostics);
  }

  // Deterministic presentation order: by position, then code.
  std::stable_sort(res.diagnostics.begin(), res.diagnostics.end(),
                   [](const Diagnostic& a, const Diagnostic& b) {
                     if (a.line != b.line) return a.line < b.line;
                     if (a.column != b.column) return a.column < b.column;
                     return static_cast<int>(a.code) < static_cast<int>(b.code);
                   });
  return res;
}

AnalysisResult analyze(const Sketch& sketch) {
  return analyze_expr(*sketch.body(), sketch.metrics(), sketch.holes());
}

}  // namespace compsynth::sketch
