#include "oracle/oracle.h"

#include <vector>

namespace compsynth::oracle {

RankingResponse Oracle::do_rank(std::span<const pref::Scenario> scenarios) {
  // Generic ranking via comparisons only. NOTE: noisy users make the
  // comparison relation inconsistent (not a strict weak order), so feeding
  // it to std::sort would be undefined behaviour. A hand-rolled insertion
  // ranking is safe under arbitrary (even contradictory) answers.
  std::vector<std::size_t> order;
  order.reserve(scenarios.size());
  for (std::size_t i = 0; i < scenarios.size(); ++i) {
    std::size_t pos = 0;
    while (pos < order.size() &&
           do_compare(scenarios[i], scenarios[order[pos]]) != Preference::kFirst) {
      ++pos;
    }
    order.insert(order.begin() + static_cast<std::ptrdiff_t>(pos), i);
  }

  // Report the adjacent relations of the chain; transitivity of the
  // synthesized objective makes the chain as informative as all O(n^2)
  // pairs.
  RankingResponse out;
  for (std::size_t k = 0; k + 1 < order.size(); ++k) {
    const std::size_t hi = order[k];
    const std::size_t lo = order[k + 1];
    switch (do_compare(scenarios[hi], scenarios[lo])) {
      case Preference::kFirst:
        out.preferences.push_back({hi, lo});
        break;
      case Preference::kSecond:
        // Inconsistent answers (noise) are recorded as given.
        out.preferences.push_back({lo, hi});
        break;
      case Preference::kTie:
        out.ties.push_back({hi, lo});
        break;
    }
  }
  return out;
}

}  // namespace compsynth::oracle
