// Differential tests for the solver acceleration layer (docs/SOLVER.md).
//
// Every acceleration — incremental push/pop encodings, the solver result
// cache (cold and warm), interval pre-checks, pinned portfolio legs — must
// be *transparent*: the same seed produces the identical oracle query
// sequence and the identical learned objective with the feature on or off,
// across the SWAN, ABR-QoE and homenet sketches. The racing portfolio mode
// is exempt from sequence identity by design (the winning leg varies with
// load) and is instead held to ranking-equivalence against the target.
//
// Also covers SolverCache in isolation (FIFO eviction, persistence) and the
// kill/resume path through the snapshot @cache section.
#include <gtest/gtest.h>

#include <cstdio>
#include <memory>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "oracle/ground_truth.h"
#include "session/snapshot.h"
#include "sketch/library.h"
#include "solver/equivalence.h"
#include "solver/portfolio_finder.h"
#include "solver/solver_cache.h"
#include "synth/synthesizer.h"

namespace compsynth {
namespace {

// ---------------------------------------------------------------------------
// SolverCache unit behavior.

TEST(SolverCache, MissThenStoreThenHit) {
  solver::SolverCache cache(8);
  EXPECT_FALSE(cache.lookup("k").has_value());
  cache.store("k", "value");
  const auto hit = cache.lookup("k");
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(*hit, "value");
  const auto stats = cache.stats();
  EXPECT_EQ(stats.hits, 1);
  EXPECT_EQ(stats.misses, 1);
  EXPECT_EQ(stats.stores, 1);
  EXPECT_EQ(stats.evictions, 0);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(SolverCache, OverwriteReplacesValueWithoutGrowing) {
  solver::SolverCache cache(8);
  cache.store("k", "old");
  cache.store("k", "new");
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.lookup("k"), "new");
}

TEST(SolverCache, EvictsOldestEntryFirst) {
  solver::SolverCache cache(2);
  cache.store("a", "1");
  cache.store("b", "2");
  cache.store("c", "3");  // evicts "a"
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_FALSE(cache.lookup("a").has_value());
  EXPECT_EQ(cache.lookup("b"), "2");
  EXPECT_EQ(cache.lookup("c"), "3");
  EXPECT_EQ(cache.stats().evictions, 1);
}

TEST(SolverCache, KeyHashIsStableAndDiscriminates) {
  const std::string key = "sketch swan | graph ... | domain none";
  EXPECT_EQ(solver::SolverCache::key_hash(key),
            solver::SolverCache::key_hash(key));
  EXPECT_NE(solver::SolverCache::key_hash("a"),
            solver::SolverCache::key_hash("b"));
}

TEST(SolverCache, SaveRestorePreservesEntriesAndEvictionOrder) {
  solver::SolverCache cache(2);
  cache.store("first", "1");
  cache.store("second", std::string("blob with\nnewlines and \0bytes", 29));
  const std::string blob = cache.save_state();

  solver::SolverCache back(2);
  back.restore_state(blob);
  EXPECT_EQ(back.size(), 2u);
  EXPECT_EQ(back.lookup("first"), cache.lookup("first"));
  EXPECT_EQ(back.lookup("second"), cache.lookup("second"));
  // Insertion order survived: the next store evicts "first", not "second".
  back.store("third", "3");
  EXPECT_FALSE(back.lookup("first").has_value());
  EXPECT_TRUE(back.lookup("second").has_value());
}

TEST(SolverCache, RestoreRejectsMalformedState) {
  solver::SolverCache cache(4);
  cache.store("keep", "me");
  EXPECT_THROW(cache.restore_state("not a cache blob"),
               std::invalid_argument);
  // A failed restore leaves the cache untouched.
  EXPECT_EQ(cache.lookup("keep"), "me");
}

// ---------------------------------------------------------------------------
// Query-sequence logging oracle (mirrors tests/session_test.cpp): one
// canonical line per do_compare / do_rank call, with persistence hooks so
// resumed runs replay the identical answer stream.

std::string scenario_key(const pref::Scenario& s) {
  std::string out;
  char buf[40];
  for (double m : s.metrics) {
    std::snprintf(buf, sizeof(buf), " %.17g", m);
    out += buf;
  }
  return out;
}

class LoggingOracle final : public oracle::Oracle {
 public:
  LoggingOracle(const sketch::Sketch& sk, const sketch::HoleAssignment& target,
                double tie_tolerance)
      : inner_(sk, target, tie_tolerance) {}

  std::vector<std::string> log;

 protected:
  oracle::Preference do_compare(const pref::Scenario& a,
                                const pref::Scenario& b) override {
    log.push_back("cmp" + scenario_key(a) + " |" + scenario_key(b));
    return inner_.compare(a, b);
  }
  oracle::RankingResponse do_rank(
      std::span<const pref::Scenario> scenarios) override {
    std::string entry = "rank";
    for (const auto& s : scenarios) entry += scenario_key(s);
    log.push_back(entry);
    return inner_.rank(scenarios);
  }
  void do_save_state(std::ostream& out) const override {
    inner_.save_state(out);
  }
  void do_restore_state(std::istream& in) override { inner_.restore_state(in); }

 private:
  oracle::GroundTruthOracle inner_;
};

// ---------------------------------------------------------------------------
// Differential harness.

struct Workload {
  const sketch::Sketch& sketch;
  sketch::HoleAssignment target;
  std::uint64_t seed = 1;
};

Workload swan_workload() {
  return {sketch::swan_sketch(), sketch::swan_target(), 11};
}

Workload abr_workload() {
  const auto& sk = sketch::abr_qoe_sketch();
  sketch::HoleAssignment target;
  target.index = {sk.holes()[0].nearest_index(2),
                  sk.holes()[1].nearest_index(2),
                  sk.holes()[2].nearest_index(0.5),
                  sk.holes()[3].nearest_index(1)};
  return {sk, target, 606};
}

Workload homenet_workload() {
  const auto& sk = sketch::homenet_sketch();
  sketch::HoleAssignment target;
  target.index = {sk.holes()[0].nearest_index(20),
                  sk.holes()[1].nearest_index(1),
                  sk.holes()[2].nearest_index(1)};
  return {sk, target, 77};
}

enum class Backend { kZ3, kGrid, kPortfolio };

struct RunOut {
  synth::SynthesisResult result;
  std::vector<std::string> log;
};

synth::SynthesisConfig base_config(const Workload& w, int max_iterations) {
  synth::SynthesisConfig config;
  config.seed = w.seed;
  config.max_iterations = max_iterations;
  return config;
}

RunOut run_once(const Workload& w, Backend backend,
                synth::SynthesisConfig config) {
  LoggingOracle user(w.sketch, w.target, config.finder.tie_tolerance);
  synth::Synthesizer s =
      backend == Backend::kZ3 ? synth::make_z3_synthesizer(w.sketch, config)
      : backend == Backend::kGrid
          ? synth::make_grid_synthesizer(w.sketch, config)
          : synth::make_portfolio_synthesizer(w.sketch, config);
  RunOut out;
  out.result = s.run(user);
  out.log = std::move(user.log);
  return out;
}

void expect_same_run(const RunOut& expected, const RunOut& got,
                     const std::string& what) {
  EXPECT_EQ(got.result.status, expected.result.status) << what;
  ASSERT_TRUE(expected.result.objective.has_value()) << what;
  ASSERT_TRUE(got.result.objective.has_value()) << what;
  EXPECT_EQ(got.result.objective->index, expected.result.objective->index)
      << what;
  EXPECT_EQ(got.result.iterations, expected.result.iterations) << what;
  EXPECT_EQ(got.log, expected.log) << what;
}

// Each Z3 acceleration, alone and combined, must reproduce the baseline's
// oracle query sequence and objective exactly. Runs are truncated — sequence
// identity over a fixed iteration budget is the property, convergence is
// covered elsewhere (bench_solver, smoke tests).
void check_z3_accelerations(const Workload& w, int max_iterations) {
  synth::SynthesisConfig baseline_config = base_config(w, max_iterations);
  baseline_config.finder.incremental = false;
  baseline_config.finder.interval_precheck = false;
  const RunOut baseline = run_once(w, Backend::kZ3, baseline_config);
  ASSERT_FALSE(baseline.log.empty());

  {
    synth::SynthesisConfig config = base_config(w, max_iterations);
    config.finder.incremental = true;
    config.finder.interval_precheck = false;
    expect_same_run(baseline, run_once(w, Backend::kZ3, config),
                    "incremental");
  }
  {
    synth::SynthesisConfig config = base_config(w, max_iterations);
    config.finder.incremental = false;
    config.finder.interval_precheck = true;
    expect_same_run(baseline, run_once(w, Backend::kZ3, config), "precheck");
  }
  {
    auto cache = std::make_shared<solver::SolverCache>(4096);
    synth::SynthesisConfig config = base_config(w, max_iterations);
    config.solver_cache = cache;
    expect_same_run(baseline, run_once(w, Backend::kZ3, config),
                    "cold cache + incremental + precheck");
    // Second run replays the warmed cache: still byte-identical, and served
    // from memory rather than the solver.
    const auto before = cache->stats();
    expect_same_run(baseline, run_once(w, Backend::kZ3, config),
                    "warm cache");
    EXPECT_GT(cache->stats().hits, before.hits);
  }
  {
    // A pinned-Z3 portfolio is pure delegation to its Z3 leg.
    synth::SynthesisConfig config = base_config(w, max_iterations);
    config.portfolio_mode = solver::PortfolioMode::kPinZ3;
    expect_same_run(baseline, run_once(w, Backend::kPortfolio, config),
                    "portfolio pin-z3");
  }
}

TEST(AccelDifferential, SwanZ3AccelerationsPreserveSequence) {
  check_z3_accelerations(swan_workload(), 4);
}

TEST(AccelDifferential, AbrQoeZ3AccelerationsPreserveSequence) {
  check_z3_accelerations(abr_workload(), 3);
}

TEST(AccelDifferential, HomenetZ3AccelerationsPreserveSequence) {
  check_z3_accelerations(homenet_workload(), 4);
}

// A pinned-grid portfolio must be indistinguishable from the plain grid
// back-end, all the way to convergence (the factories derive the identical
// pair-search RNG seed for both).
void check_pinned_grid(const Workload& w) {
  synth::SynthesisConfig config = base_config(w, 300);
  const RunOut grid = run_once(w, Backend::kGrid, config);
  ASSERT_EQ(grid.result.status, synth::SynthesisStatus::kConverged);

  config.portfolio_mode = solver::PortfolioMode::kPinGrid;
  expect_same_run(grid, run_once(w, Backend::kPortfolio, config),
                  "portfolio pin-grid");
}

TEST(AccelDifferential, SwanPinnedGridPortfolioMatchesGridBackend) {
  check_pinned_grid(swan_workload());
}

TEST(AccelDifferential, AbrQoePinnedGridPortfolioMatchesGridBackend) {
  check_pinned_grid(abr_workload());
}

TEST(AccelDifferential, HomenetPinnedGridPortfolioMatchesGridBackend) {
  check_pinned_grid(homenet_workload());
}

// The racing portfolio is not replay-deterministic (a cancelled grid search
// still advances its RNG), so it is held to the outcome, not the sequence:
// it must converge to a ranking-equivalent objective.
TEST(AccelDifferential, RacingPortfolioConvergesToEquivalentObjective) {
  const Workload w = swan_workload();
  synth::SynthesisConfig config = base_config(w, 300);
  config.solver_cache = std::make_shared<solver::SolverCache>(4096);
  const RunOut race = run_once(w, Backend::kPortfolio, config);
  ASSERT_EQ(race.result.status, synth::SynthesisStatus::kConverged);
  ASSERT_TRUE(race.result.objective.has_value());
  EXPECT_TRUE(solver::ranking_equivalent(w.sketch, *race.result.objective,
                                         w.target, config.finder));
}

// Kill/resume through the snapshot @cache section: a cached Z3 run is
// checkpointed mid-flight, the state round-trips through the v2 snapshot
// encoding (cache contents included), and a fresh synthesizer + fresh cache
// resumes to the identical continuation.
TEST(AccelDifferential, CacheSurvivesKillResumeThroughSnapshot) {
  const Workload w = homenet_workload();
  const int max_iterations = 5;

  auto ref_cache = std::make_shared<solver::SolverCache>(4096);
  synth::SynthesisConfig ref_config = base_config(w, max_iterations);
  ref_config.solver_cache = ref_cache;

  std::vector<std::pair<synth::SessionState, std::size_t>> checkpoints;
  LoggingOracle ref_user(w.sketch, w.target, ref_config.finder.tie_tolerance);
  synth::SynthesisConfig cap_config = ref_config;
  cap_config.checkpoint = [&](const synth::SessionState& st) {
    checkpoints.emplace_back(st, ref_user.log.size());
  };
  synth::Synthesizer ref_synth = synth::make_z3_synthesizer(w.sketch, cap_config);
  const synth::SynthesisResult ref = ref_synth.run(ref_user);
  ASSERT_TRUE(ref.objective.has_value());
  ASSERT_GE(checkpoints.size(), 2u);

  for (const auto& [state, log_len] : checkpoints) {
    if (state.iterations >= ref.iterations || state.iterations == 0) continue;
    ASSERT_FALSE(state.cache_state.empty())
        << "a cached run's checkpoint must carry the cache";

    // Round-trip through the on-disk form, @cache section included.
    session::Snapshot snap;
    snap.meta.sketch = "homenet";
    snap.meta.backend = "z3";
    snap.meta.seed = w.seed;
    snap.meta.iteration = state.iterations;
    snap.state = state;
    const std::string bytes = session::encode(snap);
    EXPECT_NE(bytes.find("@cache "), std::string::npos);
    const session::Snapshot back = session::decode(bytes);
    EXPECT_EQ(back.state.cache_state, state.cache_state);

    // Resume with a fresh synthesizer and an EMPTY cache: restore must
    // repopulate it from the snapshot.
    auto cache = std::make_shared<solver::SolverCache>(4096);
    synth::SynthesisConfig config = base_config(w, max_iterations);
    config.solver_cache = cache;
    LoggingOracle user(w.sketch, w.target, config.finder.tie_tolerance);
    synth::Synthesizer s = synth::make_z3_synthesizer(w.sketch, config);
    const synth::SynthesisResult r = s.resume(user, back.state);
    EXPECT_GT(cache->size(), 0u) << "resume did not restore the cache";
    ASSERT_TRUE(r.objective.has_value());
    EXPECT_EQ(r.objective->index, ref.objective->index)
        << "resume at iteration " << state.iterations;
    EXPECT_EQ(r.iterations, ref.iterations);
    const std::vector<std::string> expected(ref_user.log.begin() + log_len,
                                            ref_user.log.end());
    EXPECT_EQ(user.log, expected)
        << "resumed query sequence diverged at iteration "
        << state.iterations;
  }
}

}  // namespace
}  // namespace compsynth
