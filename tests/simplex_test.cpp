// LP solver tests: hand-checked instances, degenerate/edge cases, and a
// randomized property sweep cross-checked against brute-force vertex
// enumeration on 2-variable programs.
#include <gtest/gtest.h>

#include <cmath>

#include "te/lp/simplex.h"
#include "util/rng.h"

namespace compsynth::te::lp {
namespace {

TEST(Simplex, TextbookMaximization) {
  // max 3x + 5y s.t. x <= 4; 2y <= 12; 3x + 2y <= 18  -> (2, 6), obj 36.
  LinearProgram p(2);
  p.objective = {3, 5};
  p.add_le({1, 0}, 4);
  p.add_le({0, 2}, 12);
  p.add_le({3, 2}, 18);
  const Solution s = solve(p);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.objective, 36, 1e-7);
  EXPECT_NEAR(s.x[0], 2, 1e-7);
  EXPECT_NEAR(s.x[1], 6, 1e-7);
}

TEST(Simplex, GreaterEqualConstraintsNeedPhase1) {
  // max x + y s.t. x + y <= 10; x >= 3; y >= 4 -> obj 10.
  LinearProgram p(2);
  p.objective = {1, 1};
  p.add_le({1, 1}, 10);
  p.add_ge({1, 0}, 3);
  p.add_ge({0, 1}, 4);
  const Solution s = solve(p);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.objective, 10, 1e-7);
  EXPECT_GE(s.x[0], 3 - 1e-7);
  EXPECT_GE(s.x[1], 4 - 1e-7);
}

TEST(Simplex, EqualityConstraint) {
  // max 2x + y s.t. x + y = 5; x <= 3 -> x=3, y=2, obj 8.
  LinearProgram p(2);
  p.objective = {2, 1};
  p.add_eq({1, 1}, 5);
  p.add_le({1, 0}, 3);
  const Solution s = solve(p);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.objective, 8, 1e-7);
  EXPECT_NEAR(s.x[0], 3, 1e-7);
  EXPECT_NEAR(s.x[1], 2, 1e-7);
}

TEST(Simplex, DetectsInfeasibility) {
  LinearProgram p(1);
  p.objective = {1};
  p.add_le({1}, 2);
  p.add_ge({1}, 5);
  EXPECT_EQ(solve(p).status, SolveStatus::kInfeasible);
}

TEST(Simplex, DetectsUnboundedness) {
  LinearProgram p(2);
  p.objective = {1, 1};
  p.add_ge({1, 0}, 1);  // nothing bounds growth
  EXPECT_EQ(solve(p).status, SolveStatus::kUnbounded);
}

TEST(Simplex, NegativeRhsIsNormalized) {
  // -x <= -3 is x >= 3.
  LinearProgram p(1);
  p.objective = {-1};  // minimize x
  p.add_le({-1}, -3);
  const Solution s = solve(p);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.x[0], 3, 1e-7);
}

TEST(Simplex, ZeroObjectiveIsAFeasibilityCheck) {
  LinearProgram p(2);
  p.add_ge({1, 1}, 1);
  p.add_le({1, 1}, 3);
  const Solution s = solve(p);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.objective, 0, 1e-9);
}

TEST(Simplex, RedundantConstraintsAreHarmless) {
  LinearProgram p(1);
  p.objective = {1};
  p.add_le({1}, 5);
  p.add_le({1}, 5);
  p.add_le({2}, 10);
  p.add_eq({0}, 0);  // 0 = 0, fully redundant row
  const Solution s = solve(p);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.objective, 5, 1e-7);
}

TEST(Simplex, DegenerateVertexTerminates) {
  // Classic degeneracy: multiple constraints meet at the optimum.
  LinearProgram p(2);
  p.objective = {1, 1};
  p.add_le({1, 0}, 1);
  p.add_le({0, 1}, 1);
  p.add_le({1, 1}, 2);
  p.add_le({2, 2}, 4);
  const Solution s = solve(p);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.objective, 2, 1e-7);
}

TEST(Simplex, RejectsNonFiniteInput) {
  LinearProgram p(1);
  p.objective = {std::numeric_limits<double>::infinity()};
  p.add_le({1}, 1);
  EXPECT_THROW(solve(p), std::invalid_argument);

  LinearProgram q(1);
  q.objective = {1};
  q.add_le({std::numeric_limits<double>::quiet_NaN()}, 1);
  EXPECT_THROW(solve(q), std::invalid_argument);
}

TEST(Simplex, ShortCoefficientVectorsArePadded) {
  LinearProgram p(3);
  p.objective = {0, 0, 1};
  p.add_le({}, 5);     // 0 <= 5
  p.add_le({0, 0, 1}, 2);
  const Solution s = solve(p);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.objective, 2, 1e-7);
}

TEST(Simplex, TooManyCoefficientsThrow) {
  LinearProgram p(1);
  EXPECT_THROW(p.add_le({1, 2}, 1), std::invalid_argument);
}

// --- Property sweep vs brute force -------------------------------------------
//
// For random 2-variable LPs with <= constraints, the optimum (if one exists)
// lies at a vertex of the feasible polygon. Enumerate all constraint-pair
// intersections (+ axis intersections + origin), filter feasible points, and
// compare the best vertex value to the simplex result.

struct Random2D {
  LinearProgram lp{2};
};

class SimplexVsBruteForce : public ::testing::TestWithParam<int> {};

TEST_P(SimplexVsBruteForce, MatchesVertexEnumeration) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 977 + 13);
  LinearProgram p(2);
  p.objective = {rng.uniform_real(-5, 5), rng.uniform_real(-5, 5)};
  const int m = static_cast<int>(rng.uniform_int(2, 6));
  for (int i = 0; i < m; ++i) {
    // Positive-leaning rows keep the feasible set bounded often enough.
    p.add_le({rng.uniform_real(0.1, 4), rng.uniform_real(0.1, 4)},
             rng.uniform_real(1, 20));
  }

  const Solution s = solve(p);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);  // bounded: all-positive rows

  // Brute force over candidate vertices.
  std::vector<std::pair<double, double>> pts{{0, 0}};
  auto add_line_intersections = [&](double a1, double b1, double c1, double a2,
                                    double b2, double c2) {
    const double det = a1 * b2 - a2 * b1;
    if (std::abs(det) < 1e-12) return;
    pts.emplace_back((c1 * b2 - c2 * b1) / det, (a1 * c2 - a2 * c1) / det);
  };
  for (std::size_t i = 0; i < p.constraints.size(); ++i) {
    const auto& ci = p.constraints[i];
    // Intersections with the axes.
    if (std::abs(ci.coeffs[0]) > 1e-12) pts.emplace_back(ci.rhs / ci.coeffs[0], 0);
    if (std::abs(ci.coeffs[1]) > 1e-12) pts.emplace_back(0, ci.rhs / ci.coeffs[1]);
    for (std::size_t j = i + 1; j < p.constraints.size(); ++j) {
      const auto& cj = p.constraints[j];
      add_line_intersections(ci.coeffs[0], ci.coeffs[1], ci.rhs, cj.coeffs[0],
                             cj.coeffs[1], cj.rhs);
    }
  }
  double best = -std::numeric_limits<double>::infinity();
  for (const auto& [x, y] : pts) {
    if (x < -1e-9 || y < -1e-9) continue;
    bool ok = true;
    for (const auto& c : p.constraints) {
      if (c.coeffs[0] * x + c.coeffs[1] * y > c.rhs + 1e-7) {
        ok = false;
        break;
      }
    }
    if (ok) best = std::max(best, p.objective[0] * x + p.objective[1] * y);
  }
  EXPECT_NEAR(s.objective, best, 1e-5);
}

INSTANTIATE_TEST_SUITE_P(RandomLps, SimplexVsBruteForce, ::testing::Range(0, 40));

}  // namespace
}  // namespace compsynth::te::lp
