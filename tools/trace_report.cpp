// trace_report — renders a compsynth JSONL trace as a Markdown run report.
//
// Usage:
//   trace_report <trace.jsonl> [-o report.md]
//
// Reads a trace produced by `compsynth_cli --trace` or a bench run with
// COMPSYNTH_TRACE set (schema: docs/OBSERVABILITY.md), groups events by run
// id, and emits one report section per run: headline summary, solver-time
// breakdown by component, oracle answer tallies, and the per-iteration
// survivor/solver-time curve.
//
// Exit status: 0 on success (even if some lines were unparseable — they are
// counted and reported), 1 on usage or I/O errors, 2 when the file contains
// no parseable trace events at all.
#include <algorithm>
#include <cmath>
#include <fstream>
#include <iostream>
#include <map>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "obs/trace.h"

namespace {

using compsynth::obs::JsonObject;
using compsynth::obs::JsonValue;

double num_or(const JsonObject& obj, const std::string& key, double fallback) {
  const auto it = obj.find(key);
  if (it == obj.end() || it->second.kind != JsonValue::Kind::kNumber) {
    return fallback;
  }
  return it->second.num;
}

std::string str_or(const JsonObject& obj, const std::string& key,
                   const std::string& fallback) {
  const auto it = obj.find(key);
  if (it == obj.end() || it->second.kind != JsonValue::Kind::kString) {
    return fallback;
  }
  return it->second.str;
}

std::string fmt(double v, int digits = 3) {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(digits);
  os << v;
  return os.str();
}

std::string fmt_int(double v) {
  std::ostringstream os;
  os << static_cast<long long>(std::llround(v));
  return os.str();
}

/// Per-iteration row reconstructed from "iteration" events, decorated with
/// the survivor count of the grid_sync that preceded it (when present).
struct IterationRow {
  long long index = 0;
  double secs = 0;
  std::string status;
  long long pairs = 0;
  long long edges_added = 0;
  long long ties_added = 0;
  std::optional<long long> survivors;
};

/// Everything reconstructed for one run id.
struct RunReport {
  std::string id;
  std::optional<JsonObject> start;
  std::optional<JsonObject> end;
  std::vector<IterationRow> iterations;
  // Solver-time breakdown: component -> (count, total seconds).
  std::map<std::string, std::pair<long long, double>> components;
  // Oracle answers: "compare/first", "compare/tie", "rank", ... -> count.
  std::map<std::string, long long> oracle;
  long long pref_edges = 0;
  long long pref_cycles = 0;
  // Survivor count of the most recent grid_sync, attached to the next
  // iteration event (the sync happens inside that iteration's solver call).
  std::optional<long long> pending_survivors;
  // Static-analysis events: the synthesizer's lint summary (kind=lint) and
  // accumulated GridFinder pruning totals (kind=prune).
  std::optional<JsonObject> lint;
  // Solver-acceleration events (docs/SOLVER.md): cache traffic, interval
  // pre-check discharges, incremental encoding reuse, portfolio race wins.
  long long cache_hits = 0;
  long long cache_misses = 0;
  long long cache_stores = 0;
  long long precheck_hits = 0;
  long long incremental_reuses = 0;
  long long incremental_builds = 0;
  long long portfolio_races = 0;
  long long portfolio_grid_wins = 0;
  long long portfolio_z3_wins = 0;
  long long prune_events = 0;
  long long pruned_regions = 0;
  long long pruned_candidates = 0;
  long long degenerate_dims = 0;
  // Batched lane evaluator (schema rev 1.5): grid_sync's selected lane ISA
  // ("scalar" / "avx2") -> sync count, plus the reported lane width.
  std::map<std::string, long long> lane_isas;
  long long lane_width = 0;
  // Service events (schema rev 1.4): verb -> (count, errors, total seconds)
  // from serve_request, plus session swap / rehydrate tallies.
  std::map<std::string, std::tuple<long long, long long, double>> serve;
  long long swaps = 0;
  long long rehydrations = 0;
  long long replayed_answers = 0;
  // Event kinds this report does not understand (a newer producer's schema
  // revision): tallied and rendered rather than silently dropped.
  std::map<std::string, long long> unknown;
  long long events = 0;
};

void absorb(RunReport& run, const JsonObject& obj, const std::string& ev) {
  ++run.events;
  if (ev == "run_start") {
    run.start = obj;
  } else if (ev == "run_end") {
    run.end = obj;
  } else if (ev == "iteration") {
    IterationRow row;
    row.index = static_cast<long long>(num_or(obj, "index", 0));
    row.secs = num_or(obj, "secs", 0);
    row.status = str_or(obj, "status", "?");
    row.pairs = static_cast<long long>(num_or(obj, "pairs_presented", 0));
    row.edges_added = static_cast<long long>(num_or(obj, "edges_added", 0));
    row.ties_added = static_cast<long long>(num_or(obj, "ties_added", 0));
    row.survivors = run.pending_survivors;
    run.pending_survivors.reset();
    run.iterations.push_back(row);
  } else if (ev == "grid_sync" || ev == "pair_search" || ev == "z3_query") {
    auto& [count, secs] = run.components[ev];
    ++count;
    secs += num_or(obj, "secs", 0);
    if (ev == "grid_sync") {
      run.pending_survivors =
          static_cast<long long>(num_or(obj, "survivors", 0));
      const std::string isa = str_or(obj, "lane_isa", "");
      if (!isa.empty()) {
        ++run.lane_isas[isa];
        run.lane_width = std::max(
            run.lane_width, static_cast<long long>(num_or(obj, "lane_width", 0)));
      }
    }
  } else if (ev == "analysis") {
    const std::string kind = str_or(obj, "kind", "?");
    if (kind == "lint") {
      run.lint = obj;
    } else if (kind == "prune") {
      auto& [count, secs] = run.components["analysis"];
      ++count;
      secs += num_or(obj, "secs", 0);
      ++run.prune_events;
      run.pruned_regions +=
          static_cast<long long>(num_or(obj, "pruned_regions", 0));
      run.pruned_candidates +=
          static_cast<long long>(num_or(obj, "pruned_candidates", 0));
      run.degenerate_dims = std::max(
          run.degenerate_dims,
          static_cast<long long>(num_or(obj, "degenerate_dims", 0)));
    }
  } else if (ev == "solver_cache") {
    const std::string op = str_or(obj, "op", "?");
    if (op == "hit") ++run.cache_hits;
    if (op == "miss") ++run.cache_misses;
    if (op == "store") ++run.cache_stores;
  } else if (ev == "interval_precheck") {
    ++run.precheck_hits;
  } else if (ev == "z3_incremental") {
    if (str_or(obj, "op", "?") == "reuse") {
      ++run.incremental_reuses;
    } else {
      ++run.incremental_builds;
    }
  } else if (ev == "portfolio") {
    ++run.portfolio_races;
    const std::string winner = str_or(obj, "winner", "?");
    if (winner == "grid") ++run.portfolio_grid_wins;
    if (winner == "z3") ++run.portfolio_z3_wins;
    auto& [count, secs] = run.components["portfolio"];
    ++count;
    secs += num_or(obj, "secs", 0);
  } else if (ev == "oracle_query") {
    const std::string kind = str_or(obj, "kind", "?");
    std::string key = kind;
    if (kind == "compare") key += "/" + str_or(obj, "answer", "?");
    ++run.oracle[key];
  } else if (ev == "pref_edge") {
    const std::string result = str_or(obj, "result", "?");
    if (result == "added") ++run.pref_edges;
    if (result == "cycle") ++run.pref_cycles;
  } else if (ev == "serve_request") {
    auto& [count, errors, secs] = run.serve[str_or(obj, "verb", "?")];
    ++count;
    const auto ok = obj.find("ok");
    if (ok == obj.end() || ok->second.kind != JsonValue::Kind::kBool ||
        !ok->second.b) {
      ++errors;
    }
    secs += num_or(obj, "secs", 0);
  } else if (ev == "session_swap") {
    ++run.swaps;
  } else if (ev == "session_rehydrate") {
    ++run.rehydrations;
    run.replayed_answers += static_cast<long long>(num_or(obj, "replayed", 0));
  } else if (ev == "fault" || ev == "retry" || ev == "checkpoint" ||
             ev == "checkpoint_write") {
    // Known but not tabulated here; sessions' reports cover them.
  } else if (!ev.empty()) {
    // A future schema revision's event: keep the report usable, tally it.
    ++run.unknown[ev];
  }
}

void render_run(std::ostream& os, const RunReport& run) {
  os << "## Run `" << (run.id.empty() ? "(unnamed)" : run.id) << "`\n\n";

  if (run.start) {
    os << "Sketch `" << str_or(*run.start, "sketch", "?") << "`, seed "
       << fmt_int(num_or(*run.start, "seed", 0)) << ", "
       << fmt_int(num_or(*run.start, "initial_scenarios", 0))
       << " initial scenarios, "
       << fmt_int(num_or(*run.start, "pairs_per_iteration", 0))
       << " pair(s)/iteration.\n\n";
  }

  os << "| metric | value |\n|---|---|\n";
  if (run.end) {
    os << "| status | " << str_or(*run.end, "status", "?") << " |\n"
       << "| iterations | " << fmt_int(num_or(*run.end, "iterations", 0))
       << " |\n"
       << "| user interactions | "
       << fmt_int(num_or(*run.end, "interactions", 0)) << " |\n"
       << "| oracle comparisons | "
       << fmt_int(num_or(*run.end, "oracle_comparisons", 0)) << " |\n"
       << "| total solver time (s) | "
       << fmt(num_or(*run.end, "total_solver_seconds", 0), 4) << " |\n";
  } else {
    os << "| status | (no run_end event — truncated trace?) |\n";
  }
  os << "| preference edges added | " << run.pref_edges << " |\n";
  if (run.pref_cycles > 0) {
    os << "| contradictions rejected | " << run.pref_cycles << " |\n";
  }
  os << "| trace events | " << run.events << " |\n\n";

  if (run.lint) {
    os << "Static analysis: ";
    const long long diags =
        static_cast<long long>(num_or(*run.lint, "diagnostics", 0));
    os << diags << " diagnostic(s) ("
       << fmt_int(num_or(*run.lint, "errors", 0)) << " error(s), "
       << fmt_int(num_or(*run.lint, "warnings", 0)) << " warning(s))";
    const double lo = num_or(*run.lint, "out_lo", std::nan(""));
    const double hi = num_or(*run.lint, "out_hi", std::nan(""));
    if (std::isfinite(lo) && std::isfinite(hi)) {
      os << ", output in [" << fmt(lo, 3) << ", " << fmt(hi, 3) << "]";
    }
    os << ".\n\n";
  }
  if (run.prune_events > 0) {
    os << "Analysis pruning: " << run.pruned_candidates
       << " candidate(s) skipped across " << run.pruned_regions
       << " refuted region(s), " << run.degenerate_dims
       << " degenerate dim(s), over " << run.prune_events
       << " rebuild(s).\n\n";
  }
  if (!run.lane_isas.empty()) {
    os << "Batched evaluator: ";
    bool first = true;
    for (const auto& [isa, count] : run.lane_isas) {
      if (!first) os << ", ";
      first = false;
      os << count << " sync(s) on " << isa;
    }
    if (run.lane_width > 0) os << ", " << run.lane_width << " lanes";
    os << " (docs/EVALUATOR.md).\n\n";
  }

  // Solver acceleration: only rendered when the run exercised any of it, so
  // plain grid-backend reports stay unchanged.
  if (run.cache_hits + run.cache_misses + run.precheck_hits +
          run.incremental_reuses + run.incremental_builds +
          run.portfolio_races >
      0) {
    os << "### Solver acceleration\n\n| accelerator | value |\n|---|---|\n";
    if (run.cache_hits + run.cache_misses > 0) {
      const double rate =
          100.0 * run.cache_hits / (run.cache_hits + run.cache_misses);
      os << "| cache hits / lookups | " << run.cache_hits << " / "
         << (run.cache_hits + run.cache_misses) << " (" << fmt(rate, 1)
         << "%) |\n"
         << "| cache stores | " << run.cache_stores << " |\n";
    }
    if (run.precheck_hits > 0) {
      os << "| interval pre-check discharges | " << run.precheck_hits
         << " |\n";
    }
    if (run.incremental_reuses + run.incremental_builds > 0) {
      os << "| incremental encoding reuses / builds | "
         << run.incremental_reuses << " / " << run.incremental_builds
         << " |\n";
    }
    if (run.portfolio_races > 0) {
      const double grid_rate =
          100.0 * run.portfolio_grid_wins / run.portfolio_races;
      os << "| portfolio races | " << run.portfolio_races << " |\n"
         << "| portfolio wins grid / z3 | " << run.portfolio_grid_wins
         << " / " << run.portfolio_z3_wins << " (grid " << fmt(grid_rate, 1)
         << "%) |\n";
    }
    os << "\n";
  }

  if (!run.serve.empty() || run.swaps > 0 || run.rehydrations > 0) {
    os << "### Service requests\n\n"
       << "| verb | count | errors | total s |\n|---|---|---|---|\n";
    for (const auto& [verb, row] : run.serve) {
      const auto& [count, errors, secs] = row;
      os << "| " << verb << " | " << count << " | " << errors << " | "
         << fmt(secs, 4) << " |\n";
    }
    os << "\nSessions swapped out " << run.swaps << " time(s), rehydrated "
       << run.rehydrations << " time(s) (" << run.replayed_answers
       << " answer(s) replayed).\n\n";
  }

  if (!run.unknown.empty()) {
    os << "### Unknown events\n\n"
       << "Event kinds this trace_report does not understand (newer schema "
          "revision?); counted, not dropped.\n\n"
       << "| event | count |\n|---|---|\n";
    for (const auto& [ev, count] : run.unknown) {
      os << "| " << ev << " | " << count << " |\n";
    }
    os << "\n";
  }

  if (!run.components.empty()) {
    double total = 0;
    for (const auto& [name, cs] : run.components) total += cs.second;
    os << "### Solver-time breakdown\n\n"
       << "| component | calls | total s | share |\n|---|---|---|---|\n";
    for (const auto& [name, cs] : run.components) {
      const double share = total > 0 ? 100.0 * cs.second / total : 0;
      os << "| " << name << " | " << cs.first << " | " << fmt(cs.second, 4)
         << " | " << fmt(share, 1) << "% |\n";
    }
    os << "\n";
  }

  if (!run.oracle.empty()) {
    os << "### Oracle answers\n\n| query | count |\n|---|---|\n";
    for (const auto& [key, count] : run.oracle) {
      os << "| " << key << " | " << count << " |\n";
    }
    os << "\n";
  }

  if (!run.iterations.empty()) {
    os << "### Iterations\n\n"
       << "| # | solver s | status | pairs | +edges | +ties | survivors |\n"
       << "|---|---|---|---|---|---|---|\n";
    for (const IterationRow& row : run.iterations) {
      os << "| " << row.index << " | " << fmt(row.secs, 4) << " | "
         << row.status << " | " << row.pairs << " | " << row.edges_added
         << " | " << row.ties_added << " | "
         << (row.survivors ? std::to_string(*row.survivors) : "—") << " |\n";
    }
    os << "\n";
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::string input_path;
  std::string output_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "-o" || arg == "--output") {
      if (i + 1 >= argc) {
        std::cerr << arg << " requires a value\n";
        return 1;
      }
      output_path = argv[++i];
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "usage: trace_report <trace.jsonl> [-o report.md]\n";
      return 0;
    } else if (input_path.empty()) {
      input_path = arg;
    } else {
      std::cerr << "unexpected argument '" << arg << "'\n";
      return 1;
    }
  }
  if (input_path.empty()) {
    std::cerr << "usage: trace_report <trace.jsonl> [-o report.md]\n";
    return 1;
  }

  std::ifstream in(input_path);
  if (!in) {
    std::cerr << "error: cannot open '" << input_path << "'\n";
    return 1;
  }

  // Preserve first-appearance order of runs: map for lookup, vector for order.
  std::map<std::string, std::size_t> run_index;
  std::vector<RunReport> runs;
  long long lines = 0, bad_lines = 0;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    ++lines;
    const std::optional<JsonObject> obj = compsynth::obs::parse_flat_json(line);
    if (!obj) {
      ++bad_lines;
      continue;
    }
    const std::string run_id = str_or(*obj, "run", "");
    const std::string ev = str_or(*obj, "ev", "");
    auto [it, inserted] = run_index.try_emplace(run_id, runs.size());
    if (inserted) {
      runs.emplace_back();
      runs.back().id = run_id;
    }
    absorb(runs[it->second], *obj, ev);
  }

  if (lines == bad_lines) {
    std::cerr << "error: no parseable trace events in '" << input_path << "'\n";
    return 2;
  }

  std::ostringstream report;
  report << "# Trace report: `" << input_path << "`\n\n"
         << (lines - bad_lines) << " events across " << runs.size()
         << " run(s)";
  if (bad_lines > 0) report << " (" << bad_lines << " unparseable lines)";
  report << ".\n\n";
  for (const RunReport& run : runs) render_run(report, run);

  if (output_path.empty()) {
    std::cout << report.str();
  } else {
    std::ofstream out(output_path);
    if (!out) {
      std::cerr << "error: cannot write '" << output_path << "'\n";
      return 1;
    }
    out << report.str();
    std::cout << "report written to " << output_path << "\n";
  }
  return 0;
}
