// Chunk-level HTTP adaptive-streaming simulator (paper §6.2, application 1).
//
// Standard ABR model (as in BBA / MPC / Pensieve): a video is a sequence of
// fixed-duration chunks encoded at a ladder of bitrates; before each chunk
// the ABR algorithm picks a rung using the observed download history and the
// current playback buffer. Downloading faster than playback grows the
// buffer; draining it stalls playback (rebuffering). The session summary
// feeds the QoE sketch's four metrics.
#pragma once

#include <cstddef>
#include <vector>

#include "abr/trace.h"
#include "pref/scenario.h"

namespace compsynth::abr {

/// The encoded video: `ladder_mbps` ascending bitrates.
struct Video {
  std::vector<double> ladder_mbps{0.3, 0.75, 1.2, 1.85, 2.85, 4.3};
  double chunk_seconds = 4;
  std::size_t chunk_count = 60;
};

/// What an ABR algorithm sees before choosing the next chunk's rung.
struct AbrObservation {
  double buffer_seconds = 0;
  /// Measured throughput of past downloads, most recent last (Mbps).
  std::vector<double> throughput_history_mbps;
  std::size_t next_chunk = 0;       // index of the chunk about to be fetched
  std::size_t chunks_total = 0;
  std::size_t last_rung = 0;        // rung used for the previous chunk
};

/// Pure decision function: returns the rung index for the next chunk.
class AbrAlgorithm {
 public:
  virtual ~AbrAlgorithm() = default;
  virtual std::size_t choose(const AbrObservation& obs, const Video& video) = 0;
  virtual const char* name() const = 0;
};

/// Per-session quality-of-experience summary.
struct SessionMetrics {
  double average_bitrate_mbps = 0;
  double rebuffer_ratio_percent = 0;  // stall time / (stall + play) * 100
  double switch_count = 0;            // number of rung changes
  double startup_seconds = 0;         // time to fill the initial buffer
  double total_stall_seconds = 0;
  std::vector<std::size_t> rung_choices;
};

struct SimulatorConfig {
  /// Playback starts once this much video is buffered.
  double startup_buffer_seconds = 4;
  /// Downloads pause when the buffer is full.
  double max_buffer_seconds = 30;
};

/// Runs one streaming session of `video` over `trace` driven by `algorithm`.
SessionMetrics simulate(const Video& video, const Trace& trace,
                        AbrAlgorithm& algorithm, SimulatorConfig config = {});

/// Projects session metrics onto the abr_qoe_sketch metric space
/// (bitrate, rebuffer %, switches, startup), clamped to the sketch ranges.
pref::Scenario to_scenario(const SessionMetrics& m);

}  // namespace compsynth::abr
