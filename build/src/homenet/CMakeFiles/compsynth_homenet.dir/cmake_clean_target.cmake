file(REMOVE_RECURSE
  "libcompsynth_homenet.a"
)
