// Ablation C (paper §6.1 "tractability of realizing an objective"):
// instead of optimizing an arbitrary learned objective directly, generate
// multiple designs with tractable LP objectives (an Eq. 2.1 epsilon sweep +
// a Danna fairness sweep) and let the learned objective pick among them.
//
// For a set of latent architect intents we measure (a) how often the
// objective *learned from preferences* picks the same design the latent
// intent would pick (selection agreement), and (b) how often a naive fixed
// epsilon knob would pick that design — quantifying what learning buys.
// Also reports LP allocator throughput (allocations/second) since the
// design-generation loop is the substrate cost.
#include <benchmark/benchmark.h>

#include <iostream>

#include "bench_common.h"
#include "oracle/ground_truth.h"
#include "sketch/eval.h"
#include "sketch/library.h"
#include "te/scenario_gen.h"
#include "util/rng.h"

namespace compsynth::bench {
namespace {

struct Intent {
  const char* name;
  double tp, l, s1, s2;  // latent SWAN-sketch target
};

constexpr Intent kIntents[] = {
    {"throughput-first", 0, 200, 0, 0},
    {"latency-strict", 1, 25, 1, 5},
    {"balanced (Fig 2b)", 1, 50, 1, 5},
    {"bonus-hunter", 4, 60, 2, 2},
};

struct TeWorld {
  te::Topology topo = te::abilene();
  std::vector<te::FlowRequest> requests;
  std::vector<te::CandidateDesign> designs;

  TeWorld() {
    util::Rng rng(2027);
    requests = te::random_workload(topo, rng, 10, 1, 6);
    const std::vector<double> eps{0, 0.002, 0.005, 0.01, 0.02, 0.04, 0.08};
    designs = te::sweep_epsilon(topo, requests, eps);
    const std::vector<double> qs{0.25, 0.5, 0.75, 1.0};
    auto fair = te::sweep_fairness(topo, requests, qs);
    designs.insert(designs.end(), fair.begin(), fair.end());
  }
};

int agreement_count = 0;
int naive_agreement_count = 0;
int intent_count = 0;
std::vector<std::string> selection_log;

void BM_SelectionAgreement(benchmark::State& state) {
  const Intent& intent = kIntents[state.range(0)];
  static TeWorld world;  // shared across configurations

  for (auto _ : state) {
    const auto& sk = sketch::swan_sketch();
    const auto latent = sketch::swan_target_with(intent.tp, intent.l, intent.s1,
                                                 intent.s2);

    // Learn the objective from preference queries only.
    synth::SynthesisConfig config;
    config.seed = 3100 + static_cast<std::uint64_t>(state.range(0));
    synth::Synthesizer synthesizer = synth::make_grid_synthesizer(sk, config);
    oracle::GroundTruthOracle architect(sk, latent, config.finder.tie_tolerance);
    const synth::SynthesisResult learned = synthesizer.run(architect);
    state.SetIterationTime(learned.total_solver_seconds);

    const std::size_t true_pick = te::pick_best(sk, latent, world.designs);
    const std::size_t learned_pick =
        learned.objective ? te::pick_best(sk, *learned.objective, world.designs)
                          : static_cast<std::size_t>(-1);
    // Naive alternative: always run SWAN with a fixed mid-range epsilon.
    const std::size_t naive_pick = 3;  // eps = 0.01 in the sweep above

    ++intent_count;
    const bool agree =
        learned_pick != static_cast<std::size_t>(-1) &&
        world.designs[learned_pick].scenario == world.designs[true_pick].scenario;
    if (agree) ++agreement_count;
    if (world.designs[naive_pick].scenario == world.designs[true_pick].scenario) {
      ++naive_agreement_count;
    }
    selection_log.push_back(
        std::string(intent.name) + ": latent picks '" +
        world.designs[true_pick].label + "', learned picks '" +
        (learned_pick == static_cast<std::size_t>(-1)
             ? "<none>"
             : world.designs[learned_pick].label) +
        "', fixed-eps picks '" + world.designs[naive_pick].label + "'" +
        (agree ? " [match]" : " [MISMATCH]"));
  }
}
BENCHMARK(BM_SelectionAgreement)->DenseRange(0, 3)->Iterations(1)
    ->UseManualTime()->Unit(benchmark::kSecond);

// Raw substrate throughput: how fast the LP allocator produces designs.
void BM_AllocatorThroughput(benchmark::State& state) {
  static TeWorld world;
  double eps = 0;
  for (auto _ : state) {
    const te::Allocation a = te::swan_allocation(world.topo, world.requests, eps);
    benchmark::DoNotOptimize(a.total_throughput_gbps);
    eps = eps >= 0.04 ? 0 : eps + 0.005;  // vary the LP between iterations
  }
}
BENCHMARK(BM_AllocatorThroughput)->Unit(benchmark::kMillisecond);

void BM_MaxMinThroughput(benchmark::State& state) {
  static TeWorld world;
  for (auto _ : state) {
    const te::Allocation a = te::max_min_fair(world.topo, world.requests);
    benchmark::DoNotOptimize(a.total_throughput_gbps);
  }
}
BENCHMARK(BM_MaxMinThroughput)->Unit(benchmark::kMillisecond);

void print_te() {
  std::cout << "\n=== Ablation C: pick-from-k-designs with a learned objective ===\n";
  for (const std::string& line : selection_log) std::cout << "  " << line << '\n';
  std::cout << "learned-objective selection agreement: " << agreement_count << "/"
            << intent_count << "\n"
            << "fixed epsilon=0.01 knob agreement:     " << naive_agreement_count
            << "/" << intent_count << "\n"
            << "(Learning the objective recovers each architect's preferred\n"
            << " design; a single fixed knob cannot serve all intents.)\n";
}

}  // namespace
}  // namespace compsynth::bench

COMPSYNTH_BENCH_MAIN(compsynth::bench::print_te)
