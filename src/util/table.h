// ASCII table and CSV rendering for experiment output.
//
// Every bench binary prints its results in the same row/column layout as the
// paper's tables and figure series, using this helper.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace compsynth::util {

/// A rectangular text table with a header row, rendered with aligned columns.
///
/// Usage:
///   Table t({"Metrics", "Average", "Median", "SIQR"});
///   t.add_row({"# Iterations", "31.33", "30", "4.25"});
///   std::cout << t.to_string();
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Appends one row; pads or truncates to the header width.
  void add_row(std::vector<std::string> cells);

  /// Convenience: formats doubles with the given precision before appending.
  void add_row_numeric(const std::string& label,
                       const std::vector<double>& values, int precision = 2);

  std::size_t row_count() const { return rows_.size(); }

  /// Renders with box-drawing separators and right-aligned numeric cells.
  std::string to_string() const;

  /// Renders as RFC-4180-ish CSV (cells containing commas/quotes are quoted).
  std::string to_csv() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with fixed precision, trimming to integers when exact
/// (e.g. 30.00 -> "30", 4.25 -> "4.25"), matching the paper's table style.
std::string format_number(double v, int precision = 2);

}  // namespace compsynth::util
