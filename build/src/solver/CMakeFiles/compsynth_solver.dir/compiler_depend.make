# Empty compiler generated dependencies file for compsynth_solver.
# This may be replaced when dependencies are built.
