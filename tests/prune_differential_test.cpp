// Differential tests for GridFinder's analysis-driven version-space pruning
// (GridFinderConfig::analysis_pruning): with pruning on, the rebuilt
// survivor sequence — assignments, hole values and memoized vertex values —
// must be exactly what the exhaustive scan produces, and full synthesis
// runs must follow identical trajectories. This is the contract that makes
// the pruning a pure speed knob.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "obs/metrics.h"
#include "obs/run_context.h"
#include "oracle/ground_truth.h"
#include "pref/graph.h"
#include "sketch/eval.h"
#include "sketch/library.h"
#include "sketch/parser.h"
#include "solver/grid_finder.h"
#include "synth/synthesizer.h"
#include "util/rng.h"

namespace compsynth::solver {
namespace {

// Exact survivor-sequence equality. vertex_values entries may be NaN
// (= not yet memoized); both sides must agree on that too.
void expect_identical(const std::vector<Survivor>& pruned,
                      const std::vector<Survivor>& plain) {
  ASSERT_EQ(pruned.size(), plain.size());
  for (std::size_t i = 0; i < pruned.size(); ++i) {
    const Survivor& a = pruned[i];
    const Survivor& b = plain[i];
    ASSERT_EQ(a.assignment, b.assignment) << "survivor " << i;
    ASSERT_EQ(a.hole_values, b.hole_values) << "survivor " << i;
    ASSERT_EQ(a.vertex_values.size(), b.vertex_values.size()) << i;
    for (std::size_t v = 0; v < a.vertex_values.size(); ++v) {
      const double x = a.vertex_values[v];
      const double y = b.vertex_values[v];
      ASSERT_TRUE((std::isnan(x) && std::isnan(y)) || x == y)
          << "survivor " << i << " vertex " << v << ": " << x << " vs " << y;
    }
  }
}

// A preference graph a ground-truth user would produce: random scenarios in
// the sketch's metric box, pairwise-ranked by the target assignment.
pref::PreferenceGraph ground_truth_graph(const sketch::Sketch& sk,
                                         const sketch::HoleAssignment& target,
                                         int scenarios, std::uint64_t seed,
                                         double tie_tolerance) {
  util::Rng rng(seed);
  const std::vector<double> target_values = sk.hole_values(target);
  pref::PreferenceGraph graph;
  std::vector<pref::VertexId> ids;
  std::vector<double> scores;
  for (int i = 0; i < scenarios; ++i) {
    pref::Scenario s;
    for (const auto& m : sk.metrics()) {
      s.metrics.push_back(rng.uniform_real(m.lo, m.hi));
    }
    ids.push_back(graph.intern(s));
    scores.push_back(sketch::eval_with_values(sk, target_values, s.metrics));
  }
  for (std::size_t i = 0; i < ids.size(); ++i) {
    for (std::size_t j = i + 1; j < ids.size(); ++j) {
      if (std::abs(scores[i] - scores[j]) <= tie_tolerance) {
        graph.add_tie(ids[i], ids[j]);
      } else if (scores[i] > scores[j]) {
        graph.add_preference(ids[i], ids[j]);
      } else {
        graph.add_preference(ids[j], ids[i]);
      }
    }
  }
  return graph;
}

GridFinderConfig config_with_pruning(bool pruning) {
  GridFinderConfig c;
  // Pruning applies to the scalar backends only (the kBatch default always
  // runs the sharded exhaustive scan), so pin kCompiled to keep the on/off
  // comparison meaningful.
  c.eval_backend = EvalBackend::kCompiled;
  c.analysis_pruning = pruning;
  c.threads = 1;  // determinism is required either way; keep the test lean
  return c;
}

sketch::HoleAssignment middle_assignment(const sketch::Sketch& sk) {
  sketch::HoleAssignment a;
  for (const auto& h : sk.holes()) a.index.push_back(h.count / 2);
  return a;
}

void expect_differential(const sketch::Sketch& sk,
                         const sketch::HoleAssignment& target,
                         int scenarios, std::uint64_t seed) {
  constexpr double kTieTol = 1e-4;
  pref::PreferenceGraph graph =
      ground_truth_graph(sk, target, scenarios, seed, kTieTol);

  GridFinder pruned(sk, config_with_pruning(true));
  GridFinder plain(sk, config_with_pruning(false));
  pruned.sync(graph);
  plain.sync(graph);
  expect_identical(pruned.survivors(), plain.survivors());

  // The batch lane engine (which ignores the pruning flag and always runs
  // the sharded exhaustive scan) must land on the identical sequence —
  // assignments, hole values AND memoized vertex values.
  GridFinderConfig batch_config = config_with_pruning(true);
  batch_config.eval_backend = EvalBackend::kBatch;
  GridFinder batched(sk, batch_config);
  batched.sync(graph);
  expect_identical(batched.survivors(), plain.survivors());

  // Same again after growing the graph (incremental filter path) and after
  // a fresh full rebuild against the richer graph.
  pref::PreferenceGraph bigger =
      ground_truth_graph(sk, target, scenarios + 4, seed ^ 0x9e37, kTieTol);
  GridFinder pruned2(sk, config_with_pruning(true));
  GridFinder plain2(sk, config_with_pruning(false));
  pruned2.sync(bigger);
  plain2.sync(bigger);
  expect_identical(pruned2.survivors(), plain2.survivors());
  GridFinder batched2(sk, batch_config);
  batched2.sync(bigger);
  expect_identical(batched2.survivors(), plain2.survivors());
}

TEST(PruneDifferential, Swan) {
  expect_differential(sketch::swan_sketch(), sketch::swan_target(), 7, 11);
}

TEST(PruneDifferential, SwanForm) {
  expect_differential(sketch::swan_form_sketch(),
                      sketch::swan_form_target(1, 2, 100), 7, 12);
}

TEST(PruneDifferential, AbrQoe) {
  const auto& sk = sketch::abr_qoe_sketch();
  expect_differential(sk, middle_assignment(sk), 6, 13);
}

TEST(PruneDifferential, Homenet) {
  const auto& sk = sketch::homenet_sketch();
  expect_differential(sk, middle_assignment(sk), 6, 14);
}

TEST(PruneDifferential, UnusedHoleReplication) {
  // `ghost` is never read: the pruned rebuild pins the dimension, evaluates
  // one slice and replicates it. The result must still match the exhaustive
  // scan candidate for candidate.
  const sketch::Sketch sk = sketch::parse_sketch(R"(
    sketch replicated(x in [0, 10], y in [0, 10]) {
      hole a in grid(0, 1, 6);
      hole ghost in grid(0, 2, 7);
      hole b in grid(0, 1, 5);
      x - a*y + b
    })");
  sketch::HoleAssignment target;
  target.index = {2, 3, 1};
  expect_differential(sk, target, 6, 15);

  // With an empty graph there is nothing to refute, but the replication
  // path still runs; the full candidate space must come back in order.
  pref::PreferenceGraph empty;
  GridFinder pruned(sk, config_with_pruning(true));
  GridFinder plain(sk, config_with_pruning(false));
  pruned.sync(empty);
  plain.sync(empty);
  ASSERT_EQ(plain.version_space_size(),
            static_cast<std::size_t>(sk.candidate_space_size()));
  expect_identical(pruned.survivors(), plain.survivors());
}

TEST(PruneDifferential, PruningActuallyPrunes) {
  // Guard against the pruned path silently degenerating into the fallback:
  // on a well-constrained swan graph the analysis must discard regions.
  obs::MetricsRegistry metrics;
  obs::RunContext ctx;
  ctx.metrics = &metrics;

  GridFinder pruned(sketch::swan_sketch(), config_with_pruning(true));
  pruned.set_run_context(&ctx);
  pref::PreferenceGraph graph = ground_truth_graph(
      sketch::swan_sketch(), sketch::swan_target(), 9, 21, 1e-4);
  pruned.sync(graph);

  EXPECT_GT(metrics.counter("analysis.pruned_regions").value(), 0);
  EXPECT_GT(metrics.counter("analysis.pruned_candidates").value(), 0);

  // And the pruned result still matches the exhaustive scan.
  GridFinder plain(sketch::swan_sketch(), config_with_pruning(false));
  plain.sync(graph);
  expect_identical(pruned.survivors(), plain.survivors());
}

// Full synthesis runs must be trajectory-identical: same status, same
// learned objective, same iteration/interaction counts, same per-iteration
// edge/tie accounting.
void expect_synthesis_identical(const sketch::Sketch& sk,
                                const sketch::HoleAssignment& target,
                                std::uint64_t seed) {
  synth::SynthesisConfig config;
  config.seed = seed;
  config.grid_threads = 1;
  // The pruning knob only matters on the scalar backends; under the kBatch
  // default both runs would take the identical always-exhaustive path.
  config.grid_eval_backend = solver::EvalBackend::kCompiled;

  auto run = [&](bool pruning) {
    synth::SynthesisConfig c = config;
    c.grid_analysis_pruning = pruning;
    synth::Synthesizer s = synth::make_grid_synthesizer(sk, c);
    oracle::GroundTruthOracle user(sk, target, c.finder.tie_tolerance);
    return s.run(user);
  };

  const synth::SynthesisResult on = run(true);
  const synth::SynthesisResult off = run(false);
  EXPECT_EQ(on.status, off.status);
  ASSERT_EQ(on.objective.has_value(), off.objective.has_value());
  if (on.objective) {
    EXPECT_EQ(*on.objective, *off.objective);
  }
  EXPECT_EQ(on.iterations, off.iterations);
  EXPECT_EQ(on.interactions, off.interactions);
  EXPECT_EQ(on.oracle_comparisons, off.oracle_comparisons);
  ASSERT_EQ(on.transcript.size(), off.transcript.size());
  for (std::size_t i = 0; i < on.transcript.size(); ++i) {
    EXPECT_EQ(on.transcript[i].pairs_presented, off.transcript[i].pairs_presented);
    EXPECT_EQ(on.transcript[i].edges_added, off.transcript[i].edges_added);
    EXPECT_EQ(on.transcript[i].ties_added, off.transcript[i].ties_added);
  }
}

TEST(PruneDifferential, SynthesisTrajectorySwan) {
  expect_synthesis_identical(sketch::swan_sketch(), sketch::swan_target(), 5);
}

TEST(PruneDifferential, SynthesisTrajectoryAbr) {
  const auto& sk = sketch::abr_qoe_sketch();
  expect_synthesis_identical(sk, middle_assignment(sk), 6);
}

TEST(PruneDifferential, SynthesisTrajectoryHomenet) {
  const auto& sk = sketch::homenet_sketch();
  expect_synthesis_identical(sk, middle_assignment(sk), 7);
}

}  // namespace
}  // namespace compsynth::solver
