// Fault injection and retry policies for durable synthesis sessions.
//
// A production deployment of the interaction loop must ride out flaky
// dependencies: an oracle (a human at a browser, or a remote service) that
// times out, a Z3 backend that fails or stalls under memory pressure, a
// checkpoint write torn by a crash. FaultPlan describes a probabilistic
// fault model; FaultInjector turns it into deterministic, seeded fault
// decisions that test harnesses (tests/fault_test.cpp, the
// tools/compsynth_session CLI's --fault-* flags) thread through the oracle,
// the Z3 finder and the checkpoint writer. RetryPolicy is the matching
// recovery knob: bounded retries with exponential backoff, shared by
// oracle::Oracle and solver::Z3Finder.
//
// The injector is seeded and serializable (save_state/restore_state), so a
// checkpoint-kill-resume run under injected faults replays the identical
// fault sequence — the differential resume tests rely on this.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

#include "util/rng.h"
#include "util/sync.h"
#include "util/thread_annotations.h"

namespace compsynth::util {

/// Probabilistic fault model. All probabilities are per *attempt* (a retried
/// query rolls the dice again), default 0 = that fault never fires.
struct FaultPlan {
  /// Probability that an oracle query times out (oracle::OracleTimeout).
  double oracle_timeout_p = 0;
  /// Probability that an oracle query is slowed by `oracle_slowdown_s`.
  double oracle_slowdown_p = 0;
  double oracle_slowdown_s = 0.001;

  /// Probability that a Z3 check fails transiently (treated like a thrown
  /// z3::exception: retried with backoff, `unknown` after the last attempt).
  double z3_failure_p = 0;
  /// Probability that a Z3 check is slowed by `z3_slowdown_s`.
  double z3_slowdown_p = 0;
  double z3_slowdown_s = 0.001;

  /// Probability that a checkpoint write is torn: a truncated snapshot is
  /// left at the *final* path, simulating a crash mid-write on a filesystem
  /// without the atomic rename protocol (docs/PERSISTENCE.md §Recovery).
  double torn_write_p = 0;

  /// Worker-side faults for the distributed shard path (dist/worker.h,
  /// docs/DISTRIBUTED.md §Failure model). Probability that a worker drops
  /// the connection mid-response, leaving the coordinator a torn line.
  double worker_drop_p = 0;
  /// Probability that a worker stalls `worker_stall_s` before answering a
  /// shard request — long enough to trip the coordinator's shard deadline.
  double worker_stall_p = 0;
  double worker_stall_s = 0.05;
  /// Probability that a worker returns a truncated survivor blob (valid
  /// JSON, matching CRC, bitmap cut mid-record).
  double worker_truncate_p = 0;
  /// Probability that a worker crashes right after acking a shard — the
  /// result lands, then every other in-flight shard on that worker orphans.
  double worker_crash_after_ack_p = 0;

  /// Seed for the injector's private decision stream.
  std::uint64_t seed = 0xFA017;

  /// True when any fault can fire.
  bool any() const {
    return oracle_timeout_p > 0 || oracle_slowdown_p > 0 || z3_failure_p > 0 ||
           z3_slowdown_p > 0 || torn_write_p > 0 || worker_drop_p > 0 ||
           worker_stall_p > 0 || worker_truncate_p > 0 ||
           worker_crash_after_ack_p > 0;
  }
};

/// Deterministic fault oracle: one seeded decision stream shared by every
/// injection site. Thread-safe (sites may sit on pool-adjacent paths).
class FaultInjector {
 public:
  explicit FaultInjector(FaultPlan plan) : plan_(plan), rng_(plan.seed) {}

  const FaultPlan& plan() const { return plan_; }

  /// Each call draws from the decision stream; true = inject the fault.
  bool oracle_timeout() { return roll(plan_.oracle_timeout_p); }
  bool oracle_slowdown() { return roll(plan_.oracle_slowdown_p); }
  bool z3_failure() { return roll(plan_.z3_failure_p); }
  bool z3_slowdown() { return roll(plan_.z3_slowdown_p); }
  bool torn_write() { return roll(plan_.torn_write_p); }
  bool worker_drop() { return roll(plan_.worker_drop_p); }
  bool worker_stall() { return roll(plan_.worker_stall_p); }
  bool worker_truncate() { return roll(plan_.worker_truncate_p); }
  bool worker_crash_after_ack() { return roll(plan_.worker_crash_after_ack_p); }

  /// Total faults injected so far (all sites).
  long injected() const EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return injected_;
  }

  /// Decision-stream persistence, so a resumed session replays the same
  /// fault sequence (format: "faults <injected>\n<rng state>\n").
  std::string save_state() const EXCLUDES(mu_);
  void restore_state(const std::string& state) EXCLUDES(mu_);

 private:
  bool roll(double p) EXCLUDES(mu_) {
    if (p <= 0) return false;
    MutexLock lock(mu_);
    const bool fire = rng_.bernoulli(p);
    if (fire) ++injected_;
    return fire;
  }

  mutable Mutex mu_;
  FaultPlan plan_;  // immutable after construction
  Rng rng_ GUARDED_BY(mu_);
  long injected_ GUARDED_BY(mu_) = 0;
};

/// Bounded retry with exponential backoff. A policy with max_attempts == 1
/// disables retrying entirely (the first failure is final).
struct RetryPolicy {
  /// Attempts per logical query, including the first (must be >= 1).
  int max_attempts = 3;
  /// Sleep before the second attempt; doubles (by `backoff_multiplier`) per
  /// further attempt, capped at `max_backoff_s`. 0 disables sleeping, which
  /// is what tests use — the retry/trace machinery is exercised without
  /// slowing the suite.
  double initial_backoff_s = 0.01;
  double backoff_multiplier = 2.0;
  double max_backoff_s = 0.5;

  /// Backoff to sleep before attempt `attempt` (2-based; attempt 1 never
  /// waits). Returns 0 when backoff is disabled.
  double backoff_before(int attempt) const;
};

/// Thrown (or mapped to a back-end's failure verdict) when a dependency
/// fails transiently; retry sites catch exactly this.
class TransientError : public std::runtime_error {
 public:
  explicit TransientError(const std::string& what) : std::runtime_error(what) {}
};

/// Sleeps the calling thread; no-op for s <= 0.
void sleep_seconds(double s);

}  // namespace compsynth::util
