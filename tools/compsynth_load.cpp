// compsynth_load — load generator and raw protocol client for the
// compsynth_serve daemon (protocol: docs/SERVICE.md).
//
// Drive mode (default) simulates many architects against one daemon. Each
// simulated architect is a scripted oracle: session i draws a latent target
// objective — a deterministic hole assignment of the sketch, from
// util::Rng(seed-base + i) — and answers every distinguishing pair by
// evaluating both scenarios under it client-side (ties within 1e-4, the
// library's FinderConfig::tie_tolerance). Sessions are interleaved: each
// client thread owns a shard and advances every live session one protocol
// step per pass, so a daemon with --max-active below the session count is
// forced to swap and rehydrate continuously.
//
// Usage:
//   compsynth_load --connect <endpoint> --sketch-file <file> [options]
//   compsynth_load request --connect <endpoint> '<json-request-line>'
//
// Drive options:
//   --connect E           unix:<path> or tcp:[host:]<port>
//   --sketch-file F       sketch source for client-side answer evaluation
//                         (must be the daemon's sketch for the sessions)
//   --sessions N          simulated architects (default 16)
//   --threads T           client threads, each with its own connection
//                         (default 4)
//   --prefix P            session ids are <P><i> (default "s")
//   --seed-base N         session i uses synthesis seed and target-draw seed
//                         N + i (default 1)
//   --sketch-name NAME    sketch name sent in create ("" = daemon default)
//   --backend B           create backend (default grid)
//   --initial N / --pairs N / --max-iters N   create parameters
//   --wait-ms N           next long-poll budget (default 2000)
//   --evict-every M       after every M-th answer of a session, evict it —
//                         forces a rehydration on its next step (0 = never)
//   --stop-after-answers K  stop driving a session after K answers this run,
//                         leaving it parked mid-interaction (kill/resume
//                         rehearsal; 0 = drive to completion)
//   --continue            do not create sessions — drive ids that already
//                         exist on the daemon (the resume half of the
//                         kill/resume rehearsal)
//   --shutdown            send a daemon shutdown after the run
//   --out FILE            write a BENCH_serve.json-shaped report
//
// Raw mode sends one request line verbatim and prints the response line —
// the scripts' and docs' probe for individual verbs and error codes.
//
// Exit status: 0 when every session reached its goal (done, or K answers
// with --stop-after-answers), 1 on usage errors, 2 when any session failed
// or the transport broke.
#include <atomic>
#include <fstream>
#include <iostream>
#include <memory>
#include <mutex>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "serve/line_client.h"
#include "serve/protocol.h"
#include "sketch/eval.h"
#include "sketch/parser.h"
#include "util/rng.h"
#include "util/timer.h"

namespace {

using namespace compsynth;

// --- Blocking line-protocol client -----------------------------------------

// Thin wrapper over serve::LineClient. The connect retry matters: scripts
// often start compsynth_load the moment they fork the daemon, racing its
// bind — the first connect then sees ECONNREFUSED (tcp) or ENOENT (unix
// path not created yet). LineClient retries exactly those errnos with
// backoff, so the race resolves itself instead of failing the run.
class Client {
 public:
  explicit Client(const std::string& endpoint) {
    serve::LineClientConfig config;
    config.endpoint = endpoint;
    config.connect_retry.max_attempts = 25;
    config.connect_retry.initial_backoff_s = 0.02;
    config.connect_retry.backoff_multiplier = 1.5;
    config.connect_retry.max_backoff_s = 0.25;
    impl_ = std::make_unique<serve::LineClient>(std::move(config));
  }

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Sends one request line and blocks for the one response line.
  std::string request(const std::string& line) { return impl_->request(line); }

 private:
  std::unique_ptr<serve::LineClient> impl_;
};

// --- Options ---------------------------------------------------------------

struct Options {
  std::string connect;
  std::string sketch_file;
  int sessions = 16;
  int threads = 4;
  std::string prefix = "s";
  std::uint64_t seed_base = 1;
  std::string sketch_name;
  std::string backend = "grid";
  int initial = 5;
  int pairs = 1;
  int max_iters = 500;
  int wait_ms = 2000;
  int evict_every = 0;
  int stop_after_answers = 0;
  bool continue_mode = false;
  bool shutdown = false;
  std::optional<std::string> out_path;
};

int usage(const char* argv0) {
  std::cerr << "usage: " << argv0
            << " --connect <endpoint> --sketch-file <file> [--sessions N]\n"
               "  [--threads T] [--prefix P] [--seed-base N] [--sketch-name S]\n"
               "  [--backend B] [--initial N] [--pairs N] [--max-iters N]\n"
               "  [--wait-ms N] [--evict-every M] [--stop-after-answers K]\n"
               "  [--continue] [--shutdown] [--out FILE]\n"
               "   or: " << argv0
            << " request --connect <endpoint> '<json-line>'\n";
  return 1;
}

std::optional<Options> parse_args(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::optional<std::string> {
      if (i + 1 >= argc) return std::nullopt;
      return std::string(argv[++i]);
    };
    auto next_int = [&](int& slot) {
      auto v = next();
      if (!v) return false;
      slot = std::stoi(*v);
      return true;
    };
    if (arg == "--connect") {
      auto v = next();
      if (!v) return std::nullopt;
      opt.connect = *v;
    } else if (arg == "--sketch-file") {
      auto v = next();
      if (!v) return std::nullopt;
      opt.sketch_file = *v;
    } else if (arg == "--sessions") {
      if (!next_int(opt.sessions)) return std::nullopt;
    } else if (arg == "--threads") {
      if (!next_int(opt.threads)) return std::nullopt;
    } else if (arg == "--prefix") {
      auto v = next();
      if (!v) return std::nullopt;
      opt.prefix = *v;
    } else if (arg == "--seed-base") {
      auto v = next();
      if (!v) return std::nullopt;
      opt.seed_base = std::stoull(*v);
    } else if (arg == "--sketch-name") {
      auto v = next();
      if (!v) return std::nullopt;
      opt.sketch_name = *v;
    } else if (arg == "--backend") {
      auto v = next();
      if (!v) return std::nullopt;
      opt.backend = *v;
    } else if (arg == "--initial") {
      if (!next_int(opt.initial)) return std::nullopt;
    } else if (arg == "--pairs") {
      if (!next_int(opt.pairs)) return std::nullopt;
    } else if (arg == "--max-iters") {
      if (!next_int(opt.max_iters)) return std::nullopt;
    } else if (arg == "--wait-ms") {
      if (!next_int(opt.wait_ms)) return std::nullopt;
    } else if (arg == "--evict-every") {
      if (!next_int(opt.evict_every)) return std::nullopt;
    } else if (arg == "--stop-after-answers") {
      if (!next_int(opt.stop_after_answers)) return std::nullopt;
    } else if (arg == "--continue") {
      opt.continue_mode = true;
    } else if (arg == "--shutdown") {
      opt.shutdown = true;
    } else if (arg == "--out") {
      auto v = next();
      if (!v) return std::nullopt;
      opt.out_path = *v;
    } else {
      std::cerr << "unknown option: " << arg << "\n";
      return std::nullopt;
    }
  }
  if (opt.connect.empty() || opt.sketch_file.empty() || opt.sessions < 1 ||
      opt.threads < 1) {
    return std::nullopt;
  }
  return opt;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

// --- Drive mode ------------------------------------------------------------

/// One simulated architect: session id + latent target assignment.
struct Driver {
  std::string id;
  std::uint64_t seed = 1;
  sketch::HoleAssignment target;
  bool created = false;
  bool done = false;     // daemon reported done (or failed)
  bool failed = false;
  bool stopped = false;  // hit --stop-after-answers
  int answers = 0;       // answers sent by THIS run
};

struct Totals {
  std::atomic<long> answers{0};
  std::atomic<long> evictions{0};
  std::atomic<long> completed{0};
  std::atomic<long> failed{0};
  std::atomic<long> stopped{0};
};

class LoadRun {
 public:
  LoadRun(const Options& opt, sketch::Sketch sk)
      : opt_(opt), sketch_(std::move(sk)) {}

  int run() {
    std::vector<Driver> drivers(static_cast<std::size_t>(opt_.sessions));
    for (int i = 0; i < opt_.sessions; ++i) {
      Driver& d = drivers[static_cast<std::size_t>(i)];
      d.id = opt_.prefix + std::to_string(i);
      d.seed = opt_.seed_base + static_cast<std::uint64_t>(i);
      util::Rng rng(d.seed);
      for (const sketch::HoleSpec& hole : sketch_.holes()) {
        d.target.index.push_back(rng.uniform_int(0, hole.count - 1));
      }
    }

    const util::Stopwatch wall;
    std::vector<std::thread> threads;
    const int t_count = std::min(opt_.threads, opt_.sessions);
    threads.reserve(static_cast<std::size_t>(t_count));
    for (int t = 0; t < t_count; ++t) {
      threads.emplace_back([this, t, t_count, &drivers] {
        try {
          Client client(opt_.connect);
          // Round-robin shard; one protocol step per live session per pass
          // keeps the daemon's working set as interleaved as possible.
          bool live = true;
          while (live) {
            live = false;
            for (int i = t; i < opt_.sessions; i += t_count) {
              Driver& d = drivers[static_cast<std::size_t>(i)];
              if (d.done || d.failed || d.stopped) continue;
              step(client, d);
              if (!(d.done || d.failed || d.stopped)) live = true;
            }
          }
        } catch (const std::exception& ex) {
          std::lock_guard<std::mutex> lk(io_mu_);
          std::cerr << "client thread " << t << ": " << ex.what() << "\n";
          transport_failed_ = true;
        }
      });
    }
    for (std::thread& t : threads) t.join();
    const double wall_seconds = wall.elapsed_seconds();

    for (const Driver& d : drivers) {
      if (d.failed) {
        totals_.failed.fetch_add(1);
      } else if (d.done) {
        totals_.completed.fetch_add(1);
      } else if (d.stopped) {
        totals_.stopped.fetch_add(1);
      }
    }

    // Daemon-wide stats (and optional shutdown) on a fresh connection.
    obs::JsonObject daemon_stats;
    try {
      Client client(opt_.connect);
      serve::Request inspect;
      inspect.verb = serve::Verb::kInspect;
      const std::string response =
          timed(client, "inspect", serve::render_request(inspect));
      if (auto parsed = obs::parse_flat_json(response)) {
        daemon_stats = *parsed;
      }
      if (opt_.shutdown) {
        serve::Request req;
        req.verb = serve::Verb::kShutdown;
        timed(client, "shutdown", serve::render_request(req));
      }
    } catch (const std::exception& ex) {
      std::cerr << "final inspect: " << ex.what() << "\n";
      transport_failed_ = true;
    }

    report(wall_seconds, daemon_stats);

    const bool ok = !transport_failed_ && totals_.failed.load() == 0;
    return ok ? 0 : 2;
  }

 private:
  /// Sends one request, records its latency under `verb`.
  std::string timed(Client& client, const std::string& verb,
                    const std::string& line) {
    const util::Stopwatch watch;
    std::string response = client.request(line);
    metrics_.histogram(verb).record(watch.elapsed_seconds());
    return response;
  }

  static bool response_ok(const obs::JsonObject& obj) {
    const auto it = obj.find("ok");
    return it != obj.end() && it->second.kind == obs::JsonValue::Kind::kBool &&
           it->second.b;
  }

  static std::string field_str(const obs::JsonObject& obj, const char* key) {
    const auto it = obj.find(key);
    if (it == obj.end() || it->second.kind != obs::JsonValue::Kind::kString) {
      return {};
    }
    return it->second.str;
  }

  static double field_num(const obs::JsonObject& obj, const char* key,
                          double fallback = 0) {
    const auto it = obj.find(key);
    if (it == obj.end() || it->second.kind != obs::JsonValue::Kind::kNumber) {
      return fallback;
    }
    return it->second.num;
  }

  void fail(Driver& d, const std::string& what) {
    d.failed = true;
    std::lock_guard<std::mutex> lk(io_mu_);
    std::cerr << d.id << ": " << what << "\n";
  }

  /// One protocol step for one session: create it if needed, otherwise poll
  /// `next` and answer the pending pair under the latent target.
  void step(Client& client, Driver& d) {
    if (!d.created && !opt_.continue_mode) {
      serve::Request req;
      req.verb = serve::Verb::kCreate;
      req.session = d.id;
      req.sketch = opt_.sketch_name;
      req.backend = opt_.backend;
      req.seed = d.seed;
      req.initial = opt_.initial;
      req.pairs = opt_.pairs;
      req.max_iters = opt_.max_iters;
      const std::string response =
          timed(client, "create", serve::render_request(req));
      const auto parsed = obs::parse_flat_json(response);
      if (!parsed || !response_ok(*parsed)) {
        fail(d, "create failed: " + response);
        return;
      }
      d.created = true;
      return;
    }
    d.created = true;

    serve::Request req;
    req.verb = serve::Verb::kNext;
    req.session = d.id;
    req.wait_ms = opt_.wait_ms;
    const std::string response =
        timed(client, "next", serve::render_request(req));
    const auto parsed = obs::parse_flat_json(response);
    if (!parsed || !response_ok(*parsed)) {
      fail(d, "next failed: " + response);
      return;
    }
    const std::string phase = field_str(*parsed, "phase");
    if (phase == "done") {
      d.done = true;
      return;
    }
    if (phase == "failed") {
      fail(d, "session failed: " + field_str(*parsed, "error"));
      return;
    }
    if (phase != "waiting") return;  // advancing; try again next pass

    const auto a = serve::decode_metrics(field_str(*parsed, "a"));
    const auto b = serve::decode_metrics(field_str(*parsed, "b"));
    if (!a || !b) {
      fail(d, "unparseable pending pair: " + response);
      return;
    }
    if (opt_.stop_after_answers > 0 && d.answers >= opt_.stop_after_answers) {
      d.stopped = true;
      return;
    }
    const double va = sketch::eval(sketch_, d.target, *a);
    const double vb = sketch::eval(sketch_, d.target, *b);
    oracle::Preference pref = oracle::Preference::kTie;
    if (va > vb + kTieTolerance) pref = oracle::Preference::kFirst;
    if (vb > va + kTieTolerance) pref = oracle::Preference::kSecond;

    serve::Request ans;
    ans.verb = serve::Verb::kAnswer;
    ans.session = d.id;
    ans.index = static_cast<long>(field_num(*parsed, "index", -1));
    ans.answer = pref;
    const std::string ans_response =
        timed(client, "answer", serve::render_request(ans));
    const auto ans_parsed = obs::parse_flat_json(ans_response);
    if (!ans_parsed || !response_ok(*ans_parsed)) {
      fail(d, "answer failed: " + ans_response);
      return;
    }
    ++d.answers;
    totals_.answers.fetch_add(1);

    if (opt_.evict_every > 0 && d.answers % opt_.evict_every == 0) {
      serve::Request evict;
      evict.verb = serve::Verb::kEvict;
      evict.session = d.id;
      const std::string ev_response =
          timed(client, "evict", serve::render_request(evict));
      const auto ev_parsed = obs::parse_flat_json(ev_response);
      if (!ev_parsed || !response_ok(*ev_parsed)) {
        fail(d, "evict failed: " + ev_response);
        return;
      }
      totals_.evictions.fetch_add(1);
    }
  }

  void report(double wall_seconds, const obs::JsonObject& daemon_stats) {
    long requests = 0;
    for (const auto& [name, hist] : metrics_.histograms()) {
      requests += hist->count();
    }
    const double rps = wall_seconds > 0 ? requests / wall_seconds : 0;

    std::ostringstream out;
    out << "{\n";
    out << "  \"bench\": \"serve\",\n";
    out << "  \"endpoint\": \"" << obs::json_escape(opt_.connect) << "\",\n";
    out << "  \"sessions\": " << opt_.sessions << ",\n";
    out << "  \"threads\": " << opt_.threads << ",\n";
    out << "  \"completed\": " << totals_.completed.load() << ",\n";
    out << "  \"stopped_early\": " << totals_.stopped.load() << ",\n";
    out << "  \"failed\": " << totals_.failed.load() << ",\n";
    out << "  \"answers\": " << totals_.answers.load() << ",\n";
    out << "  \"evictions\": " << totals_.evictions.load() << ",\n";
    out << "  \"requests\": " << requests << ",\n";
    out << "  \"wall_seconds\": " << wall_seconds << ",\n";
    out << "  \"requests_per_sec\": " << rps << ",\n";
    out << "  \"latency_seconds\": {\n";
    const auto histograms = metrics_.histograms();
    for (std::size_t i = 0; i < histograms.size(); ++i) {
      const auto& [name, hist] = histograms[i];
      out << "    \"" << obs::json_escape(name) << "\": {"
          << "\"count\": " << hist->count() << ", \"mean\": " << hist->mean()
          << ", \"p50\": " << hist->quantile(0.5)
          << ", \"p99\": " << hist->quantile(0.99) << ", \"max\": "
          << hist->max() << "}" << (i + 1 < histograms.size() ? "," : "")
          << "\n";
    }
    out << "  },\n";
    out << "  \"daemon\": {";
    const char* keys[] = {"sessions_created", "resident", "swaps",
                          "rehydrations", "advances"};
    bool first = true;
    for (const char* key : keys) {
      const auto it = daemon_stats.find(key);
      if (it == daemon_stats.end() ||
          it->second.kind != obs::JsonValue::Kind::kNumber) {
        continue;
      }
      out << (first ? "" : ", ") << "\"" << key
          << "\": " << static_cast<long>(it->second.num);
      first = false;
    }
    out << "}\n";
    out << "}\n";

    const std::string rendered = out.str();
    if (opt_.out_path) {
      std::ofstream f(*opt_.out_path);
      f << rendered;
    }
    std::cout << rendered;
  }

  static constexpr double kTieTolerance = 1e-4;

  const Options& opt_;
  sketch::Sketch sketch_;
  obs::MetricsRegistry metrics_;
  Totals totals_;
  std::mutex io_mu_;
  std::atomic<bool> transport_failed_{false};
};

// --- Raw mode --------------------------------------------------------------

int raw_mode(int argc, char** argv) {
  std::string connect;
  std::string line;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--connect" && i + 1 < argc) {
      connect = argv[++i];
    } else if (line.empty()) {
      line = arg;
    } else {
      return usage(argv[0]);
    }
  }
  if (connect.empty() || line.empty()) return usage(argv[0]);
  try {
    Client client(connect);
    std::cout << client.request(line) << "\n";
    return 0;
  } catch (const std::exception& ex) {
    std::cerr << "compsynth_load: " << ex.what() << "\n";
    return 2;
  }
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1 && std::string(argv[1]) == "request") {
    return raw_mode(argc, argv);
  }
  const std::optional<Options> opt = parse_args(argc, argv);
  if (!opt) return usage(argv[0]);
  try {
    sketch::Sketch sk = sketch::parse_sketch(read_file(opt->sketch_file));
    LoadRun run(*opt, std::move(sk));
    return run.run();
  } catch (const std::exception& ex) {
    std::cerr << "compsynth_load: " << ex.what() << "\n";
    return 2;
  }
}
