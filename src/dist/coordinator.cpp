#include "dist/coordinator.h"

#include <algorithm>
#include <chrono>
#include <deque>
#include <memory>
#include <thread>
#include <utility>

#include "dist/wire.h"
#include "obs/trace.h"
#include "pref/serialize.h"
#include "serve/line_client.h"
#include "solver/grid_finder.h"
#include "util/log.h"
#include "util/sync.h"
#include "util/thread_annotations.h"
#include "util/timer.h"

namespace compsynth::dist {

namespace {

/// One shard's dispatch state. `attempts` counts dispatches begun (primary,
/// failure retries and speculative re-issues alike); `done` flips exactly
/// once, on the first structurally valid response — later arrivals for the
/// same shard are discarded (idempotent, so any of them is byte-identical).
struct ShardSlot {
  int attempts = 0;
  int inflight = 0;
  bool done = false;
  double started_s = -1;  // Sync::clock time of the latest dispatch
  std::string blob;
};

}  // namespace

/// Shared state of one sync_shards call. Worker threads exit on their own
/// (sync decided, or the worker retired), so the caller only joins.
struct ShardCoordinator::Sync {
  util::Stopwatch clock;  // one steady timebase for straggler detection
  std::string job;

  util::Mutex mu;
  util::CondVar cv;
  std::vector<ShardSlot> slots GUARDED_BY(mu);
  std::deque<std::size_t> queue GUARDED_BY(mu);
  std::size_t completed GUARDED_BY(mu) = 0;
  /// Any shard exhausted its attempt budget: abort into local fallback.
  bool failed GUARDED_BY(mu) = false;
  /// Completed-shard wall times, the straggler baseline.
  std::vector<double> durations GUARDED_BY(mu);
};

ShardCoordinator::ShardCoordinator(CoordinatorConfig config)
    : config_(std::move(config)) {}

std::optional<std::vector<std::string>> ShardCoordinator::sync_shards(
    const pref::PreferenceGraph& graph,
    const std::vector<solver::ShardRange>& ranges) {
  if (ranges.empty()) return std::vector<std::string>{};
  if (config_.workers.empty()) {
    config_.obs.count("dist.fallbacks");
    return std::nullopt;
  }

  obs::Span span(&config_.obs, "dist_sync");
  if (span.event() != nullptr) {
    span.event()->integer("shards", static_cast<long long>(ranges.size()));
    span.event()->integer("workers",
                          static_cast<long long>(config_.workers.size()));
  }

  Sync sync;
  sync.job = "sync-" + std::to_string(++job_counter_);
  {
    const util::MutexLock lk(sync.mu);
    sync.slots.resize(ranges.size());
    for (std::size_t k = 0; k < ranges.size(); ++k) sync.queue.push_back(k);
  }
  const std::string graph_text = pref::serialize(graph);

  std::vector<std::thread> threads;
  threads.reserve(config_.workers.size());
  for (std::size_t w = 0; w < config_.workers.size(); ++w) {
    threads.emplace_back(
        [this, &sync, w, &ranges, &graph_text] {
          worker_loop(sync, w, ranges, graph_text);
        });
  }
  for (std::thread& t : threads) t.join();

  const util::MutexLock lk(sync.mu);
  const bool ok = sync.completed == sync.slots.size();
  if (span.event() != nullptr) span.event()->boolean("ok", ok);
  if (!ok) {
    // Every worker retired (or some shard ran out of attempts) with work
    // remaining: decline, and the finder runs the identical sync locally.
    config_.obs.count("dist.fallbacks");
    util::log(util::LogLevel::kWarn, "dist: sync ", sync.job,
              " incomplete (", sync.completed, "/", sync.slots.size(),
              " shards) — falling back to local scan");
    return std::nullopt;
  }
  std::vector<std::string> records;
  records.reserve(sync.slots.size());
  for (const ShardSlot& slot : sync.slots) records.push_back(slot.blob);
  return records;
}

void ShardCoordinator::worker_loop(
    Sync& sync, std::size_t worker_index,
    const std::vector<solver::ShardRange>& ranges,
    const std::string& graph_text) {
  const std::string& endpoint = config_.workers[worker_index];
  int strikes = 0;

  const auto fail = [&](std::ptrdiff_t shard, const std::string& why) {
    config_.obs.count("dist.worker_failures");
    if (config_.obs.tracing()) {
      obs::TraceEvent ev("worker_fail");
      ev.str("job", sync.job);
      ev.str("worker", endpoint);
      if (shard >= 0) ev.integer("shard", static_cast<long long>(shard));
      ev.str("why", why);
      ev.integer("strikes", strikes + 1);
      config_.obs.emit(ev);
    }
    util::log(util::LogLevel::kWarn, "dist: worker ", endpoint, " failed",
              shard >= 0 ? " shard " + std::to_string(shard) : std::string(),
              ": ", why);
    ++strikes;
  };

  std::unique_ptr<serve::LineClient> client;
  const auto connect = [&]() -> bool {
    serve::LineClientConfig cc;
    cc.endpoint = endpoint;
    cc.connect_retry = config_.connect_retry;
    cc.io_timeout_s = config_.shard_deadline_s;
    try {
      client = std::make_unique<serve::LineClient>(cc);
      return true;
    } catch (const std::exception& ex) {
      client.reset();
      fail(-1, ex.what());
      return false;
    }
  };
  if (!connect()) return;  // never reached a live worker: retire immediately

  double last_io = sync.clock.elapsed_seconds();
  for (;;) {
    // Pick work: a queued shard, a straggler to speculate on, a heartbeat,
    // or nothing left to do.
    enum class Pick { kShard, kHeartbeat, kExit };
    Pick pick = Pick::kExit;
    std::size_t k = 0;
    bool speculative = false;
    int attempt = 0;
    {
      const util::MutexLock lk(sync.mu);
      for (;;) {
        if (sync.failed || sync.completed == sync.slots.size()) break;
        bool have = false;
        while (!sync.queue.empty()) {
          const std::size_t cand = sync.queue.front();
          sync.queue.pop_front();
          if (!sync.slots[cand].done) {
            k = cand;
            have = true;
            break;
          }
        }
        if (!have) {
          // Straggler scan: re-issue a long-running shard once (inflight
          // cap 2) when it exceeds the adaptive threshold. With no
          // completed-shard baseline yet, only the hard deadline applies.
          double threshold = config_.shard_deadline_s;
          if (!sync.durations.empty()) {
            std::vector<double> sorted = sync.durations;
            std::nth_element(sorted.begin(),
                             sorted.begin() + sorted.size() / 2, sorted.end());
            const double median = sorted[sorted.size() / 2];
            threshold = std::max(config_.min_straggler_s,
                                 config_.straggler_factor * median);
          }
          const double now = sync.clock.elapsed_seconds();
          for (std::size_t i = 0; i < sync.slots.size(); ++i) {
            const ShardSlot& slot = sync.slots[i];
            if (!slot.done && slot.inflight == 1 &&
                slot.attempts < config_.max_shard_attempts &&
                now - slot.started_s > threshold) {
              k = i;
              have = true;
              speculative = true;
              break;
            }
          }
        }
        if (have) {
          ShardSlot& slot = sync.slots[k];
          ++slot.attempts;
          ++slot.inflight;
          slot.started_s = sync.clock.elapsed_seconds();
          attempt = slot.attempts;
          pick = Pick::kShard;
          break;
        }
        if (sync.clock.elapsed_seconds() - last_io >=
            config_.heartbeat_interval_s) {
          pick = Pick::kHeartbeat;
          break;
        }
        sync.cv.wait_for(sync.mu, std::chrono::milliseconds(50));
      }
    }
    if (pick == Pick::kExit) return;

    if (pick == Pick::kHeartbeat) {
      // Idle liveness probe: a dead worker is found now, not on the next
      // shard it would have silently eaten.
      last_io = sync.clock.elapsed_seconds();
      try {
        client->request(render_simple_request(WireVerb::kPing));
        continue;
      } catch (const util::TransientError& ex) {
        fail(-1, ex.what());
        if (strikes >= config_.max_worker_strikes || !connect()) return;
        continue;
      }
    }

    // Dispatch shard k.
    config_.obs.count("dist.shards_dispatched");
    if (attempt > 1) config_.obs.count("dist.reissues");
    if (config_.obs.tracing()) {
      obs::TraceEvent ev(attempt > 1 ? "shard_reissue" : "shard_dispatch");
      ev.str("job", sync.job);
      ev.integer("shard", static_cast<long long>(k));
      ev.str("worker", endpoint);
      ev.integer("attempt", attempt);
      if (attempt > 1) ev.boolean("speculative", speculative);
      config_.obs.emit(ev);
    }
    ShardRequest req;
    req.job = sync.job;
    req.shard = k;
    req.lo = ranges[k].lo;
    req.hi = ranges[k].hi;
    req.tie = config_.tie_tolerance;
    req.sketch = config_.sketch_text;
    req.graph = graph_text;

    const util::Stopwatch shard_watch;
    bool transport_ok = true;
    std::string response;
    std::string why;
    try {
      response = client->request(render_shard_request(req));
    } catch (const util::TransientError& ex) {
      transport_ok = false;
      why = ex.what();
    }
    last_io = sync.clock.elapsed_seconds();

    std::string blob;
    if (transport_ok) {
      const std::optional<ShardResponse> resp =
          parse_shard_response(response, &why);
      if (resp && !resp->ok) {
        why = "worker error " + resp->code + ": " + resp->error;
      } else if (resp) {
        // Structural validation with the same parser restore_state uses, so
        // a torn blob is rejected here exactly as it would be from disk;
        // then the identity check — the result must be for *this* shard of
        // *this* sync.
        try {
          const solver::GridFinder::ParsedShardBlob decoded =
              solver::GridFinder::parse_shard_blob(resp->blob);
          if (resp->job != sync.job || resp->shard != k ||
              decoded.index != k || decoded.lo != ranges[k].lo ||
              decoded.hi != ranges[k].hi ||
              static_cast<long long>(decoded.linears.size()) != resp->count) {
            why = "shard identity mismatch in response";
          } else {
            blob = resp->blob;
          }
        } catch (const std::invalid_argument& ex) {
          why = ex.what();
        }
      }
    }

    // Every record begins with the "shard" tag, so empty = no valid result.
    const bool valid = !blob.empty();
    {
      const util::MutexLock lk(sync.mu);
      ShardSlot& slot = sync.slots[k];
      --slot.inflight;
      if (valid) {
        if (!slot.done) {  // first valid result wins
          slot.done = true;
          slot.blob = std::move(blob);
          ++sync.completed;
          const double secs = shard_watch.elapsed_seconds();
          sync.durations.push_back(secs);
          config_.obs.count("dist.shards_completed");
          config_.obs.observe("dist.shard.seconds", secs);
        }
      } else if (!slot.done) {
        if (slot.attempts < config_.max_shard_attempts) {
          sync.queue.push_back(k);
        } else if (slot.inflight == 0) {
          // Out of attempts with nothing still in flight: this shard can
          // never complete, so the whole sync aborts into local fallback.
          sync.failed = true;
        }
      }
      sync.cv.notify_all();
    }
    if (!valid) {
      fail(static_cast<std::ptrdiff_t>(k), why);
      if (strikes >= config_.max_worker_strikes) return;  // retired
      if (!transport_ok && !connect()) return;  // connection dead for good
    }
  }
}

}  // namespace compsynth::dist
