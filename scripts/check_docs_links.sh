#!/usr/bin/env bash
# Standalone dead-link checker for the documentation: every relative
# Markdown link target in docs/*.md, README.md, DESIGN.md and
# EXPERIMENTS.md must exist on disk, and every document under docs/ must
# be linked from README.md's documentation index (so a new doc —
# docs/SERVICE.md was the motivating case — cannot land invisible). Same
# link contract as the `docs_check` ctest (tools/docs_check.cmake), but
# runnable without a configured build tree — scripts/ci_full.sh calls it,
# and it is cheap enough for a pre-commit hook.
#
# Usage: scripts/check_docs_links.sh [repo-root]
set -u

root="${1:-$(cd "$(dirname "$0")/.." && pwd)}"
fail=0
checked=0

for doc in "$root"/docs/*.md "$root"/README.md "$root"/DESIGN.md \
           "$root"/EXPERIMENTS.md; do
  [ -f "$doc" ] || continue
  dir="$(dirname "$doc")"
  rel="${doc#"$root"/}"
  # Pull every "](target)" out of the document, one per line.
  while IFS= read -r target; do
    case "$target" in
      http://* | https://* | mailto:* | '#'*) continue ;;
    esac
    target="${target%%#*}"   # strip an in-page anchor
    [ -n "$target" ] || continue
    checked=$((checked + 1))
    if [ ! -e "$dir/$target" ]; then
      echo "broken link: $rel -> $target" >&2
      fail=1
    fi
  done < <(grep -o '](\([^)]*\))' "$doc" | sed 's/^](//; s/)$//')
done

# Index completeness: each docs/*.md must be referenced from README.md.
indexed=0
for doc in "$root"/docs/*.md; do
  [ -f "$doc" ] || continue
  name="docs/$(basename "$doc")"
  indexed=$((indexed + 1))
  if ! grep -q "($name)" "$root/README.md"; then
    echo "unindexed doc: $name is not linked from README.md" >&2
    fail=1
  fi
done

if [ "$checked" -eq 0 ] || [ "$indexed" -eq 0 ]; then
  echo "check_docs_links: nothing found — extraction regex drifted?" >&2
  exit 1
fi
if [ "$fail" -ne 0 ]; then
  echo "check_docs_links: FAILED" >&2
  exit 1
fi
echo "check_docs_links: $checked links OK, $indexed docs indexed"
