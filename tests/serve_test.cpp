// The synthesis service (src/serve/): wire-protocol parsing, the session
// host's passive replay model, and the eviction / rehydration edge cases.
//
// The central invariant under test everywhere: no matter how often a
// session is swapped out, rehydrated from a (possibly torn) snapshot, or
// carried across a host teardown, its oracle-query sequence and final
// objective are IDENTICAL to an uninterrupted in-process synthesis run
// with the same configuration.
#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "oracle/oracle.h"
#include "serve/protocol.h"
#include "serve/session_host.h"
#include "sketch/eval.h"
#include "sketch/parser.h"
#include "sketch/printer.h"
#include "synth/synthesizer.h"
#include "util/thread_pool.h"

namespace compsynth::serve {
namespace {

constexpr char kSketchSource[] = R"(
sketch serve(throughput in [0, 10], latency in [0, 100]) {
  hole weight in grid(0, 0.25, 5);
  hole bonus_thrsh in grid(0, 20, 5);
  if latency <= bonus_thrsh
  then throughput - weight*latency + 100
  else throughput - weight*latency
}
)";

sketch::Sketch test_sketch() { return sketch::parse_sketch(kSketchSource); }

/// A temporary host root, removed on destruction.
struct TempRoot {
  std::filesystem::path path;
  TempRoot() {
    path = std::filesystem::temp_directory_path() /
           ("compsynth_serve_test_" +
            std::to_string(::getpid()) + "_" +
            std::to_string(counter()++));
    std::filesystem::create_directories(path);
  }
  ~TempRoot() {
    std::error_code ec;
    std::filesystem::remove_all(path, ec);
  }
  static int& counter() {
    static int n = 0;
    return n;
  }
};

/// The scripted architect: judges a pair by evaluating both scenarios under
/// a latent target assignment, exactly like tools/compsynth_load.cpp. As an
/// Oracle it deliberately does NOT override do_rank, so a direct
/// Synthesizer::run with it asks the same comparison sequence the service's
/// ReplayOracle replays.
class ScriptedArchitect final : public oracle::Oracle {
 public:
  ScriptedArchitect(const sketch::Sketch& sk,
                    const sketch::HoleAssignment& target)
      : sketch_(sk), target_(target) {}

  oracle::Preference judge(const pref::Scenario& a,
                           const pref::Scenario& b) const {
    const double va = sketch::eval(sketch_, target_, a.metrics);
    const double vb = sketch::eval(sketch_, target_, b.metrics);
    if (va > vb + 1e-4) return oracle::Preference::kFirst;
    if (vb > va + 1e-4) return oracle::Preference::kSecond;
    return oracle::Preference::kTie;
  }

  /// One canonical line per comparison asked, for sequence differencing.
  mutable std::vector<std::string> log;

 protected:
  oracle::Preference do_compare(const pref::Scenario& a,
                                const pref::Scenario& b) override {
    log.push_back(scenario_key(a) + "|" + scenario_key(b));
    return judge(a, b);
  }

 private:
  const sketch::Sketch& sketch_;
  sketch::HoleAssignment target_;
};

CreateParams params_for(const std::string& id, std::uint64_t seed) {
  CreateParams p;
  p.id = id;
  p.seed = seed;
  p.initial = 5;
  p.pairs = 1;
  p.max_iters = 200;
  return p;
}

struct DriveOutcome {
  std::string status;
  std::string objective;
  long answers = 0;
  bool completed = false;
};

/// Drives one session to completion through the host API, answering with
/// the architect; optionally evicts after every `evict_every`-th answer.
DriveOutcome drive(SessionHost& host, const std::string& id,
                   const ScriptedArchitect& architect, int evict_every = 0) {
  DriveOutcome out;
  for (int step = 0; step < 5000; ++step) {
    SessionView view;
    const HostResult r = host.next(id, 30000, &view);
    EXPECT_TRUE(r.ok) << r.code << ": " << r.message;
    if (!r.ok) return out;
    if (view.phase == SessionPhase::kDone) {
      out.status = view.status;
      out.objective = view.objective;
      out.completed = true;
      return out;
    }
    EXPECT_EQ(view.phase, SessionPhase::kWaiting)
        << "unexpected phase " << phase_name(view.phase)
        << (view.phase == SessionPhase::kFailed ? ": " + view.error : "");
    if (view.phase != SessionPhase::kWaiting) return out;
    const HostResult ar = host.answer(
        id, view.pending->index, architect.judge(view.pending->a,
                                                 view.pending->b));
    EXPECT_TRUE(ar.ok) << ar.code << ": " << ar.message;
    if (!ar.ok) return out;
    ++out.answers;
    if (evict_every > 0 && out.answers % evict_every == 0) {
      const HostResult er = host.evict(id);
      EXPECT_TRUE(er.ok) << er.code << ": " << er.message;
    }
  }
  ADD_FAILURE() << "session " << id << " did not complete";
  return out;
}

/// The "key_a|key_b" sequence of a session's on-disk answers.log.
std::vector<std::string> logged_sequence(const std::filesystem::path& root,
                                         const std::string& id) {
  std::vector<std::string> out;
  std::ifstream in(root / id / "answers.log");
  std::string line;
  while (std::getline(in, line)) {
    // <index>|<answer>|<key_a>|<key_b>
    const std::size_t p1 = line.find('|');
    const std::size_t p2 = line.find('|', p1 + 1);
    out.push_back(line.substr(p2 + 1));
  }
  return out;
}

sketch::HoleAssignment target_for(std::uint64_t i) {
  // Any fixed in-grid assignment works; spread across the 5x5 grid.
  return sketch::HoleAssignment{{static_cast<std::int64_t>(i % 5),
                                 static_cast<std::int64_t>((i * 3 + 1) % 5)}};
}

// --- Protocol ---------------------------------------------------------------

TEST(ServeProtocol, RequestRoundTrip) {
  Request req;
  req.verb = Verb::kCreate;
  req.session = "alpha-1";
  req.sketch = "serve";
  req.backend = "grid";
  req.seed = 42;
  req.initial = 7;
  req.pairs = 2;
  req.max_iters = 99;
  const auto parsed = parse_request(render_request(req));
  const Request* round = std::get_if<Request>(&parsed);
  ASSERT_NE(round, nullptr);
  EXPECT_EQ(round->verb, Verb::kCreate);
  EXPECT_EQ(round->session, "alpha-1");
  EXPECT_EQ(round->sketch, "serve");
  EXPECT_EQ(round->seed, 42u);
  EXPECT_EQ(round->initial, 7);
  EXPECT_EQ(round->pairs, 2);
  EXPECT_EQ(round->max_iters, 99);

  Request ans;
  ans.verb = Verb::kAnswer;
  ans.session = "alpha-1";
  ans.index = 3;
  ans.answer = oracle::Preference::kSecond;
  const auto parsed2 = parse_request(render_request(ans));
  const Request* round2 = std::get_if<Request>(&parsed2);
  ASSERT_NE(round2, nullptr);
  EXPECT_EQ(round2->index, 3);
  EXPECT_EQ(round2->answer, oracle::Preference::kSecond);
}

TEST(ServeProtocol, ErrorCodes) {
  auto code_of = [](std::string_view line) {
    const auto parsed = parse_request(line);
    const ParseError* err = std::get_if<ParseError>(&parsed);
    return err ? err->code : std::string("(ok)");
  };
  EXPECT_EQ(code_of("not json"), kErrParse);
  EXPECT_EQ(code_of("{\"session\":\"x\"}"), kErrVerb);
  EXPECT_EQ(code_of("{\"verb\":\"frobnicate\"}"), kErrVerb);
  EXPECT_EQ(code_of("{\"verb\":\"next\"}"), kErrId);
  EXPECT_EQ(code_of("{\"verb\":\"create\",\"session\":\"a/b\"}"), kErrId);
  EXPECT_EQ(code_of("{\"verb\":\"create\",\"session\":\".hidden\"}"), kErrId);
  EXPECT_EQ(code_of("{\"verb\":\"answer\",\"session\":\"s\",\"index\":0,"
                    "\"answer\":\"maybe\"}"),
            kErrAnswer);
  EXPECT_EQ(code_of("{\"verb\":\"answer\",\"session\":\"s\","
                    "\"answer\":\"tie\"}"),
            kErrIndex);  // missing index
  EXPECT_EQ(code_of("{\"verb\":\"create\",\"session\":\"s\",\"pairs\":0}"),
            kErrField);
}

TEST(ServeProtocol, ScenarioKeyRoundTrip) {
  const std::vector<double> metrics = {2.5, 1.0 / 3.0, 1e-17, -0.0};
  const auto decoded = decode_metrics(encode_metrics(metrics));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, metrics);
  EXPECT_FALSE(decode_metrics("1.0 fish").has_value());
}

// --- Host lifecycle ---------------------------------------------------------

TEST(ServeHost, LifecycleMatchesDirectRun) {
  const sketch::Sketch sk = test_sketch();
  const sketch::HoleAssignment target = target_for(2);

  // Reference: a plain in-process run with the identical configuration.
  ScriptedArchitect reference(sk, target);
  synth::SynthesisConfig cfg;
  cfg.seed = 11;
  cfg.max_iterations = 200;
  cfg.grid_threads = 1;
  cfg.keep_transcript = false;
  synth::Synthesizer direct = synth::make_grid_synthesizer(sk, cfg);
  const synth::SynthesisResult expected = direct.run(reference);
  ASSERT_EQ(expected.status, synth::SynthesisStatus::kConverged);
  ASSERT_TRUE(expected.objective.has_value());

  // Service: the same session driven through the host API.
  TempRoot root;
  HostConfig hc;
  hc.root = root.path.string();
  SessionHost host(hc);
  host.register_sketch(test_sketch());
  ScriptedArchitect architect(sk, target);
  ASSERT_TRUE(host.create(params_for("s", 11)).ok);
  const DriveOutcome out = drive(host, "s", architect);
  ASSERT_TRUE(out.completed);

  EXPECT_EQ(out.status, "converged");
  EXPECT_EQ(out.objective, sketch::print_instantiated(sk, *expected.objective));

  // Identical oracle-query sequence: the host's durable answers.log must be
  // exactly the comparisons the reference oracle was asked.
  EXPECT_EQ(logged_sequence(root.path, "s"), reference.log);
  EXPECT_EQ(out.answers, static_cast<long>(reference.log.size()));

  // A completed session survives inspect and refuses further answers.
  SessionView view;
  ASSERT_TRUE(host.inspect("s", &view).ok);
  EXPECT_EQ(view.phase, SessionPhase::kDone);
  const HostResult r = host.answer("s", out.answers, oracle::Preference::kTie);
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(r.code, kErrState);
}

TEST(ServeHost, EvictAfterEveryAnswerPreservesSequence) {
  const sketch::Sketch sk = test_sketch();
  const sketch::HoleAssignment target = target_for(4);

  TempRoot plain_root;
  HostConfig plain_cfg;
  plain_cfg.root = plain_root.path.string();
  SessionHost plain(plain_cfg);
  plain.register_sketch(test_sketch());
  ScriptedArchitect architect(sk, target);
  ASSERT_TRUE(plain.create(params_for("s", 21)).ok);
  const DriveOutcome undisturbed = drive(plain, "s", architect);
  ASSERT_TRUE(undisturbed.completed);

  TempRoot evict_root;
  HostConfig evict_cfg;
  evict_cfg.root = evict_root.path.string();
  SessionHost evicting(evict_cfg);
  evicting.register_sketch(test_sketch());
  ASSERT_TRUE(evicting.create(params_for("s", 21)).ok);
  const DriveOutcome evicted = drive(evicting, "s", architect, /*evict_every=*/1);
  ASSERT_TRUE(evicted.completed);

  EXPECT_EQ(evicted.objective, undisturbed.objective);
  EXPECT_EQ(evicted.answers, undisturbed.answers);
  EXPECT_EQ(logged_sequence(evict_root.path, "s"),
            logged_sequence(plain_root.path, "s"));
  EXPECT_GT(evicting.stats().swaps, 0);
  EXPECT_GT(evicting.stats().rehydrations, 0);
}

TEST(ServeHost, EvictWhileAnswerInFlight) {
  // Real worker threads: every answer schedules an advance on the pool, and
  // the evict lands while that advance is (usually) still running. evict
  // must wait it out, and the session must keep converging identically.
  const sketch::Sketch sk = test_sketch();
  const sketch::HoleAssignment target = target_for(1);

  TempRoot ref_root;
  HostConfig ref_cfg;
  ref_cfg.root = ref_root.path.string();
  SessionHost ref_host(ref_cfg);
  ref_host.register_sketch(test_sketch());
  ScriptedArchitect architect(sk, target);
  ASSERT_TRUE(ref_host.create(params_for("s", 31)).ok);
  const DriveOutcome expected = drive(ref_host, "s", architect);
  ASSERT_TRUE(expected.completed);

  util::ThreadPool pool(3);
  TempRoot root;
  HostConfig hc;
  hc.root = root.path.string();
  hc.pool = &pool;
  SessionHost host(hc);
  host.register_sketch(test_sketch());
  ASSERT_TRUE(host.create(params_for("s", 31)).ok);

  DriveOutcome out;
  for (int step = 0; step < 5000 && !out.completed; ++step) {
    SessionView view;
    ASSERT_TRUE(host.next("s", 30000, &view).ok);
    if (view.phase == SessionPhase::kDone) {
      out.status = view.status;
      out.objective = view.objective;
      out.completed = true;
      break;
    }
    ASSERT_EQ(view.phase, SessionPhase::kWaiting) << view.error;
    ASSERT_TRUE(host.answer("s", view.pending->index,
                            architect.judge(view.pending->a, view.pending->b))
                    .ok);
    ++out.answers;
    // Immediately after the answer an advance is in flight on the pool.
    ASSERT_TRUE(host.evict("s").ok);
  }
  ASSERT_TRUE(out.completed);
  EXPECT_EQ(out.objective, expected.objective);
  EXPECT_EQ(logged_sequence(root.path, "s"),
            logged_sequence(ref_root.path, "s"));
}

TEST(ServeHost, TornSnapshotsFallBackToFullReplay) {
  // Every checkpoint write torn: rehydration never finds a valid snapshot
  // and must replay the whole answers.log from scratch — slower, but the
  // query sequence and objective are unchanged.
  const sketch::Sketch sk = test_sketch();
  const sketch::HoleAssignment target = target_for(3);

  TempRoot ref_root;
  HostConfig ref_cfg;
  ref_cfg.root = ref_root.path.string();
  SessionHost ref_host(ref_cfg);
  ref_host.register_sketch(test_sketch());
  ScriptedArchitect architect(sk, target);
  ASSERT_TRUE(ref_host.create(params_for("s", 41)).ok);
  const DriveOutcome expected = drive(ref_host, "s", architect);
  ASSERT_TRUE(expected.completed);

  TempRoot root;
  HostConfig hc;
  hc.root = root.path.string();
  hc.checkpoint_faults.torn_write_p = 1.0;
  hc.checkpoint_faults.seed = 99;
  SessionHost host(hc);
  host.register_sketch(test_sketch());
  ASSERT_TRUE(host.create(params_for("s", 41)).ok);
  const DriveOutcome out = drive(host, "s", architect, /*evict_every=*/2);
  ASSERT_TRUE(out.completed);
  EXPECT_EQ(out.objective, expected.objective);
  EXPECT_EQ(logged_sequence(root.path, "s"),
            logged_sequence(ref_root.path, "s"));
}

TEST(ServeHost, TruncatedNewestSnapshotRehydrates) {
  // Partially drive a session, evict it, then tear its newest snapshot by
  // hand (a half-written file, as a crash would leave). Rehydration must
  // fall back to an older snapshot (or scratch) and continue identically.
  const sketch::Sketch sk = test_sketch();
  const sketch::HoleAssignment target = target_for(0);

  // initial=0 skips the seed-ranking phase, so every answer completes one
  // iteration and writes one checkpoint — snapshots exist well before
  // convergence.
  CreateParams params = params_for("s", 51);
  params.initial = 0;

  TempRoot ref_root;
  HostConfig ref_cfg;
  ref_cfg.root = ref_root.path.string();
  SessionHost ref_host(ref_cfg);
  ref_host.register_sketch(test_sketch());
  ScriptedArchitect architect(sk, target);
  ASSERT_TRUE(ref_host.create(params).ok);
  const DriveOutcome expected = drive(ref_host, "s", architect);
  ASSERT_TRUE(expected.completed);
  ASSERT_GE(expected.answers, 4) << "sketch too easy to exercise truncation";

  TempRoot root;
  HostConfig hc;
  hc.root = root.path.string();
  SessionHost host(hc);
  host.register_sketch(test_sketch());
  ASSERT_TRUE(host.create(params).ok);
  // Answer until at least one snapshot exists, but stop well short of
  // completion.
  auto newest_snapshot = [&]() {
    std::filesystem::path newest;
    for (const auto& entry :
         std::filesystem::directory_iterator(root.path / "s")) {
      if (entry.path().extension() == ".csnap" &&
          (newest.empty() || entry.path().filename() > newest.filename())) {
        newest = entry.path();
      }
    }
    return newest;
  };
  for (int i = 0; i < expected.answers - 1 && newest_snapshot().empty(); ++i) {
    SessionView view;
    ASSERT_TRUE(host.next("s", 30000, &view).ok);
    ASSERT_EQ(view.phase, SessionPhase::kWaiting);
    ASSERT_TRUE(host.answer("s", view.pending->index,
                            architect.judge(view.pending->a, view.pending->b))
                    .ok);
  }
  ASSERT_TRUE(host.evict("s").ok);

  // Tear the newest snapshot: truncate it to half its size.
  const std::filesystem::path newest = newest_snapshot();
  ASSERT_FALSE(newest.empty()) << "no snapshot written before completion";
  const auto size = std::filesystem::file_size(newest);
  std::filesystem::resize_file(newest, size / 2);

  const DriveOutcome out = drive(host, "s", architect);
  ASSERT_TRUE(out.completed);
  EXPECT_EQ(out.objective, expected.objective);
  EXPECT_EQ(logged_sequence(root.path, "s"),
            logged_sequence(ref_root.path, "s"));
}

TEST(ServeHost, TornAnswerLogTailTruncatedOnRehydrate) {
  // A crash can cut an answers.log append short, leaving a trailing
  // fragment with no newline. That answer was never acked: rehydration must
  // truncate the fragment from the file (not fuse the next append onto it
  // into one corrupt line) and re-present the interrupted query.
  const sketch::Sketch sk = test_sketch();
  const sketch::HoleAssignment target = target_for(5);

  TempRoot ref_root;
  HostConfig ref_cfg;
  ref_cfg.root = ref_root.path.string();
  SessionHost ref_host(ref_cfg);
  ref_host.register_sketch(test_sketch());
  ScriptedArchitect architect(sk, target);
  ASSERT_TRUE(ref_host.create(params_for("s", 81)).ok);
  const DriveOutcome expected = drive(ref_host, "s", architect);
  ASSERT_TRUE(expected.completed);
  ASSERT_GE(expected.answers, 3) << "sketch too easy to exercise the tear";

  TempRoot root;
  HostConfig hc;
  hc.root = root.path.string();
  SessionHost host(hc);
  host.register_sketch(test_sketch());
  ASSERT_TRUE(host.create(params_for("s", 81)).ok);
  for (int i = 0; i < 2; ++i) {
    SessionView view;
    ASSERT_TRUE(host.next("s", 30000, &view).ok);
    ASSERT_EQ(view.phase, SessionPhase::kWaiting);
    ASSERT_TRUE(host.answer("s", view.pending->index,
                            architect.judge(view.pending->a, view.pending->b))
                    .ok);
  }
  ASSERT_TRUE(host.evict("s").ok);

  // Simulate the torn append: a fragment of the next record, no newline.
  {
    std::ofstream out(root.path / "s" / "answers.log",
                      std::ios::app | std::ios::binary);
    out << "2|first|m=0.5";
  }

  // The disk-only inspect must not count the unacked fragment.
  SessionView swapped;
  ASSERT_TRUE(host.inspect("s", &swapped).ok);
  EXPECT_EQ(swapped.phase, SessionPhase::kSwapped);
  EXPECT_EQ(swapped.answers, 2);

  // Rehydration truncates the fragment and the session converges
  // identically; evicting after every answer proves the log stays
  // parseable across repeated rehydrations of the repaired file.
  const DriveOutcome out = drive(host, "s", architect, /*evict_every=*/1);
  ASSERT_TRUE(out.completed);
  EXPECT_EQ(out.objective, expected.objective);
  EXPECT_EQ(logged_sequence(root.path, "s"),
            logged_sequence(ref_root.path, "s"));
}

TEST(ServeHost, DoubleCreateRefusedEverywhere) {
  TempRoot root;
  HostConfig hc;
  hc.root = root.path.string();
  {
    SessionHost host(hc);
    host.register_sketch(test_sketch());
    ASSERT_TRUE(host.create(params_for("dup", 1)).ok);
    // Resident duplicate.
    HostResult r = host.create(params_for("dup", 1));
    EXPECT_FALSE(r.ok);
    EXPECT_EQ(r.code, kErrExists);
    // Swapped-out duplicate.
    ASSERT_TRUE(host.evict("dup").ok);
    r = host.create(params_for("dup", 1));
    EXPECT_FALSE(r.ok);
    EXPECT_EQ(r.code, kErrExists);
  }
  // Across a restart: a fresh host on the same root still refuses.
  SessionHost host2(hc);
  host2.register_sketch(test_sketch());
  const HostResult r = host2.create(params_for("dup", 1));
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(r.code, kErrExists);
}

TEST(ServeHost, AnswerValidation) {
  TempRoot root;
  HostConfig hc;
  hc.root = root.path.string();
  SessionHost host(hc);
  host.register_sketch(test_sketch());
  const sketch::Sketch sk = test_sketch();
  ScriptedArchitect architect(sk, target_for(2));

  EXPECT_EQ(host.answer("ghost", 0, oracle::Preference::kTie).code,
            kErrUnknownSession);
  EXPECT_EQ(host.evict("ghost").code, kErrUnknownSession);
  SessionView view;
  EXPECT_EQ(host.inspect("ghost", &view).code, kErrUnknownSession);

  ASSERT_TRUE(host.create(params_for("s", 61)).ok);
  ASSERT_TRUE(host.next("s", 30000, &view).ok);
  ASSERT_EQ(view.phase, SessionPhase::kWaiting);
  ASSERT_EQ(view.pending->index, 0);

  // Future index: refused with the expected one named.
  HostResult r = host.answer("s", 7, oracle::Preference::kFirst);
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(r.code, kErrIndex);

  const oracle::Preference answer =
      architect.judge(view.pending->a, view.pending->b);
  ASSERT_TRUE(host.answer("s", 0, answer).ok);
  // Duplicate delivery of an acked index: idempotent success, no state change.
  EXPECT_TRUE(host.answer("s", 0, answer).ok);
  // A contradictory re-delivery of an acked index is refused; the logged
  // answer stands.
  const oracle::Preference other = answer == oracle::Preference::kFirst
                                       ? oracle::Preference::kSecond
                                       : oracle::Preference::kFirst;
  r = host.answer("s", 0, other);
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(r.code, kErrAnswer);
  ASSERT_TRUE(host.next("s", 30000, &view).ok);
  if (view.phase == SessionPhase::kWaiting) {
    EXPECT_EQ(view.pending->index, 1);
  }
  EXPECT_EQ(logged_sequence(root.path, "s").size(), 1u);
}

TEST(ServeHost, LruBoundsResidencyWithoutChangingResults) {
  const sketch::Sketch sk = test_sketch();
  constexpr int kSessions = 6;

  // Unbounded reference host.
  TempRoot ref_root;
  HostConfig ref_cfg;
  ref_cfg.root = ref_root.path.string();
  ref_cfg.max_active = 0;
  SessionHost ref_host(ref_cfg);
  ref_host.register_sketch(test_sketch());
  std::vector<DriveOutcome> expected;
  for (int i = 0; i < kSessions; ++i) {
    const std::string id = "lru" + std::to_string(i);
    ASSERT_TRUE(ref_host.create(params_for(id, 70 + i)).ok);
    ScriptedArchitect architect(sk, target_for(i));
    expected.push_back(drive(ref_host, id, architect));
    ASSERT_TRUE(expected.back().completed);
  }

  // Two resident slots for six sessions, driven interleaved.
  TempRoot root;
  HostConfig hc;
  hc.root = root.path.string();
  hc.max_active = 2;
  SessionHost host(hc);
  host.register_sketch(test_sketch());
  std::vector<std::unique_ptr<ScriptedArchitect>> architects;
  architects.reserve(kSessions);
  for (int i = 0; i < kSessions; ++i) {
    const std::string id = "lru" + std::to_string(i);
    ASSERT_TRUE(host.create(params_for(id, 70 + i)).ok);
    architects.push_back(std::make_unique<ScriptedArchitect>(sk, target_for(i)));
  }
  std::vector<DriveOutcome> out(kSessions);
  bool live = true;
  for (int pass = 0; pass < 5000 && live; ++pass) {
    live = false;
    for (int i = 0; i < kSessions; ++i) {
      if (out[i].completed) continue;
      live = true;
      const std::string id = "lru" + std::to_string(i);
      SessionView view;
      ASSERT_TRUE(host.next(id, 30000, &view).ok);
      if (view.phase == SessionPhase::kDone) {
        out[i].objective = view.objective;
        out[i].completed = true;
        continue;
      }
      ASSERT_EQ(view.phase, SessionPhase::kWaiting) << view.error;
      ASSERT_TRUE(
          host.answer(id, view.pending->index,
                      architects[i]->judge(view.pending->a, view.pending->b))
              .ok);
    }
  }
  for (int i = 0; i < kSessions; ++i) {
    ASSERT_TRUE(out[i].completed) << "lru" << i;
    EXPECT_EQ(out[i].objective, expected[i].objective) << "lru" << i;
  }
  EXPECT_LE(host.stats().sessions_resident, 2);
  EXPECT_GT(host.stats().swaps, 0);
  EXPECT_GT(host.stats().rehydrations, 0);
}

TEST(ServeHost, KillResumeAcrossHosts) {
  // Host teardown mid-interaction (the in-process equivalent of kill-9 +
  // restart): a second host on the same root resumes every session to the
  // identical sequence and objective.
  const sketch::Sketch sk = test_sketch();
  constexpr int kSessions = 3;

  TempRoot ref_root;
  HostConfig ref_cfg;
  ref_cfg.root = ref_root.path.string();
  SessionHost ref_host(ref_cfg);
  ref_host.register_sketch(test_sketch());
  std::vector<DriveOutcome> expected;
  for (int i = 0; i < kSessions; ++i) {
    const std::string id = "kr" + std::to_string(i);
    ASSERT_TRUE(ref_host.create(params_for(id, 80 + i)).ok);
    ScriptedArchitect architect(sk, target_for(i + 1));
    expected.push_back(drive(ref_host, id, architect));
    ASSERT_TRUE(expected.back().completed);
  }

  TempRoot root;
  HostConfig hc;
  hc.root = root.path.string();
  {
    SessionHost host1(hc);
    host1.register_sketch(test_sketch());
    for (int i = 0; i < kSessions; ++i) {
      const std::string id = "kr" + std::to_string(i);
      ASSERT_TRUE(host1.create(params_for(id, 80 + i)).ok);
      ScriptedArchitect architect(sk, target_for(i + 1));
      for (int a = 0; a < 2; ++a) {
        SessionView view;
        ASSERT_TRUE(host1.next(id, 30000, &view).ok);
        ASSERT_EQ(view.phase, SessionPhase::kWaiting);
        ASSERT_TRUE(
            host1
                .answer(id, view.pending->index,
                        architect.judge(view.pending->a, view.pending->b))
                .ok);
      }
    }
  }  // host1 drains and dies with sessions parked mid-interaction

  SessionHost host2(hc);
  host2.register_sketch(test_sketch());
  for (int i = 0; i < kSessions; ++i) {
    const std::string id = "kr" + std::to_string(i);
    ScriptedArchitect architect(sk, target_for(i + 1));
    const DriveOutcome out = drive(host2, id, architect);
    ASSERT_TRUE(out.completed);
    EXPECT_EQ(out.objective, expected[i].objective);
    EXPECT_EQ(logged_sequence(root.path, id),
              logged_sequence(ref_root.path, id));
  }
}

}  // namespace
}  // namespace compsynth::serve
