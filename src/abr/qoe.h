// QoE-driven comparison of ABR algorithm portfolios.
//
// Runs a set of ABR policies over a set of traces, averages each policy's
// session metrics into one scenario, and lets a (learned) QoE objective pick
// the winner — the §6.2 workflow: the publisher learns a QoE function from
// preference feedback, then uses it to choose/configure the ABR algorithm.
#pragma once

#include <functional>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "abr/simulator.h"
#include "sketch/ast.h"

namespace compsynth::abr {

struct AbrCandidate {
  std::string label;
  SessionMetrics mean_metrics;  // averaged across traces
  pref::Scenario scenario;
};

/// A policy entry: a label plus a factory (algorithms are stateful per
/// session, so each simulation gets a fresh instance).
struct PortfolioEntry {
  std::string label;
  std::function<std::unique_ptr<AbrAlgorithm>()> make;
};

/// The four standard policies with default parameters.
std::vector<PortfolioEntry> standard_portfolio();

/// Simulates every portfolio entry over every trace; metrics are averaged
/// per entry across traces.
std::vector<AbrCandidate> evaluate_portfolio(
    const Video& video, std::span<const Trace> traces,
    std::span<const PortfolioEntry> portfolio, SimulatorConfig config = {});

/// Index of the candidate the objective ranks highest.
std::size_t pick_best(const sketch::Sketch& sketch,
                      const sketch::HoleAssignment& objective,
                      std::span<const AbrCandidate> candidates);

}  // namespace compsynth::abr
