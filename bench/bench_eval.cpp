// Microbenchmark for the sketch evaluators and the GridFinder version-space
// engine on the SWAN Table-1 workload (Fig. 2a sketch, Fig. 2b target).
//
// Configurations are compared at identical results (the survivor sets must
// match exactly or the bench fails):
//   tree            — recursive AST interpreter, single-threaded (seed code)
//   compiled        — flat-tape stack machine (sketch/compile.h), 1 thread
//   parallel        — compiled evaluator + thread-pool sharding
//   batched_scalar  — lane tape (sketch::BatchTape), scalar kernel, 1 thread
//   batched         — lane tape, dispatcher-selected kernel (SIMD where the
//                     host supports it), 1 thread — the production default
//   batched_parallel— lane tape + fixed-range shards on the pool
//   distributed     — the same fixed-range shards dispatched to two
//                     in-process compsynth workers over loopback TCP via
//                     dist::ShardCoordinator (docs/DISTRIBUTED.md); fails
//                     if the coordinator fell back to the local scan
// measuring raw evaluation throughput, a full version-space rebuild
// (GridFinder::sync from scratch over the 54,571-candidate SWAN grid) and an
// incremental filter after new answers arrive. The JSON records which lane
// ISA the dispatcher picked (lane_isa / lane_width) so numbers from
// different hosts are comparable; docs/EVALUATOR.md explains the engine.
//
// Usage:
//   bench_eval [--out PATH]   full run; writes BENCH_eval.json (default PATH)
//   bench_eval --smoke        quick correctness pass for CTest — exercises
//                             every code path (incl. under TSan/ASan builds),
//                             asserts the scalar and SIMD lane kernels return
//                             identical survivor sets, and fails on any
//                             mismatch, but does not time or write JSON.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "dist/coordinator.h"
#include "dist/worker.h"
#include "obs/metrics.h"
#include "obs/run_context.h"
#include "oracle/ground_truth.h"
#include "pref/graph.h"
#include "sketch/printer.h"
#include "sketch/compile.h"
#include "sketch/eval.h"
#include "sketch/library.h"
#include "solver/grid_finder.h"
#include "util/rng.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace compsynth::bench {
namespace {

using solver::EvalBackend;
using solver::GridFinder;
using solver::GridFinderConfig;

// Answers every pair touching a newly interned scenario, growing the graph
// append-only like the real interaction loop does.
void grow_graph(pref::PreferenceGraph& graph,
                std::vector<pref::VertexId>& vertices, int n_new,
                oracle::GroundTruthOracle& user, util::Rng& rng) {
  const sketch::Sketch& sk = sketch::swan_sketch();
  const std::size_t old_count = vertices.size();
  for (int i = 0; i < n_new; ++i) {
    pref::Scenario s;
    for (const auto& m : sk.metrics()) {
      s.metrics.push_back(rng.uniform_real(m.lo, m.hi));
    }
    vertices.push_back(graph.intern(s));
  }
  for (std::size_t j = old_count; j < vertices.size(); ++j) {
    for (std::size_t i = 0; i < j; ++i) {
      const auto pref = user.compare(graph.scenario(vertices[i]),
                                     graph.scenario(vertices[j]));
      if (pref == oracle::Preference::kFirst) {
        graph.add_preference(vertices[i], vertices[j]);
      } else if (pref == oracle::Preference::kSecond) {
        graph.add_preference(vertices[j], vertices[i]);
      } else {
        graph.add_tie(vertices[i], vertices[j]);
      }
    }
  }
}

// The seed's sync loop, reproduced verbatim as the baseline: recursive tree
// interpreter, both endpoint objectives recomputed for every edge and tie,
// no memoization across constraints. The new engine (GridFinder::sync) is
// measured against this, which is what the code did before compilation,
// memoization and sharding were introduced.
std::vector<sketch::HoleAssignment> legacy_tree_sync(
    const pref::PreferenceGraph& graph) {
  const sketch::Sketch& sk = sketch::swan_sketch();
  const double tie_bound = solver::FinderConfig{}.tie_tolerance + 1e-9;
  std::vector<sketch::HoleAssignment> survivors;
  sketch::HoleAssignment cursor;
  cursor.index.assign(sk.holes().size(), 0);
  for (;;) {
    const std::vector<double> values = sk.hole_values(cursor);
    bool ok = true;
    for (const pref::Edge& e : graph.edges()) {
      const double better = sketch::eval_with_values(
          sk, values, graph.scenario(e.better).metrics);
      const double worse = sketch::eval_with_values(
          sk, values, graph.scenario(e.worse).metrics);
      if (!(better > worse)) { ok = false; break; }
    }
    if (ok) {
      for (const auto& t : graph.ties()) {
        const double fu = sketch::eval_with_values(
            sk, values, graph.scenario(t.first).metrics);
        const double fv = sketch::eval_with_values(
            sk, values, graph.scenario(t.second).metrics);
        if (std::abs(fu - fv) > tie_bound) { ok = false; break; }
      }
    }
    if (ok) survivors.push_back(cursor);
    std::size_t pos = 0;
    while (pos < cursor.index.size()) {
      if (++cursor.index[pos] < sk.holes()[pos].count) break;
      cursor.index[pos] = 0;
      ++pos;
    }
    if (pos == cursor.index.size()) break;
  }
  return survivors;
}

GridFinder make_finder(EvalBackend backend, int threads) {
  GridFinderConfig config;
  config.eval_backend = backend;
  config.threads = threads;
  return GridFinder(sketch::swan_sketch(), config);
}

std::vector<sketch::HoleAssignment> assignments_of(const GridFinder& finder) {
  std::vector<sketch::HoleAssignment> out;
  out.reserve(finder.survivors().size());
  for (const solver::Survivor& s : finder.survivors()) {
    out.push_back(s.assignment);
  }
  return out;
}

// Best-of-reps wall time of one full sync from scratch. `threads_used_out`
// reports the executor count the sync actually engaged (the finder falls
// back to a serial pass when the work is too small to shard profitably, so
// this can be 1 even for the "parallel" configuration).
double time_full_sync(EvalBackend backend, int threads,
                      const pref::PreferenceGraph& graph, int reps,
                      std::vector<sketch::HoleAssignment>* survivors_out,
                      std::size_t* threads_used_out = nullptr) {
  double best = std::numeric_limits<double>::infinity();
  for (int r = 0; r < reps; ++r) {
    GridFinder finder = make_finder(backend, threads);
    util::Stopwatch watch;
    finder.sync(graph);
    best = std::min(best, watch.elapsed_seconds());
    if (survivors_out != nullptr && r == 0) *survivors_out = assignments_of(finder);
    if (threads_used_out != nullptr && r == 0) {
      *threads_used_out = finder.last_sync_threads();
    }
  }
  return best;
}

// Best-of-reps wall time of the incremental filter from `before` to `after`
// (`after` must extend `before` append-only).
double time_incremental_sync(EvalBackend backend, int threads,
                             const pref::PreferenceGraph& before,
                             const pref::PreferenceGraph& after, int reps,
                             std::vector<sketch::HoleAssignment>* survivors_out,
                             std::size_t* threads_used_out = nullptr) {
  double best = std::numeric_limits<double>::infinity();
  for (int r = 0; r < reps; ++r) {
    GridFinder finder = make_finder(backend, threads);
    finder.sync(before);
    util::Stopwatch watch;
    finder.sync(after);
    best = std::min(best, watch.elapsed_seconds());
    if (survivors_out != nullptr && r == 0) *survivors_out = assignments_of(finder);
    if (threads_used_out != nullptr && r == 0) {
      *threads_used_out = finder.last_sync_threads();
    }
  }
  return best;
}

// Best-of-reps wall time of one full sync dispatched over `n_workers`
// in-process dist::Worker servers (tcp:0) through a ShardCoordinator — the
// distributed row of the table (docs/DISTRIBUTED.md). The coordinator/wire
// overhead is measured for real: requests serialize the graph, responses
// carry CRC-guarded shard blobs, and the merge reproduces the local order.
// Fails the bench (returns a negative time) if any sync fell back locally,
// so the row can never silently report local numbers as distributed.
double time_full_sync_distributed(
    int n_workers, const pref::PreferenceGraph& graph, int reps,
    std::vector<sketch::HoleAssignment>* survivors_out) {
  obs::MetricsRegistry metrics;
  obs::RunContext obs;
  obs.metrics = &metrics;

  std::vector<std::unique_ptr<dist::Worker>> workers;
  dist::CoordinatorConfig cc;
  for (int i = 0; i < n_workers; ++i) {
    dist::WorkerConfig wc;
    wc.listen = "tcp:0";
    workers.push_back(std::make_unique<dist::Worker>(wc));
    workers.back()->start();
    cc.workers.push_back(workers.back()->endpoint());
  }
  cc.sketch_text = sketch::print_sketch(sketch::swan_sketch());
  cc.obs = obs;
  dist::ShardCoordinator coordinator(std::move(cc));

  double best = std::numeric_limits<double>::infinity();
  for (int r = 0; r < reps; ++r) {
    GridFinderConfig config;
    config.threads = 1;
    config.shard_backend = &coordinator;
    GridFinder finder(sketch::swan_sketch(), config);
    util::Stopwatch watch;
    finder.sync(graph);
    best = std::min(best, watch.elapsed_seconds());
    if (survivors_out != nullptr && r == 0) {
      *survivors_out = assignments_of(finder);
    }
  }
  for (auto& w : workers) {
    w->stop();
    w->wait();
  }
  if (metrics.counter("dist.fallbacks").value() != 0) return -1;
  return best;
}

// Raw evaluator throughput over (candidate, scenario) pairs, evals/second.
struct EvalThroughput {
  double tree = 0;
  double compiled = 0;
  double compiled_batched = 0;
  double lanes_scalar = 0;
  double lanes_dispatch = 0;  // 0 when the dispatcher's pick IS scalar
};

EvalThroughput measure_eval_throughput(int n_candidates, int n_scenarios,
                                       int reps) {
  const sketch::Sketch& sk = sketch::swan_sketch();
  const sketch::CompiledSketch compiled(sk);
  const sketch::BatchTape batch(sk);
  util::Rng rng(4242);

  std::vector<std::vector<double>> candidates;
  for (int c = 0; c < n_candidates; ++c) {
    sketch::HoleAssignment a;
    for (const auto& h : sk.holes()) a.index.push_back(rng.uniform_int(0, h.count - 1));
    candidates.push_back(sk.hole_values(a));
  }
  const std::size_t width = sk.metrics().size();
  std::vector<double> flat(static_cast<std::size_t>(n_scenarios) * width);
  for (double& v : flat) v = rng.uniform_real(0, 10);

  const double total_evals =
      static_cast<double>(n_candidates) * n_scenarios * reps;
  double sink = 0;  // defeats dead-code elimination

  util::Stopwatch tree_watch;
  for (int r = 0; r < reps; ++r) {
    for (const auto& holes : candidates) {
      for (int s = 0; s < n_scenarios; ++s) {
        sink += sketch::eval_with_values(
            sk, holes,
            std::span<const double>(flat).subspan(
                static_cast<std::size_t>(s) * width, width));
      }
    }
  }
  const double tree_seconds = tree_watch.elapsed_seconds();

  util::Stopwatch tape_watch;
  for (int r = 0; r < reps; ++r) {
    for (const auto& holes : candidates) {
      for (int s = 0; s < n_scenarios; ++s) {
        sink += compiled.eval(
            std::span<const double>(flat).subspan(
                static_cast<std::size_t>(s) * width, width),
            holes);
      }
    }
  }
  const double tape_seconds = tape_watch.elapsed_seconds();

  std::vector<double> out(static_cast<std::size_t>(n_scenarios));
  util::Stopwatch batch_watch;
  for (int r = 0; r < reps; ++r) {
    for (const auto& holes : candidates) {
      compiled.eval_many(flat, holes, out);
      sink += out[0];
    }
  }
  const double batch_seconds = batch_watch.elapsed_seconds();

  // Lane tape: candidates transposed into kBatchLaneWidth-wide SoA groups
  // (the tail group pads with the last candidate, its lanes discarded from
  // the eval count like GridFinder discards them from the survivor scan).
  constexpr std::size_t W = sketch::kBatchLaneWidth;
  const std::size_t n_groups = (candidates.size() + W - 1) / W;
  std::vector<std::vector<double>> groups_soa(n_groups);
  for (std::size_t g = 0; g < n_groups; ++g) {
    groups_soa[g].resize(sk.holes().size() * W);
    for (std::size_t l = 0; l < W; ++l) {
      const std::size_t c = std::min(g * W + l, candidates.size() - 1);
      for (std::size_t h = 0; h < sk.holes().size(); ++h) {
        groups_soa[g][h * W + l] = candidates[c][h];
      }
    }
  }
  double lane_out[W];
  sketch::LaneError lane_err[W];
  const auto time_lanes = [&](sketch::LaneIsa isa) -> double {
    if (!sketch::set_active_lane_isa(isa)) return 0;
    util::Stopwatch lane_watch;
    for (int r = 0; r < reps; ++r) {
      for (const auto& soa : groups_soa) {
        for (int s = 0; s < n_scenarios; ++s) {
          batch.eval_lanes(
              std::span<const double>(flat).subspan(
                  static_cast<std::size_t>(s) * width, width),
              soa, lane_out, lane_err);
          sink += lane_out[0];
        }
      }
    }
    return lane_watch.elapsed_seconds();
  };
  const sketch::LaneIsa detected = sketch::active_lane_isa();
  const double lanes_scalar_seconds = time_lanes(sketch::LaneIsa::kScalar);
  const double lanes_dispatch_seconds =
      detected == sketch::LaneIsa::kScalar ? 0 : time_lanes(detected);
  sketch::set_active_lane_isa(detected);

  if (sink == 42.0) std::cerr << "";  // keep `sink` observable

  EvalThroughput result;
  result.tree = total_evals / tree_seconds;
  result.compiled = total_evals / tape_seconds;
  result.compiled_batched = total_evals / batch_seconds;
  result.lanes_scalar = total_evals / lanes_scalar_seconds;
  result.lanes_dispatch = lanes_dispatch_seconds > 0
                              ? total_evals / lanes_dispatch_seconds
                              : 0;
  return result;
}

int run(bool smoke, const std::string& out_path) {
  const int initial_scenarios = smoke ? 6 : 16;
  const int extra_scenarios = smoke ? 4 : 6;
  const int reps = smoke ? 1 : 5;

  oracle::GroundTruthOracle user(sketch::swan_sketch(), sketch::swan_target());
  util::Rng rng(20190101);
  pref::PreferenceGraph graph;
  std::vector<pref::VertexId> vertices;
  grow_graph(graph, vertices, initial_scenarios, user, rng);
  const pref::PreferenceGraph before = graph;  // snapshot for incremental runs
  grow_graph(graph, vertices, extra_scenarios, user, rng);

  const std::int64_t candidates =
      sketch::swan_sketch().candidate_space_size();
  const sketch::LaneIsa detected = sketch::active_lane_isa();
  const char* lane_isa = sketch::lane_isa_name(detected);
  std::cout << "workload: SWAN Table-1 grid (" << candidates << " candidates), "
            << before.edges().size() << "+"
            << (graph.edges().size() - before.edges().size()) << " edges, "
            << before.ties().size() << "+"
            << (graph.ties().size() - before.ties().size()) << " ties, lane ISA "
            << lane_isa << " x" << sketch::kBatchLaneWidth << "\n";

  // --- Full rebuild ---------------------------------------------------------
  std::vector<sketch::HoleAssignment> ref;
  double baseline = std::numeric_limits<double>::infinity();
  for (int r = 0; r < reps; ++r) {
    util::Stopwatch watch;
    std::vector<sketch::HoleAssignment> got = legacy_tree_sync(before);
    baseline = std::min(baseline, watch.elapsed_seconds());
    if (r == 0) ref = std::move(got);
  }

  std::vector<sketch::HoleAssignment> got_tree, got_seq, got_par;
  std::size_t full_parallel_threads = 1;
  const double full_tree =
      time_full_sync(EvalBackend::kTree, 1, before, reps, &got_tree);
  const double full_compiled =
      time_full_sync(EvalBackend::kCompiled, 1, before, reps, &got_seq);
  const double full_parallel = time_full_sync(
      EvalBackend::kCompiled, 0, before, reps, &got_par, &full_parallel_threads);

  // The lane-dispatch assertion: the scalar and SIMD kernels must produce
  // the identical survivor set (they are bit-for-bit the same arithmetic),
  // checked in every mode including --smoke so CTest guards the dispatch.
  std::vector<sketch::HoleAssignment> got_batch_scalar, got_batch, got_batch_par;
  std::size_t batch_parallel_threads = 1;
  sketch::set_active_lane_isa(sketch::LaneIsa::kScalar);
  const double full_batch_scalar =
      time_full_sync(EvalBackend::kBatch, 1, before, reps, &got_batch_scalar);
  sketch::set_active_lane_isa(detected);
  const double full_batch =
      time_full_sync(EvalBackend::kBatch, 1, before, reps, &got_batch);
  const double full_batch_par =
      time_full_sync(EvalBackend::kBatch, 0, before, reps, &got_batch_par,
                     &batch_parallel_threads);

  // The distributed row: the same full sync through a ShardCoordinator and
  // two in-process workers over loopback TCP. Included in --smoke so CTest
  // continuously proves the remote merge lands on the identical survivors.
  constexpr int kDistWorkers = 2;
  std::vector<sketch::HoleAssignment> got_dist;
  const double full_dist =
      time_full_sync_distributed(kDistWorkers, before, reps, &got_dist);
  if (full_dist < 0) {
    std::cerr << "FAIL: distributed sync fell back to the local scan\n";
    return 1;
  }

  if (got_tree != ref || got_seq != ref || got_par != ref) {
    std::cerr << "FAIL: survivor sets differ across configurations\n";
    return 1;
  }
  if (got_batch_scalar != ref || got_batch != ref || got_batch_par != ref) {
    std::cerr << "FAIL: batched survivor sets differ (lane ISA " << lane_isa
              << ")\n";
    return 1;
  }
  if (got_dist != ref) {
    std::cerr << "FAIL: distributed survivor set differs from local\n";
    return 1;
  }
  std::cout << "full sync       seed-tree " << baseline << " s, tree(memo) "
            << full_tree << " s, compiled " << full_compiled
            << " s, parallel " << full_parallel << " s, batched(scalar) "
            << full_batch_scalar << " s, batched(" << lane_isa << ") "
            << full_batch << " s, batched+shards " << full_batch_par
            << " s, distributed(" << kDistWorkers << "w) " << full_dist
            << " s  (" << ref.size() << " survivors; speedup "
            << baseline / full_batch << "x vs seed, "
            << full_compiled / full_batch << "x vs compiled)\n";

  // --- Incremental filter ---------------------------------------------------
  std::vector<sketch::HoleAssignment> inc_ref, inc_seq, inc_par;
  std::size_t inc_parallel_threads = 1;
  const double inc_tree = time_incremental_sync(EvalBackend::kTree, 1, before,
                                                graph, reps, &inc_ref);
  const double inc_compiled = time_incremental_sync(
      EvalBackend::kCompiled, 1, before, graph, reps, &inc_seq);
  const double inc_parallel =
      time_incremental_sync(EvalBackend::kCompiled, 0, before, graph, reps,
                            &inc_par, &inc_parallel_threads);
  std::vector<sketch::HoleAssignment> inc_batch_scalar, inc_batch, inc_batch_par;
  sketch::set_active_lane_isa(sketch::LaneIsa::kScalar);
  const double inc_batch_scalar_s = time_incremental_sync(
      EvalBackend::kBatch, 1, before, graph, reps, &inc_batch_scalar);
  sketch::set_active_lane_isa(detected);
  const double inc_batch_s = time_incremental_sync(
      EvalBackend::kBatch, 1, before, graph, reps, &inc_batch);
  const double inc_batch_par_s = time_incremental_sync(
      EvalBackend::kBatch, 0, before, graph, reps, &inc_batch_par);
  if (inc_seq != inc_ref || inc_par != inc_ref) {
    std::cerr << "FAIL: incremental survivor sets differ across configurations\n";
    return 1;
  }
  if (inc_batch_scalar != inc_ref || inc_batch != inc_ref ||
      inc_batch_par != inc_ref) {
    std::cerr << "FAIL: incremental batched survivor sets differ (lane ISA "
              << lane_isa << ")\n";
    return 1;
  }
  std::cout << "incremental     tree " << inc_tree << " s, compiled "
            << inc_compiled << " s, parallel " << inc_parallel
            << " s, batched(scalar) " << inc_batch_scalar_s << " s, batched("
            << lane_isa << ") " << inc_batch_s << " s, batched+shards "
            << inc_batch_par_s << " s  (" << inc_ref.size() << " survivors)\n";

  if (smoke) {
    std::cout << "smoke: all configurations agree (lane ISA " << lane_isa
              << " vs scalar included)\n";
    return 0;
  }

  // --- Raw evaluator throughput --------------------------------------------
  const EvalThroughput throughput = measure_eval_throughput(
      /*n_candidates=*/64, /*n_scenarios=*/512, /*reps=*/8);
  std::cout << "eval throughput tree " << throughput.tree / 1e6
            << " Me/s, compiled " << throughput.compiled / 1e6
            << " Me/s, batched " << throughput.compiled_batched / 1e6
            << " Me/s, lanes(scalar) " << throughput.lanes_scalar / 1e6
            << " Me/s, lanes(" << lane_isa << ") "
            << throughput.lanes_dispatch / 1e6 << " Me/s\n";

  const double sync_speedup = baseline / full_batch;
  const double speedup_vs_compiled = full_compiled / full_batch;
  std::ofstream json(out_path);
  if (!json) {
    std::cerr << "FAIL: cannot write " << out_path << "\n";
    return 1;
  }
  json << "{\n"
       << "  \"bench\": \"eval\",\n"
       << "  \"workload\": \"swan_table1\",\n"
       << "  \"candidates\": " << candidates << ",\n"
       << "  \"edges\": " << graph.edges().size() << ",\n"
       << "  \"ties\": " << graph.ties().size() << ",\n"
       << "  \"lane_isa\": \"" << lane_isa << "\",\n"
       << "  \"lane_width\": " << sketch::kBatchLaneWidth << ",\n"
       << "  \"threads_available\": " << util::ThreadPool::shared().size()
       << ",\n"
       << "  \"threads_used\": {\n"
       << "    \"full_parallel\": " << full_parallel_threads << ",\n"
       << "    \"batched_parallel\": " << batch_parallel_threads << ",\n"
       << "    \"incremental_parallel\": " << inc_parallel_threads << "\n"
       << "  },\n"
       << "  \"reps\": " << reps << ",\n"
       << "  \"eval_throughput_per_sec\": {\n"
       << "    \"tree\": " << throughput.tree << ",\n"
       << "    \"compiled\": " << throughput.compiled << ",\n"
       << "    \"compiled_batched\": " << throughput.compiled_batched << ",\n"
       << "    \"lanes_scalar\": " << throughput.lanes_scalar << ",\n"
       << "    \"lanes_dispatch\": " << throughput.lanes_dispatch << "\n"
       << "  },\n"
       << "  \"sync_full_seconds\": {\n"
       << "    \"tree_seed_baseline\": " << baseline << ",\n"
       << "    \"tree_memoized\": " << full_tree << ",\n"
       << "    \"compiled\": " << full_compiled << ",\n"
       << "    \"parallel\": " << full_parallel << ",\n"
       << "    \"batched_scalar\": " << full_batch_scalar << ",\n"
       << "    \"batched\": " << full_batch << ",\n"
       << "    \"batched_parallel\": " << full_batch_par << ",\n"
       << "    \"distributed_2_workers\": " << full_dist << "\n"
       << "  },\n"
       << "  \"sync_incremental_seconds\": {\n"
       << "    \"tree\": " << inc_tree << ",\n"
       << "    \"compiled\": " << inc_compiled << ",\n"
       << "    \"parallel\": " << inc_parallel << ",\n"
       << "    \"batched_scalar\": " << inc_batch_scalar_s << ",\n"
       << "    \"batched\": " << inc_batch_s << ",\n"
       << "    \"batched_parallel\": " << inc_batch_par_s << "\n"
       << "  },\n"
       << "  \"sync_full_speedup_vs_seed_tree\": " << sync_speedup << ",\n"
       << "  \"sync_full_speedup_vs_compiled\": " << speedup_vs_compiled
       << ",\n"
       << "  \"survivor_sets_identical\": true,\n"
       << "  \"meets_5x_target\": "
       << (speedup_vs_compiled >= 5.0 ? "true" : "false") << "\n}\n";
  std::cout << "wrote " << out_path << " (sync speedup " << sync_speedup
            << "x vs tree, " << speedup_vs_compiled << "x vs compiled)\n";
  return 0;
}

}  // namespace
}  // namespace compsynth::bench

int main(int argc, char** argv) {
  bool smoke = false;
  std::string out_path = "BENCH_eval.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::cerr << "usage: bench_eval [--smoke] [--out PATH]\n";
      return 2;
    }
  }
  return compsynth::bench::run(smoke, out_path);
}
