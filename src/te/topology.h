// WAN topology model for the traffic-engineering substrate (paper §2).
//
// A directed graph of point-of-presence nodes connected by capacitated,
// latency-weighted links. The paper's motivating setting is a SWAN/B4-style
// inter-datacenter WAN; since production topologies are proprietary, we ship
// an Abilene-like reference topology plus a random-WAN generator (see
// DESIGN.md "Substitutions").
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "util/rng.h"

namespace compsynth::te {

using NodeId = std::size_t;
using LinkId = std::size_t;

struct Node {
  std::string name;
};

/// A directed link. For bidirectional physical links add both directions.
struct Link {
  NodeId from = 0;
  NodeId to = 0;
  double capacity_gbps = 0;
  double latency_ms = 0;
};

/// An immutable-after-build directed network.
class Topology {
 public:
  NodeId add_node(std::string name);

  /// Adds a directed link; throws std::invalid_argument on unknown endpoints
  /// or non-positive capacity.
  LinkId add_link(NodeId from, NodeId to, double capacity_gbps, double latency_ms);

  /// Adds both directions with the same capacity and latency.
  void add_duplex_link(NodeId a, NodeId b, double capacity_gbps, double latency_ms);

  std::size_t node_count() const { return nodes_.size(); }
  std::size_t link_count() const { return links_.size(); }
  const Node& node(NodeId id) const { return nodes_.at(id); }
  const Link& link(LinkId id) const { return links_.at(id); }
  const std::vector<Link>& links() const { return links_; }

  /// Outgoing link ids of a node.
  const std::vector<LinkId>& out_links(NodeId id) const { return out_.at(id); }

  /// True when every node can reach every other node.
  bool strongly_connected() const;

 private:
  std::vector<Node> nodes_;
  std::vector<Link> links_;
  std::vector<std::vector<LinkId>> out_;
};

/// The 11-node Abilene research backbone (classic TE evaluation topology),
/// with duplex links, ~10 Gbps trunk capacities and geographic latencies.
Topology abilene();

/// A random strongly-connected WAN: a ring backbone (guaranteeing
/// connectivity) plus `extra_links` random chords; capacities in
/// [min_capacity, max_capacity] Gbps and latencies in [1, 40] ms.
Topology random_wan(util::Rng& rng, std::size_t nodes, std::size_t extra_links,
                    double min_capacity = 2.0, double max_capacity = 10.0);

/// The classic Waxman random-graph model: nodes are placed uniformly in the
/// unit square and each node pair gets a duplex link with probability
/// `alpha * exp(-distance / (beta * sqrt(2)))`. Link latency is proportional
/// to Euclidean distance (scaled so the square's diagonal is
/// `diagonal_latency_ms`), which gives geographically plausible latencies.
/// A minimum-latency ring is added first so the result is always strongly
/// connected.
Topology waxman_wan(util::Rng& rng, std::size_t nodes, double alpha = 0.4,
                    double beta = 0.4, double min_capacity = 2.0,
                    double max_capacity = 10.0,
                    double diagonal_latency_ms = 60.0);

/// A gravity-model demand matrix: each node gets a lognormal "population"
/// weight w_i, and the demand between i and j is proportional to w_i * w_j,
/// normalized so all demands sum to `total_demand_gbps`. Returns the
/// `top_pairs` largest demands as flows (the classic TE workload model).
struct Demand {
  NodeId src = 0;
  NodeId dst = 0;
  double demand_gbps = 0;
};
std::vector<Demand> gravity_demands(const Topology& topo, util::Rng& rng,
                                    double total_demand_gbps,
                                    std::size_t top_pairs);

}  // namespace compsynth::te
