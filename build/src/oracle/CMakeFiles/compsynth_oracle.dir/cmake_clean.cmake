file(REMOVE_RECURSE
  "CMakeFiles/compsynth_oracle.dir/ground_truth.cpp.o"
  "CMakeFiles/compsynth_oracle.dir/ground_truth.cpp.o.d"
  "CMakeFiles/compsynth_oracle.dir/oracle.cpp.o"
  "CMakeFiles/compsynth_oracle.dir/oracle.cpp.o.d"
  "CMakeFiles/compsynth_oracle.dir/variants.cpp.o"
  "CMakeFiles/compsynth_oracle.dir/variants.cpp.o.d"
  "libcompsynth_oracle.a"
  "libcompsynth_oracle.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compsynth_oracle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
