// Solver-free candidate finder over the explicit hole grid.
//
// Maintains the version space — the set of hole assignments consistent with
// the preference graph — explicitly, shrinking it incrementally as edges and
// ties arrive. Distinguishing scenario pairs are found by sampling the
// (continuous) metric box plus a structured sweep near the candidates'
// decision boundaries.
//
// The engine is built for bulk scoring: sketches are lowered once to a flat
// instruction tape (sketch/compile.h) instead of re-walking the AST per
// evaluation, the initial grid enumeration and the incremental filter are
// sharded across a thread pool (util/thread_pool.h), each survivor's hole
// values are materialized once, and survivors memoize their objective value
// at every interned graph vertex so re-filtering after new answers touches
// only the new edges. bench/bench_eval.cpp tracks the speedup over the tree
// interpreter; tests/compile_test.cpp proves backend equivalence.
//
// Compared to Z3Finder:
//   + no SMT dependency, trivially debuggable, very fast per query;
//   - its "unique ranking" verdict is approximate (based on a sampling
//     budget rather than a proof), so it may stop early on adversarial
//     sketches. The differential tests quantify this.
// It is the "search loop" baseline the repro notes anticipate, and the
// ablation bench (bench_ablation_solver) compares the two head to head.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "sketch/compile.h"
#include "solver/finder.h"
#include "solver/shard_sync.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace compsynth::solver {

/// How the finder picks which distinguishing pair to ask the user about.
enum class QueryStrategy {
  /// First disagreement found between a random candidate pair — mirrors the
  /// paper's Z3 behaviour, where the solver returns an arbitrary witness.
  kFirstFound,
  /// Active learning: examine several disagreement witnesses and ask about
  /// the one whose answer splits the surviving version space most evenly,
  /// maximizing the information per user interaction.
  kBisection,
};

/// Which evaluator scores candidates during sync. All three are semantically
/// identical bit-for-bit (differentially tested); kTree exists as the
/// reference baseline and kCompiled as the scalar perf comparison in
/// bench_eval. kBatch — the default — evaluates kBatchLaneWidth candidates
/// per tape pass (SIMD where the host supports it, see docs/EVALUATOR.md)
/// and syncs the version space in fixed-range shards.
enum class EvalBackend {
  kTree,      // recursive AST interpreter (sketch/eval.h)
  kCompiled,  // flat-tape stack machine, one candidate at a time
  kBatch,     // structure-of-arrays lane tape (sketch::BatchTape)
};

struct GridFinderConfig {
  FinderConfig base;
  /// Random scenario pairs examined per candidate pair when hunting for a
  /// distinguishing input.
  int scenario_samples = 512;
  /// Candidate pairs examined before concluding (approximately) that all
  /// survivors rank identically.
  int candidate_pair_budget = 64;
  QueryStrategy strategy = QueryStrategy::kFirstFound;
  /// Disagreement witnesses scored per iteration under kBisection.
  int bisection_samples = 12;
  std::uint64_t seed = 0x5eed;
  EvalBackend eval_backend = EvalBackend::kBatch;
  /// Worker threads for sync / filtering / bisection scoring: 0 = the
  /// process-wide shared pool, 1 = fully sequential, N > 1 = a dedicated
  /// pool of N. Any Viability::concrete callback must be thread-safe when
  /// this is not 1 (it is invoked concurrently from the pool).
  int threads = 0;
  /// Use the sketch static analyzer (sketch/analyze.h) to cut work out of
  /// full version-space rebuilds: hole dimensions the body never reads are
  /// enumerated once and replicated, and index sub-boxes whose interval
  /// evaluation refutes some edge/tie are discarded without enumerating
  /// them. Guaranteed to produce the identical survivor sequence as the
  /// plain enumeration (tests/prune_differential_test.cpp); off switches
  /// back to the exhaustive scan. Applies to kTree/kCompiled only: the
  /// kBatch engine always runs the sharded exhaustive scan, because
  /// interval refutation costs more than it saves at lane-tape speeds
  /// (measured — docs/EVALUATOR.md §Why kBatch skips analysis pruning).
  bool analysis_pruning = true;
  /// Distribution seam (non-owning; must outlive the finder): when set and
  /// the kBatch backend performs a *full* rebuild with no Viability callback
  /// (callbacks cannot cross the wire), sync() asks the backend to compute
  /// the fixed-range shards remotely and merges the returned records. Any
  /// backend failure — nullopt, a torn/malformed record, a range mismatch —
  /// falls back to the local scan, so a configured backend can only change
  /// where the work runs, never whether the sync completes or what it
  /// produces (docs/DISTRIBUTED.md §Equivalence). Incremental filters
  /// always run locally (they mutate survivor memos in place).
  ShardSyncBackend* shard_backend = nullptr;
};

/// One version-space member plus everything the engine caches for it.
struct Survivor {
  sketch::HoleAssignment assignment;
  /// assignment mapped through the hole grids, computed exactly once.
  std::vector<double> hole_values;
  /// Objective value at each interned graph vertex, filled lazily (NaN =
  /// not computed yet). Vertices are immutable once interned, so entries
  /// never need invalidation; incremental filtering only evaluates vertices
  /// first referenced by new edges/ties.
  std::vector<double> vertex_values;
  /// Linear candidate index over the hole grid (index 0 fastest-varying,
  /// see GridFinder::assignment_at). survivors_ is always sorted ascending
  /// by this, so fixed-range shards are contiguous subranges and the
  /// serialized per-shard bitmaps partition the survivor set.
  std::int64_t linear = -1;
};

class GridFinder final : public CandidateFinder {
 public:
  explicit GridFinder(sketch::Sketch sketch, GridFinderConfig config = {},
                      Viability viability = {}, ScenarioDomain domain = {});

  FinderResult find_distinguishing(const pref::PreferenceGraph& graph,
                                   int num_pairs) override;

  std::optional<sketch::HoleAssignment> find_consistent(
      const pref::PreferenceGraph& graph) override;

  /// Brings the version space in line with `graph`: full (parallel) grid
  /// enumeration on first use or after the graph shrank, incremental filter
  /// over the new edges/ties otherwise. Idempotent; exposed so benches and
  /// tests can drive/measure it directly.
  void sync(const pref::PreferenceGraph& graph);

  /// Survivors consistent with the most recently seen graph state.
  std::size_t version_space_size() const { return survivors_.size(); }
  const std::vector<Survivor>& survivors() const { return survivors_; }

  /// Executor threads / shards the most recent sync() actually used (1 when
  /// the work was too small to shard and ran serially — see the work-size
  /// thresholds in grid_finder.cpp). Under kBatch the shard count is the
  /// fixed-range geometry (shard_span), which holds even when the scan runs
  /// serially; only the thread count drops to 1 then. Reported by
  /// bench_eval so regressions from parallel overhead on small workloads
  /// are visible in the JSON.
  std::size_t last_sync_threads() const { return last_sync_threads_; }
  std::size_t last_sync_shards() const { return last_sync_shards_; }

  /// Cooperative cancellation for portfolio racing (non-owning; nullptr
  /// disables). find_distinguishing polls the flag between candidate pairs
  /// and returns kUnknown promptly once it flips; sync() always runs to
  /// completion so the version space stays consistent. A cancelled search
  /// still advances the pair-search RNG by however many pairs it examined,
  /// so race-mode runs are not replay-deterministic (docs/SOLVER.md
  /// §Portfolio). Not part of save_state.
  void set_cancel_flag(const std::atomic<bool>* cancel) { cancel_ = cancel; }

  /// Durable-session persistence: the pair-search RNG stream, the sync
  /// cursors (edges/ties already folded into the version space) and the
  /// survivor set as per-shard bitmaps over linear candidate indices
  /// (format v2; self-describing `shard <k> <lo> <hi>` ranges so a future
  /// multi-worker split can emit one shard per worker with no format
  /// change — docs/EVALUATOR.md §Shard state). v1 single-bitmap blobs from
  /// older snapshots still restore. Survivor hole values are
  /// re-materialized from the grid on restore and the per-vertex objective
  /// memoization is rebuilt lazily (deterministic), so a restored finder
  /// continues the identical query sequence.
  std::string save_state() const override;
  void restore_state(const std::string& state) override;

  /// One decoded `shard <k> <lo> <hi> <count> <hex>` record: the range, and
  /// the surviving linear candidate indices in ascending order.
  struct ParsedShardBlob {
    std::size_t index = 0;
    std::int64_t lo = 0;
    std::int64_t hi = 0;
    std::vector<std::int64_t> linears;
  };

  /// Parses and structurally validates one serialized shard record (the
  /// per-shard line of the `gridfinder 2` format and the dist wire blob —
  /// docs/EVALUATOR.md §Shard state). Throws std::invalid_argument with a
  /// specific reason on any damage: truncation mid-bitmap, a bitmap whose
  /// length disagrees with [lo, hi), non-hex bytes, or a `count` field that
  /// disagrees with the bitmap's population. Shared by restore_state, the
  /// remote-merge path and the dist coordinator's response validation, so a
  /// torn blob is rejected identically at every layer.
  static ParsedShardBlob parse_shard_blob(const std::string& record);

  /// Renders the inverse: linears must lie in [lo, hi) ascending.
  static std::string encode_shard_blob(std::size_t index, std::int64_t lo,
                                       std::int64_t hi,
                                       const std::vector<std::int64_t>& linears);

  /// The machine-independent fixed-range shard list for this sketch's
  /// candidate space — exactly the geometry a full kBatch sync uses.
  std::vector<ShardRange> shard_ranges() const;

  /// Computes one shard of a full kBatch sync against `graph` and returns
  /// its serialized record. Pure: reads only immutable members (the sketch,
  /// tapes and config), so concurrent calls — the worker side of a
  /// distributed sync — are safe. Lane evaluation errors propagate as the
  /// local scan would throw them.
  std::string sync_shard_blob(const pref::PreferenceGraph& graph,
                              std::size_t index, std::int64_t lo,
                              std::int64_t hi) const;

 private:
  bool consistent(Survivor& s, const pref::PreferenceGraph& graph,
                  std::size_t first_edge, std::size_t first_tie) const;
  /// The survivor's objective at vertex `v`, memoized in vertex_values.
  double value_at(Survivor& s, const pref::PreferenceGraph& graph,
                  pref::VertexId v) const;
  /// One evaluation through the configured backend.
  double objective(std::span<const double> hole_values,
                   std::span<const double> metrics) const;
  /// Batched evaluation of many scenarios under one candidate.
  std::vector<double> objective_batch(
      std::span<const double> hole_values,
      const std::vector<pref::Scenario>& scenarios) const;
  /// Decodes a linear candidate index into a hole assignment (index 0 is
  /// the fastest-varying digit, matching odometer order).
  sketch::HoleAssignment assignment_at(std::int64_t linear) const;
  /// Full enumeration of grid candidates [lo, hi) (linear indices),
  /// appending survivors in order.
  void enumerate_range(std::int64_t lo, std::int64_t hi,
                       const pref::PreferenceGraph& graph,
                       std::vector<Survivor>& out) const;
  /// Per-shard evaluation tallies, summed into the grid_sync trace event.
  struct BatchCounters {
    long long lane_evals = 0;  // lanes pushed through BatchTape::eval_lanes
    long long groups = 0;      // kLaneWidth-candidate groups formed
  };
  /// Fixed-range shard width for `total` candidates. A pure function of the
  /// candidate-space size — never of thread count — so shard geometry (and
  /// therefore the serialized per-shard state) is machine-independent.
  static std::int64_t shard_span(std::int64_t total);
  /// kBatch full rebuild of one shard: enumerates [lo, hi) in
  /// kBatchLaneWidth groups through the lane tape, appending survivors in
  /// order. Sequence and error behaviour are bit-for-bit those of
  /// enumerate_range (lane errors re-thrown in candidate order).
  void enumerate_range_batch(std::int64_t lo, std::int64_t hi,
                             const pref::PreferenceGraph& graph,
                             std::vector<Survivor>& out,
                             BatchCounters& counters) const;
  /// kBatch incremental filter of survivors_[lo, hi) (one shard's
  /// contiguous position range) against the new edges/ties: writes keep
  /// flags and refreshes kept survivors' vertex memos. Mutates only this
  /// range's survivors and keep slots, so shards run in parallel without
  /// shared mutable state.
  void filter_range_batch(std::size_t lo, std::size_t hi,
                          const pref::PreferenceGraph& graph,
                          std::vector<char>& keep, BatchCounters& counters);
  /// Analysis-driven full rebuild (see GridFinderConfig::analysis_pruning):
  /// branch-and-prune over index sub-boxes plus degenerate-dimension
  /// replication. Returns false when there is nothing to exploit (caller
  /// falls back to the exhaustive scan); on true, survivors_ holds exactly
  /// the sequence the exhaustive scan would have produced.
  bool rebuild_pruned(const pref::PreferenceGraph& graph);
  /// Remote full rebuild through config_.shard_backend: dispatches the
  /// fixed-range shards, decodes + merges the returned records into
  /// survivors_ in shard order. Returns false (leaving survivors_ empty,
  /// exactly as the local path expects it) when the backend declines or any
  /// record fails validation — the caller then runs the local scan.
  bool rebuild_remote(const pref::PreferenceGraph& graph,
                      std::size_t n_shards, std::int64_t span_len,
                      std::int64_t total);
  /// Rebuilds a Survivor (assignment + hole values, empty vertex memos —
  /// value_at refills them deterministically) from its linear index.
  Survivor materialize_survivor(std::int64_t linear) const;
  std::vector<double> boundary_values(std::span<const double> hole_values,
                                      std::size_t metric) const;
  std::optional<DistinguishingPair> distinguish(const Survivor& a,
                                                const Survivor& b);
  /// The pool to shard work over, or nullptr when configured sequential.
  util::ThreadPool* pool() const;

  sketch::Sketch sketch_;
  sketch::CompiledSketch compiled_;  // must follow sketch_ (init order)
  sketch::BatchTape batch_;          // must follow sketch_ (init order)
  /// Which holes the body actually reads (sketch::used_holes), computed
  /// once; unread dimensions are candidates for pinning + replication.
  std::vector<bool> hole_used_;
  GridFinderConfig config_;
  Viability viability_;
  ScenarioDomain domain_;
  util::Rng rng_;
  std::unique_ptr<util::ThreadPool> own_pool_;  // when config_.threads > 1

  // Shard state. GridFinder holds no mutex: parallel_for shards write only
  // their own slots of pre-sized output vectors (never these members), and
  // every member write below happens on the caller's thread either before
  // the shards are submitted or after parallel_for's completion barrier —
  // the pool's own synchronization publishes them. The only cross-thread
  // member is cancel_, a pointer to the caller-owned atomic, set strictly
  // before (and cleared strictly after) the racing search it cancels.
  std::vector<Survivor> survivors_;
  bool initialized_ = false;
  std::size_t edges_seen_ = 0;
  std::size_t ties_seen_ = 0;
  std::size_t last_sync_threads_ = 1;
  std::size_t last_sync_shards_ = 1;
  const std::atomic<bool>* cancel_ = nullptr;

  bool cancelled() const {
    return cancel_ != nullptr && cancel_->load(std::memory_order_relaxed);
  }
};

}  // namespace compsynth::solver
