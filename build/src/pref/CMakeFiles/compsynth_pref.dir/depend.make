# Empty dependencies file for compsynth_pref.
# This may be replaced when dependencies are built.
