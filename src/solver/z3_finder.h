// The paper's SMT-backed candidate finder (native Z3 C++ API).
//
// Encodes exactly the §4.2 query:
//
//   exists fa, fb, s1, s2 .
//        Viable(fa) /\ Viable(fb)
//     /\ for every edge (u > v) in G:  fa(u) > fa(v)  /\  fb(u) > fb(v)
//     /\ fa(s1) > fa(s2)  /\  fb(s2) > fb(s1)        (with margin)
//     /\ ClosedInRange(s1) /\ ClosedInRange(s2)
//
// Hole variables are reals constrained to their finite grids (pure QF_NRA),
// so UNSAT exactly means "all viable G-consistent candidates induce the same
// margin-separated ranking" and synthesis can stop.
//
// Acceleration layer (docs/SOLVER.md): queries go through four filters, each
// transparent to the verdict/model sequence —
//   1. SolverCache replay of previously solved (sketch, G, domain) queries;
//   2. interval pre-checks that discharge provably-UNSAT queries without Z3;
//   3. incremental encodings kept alive across iterations via push/pop,
//      asserting only the preference graph's new constraints each round;
//   4. (one level up) solver/portfolio_finder.h races this finder against
//      GridFinder and cancels the loser through interrupt().
#pragma once

#include <atomic>
#include <iosfwd>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "sketch/analyze.h"
#include "solver/finder.h"
#include "util/sync.h"
#include "util/thread_annotations.h"

namespace z3 {
class context;  // from z3++.h; kept out of this header deliberately
class solver;
}

namespace compsynth::solver {

class SolverCache;

class Z3Finder final : public CandidateFinder {
 public:
  /// Binds the finder to a sketch (copied; sketches are cheap shared-body
  /// values). `viability.concrete` is enforced via model blocking, which is
  /// sound and complete over the finite hole grid.
  explicit Z3Finder(sketch::Sketch sketch, FinderConfig config = {},
                    Viability viability = {}, ScenarioDomain domain = {});
  ~Z3Finder() override;

  FinderResult find_distinguishing(const pref::PreferenceGraph& graph,
                                   int num_pairs) override;

  std::optional<sketch::HoleAssignment> find_consistent(
      const pref::PreferenceGraph& graph) override;

  /// Number of solver checks issued so far (for benchmarking/diagnostics).
  /// Cache replays and interval pre-check discharges do not count — no
  /// check was issued.
  long query_count() const { return query_count_; }

  /// Streams every emitted query as SMT-LIB2 text to `log` (nullptr
  /// disables). Useful for debugging encodings and replaying queries with
  /// other solvers. The stream must outlive the finder.
  void set_query_log(std::ostream* log) { query_log_ = log; }

  /// Fault injection (util::FaultPlan): each solver check may be preceded by
  /// an injected slowdown and/or replaced by an injected transient failure,
  /// which is retried per FinderConfig::retry with backoff ("fault"/"retry"
  /// trace events, z3.failures / z3.retries counters). A check that keeps
  /// failing after the attempt budget reports `unknown`, which the
  /// synthesizer surfaces as kSolverGaveUp rather than crashing the session.
  /// The injector's decision stream is part of save_state when attached.
  /// An attached injector disables the solver cache (a replayed result
  /// would skip the injected faults and desynchronize the decision stream).
  void set_fault_injector(std::shared_ptr<util::FaultInjector> injector) {
    injector_ = std::move(injector);
  }

  /// Query/counterexample cache (solver/solver_cache.h); null disables.
  /// Shared so the synthesizer can persist it through the @cache snapshot
  /// section. Ignored while a viability callback or fault injector is
  /// attached (both make a query's outcome depend on more than the key).
  void set_cache(std::shared_ptr<SolverCache> cache) {
    cache_ = std::move(cache);
  }

  /// Cancels an in-flight check from another thread (portfolio racing): the
  /// running query returns kUnknown promptly, and the next query rebuilds
  /// the incremental encodings (an interrupted tactic leaves them in an
  /// unspecified state). Safe to call at any time, including when no check
  /// is running.
  void interrupt();

  /// Durable-session persistence: the query counter plus the attached fault
  /// injector's decision stream (when any), so a resumed run keeps stable
  /// query indices in traces and replays the identical fault sequence. The
  /// incremental encodings are deliberately not part of the state: they are
  /// rebuilt from the graph on the next query, and the canonical assertion
  /// order guarantees the rebuilt solver answers identically.
  std::string save_state() const override;
  void restore_state(const std::string& state) override;

  // Incremental sketch+G encodings (defined in z3_finder.cpp; public so the
  // implementation structs can be out-of-line without friend gymnastics).
  struct DistEncoding;
  struct ConsEncoding;
  struct CheckOutcome;

 private:
  friend class ActiveCheckGuard;

  FinderResult find_distinguishing_uncached(const pref::PreferenceGraph& graph,
                                            int num_pairs);
  /// `decisive` is cleared when the answer came from a timeout or an
  /// exhausted blocking budget rather than a real verdict (not cacheable).
  std::optional<sketch::HoleAssignment> find_consistent_uncached(
      const pref::PreferenceGraph& graph, bool* decisive);
  /// The shared UNSAT epilogue of the distinguishing query: multi-pair
  /// queries retry with a single pair (fewer separated witnesses may remain
  /// even when k do not), then find_consistent splits "unique ranking" from
  /// "no candidate".
  FinderResult resolve_unsat(const pref::PreferenceGraph& graph, int num_pairs);

  CheckOutcome timed_check(z3::context& ctx, z3::solver& s, const char* kind,
                           long index);
  CheckOutcome check_with_fallback(z3::context& ctx, z3::solver& s);
  void log_query(z3::solver& solver, const char* kind);

  /// Drops poisoned incremental state after an interrupt; called on entry to
  /// every query.
  void reset_after_interrupt();

  // --- SolverCache integration -------------------------------------------
  bool cache_usable() const;
  std::string cache_key(const char* kind, int num_pairs,
                        const pref::PreferenceGraph& graph) const;
  void note_cache(const char* op, const char* kind,
                  const std::string& key) const;

  // --- Interval pre-checks (docs/SOLVER.md §Pre-checks) ------------------
  bool precheck_enabled() const;
  /// True when some edge or tie of `graph` is interval-refuted over the full
  /// hole grid — no candidate can satisfy it, so the query (and
  /// find_consistent) would come back UNSAT.
  bool precheck_refutes_graph(const pref::PreferenceGraph& graph,
                              const char* kind);
  const sketch::Interval& vertex_interval(const pref::PreferenceGraph& graph,
                                          pref::VertexId v);
  void note_precheck(const char* kind, const char* verdict) const;

  /// Guards every memoized structure against a caller switching to an
  /// unrelated graph mid-lifetime: if a previously seen vertex id now names
  /// a different scenario, encodings and interval memos are invalidated.
  void observe_graph(const pref::PreferenceGraph& graph);

  sketch::Sketch sketch_;
  FinderConfig config_;
  Viability viability_;
  ScenarioDomain domain_;
  /// Interval precheck from the static analyzer (computed once in the
  /// ctor): a proven enclosure of the objective over the full metric box x
  /// hole grid. Asserted as redundant-but-sound bounds on every encoded
  /// objective term, which narrows nlsat's search without changing any
  /// verdict; also gates the pre-checks. Absent when the analysis cannot
  /// certify a clean finite bound (possible NaN / EvalError / unbounded
  /// output).
  std::optional<sketch::Interval> objective_bounds_;
  long query_count_ = 0;
  std::ostream* query_log_ = nullptr;
  std::shared_ptr<util::FaultInjector> injector_;
  std::shared_ptr<SolverCache> cache_;
  /// Constructor-fixed prefix of every cache key: canonical sketch print,
  /// domain constraint print and margins (docs/SOLVER.md §Cache keys).
  std::string cache_key_prefix_;
  /// Objective enclosure per interned graph vertex (point metric box x full
  /// hole grid), memoized — vertices are immutable once interned.
  std::vector<sketch::Interval> vertex_intervals_;
  /// Metric vectors of the vertices the memos were built against
  /// (observe_graph's staleness check).
  std::vector<std::vector<double>> interned_metrics_;

  /// Live incremental encodings, one distinguishing encoding per num_pairs
  /// value plus one consistency encoding. Empty when config_.incremental is
  /// off (a scratch encoding is built and dropped per query instead).
  std::map<int, std::unique_ptr<DistEncoding>> dist_encodings_;
  std::unique_ptr<ConsEncoding> cons_encoding_;

  /// Cross-thread cancellation: interrupt() flips the flag and interrupts
  /// whichever context is mid-check (registered under the mutex). The flag
  /// is atomic rather than guarded because checking threads poll it on hot
  /// paths where taking active_mutex_ would serialize against interrupt().
  util::Mutex active_mutex_;
  z3::context* active_ctx_ GUARDED_BY(active_mutex_) = nullptr;
  std::atomic<bool> interrupted_{false};
};

}  // namespace compsynth::solver
