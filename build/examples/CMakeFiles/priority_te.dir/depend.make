# Empty dependencies file for priority_te.
# This may be replaced when dependencies are built.
