# Empty compiler generated dependencies file for homenet_policy.
# This may be replaced when dependencies are built.
