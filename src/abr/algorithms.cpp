#include "abr/algorithms.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace compsynth::abr {

double harmonic_mean_tail(const std::vector<double>& xs, std::size_t window) {
  if (xs.empty()) return 0;
  const std::size_t n = std::min(window, xs.size());
  double inv_sum = 0;
  for (std::size_t i = xs.size() - n; i < xs.size(); ++i) {
    inv_sum += 1.0 / std::max(xs[i], 1e-9);
  }
  return static_cast<double>(n) / inv_sum;
}

std::size_t FixedAbr::choose(const AbrObservation&, const Video& video) {
  return std::min(rung_, video.ladder_mbps.size() - 1);
}

std::size_t RateBasedAbr::choose(const AbrObservation& obs, const Video& video) {
  const double predicted =
      harmonic_mean_tail(obs.throughput_history_mbps, window_);
  if (predicted <= 0) return 0;  // no history yet: start safe
  const double budget = safety_ * predicted;
  std::size_t rung = 0;
  for (std::size_t i = 0; i < video.ladder_mbps.size(); ++i) {
    if (video.ladder_mbps[i] <= budget) rung = i;
  }
  return rung;
}

std::size_t BufferBasedAbr::choose(const AbrObservation& obs, const Video& video) {
  const double b = obs.buffer_seconds;
  if (b <= reservoir_) return 0;
  if (b >= cushion_) return video.ladder_mbps.size() - 1;
  const double frac = (b - reservoir_) / (cushion_ - reservoir_);
  const auto rung = static_cast<std::size_t>(
      frac * static_cast<double>(video.ladder_mbps.size() - 1) + 0.5);
  return std::min(rung, video.ladder_mbps.size() - 1);
}

BolaAbr::BolaAbr(double buffer_target_seconds)
    : buffer_target_(buffer_target_seconds) {
  if (buffer_target_ <= 0) {
    throw std::invalid_argument("BolaAbr: buffer target must be positive");
  }
}

std::size_t BolaAbr::choose(const AbrObservation& obs, const Video& video) {
  // Utilities: u_r = ln(S_r / S_min); chunk sizes are proportional to
  // bitrates, so the ratio of rates works directly.
  const double s_min = video.ladder_mbps.front();
  const double u_max = std::log(video.ladder_mbps.back() / s_min);
  // Calibrate V and gamma so the top rung is chosen when the buffer reaches
  // the target and the bottom rung near empty (BOLA-BASIC's derivation with
  // Q measured in chunks).
  const double q_target = buffer_target_ / video.chunk_seconds;
  const double gamma = 1.0;
  const double v = std::max(1e-9, (q_target - 1.0) / (u_max + gamma));

  const double q = obs.buffer_seconds / video.chunk_seconds;
  double best_score = -std::numeric_limits<double>::infinity();
  std::size_t best = 0;
  for (std::size_t r = 0; r < video.ladder_mbps.size(); ++r) {
    const double size = video.ladder_mbps[r];  // proportional to bits
    const double utility = std::log(size / s_min);
    const double score = (v * (utility + gamma) - q) / size;
    if (score > best_score) {
      best_score = score;
      best = r;
    }
  }
  return best;
}

std::size_t HybridAbr::choose(const AbrObservation& obs, const Video& video) {
  const double predicted =
      harmonic_mean_tail(obs.throughput_history_mbps, 5);
  if (predicted <= 0) return 0;
  double best_score = -std::numeric_limits<double>::infinity();
  std::size_t best = 0;
  for (std::size_t r = 0; r < video.ladder_mbps.size(); ++r) {
    const double rate = video.ladder_mbps[r];
    const double dl = rate * video.chunk_seconds / predicted;
    const double stall = std::max(0.0, dl - obs.buffer_seconds);
    const double switch_cost =
        obs.next_chunk == 0
            ? 0
            : std::abs(rate - video.ladder_mbps[obs.last_rung]);
    const double score =
        rate - rebuffer_weight_ * stall - switch_weight_ * switch_cost;
    if (score > best_score) {
      best_score = score;
      best = r;
    }
  }
  return best;
}

}  // namespace compsynth::abr
