#include <gtest/gtest.h>

#include <cmath>

#include "util/log.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/table.h"
#include "util/timer.h"

namespace compsynth::util {
namespace {

TEST(Stats, MeanMedianOfKnownSample) {
  const std::vector<double> xs{1, 2, 3, 4, 10};
  EXPECT_DOUBLE_EQ(mean(xs), 4.0);
  EXPECT_DOUBLE_EQ(median(xs), 3.0);
}

TEST(Stats, EmptySampleIsAllZero) {
  const std::vector<double> xs;
  EXPECT_EQ(mean(xs), 0);
  EXPECT_EQ(median(xs), 0);
  EXPECT_EQ(siqr(xs), 0);
  EXPECT_EQ(stddev(xs), 0);
  const Summary s = summarize(xs);
  EXPECT_EQ(s.count, 0u);
}

TEST(Stats, MedianOfEvenSampleInterpolates) {
  EXPECT_DOUBLE_EQ(median({1, 2, 3, 4}), 2.5);
}

TEST(Stats, QuantileEndpoints) {
  const std::vector<double> xs{5, 1, 3};
  EXPECT_DOUBLE_EQ(quantile(xs, 0), 1);
  EXPECT_DOUBLE_EQ(quantile(xs, 1), 5);
  EXPECT_DOUBLE_EQ(quantile(xs, 0.5), 3);
}

TEST(Stats, SiqrOfUniformSequence) {
  // 1..9: Q1 = 3, Q3 = 7 -> SIQR = 2.
  const std::vector<double> xs{1, 2, 3, 4, 5, 6, 7, 8, 9};
  EXPECT_DOUBLE_EQ(siqr(xs), 2.0);
}

TEST(Stats, StddevOfConstantSampleIsZero) {
  EXPECT_DOUBLE_EQ(stddev({4, 4, 4, 4}), 0.0);
}

TEST(Stats, SummaryFormat) {
  Summary s;
  s.mean = 31.333;
  s.median = 30;
  s.siqr = 4.25;
  EXPECT_EQ(format_summary(s), "31.33/30.00/4.25");
}

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.uniform_int(0, 1000), b.uniform_int(0, 1000));
  }
}

TEST(Rng, UniformRealStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform_real(2.5, 3.5);
    EXPECT_GE(x, 2.5);
    EXPECT_LT(x, 3.5);
  }
}

TEST(Rng, UniformIntCoversBounds) {
  Rng rng(99);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.uniform_int(0, 3);
    EXPECT_GE(v, 0);
    EXPECT_LE(v, 3);
    saw_lo = saw_lo || v == 0;
    saw_hi = saw_hi || v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, BernoulliExtremes) {
  Rng rng(5);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(Rng, ForkProducesIndependentButDeterministicStream) {
  Rng a(11), b(11);
  Rng fa = a.fork(), fb = b.fork();
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(fa.uniform_int(0, 1 << 30), fb.uniform_int(0, 1 << 30));
  }
}

TEST(Rng, ShuffleIsAPermutation) {
  Rng rng(3);
  std::vector<int> xs{1, 2, 3, 4, 5, 6, 7};
  auto sorted = xs;
  rng.shuffle(xs);
  std::sort(xs.begin(), xs.end());
  EXPECT_EQ(xs, sorted);
}

TEST(Table, RendersAlignedAscii) {
  Table t({"Metrics", "Average"});
  t.add_row({"# Iterations", "31.33"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("Metrics"), std::string::npos);
  EXPECT_NE(s.find("31.33"), std::string::npos);
  EXPECT_NE(s.find('+'), std::string::npos);
}

TEST(Table, CsvEscapesCommasAndQuotes) {
  Table t({"a", "b"});
  t.add_row({"x,y", "he said \"hi\""});
  const std::string csv = t.to_csv();
  EXPECT_NE(csv.find("\"x,y\""), std::string::npos);
  EXPECT_NE(csv.find("\"he said \"\"hi\"\"\""), std::string::npos);
}

TEST(Table, NumericRowFormatsTrimmedIntegers) {
  Table t({"label", "v1", "v2"});
  t.add_row_numeric("row", {30.0, 4.25});
  const std::string csv = t.to_csv();
  EXPECT_NE(csv.find("row,30,4.25"), std::string::npos);
}

TEST(Table, ShortRowsArePadded) {
  Table t({"a", "b", "c"});
  t.add_row({"only"});
  EXPECT_EQ(t.row_count(), 1u);
  EXPECT_NE(t.to_string().find("only"), std::string::npos);
}

TEST(FormatNumber, TrimsExactIntegers) {
  EXPECT_EQ(format_number(30.0), "30");
  EXPECT_EQ(format_number(4.25), "4.25");
  EXPECT_EQ(format_number(-2.0), "-2");
}

TEST(Stopwatch, MeasuresNonNegativeTime) {
  Stopwatch w;
  volatile double sink = 0;
  for (int i = 0; i < 10000; ++i) sink = sink + std::sqrt(static_cast<double>(i));
  EXPECT_GE(w.elapsed_seconds(), 0.0);
  const double lap = w.lap();
  EXPECT_GE(lap, 0.0);
  EXPECT_LE(w.elapsed_seconds(), lap + 1.0);
}

}  // namespace
}  // namespace compsynth::util

// --- Logging ---------------------------------------------------------------------

namespace compsynth::util {
namespace {

struct LogLevelGuard {
  LogLevel saved = level();
  ~LogLevelGuard() { set_level(saved); }
};

TEST(Log, LevelThresholdIsRespected) {
  LogLevelGuard guard;
  set_level(LogLevel::kWarn);
  EXPECT_EQ(level(), LogLevel::kWarn);
  set_level(LogLevel::kOff);
  EXPECT_EQ(level(), LogLevel::kOff);
  // Emitting below threshold must be a no-op (nothing observable to assert
  // beyond "does not crash"; the threshold check is the contract).
  log(LogLevel::kDebug, "suppressed ", 42);
}

TEST(Log, VariadicFormattingComposes) {
  LogLevelGuard guard;
  set_level(LogLevel::kDebug);
  // Mixed argument types must compile and run through the ostream path.
  log(LogLevel::kDebug, "iter ", 3, " took ", 1.5, "s flag=", true);
  set_level(LogLevel::kOff);
}

}  // namespace
}  // namespace compsynth::util
