// Shared infrastructure for the paper-reproduction benches.
//
// Each bench binary registers one google-benchmark per experimental
// configuration (run exactly once, manually timed with the solver-side
// synthesis time, as §4.3 measures), collects per-configuration outcomes in
// a global registry, and prints the paper-style table after the benchmark
// run. Repetition counts follow the paper (9) where runtime allows and can
// be overridden with the COMPSYNTH_REPS environment variable.
#pragma once

#include <benchmark/benchmark.h>

#include <cstdlib>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "obs/trace.h"
#include "synth/experiment.h"
#include "util/table.h"

namespace compsynth::bench {

/// Repetitions for a bench: the paper's default unless COMPSYNTH_REPS is set.
inline int repetitions(int paper_default) {
  if (const char* env = std::getenv("COMPSYNTH_REPS")) {
    const int v = std::atoi(env);
    if (v > 0) return v;
  }
  return paper_default;
}

/// Opt-in tracing for benches: COMPSYNTH_TRACE=<path> appends every bench
/// configuration's JSONL trace (run ids = configuration labels) to one file.
/// Null when the variable is unset — zero overhead on the timed path.
inline obs::TraceSink* env_trace_sink() {
  static std::unique_ptr<obs::FileTraceSink> sink = [] {
    std::unique_ptr<obs::FileTraceSink> s;
    if (const char* path = std::getenv("COMPSYNTH_TRACE")) {
      if (*path != '\0') s = std::make_unique<obs::FileTraceSink>(path);
    }
    return s;
  }();
  return sink.get();
}

/// One experiment outcome row, labelled for the final table.
struct Row {
  std::string label;
  synth::ExperimentOutcome outcome;
};

/// Global registry the benchmarks append to; main() prints it.
inline std::vector<Row>& rows() {
  static std::vector<Row> r;
  return r;
}

/// Runs the experiment, records a labelled row, and feeds benchmark state
/// (manual time = mean total solver seconds per run; counters carry the
/// headline stats).
inline void run_and_record(benchmark::State& state, const std::string& label,
                           const synth::ExperimentSpec& spec) {
  for (auto _ : state) {
    synth::ExperimentSpec traced = spec;
    traced.obs.tracer = env_trace_sink();
    traced.obs.run_id = label;
    const synth::ExperimentOutcome out = synth::run_experiment(traced);
    state.SetIterationTime(out.total_seconds.mean);
    state.counters["iters_mean"] = out.iterations.mean;
    state.counters["time_per_iter_s"] = out.avg_iteration_seconds.mean;
    state.counters["total_s"] = out.total_seconds.mean;
    state.counters["correct"] = out.correct_runs;
    state.counters["converged"] = out.converged_runs;
    rows().push_back({label, out});
  }
}

/// Prints the collected rows in the shape of the paper's figures: one line
/// per configuration with iteration/time statistics.
inline void print_series(const std::string& title,
                         const std::vector<std::string>& note_lines = {}) {
  std::cout << "\n=== " << title << " ===\n";
  for (const std::string& line : note_lines) std::cout << line << '\n';
  util::Table t({"config", "runs", "iters avg", "iters med", "iters SIQR",
                 "s/iter avg", "total s avg", "total s med", "total s SIQR",
                 "converged", "correct"});
  for (const Row& r : rows()) {
    t.add_row({r.label, std::to_string(r.outcome.runs.size()),
               util::format_number(r.outcome.iterations.mean),
               util::format_number(r.outcome.iterations.median),
               util::format_number(r.outcome.iterations.siqr),
               util::format_number(r.outcome.avg_iteration_seconds.mean, 3),
               util::format_number(r.outcome.total_seconds.mean),
               util::format_number(r.outcome.total_seconds.median),
               util::format_number(r.outcome.total_seconds.siqr),
               std::to_string(r.outcome.converged_runs),
               std::to_string(r.outcome.correct_runs)});
  }
  std::cout << t.to_string();
}

/// Standard bench main: run benchmarks, then print the table via `print`.
#define COMPSYNTH_BENCH_MAIN(PRINT_FN)                        \
  int main(int argc, char** argv) {                           \
    ::benchmark::Initialize(&argc, argv);                     \
    if (::benchmark::ReportUnrecognizedArguments(argc, argv)) \
      return 1;                                               \
    ::benchmark::RunSpecifiedBenchmarks();                    \
    ::benchmark::Shutdown();                                  \
    PRINT_FN();                                               \
    return 0;                                                 \
  }

}  // namespace compsynth::bench
