// Synthetic network bandwidth traces for the ABR simulator.
//
// Production throughput traces (FCC / Norway datasets used by the ABR papers
// the paper cites) are not available offline, so we generate synthetic
// traces that reproduce their qualitative regimes: stable links, periodic
// drops (wifi contention), and bursty random walks (cellular). See DESIGN.md
// "Substitutions".
#pragma once

#include <vector>

#include "util/rng.h"

namespace compsynth::abr {

/// Piecewise-constant available bandwidth over time.
class Trace {
 public:
  /// `segment_seconds` is the duration of each bandwidth sample.
  Trace(std::vector<double> bandwidth_mbps, double segment_seconds);

  /// Bandwidth at absolute time t (clamps to the last segment, so traces
  /// effectively extend forever).
  double bandwidth_at(double t_seconds) const;

  /// Seconds needed to download `megabits` starting at `start_seconds`,
  /// integrating across segment boundaries.
  double download_seconds(double megabits, double start_seconds) const;

  double segment_seconds() const { return segment_seconds_; }
  const std::vector<double>& samples() const { return bandwidth_mbps_; }
  double mean_mbps() const;

 private:
  std::vector<double> bandwidth_mbps_;
  double segment_seconds_;
};

/// Constant-bandwidth link.
Trace constant_trace(double mbps, double duration_seconds = 600);

/// Alternates between `high` and `low` every `period_seconds` (wifi-like
/// periodic contention).
Trace square_trace(double high_mbps, double low_mbps, double period_seconds,
                   double duration_seconds = 600);

/// Multiplicative random walk clamped to [floor, cap] (cellular-like).
Trace random_walk_trace(util::Rng& rng, double start_mbps, double floor_mbps,
                        double cap_mbps, double duration_seconds = 600,
                        double volatility = 0.25);

}  // namespace compsynth::abr
