// Figure 4 of the paper: effect of ranking multiple pairs of scenarios per
// iteration (k = 1..5). The paper found k = 2 reaches a solution in a
// similar total time with notably fewer interactions, while k >= 3 only
// modestly reduces interactions but significantly increases total synthesis
// time (each SMT query must find k simultaneous disagreement witnesses).
#include "bench_common.h"
#include "sketch/library.h"

namespace compsynth::bench {
namespace {

void BM_Fig4(benchmark::State& state) {
  const int pairs = static_cast<int>(state.range(0));
  synth::ExperimentSpec spec{.sketch = sketch::swan_sketch(),
                             .target = sketch::swan_target()};
  spec.backend = synth::Backend::kZ3;
  spec.repetitions = repetitions(3);
  spec.config.seed = 8800 + static_cast<std::uint64_t>(pairs);
  spec.config.pairs_per_iteration = pairs;
  run_and_record(state, std::to_string(pairs) + " pair(s)/iteration", spec);
}
BENCHMARK(BM_Fig4)->DenseRange(1, 5)->Iterations(1)->UseManualTime()
    ->Unit(benchmark::kSecond);

void print_fig4() {
  print_series(
      "Figure 4: pairs of scenarios ranked per iteration (k = 1..5)",
      {"paper: k=2 cuts interactions at similar total time; k>=3 cuts",
       "interactions only moderately while total synthesis time grows."});
}

}  // namespace
}  // namespace compsynth::bench

COMPSYNTH_BENCH_MAIN(compsynth::bench::print_fig4)
