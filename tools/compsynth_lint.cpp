// compsynth_lint: static analysis / lint driver for sketch DSL files.
//
//   compsynth_lint [--strict] [--corpus] [--quiet] <file-or-dir>...
//
// Each argument is a .sketch file or a directory scanned (non-recursively)
// for *.sketch files. Every file is parsed leniently (parse_sketch_raw) and
// run through the static analyzer (sketch/analyze.h); diagnostics are
// printed one per line as
//
//   <file>:<line>:<col>: <severity> A<nnn>: <message>
//
// Exit status is 1 when any error-severity diagnostic (A001 parse errors
// included) was produced, 0 otherwise. --strict also fails on warnings —
// the shipped sketch corpus is expected to be warning-clean. Notes never
// affect the exit status.
//
// --corpus flips the tool into self-test mode for the seeded bad-sketch
// corpus (tests/lint_corpus/): each file must carry one or more
//
//   # lint-expect: A101 A301 ...
//
// comment directives, and the file passes iff every expected code was
// actually emitted. Files without directives fail (a corpus file that
// expects nothing tests nothing). The exit status reports corpus
// conformance instead of diagnostic severity.
#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "sketch/analyze.h"
#include "sketch/diagnostics.h"
#include "sketch/lexer.h"
#include "sketch/parser.h"

namespace {

namespace fs = std::filesystem;
using namespace compsynth;

struct Options {
  bool strict = false;
  bool corpus = false;
  bool quiet = false;
  std::vector<fs::path> inputs;
};

int usage() {
  std::cerr << "usage: compsynth_lint [--strict] [--corpus] [--quiet] "
               "<file-or-dir>...\n"
               "  --strict  exit nonzero on warnings too\n"
               "  --corpus  validate '# lint-expect: <codes>' directives\n"
               "  --quiet   suppress per-diagnostic output\n";
  return 2;
}

/// Collects the *.sketch files to lint, in deterministic (sorted) order.
std::vector<fs::path> expand_inputs(const std::vector<fs::path>& inputs,
                                    bool& ok) {
  std::vector<fs::path> files;
  for (const fs::path& p : inputs) {
    std::error_code ec;
    if (fs::is_directory(p, ec)) {
      std::vector<fs::path> found;
      for (const auto& entry : fs::directory_iterator(p, ec)) {
        if (entry.is_regular_file() && entry.path().extension() == ".sketch") {
          found.push_back(entry.path());
        }
      }
      std::sort(found.begin(), found.end());
      if (found.empty()) {
        std::cerr << "compsynth_lint: no .sketch files in " << p << "\n";
        ok = false;
      }
      files.insert(files.end(), found.begin(), found.end());
    } else if (fs::is_regular_file(p, ec)) {
      files.push_back(p);
    } else {
      std::cerr << "compsynth_lint: cannot read " << p << "\n";
      ok = false;
    }
  }
  return files;
}

/// Codes named by `# lint-expect: A101 ...` directives in the source.
std::set<std::string> expected_codes(const std::string& source) {
  std::set<std::string> codes;
  std::istringstream lines(source);
  std::string line;
  while (std::getline(lines, line)) {
    const std::size_t at = line.find("# lint-expect:");
    if (at == std::string::npos) continue;
    std::istringstream rest(line.substr(at + std::string("# lint-expect:").size()));
    std::string code;
    while (rest >> code) codes.insert(code);
  }
  return codes;
}

std::vector<sketch::Diagnostic> lint_source(const std::string& source) {
  try {
    const sketch::RawSketch raw = sketch::parse_sketch_raw(source);
    return sketch::analyze_expr(*raw.body, raw.metrics, raw.holes).diagnostics;
  } catch (const sketch::ParseError& e) {
    return {sketch::Diagnostic{
        sketch::DiagCode::kParseError, sketch::Severity::kError,
        static_cast<std::uint32_t>(e.line()),
        static_cast<std::uint32_t>(e.column()), e.what()}};
  }
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--strict") {
      opt.strict = true;
    } else if (arg == "--corpus") {
      opt.corpus = true;
    } else if (arg == "--quiet") {
      opt.quiet = true;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "compsynth_lint: unknown option " << arg << "\n";
      return usage();
    } else {
      opt.inputs.emplace_back(arg);
    }
  }
  if (opt.inputs.empty()) return usage();

  bool inputs_ok = true;
  const std::vector<fs::path> files = expand_inputs(opt.inputs, inputs_ok);
  if (!inputs_ok) return 2;

  bool failed = false;
  std::size_t total_errors = 0, total_warnings = 0, total_notes = 0;
  for (const fs::path& file : files) {
    std::ifstream in(file);
    if (!in) {
      std::cerr << "compsynth_lint: cannot open " << file << "\n";
      failed = true;
      continue;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    const std::string source = buf.str();

    const std::vector<sketch::Diagnostic> diagnostics = lint_source(source);
    const std::string name = file.string();
    if (!opt.quiet) {
      for (const sketch::Diagnostic& d : diagnostics) {
        std::cout << sketch::render(d, name) << "\n";
      }
    }
    total_errors += sketch::count_severity(diagnostics, sketch::Severity::kError);
    total_warnings +=
        sketch::count_severity(diagnostics, sketch::Severity::kWarning);
    total_notes += sketch::count_severity(diagnostics, sketch::Severity::kNote);

    if (opt.corpus) {
      const std::set<std::string> expected = expected_codes(source);
      if (expected.empty()) {
        std::cerr << name << ": corpus file has no '# lint-expect:' directive\n";
        failed = true;
        continue;
      }
      std::set<std::string> emitted;
      for (const sketch::Diagnostic& d : diagnostics) {
        emitted.insert(sketch::diag_code_name(d.code));
      }
      for (const std::string& code : expected) {
        if (emitted.count(code) == 0) {
          std::cerr << name << ": expected diagnostic " << code
                    << " was not emitted\n";
          failed = true;
        }
      }
    } else if (sketch::has_errors(diagnostics) ||
               (opt.strict &&
                sketch::count_severity(diagnostics,
                                       sketch::Severity::kWarning) > 0)) {
      failed = true;
    }
  }

  if (!opt.quiet) {
    std::cout << files.size() << " file(s): " << total_errors << " error(s), "
              << total_warnings << " warning(s), " << total_notes
              << " note(s)\n";
  }
  return failed ? 1 : 0;
}
