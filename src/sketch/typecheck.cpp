#include "sketch/typecheck.h"

#include <span>

namespace compsynth::sketch {

namespace {

void fail(const std::string& what) { throw TypeError("typecheck: " + what); }

void expect_arity(const Expr& e, std::size_t n, const char* what) {
  if (e.children.size() != n) fail(std::string(what) + ": wrong arity");
  for (const auto& c : e.children) {
    if (c == nullptr) fail(std::string(what) + ": null child");
  }
}

// Returns true when the expression is numeric, false when boolean.
// `holes` may be empty-with-unknown-specs: hole_count governs range checks;
// specs (when provided) additionally validate choice selector grids.
bool check(const Expr& e, std::size_t metric_count, std::size_t hole_count,
           std::span<const HoleSpec> specs) {
  switch (e.kind) {
    case Expr::Kind::kConst:
      expect_arity(e, 0, "const");
      return true;
    case Expr::Kind::kBoolConst:
      expect_arity(e, 0, "bool const");
      return false;
    case Expr::Kind::kMetric:
      expect_arity(e, 0, "metric ref");
      if (e.metric >= metric_count) fail("metric reference out of range");
      return true;
    case Expr::Kind::kHole:
      expect_arity(e, 0, "hole ref");
      if (e.hole >= hole_count) fail("hole reference out of range");
      return true;
    case Expr::Kind::kNeg:
      expect_arity(e, 1, "negation");
      if (!check(*e.children[0], metric_count, hole_count, specs)) {
        fail("negation of a boolean");
      }
      return true;
    case Expr::Kind::kBinary:
      expect_arity(e, 2, "binary op");
      for (const auto& c : e.children) {
        if (!check(*c, metric_count, hole_count, specs)) fail("arithmetic on a boolean");
      }
      return true;
    case Expr::Kind::kIte:
      expect_arity(e, 3, "if-then-else");
      if (check(*e.children[0], metric_count, hole_count, specs)) {
        fail("if condition must be boolean");
      }
      if (!check(*e.children[1], metric_count, hole_count, specs)) {
        fail("then branch must be numeric");
      }
      if (!check(*e.children[2], metric_count, hole_count, specs)) {
        fail("else branch must be numeric");
      }
      return true;
    case Expr::Kind::kChoice: {
      if (e.children.size() < 2) fail("choice: need at least two alternatives");
      for (const auto& c : e.children) {
        if (c == nullptr) fail("choice: null alternative");
        if (!check(*c, metric_count, hole_count, specs)) {
          fail("choice alternatives must be numeric");
        }
      }
      if (e.hole >= hole_count) fail("choice selector hole out of range");
      if (!specs.empty()) {
        const HoleSpec& h = specs[e.hole];
        if (h.lo != 0 || h.step != 1 ||
            h.count != static_cast<std::int64_t>(e.children.size())) {
          fail("choice selector '" + h.name + "' must be grid(0, 1, " +
               std::to_string(e.children.size()) + ")");
        }
      }
      return true;
    }
    case Expr::Kind::kCmp:
      expect_arity(e, 2, "comparison");
      for (const auto& c : e.children) {
        if (!check(*c, metric_count, hole_count, specs)) fail("comparison of booleans");
      }
      return false;
    case Expr::Kind::kBoolBinary:
      expect_arity(e, 2, "boolean op");
      for (const auto& c : e.children) {
        if (check(*c, metric_count, hole_count, specs)) fail("&&/|| applied to a number");
      }
      return false;
    case Expr::Kind::kNot:
      expect_arity(e, 1, "negation (!)");
      if (check(*e.children[0], metric_count, hole_count, specs)) {
        fail("! applied to a number");
      }
      return false;
  }
  fail("unknown node kind");
  return false;  // unreachable
}

void run_check(const Expr& root, std::size_t metric_count, std::size_t hole_count,
               std::span<const HoleSpec> specs, bool expect_numeric) {
  const bool numeric = check(root, metric_count, hole_count, specs);
  if (numeric != expect_numeric) {
    fail(expect_numeric ? "expected a numeric expression"
                        : "expected a boolean expression");
  }
}

}  // namespace

void typecheck_expr(const Expr& root, std::size_t metric_count,
                    std::size_t hole_count, bool expect_numeric) {
  run_check(root, metric_count, hole_count, {}, expect_numeric);
}

void typecheck_expr(const Expr& root, std::size_t metric_count,
                    std::span<const HoleSpec> holes, bool expect_numeric) {
  run_check(root, metric_count, holes.size(), holes, expect_numeric);
}

bool typecheck_expr_any(const Expr& root, std::size_t metric_count,
                        std::span<const HoleSpec> holes) {
  return check(root, metric_count, holes.size(), holes);
}

void typecheck(const Sketch& sketch) {
  typecheck_expr(*sketch.body(), sketch.metrics().size(),
                 std::span<const HoleSpec>(sketch.holes()),
                 /*expect_numeric=*/true);
}

}  // namespace compsynth::sketch
