// Descriptive statistics used by the experiment harnesses.
//
// Table 1 of the paper reports average, median and SIQR (semi-interquartile
// range) over nine repetitions; Figures 3-5 report averages. This header
// provides those aggregations over double samples.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace compsynth::util {

/// Arithmetic mean. Returns 0 for an empty sample.
double mean(const std::vector<double>& xs);

/// Sample standard deviation (n-1 denominator). Returns 0 for n < 2.
double stddev(const std::vector<double>& xs);

/// Median (average of the two central order statistics for even n).
/// Returns 0 for an empty sample.
double median(std::vector<double> xs);

/// Linear-interpolation quantile, q in [0, 1]. Returns 0 for empty input.
double quantile(std::vector<double> xs, double q);

/// Semi-interquartile range: (Q3 - Q1) / 2, the dispersion measure used in
/// Table 1 of the paper. Returns 0 for an empty sample.
double siqr(const std::vector<double>& xs);

/// Minimum / maximum. Return 0 for an empty sample.
double min(const std::vector<double>& xs);
double max(const std::vector<double>& xs);

/// A one-shot summary of a sample, in the shape Table 1 reports.
struct Summary {
  std::size_t count = 0;
  double mean = 0;
  double median = 0;
  double siqr = 0;
  double min = 0;
  double max = 0;
  double stddev = 0;
};

/// Computes all Summary fields in one pass over the sample.
Summary summarize(const std::vector<double>& xs);

/// Renders "mean/median/siqr" with the given precision, e.g. "31.33/30/4.25".
std::string format_summary(const Summary& s, int precision = 2);

}  // namespace compsynth::util
