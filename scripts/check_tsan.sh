#!/usr/bin/env bash
# Builds the tree with ThreadSanitizer (-DCOMPSYNTH_SANITIZE=thread) in a
# dedicated build directory and runs every concurrency-exercising test: the
# thread pool, the parallel GridFinder sync (including the analysis-pruned
# rebuild), the portfolio/acceleration layer and solver cache, the
# synthesis service (host + protocol), the seeded concurrency stress suite
# (tests/concurrency_stress_test.cpp) and the bench smokes.
#
# First-party code is expected TSan-clean with no suppressions. The only
# entries allowed in scripts/tsan.supp are third-party reports with no
# first-party frame on the stack, each with a written justification next to
# it (currently one: libz3's cross-thread scoped-timer mutex handoff) —
# never a blanket list.
#
# Usage:
#   scripts/check_tsan.sh [ctest-regex]
#
# The default regex covers the concurrent paths; pass your own (as for
# `ctest -R`) to widen or narrow it.
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
build="$repo/build-tsan"
regex="${1:-ThreadPool|GridFinder|PruneDifferential|AccelDifferential|SolverCache|ServeProtocol|ServeHost|ConcurrencyStress|bench_eval_smoke|bench_solver_smoke}"

cmake -B "$build" -S "$repo" \
  -DCOMPSYNTH_SANITIZE=thread \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo >/dev/null
cmake --build "$build" -j "$(nproc)"

export TSAN_OPTIONS="halt_on_error=1 suppressions=$repo/scripts/tsan.supp"

cd "$build"
ctest --output-on-failure -R "$regex"
echo "tsan: clean"
