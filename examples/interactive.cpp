// Human-in-the-loop comparative synthesis on the SWAN sketch.
//
// YOU play the network architect: the synthesizer shows concrete
// (throughput, latency) scenario pairs and you answer which you prefer
// ("1", "2", or "=" for indistinguishable). After enough answers it prints
// the objective function that matches your preferences.
//
// Build & run:  ./build/examples/interactive
// Tip: answering ~15-30 comparisons consistently (e.g. "always prefer more
// throughput unless latency exceeds 50 ms") converges quickly; wildly
// inconsistent answers are rejected with a warning.
#include <cstdio>
#include <ctime>
#include <iostream>

#include "oracle/variants.h"
#include "sketch/library.h"
#include "sketch/printer.h"
#include "synth/synthesizer.h"

int main() {
  using namespace compsynth;

  const sketch::Sketch& sk = sketch::swan_sketch();
  std::printf("Objective sketch to be completed from your preferences:\n%s\n",
              sketch::print_sketch(sk).c_str());
  std::printf("Answer each question with 1, 2, or = (indistinguishable).\n");

  synth::SynthesisConfig config;
  config.seed = static_cast<std::uint64_t>(std::time(nullptr));
  config.initial_scenarios = 0;  // humans: skip the big up-front ranking
  config.max_iterations = 40;    // bounded patience
  oracle::InteractiveOracle architect(sk, std::cin, std::cout);

  // The grid back-end keeps each "thinking" pause under a few milliseconds.
  synth::Synthesizer synthesizer = synth::make_grid_synthesizer(sk, config);
  const synth::SynthesisResult result = synthesizer.run(architect);

  std::printf("\n%d iterations, %ld answers.\n", result.iterations,
              result.oracle_comparisons);
  switch (result.status) {
    case synth::SynthesisStatus::kConverged:
      std::printf("Your preferences pin down a unique objective ranking.\n");
      break;
    case synth::SynthesisStatus::kIterationLimit:
      std::printf("Stopping at the patience limit; best-consistent pick:\n");
      break;
    case synth::SynthesisStatus::kNoCandidate:
      std::printf("Your answers contradict every instance of this sketch.\n");
      return 1;
    case synth::SynthesisStatus::kSolverGaveUp:
      std::printf("The solver gave up.\n");
      return 1;
  }
  if (result.objective) {
    std::printf("Learned objective:\n  %s\n",
                sketch::print_instantiated(sk, *result.objective).c_str());
  }
  return 0;
}
