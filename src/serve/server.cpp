#include "serve/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <utility>

#include "obs/trace.h"
#include "util/timer.h"

namespace compsynth::serve {

namespace {

// One request line is at most this long; longer floods the connection shut.
constexpr std::size_t kMaxLine = 1 << 20;

[[noreturn]] void throw_errno(const std::string& what) {
  throw std::runtime_error(what + ": " + std::strerror(errno));
}

bool send_all(int fd, std::string_view data) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n =
        ::send(fd, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

Server::Server(ServerConfig config, SessionHost& host)
    : config_(std::move(config)), host_(host) {
  const std::string& listen = config_.listen;
  if (listen.rfind("unix:", 0) == 0) {
    unix_socket_ = true;
    unix_path_ = listen.substr(5);
    if (unix_path_.empty()) {
      throw std::runtime_error("--listen unix: requires a socket path");
    }
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (unix_path_.size() >= sizeof addr.sun_path) {
      throw std::runtime_error("unix socket path too long: " + unix_path_);
    }
    std::strncpy(addr.sun_path, unix_path_.c_str(), sizeof addr.sun_path - 1);
    listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (listen_fd_ < 0) throw_errno("socket");
    ::unlink(unix_path_.c_str());
    if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) <
        0) {
      throw_errno("bind " + unix_path_);
    }
    endpoint_ = "unix:" + unix_path_;
  } else if (listen.rfind("tcp:", 0) == 0) {
    std::string host_part = "127.0.0.1";
    std::string port_part = listen.substr(4);
    const std::size_t colon = port_part.rfind(':');
    if (colon != std::string::npos) {
      host_part = port_part.substr(0, colon);
      port_part = port_part.substr(colon + 1);
    }
    int port = -1;
    try {
      port = std::stoi(port_part);
    } catch (const std::exception&) {
      port = -1;
    }
    if (port < 0 || port > 65535) {
      throw std::runtime_error("bad tcp port in --listen: " + listen);
    }
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    if (::inet_pton(AF_INET, host_part.c_str(), &addr.sin_addr) != 1) {
      throw std::runtime_error("bad tcp host in --listen (numeric IPv4): " +
                               host_part);
    }
    listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listen_fd_ < 0) throw_errno("socket");
    const int one = 1;
    ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
    if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) <
        0) {
      throw_errno("bind " + listen);
    }
    sockaddr_in bound{};
    socklen_t len = sizeof bound;
    ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len);
    endpoint_ =
        "tcp:" + host_part + ":" + std::to_string(ntohs(bound.sin_port));
  } else {
    throw std::runtime_error(
        "--listen must be unix:<path> or tcp:[host:]<port>, got '" + listen +
        "'");
  }
  if (::listen(listen_fd_, config_.backlog) < 0) throw_errno("listen");
}

Server::~Server() {
  stop();
  wait();
  if (listen_fd_ >= 0) ::close(listen_fd_);
  if (unix_socket_) ::unlink(unix_path_.c_str());
}

std::string Server::endpoint() const { return endpoint_; }

void Server::start() { accept_thread_ = std::thread([this] { accept_loop(); }); }

void Server::begin_stop() {
  {
    const util::MutexLock lk(mu_);
    if (stopping_) return;
    stopping_ = true;
  }
  // Unblock accept(); on Linux shutdown() on a listening socket makes a
  // blocked accept return. Closing happens in the destructor.
  ::shutdown(listen_fd_, SHUT_RDWR);
}

void Server::stop() {
  begin_stop();
  const util::MutexLock lk(mu_);
  for (const int fd : conn_fds_) ::shutdown(fd, SHUT_RDWR);
}

void Server::wait() {
  if (accept_thread_.joinable()) accept_thread_.join();
  // No new connections can appear now; close out the existing ones.
  {
    const util::MutexLock lk(mu_);
    for (const int fd : conn_fds_) ::shutdown(fd, SHUT_RDWR);
  }
  std::vector<std::thread> threads;
  {
    const util::MutexLock lk(mu_);
    threads.swap(conn_threads_);
  }
  for (std::thread& t : threads) {
    if (t.joinable()) t.join();
  }
  host_.drain();
}

void Server::accept_loop() {
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    {
      const util::MutexLock lk(mu_);
      if (stopping_) {
        if (fd >= 0) ::close(fd);
        return;
      }
      if (fd < 0) {
        if (errno == EINTR || errno == ECONNABORTED) continue;
        return;  // listener gone
      }
      conn_fds_.insert(fd);
      conn_threads_.emplace_back([this, fd] { connection_loop(fd); });
    }
  }
}

void Server::connection_loop(int fd) {
  std::string buffer;
  char chunk[4096];
  bool stop_requested = false;
  for (;;) {
    const ssize_t n = ::recv(fd, chunk, sizeof chunk, 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;
    buffer.append(chunk, static_cast<std::size_t>(n));
    std::size_t pos = 0;
    for (;;) {
      const std::size_t nl = buffer.find('\n', pos);
      if (nl == std::string::npos) break;
      std::string line = buffer.substr(pos, nl - pos);
      pos = nl + 1;
      if (!line.empty() && line.back() == '\r') line.pop_back();
      if (line.empty()) continue;
      bool stop_after = false;
      const std::string response = handle_line(line, &stop_after);
      if (!send_all(fd, response) || !send_all(fd, "\n")) {
        pos = buffer.size();
        stop_requested = true;  // peer gone; just leave the loop below
        break;
      }
      if (stop_after) {
        // Shutdown verb: the response is on the wire *before* the stop is
        // initiated, so the requester always hears the ack.
        begin_stop();
        stop_requested = true;
        break;
      }
      {
        const util::MutexLock lk(mu_);
        if (stopping_) {
          stop_requested = true;
          break;
        }
      }
    }
    buffer.erase(0, pos);
    if (stop_requested || buffer.size() > kMaxLine) break;
  }
  // Untrack before close: once closed, the kernel may hand the same fd
  // number to a concurrent accept, and erasing afterwards would drop the
  // *new* connection's entry (stop() would then never shut it down).
  {
    const util::MutexLock lk(mu_);
    conn_fds_.erase(fd);
  }
  ::close(fd);
}

std::string Server::handle_line(const std::string& line, bool* stop_after) {
  const util::Stopwatch watch;
  std::variant<Request, ParseError> parsed = parse_request(line);
  std::string response;
  std::string verb_label = "invalid";
  std::string session;
  bool ok = false;
  std::string code;

  if (const ParseError* err = std::get_if<ParseError>(&parsed)) {
    code = err->code;
    response = error_response(err->code, err->message);
  } else {
    const Request& req = std::get<Request>(parsed);
    verb_label = verb_name(req.verb);
    session = req.session;
    try {
      switch (req.verb) {
        case Verb::kCreate: {
          CreateParams params;
          params.id = req.session;
          params.sketch = req.sketch;
          params.backend = req.backend;
          params.seed = req.seed;
          params.initial = req.initial;
          params.pairs = req.pairs;
          params.max_iters = req.max_iters;
          const HostResult r = host_.create(params);
          if (r.ok) {
            ok = true;
            response =
                ok_response(Verb::kCreate).str("session", req.session).done();
          } else {
            code = r.code;
            response = error_response(r.code, r.message);
          }
          break;
        }
        case Verb::kNext: {
          SessionView view;
          const HostResult r = host_.next(req.session, req.wait_ms, &view);
          if (!r.ok) {
            code = r.code;
            response = error_response(r.code, r.message);
            break;
          }
          ok = true;
          JsonWriter w = ok_response(Verb::kNext);
          w.str("session", view.id)
              .str("phase", phase_name(view.phase))
              .integer("answers", view.answers)
              .integer("iterations", view.iterations);
          if (view.pending) {
            w.integer("index", view.pending->index)
                .str("a", scenario_key(view.pending->a))
                .str("b", scenario_key(view.pending->b));
          }
          if (view.phase == SessionPhase::kDone) {
            w.str("status", view.status).str("objective", view.objective);
          }
          if (view.phase == SessionPhase::kFailed) {
            w.str("error", view.error);
          }
          response = w.done();
          break;
        }
        case Verb::kAnswer: {
          const HostResult r = host_.answer(req.session, req.index, req.answer);
          if (r.ok) {
            ok = true;
            response = ok_response(Verb::kAnswer)
                           .str("session", req.session)
                           .integer("index", req.index)
                           .done();
          } else {
            code = r.code;
            response = error_response(r.code, r.message);
          }
          break;
        }
        case Verb::kInspect: {
          if (req.session.empty()) {
            const HostStats stats = host_.stats();
            ok = true;
            response = ok_response(Verb::kInspect)
                           .integer("sessions_created", stats.sessions_created)
                           .integer("resident", stats.sessions_resident)
                           .integer("swaps", stats.swaps)
                           .integer("rehydrations", stats.rehydrations)
                           .integer("advances", stats.advances)
                           .done();
            break;
          }
          SessionView view;
          const HostResult r = host_.inspect(req.session, &view);
          if (!r.ok) {
            code = r.code;
            response = error_response(r.code, r.message);
            break;
          }
          ok = true;
          JsonWriter w = ok_response(Verb::kInspect);
          w.str("session", view.id)
              .str("phase", phase_name(view.phase))
              .boolean("resident", view.resident)
              .integer("answers", view.answers)
              .integer("iterations", view.iterations);
          if (view.phase == SessionPhase::kDone) {
            w.str("status", view.status).str("objective", view.objective);
          }
          if (view.phase == SessionPhase::kFailed) {
            w.str("error", view.error);
          }
          response = w.done();
          break;
        }
        case Verb::kEvict: {
          const HostResult r = host_.evict(req.session);
          if (r.ok) {
            ok = true;
            response = ok_response(Verb::kEvict)
                           .str("session", req.session)
                           .done();
          } else {
            code = r.code;
            response = error_response(r.code, r.message);
          }
          break;
        }
        case Verb::kShutdown: {
          ok = true;
          response = ok_response(Verb::kShutdown).done();
          *stop_after = true;  // caller stops after the response is sent
          break;
        }
      }
    } catch (const std::exception& ex) {
      code = kErrInternal;
      response = error_response(kErrInternal, ex.what());
    }
  }

  const double secs = watch.elapsed_seconds();
  config_.obs.count("serve.requests");
  if (!ok) config_.obs.count("serve.errors");
  config_.obs.observe("serve.latency." + verb_label + ".seconds", secs);
  if (config_.obs.tracing()) {
    obs::TraceEvent ev("serve_request");
    ev.str("verb", verb_label);
    if (!session.empty()) ev.str("session", session);
    ev.boolean("ok", ok);
    if (!code.empty()) ev.str("code", code);
    ev.num("secs", secs);
    config_.obs.emit(ev);
  }
  return response;
}

}  // namespace compsynth::serve
