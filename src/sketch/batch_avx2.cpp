// AVX2 lane back-end for sketch::BatchTape.
//
// simd-ok: this is the one TU allowed to use raw x86 intrinsics — it is the
// AVX2 instantiation of the lane policy in batch_kernel.h, compiled with
// -mavx2 and reached only through the runtime dispatch in compile.cpp when
// the host CPU reports AVX2. Every operation below is chosen to be bit-exact
// with the scalar interpreter (operand-swapped min/max for std::min/std::max
// NaN semantics, ordered-quiet compares, xor-with-sign-bit negation); the
// lane differential tests in tests/compile_test.cpp enforce this against
// both CompiledSketch and the tree interpreter.
//
// Only built when CMake detects -mavx2 support on an x86-64 target
// (COMPSYNTH_HAVE_AVX2); other builds dispatch to the scalar kernel.

#include "sketch/batch_kernel.h"

#include <immintrin.h>

#include <bit>
#include <cstdint>

namespace compsynth::sketch::internal {

namespace {

// Lane width stays 8 (= kBatchLaneWidth): two 4-wide __m256d halves, so
// batch shapes match the scalar back-end exactly.
struct Avx2Lanes {
  struct Vec { __m256d lo, hi; };
  struct Mask { __m256d lo, hi; };  // per lane: all-ones or all-zeros

  static __m256d zero() { return _mm256_setzero_pd(); }
  static __m256d one() { return _mm256_set1_pd(1.0); }
  // Masks 1.0/0.0 out of an all-ones/all-zeros compare result.
  static __m256d bool01(__m256d m) { return _mm256_and_pd(m, one()); }
  static __m256d nonzero4(__m256d x) {
    // != is true on NaN (unordered compare), matching `x != 0` in C++.
    return _mm256_cmp_pd(x, zero(), _CMP_NEQ_UQ);
  }

  static Vec broadcast(double x) {
    return {_mm256_set1_pd(x), _mm256_set1_pd(x)};
  }
  static Vec load(const double* p) {
    return {_mm256_loadu_pd(p), _mm256_loadu_pd(p + 4)};
  }
  static void store(double* p, Vec a) {
    _mm256_storeu_pd(p, a.lo);
    _mm256_storeu_pd(p + 4, a.hi);
  }
  static Vec neg(Vec a) {
    // Negation is a sign-bit flip for every operand, NaN and zero included.
    const __m256d sign = _mm256_set1_pd(-0.0);
    return {_mm256_xor_pd(a.lo, sign), _mm256_xor_pd(a.hi, sign)};
  }
  static Vec add(Vec a, Vec b) {
    return {_mm256_add_pd(a.lo, b.lo), _mm256_add_pd(a.hi, b.hi)};
  }
  static Vec sub(Vec a, Vec b) {
    return {_mm256_sub_pd(a.lo, b.lo), _mm256_sub_pd(a.hi, b.hi)};
  }
  static Vec mul(Vec a, Vec b) {
    return {_mm256_mul_pd(a.lo, b.lo), _mm256_mul_pd(a.hi, b.hi)};
  }
  static Vec div(Vec a, Vec b) {
    return {_mm256_div_pd(a.lo, b.lo), _mm256_div_pd(a.hi, b.hi)};
  }
  // vminpd/vmaxpd return the SECOND operand on NaN or equal-valued inputs,
  // so swapping operands reproduces std::min(a,b) = (b < a) ? b : a and
  // std::max(a,b) = (a < b) ? b : a bit-for-bit (first operand wins ties
  // and NaN propagation).
  static Vec min(Vec a, Vec b) {
    return {_mm256_min_pd(b.lo, a.lo), _mm256_min_pd(b.hi, a.hi)};
  }
  static Vec max(Vec a, Vec b) {
    return {_mm256_max_pd(b.lo, a.lo), _mm256_max_pd(b.hi, a.hi)};
  }
  // Ordered-quiet predicates: false on NaN, like the C++ operators.
  static Vec cmp_lt(Vec a, Vec b) {
    return {bool01(_mm256_cmp_pd(a.lo, b.lo, _CMP_LT_OQ)),
            bool01(_mm256_cmp_pd(a.hi, b.hi, _CMP_LT_OQ))};
  }
  static Vec cmp_le(Vec a, Vec b) {
    return {bool01(_mm256_cmp_pd(a.lo, b.lo, _CMP_LE_OQ)),
            bool01(_mm256_cmp_pd(a.hi, b.hi, _CMP_LE_OQ))};
  }
  static Vec cmp_gt(Vec a, Vec b) {
    return {bool01(_mm256_cmp_pd(a.lo, b.lo, _CMP_GT_OQ)),
            bool01(_mm256_cmp_pd(a.hi, b.hi, _CMP_GT_OQ))};
  }
  static Vec cmp_ge(Vec a, Vec b) {
    return {bool01(_mm256_cmp_pd(a.lo, b.lo, _CMP_GE_OQ)),
            bool01(_mm256_cmp_pd(a.hi, b.hi, _CMP_GE_OQ))};
  }
  static Vec cmp_eq(Vec a, Vec b) {
    return {bool01(_mm256_cmp_pd(a.lo, b.lo, _CMP_EQ_OQ)),
            bool01(_mm256_cmp_pd(a.hi, b.hi, _CMP_EQ_OQ))};
  }
  static Vec cmp_ne(Vec a, Vec b) {
    // Unordered-quiet: true on NaN, like C++ operator!=.
    return {bool01(_mm256_cmp_pd(a.lo, b.lo, _CMP_NEQ_UQ)),
            bool01(_mm256_cmp_pd(a.hi, b.hi, _CMP_NEQ_UQ))};
  }
  static Vec logical_and(Vec a, Vec b) {
    return {bool01(_mm256_and_pd(nonzero4(a.lo), nonzero4(b.lo))),
            bool01(_mm256_and_pd(nonzero4(a.hi), nonzero4(b.hi)))};
  }
  static Vec logical_or(Vec a, Vec b) {
    return {bool01(_mm256_or_pd(nonzero4(a.lo), nonzero4(b.lo))),
            bool01(_mm256_or_pd(nonzero4(a.hi), nonzero4(b.hi)))};
  }
  static Vec logical_not(Vec a) {
    return {bool01(_mm256_cmp_pd(a.lo, zero(), _CMP_EQ_OQ)),
            bool01(_mm256_cmp_pd(a.hi, zero(), _CMP_EQ_OQ))};
  }
  static Mask truthy(Vec a) { return {nonzero4(a.lo), nonzero4(a.hi)}; }
  static Mask is_zero(Vec a) {
    // -0.0 == 0.0 holds and NaN == 0.0 does not, exactly as in C++.
    return {_mm256_cmp_pd(a.lo, zero(), _CMP_EQ_OQ),
            _mm256_cmp_pd(a.hi, zero(), _CMP_EQ_OQ)};
  }
  static Mask mask_all() {
    const __m256d ones = _mm256_castsi256_pd(_mm256_set1_epi64x(-1));
    return {ones, ones};
  }
  static Mask mask_and(Mask a, Mask b) {
    return {_mm256_and_pd(a.lo, b.lo), _mm256_and_pd(a.hi, b.hi)};
  }
  static Mask mask_andnot(Mask a, Mask b) {  // ~a & b
    return {_mm256_andnot_pd(a.lo, b.lo), _mm256_andnot_pd(a.hi, b.hi)};
  }
  static Mask from_bits(unsigned bits) {
    const double t = std::bit_cast<double>(~std::uint64_t{0});
    const auto lane = [&](unsigned i) { return ((bits >> i) & 1u) ? t : 0.0; };
    return {_mm256_set_pd(lane(3), lane(2), lane(1), lane(0)),
            _mm256_set_pd(lane(7), lane(6), lane(5), lane(4))};
  }
  static unsigned bits(Mask a) {
    return static_cast<unsigned>(_mm256_movemask_pd(a.lo)) |
           (static_cast<unsigned>(_mm256_movemask_pd(a.hi)) << 4);
  }
  static Vec blend(Vec a, Vec b, Mask m) {  // per lane: m ? b : a
    return {_mm256_blendv_pd(a.lo, b.lo, m.lo),
            _mm256_blendv_pd(a.hi, b.hi, m.hi)};
  }
  static Mask gt(Vec a, Vec b) {  // ordered-quiet: false on NaN
    return {_mm256_cmp_pd(a.lo, b.lo, _CMP_GT_OQ),
            _mm256_cmp_pd(a.hi, b.hi, _CMP_GT_OQ)};
  }
  static Mask abs_diff_gt(Vec a, Vec b, double bound) {
    // std::abs is a sign-bit clear for every double (NaN included); a NaN
    // difference then fails the ordered compare, like std::abs(x) > bound.
    const __m256d sign = _mm256_set1_pd(-0.0);
    const __m256d bd = _mm256_set1_pd(bound);
    const __m256d dlo = _mm256_andnot_pd(sign, _mm256_sub_pd(a.lo, b.lo));
    const __m256d dhi = _mm256_andnot_pd(sign, _mm256_sub_pd(a.hi, b.hi));
    return {_mm256_cmp_pd(dlo, bd, _CMP_GT_OQ),
            _mm256_cmp_pd(dhi, bd, _CMP_GT_OQ)};
  }
};

}  // namespace

void run_batch_avx2(const BatchProgram& p, const double* metrics,
                    const double* holes, double* out, LaneError* err) {
  run_batch<Avx2Lanes>(p, metrics, holes, out, err);
}

unsigned lane_gt_bits_avx2(const double* a, const double* b) {
  return run_gt_bits<Avx2Lanes>(a, b);
}

unsigned lane_abs_diff_gt_bits_avx2(const double* a, const double* b,
                                    double bound) {
  return run_abs_diff_gt_bits<Avx2Lanes>(a, b, bound);
}

}  // namespace compsynth::sketch::internal
