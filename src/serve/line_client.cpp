#include "serve/line_client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cmath>
#include <cstring>
#include <stdexcept>
#include <utility>

namespace compsynth::serve {

namespace {

// Matches the server-side flood guard (line_server.cpp).
constexpr std::size_t kMaxLine = 1 << 20;

void set_io_timeout(int fd, double seconds) {
  if (seconds <= 0) return;
  timeval tv{};
  tv.tv_sec = static_cast<time_t>(seconds);
  tv.tv_usec = static_cast<suseconds_t>(
      (seconds - std::floor(seconds)) * 1e6);
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof tv);
}

/// One connect attempt. Returns the fd, or -1 with errno set on a
/// retryable refusal; throws std::runtime_error on a malformed endpoint.
int try_connect(const std::string& endpoint) {
  if (endpoint.rfind("unix:", 0) == 0) {
    const std::string path = endpoint.substr(5);
    if (path.empty()) {
      throw std::runtime_error("endpoint unix: requires a socket path");
    }
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (path.size() >= sizeof addr.sun_path) {
      throw std::runtime_error("unix socket path too long: " + path);
    }
    std::strncpy(addr.sun_path, path.c_str(), sizeof addr.sun_path - 1);
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) {
      throw std::runtime_error(std::string("socket: ") + std::strerror(errno));
    }
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) < 0) {
      const int saved = errno;
      ::close(fd);
      errno = saved;
      return -1;
    }
    return fd;
  }
  if (endpoint.rfind("tcp:", 0) == 0) {
    std::string host = "127.0.0.1";
    std::string port_part = endpoint.substr(4);
    const std::size_t colon = port_part.rfind(':');
    if (colon != std::string::npos) {
      host = port_part.substr(0, colon);
      port_part = port_part.substr(colon + 1);
    }
    int port = -1;
    try {
      port = std::stoi(port_part);
    } catch (const std::exception&) {
      port = -1;
    }
    if (port <= 0 || port > 65535) {
      throw std::runtime_error("bad tcp port in endpoint: " + endpoint);
    }
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
      throw std::runtime_error("bad tcp host in endpoint (numeric IPv4): " +
                               host);
    }
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) {
      throw std::runtime_error(std::string("socket: ") + std::strerror(errno));
    }
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) < 0) {
      const int saved = errno;
      ::close(fd);
      errno = saved;
      return -1;
    }
    return fd;
  }
  throw std::runtime_error(
      "endpoint must be unix:<path> or tcp:[host:]<port>, got '" + endpoint +
      "'");
}

}  // namespace

LineClient::LineClient(LineClientConfig config) : config_(std::move(config)) {
  const int attempts =
      config_.connect_retry.max_attempts < 1 ? 1
                                             : config_.connect_retry.max_attempts;
  int last_errno = 0;
  for (int attempt = 1; attempt <= attempts; ++attempt) {
    if (attempt > 1) {
      util::sleep_seconds(config_.connect_retry.backoff_before(attempt));
    }
    fd_ = try_connect(config_.endpoint);
    if (fd_ >= 0) {
      set_io_timeout(fd_, config_.io_timeout_s);
      return;
    }
    last_errno = errno;
    // Only the daemon-still-starting races are worth retrying: the listener
    // hasn't bound yet (ECONNREFUSED) or a unix socket path hasn't been
    // created yet (ENOENT). Everything else is a configuration error.
    if (last_errno != ECONNREFUSED && last_errno != ENOENT) break;
  }
  throw util::TransientError("connect " + config_.endpoint + ": " +
                             std::strerror(last_errno));
}

LineClient::~LineClient() {
  if (fd_ >= 0) ::close(fd_);
}

std::string LineClient::request(const std::string& line) {
  if (fd_ < 0) {
    throw util::TransientError("connection to " + config_.endpoint +
                               " already failed");
  }
  std::string out = line;
  out.push_back('\n');
  std::size_t sent = 0;
  while (sent < out.size()) {
    const ssize_t n =
        ::send(fd_, out.data() + sent, out.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      const std::string why = (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK))
                                  ? "send timeout"
                                  : std::string("send: ") + std::strerror(errno);
      ::close(fd_);
      fd_ = -1;
      throw util::TransientError(config_.endpoint + ": " + why);
    }
    sent += static_cast<std::size_t>(n);
  }
  char chunk[4096];
  for (;;) {
    const std::size_t nl = buffer_.find('\n');
    if (nl != std::string::npos) {
      std::string response = buffer_.substr(0, nl);
      buffer_.erase(0, nl + 1);
      if (!response.empty() && response.back() == '\r') response.pop_back();
      return response;
    }
    if (buffer_.size() > kMaxLine) {
      ::close(fd_);
      fd_ = -1;
      throw util::TransientError(config_.endpoint + ": response line too long");
    }
    const ssize_t n = ::recv(fd_, chunk, sizeof chunk, 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) {
      const std::string why =
          (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK))
              ? "recv timeout"
              : (n == 0 ? "connection closed mid-response"
                        : std::string("recv: ") + std::strerror(errno));
      ::close(fd_);
      fd_ = -1;
      throw util::TransientError(config_.endpoint + ": " + why);
    }
    buffer_.append(chunk, static_cast<std::size_t>(n));
  }
}

}  // namespace compsynth::serve
