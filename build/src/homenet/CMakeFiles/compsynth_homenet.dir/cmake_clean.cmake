file(REMOVE_RECURSE
  "CMakeFiles/compsynth_homenet.dir/policy.cpp.o"
  "CMakeFiles/compsynth_homenet.dir/policy.cpp.o.d"
  "libcompsynth_homenet.a"
  "libcompsynth_homenet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compsynth_homenet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
