#include "solver/finder.h"

#include "sketch/eval.h"
#include "sketch/typecheck.h"

namespace compsynth::solver {

void validate_domain(const sketch::Sketch& sketch, const ScenarioDomain& domain) {
  if (domain.constraint == nullptr) return;
  // Boolean over metrics only: hole_count = 0 rejects any hole reference.
  sketch::typecheck_expr(*domain.constraint, sketch.metrics().size(),
                         /*hole_count=*/0, /*expect_numeric=*/false);
}

bool domain_contains(const sketch::Sketch& sketch, const ScenarioDomain& domain,
                     std::span<const double> metrics) {
  if (metrics.size() != sketch.metrics().size()) return false;
  for (std::size_t i = 0; i < metrics.size(); ++i) {
    const sketch::MetricSpec& m = sketch.metrics()[i];
    if (metrics[i] < m.lo || metrics[i] > m.hi) return false;
  }
  if (domain.constraint == nullptr) return true;
  return sketch::eval_bool(*domain.constraint, metrics, {});
}

}  // namespace compsynth::solver
