// compsynth_cli — command-line driver for comparative synthesis.
//
// Usage:
//   compsynth_cli <sketch-file> [options]
//
// Options:
//   --target <expr>     simulate the user with a latent objective given as a
//                       DSL expression over the sketch's metrics
//                       (e.g. --target "throughput - 2*latency");
//                       without it, YOU answer preference queries (1/2/=)
//   --backend z3|grid   candidate finder (default: z3, the paper's engine)
//   --workers E1,E2,..  distribute the grid back-end's full version-space
//                       rebuilds across compsynth_worker endpoints
//                       (unix:<path> or [tcp:]host:port, comma-separated;
//                       docs/DISTRIBUTED.md). Implies --backend grid.
//                       Worker failure falls back to the local scan, so
//                       results are identical with or without workers.
//   --portfolio [mode]  race the grid and Z3 finders per query (the solver
//                       acceleration layer, docs/SOLVER.md §Portfolio);
//                       mode = race (default) | pin-grid | pin-z3, the pins
//                       being deterministic single-leg variants. Overrides
//                       --backend.
//   --solver-cache [n]  cache Z3 verdicts across queries (n = max entries,
//                       default 4096); repeated identical (sketch, graph)
//                       queries replay without touching the solver
//   --no-incremental    rebuild the Z3 encoding from scratch every query
//                       instead of extending it via push/pop (debugging /
//                       A-B timing; verdicts are identical either way)
//   --pairs <k>         scenario pairs ranked per iteration (default 1)
//   --initial <n>       initial random scenarios (default 5)
//   --max-iters <n>     interaction budget (default 500)
//   --seed <n>          RNG seed (default 1)
//   --resume <file>     load a saved preference graph before starting
//   --save <file>       write the final preference graph for later resume
//   --trace <file>      append a structured JSONL trace of the run (schema:
//                       docs/OBSERVABILITY.md; render with trace_report)
//   --metrics           print the metrics registry (counters, gauges,
//                       latency quantiles) as Markdown after the run
//   --quiet             suppress the per-iteration transcript
//
// Exit status: 0 on convergence, 2 when the answers contradict the sketch,
// 3 on iteration budget exhaustion, 4 on solver give-up, 1 on usage errors.
#include <fstream>
#include <iostream>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "dist/coordinator.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "oracle/ground_truth.h"
#include "oracle/variants.h"
#include "pref/serialize.h"
#include "sketch/parser.h"
#include "sketch/printer.h"
#include "synth/synthesizer.h"

namespace {

using namespace compsynth;

struct Options {
  std::string sketch_path;
  std::optional<std::string> target_expr;
  std::string backend = "z3";
  bool portfolio = false;
  std::vector<std::string> workers;
  std::optional<std::string> resume_path;
  std::optional<std::string> save_path;
  std::optional<std::string> trace_path;
  bool print_metrics = false;
  synth::SynthesisConfig config;
  bool quiet = false;
};

void usage(std::ostream& os) {
  os << "usage: compsynth_cli <sketch-file> [--target <expr>] [--backend z3|grid]\n"
        "       [--workers ep1,ep2,...] [--portfolio [race|pin-grid|pin-z3]]\n"
        "       [--solver-cache [entries]] [--no-incremental] [--pairs k]\n"
        "       [--initial n] [--max-iters n] [--seed n] [--resume file]\n"
        "       [--save file] [--trace file] [--metrics] [--quiet]\n";
}

std::optional<Options> parse_args(int argc, char** argv) {
  Options opt;
  auto need_value = [&](int& i) -> std::optional<std::string> {
    if (i + 1 >= argc) {
      std::cerr << argv[i] << " requires a value\n";
      return std::nullopt;
    }
    return std::string(argv[++i]);
  };
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") return std::nullopt;
    if (arg == "--quiet") {
      opt.quiet = true;
    } else if (arg == "--target") {
      if (auto v = need_value(i)) opt.target_expr = *v; else return std::nullopt;
    } else if (arg == "--backend") {
      if (auto v = need_value(i)) opt.backend = *v; else return std::nullopt;
      if (opt.backend != "z3" && opt.backend != "grid") {
        std::cerr << "unknown backend '" << opt.backend << "'\n";
        return std::nullopt;
      }
    } else if (arg == "--workers") {
      auto v = need_value(i);
      if (!v) return std::nullopt;
      std::string rest = *v;
      while (!rest.empty()) {
        const std::size_t comma = rest.find(',');
        std::string ep = rest.substr(0, comma);
        rest = comma == std::string::npos ? std::string()
                                          : rest.substr(comma + 1);
        if (ep.empty()) continue;
        // Bare host:port is sugar for tcp:host:port.
        if (ep.rfind("unix:", 0) != 0 && ep.rfind("tcp:", 0) != 0) {
          ep = "tcp:" + ep;
        }
        opt.workers.push_back(ep);
      }
      if (opt.workers.empty()) {
        std::cerr << "--workers requires at least one endpoint\n";
        return std::nullopt;
      }
      opt.backend = "grid";  // the distribution seam is grid-only
    } else if (arg == "--portfolio") {
      opt.portfolio = true;
      if (i + 1 < argc) {
        const std::string next = argv[i + 1];
        if (next == "race" || next == "pin-grid" || next == "pin-z3") {
          ++i;
          opt.config.portfolio_mode =
              next == "race"       ? solver::PortfolioMode::kRace
              : next == "pin-grid" ? solver::PortfolioMode::kPinGrid
                                   : solver::PortfolioMode::kPinZ3;
        }
      }
    } else if (arg == "--solver-cache") {
      std::size_t entries = 4096;
      if (i + 1 < argc) {
        const std::string next = argv[i + 1];
        if (!next.empty() &&
            next.find_first_not_of("0123456789") == std::string::npos) {
          ++i;
          entries = static_cast<std::size_t>(std::stoull(next));
        }
      }
      opt.config.solver_cache = std::make_shared<solver::SolverCache>(entries);
    } else if (arg == "--no-incremental") {
      opt.config.finder.incremental = false;
    } else if (arg == "--pairs") {
      if (auto v = need_value(i)) opt.config.pairs_per_iteration = std::stoi(*v);
      else return std::nullopt;
    } else if (arg == "--initial") {
      if (auto v = need_value(i)) opt.config.initial_scenarios = std::stoi(*v);
      else return std::nullopt;
    } else if (arg == "--max-iters") {
      if (auto v = need_value(i)) opt.config.max_iterations = std::stoi(*v);
      else return std::nullopt;
    } else if (arg == "--seed") {
      if (auto v = need_value(i)) opt.config.seed = std::stoull(*v);
      else return std::nullopt;
    } else if (arg == "--resume") {
      if (auto v = need_value(i)) opt.resume_path = *v; else return std::nullopt;
    } else if (arg == "--save") {
      if (auto v = need_value(i)) opt.save_path = *v; else return std::nullopt;
    } else if (arg == "--trace") {
      if (auto v = need_value(i)) opt.trace_path = *v; else return std::nullopt;
    } else if (arg == "--metrics") {
      opt.print_metrics = true;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "unknown option '" << arg << "'\n";
      return std::nullopt;
    } else if (opt.sketch_path.empty()) {
      opt.sketch_path = arg;
    } else {
      std::cerr << "unexpected argument '" << arg << "'\n";
      return std::nullopt;
    }
  }
  if (opt.sketch_path.empty()) {
    std::cerr << "missing sketch file\n";
    return std::nullopt;
  }
  return opt;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open '" + path + "'");
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

}  // namespace

int main(int argc, char** argv) {
  const std::optional<Options> opt = parse_args(argc, argv);
  if (!opt) {
    usage(std::cerr);
    return 1;
  }

  try {
    const std::string sketch_text = read_file(opt->sketch_path);
    const sketch::Sketch sk = sketch::parse_sketch(sketch_text);
    if (!opt->quiet) {
      std::cout << "loaded sketch '" << sk.name() << "' ("
                << sk.candidate_space_size() << " candidates)\n";
    }

    std::unique_ptr<oracle::Oracle> user;
    if (opt->target_expr) {
      user = std::make_unique<oracle::GroundTruthOracle>(
          sk, sketch::parse_expr(*opt->target_expr, sk),
          opt->config.finder.tie_tolerance);
    } else {
      user = std::make_unique<oracle::InteractiveOracle>(sk, std::cin, std::cout);
    }

    // Optional observability: a metrics registry when requested and a file
    // trace sink when a path is given. Both hang off the config's RunContext
    // and cost nothing when absent.
    obs::MetricsRegistry metrics;
    std::unique_ptr<obs::FileTraceSink> trace_sink;
    synth::SynthesisConfig config = opt->config;
    if (opt->print_metrics) config.obs.metrics = &metrics;
    if (opt->trace_path) {
      trace_sink = std::make_unique<obs::FileTraceSink>(*opt->trace_path);
      config.obs.tracer = trace_sink.get();
      config.obs.run_id = sk.name();
    }
    config.obs.seed = config.seed;

    // Distributed version-space sync: the coordinator must outlive the
    // synthesizer (SynthesisConfig holds a non-owning pointer to it).
    std::unique_ptr<dist::ShardCoordinator> coordinator;
    if (!opt->workers.empty()) {
      dist::CoordinatorConfig cc;
      cc.workers = opt->workers;
      cc.sketch_text = sketch_text;
      cc.tie_tolerance = config.finder.tie_tolerance;
      cc.obs = config.obs;
      coordinator = std::make_unique<dist::ShardCoordinator>(std::move(cc));
      config.grid_shard_backend = coordinator.get();
      if (!opt->quiet) {
        std::cout << "distributing grid sync across " << opt->workers.size()
                  << " worker(s)\n";
      }
    }

    synth::Synthesizer synthesizer =
        opt->portfolio ? synth::make_portfolio_synthesizer(sk, config)
        : opt->backend == "grid" ? synth::make_grid_synthesizer(sk, config)
                                 : synth::make_z3_synthesizer(sk, config);

    pref::PreferenceGraph initial(opt->config.tolerate_inconsistency);
    if (opt->resume_path) {
      std::ifstream in(*opt->resume_path);
      if (!in) throw std::runtime_error("cannot open '" + *opt->resume_path + "'");
      initial = pref::deserialize(in, opt->config.tolerate_inconsistency);
      if (!opt->quiet) {
        std::cout << "resumed session: " << initial.vertex_count()
                  << " scenarios, " << initial.edges().size() << " preferences\n";
      }
    }

    const synth::SynthesisResult result = synthesizer.run(*user, std::move(initial));

    if (!opt->quiet) {
      for (const synth::IterationRecord& it : result.transcript) {
        std::cout << "iteration " << it.index << ": " << it.solver_seconds
                  << " s, " << it.pairs_presented << " pair(s)\n";
      }
    }
    std::cout << "iterations: " << result.iterations
              << "  user answers: " << result.oracle_comparisons
              << "  solver time: " << result.total_solver_seconds << " s\n";

    if (opt->save_path) {
      std::ofstream out(*opt->save_path);
      if (!out) throw std::runtime_error("cannot write '" + *opt->save_path + "'");
      pref::serialize(result.graph, out);
      std::cout << "session saved to " << *opt->save_path << "\n";
    }

    if (opt->trace_path && !opt->quiet) {
      std::cout << "trace written to " << *opt->trace_path
                << " (render with: trace_report " << *opt->trace_path << ")\n";
    }
    if (opt->print_metrics) std::cout << "\n" << metrics.render_markdown();

    switch (result.status) {
      case synth::SynthesisStatus::kConverged:
        std::cout << "converged:\n  "
                  << sketch::print_instantiated(sk, *result.objective) << "\n";
        return 0;
      case synth::SynthesisStatus::kIterationLimit:
        std::cout << "iteration budget exhausted; best consistent candidate:\n";
        if (result.objective) {
          std::cout << "  " << sketch::print_instantiated(sk, *result.objective)
                    << "\n";
        }
        return 3;
      case synth::SynthesisStatus::kNoCandidate:
        std::cout << "the answers contradict every instance of this sketch\n";
        return 2;
      case synth::SynthesisStatus::kSolverGaveUp:
        std::cout << "solver gave up\n";
        return 4;
    }
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  return 1;
}
