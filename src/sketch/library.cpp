#include "sketch/library.h"

#include "sketch/parser.h"

namespace compsynth::sketch {

namespace {

Sketch parse_or_die(const char* source) { return parse_sketch(source); }

constexpr const char* kSwanSource = R"(
# The SWAN objective sketch of Fig. 2a. Satisfying scenarios (throughput at
# least tp_thrsh AND latency at most l_thrsh) earn a +1000 bonus; the two
# regions weigh the throughput*latency penalty with independent slopes.
sketch swan(throughput in [0, 10], latency in [0, 200]) {
  hole tp_thrsh in grid(0, 1, 11);
  hole l_thrsh  in grid(0, 5, 41);
  hole slope1   in grid(0, 1, 11);
  hole slope2   in grid(0, 1, 11);
  if throughput >= tp_thrsh && latency <= l_thrsh
  then throughput - slope1*throughput*latency + 1000
  else throughput - slope2*throughput*latency
}
)";

constexpr const char* kSwanMultiRegionSource = R"(
# Three-region generalization: a "great" region (both thresholds met with
# margin), a "good" region, and the rest, each with its own slope.
sketch swan3(throughput in [0, 10], latency in [0, 200]) {
  hole tp_hi   in grid(0, 1, 11);
  hole l_lo    in grid(0, 10, 21);
  hole tp_lo   in grid(0, 1, 11);
  hole l_hi    in grid(0, 10, 21);
  hole slope1  in grid(0, 1, 6);
  hole slope2  in grid(0, 1, 6);
  hole slope3  in grid(0, 1, 6);
  if throughput >= tp_hi && latency <= l_lo
  then throughput - slope1*throughput*latency + 2000
  else if throughput >= tp_lo && latency <= l_hi
       then throughput - slope2*throughput*latency + 1000
       else throughput - slope3*throughput*latency
}
)";

constexpr const char* kSwanFormSource = R"(
# Structural-hole variant: even the *form* of the latency penalty is left
# unspecified (paper 4.1: "the exact functions in the summarization could be
# left unspecified"). The selector hole `form` picks among a
# throughput-proportional penalty, an additive penalty, and a capped one.
sketch swan_form(throughput in [0, 10], latency in [0, 200]) {
  hole form    in grid(0, 1, 3);
  hole slope   in grid(0, 1, 6);
  hole l_thrsh in grid(0, 10, 21);
  choose form {
    throughput - slope*throughput*latency,
    10*throughput - slope*latency,
    throughput - min(slope*latency, 100)
  } + if latency <= l_thrsh then 1000 else 0
}
)";

constexpr const char* kSwanFairSource = R"(
# Flow-level extension (paper 3: metrics "could include the throughput and
# latency of individual flows"). Alongside the aggregate throughput and
# latency, min_frac is the worst-served flow's delivered fraction of its
# demand; the satisfaction region also requires a fairness floor, and the
# learned weight w_fair trades aggregate throughput against the worst flow.
sketch swan_fair(throughput in [0, 100], latency in [0, 200], min_frac in [0, 1]) {
  hole tp_thrsh in grid(0, 10, 11);
  hole l_thrsh  in grid(0, 10, 21);
  hole f_thrsh  in grid(0, 0.1, 11);
  hole slope    in grid(0, 1, 6);
  hole w_fair   in grid(0, 10, 6);
  if throughput >= tp_thrsh && latency <= l_thrsh && min_frac >= f_thrsh
  then throughput - slope*latency + w_fair*10*min_frac + 10000
  else throughput - slope*latency + w_fair*10*min_frac
}
)";

constexpr const char* kSwanPrioritySource = R"(
# Multi-class extension (paper 2: "rather than strict priority, a weighted
# max-min fair allocation may be more reflective of designer intent").
# Metrics are the aggregate throughput of the high-priority class, of the
# low-priority class, and the traffic-weighted latency. The high-class
# weight is pinned to 10 (rankings are scale-invariant); w_lo expresses how
# much the architect values background traffic, and hi_floor is an absolute
# requirement on the interactive class.
sketch swan_priority(hi_tput in [0, 50], lo_tput in [0, 50], latency in [0, 200]) {
  hole hi_floor in grid(0, 2, 11);
  hole w_lo     in grid(0, 1, 11);
  hole slope    in grid(0, 0.5, 5);
  if hi_tput >= hi_floor
  then 10*hi_tput + w_lo*lo_tput - slope*latency + 10000
  else 10*hi_tput + w_lo*lo_tput - slope*latency
}
)";

constexpr const char* kAbrQoeSource = R"(
# QoE objective for HTTP adaptive streaming (paper 6.2). Sessions that keep
# rebuffering under a tolerable threshold get a bonus; otherwise rebuffering
# is punished at double weight.
sketch abr_qoe(bitrate in [0, 8], rebuf in [0, 100],
               switches in [0, 20], startup in [0, 10]) {
  hole rb_thrsh  in grid(0, 1, 11);
  hole w_rebuf   in grid(0, 0.5, 9);
  hole w_switch  in grid(0, 0.25, 9);
  hole w_startup in grid(0, 0.25, 9);
  if rebuf <= rb_thrsh
  then bitrate - w_rebuf*rebuf - w_switch*switches - w_startup*startup + 100
  else bitrate - 2*w_rebuf*rebuf - w_switch*switches - w_startup*startup
}
)";

constexpr const char* kHomenetSource = R"(
# Home-network bandwidth policy (paper 6.2). The interactive-class weight is
# pinned to 10 (rankings are invariant under positive scaling), and meeting a
# minimum interactive guarantee earns a bonus.
sketch homenet(interactive in [0, 100], streaming in [0, 100], bulk in [0, 100]) {
  hole min_interactive in grid(0, 5, 11);
  hole w_streaming     in grid(0, 1, 11);
  hole w_bulk          in grid(0, 1, 11);
  if interactive >= min_interactive
  then 10*interactive + w_streaming*streaming + w_bulk*bulk + 10000
  else 10*interactive + w_streaming*streaming + w_bulk*bulk
}
)";

}  // namespace

const Sketch& swan_sketch() {
  static const Sketch sketch = parse_or_die(kSwanSource);
  return sketch;
}

HoleAssignment swan_target() { return swan_target_with(1, 50, 1, 5); }

HoleAssignment swan_target_with(double tp_thrsh, double l_thrsh, double slope1,
                                double slope2) {
  const Sketch& s = swan_sketch();
  HoleAssignment a;
  a.index = {s.holes()[0].nearest_index(tp_thrsh),
             s.holes()[1].nearest_index(l_thrsh),
             s.holes()[2].nearest_index(slope1),
             s.holes()[3].nearest_index(slope2)};
  return a;
}

const Sketch& swan_multi_region_sketch() {
  static const Sketch sketch = parse_or_die(kSwanMultiRegionSource);
  return sketch;
}

const Sketch& swan_form_sketch() {
  static const Sketch sketch = parse_or_die(kSwanFormSource);
  return sketch;
}

HoleAssignment swan_form_target(std::int64_t form, double slope, double l_thrsh) {
  const Sketch& s = swan_form_sketch();
  HoleAssignment a;
  a.index = {form, s.holes()[1].nearest_index(slope),
             s.holes()[2].nearest_index(l_thrsh)};
  return a;
}

const Sketch& swan_fair_sketch() {
  static const Sketch sketch = parse_or_die(kSwanFairSource);
  return sketch;
}

const Sketch& swan_priority_sketch() {
  static const Sketch sketch = parse_or_die(kSwanPrioritySource);
  return sketch;
}

const Sketch& abr_qoe_sketch() {
  static const Sketch sketch = parse_or_die(kAbrQoeSource);
  return sketch;
}

const Sketch& homenet_sketch() {
  static const Sketch sketch = parse_or_die(kHomenetSource);
  return sketch;
}

}  // namespace compsynth::sketch
