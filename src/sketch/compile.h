// Compiled evaluator for sketch expressions.
//
// Lowers a (type-checked) Expr tree into a flat instruction tape executed by
// a small stack machine: one contiguous std::vector<Instr>, no recursion, no
// per-node shared_ptr hops. Bulk candidate scoring — GridFinder's version
// space sync, distinguishing-pair search and bisection scoring — runs the
// tape instead of the tree interpreter; eval.h remains the reference
// semantics and tests/compile_test.cpp cross-checks the two on every library
// sketch plus fuzzer-generated ASTs (including error paths).
//
// Semantics are bit-for-bit those of eval_numeric/eval_bool:
//   * kIte evaluates the condition and then ONLY the taken branch; kChoice
//     evaluates only the selected alternative (selector rounded with
//     std::llround and clamped to [0, N-1]). Branches therefore compile to
//     jump-guarded regions — a division by zero in an untaken branch must
//     not throw.
//   * Division by zero throws EvalError("division by zero") when reached.
//   * Ill-typed nodes (boolean in numeric position or vice versa) compile to
//     kRaise instructions that throw the interpreter's exact message when —
//     and only when — execution reaches them; compilation itself never
//     throws on ill-typed input.
//   * && / || evaluate both operands (no short-circuit), like the tree
//     interpreter and the Z3 encoding.
// Constant folding only replaces a subtree with the double the interpreter
// would have produced for it (and never folds a division whose divisor folds
// to zero), so folded and unfolded tapes agree bit-for-bit.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "sketch/ast.h"
#include "sketch/eval.h"

namespace compsynth::sketch {

/// One tape instruction. Booleans live on the same stack as numbers,
/// encoded as 1.0 / 0.0 (comparisons push exactly these two values).
struct Instr {
  enum class Op : std::uint8_t {
    kPushConst,   // push value
    kPushMetric,  // push metrics[a]
    kPushHole,    // push holes[a]
    kNeg,         // unary minus on top of stack
    kAdd, kSub, kMul,
    kDiv,         // throws EvalError on zero divisor
    kMin, kMax,
    kLt, kLe, kGt, kGe, kEq, kNe,  // pop 2 numbers, push 1.0 / 0.0
    kAnd, kOr,    // pop 2 booleans (both already evaluated), push combined
    kNot,         // invert boolean on top of stack
    kJump,        // pc += a (relative to the instruction after this one)
    kJumpIfZero,  // pop; if it is 0.0, pc += a
    kChoice,      // clamp(llround(holes[a])) into the jump table at
                  // tables[b] (layout: count, then count offsets)
    kRaise,       // throw EvalError: a = 0 numeric-position, 1 bool-position
  };

  Op op;
  std::int32_t a = 0;  // metric/hole id, jump offset, table base or message id
  std::int32_t b = 0;  // kChoice: base index into the jump-offset table
  double value = 0;    // kPushConst payload
};

/// A sketch body lowered to a tape, ready for repeated evaluation.
///
/// Immutable after construction; eval/eval_many are const and safe to call
/// concurrently from many threads (each call uses its own value stack).
class CompiledSketch {
 public:
  /// Compiles the sketch's body. Never throws on the (always well-typed)
  /// trees a Sketch can hold; arity errors surface at eval time exactly as
  /// with eval_with_values.
  explicit CompiledSketch(const Sketch& sketch);

  /// Compiles a bare numeric expression over `metric_count` metrics and
  /// `hole_count` holes — the tree need not be well-typed (ill-typed nodes
  /// become runtime raises). Used by the differential tests.
  CompiledSketch(const Expr& body, std::size_t metric_count,
                 std::size_t hole_count);

  /// Evaluates the tape. Argument and error semantics match
  /// eval_with_values(sketch, holes, metrics) bit-for-bit.
  double eval(std::span<const double> metrics,
              std::span<const double> holes) const;

  /// Batched evaluation over `out.size()` scenarios stored contiguously in
  /// `metrics_flat` (scenario i occupies [i*metric_count, (i+1)*metric_count)).
  /// Equivalent to calling eval per scenario, amortizing the stack setup.
  void eval_many(std::span<const double> metrics_flat,
                 std::span<const double> holes, std::span<double> out) const;

  std::size_t metric_count() const { return metric_count_; }
  std::size_t hole_count() const { return hole_count_; }

  /// Introspection for tests and diagnostics.
  const std::vector<Instr>& tape() const { return tape_; }
  std::size_t max_stack() const { return max_stack_; }

 private:
  double run(std::span<const double> metrics, std::span<const double> holes,
             double* stack) const;

  std::vector<Instr> tape_;
  std::vector<std::int32_t> tables_;  // kChoice jump tables, back to back
  std::size_t metric_count_ = 0;
  std::size_t hole_count_ = 0;
  std::size_t max_stack_ = 0;
};

}  // namespace compsynth::sketch
