#include "util/stats.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <sstream>

namespace compsynth::util {

double mean(const std::vector<double>& xs) {
  if (xs.empty()) return 0;
  return std::accumulate(xs.begin(), xs.end(), 0.0) /
         static_cast<double>(xs.size());
}

double stddev(const std::vector<double>& xs) {
  if (xs.size() < 2) return 0;
  const double m = mean(xs);
  double acc = 0;
  for (double x : xs) acc += (x - m) * (x - m);
  return std::sqrt(acc / static_cast<double>(xs.size() - 1));
}

double median(std::vector<double> xs) { return quantile(std::move(xs), 0.5); }

double quantile(std::vector<double> xs, double q) {
  if (xs.empty()) return 0;
  q = std::clamp(q, 0.0, 1.0);
  std::sort(xs.begin(), xs.end());
  const double pos = q * static_cast<double>(xs.size() - 1);
  const auto lo = static_cast<std::size_t>(std::floor(pos));
  const auto hi = static_cast<std::size_t>(std::ceil(pos));
  const double frac = pos - std::floor(pos);
  return xs[lo] * (1.0 - frac) + xs[hi] * frac;
}

double siqr(const std::vector<double>& xs) {
  if (xs.empty()) return 0;
  return (quantile(xs, 0.75) - quantile(xs, 0.25)) / 2.0;
}

double min(const std::vector<double>& xs) {
  if (xs.empty()) return 0;
  return *std::min_element(xs.begin(), xs.end());
}

double max(const std::vector<double>& xs) {
  if (xs.empty()) return 0;
  return *std::max_element(xs.begin(), xs.end());
}

Summary summarize(const std::vector<double>& xs) {
  Summary s;
  s.count = xs.size();
  s.mean = mean(xs);
  s.median = median(xs);
  s.siqr = siqr(xs);
  s.min = min(xs);
  s.max = max(xs);
  s.stddev = stddev(xs);
  return s;
}

std::string format_summary(const Summary& s, int precision) {
  std::ostringstream os;
  os.precision(precision);
  os << std::fixed << s.mean << "/" << s.median << "/" << s.siqr;
  return os.str();
}

}  // namespace compsynth::util
