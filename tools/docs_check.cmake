# CTest script: documentation link/path checker.
#
# 1. Every relative Markdown link target in docs/*.md, README.md and
#    EXPERIMENTS.md must exist on disk (anchors stripped; http/https/mailto
#    and pure in-page anchors are skipped).
# 2. Every backticked repo path cited in docs/ARCHITECTURE.md
#    (`src/...`, `tests/...`, `bench/...`, `tools/...`, `docs/...`,
#    `examples/...`) must exist — the module map must not drift from the tree.
#
# Matches are pulled with an explicit match-and-advance loop: on this CMake,
# string(REGEX MATCHALL) hands back one ;-escaped blob that foreach() will
# not split.
if(NOT DEFINED REPO_ROOT)
  message(FATAL_ERROR "REPO_ROOT not set")
endif()

set(errors "")

file(GLOB doc_files "${REPO_ROOT}/docs/*.md")
list(APPEND doc_files "${REPO_ROOT}/README.md" "${REPO_ROOT}/EXPERIMENTS.md")

foreach(doc ${doc_files})
  if(NOT EXISTS "${doc}")
    continue()
  endif()
  file(READ "${doc}" text)
  get_filename_component(doc_dir "${doc}" DIRECTORY)
  file(RELATIVE_PATH doc_rel "${REPO_ROOT}" "${doc}")

  # --- Markdown links: [label](target) ---
  set(rest "${text}")
  while(rest MATCHES "\\]\\(([^)\n]+)\\)")
    set(target "${CMAKE_MATCH_1}")
    string(FIND "${rest}" "](${target})" pos)
    string(LENGTH "](${target})" len)
    math(EXPR pos "${pos}+${len}")
    string(SUBSTRING "${rest}" ${pos} -1 rest)

    # External links and in-page anchors are out of scope.
    if(target MATCHES "^(https?|mailto):" OR target MATCHES "^#")
      continue()
    endif()
    # Strip a trailing #anchor.
    string(REGEX REPLACE "#.*$" "" target "${target}")
    if(target STREQUAL "")
      continue()
    endif()
    if(NOT EXISTS "${doc_dir}/${target}")
      list(APPEND errors "${doc_rel}: broken link '${target}'")
    endif()
  endwhile()
endforeach()

# --- Backticked repo paths in the architecture doc ---
set(arch "${REPO_ROOT}/docs/ARCHITECTURE.md")
if(NOT EXISTS "${arch}")
  list(APPEND errors "docs/ARCHITECTURE.md is missing")
else()
  file(READ "${arch}" text)
  set(n_cites 0)
  set(rest "${text}")
  while(rest MATCHES "`((src|tests|bench|tools|docs|examples)/[A-Za-z0-9_./-]+)`")
    set(path "${CMAKE_MATCH_1}")
    string(FIND "${rest}" "`${path}`" pos)
    string(LENGTH "`${path}`" len)
    math(EXPR pos "${pos}+${len}")
    string(SUBSTRING "${rest}" ${pos} -1 rest)

    math(EXPR n_cites "${n_cites}+1")
    if(NOT EXISTS "${REPO_ROOT}/${path}")
      list(APPEND errors
           "docs/ARCHITECTURE.md: cited path '${path}' does not exist")
    endif()
  endwhile()
  if(n_cites EQUAL 0)
    list(APPEND errors
         "docs/ARCHITECTURE.md cites no repo paths — checker regex drifted?")
  endif()
endif()

if(NOT errors STREQUAL "")
  string(REPLACE ";" "\n  " pretty "${errors}")
  message(FATAL_ERROR "docs-check failed:\n  ${pretty}")
endif()
message(STATUS "docs-check passed")
