// Oracle behaviour: ground-truth comparisons/rankings, noise injection,
// indifference, interactive I/O, and interaction counting.
#include <gtest/gtest.h>

#include <sstream>

#include "oracle/ground_truth.h"
#include "oracle/variants.h"
#include "sketch/library.h"
#include "sketch/parser.h"

namespace compsynth::oracle {
namespace {

using pref::Scenario;

Scenario sc(double t, double l) { return Scenario{{t, l}}; }

GroundTruthOracle make_truth(double tie_tol = 1e-4) {
  return GroundTruthOracle(sketch::swan_sketch(), sketch::swan_target(), tie_tol);
}

TEST(GroundTruth, PrefersPaperExampleOrdering) {
  auto oracle = make_truth();
  // Fig. 2b target: f(5,10) = 955, f(2,100) = -998.
  EXPECT_EQ(oracle.compare(sc(5, 10), sc(2, 100)), Preference::kFirst);
  EXPECT_EQ(oracle.compare(sc(2, 100), sc(5, 10)), Preference::kSecond);
}

TEST(GroundTruth, ReportsTiesWithinTolerance) {
  auto oracle = make_truth(1e-4);
  EXPECT_EQ(oracle.compare(sc(3, 40), sc(3, 40)), Preference::kTie);
  // Derivative in latency at (3,40) is -slope1*3 = -3/ms; 1e-6 ms apart is
  // ~3e-6 difference — under the tolerance.
  EXPECT_EQ(oracle.compare(sc(3, 40), sc(3, 40 + 1e-6)), Preference::kTie);
}

TEST(GroundTruth, TargetValueMatchesEval) {
  auto oracle = make_truth();
  EXPECT_DOUBLE_EQ(oracle.target_value(sc(5, 10)), 955);
  EXPECT_DOUBLE_EQ(oracle.target_value(sc(2, 100)), -998);
}

TEST(GroundTruth, RankProducesDescendingChain) {
  auto oracle = make_truth();
  const std::vector<Scenario> batch{sc(2, 100), sc(5, 10), sc(9, 20), sc(0.5, 5)};
  const RankingResponse r = oracle.rank(batch);
  // Chain over 4 scenarios: 3 adjacent relations, no ties here.
  EXPECT_EQ(r.preferences.size() + r.ties.size(), 3u);
  for (const auto& p : r.preferences) {
    EXPECT_GT(oracle.target_value(batch[p.better]),
              oracle.target_value(batch[p.worse]));
  }
}

TEST(GroundTruth, RankReportsTiesBetweenEqualScenarios) {
  auto oracle = make_truth();
  const std::vector<Scenario> batch{sc(3, 40), sc(3, 40), sc(5, 10)};
  const RankingResponse r = oracle.rank(batch);
  EXPECT_EQ(r.ties.size(), 1u);
}

TEST(GroundTruth, ExpressionTargetOutsideSketchSpace) {
  // A latency-only user: f = -latency. Not expressible by the SWAN sketch
  // when slopes couple throughput and latency.
  const auto& sk = sketch::swan_sketch();
  GroundTruthOracle oracle(sk, sketch::parse_expr("0 - latency", sk));
  EXPECT_EQ(oracle.compare(sc(0, 10), sc(9, 20)), Preference::kFirst);
}

TEST(Oracle, CountsComparisonsAndRankings) {
  auto oracle = make_truth();
  EXPECT_EQ(oracle.comparisons(), 0);
  oracle.compare(sc(1, 1), sc(2, 2));
  oracle.compare(sc(1, 1), sc(2, 2));
  EXPECT_EQ(oracle.comparisons(), 2);
  const std::vector<Scenario> batch{sc(1, 1), sc(2, 2)};
  oracle.rank(batch);
  EXPECT_EQ(oracle.rankings(), 1);
}

TEST(Noisy, ZeroProbabilityIsTransparent) {
  NoisyOracle oracle(std::make_unique<GroundTruthOracle>(
                         sketch::swan_sketch(), sketch::swan_target()),
                     0.0, 7);
  EXPECT_EQ(oracle.compare(sc(5, 10), sc(2, 100)), Preference::kFirst);
  EXPECT_EQ(oracle.flips(), 0);
}

TEST(Noisy, FlipsAtExpectedRate) {
  NoisyOracle oracle(std::make_unique<GroundTruthOracle>(
                         sketch::swan_sketch(), sketch::swan_target()),
                     0.5, 99);
  int firsts = 0;
  const int trials = 400;
  for (int i = 0; i < trials; ++i) {
    if (oracle.compare(sc(5, 10), sc(2, 100)) == Preference::kFirst) ++firsts;
  }
  // 50% flip on a clear call: expect roughly half, generous band.
  EXPECT_GT(firsts, trials / 4);
  EXPECT_LT(firsts, 3 * trials / 4);
  EXPECT_GT(oracle.flips(), 0);
}

TEST(Noisy, NeverFlipsTies) {
  NoisyOracle oracle(std::make_unique<GroundTruthOracle>(
                         sketch::swan_sketch(), sketch::swan_target()),
                     1.0, 3);
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(oracle.compare(sc(3, 40), sc(3, 40)), Preference::kTie);
  }
  EXPECT_EQ(oracle.flips(), 0);
}

TEST(Noisy, RejectsBadArguments) {
  EXPECT_THROW(NoisyOracle(nullptr, 0.1, 1), std::invalid_argument);
  EXPECT_THROW(NoisyOracle(std::make_unique<GroundTruthOracle>(
                               sketch::swan_sketch(), sketch::swan_target()),
                           1.5, 1),
               std::invalid_argument);
}

TEST(Indifferent, AbstainsOnStrictCalls) {
  IndifferentOracle oracle(std::make_unique<GroundTruthOracle>(
                               sketch::swan_sketch(), sketch::swan_target()),
                           1.0, 5);
  EXPECT_EQ(oracle.compare(sc(5, 10), sc(2, 100)), Preference::kTie);
  EXPECT_EQ(oracle.abstentions(), 1);
}

TEST(Interactive, ReadsAnswersAndRepromptsOnGarbage) {
  std::istringstream in("2\nbogus\n=\n1\n");
  std::ostringstream out;
  InteractiveOracle oracle(sketch::swan_sketch(), in, out);
  EXPECT_EQ(oracle.compare(sc(1, 1), sc(2, 2)), Preference::kSecond);
  EXPECT_EQ(oracle.compare(sc(1, 1), sc(2, 2)), Preference::kTie);
  EXPECT_EQ(oracle.compare(sc(1, 1), sc(2, 2)), Preference::kFirst);
  // EOF -> tie.
  EXPECT_EQ(oracle.compare(sc(1, 1), sc(2, 2)), Preference::kTie);
  EXPECT_NE(out.str().find("throughput = 1"), std::string::npos);
}

TEST(DefaultRank, ChainsViaPairwiseComparisons) {
  // Exercise the base-class ranking path through an oracle that does not
  // override do_rank: wrap ground truth in a zero-noise NoisyOracle.
  NoisyOracle oracle(std::make_unique<GroundTruthOracle>(
                         sketch::swan_sketch(), sketch::swan_target()),
                     0.0, 1);
  GroundTruthOracle truth(sketch::swan_sketch(), sketch::swan_target());
  const std::vector<Scenario> batch{sc(2, 100), sc(9, 20), sc(5, 10)};
  const RankingResponse r = oracle.rank(batch);
  EXPECT_EQ(r.preferences.size() + r.ties.size(), 2u);
  for (const auto& p : r.preferences) {
    EXPECT_GT(truth.target_value(batch[p.better]),
              truth.target_value(batch[p.worse]));
  }
}

}  // namespace
}  // namespace compsynth::oracle
