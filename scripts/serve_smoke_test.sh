#!/usr/bin/env bash
# End-to-end smoke for the synthesis service (docs/SERVICE.md): starts a
# compsynth_serve daemon on a unix socket, probes every protocol verb and
# the headline error codes with `compsynth_load request`, then drives a
# multi-session interleaved load with --max-active far below the session
# count and asserts the daemon actually swapped and rehydrated.
#
# Usage: scripts/serve_smoke_test.sh <compsynth_serve> <compsynth_load> <sketch>
# (the serve_smoke ctest passes the built binaries and tools/sketches/serve.sketch)
set -euo pipefail

serve_bin="$1"
load_bin="$2"
sketch="$3"

work="$(mktemp -d)"
daemon_pid=""
cleanup() {
  [ -n "$daemon_pid" ] && kill -9 "$daemon_pid" 2>/dev/null
  rm -rf "$work"
  return 0
}
trap cleanup EXIT

sock="unix:$work/sock"

"$serve_bin" --listen "$sock" --root "$work/root" --sketch "$sketch" \
  --max-active 4 --workers 4 --trace "$work/trace.jsonl" \
  >"$work/daemon.log" 2>&1 &
daemon_pid=$!
for _ in $(seq 1 100); do
  grep -q "listening on" "$work/daemon.log" 2>/dev/null && break
  sleep 0.1
done
grep -q "listening on" "$work/daemon.log" || {
  echo "daemon did not come up:"; cat "$work/daemon.log"; exit 1; }

probe() {  # probe '<request-json>' '<expected-substring>'
  local response
  response="$("$load_bin" request --connect "$sock" "$1")"
  case "$response" in
    *"$2"*) ;;
    *) echo "probe failed: $1"; echo "  got:  $response"; echo "  want: $2"
       exit 1 ;;
  esac
}

# Every verb and the headline error codes, one probe each.
probe 'this is not json'                                  '"code":"E_PARSE"'
probe '{"verb":"frobnicate"}'                             '"code":"E_VERB"'
probe '{"verb":"create","session":"bad/id"}'              '"code":"E_ID"'
probe '{"verb":"next","session":"ghost"}'                 '"code":"E_UNKNOWN_SESSION"'
probe '{"verb":"create","session":"probe","seed":7}'      '"ok":true'
probe '{"verb":"create","session":"probe"}'               '"code":"E_EXISTS"'
probe '{"verb":"create","session":"p2","sketch":"nope"}'  '"code":"E_SKETCH"'
probe '{"verb":"create","session":"p2","backend":"cray"}' '"code":"E_BACKEND"'
probe '{"verb":"next","session":"probe","wait_ms":10000}' '"phase":"waiting"'
probe '{"verb":"next","session":"probe"}'                 '"index":0'
probe '{"verb":"answer","session":"probe","index":99,"answer":"first"}' \
                                                          '"code":"E_INDEX"'
probe '{"verb":"answer","session":"probe","index":0,"answer":"dunno"}' \
                                                          '"code":"E_ANSWER"'
probe '{"verb":"answer","session":"probe","index":0,"answer":"first"}' \
                                                          '"ok":true'
# Idempotent re-delivery of an acked answer.
probe '{"verb":"answer","session":"probe","index":0,"answer":"first"}' \
                                                          '"ok":true'
probe '{"verb":"inspect","session":"probe"}'              '"answers":1'
probe '{"verb":"evict","session":"probe"}'                '"ok":true'
probe '{"verb":"inspect","session":"probe"}'              '"resident":false'
# Rehydrates transparently and re-publishes the same pending index.
probe '{"verb":"next","session":"probe","wait_ms":10000}' '"index":1'
probe '{"verb":"inspect"}'                                '"sessions_created"'

# Interleaved load: 32 sessions on 4 connections against 4 resident slots.
"$load_bin" --connect "$sock" --sketch-file "$sketch" \
  --sessions 32 --threads 4 --evict-every 5 --seed-base 100 --prefix load \
  --out "$work/bench.json"

grep -q '"failed": 0' "$work/bench.json" || {
  echo "load run had failures:"; cat "$work/bench.json"; exit 1; }
grep -q '"completed": 32' "$work/bench.json" || {
  echo "not every session completed:"; cat "$work/bench.json"; exit 1; }
swaps="$(sed -n 's/.*"swaps": \([0-9]*\).*/\1/p' "$work/bench.json")"
[ -n "$swaps" ] && [ "$swaps" -gt 0 ] || {
  echo "expected swaps > 0 with --max-active 4, got '${swaps:-none}'"; exit 1; }

# The daemon traced the service events (schema rev 1.4).
grep -q '"ev":"serve_request"' "$work/trace.jsonl"
grep -q '"ev":"session_swap"' "$work/trace.jsonl"
grep -q '"ev":"session_rehydrate"' "$work/trace.jsonl"

probe '{"verb":"shutdown"}' '"ok":true'
wait "$daemon_pid" || { echo "daemon exited non-zero"; exit 1; }
daemon_pid=""

echo "serve_smoke: OK (swaps=$swaps)"
