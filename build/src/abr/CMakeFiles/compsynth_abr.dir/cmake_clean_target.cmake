file(REMOVE_RECURSE
  "libcompsynth_abr.a"
)
