#include "synth/synthesizer.h"

#include <stdexcept>
#include <utility>

#include "sketch/analyze.h"
#include "solver/grid_finder.h"
#include "solver/z3_finder.h"
#include "util/log.h"
#include "util/timer.h"

namespace compsynth::synth {

namespace {

constexpr int kMaxRepairRounds = 64;

const char* status_name(SynthesisStatus s) {
  switch (s) {
    case SynthesisStatus::kConverged: return "converged";
    case SynthesisStatus::kIterationLimit: return "iteration_limit";
    case SynthesisStatus::kNoCandidate: return "no_candidate";
    case SynthesisStatus::kSolverGaveUp: return "solver_gave_up";
  }
  return "?";
}

const char* finder_status_name(solver::FinderStatus s) {
  switch (s) {
    case solver::FinderStatus::kFound: return "found";
    case solver::FinderStatus::kUniqueRanking: return "unique_ranking";
    case solver::FinderStatus::kNoCandidate: return "no_candidate";
    case solver::FinderStatus::kUnknown: return "unknown";
  }
  return "?";
}

}  // namespace

Synthesizer::Synthesizer(sketch::Sketch sketch,
                         std::unique_ptr<solver::CandidateFinder> finder,
                         SynthesisConfig config)
    : sketch_(std::move(sketch)), finder_(std::move(finder)), config_(config) {
  if (finder_ == nullptr) throw std::invalid_argument("Synthesizer: null finder");
  solver::validate_domain(sketch_, config_.scenario_domain);
  if (config_.initial_scenarios < 0) {
    throw std::invalid_argument("Synthesizer: negative initial_scenarios");
  }
  if (config_.pairs_per_iteration < 1) {
    throw std::invalid_argument("Synthesizer: pairs_per_iteration < 1");
  }
  if (config_.max_iterations < 1) {
    throw std::invalid_argument("Synthesizer: max_iterations < 1");
  }
}

void Synthesizer::seed_graph(pref::PreferenceGraph& graph, oracle::Oracle& user,
                             util::Rng& rng) const {
  if (config_.initial_scenarios == 0) return;
  std::vector<pref::Scenario> batch;
  batch.reserve(static_cast<std::size_t>(config_.initial_scenarios));
  const int max_tries = 1000 * config_.initial_scenarios;
  for (int tries = 0;
       static_cast<int>(batch.size()) < config_.initial_scenarios &&
       tries < max_tries;
       ++tries) {
    pref::Scenario s;
    for (const sketch::MetricSpec& m : sketch_.metrics()) {
      s.metrics.push_back(rng.uniform_real(m.lo, m.hi));
    }
    // Rejection-sample against the (optional) scenario-domain constraint.
    if (!solver::domain_contains(sketch_, config_.scenario_domain, s.metrics)) {
      continue;
    }
    batch.push_back(std::move(s));
  }
  if (batch.empty()) {
    util::log(util::LogLevel::kWarn,
              "scenario domain too tight for random seeding; starting cold");
    return;
  }

  const oracle::RankingResponse response = user.rank(batch);
  std::vector<pref::VertexId> ids;
  ids.reserve(batch.size());
  for (const pref::Scenario& s : batch) ids.push_back(graph.intern(s));
  for (const auto& p : response.preferences) {
    const pref::AddResult r = graph.add_preference(ids[p.better], ids[p.worse]);
    if (r == pref::AddResult::kCycle) {
      util::log(util::LogLevel::kWarn, "seed ranking contained a contradiction; dropped");
    }
  }
  for (const auto& t : response.ties) graph.add_tie(ids[t.a], ids[t.b]);
}

void Synthesizer::record_answer(pref::PreferenceGraph& graph, pref::VertexId v1,
                                pref::VertexId v2, oracle::Preference answer,
                                IterationRecord& record) const {
  switch (answer) {
    case oracle::Preference::kFirst:
    case oracle::Preference::kSecond: {
      const pref::VertexId better = answer == oracle::Preference::kFirst ? v1 : v2;
      const pref::VertexId worse = answer == oracle::Preference::kFirst ? v2 : v1;
      switch (graph.add_preference(better, worse)) {
        case pref::AddResult::kAdded:
          ++record.edges_added;
          break;
        case pref::AddResult::kDuplicate:
        case pref::AddResult::kSelfLoop:
          break;
        case pref::AddResult::kCycle:
          util::log(util::LogLevel::kWarn,
                    "contradictory preference dropped (enable "
                    "tolerate_inconsistency to keep and repair)");
          break;
      }
      break;
    }
    case oracle::Preference::kTie:
      if (graph.add_tie(v1, v2)) ++record.ties_added;
      break;
  }
}

SynthesisResult Synthesizer::run(oracle::Oracle& user) {
  return run(user, pref::PreferenceGraph(config_.tolerate_inconsistency));
}

SynthesisResult Synthesizer::run(oracle::Oracle& user,
                                 pref::PreferenceGraph graph) {
  SessionState st;
  st.graph = std::move(graph);
  return run_impl(user, std::move(st), /*resumed=*/false);
}

SynthesisResult Synthesizer::resume(oracle::Oracle& user, SessionState state) {
  // Restore the back-end and user-model internals first: both throw on
  // mismatched blobs, and a failed resume must not start a half-restored run.
  finder_->restore_state(state.finder_state);
  user.restore_state(state.oracle_state);
  // The cache is a pure accelerator, so a missing blob (e.g. a snapshot
  // taken by a run without one) is fine — we just start cold.
  if (config_.solver_cache != nullptr && !state.cache_state.empty()) {
    config_.solver_cache->restore_state(state.cache_state);
  }
  return run_impl(user, std::move(state), /*resumed=*/true);
}

SynthesisResult Synthesizer::run_impl(oracle::Oracle& user, SessionState st,
                                      bool resumed) {
  SynthesisResult result;
  util::Rng rng(config_.seed);
  pref::PreferenceGraph& graph = st.graph;
  // The oracle's absolute counter may predate this logical session (a
  // restored oracle carries its checkpointed counters), so the baseline
  // backs out everything not attributable to the session.
  const long comparisons_before = user.comparisons() - st.oracle_comparisons;

  // Thread the run context through every component for the duration of this
  // run. The oracle and the (returned) graph outlive the call, so their
  // pointers are cleared before returning.
  const obs::RunContext* obs = &config_.obs;
  finder_->set_run_context(obs);
  user.set_run_context(obs);
  graph.set_run_context(obs);
  if (obs::tracing(obs)) {
    obs::TraceEvent start("run_start");
    start.str("sketch", sketch_.name())
        .integer("seed", static_cast<long long>(config_.seed))
        .integer("initial_scenarios", config_.initial_scenarios)
        .integer("pairs_per_iteration", config_.pairs_per_iteration)
        .integer("max_iterations", config_.max_iterations);
    if (resumed) start.integer("resumed_at", st.iterations);
    obs->emit(start);

    // Static-analysis summary of the sketch under synthesis: lint tallies
    // plus the proven objective enclosure over the full input space
    // (docs/ANALYSIS.md). Non-finite bounds serialize as null.
    const sketch::AnalysisResult analysis = sketch::analyze(sketch_);
    obs::TraceEvent ae("analysis");
    ae.str("kind", "lint")
        .str("sketch", sketch_.name())
        .integer("diagnostics",
                 static_cast<long long>(analysis.diagnostics.size()))
        .integer("errors", static_cast<long long>(sketch::count_severity(
                               analysis.diagnostics, sketch::Severity::kError)))
        .integer("warnings",
                 static_cast<long long>(sketch::count_severity(
                     analysis.diagnostics, sketch::Severity::kWarning)))
        .boolean("well_typed", analysis.well_typed)
        .boolean("maybe_nan", analysis.output.maybe_nan)
        .boolean("maybe_error", analysis.output.maybe_error)
        .num("out_lo", analysis.output.lo)
        .num("out_hi", analysis.output.hi);
    obs->emit(ae);
  }

  // A resumed session already carries preference knowledge; only a fresh
  // graph gets the up-front random-scenario ranking.
  if (graph.vertex_count() == 0) seed_graph(graph, user, rng);

  // Captures the complete loop state into `st` and hands it to the
  // checkpoint hook. Runs only at iteration boundaries, so a resumed run
  // re-enters the loop exactly where this one left off.
  const auto checkpoint = [&](bool final_state) {
    if (!config_.checkpoint) return;
    const int every = config_.checkpoint_every < 1 ? 1 : config_.checkpoint_every;
    if (!final_state && st.iterations % every != 0) return;
    st.finder_state = finder_->save_state();
    st.oracle_state = user.save_state();
    if (config_.solver_cache != nullptr) {
      st.cache_state = config_.solver_cache->save_state();
    }
    st.oracle_comparisons = user.comparisons() - comparisons_before;
    config_.checkpoint(st);
    if (obs::active(obs)) {
      obs->count("session.checkpoints");
      if (obs->tracing()) {
        obs::TraceEvent e("checkpoint");
        e.integer("iteration", st.iterations)
            .boolean("final", final_state)
            .integer("vertices", static_cast<long long>(graph.vertex_count()))
            .integer("edges", static_cast<long long>(graph.edges().size()))
            .integer("ties", static_cast<long long>(graph.ties().size()));
        obs->emit(e);
      }
    }
  };

  bool done = false;
  while (!done && st.iterations < config_.max_iterations) {
    IterationRecord record;
    record.index = st.iterations + 1;

    util::Stopwatch watch;
    const solver::FinderResult fr =
        finder_->find_distinguishing(graph, config_.pairs_per_iteration);
    record.solver_seconds = watch.elapsed_seconds();
    ++st.iterations;

    switch (fr.status) {
      case solver::FinderStatus::kUniqueRanking:
        result.status = SynthesisStatus::kConverged;
        result.objective = fr.candidate_a;
        done = true;
        break;

      case solver::FinderStatus::kNoCandidate:
        if (config_.tolerate_inconsistency &&
            st.repair_rounds < kMaxRepairRounds) {
          ++st.repair_rounds;
          std::vector<pref::Edge> removed = graph.repair();
          if (removed.empty()) {
            // Acyclic yet unsatisfiable: some answer contradicts the sketch
            // space; drop the least-trusted one and retry.
            if (!graph.drop_lightest_edge()) {
              result.status = SynthesisStatus::kNoCandidate;
              done = true;
            }
          }
          util::log(util::LogLevel::kInfo, "repaired preference graph (round ",
                    st.repair_rounds, ")");
        } else {
          result.status = SynthesisStatus::kNoCandidate;
          done = true;
        }
        break;

      case solver::FinderStatus::kUnknown:
        result.status = SynthesisStatus::kSolverGaveUp;
        done = true;
        break;

      case solver::FinderStatus::kFound: {
        ++st.interactions;
        for (const solver::DistinguishingPair& pair : fr.pairs) {
          const pref::VertexId v1 = graph.intern(pair.preferred_by_a);
          const pref::VertexId v2 = graph.intern(pair.preferred_by_b);
          const oracle::Preference answer =
              user.compare(pair.preferred_by_a, pair.preferred_by_b);
          record_answer(graph, v1, v2, answer, record);
          ++record.pairs_presented;
        }
        break;
      }
    }

    st.total_solver_seconds += record.solver_seconds;
    if (obs::active(obs)) {
      obs->count("synth.iterations");
      obs->observe("iteration.solver_seconds", record.solver_seconds);
      if (obs->tracing()) {
        obs::TraceEvent e("iteration");
        e.integer("index", record.index)
            .num("secs", record.solver_seconds)
            .str("status", finder_status_name(fr.status))
            .integer("pairs_presented", record.pairs_presented)
            .integer("edges_added", record.edges_added)
            .integer("ties_added", record.ties_added)
            .integer("vertices", static_cast<long long>(graph.vertex_count()))
            .integer("edges", static_cast<long long>(graph.edges().size()))
            .integer("ties", static_cast<long long>(graph.ties().size()));
        obs->emit(e);
      }
    }
    if (config_.keep_transcript) st.transcript.push_back(record);
    checkpoint(done);
  }
  if (done) {
    // The in-loop call above already captured the final state.
  } else {
    result.status = SynthesisStatus::kIterationLimit;
    result.objective = finder_->find_consistent(graph);
    checkpoint(/*final_state=*/true);
  }
  result.iterations = st.iterations;
  result.interactions = st.interactions;
  result.total_solver_seconds = st.total_solver_seconds;
  if (result.iterations > 0) {
    result.average_iteration_seconds =
        result.total_solver_seconds / result.iterations;
  }
  result.oracle_comparisons = user.comparisons() - comparisons_before;
  result.transcript = std::move(st.transcript);

  if (obs::tracing(obs)) {
    obs::TraceEvent end("run_end");
    end.str("status", status_name(result.status))
        .integer("iterations", result.iterations)
        .integer("interactions", result.interactions)
        .integer("oracle_comparisons", result.oracle_comparisons)
        .num("total_solver_seconds", result.total_solver_seconds);
    obs->emit(end);
  }
  // The oracle and the returned graph outlive this run; the finder is owned
  // by the synthesizer and keeps its pointer until the next run resets it.
  user.set_run_context(nullptr);
  graph.set_run_context(nullptr);

  result.graph = std::move(graph);
  return result;
}

Synthesizer make_z3_synthesizer(const sketch::Sketch& sketch,
                                SynthesisConfig config,
                                solver::Viability viability) {
  auto finder = std::make_unique<solver::Z3Finder>(
      sketch, config.finder, std::move(viability), config.scenario_domain);
  if (config.solver_cache != nullptr) finder->set_cache(config.solver_cache);
  return Synthesizer(sketch, std::move(finder), config);
}

namespace {

Synthesizer make_grid_based(const sketch::Sketch& sketch, SynthesisConfig config,
                            solver::Viability viability,
                            solver::QueryStrategy strategy) {
  solver::GridFinderConfig grid_config;
  grid_config.base = config.finder;
  grid_config.seed = config.seed ^ 0x9e3779b97f4a7c15ULL;
  grid_config.strategy = strategy;
  grid_config.eval_backend = config.grid_eval_backend;
  grid_config.threads = config.grid_threads;
  grid_config.analysis_pruning = config.grid_analysis_pruning;
  grid_config.shard_backend = config.grid_shard_backend;
  return Synthesizer(sketch,
                     std::make_unique<solver::GridFinder>(
                         sketch, grid_config, std::move(viability),
                         config.scenario_domain),
                     config);
}

}  // namespace

Synthesizer make_grid_synthesizer(const sketch::Sketch& sketch,
                                  SynthesisConfig config,
                                  solver::Viability viability) {
  return make_grid_based(sketch, config, std::move(viability),
                         solver::QueryStrategy::kFirstFound);
}

Synthesizer make_bisection_synthesizer(const sketch::Sketch& sketch,
                                       SynthesisConfig config,
                                       solver::Viability viability) {
  return make_grid_based(sketch, config, std::move(viability),
                         solver::QueryStrategy::kBisection);
}

Synthesizer make_portfolio_synthesizer(const sketch::Sketch& sketch,
                                       SynthesisConfig config,
                                       solver::Viability viability) {
  solver::PortfolioConfig pc;
  pc.mode = config.portfolio_mode;
  pc.grid.base = config.finder;
  // Same grid seed derivation as make_grid_synthesizer, so a pinned-grid
  // portfolio run asks the identical query sequence as the plain grid
  // back-end (the differential tests rely on this).
  pc.grid.seed = config.seed ^ 0x9e3779b97f4a7c15ULL;
  pc.grid.eval_backend = config.grid_eval_backend;
  pc.grid.threads = config.grid_threads;
  pc.grid.analysis_pruning = config.grid_analysis_pruning;
  auto finder = std::make_unique<solver::PortfolioFinder>(
      sketch, pc, std::move(viability), config.scenario_domain);
  if (config.solver_cache != nullptr) {
    finder->z3().set_cache(config.solver_cache);
  }
  return Synthesizer(sketch, std::move(finder), config);
}

}  // namespace compsynth::synth
