// Lock-cheap metrics registry: counters, gauges and latency histograms.
//
// Hot paths (solver shards, oracle answers, pool workers) touch metrics
// through plain atomic operations — no lock is taken after an instrument is
// created. The registry itself guards only name -> instrument resolution
// with a mutex; instruments have stable addresses for the registry's
// lifetime, so callers that resolve once and hold the reference pay nothing
// but the atomics.
//
// Histograms are fixed log-spaced bins (16 per decade over 1e-9..1e4, the
// useful range for wall-clock seconds) with atomic counts, so concurrent
// record() calls are lock-free and quantile estimates carry a bounded
// relative error of 10^(1/32) ≈ 7.5% — plenty for p50/p90/p99 latency
// reporting. Count, sum, min and max are tracked exactly.
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <limits>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "util/sync.h"
#include "util/thread_annotations.h"

namespace compsynth::obs {

/// Monotonically increasing event count.
class Counter {
 public:
  void add(long delta = 1) { value_.fetch_add(delta, std::memory_order_relaxed); }
  long value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<long> value_{0};
};

/// Last-write-wins instantaneous value (e.g. current version-space size).
class Gauge {
 public:
  void set(double v) { value_.store(v, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0};
};

/// Log-binned latency histogram with exact count/sum/min/max and
/// approximate quantiles. All mutators are lock-free.
class Histogram {
 public:
  /// Records one sample (seconds). Values outside [1e-9, 1e4) land in the
  /// under/overflow bins; min/max/sum stay exact regardless. NaN samples
  /// are counted and binned (underflow) but excluded from min/max (every
  /// comparison against NaN is false) and poison sum.
  void record(double value);

  long count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  double mean() const;
  /// Smallest / largest recorded sample; 0 when empty.
  double min() const;
  double max() const;

  /// Approximate quantile for q in [0, 1] (clamped). The estimate is the
  /// geometric midpoint of the bin holding the rank-q sample, clamped into
  /// [min(), max()]; relative error is bounded by relative_error().
  /// Returns 0 when empty.
  double quantile(double q) const;

  /// Worst-case multiplicative error of quantile(): half a bin width.
  static double relative_error();

 private:
  static constexpr int kBinsPerDecade = 16;
  static constexpr int kDecades = 13;  // 1e-9 .. 1e4 seconds
  static constexpr double kLowest = 1e-9;
  static constexpr double kHighest = 1e4;
  // + underflow (index 0) and overflow (last index) bins.
  static constexpr int kBins = kDecades * kBinsPerDecade + 2;

  static int bin_of(double value);
  static double bin_midpoint(int bin);

  std::array<std::atomic<long>, kBins> bins_{};
  std::atomic<long> count_{0};
  std::atomic<double> sum_{0};
  // Seeded to +/-infinity so the extremum CAS loops in record() need no
  // first-sample special case: any recorded value beats the seed, so two
  // racing first recorders cannot lose a value (the old count_==0 seed-CAS
  // could — a legitimately recorded 0.0 was indistinguishable from the
  // unrecorded sentinel). min()/max() map a still-infinite extremum to 0.
  std::atomic<double> min_{std::numeric_limits<double>::infinity()};
  std::atomic<double> max_{-std::numeric_limits<double>::infinity()};
};

/// Named instrument registry. Thread-safe; returned references stay valid
/// (and keep their counts) for the registry's lifetime.
class MetricsRegistry {
 public:
  Counter& counter(const std::string& name) EXCLUDES(mutex_);
  Gauge& gauge(const std::string& name) EXCLUDES(mutex_);
  Histogram& histogram(const std::string& name) EXCLUDES(mutex_);

  /// Sorted snapshots for reporting.
  std::vector<std::pair<std::string, long>> counters() const EXCLUDES(mutex_);
  std::vector<std::pair<std::string, double>> gauges() const EXCLUDES(mutex_);
  std::vector<std::pair<std::string, const Histogram*>> histograms() const
      EXCLUDES(mutex_);

  /// Renders every instrument as Markdown tables (counters, gauges, then
  /// histograms with count/mean/p50/p90/p99/max), the format the CLI's
  /// --metrics flag and docs/OBSERVABILITY.md use.
  std::string render_markdown() const;

 private:
  /// Guards only name -> instrument resolution; the instruments themselves
  /// are internally atomic and have stable addresses, so returned
  /// references are touched lock-free.
  mutable util::Mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_
      GUARDED_BY(mutex_);
  std::map<std::string, std::unique_ptr<Gauge>> gauges_ GUARDED_BY(mutex_);
  std::map<std::string, std::unique_ptr<Histogram>> histograms_
      GUARDED_BY(mutex_);
};

}  // namespace compsynth::obs
