#include "sketch/parser.h"

#include <cmath>
#include <optional>
#include <span>
#include <utility>

#include "sketch/typecheck.h"

namespace compsynth::sketch {

namespace {

class Parser {
 public:
  explicit Parser(std::string_view source) : tokens_(tokenize(source)) {}

  RawSketch parse_raw_def() {
    RawSketch raw;
    expect_keyword("sketch");
    raw.name = expect_ident("sketch name");
    expect(TokenKind::kLParen);
    do {
      parse_metric_decl();
    } while (consume_if(TokenKind::kComma));
    expect(TokenKind::kRParen);
    expect(TokenKind::kLBrace);
    while (peek_keyword("hole")) parse_hole_decl();
    raw.body = parse_expr_rule();
    expect(TokenKind::kRBrace);
    expect(TokenKind::kEnd);
    raw.metrics = std::move(metrics_);
    raw.holes = std::move(holes_);
    return raw;
  }

  Sketch parse_sketch_def() {
    RawSketch raw = parse_raw_def();
    return Sketch(std::move(raw.name), std::move(raw.metrics),
                  std::move(raw.holes), std::move(raw.body));
  }

  ExprPtr parse_standalone_expr(const Sketch& context) {
    metrics_ = context.metrics();
    holes_ = context.holes();
    ExprPtr e = parse_expr_rule();
    expect(TokenKind::kEnd);
    // Full semantic validation, selector grids included (the root may be
    // either type: oracles are numeric, predicates boolean).
    typecheck_expr_any(*e, metrics_.size(), std::span<const HoleSpec>(holes_));
    return e;
  }

 private:
  // --- token plumbing -------------------------------------------------------

  const Token& peek() const { return tokens_[pos_]; }

  Token advance() { return tokens_[pos_ == tokens_.size() - 1 ? pos_ : pos_++]; }

  [[noreturn]] void fail(const std::string& what) const {
    throw ParseError(peek().line, peek().column, what);
  }

  bool consume_if(TokenKind kind) {
    if (peek().kind != kind) return false;
    advance();
    return true;
  }

  Token expect(TokenKind kind) {
    if (peek().kind != kind) {
      fail("expected " + std::string(token_kind_name(kind)) + ", found " +
           describe(peek()));
    }
    return advance();
  }

  std::string expect_ident(const std::string& role) {
    if (peek().kind != TokenKind::kIdent) {
      fail("expected " + role + ", found " + describe(peek()));
    }
    return advance().text;
  }

  bool peek_keyword(std::string_view kw) const {
    return peek().kind == TokenKind::kIdent && peek().text == kw;
  }

  void expect_keyword(std::string_view kw) {
    if (!peek_keyword(kw)) {
      fail("expected keyword '" + std::string(kw) + "', found " + describe(peek()));
    }
    advance();
  }

  /// Stamps a freshly built node with a token's source position (shallow
  /// copy; children keep their own positions).
  static ExprPtr at(const Token& t, ExprPtr e) {
    return with_location(e, static_cast<std::uint32_t>(t.line),
                         static_cast<std::uint32_t>(t.column));
  }

  static std::string describe(const Token& t) {
    if (t.kind == TokenKind::kIdent) return "'" + t.text + "'";
    if (t.kind == TokenKind::kNumber) return "number '" + t.text + "'";
    return std::string(token_kind_name(t.kind));
  }

  // --- declarations ---------------------------------------------------------

  double parse_signed_number() {
    const bool negate = consume_if(TokenKind::kMinus);
    const Token t = expect(TokenKind::kNumber);
    return negate ? -t.number : t.number;
  }

  void parse_metric_decl() {
    MetricSpec m;
    const Token name_tok = peek();
    m.name = expect_ident("metric name");
    m.line = static_cast<std::uint32_t>(name_tok.line);
    m.column = static_cast<std::uint32_t>(name_tok.column);
    expect_keyword("in");
    expect(TokenKind::kLBracket);
    m.lo = parse_signed_number();
    expect(TokenKind::kComma);
    m.hi = parse_signed_number();
    expect(TokenKind::kRBracket);
    metrics_.push_back(std::move(m));
  }

  void parse_hole_decl() {
    expect_keyword("hole");
    HoleSpec h;
    const Token name_tok = peek();
    h.name = expect_ident("hole name");
    h.line = static_cast<std::uint32_t>(name_tok.line);
    h.column = static_cast<std::uint32_t>(name_tok.column);
    expect_keyword("in");
    expect_keyword("grid");
    expect(TokenKind::kLParen);
    h.lo = parse_signed_number();
    expect(TokenKind::kComma);
    h.step = parse_signed_number();
    expect(TokenKind::kComma);
    const Token count_tok = expect(TokenKind::kNumber);
    expect(TokenKind::kRParen);
    expect(TokenKind::kSemicolon);
    if (count_tok.number < 1 || count_tok.number != std::floor(count_tok.number)) {
      throw ParseError(count_tok.line, count_tok.column,
                       "grid count must be a positive integer");
    }
    h.count = static_cast<std::int64_t>(count_tok.number);
    if (h.count > 1 && h.step <= 0) {
      throw ParseError(name_tok.line, name_tok.column,
                       "grid step must be positive for hole '" + h.name + "'");
    }
    holes_.push_back(std::move(h));
  }

  // --- expressions ----------------------------------------------------------

  ExprPtr parse_expr_rule() { return parse_or(); }

  // Operator nodes are stamped with their operator token's position.

  ExprPtr parse_or() {
    ExprPtr e = parse_and();
    for (;;) {
      const Token op_tok = peek();
      if (!consume_if(TokenKind::kOrOr)) return e;
      e = at(op_tok, bool_binary(BoolOp::kOr, std::move(e), parse_and()));
    }
  }

  ExprPtr parse_and() {
    ExprPtr e = parse_cmp();
    for (;;) {
      const Token op_tok = peek();
      if (!consume_if(TokenKind::kAndAnd)) return e;
      e = at(op_tok, bool_binary(BoolOp::kAnd, std::move(e), parse_cmp()));
    }
  }

  ExprPtr parse_cmp() {
    ExprPtr e = parse_add();
    const std::optional<CmpOp> op = peek_cmp_op();
    if (!op) return e;
    const Token op_tok = advance();
    return at(op_tok, compare(*op, std::move(e), parse_add()));
  }

  std::optional<CmpOp> peek_cmp_op() const {
    switch (peek().kind) {
      case TokenKind::kLt: return CmpOp::kLt;
      case TokenKind::kLe: return CmpOp::kLe;
      case TokenKind::kGt: return CmpOp::kGt;
      case TokenKind::kGe: return CmpOp::kGe;
      case TokenKind::kEqEq: return CmpOp::kEq;
      case TokenKind::kNe: return CmpOp::kNe;
      default: return std::nullopt;
    }
  }

  ExprPtr parse_add() {
    ExprPtr e = parse_mul();
    for (;;) {
      const Token op_tok = peek();
      if (consume_if(TokenKind::kPlus)) {
        e = at(op_tok, binary(BinOp::kAdd, std::move(e), parse_mul()));
      } else if (consume_if(TokenKind::kMinus)) {
        e = at(op_tok, binary(BinOp::kSub, std::move(e), parse_mul()));
      } else {
        return e;
      }
    }
  }

  ExprPtr parse_mul() {
    ExprPtr e = parse_unary();
    for (;;) {
      const Token op_tok = peek();
      if (consume_if(TokenKind::kStar)) {
        e = at(op_tok, binary(BinOp::kMul, std::move(e), parse_unary()));
      } else if (consume_if(TokenKind::kSlash)) {
        e = at(op_tok, binary(BinOp::kDiv, std::move(e), parse_unary()));
      } else {
        return e;
      }
    }
  }

  ExprPtr parse_unary() {
    const Token t = peek();
    if (consume_if(TokenKind::kMinus)) return at(t, neg(parse_unary()));
    if (consume_if(TokenKind::kBang)) return at(t, logical_not(parse_unary()));
    return parse_primary();
  }

  ExprPtr parse_primary() {
    const Token t = peek();
    switch (t.kind) {
      case TokenKind::kNumber:
        advance();
        return at(t, constant(t.number));
      case TokenKind::kLParen: {
        advance();
        ExprPtr e = parse_expr_rule();
        expect(TokenKind::kRParen);
        return e;
      }
      case TokenKind::kIdent:
        return parse_ident_primary();
      default:
        fail("expected an expression, found " + describe(t));
    }
  }

  ExprPtr parse_ident_primary() {
    const Token t = advance();
    const std::string& id = t.text;
    if (id == "true") return at(t, bool_constant(true));
    if (id == "false") return at(t, bool_constant(false));
    if (id == "min" || id == "max") {
      expect(TokenKind::kLParen);
      ExprPtr a = parse_expr_rule();
      expect(TokenKind::kComma);
      ExprPtr b = parse_expr_rule();
      expect(TokenKind::kRParen);
      return at(t, binary(id == "min" ? BinOp::kMin : BinOp::kMax, std::move(a),
                          std::move(b)));
    }
    if (id == "if") {
      ExprPtr cond = parse_expr_rule();
      expect_keyword("then");
      ExprPtr then_branch = parse_expr_rule();
      expect_keyword("else");
      ExprPtr else_branch = parse_expr_rule();
      return at(t, ite(std::move(cond), std::move(then_branch),
                       std::move(else_branch)));
    }
    if (id == "choose") {
      // choose <hole> { expr | expr | ... }  — structural hole.
      const Token sel_tok = peek();
      const std::string sel_name = expect_ident("choice selector hole");
      std::size_t selector = holes_.size();
      for (std::size_t i = 0; i < holes_.size(); ++i) {
        if (holes_[i].name == sel_name) selector = i;
      }
      if (selector == holes_.size()) {
        throw ParseError(sel_tok.line, sel_tok.column,
                         "choice selector '" + sel_name + "' is not a declared hole");
      }
      expect(TokenKind::kLBrace);
      std::vector<ExprPtr> alternatives;
      alternatives.push_back(parse_expr_rule());
      while (consume_if(TokenKind::kComma)) {
        alternatives.push_back(parse_expr_rule());
      }
      expect(TokenKind::kRBrace);
      if (alternatives.size() < 2) {
        throw ParseError(sel_tok.line, sel_tok.column,
                         "choose needs at least two alternatives");
      }
      return at(t, choice(selector, std::move(alternatives)));
    }
    for (std::size_t i = 0; i < metrics_.size(); ++i) {
      if (metrics_[i].name == id) return at(t, metric(i));
    }
    for (std::size_t i = 0; i < holes_.size(); ++i) {
      if (holes_[i].name == id) return at(t, hole(i));
    }
    throw ParseError(t.line, t.column, "unknown identifier '" + id + "'");
  }

  std::vector<Token> tokens_;
  std::size_t pos_ = 0;
  std::vector<MetricSpec> metrics_;
  std::vector<HoleSpec> holes_;
};

}  // namespace

Sketch parse_sketch(std::string_view source) {
  return Parser(source).parse_sketch_def();
}

RawSketch parse_sketch_raw(std::string_view source) {
  return Parser(source).parse_raw_def();
}

ExprPtr parse_expr(std::string_view source, const Sketch& context) {
  return Parser(source).parse_standalone_expr(context);
}

}  // namespace compsynth::sketch
