// Ablation B: candidate-finder back-ends head to head. The paper's approach
// issues the distinguishing query to Z3 (exact, proof-backed convergence);
// the grid finder maintains the version space explicitly (fast, but its
// convergence verdict is search-based). Same protocol, same oracle.
#include "bench_common.h"
#include "sketch/library.h"

namespace compsynth::bench {
namespace {

void BM_Backend(benchmark::State& state) {
  const bool use_z3 = state.range(0) != 0;
  synth::ExperimentSpec spec{.sketch = sketch::swan_sketch(),
                             .target = sketch::swan_target()};
  spec.backend = use_z3 ? synth::Backend::kZ3 : synth::Backend::kGrid;
  spec.repetitions = repetitions(use_z3 ? 3 : 9);
  spec.config.seed = 6600 + static_cast<std::uint64_t>(state.range(0));
  run_and_record(state, use_z3 ? "Z3 finder (paper)" : "grid finder (baseline)",
                 spec);
}
BENCHMARK(BM_Backend)->Arg(1)->Arg(0)->Iterations(1)->UseManualTime()
    ->Unit(benchmark::kSecond);

void print_backend() {
  print_series(
      "Ablation B: Z3 finder vs explicit version-space (grid) finder",
      {"Both learn ranking-equivalent objectives; the SMT back-end pays",
       "per-query solver time for exact convergence proofs, the explicit",
       "version space trades memory (one entry per grid candidate) for",
       "orders-of-magnitude faster queries on enumerable sketches."});
}

}  // namespace
}  // namespace compsynth::bench

COMPSYNTH_BENCH_MAIN(compsynth::bench::print_backend)
