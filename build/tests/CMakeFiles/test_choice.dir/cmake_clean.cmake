file(REMOVE_RECURSE
  "CMakeFiles/test_choice.dir/choice_test.cpp.o"
  "CMakeFiles/test_choice.dir/choice_test.cpp.o.d"
  "test_choice"
  "test_choice.pdb"
  "test_choice[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_choice.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
