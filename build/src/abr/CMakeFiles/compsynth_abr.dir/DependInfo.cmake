
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/abr/algorithms.cpp" "src/abr/CMakeFiles/compsynth_abr.dir/algorithms.cpp.o" "gcc" "src/abr/CMakeFiles/compsynth_abr.dir/algorithms.cpp.o.d"
  "/root/repo/src/abr/qoe.cpp" "src/abr/CMakeFiles/compsynth_abr.dir/qoe.cpp.o" "gcc" "src/abr/CMakeFiles/compsynth_abr.dir/qoe.cpp.o.d"
  "/root/repo/src/abr/simulator.cpp" "src/abr/CMakeFiles/compsynth_abr.dir/simulator.cpp.o" "gcc" "src/abr/CMakeFiles/compsynth_abr.dir/simulator.cpp.o.d"
  "/root/repo/src/abr/trace.cpp" "src/abr/CMakeFiles/compsynth_abr.dir/trace.cpp.o" "gcc" "src/abr/CMakeFiles/compsynth_abr.dir/trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/pref/CMakeFiles/compsynth_pref.dir/DependInfo.cmake"
  "/root/repo/build/src/sketch/CMakeFiles/compsynth_sketch.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/compsynth_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
