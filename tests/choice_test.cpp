// Structural (choice) holes: parsing, typing, evaluation, printing, Z3
// encoding agreement, and end-to-end synthesis of the penalty *form*.
#include <gtest/gtest.h>

#include <z3++.h>

#include "oracle/ground_truth.h"
#include "sketch/eval.h"
#include "sketch/library.h"
#include "sketch/parser.h"
#include "sketch/printer.h"
#include "sketch/typecheck.h"
#include "solver/equivalence.h"
#include "solver/z3_encoder.h"
#include "synth/synthesizer.h"
#include "util/rng.h"

namespace compsynth {
namespace {

using sketch::HoleAssignment;
using sketch::Sketch;

const char* kTinyChoice =
    "sketch t(x in [0, 10]) {"
    "  hole pick in grid(0, 1, 3);"
    "  hole w in grid(0, 1, 4);"
    "  choose pick { x + w, x*w, 10 - x } }";

TEST(Choice, ParsesAndEvaluatesEachAlternative) {
  const Sketch s = sketch::parse_sketch(kTinyChoice);
  ASSERT_EQ(s.holes().size(), 2u);
  EXPECT_EQ(s.candidate_space_size(), 12);
  // pick = 0 -> x + w
  EXPECT_DOUBLE_EQ(sketch::eval(s, HoleAssignment{{0, 2}}, std::vector<double>{3}), 5);
  // pick = 1 -> x * w
  EXPECT_DOUBLE_EQ(sketch::eval(s, HoleAssignment{{1, 2}}, std::vector<double>{3}), 6);
  // pick = 2 -> 10 - x
  EXPECT_DOUBLE_EQ(sketch::eval(s, HoleAssignment{{2, 2}}, std::vector<double>{3}), 7);
}

TEST(Choice, SelectorMustBeDeclaredHole) {
  EXPECT_THROW(sketch::parse_sketch("sketch t(x in [0,1]) {"
                                    "  choose nope { x, 1 - x } }"),
               sketch::ParseError);
}

TEST(Choice, SelectorGridMustMatchAlternativeCount) {
  // grid(0,1,2) selector but 3 alternatives.
  EXPECT_THROW(sketch::parse_sketch("sketch t(x in [0,1]) {"
                                    "  hole pick in grid(0, 1, 2);"
                                    "  choose pick { x, 1 - x, 2*x } }"),
               sketch::TypeError);
  // Non-integer base grid.
  EXPECT_THROW(sketch::parse_sketch("sketch t(x in [0,1]) {"
                                    "  hole pick in grid(0, 0.5, 3);"
                                    "  choose pick { x, 1 - x, 2*x } }"),
               sketch::TypeError);
}

TEST(Choice, AlternativesMustBeNumeric) {
  EXPECT_THROW(sketch::parse_sketch("sketch t(x in [0,1]) {"
                                    "  hole pick in grid(0, 1, 2);"
                                    "  choose pick { x, x > 0 } }"),
               sketch::TypeError);
}

TEST(Choice, NeedsTwoAlternatives) {
  EXPECT_THROW(sketch::parse_sketch("sketch t(x in [0,1]) {"
                                    "  hole pick in grid(0, 1, 1);"
                                    "  choose pick { x } }"),
               sketch::ParseError);
}

TEST(Choice, PrinterRoundTrips) {
  const Sketch s = sketch::parse_sketch(kTinyChoice);
  const std::string once = sketch::print_sketch(s);
  EXPECT_NE(once.find("choose pick { x + w, x*w, 10 - x }"), std::string::npos);
  const std::string twice = sketch::print_sketch(sketch::parse_sketch(once));
  EXPECT_EQ(once, twice);
}

TEST(Choice, InstantiatedPrintShowsOnlySelectedAlternative) {
  const Sketch s = sketch::parse_sketch(kTinyChoice);
  const std::string text = sketch::print_instantiated(s, HoleAssignment{{1, 3}});
  EXPECT_NE(text.find("x*3"), std::string::npos);
  EXPECT_EQ(text.find("10 - x"), std::string::npos);
  EXPECT_EQ(text.find("choose"), std::string::npos);
}

TEST(Choice, LibraryFormSketchShape) {
  const Sketch& s = sketch::swan_form_sketch();
  EXPECT_EQ(s.holes().size(), 3u);
  EXPECT_EQ(s.candidate_space_size(), 3 * 6 * 21);
  // Target helper snaps correctly.
  const HoleAssignment t = sketch::swan_form_target(1, 3, 50);
  EXPECT_EQ(t.index[0], 1);
  EXPECT_DOUBLE_EQ(s.holes()[1].value_at(t.index[1]), 3);
  EXPECT_DOUBLE_EQ(s.holes()[2].value_at(t.index[2]), 50);
  // form=1 at (4, 30): 10*4 - 3*30 + 1000 = 950.
  EXPECT_DOUBLE_EQ(sketch::eval(s, t, std::vector<double>{4, 30}), 950);
  // form=2 capped penalty at (4, 90), l_thrsh 50 -> no bonus:
  // 4 - min(3*90, 100) = -96.
  const HoleAssignment t2 = sketch::swan_form_target(2, 3, 50);
  EXPECT_DOUBLE_EQ(sketch::eval(s, t2, std::vector<double>{4, 90}), -96);
}

// Differential: the Z3 encoding of choice agrees with the interpreter.
class ChoiceEncoding : public ::testing::TestWithParam<int> {};

TEST_P(ChoiceEncoding, MatchesInterpreter) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 31 + 11);
  const sketch::Sketch& sk = sketch::swan_form_sketch();
  HoleAssignment a;
  for (const auto& h : sk.holes()) a.index.push_back(rng.uniform_int(0, h.count - 1));
  std::vector<double> metrics;
  for (const auto& m : sk.metrics()) metrics.push_back(rng.uniform_real(m.lo, m.hi));
  const double expected = sketch::eval(sk, a, metrics);

  z3::context ctx;
  std::vector<z3::expr> hole_exprs;
  for (const double v : sk.hole_values(a)) {
    hole_exprs.push_back(solver::real_of_double(ctx, v));
  }
  const auto metric_exprs = solver::encode_scenario(ctx, metrics);
  z3::solver s(ctx);
  const z3::expr out = ctx.real_const("out");
  s.add(out == solver::encode_numeric(ctx, *sk.body(), metric_exprs, hole_exprs));
  ASSERT_EQ(s.check(), z3::sat);
  EXPECT_NEAR(solver::value_of(s.get_model(), out), expected,
              1e-6 * std::max(1.0, std::abs(expected)));
}

INSTANTIATE_TEST_SUITE_P(RandomPoints, ChoiceEncoding, ::testing::Range(0, 15));

// End-to-end: learn which *form* the architect has in mind.
class FormSynthesis : public ::testing::TestWithParam<int> {};

TEST_P(FormSynthesis, GridBackendRecoversForm) {
  const auto form = static_cast<std::int64_t>(GetParam());
  const sketch::Sketch& sk = sketch::swan_form_sketch();
  const HoleAssignment target = sketch::swan_form_target(form, 2, 60);

  synth::SynthesisConfig config;
  config.seed = 900 + static_cast<std::uint64_t>(form);
  synth::Synthesizer s = synth::make_grid_synthesizer(sk, config);
  oracle::GroundTruthOracle architect(sk, target, config.finder.tie_tolerance);
  const synth::SynthesisResult r = s.run(architect);
  ASSERT_EQ(r.status, synth::SynthesisStatus::kConverged);
  ASSERT_TRUE(r.objective.has_value());
  EXPECT_TRUE(solver::ranking_equivalent(sk, *r.objective, target, config.finder))
      << "form " << form;
}

INSTANTIATE_TEST_SUITE_P(AllForms, FormSynthesis, ::testing::Range(0, 3));

TEST(FormSynthesis, Z3BackendRecoversOneForm) {
  const sketch::Sketch& sk = sketch::swan_form_sketch();
  const HoleAssignment target = sketch::swan_form_target(1, 2, 60);
  synth::SynthesisConfig config;
  config.seed = 77;
  synth::Synthesizer s = synth::make_z3_synthesizer(sk, config);
  oracle::GroundTruthOracle architect(sk, target, config.finder.tie_tolerance);
  const synth::SynthesisResult r = s.run(architect);
  ASSERT_EQ(r.status, synth::SynthesisStatus::kConverged);
  ASSERT_TRUE(r.objective.has_value());
  EXPECT_TRUE(solver::ranking_equivalent(sk, *r.objective, target, config.finder));
}

}  // namespace
}  // namespace compsynth
