// Wall-clock stopwatch for measuring synthesis iterations.
#pragma once

#include <chrono>

namespace compsynth::util {

/// A simple monotonic stopwatch. Starts running on construction.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  /// Restarts the stopwatch and returns the elapsed seconds before the reset.
  double lap() {
    const auto now = Clock::now();
    const double s = seconds_between(start_, now);
    start_ = now;
    return s;
  }

  /// Elapsed seconds since construction or the last lap(), without resetting.
  double elapsed_seconds() const {
    return seconds_between(start_, Clock::now());
  }

 private:
  using Clock = std::chrono::steady_clock;

  static double seconds_between(Clock::time_point a, Clock::time_point b) {
    return std::chrono::duration<double>(b - a).count();
  }

  Clock::time_point start_;
};

}  // namespace compsynth::util
