// Unit tests for the observability subsystem: metrics registry (exact
// stats, bounded-error quantiles, lock-free concurrent updates) and the
// trace layer (JSONL rendering round-trips through parse_flat_json).
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "obs/run_context.h"
#include "obs/trace.h"
#include "util/thread_pool.h"

namespace obs = compsynth::obs;

// ---------------------------------------------------------------- metrics

TEST(Metrics, CounterAddAndValue) {
  obs::MetricsRegistry reg;
  obs::Counter& c = reg.counter("a");
  EXPECT_EQ(c.value(), 0);
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42);
  // Same name resolves to the same instrument.
  EXPECT_EQ(&reg.counter("a"), &c);
  EXPECT_NE(&reg.counter("b"), &c);
}

TEST(Metrics, GaugeLastWriteWins) {
  obs::MetricsRegistry reg;
  reg.gauge("g").set(1.5);
  reg.gauge("g").set(-3.25);
  EXPECT_DOUBLE_EQ(reg.gauge("g").value(), -3.25);
}

TEST(Metrics, HistogramExactMoments) {
  obs::Histogram h;
  EXPECT_EQ(h.count(), 0);
  EXPECT_EQ(h.quantile(0.5), 0);
  for (double v : {0.002, 0.004, 0.001, 0.008}) h.record(v);
  EXPECT_EQ(h.count(), 4);
  EXPECT_DOUBLE_EQ(h.sum(), 0.015);
  EXPECT_DOUBLE_EQ(h.mean(), 0.00375);
  EXPECT_DOUBLE_EQ(h.min(), 0.001);
  EXPECT_DOUBLE_EQ(h.max(), 0.008);
}

TEST(Metrics, HistogramQuantilesWithinBoundedError) {
  obs::Histogram h;
  // 1..1000 ms, uniformly: the rank-q sample of the latent data is known.
  for (int i = 1; i <= 1000; ++i) h.record(i * 1e-3);
  const double tol = obs::Histogram::relative_error() + 0.01;
  EXPECT_NEAR(h.quantile(0.5), 0.5, 0.5 * tol);
  EXPECT_NEAR(h.quantile(0.9), 0.9, 0.9 * tol);
  EXPECT_NEAR(h.quantile(0.99), 0.99, 0.99 * tol);
  // Quantiles clamp into the observed range.
  EXPECT_GE(h.quantile(0.0), h.min());
  EXPECT_LE(h.quantile(1.0), h.max());
}

TEST(Metrics, HistogramOutOfRangeSamplesKeepExactStats) {
  obs::Histogram h;
  h.record(1e-12);  // underflow bin
  h.record(1e6);    // overflow bin
  EXPECT_EQ(h.count(), 2);
  EXPECT_DOUBLE_EQ(h.min(), 1e-12);
  EXPECT_DOUBLE_EQ(h.max(), 1e6);
  // Quantiles stay inside [min, max] even for out-of-range bins.
  EXPECT_GE(h.quantile(0.5), h.min());
  EXPECT_LE(h.quantile(0.5), h.max());
}

TEST(Metrics, ConcurrentUpdatesFromPoolWorkers) {
  obs::MetricsRegistry reg;
  obs::Counter& c = reg.counter("n");
  obs::Histogram& h = reg.histogram("lat");
  compsynth::util::ThreadPool pool(4);
  constexpr std::size_t kN = 20000;
  pool.parallel_for(0, kN, [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      c.add();
      h.record(1e-3);
      reg.counter("resolved-per-call").add();
    }
  });
  EXPECT_EQ(c.value(), static_cast<long>(kN));
  EXPECT_EQ(reg.counter("resolved-per-call").value(), static_cast<long>(kN));
  EXPECT_EQ(h.count(), static_cast<long>(kN));
  EXPECT_NEAR(h.sum(), kN * 1e-3, kN * 1e-3 * 1e-9);
  EXPECT_DOUBLE_EQ(h.min(), 1e-3);
  EXPECT_DOUBLE_EQ(h.max(), 1e-3);
}

TEST(Metrics, RenderMarkdownListsEveryInstrument) {
  obs::MetricsRegistry reg;
  reg.counter("oracle.comparisons").add(7);
  reg.gauge("grid.survivors").set(123);
  reg.histogram("z3_query.seconds").record(0.25);
  const std::string md = reg.render_markdown();
  EXPECT_NE(md.find("oracle.comparisons"), std::string::npos);
  EXPECT_NE(md.find("grid.survivors"), std::string::npos);
  EXPECT_NE(md.find("z3_query.seconds"), std::string::npos);
  EXPECT_NE(md.find("| 7 |"), std::string::npos);
}

// ------------------------------------------------------------------ trace

TEST(Trace, RenderLineCarriesEnvelopeAndFields) {
  obs::TraceEvent e("iteration");
  e.integer("index", 3).num("secs", 0.5).str("status", "found").boolean(
      "ok", true);
  const std::string line = obs::render_trace_line("cli/rep0", 1.25, e);
  const auto obj = obs::parse_flat_json(line);
  ASSERT_TRUE(obj.has_value());
  EXPECT_EQ(obj->at("v").num, obs::kTraceSchemaVersion);
  EXPECT_EQ(obj->at("ts").num, 1.25);
  EXPECT_EQ(obj->at("run").str, "cli/rep0");
  EXPECT_EQ(obj->at("ev").str, "iteration");
  EXPECT_EQ(obj->at("index").num, 3);
  EXPECT_EQ(obj->at("secs").num, 0.5);
  EXPECT_EQ(obj->at("status").str, "found");
  EXPECT_TRUE(obj->at("ok").b);
}

TEST(Trace, JsonEscapingRoundTrips) {
  obs::TraceEvent e("t");
  const std::string nasty = "quote\" backslash\\ newline\n tab\t ctrl\x01 end";
  e.str("s", nasty);
  const auto obj = obs::parse_flat_json(obs::render_trace_line("r", 0, e));
  ASSERT_TRUE(obj.has_value());
  EXPECT_EQ(obj->at("s").str, nasty);
}

TEST(Trace, NonFiniteNumbersBecomeNull) {
  obs::TraceEvent e("t");
  e.num("bad", std::nan("")).num("inf", INFINITY).num("good", 2.0);
  const auto obj = obs::parse_flat_json(obs::render_trace_line("r", 0, e));
  ASSERT_TRUE(obj.has_value());
  EXPECT_EQ(obj->at("bad").kind, obs::JsonValue::Kind::kNull);
  EXPECT_EQ(obj->at("inf").kind, obs::JsonValue::Kind::kNull);
  EXPECT_EQ(obj->at("good").num, 2.0);
}

TEST(Trace, ParserRejectsMalformedInput) {
  EXPECT_FALSE(obs::parse_flat_json("").has_value());
  EXPECT_FALSE(obs::parse_flat_json("not json").has_value());
  EXPECT_FALSE(obs::parse_flat_json("{\"a\":1").has_value());
  EXPECT_FALSE(obs::parse_flat_json("{\"a\":1} trailing").has_value());
  EXPECT_FALSE(obs::parse_flat_json("{\"a\":{\"nested\":1}}").has_value());
  EXPECT_FALSE(obs::parse_flat_json("{\"a\":[1,2]}").has_value());
  EXPECT_TRUE(obs::parse_flat_json("{}").has_value());
  EXPECT_TRUE(obs::parse_flat_json(" {\"a\": -1.5e3} ").has_value());
}

TEST(Trace, FileSinkWritesOneParseableLinePerEvent) {
  const std::string path = ::testing::TempDir() + "/obs_sink_test.jsonl";
  {
    obs::FileTraceSink sink(path);
    EXPECT_TRUE(sink.enabled());
    for (int i = 0; i < 3; ++i) {
      obs::TraceEvent e("tick");
      e.integer("i", i);
      sink.emit("run-x", e);
    }
  }
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string line;
  int n = 0;
  double last_ts = -1;
  while (std::getline(in, line)) {
    const auto obj = obs::parse_flat_json(line);
    ASSERT_TRUE(obj.has_value()) << line;
    EXPECT_EQ(obj->at("run").str, "run-x");
    EXPECT_EQ(obj->at("ev").str, "tick");
    EXPECT_EQ(obj->at("i").num, n);
    EXPECT_GE(obj->at("ts").num, last_ts);  // steady-clock timestamps
    last_ts = obj->at("ts").num;
    ++n;
  }
  EXPECT_EQ(n, 3);
  std::remove(path.c_str());
}

TEST(Trace, NullSinkReportsDisabled) {
  obs::NullTraceSink sink;
  EXPECT_FALSE(sink.enabled());
  obs::RunContext ctx;
  ctx.tracer = &sink;
  EXPECT_FALSE(ctx.tracing());
  EXPECT_FALSE(ctx.active());
}

// ------------------------------------------------------------------ spans

TEST(Span, InactiveContextIsFree) {
  obs::Span span(nullptr, "work");
  EXPECT_EQ(span.event(), nullptr);
  EXPECT_EQ(span.finish(), 0);
}

TEST(Span, RecordsHistogramAndEmitsEvent) {
  obs::MetricsRegistry reg;
  const std::string path = ::testing::TempDir() + "/obs_span_test.jsonl";
  {
    obs::FileTraceSink sink(path);
    obs::RunContext ctx;
    ctx.metrics = &reg;
    ctx.tracer = &sink;
    ctx.run_id = "span-run";
    obs::Span span(&ctx, "work");
    ASSERT_NE(span.event(), nullptr);
    span.event()->str("mode", "full");
    const double secs = span.finish();
    EXPECT_GE(secs, 0);
    EXPECT_EQ(span.finish(), 0);  // idempotent
  }
  EXPECT_EQ(reg.histogram("work.seconds").count(), 1);
  std::ifstream in(path);
  std::string line;
  ASSERT_TRUE(std::getline(in, line));
  const auto obj = obs::parse_flat_json(line);
  ASSERT_TRUE(obj.has_value());
  EXPECT_EQ(obj->at("ev").str, "work");
  EXPECT_EQ(obj->at("mode").str, "full");
  EXPECT_GE(obj->at("secs").num, 0);
  std::remove(path.c_str());
}
