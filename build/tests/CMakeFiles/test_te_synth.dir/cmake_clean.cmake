file(REMOVE_RECURSE
  "CMakeFiles/test_te_synth.dir/te_synth_integration_test.cpp.o"
  "CMakeFiles/test_te_synth.dir/te_synth_integration_test.cpp.o.d"
  "test_te_synth"
  "test_te_synth.pdb"
  "test_te_synth[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_te_synth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
