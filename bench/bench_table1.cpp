// Table 1 of the paper: synthesize the Fig. 2b SWAN objective with the
// baseline protocol (5 initial random scenarios, 1 pair ranked per
// iteration, Z3 back-end, ideal oracle) over nine runs and report the
// average / median / SIQR of the iteration count, the per-iteration
// synthesis time and the total synthesis time.
//
// Paper reference values (2.9 GHz dual-core laptop, 2019 Z3):
//   # Iterations                31.33 / 30 / 4.25
//   Synthesis time per iter (s)  2.45 / 2.37 / 0.12
//   Total synthesis time (s)    76.13 / 71.67 / 11.16
// The reproduction target is the *shape*: tens of iterations, sub-linear
// growth of per-iteration time, total in the tens of seconds.
#include "bench_common.h"
#include "sketch/library.h"

namespace compsynth::bench {
namespace {

synth::ExperimentSpec baseline_spec() {
  synth::ExperimentSpec spec{.sketch = sketch::swan_sketch(),
                             .target = sketch::swan_target()};
  spec.backend = synth::Backend::kZ3;
  spec.repetitions = repetitions(9);
  spec.config.seed = 20190101;
  return spec;
}

void BM_Table1_Baseline(benchmark::State& state) {
  run_and_record(state, "baseline (Fig 2b target)", baseline_spec());
}
BENCHMARK(BM_Table1_Baseline)->Iterations(1)->UseManualTime()->Unit(benchmark::kSecond);

void print_table1() {
  const Row& r = rows().front();
  std::cout << "\n=== Table 1: Summary of experimental results ===\n"
            << "(paper: iterations 31.33/30/4.25, s/iter 2.45/2.37/0.12, "
               "total 76.13/71.67/11.16; format avg/median/SIQR)\n";
  util::Table t({"Metrics", "Average", "Median", "SIQR"});
  t.add_row_numeric("# Iterations",
                    {r.outcome.iterations.mean, r.outcome.iterations.median,
                     r.outcome.iterations.siqr});
  t.add_row_numeric("Synthesis Time per Iteration (s)",
                    {r.outcome.avg_iteration_seconds.mean,
                     r.outcome.avg_iteration_seconds.median,
                     r.outcome.avg_iteration_seconds.siqr});
  t.add_row_numeric("Total Synthesis Time (s)",
                    {r.outcome.total_seconds.mean, r.outcome.total_seconds.median,
                     r.outcome.total_seconds.siqr});
  std::cout << t.to_string();
  std::cout << "runs: " << r.outcome.runs.size()
            << ", converged: " << r.outcome.converged_runs
            << ", ranking-equivalent to target: " << r.outcome.correct_runs
            << "\n";
}

}  // namespace
}  // namespace compsynth::bench

COMPSYNTH_BENCH_MAIN(compsynth::bench::print_table1)
