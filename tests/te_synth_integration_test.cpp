// Cross-module integration: the TE substrate feeding the synthesizer, for
// both the 2-metric SWAN sketch and the flow-level 3-metric swan_fair
// sketch. This is the full paper workflow exercised programmatically.
#include <gtest/gtest.h>

#include "oracle/ground_truth.h"
#include "sketch/eval.h"
#include "sketch/library.h"
#include "solver/equivalence.h"
#include "synth/synthesizer.h"
#include "te/scenario_gen.h"
#include "util/rng.h"

namespace compsynth {
namespace {

struct TeFixture : public ::testing::Test {
  te::Topology topo = te::abilene();
  std::vector<te::FlowRequest> requests;

  void SetUp() override {
    util::Rng rng(515);
    requests = te::random_workload(topo, rng, 10, 1, 6);
  }
};

TEST_F(TeFixture, FairScenarioFitsSketchRanges) {
  const auto& sk = sketch::swan_fair_sketch();
  for (const double eps : {0.0, 0.01, 0.05}) {
    const te::Allocation a = te::swan_allocation(topo, requests, eps);
    ASSERT_TRUE(a.feasible);
    const pref::Scenario s = te::to_fair_scenario(a, requests);
    EXPECT_TRUE(pref::in_range(s, sk));
  }
}

TEST_F(TeFixture, MaxMinMaximizesTheFairnessMetricAmongPolicies) {
  const te::Allocation greedy = te::max_throughput(topo, requests);
  const te::Allocation fair = te::max_min_fair(topo, requests);
  const double greedy_frac = te::to_fair_scenario(greedy, requests).metrics[2];
  const double fair_frac = te::to_fair_scenario(fair, requests).metrics[2];
  // Max-min cannot serve the worst flow a lower fraction than throughput
  // maximization does (it lexicographically maximizes the minimum).
  EXPECT_GE(fair_frac, greedy_frac - 1e-6);
}

TEST_F(TeFixture, FairnessLovingObjectivePicksFairAllocation) {
  const auto& sk = sketch::swan_fair_sketch();
  // Latent intent: fairness floor 0.5 with a strong fairness weight.
  sketch::HoleAssignment latent;
  latent.index = {sk.holes()[0].nearest_index(0),    // tp_thrsh: none
                  sk.holes()[1].nearest_index(200),  // l_thrsh: lax
                  sk.holes()[2].nearest_index(0.5),  // f_thrsh
                  sk.holes()[3].nearest_index(0),    // slope
                  sk.holes()[4].nearest_index(50)};  // w_fair max

  struct Candidate {
    const char* label;
    te::Allocation alloc;
  };
  std::vector<Candidate> candidates{
      {"max-throughput", te::max_throughput(topo, requests)},
      {"max-min-fair", te::max_min_fair(topo, requests)},
      {"danna q=0.5", te::danna_balanced(topo, requests, 0.5)}};

  std::size_t best = 0;
  double best_v = -1e300;
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    const pref::Scenario s = te::to_fair_scenario(candidates[i].alloc, requests);
    const double v = sketch::eval(sk, latent, s.metrics);
    if (v > best_v) {
      best_v = v;
      best = i;
    }
  }
  // The fairness-floor objective must not pick pure throughput maximization
  // if it starves some flow below half its demand while a fair policy exists.
  const double greedy_frac =
      te::to_fair_scenario(candidates[0].alloc, requests).metrics[2];
  const double fair_frac =
      te::to_fair_scenario(candidates[1].alloc, requests).metrics[2];
  if (greedy_frac < 0.5 && fair_frac >= 0.5) {
    EXPECT_NE(best, 0u) << "picked the starving allocation";
  }
}

TEST_F(TeFixture, ThreeMetricSynthesisConverges) {
  const auto& sk = sketch::swan_fair_sketch();
  sketch::HoleAssignment target;
  target.index = {sk.holes()[0].nearest_index(20), sk.holes()[1].nearest_index(60),
                  sk.holes()[2].nearest_index(0.5), sk.holes()[3].nearest_index(1),
                  sk.holes()[4].nearest_index(20)};

  synth::SynthesisConfig config;
  config.seed = 99;
  config.max_iterations = 400;
  synth::Synthesizer s = synth::make_grid_synthesizer(sk, config);
  oracle::GroundTruthOracle architect(sk, target, config.finder.tie_tolerance);
  const synth::SynthesisResult r = s.run(architect);
  ASSERT_EQ(r.status, synth::SynthesisStatus::kConverged);
  ASSERT_TRUE(r.objective.has_value());
  EXPECT_TRUE(solver::ranking_equivalent(sk, *r.objective, target, config.finder));
}

TEST_F(TeFixture, LearnedFairObjectiveSelectsSameDesignAsLatent) {
  const auto& sk = sketch::swan_fair_sketch();
  sketch::HoleAssignment latent;
  latent.index = {sk.holes()[0].nearest_index(10), sk.holes()[1].nearest_index(100),
                  sk.holes()[2].nearest_index(0.6), sk.holes()[3].nearest_index(1),
                  sk.holes()[4].nearest_index(30)};

  synth::SynthesisConfig config;
  config.seed = 7;
  config.max_iterations = 400;
  synth::Synthesizer s = synth::make_grid_synthesizer(sk, config);
  oracle::GroundTruthOracle architect(sk, latent, config.finder.tie_tolerance);
  const synth::SynthesisResult learned = s.run(architect);
  ASSERT_TRUE(learned.objective.has_value());

  // Candidate designs: epsilon sweep + fairness sweep, projected to the
  // 3-metric space.
  std::vector<pref::Scenario> design_scenarios;
  for (const double eps : {0.0, 0.01, 0.03, 0.06}) {
    design_scenarios.push_back(
        te::to_fair_scenario(te::swan_allocation(topo, requests, eps), requests));
  }
  for (const double q : {0.5, 1.0}) {
    design_scenarios.push_back(
        te::to_fair_scenario(te::danna_balanced(topo, requests, q), requests));
  }
  auto argmax = [&](const sketch::HoleAssignment& obj) {
    std::size_t best = 0;
    double best_v = -1e300;
    for (std::size_t i = 0; i < design_scenarios.size(); ++i) {
      const double v = sketch::eval(sk, obj, design_scenarios[i].metrics);
      if (v > best_v) {
        best_v = v;
        best = i;
      }
    }
    return best;
  };
  const std::size_t latent_pick = argmax(latent);
  const std::size_t learned_pick = argmax(*learned.objective);
  // Ranking-equivalent objectives agree on argmax up to exact scenario ties.
  EXPECT_EQ(design_scenarios[latent_pick], design_scenarios[learned_pick]);
}

}  // namespace
}  // namespace compsynth

// --- Multi-class priority workflow (paper §2's priority discussion) --------

namespace compsynth {
namespace {

struct MultiClassFixture : public ::testing::Test {
  te::Topology topo = te::abilene();
  std::vector<te::FlowRequest> requests;

  void SetUp() override {
    util::Rng rng(616);
    requests = te::random_workload(topo, rng, 10, 1, 5);
    // Make the first four flows high priority (interactive class).
    for (std::size_t f = 0; f < 4; ++f) requests[f].flow.priority = 1;
  }
};

TEST_F(MultiClassFixture, ClassScenarioSplitsThroughputByPriority) {
  const te::Allocation a = te::max_throughput(topo, requests);
  const pref::Scenario s = te::to_class_scenario(a, requests);
  EXPECT_NEAR(s.metrics[0] + s.metrics[1], a.total_throughput_gbps, 1e-6);
  EXPECT_TRUE(pref::in_range(s, sketch::swan_priority_sketch()));
}

TEST_F(MultiClassFixture, HigherClassWeightNeverHurtsHighClass) {
  const std::vector<double> weights{1, 2, 4, 8, 16};
  const auto designs = te::sweep_class_weights(topo, requests, weights);
  ASSERT_EQ(designs.size(), weights.size() + 1);  // + strict priority
  for (std::size_t i = 1; i + 1 < designs.size(); ++i) {
    EXPECT_GE(designs[i].scenario.metrics[0],
              designs[i - 1].scenario.metrics[0] - 1e-5)
        << designs[i].label;
  }
  // Strict priority dominates every weighted design on high-class rate.
  const double strict_hi = designs.back().scenario.metrics[0];
  for (std::size_t i = 0; i + 1 < designs.size(); ++i) {
    EXPECT_GE(strict_hi, designs[i].scenario.metrics[0] - 1e-5);
  }
}

TEST_F(MultiClassFixture, LatentIntentSelectsMatchingDesign) {
  const auto& sk = sketch::swan_priority_sketch();
  const std::vector<double> weights{1, 2, 4, 8};
  const auto designs = te::sweep_class_weights(topo, requests, weights);

  // An architect who values background traffic equally (w_lo = 10 is not on
  // the grid; use w_lo = 10 -> nearest 10) prefers egalitarian sharing...
  sketch::HoleAssignment egalitarian;
  egalitarian.index = {sk.holes()[0].nearest_index(0),
                       sk.holes()[1].nearest_index(10),
                       sk.holes()[2].nearest_index(0)};
  const std::size_t eq_pick = te::pick_best(sk, egalitarian, designs);

  // ...while a strict-priority architect (w_lo = 0, high floor) prefers the
  // design maximizing high-class throughput.
  sketch::HoleAssignment strict_lover;
  strict_lover.index = {sk.holes()[0].nearest_index(20),
                        sk.holes()[1].nearest_index(0),
                        sk.holes()[2].nearest_index(0)};
  const std::size_t strict_pick = te::pick_best(sk, strict_lover, designs);

  // The strict-priority architect's design carries at least as much
  // high-class throughput as the egalitarian's.
  EXPECT_GE(designs[strict_pick].scenario.metrics[0],
            designs[eq_pick].scenario.metrics[0] - 1e-6);
  // And the egalitarian's design carries at least as much low-class traffic.
  EXPECT_GE(designs[eq_pick].scenario.metrics[1],
            designs[strict_pick].scenario.metrics[1] - 1e-6);
}

TEST_F(MultiClassFixture, LearnedPriorityObjectivePicksLatentDesign) {
  const auto& sk = sketch::swan_priority_sketch();
  sketch::HoleAssignment latent;
  latent.index = {sk.holes()[0].nearest_index(8),   // hi floor 8 Gbps
                  sk.holes()[1].nearest_index(3),   // some value on lo class
                  sk.holes()[2].nearest_index(0.5)};

  synth::SynthesisConfig config;
  config.seed = 23;
  config.max_iterations = 300;
  synth::Synthesizer s = synth::make_grid_synthesizer(sk, config);
  oracle::GroundTruthOracle architect(sk, latent, config.finder.tie_tolerance);
  const synth::SynthesisResult learned = s.run(architect);
  ASSERT_EQ(learned.status, synth::SynthesisStatus::kConverged);
  ASSERT_TRUE(learned.objective.has_value());

  const std::vector<double> weights{1, 2, 4, 8, 16};
  const auto designs = te::sweep_class_weights(topo, requests, weights);
  const std::size_t latent_pick = te::pick_best(sk, latent, designs);
  const std::size_t learned_pick = te::pick_best(sk, *learned.objective, designs);
  EXPECT_EQ(designs[latent_pick].scenario, designs[learned_pick].scenario);
}

TEST_F(MultiClassFixture, RejectsNonPositiveWeights) {
  EXPECT_THROW(
      te::sweep_class_weights(topo, requests, std::vector<double>{1, 0}),
      std::invalid_argument);
}

}  // namespace
}  // namespace compsynth
