// Wire protocol for the synthesis service (docs/SERVICE.md is the
// field-by-field reference).
//
// The daemon speaks line-delimited flat JSON: one request object per line,
// one response object per line, no nesting — exactly the shape
// obs::parse_flat_json understands, so the protocol reader is the trace
// reader. Six verbs drive a session through its life:
//
//   create   register a session id and start its synthesis run
//   next     fetch the session's current distinguishing (s1, s2) pair
//   answer   submit the architect's comparison for that pair
//   inspect  session status, or daemon-wide stats when no session is given
//   evict    swap the session's in-memory state to disk immediately
//   shutdown drain and stop the daemon
//
// Scenario metric vectors cross the wire as single strings of
// space-separated %.17g values ("2.5 100") — the same canonical rendering
// the per-session answers.log records, so a pair can be compared byte-wise
// across processes. See scenario_key / decode_metrics.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

#include "oracle/oracle.h"
#include "pref/scenario.h"

namespace compsynth::serve {

/// Stamped into every response as "v"; bump on incompatible changes.
inline constexpr int kProtocolVersion = 1;

enum class Verb { kCreate, kNext, kAnswer, kInspect, kEvict, kShutdown };

/// "create", "next", ... — the wire spelling.
const char* verb_name(Verb verb);
std::optional<Verb> parse_verb(std::string_view name);

// Error codes (docs/SERVICE.md §Errors). A failed response carries
// {"ok":false,"code":"E_...","error":"<human message>"}.
inline constexpr char kErrParse[] = "E_PARSE";        // not a flat JSON line
inline constexpr char kErrVerb[] = "E_VERB";          // unknown/missing verb
inline constexpr char kErrId[] = "E_ID";              // malformed session id
inline constexpr char kErrExists[] = "E_EXISTS";      // create: id taken
inline constexpr char kErrUnknownSession[] = "E_UNKNOWN_SESSION";
inline constexpr char kErrSketch[] = "E_SKETCH";      // unregistered sketch
inline constexpr char kErrBackend[] = "E_BACKEND";    // unsupported backend
inline constexpr char kErrState[] = "E_STATE";        // verb vs phase mismatch
inline constexpr char kErrIndex[] = "E_INDEX";        // answer: wrong index
inline constexpr char kErrAnswer[] = "E_ANSWER";      // answer: bad value
inline constexpr char kErrField[] = "E_FIELD";        // bad field type/range
inline constexpr char kErrInternal[] = "E_INTERNAL";  // session state corrupt

/// One parsed request. Fields beyond `verb`/`session` are meaningful only
/// for the verb that uses them (create's configuration, next's wait budget,
/// answer's index + preference); parse_request leaves the rest at defaults.
struct Request {
  Verb verb = Verb::kInspect;
  std::string session;  // empty = daemon-level (inspect / shutdown only)

  // create
  std::string sketch;  // registered sketch name; empty = daemon default
  std::string backend = "grid";
  std::uint64_t seed = 1;
  int initial = 5;
  int pairs = 1;
  int max_iters = 500;

  // next
  int wait_ms = 0;

  // answer
  long index = -1;
  oracle::Preference answer = oracle::Preference::kTie;
};

struct ParseError {
  std::string code;
  std::string message;
};

/// Parses one request line; returns the request or the error response to
/// send back. Unknown keys are ignored (forward compatibility).
std::variant<Request, ParseError> parse_request(std::string_view line);

/// Renders `req` as one request line (no trailing newline). Round-trips
/// through parse_request; clients (tools/compsynth_load.cpp) build their
/// traffic with this.
std::string render_request(const Request& req);

/// Session ids must match [A-Za-z0-9._-]{1,64} and not start with a dot —
/// they double as directory names under the daemon's --root.
bool valid_session_id(std::string_view id);

/// "first" / "second" / "tie" — the wire spelling of a comparison answer.
const char* preference_name(oracle::Preference p);
std::optional<oracle::Preference> parse_preference(std::string_view name);

/// Canonical scenario rendering: space-separated %.17g metric values.
/// Round-trips exactly through decode_metrics (%.17g preserves doubles) and
/// is the identity used by the answers.log replay check.
std::string scenario_key(const pref::Scenario& s);
std::string encode_metrics(const std::vector<double>& metrics);
std::optional<std::vector<double>> decode_metrics(std::string_view text);

/// Incremental flat-JSON response builder ({"k":v,...}); values are escaped
/// per obs::json_escape. `done()` closes and returns the object.
class JsonWriter {
 public:
  JsonWriter& str(std::string_view key, std::string_view value);
  JsonWriter& integer(std::string_view key, long long value);
  JsonWriter& num(std::string_view key, double value);
  JsonWriter& boolean(std::string_view key, bool value);
  std::string done();

 private:
  void key(std::string_view k);
  std::string out_ = "{";
  bool first_ = true;
};

/// {"v":1,"ok":false,"code":...,"error":...} — the uniform failure shape.
std::string error_response(std::string_view code, std::string_view message);

/// Starts a success response ({"v":1,"ok":true,"verb":...}); the caller
/// appends verb-specific fields and calls done().
JsonWriter ok_response(Verb verb);

}  // namespace compsynth::serve
