// The worker side of distributed version-space sync: a line-protocol server
// (serve/line_server.h) that computes fixed-range shards of a full kBatch
// grid sync on request (docs/DISTRIBUTED.md).
//
// A worker is stateless between requests in the sense that matters for
// recovery: every shard request is self-contained (sketch text, graph text,
// tie tolerance, range), so any worker can serve any shard and a lost worker
// forfeits nothing but time. The only state kept is a small MRU cache of
// compiled GridFinder engines keyed by (sketch text, tie) — compiling the
// lane tape once per sketch instead of once per shard — which is purely a
// throughput optimization and never observable in results.
//
// Fault injection for the robustness tests rides the same seeded
// util::FaultInjector the rest of the tree uses: worker_stall sleeps past
// the coordinator's deadline, worker_truncate returns a blob cut mid-bitmap
// (CRC valid, structure torn), worker_drop sends half the response bytes
// and kills the connection, worker_crash_after_ack downs the whole worker
// right after a successful response (see util/fault.h).
//
// Observability: dist.worker.requests / dist.worker.faults counters and one
// "worker_shard" trace event per shard request (schema rev 1.6).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "dist/wire.h"
#include "obs/run_context.h"
#include "serve/line_server.h"
#include "solver/grid_finder.h"
#include "util/fault.h"
#include "util/sync.h"
#include "util/thread_annotations.h"

namespace compsynth::dist {

struct WorkerConfig {
  /// "unix:<path>" or "tcp:[host:]<port>"; tcp:0 binds an ephemeral port.
  std::string listen;
  int backlog = 64;
  /// Injected worker faults (all-zero = none).
  util::FaultPlan faults;
  /// Worker-level observability (typically run id "worker").
  obs::RunContext obs;
};

class Worker {
 public:
  /// Binds immediately; throws std::runtime_error on a bad endpoint.
  explicit Worker(WorkerConfig config);

  Worker(const Worker&) = delete;
  Worker& operator=(const Worker&) = delete;

  void start();
  std::string endpoint() const;
  /// Blocks until a shutdown verb or stop(), then joins every thread.
  void wait();
  void stop();

 private:
  std::string handle_line(const std::string& line, serve::LineControl* ctl);
  std::string handle_shard(const ShardRequest& req, serve::LineControl* ctl);

  /// The compiled engine for (sketch text, tie), built on first use.
  /// GridFinder::sync_shard_blob is const and pure, so concurrent shard
  /// requests share one engine; only the cache structure needs the lock.
  std::shared_ptr<const solver::GridFinder> finder_for(
      const std::string& sketch_text, double tie) EXCLUDES(mu_);

  WorkerConfig config_;
  util::FaultInjector faults_;
  serve::LineServer server_;

  struct CacheEntry {
    std::string sketch_text;
    double tie = 0;
    std::shared_ptr<const solver::GridFinder> finder;
  };
  static constexpr std::size_t kMaxCachedEngines = 4;

  util::Mutex mu_;
  /// MRU order: front = most recent.
  std::vector<CacheEntry> engines_ GUARDED_BY(mu_);
};

}  // namespace compsynth::dist
