#!/usr/bin/env bash
# Custom static pass over the concurrency and observability conventions that
# neither the compiler nor clang-tidy enforces. Fails (exit 1) on:
#
#   1. A Mutex member declared in src/ that no GUARDED_BY/PT_GUARDED_BY in
#      the same file references — an unannotated lock guards nothing the
#      analysis can see, which is how annotation coverage rots. Waive a
#      deliberate exception with `// tsa-ok(<member>): <why>` in that file.
#   2. A raw std::mutex / std::condition_variable member anywhere outside
#      util/sync.h — raw primitives are invisible to -Wthread-safety; use
#      util::Mutex / util::CondVar (see docs/CONCURRENCY.md).
#   3. std::thread::detach() — every thread in this tree is joined;
#      a detached thread outliving its captures is a use-after-free in
#      waiting.
#   4. `volatile` in src/ — it is not a synchronization primitive; use
#      std::atomic (waive hardware-register cases, should any ever appear,
#      with `// volatile-ok: <why>`).
#   5. A trace-event kind emitted in src/ that docs/OBSERVABILITY.md's
#      schema table has no `### \`kind\`` heading for — the golden trace
#      tests pin the schema, so an undocumented kind is doc drift.
#   6. Raw SIMD intrinsics (<immintrin.h> / _mm* calls) in a src/ TU that
#      does not carry a `// simd-ok: <why>` waiver — intrinsics belong in
#      the dedicated per-ISA kernel TUs (src/sketch/batch_avx2.cpp), which
#      the build compiles with the matching -m flags; stray intrinsics in
#      generic TUs either break non-x86 builds or silently require host
#      flags (docs/EVALUATOR.md).
#
# Also prints a tally of NO_THREAD_SAFETY_ANALYSIS uses; each one must carry
# a justification comment on the same or previous line.
#
# Usage: scripts/check_static.sh [--self-test]
#   --self-test seeds one violation of each class into a temp tree and
#   asserts this script catches it (wired up as the check_static_detects
#   ctest, so the checker itself cannot silently rot).
set -u

cd "$(dirname "$0")/.."

fail=0
say() { printf '%s\n' "$*"; }
violation() {
  say "check_static: FAIL: $*"
  fail=1
}

run_checks() {
  local src_root="$1"

  # --- 1. every Mutex member is referenced by a GUARDED_BY ------------------
  while IFS=: read -r file _line decl; do
    [ -n "$file" ] || continue
    local member
    member=$(printf '%s' "$decl" |
      sed -nE 's/^[[:space:]]*(mutable[[:space:]]+)?(util::)?Mutex[[:space:]]+([A-Za-z_][A-Za-z0-9_]*)[[:space:]]*;.*/\3/p')
    [ -n "$member" ] || continue
    if ! grep -qE "(GUARDED_BY|PT_GUARDED_BY)\($member\)" "$file" &&
       ! grep -qE "tsa-ok\($member\)" "$file"; then
      violation "$file: Mutex member '$member' has no GUARDED_BY($member)" \
        "(annotate the fields it guards, or waive with // tsa-ok($member): <why>)"
    fi
  done < <(grep -rnE '^[[:space:]]*(mutable[[:space:]]+)?(util::)?Mutex[[:space:]]+[A-Za-z_][A-Za-z0-9_]*[[:space:]]*;' \
             "$src_root" --include='*.h' --include='*.cpp' 2>/dev/null |
           grep -v 'util/sync\.h')

  # --- 2. raw primitives outside util/sync.h --------------------------------
  while IFS= read -r hit; do
    [ -n "$hit" ] || continue
    violation "$hit — raw std primitive is invisible to -Wthread-safety;" \
      "use util::Mutex / util::CondVar / util::MutexLock (util/sync.h)"
  done < <(grep -rnE 'std::(mutex|condition_variable|lock_guard|unique_lock|scoped_lock|shared_mutex)\b' \
             "$src_root" --include='*.h' --include='*.cpp' 2>/dev/null |
           grep -v 'util/sync\.h' | grep -v '^\s*//' | grep -vE ':[0-9]+:\s*(//|\*)')

  # --- 3. no detached threads ----------------------------------------------
  while IFS= read -r hit; do
    [ -n "$hit" ] || continue
    violation "$hit — detached threads are banned (join everything;" \
      "a detached thread outliving its captures is a use-after-free)"
  done < <(grep -rnE '\.detach\(\)' \
             "$src_root" --include='*.h' --include='*.cpp' 2>/dev/null |
           grep -vE ':[0-9]+:\s*(//|\*)')

  # --- 4. no volatile -------------------------------------------------------
  while IFS= read -r hit; do
    [ -n "$hit" ] || continue
    violation "$hit — volatile is not a synchronization primitive;" \
      "use std::atomic (or waive with // volatile-ok: <why>)"
  done < <(grep -rnE '\bvolatile\b' \
             "$src_root" --include='*.h' --include='*.cpp' 2>/dev/null |
           grep -vE ':[0-9]+:\s*(//|\*)' | grep -v 'volatile-ok')

  # --- 6. raw intrinsics confined to waived per-ISA TUs ---------------------
  while IFS=: read -r file _line _hit; do
    [ -n "$file" ] || continue
    if ! grep -q 'simd-ok:' "$file"; then
      violation "$file: raw SIMD intrinsics without a '// simd-ok: <why>'" \
        "waiver — keep intrinsics in dedicated per-ISA kernel TUs" \
        "(docs/EVALUATOR.md)"
    fi
  done < <(grep -rnE '(#include[[:space:]]*<immintrin\.h>|\b_mm(256|512)?_[a-z0-9_]+\()' \
             "$src_root" --include='*.h' --include='*.cpp' 2>/dev/null |
           grep -vE ':[0-9]+:\s*(//|\*)' | cut -d: -f1,2 | sort -u -t: -k1,1)
}

check_trace_schema() {
  local src_root="$1" schema="$2"
  local kinds
  kinds=$( (grep -rhoE 'TraceEvent[[:space:]]+[A-Za-z_]+\("[a-z_]+"\)' \
              "$src_root" --include='*.cpp' 2>/dev/null |
              grep -oE '"[a-z_]+"';
            grep -rhoE 'Span[[:space:]]+[A-Za-z_]+\([^,]+,[[:space:]]*"[a-z_]+"' \
              "$src_root" --include='*.cpp' 2>/dev/null |
              grep -oE '"[a-z_]+"') | tr -d '"' | sort -u)
  local kind
  for kind in $kinds; do
    if ! grep -qE "^### \`$kind\`" "$schema" 2>/dev/null; then
      violation "trace event kind '$kind' is emitted in $src_root but has no" \
        "'### \`$kind\`' heading in $schema (document it or rename it)"
    fi
  done
}

check_nsa_justified() {
  local src_root="$1"
  local count=0
  while IFS=: read -r file line _rest; do
    [ -n "$file" ] || continue
    count=$((count + 1))
    # The use line itself or the line above must say why.
    local context
    context=$(sed -n "$((line > 1 ? line - 1 : 1)),${line}p" "$file")
    if ! printf '%s' "$context" | grep -q '//'; then
      violation "$file:$line: NO_THREAD_SAFETY_ANALYSIS without a" \
        "justification comment on the same or previous line"
    fi
  done < <(grep -rn 'NO_THREAD_SAFETY_ANALYSIS' \
             "$src_root" --include='*.h' --include='*.cpp' 2>/dev/null |
           grep -v 'thread_annotations\.h' | grep -vE ':[0-9]+:\s*(//|\*)')
  say "check_static: NO_THREAD_SAFETY_ANALYSIS uses outside the macro header: $count"
}

self_test() {
  local tmp
  tmp=$(mktemp -d)
  trap 'rm -rf "$tmp"' EXIT
  mkdir -p "$tmp/src" "$tmp/docs"

  cat > "$tmp/src/bad.h" <<'EOF'
#include <mutex>
class Bad {
  void go() { worker_.detach(); }
  volatile int flag = 0;
  util::Mutex unreferenced_mu_;
  std::mutex raw_mu_;
  std::thread worker_;
};
EOF
  cat > "$tmp/src/bad.cpp" <<'EOF'
void emit() { obs::TraceEvent ev("undocumented_kind"); }
EOF
  cat > "$tmp/src/bad_simd.cpp" <<'EOF'
#include <immintrin.h>
double sum2(const double* p) {
  __m128d v = _mm_loadu_pd(p);
  return _mm_cvtsd_f64(_mm_hadd_pd(v, v));
}
EOF
  printf '# schema\n' > "$tmp/docs/OBSERVABILITY.md"

  local out
  out=$(fail=0; run_checks "$tmp/src"
        check_trace_schema "$tmp/src" "$tmp/docs/OBSERVABILITY.md"
        exit "$fail")
  local status=$?
  local expected ok=1
  for expected in "unreferenced_mu_" "std::mutex" "detach" "volatile" \
                  "undocumented_kind" "bad_simd.cpp"; do
    if ! printf '%s' "$out" | grep -q "$expected"; then
      say "check_static --self-test: seeded '$expected' violation NOT caught"
      ok=0
    fi
  done
  if [ "$status" -eq 0 ]; then
    say "check_static --self-test: seeded tree passed (checker is broken)"
    ok=0
  fi
  if [ "$ok" -eq 1 ]; then
    say "check_static --self-test: OK (all 6 seeded violation classes caught)"
    exit 0
  fi
  printf '%s\n' "$out"
  exit 1
}

if [ "${1:-}" = "--self-test" ]; then
  self_test
fi

run_checks src
check_trace_schema src docs/OBSERVABILITY.md
check_nsa_justified src

if [ "$fail" -ne 0 ]; then
  say "check_static: FAILED"
  exit 1
fi
say "check_static: OK"
