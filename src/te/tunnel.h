// Tunnels (pre-established paths) and flow requests.
//
// SWAN-style TE forwards each flow over a small set of pre-computed tunnels
// and chooses how to split the flow's rate across them. Tunnels are computed
// here as the k shortest loopless paths by latency (Yen's algorithm over
// Dijkstra).
#pragma once

#include <string>
#include <vector>

#include "te/topology.h"

namespace compsynth::te {

/// A loopless path through the network.
struct Tunnel {
  std::vector<LinkId> links;
  double latency_ms = 0;  // sum of link latencies

  friend bool operator==(const Tunnel&, const Tunnel&) = default;
};

/// A unidirectional traffic demand between two nodes.
struct Flow {
  NodeId src = 0;
  NodeId dst = 0;
  double demand_gbps = 0;
  int priority = 0;      // higher = more important (multi-class TE)
  double weight = 1.0;   // weighted max-min share
  std::string name;
};

/// A flow bundled with the tunnels it may use.
struct FlowRequest {
  Flow flow;
  std::vector<Tunnel> tunnels;
};

/// Shortest path by latency from src to dst, or an empty tunnel when
/// unreachable.
Tunnel shortest_tunnel(const Topology& topo, NodeId src, NodeId dst);

/// Up to k shortest loopless paths by latency (Yen's algorithm), sorted by
/// latency ascending. Returns fewer when the graph has fewer paths.
std::vector<Tunnel> k_shortest_tunnels(const Topology& topo, NodeId src,
                                       NodeId dst, int k);

/// Builds a FlowRequest with k tunnels; throws std::invalid_argument when
/// src cannot reach dst.
FlowRequest make_request(const Topology& topo, Flow flow, int k_tunnels = 3);

}  // namespace compsynth::te
