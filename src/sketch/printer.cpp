#include "sketch/printer.h"

#include <algorithm>
#include <cstdint>
#include <sstream>

#include "util/table.h"

namespace compsynth::sketch {

namespace {

// Binding strength, loosest (1) to tightest. Mirrors the parser's grammar:
// || < && < comparison < +- < */ < unary < primary.
int precedence_of(const Expr& e) {
  switch (e.kind) {
    case Expr::Kind::kBoolBinary:
      return e.bool_op == BoolOp::kOr ? 1 : 2;
    case Expr::Kind::kCmp:
      return 3;
    case Expr::Kind::kBinary:
      switch (e.bin_op) {
        case BinOp::kAdd:
        case BinOp::kSub: return 4;
        case BinOp::kMul:
        case BinOp::kDiv: return 5;
        case BinOp::kMin:
        case BinOp::kMax: return 7;  // rendered as calls; never need parens
      }
      return 4;
    case Expr::Kind::kNeg:
    case Expr::Kind::kNot:
      return 6;
    case Expr::Kind::kIte:
      return 0;  // always parenthesized when nested
    case Expr::Kind::kConst:
      // A negative literal prints with a leading '-', so it binds like a
      // unary minus: "-(-2.5)" round-trips, "--2.5" would re-parse as a
      // double negation and print differently.
      return e.literal < 0 ? 6 : 7;
    case Expr::Kind::kBoolConst:
    case Expr::Kind::kMetric:
    case Expr::Kind::kHole:
    case Expr::Kind::kChoice:  // brace-delimited; never needs parens
      return 7;
  }
  return 7;
}

const char* bin_op_text(BinOp op) {
  switch (op) {
    case BinOp::kAdd: return " + ";
    case BinOp::kSub: return " - ";
    case BinOp::kMul: return "*";
    case BinOp::kDiv: return "/";
    case BinOp::kMin: return "min";
    case BinOp::kMax: return "max";
  }
  return "?";
}

const char* cmp_op_text(CmpOp op) {
  switch (op) {
    case CmpOp::kLt: return " < ";
    case CmpOp::kLe: return " <= ";
    case CmpOp::kGt: return " > ";
    case CmpOp::kGe: return " >= ";
    case CmpOp::kEq: return " == ";
    case CmpOp::kNe: return " != ";
  }
  return "?";
}

class Printer {
 public:
  Printer(const Sketch& context, const HoleAssignment* substitution)
      : context_(context), substitution_(substitution) {}

  std::string print(const Expr& e) {
    std::ostringstream os;
    emit(os, e, /*parent_prec=*/0, /*rhs_of_same=*/false);
    return os.str();
  }

 private:
  void emit(std::ostringstream& os, const Expr& e, int parent_prec,
            bool rhs_of_same) {
    const int prec = precedence_of(e);
    // Parenthesize when binding looser than the context requires, or when a
    // same-precedence node sits on the right of a left-associative operator
    // (e.g. a - (b + c)).
    const bool parens = prec < parent_prec || (prec == parent_prec && rhs_of_same);
    if (parens) os << '(';
    emit_node(os, e, prec);
    if (parens) os << ')';
  }

  void emit_node(std::ostringstream& os, const Expr& e, int prec) {
    switch (e.kind) {
      case Expr::Kind::kConst:
        os << util::format_number(e.literal, 6);
        return;
      case Expr::Kind::kBoolConst:
        os << (e.literal != 0 ? "true" : "false");
        return;
      case Expr::Kind::kMetric:
        os << context_.metrics()[e.metric].name;
        return;
      case Expr::Kind::kHole:
        if (substitution_ != nullptr) {
          os << util::format_number(
              context_.holes()[e.hole].value_at(substitution_->index[e.hole]), 6);
        } else {
          os << context_.holes()[e.hole].name;
        }
        return;
      case Expr::Kind::kNeg:
        os << '-';
        emit(os, *e.children[0], prec, /*rhs_of_same=*/true);
        return;
      case Expr::Kind::kNot:
        os << '!';
        emit(os, *e.children[0], prec, /*rhs_of_same=*/true);
        return;
      case Expr::Kind::kBinary:
        if (e.bin_op == BinOp::kMin || e.bin_op == BinOp::kMax) {
          os << bin_op_text(e.bin_op) << '(';
          emit(os, *e.children[0], 0, false);
          os << ", ";
          emit(os, *e.children[1], 0, false);
          os << ')';
          return;
        }
        emit(os, *e.children[0], prec, /*rhs_of_same=*/false);
        os << bin_op_text(e.bin_op);
        emit(os, *e.children[1], prec, /*rhs_of_same=*/true);
        return;
      case Expr::Kind::kCmp:
        emit(os, *e.children[0], prec, false);
        os << cmp_op_text(e.cmp_op);
        emit(os, *e.children[1], prec, /*rhs_of_same=*/true);
        return;
      case Expr::Kind::kBoolBinary:
        emit(os, *e.children[0], prec, false);
        os << (e.bool_op == BoolOp::kAnd ? " && " : " || ");
        emit(os, *e.children[1], prec, false);  // associative: no rhs parens
        return;
      case Expr::Kind::kIte:
        os << "if ";
        emit(os, *e.children[0], 1, false);
        os << " then ";
        emit(os, *e.children[1], 1, false);
        os << " else ";
        emit(os, *e.children[2], 1, false);
        return;
      case Expr::Kind::kChoice:
        if (substitution_ != nullptr) {
          // Solution view: print only the chosen alternative.
          const std::int64_t raw = substitution_->index[e.hole];
          const auto idx = static_cast<std::size_t>(std::clamp<std::int64_t>(
              raw, 0, static_cast<std::int64_t>(e.children.size()) - 1));
          emit(os, *e.children[idx], prec, false);
          return;
        }
        os << "choose " << context_.holes()[e.hole].name << " { ";
        for (std::size_t j = 0; j < e.children.size(); ++j) {
          if (j > 0) os << ", ";
          emit(os, *e.children[j], 0, false);
        }
        os << " }";
        return;
    }
  }

  const Sketch& context_;
  const HoleAssignment* substitution_;
};

}  // namespace

std::string print_expr(const Expr& e, const Sketch& context) {
  return Printer(context, nullptr).print(e);
}

std::string print_sketch(const Sketch& sketch) {
  std::ostringstream os;
  os << "sketch " << sketch.name() << '(';
  for (std::size_t i = 0; i < sketch.metrics().size(); ++i) {
    const MetricSpec& m = sketch.metrics()[i];
    if (i > 0) os << ", ";
    os << m.name << " in [" << util::format_number(m.lo, 6) << ", "
       << util::format_number(m.hi, 6) << ']';
  }
  os << ") {\n";
  for (const HoleSpec& h : sketch.holes()) {
    os << "  hole " << h.name << " in grid(" << util::format_number(h.lo, 6)
       << ", " << util::format_number(h.step, 6) << ", " << h.count << ");\n";
  }
  os << "  " << print_expr(*sketch.body(), sketch) << "\n}\n";
  return os.str();
}

std::string print_instantiated(const Sketch& sketch, const HoleAssignment& a) {
  if (!sketch.valid_assignment(a)) {
    throw std::invalid_argument("print_instantiated: invalid assignment");
  }
  std::ostringstream os;
  os << sketch.name() << '(';
  for (std::size_t i = 0; i < sketch.metrics().size(); ++i) {
    if (i > 0) os << ", ";
    os << sketch.metrics()[i].name;
  }
  os << ") = " << Printer(sketch, &a).print(*sketch.body());
  return os.str();
}

}  // namespace compsynth::sketch
