// Figure 5 of the paper: effect of the number of initial random scenarios
// (0, 2, 5, 7, 10). More initial scenarios seed the preference graph with
// more constraints: the paper observed fewer interactions but slower
// per-iteration synthesis (each query carries more constraints from the
// start).
#include "bench_common.h"
#include "sketch/library.h"

namespace compsynth::bench {
namespace {

void BM_Fig5(benchmark::State& state) {
  const int initial = static_cast<int>(state.range(0));
  synth::ExperimentSpec spec{.sketch = sketch::swan_sketch(),
                             .target = sketch::swan_target()};
  spec.backend = synth::Backend::kZ3;
  spec.repetitions = repetitions(3);
  spec.config.seed = 9900 + static_cast<std::uint64_t>(initial);
  spec.config.initial_scenarios = initial;
  run_and_record(state, std::to_string(initial) + " initial scenario(s)", spec);
}
BENCHMARK(BM_Fig5)->Arg(0)->Arg(2)->Arg(5)->Arg(7)->Arg(10)
    ->Iterations(1)->UseManualTime()->Unit(benchmark::kSecond);

void print_fig5() {
  print_series(
      "Figure 5: number of initial random scenarios (0, 2, 5, 7, 10)",
      {"paper: more initial scenarios -> fewer interactions but slower",
       "per-iteration synthesis."});
}

}  // namespace
}  // namespace compsynth::bench

COMPSYNTH_BENCH_MAIN(compsynth::bench::print_fig5)
