#!/usr/bin/env bash
# Crash-recovery check for distributed version-space sync
# (docs/DISTRIBUTED.md §Failure model): kill -9 one of two workers while a
# synthesis run's full sync is farmed out to them. The run must complete
# anyway — orphaned shards are re-dispatched to the surviving worker — and
# the saved preference graph must be byte-identical to a pure local run's,
# because distribution decides where shards run, never what they produce.
#
# Also rehearses the workers' graceful drain: the surviving worker gets
# SIGTERM and must exit 0 (satellite b of the dist PR).
#
# Usage: scripts/dist_kill_worker_test.sh <compsynth_cli> <compsynth_worker> <sketch>
set -euo pipefail

cli_bin="$1"
worker_bin="$2"
sketch="$3"

target='if throughput >= 1 && latency <= 50 then throughput - throughput*latency + 1000 else throughput - 5*throughput*latency'

work="$(mktemp -d)"
w1_pid=""
w2_pid=""
cleanup() {
  [ -n "$w1_pid" ] && kill -9 "$w1_pid" 2>/dev/null
  [ -n "$w2_pid" ] && kill -9 "$w2_pid" 2>/dev/null
  rm -rf "$work"
  return 0
}
trap cleanup EXIT

# Forks the worker in this shell (so wait works on it) and leaves its pid in
# started_pid and its resolved endpoint in started_ep.
start_worker() {  # start_worker <logfile> <extra-flags...>
  local log="$1"
  shift
  "$worker_bin" --listen tcp:0 "$@" >"$log" 2>&1 &
  started_pid=$!
  for _ in $(seq 1 100); do
    grep -q "listening on" "$log" 2>/dev/null && break
    sleep 0.1
  done
  grep -q "listening on" "$log" || {
    echo "worker did not come up:" >&2
    cat "$log" >&2
    exit 1
  }
  started_ep="$(sed -n 's/^listening on //p' "$log" | head -1)"
}

run_cli() {  # run_cli <save-file> <extra-flags...>
  local save="$1"
  shift
  "$cli_bin" "$sketch" --backend grid --quiet --seed 9 \
    --target "$target" --save "$save" "$@"
}

echo "== reference run (local, no workers) =="
run_cli "$work/ref.graph" >"$work/ref.log"

echo "== distributed run: two workers, one killed -9 mid-sync =="
# The victim stalls 0.25s before every answer so the sync is reliably still
# in flight when the kill lands; the survivor is healthy.
start_worker "$work/w1.log"
w1_pid="$started_pid"
ep1="$started_ep"
start_worker "$work/w2.log" --fault-stall 1 --fault-stall-s 0.25
w2_pid="$started_pid"
ep2="$started_ep"

run_cli "$work/dist.graph" --workers "$ep1,$ep2" >"$work/dist.log" &
cli_pid=$!
sleep 0.4
kill -9 "$w2_pid"
wait "$w2_pid" 2>/dev/null || true
w2_pid=""

wait "$cli_pid" || {
  echo "distributed run failed after worker kill:" >&2
  cat "$work/dist.log" >&2
  exit 1
}

cmp "$work/ref.graph" "$work/dist.graph" || {
  echo "saved graphs differ between local and distributed runs" >&2
  exit 1
}
echo "saved graphs byte-identical after worker crash"

echo "== graceful drain: SIGTERM the surviving worker =="
kill -TERM "$w1_pid"
if wait "$w1_pid"; then
  w1_pid=""
else
  status=$?
  echo "worker exited $status on SIGTERM (want 0):" >&2
  cat "$work/w1.log" >&2
  exit 1
fi

echo "dist_kill_worker_test: PASS"
