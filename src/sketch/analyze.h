// Static analysis for sketches: interval abstract interpretation + lint.
//
// The abstract domain is a closed interval [lo, hi] over the extended reals
// with two poison flags: `maybe_nan` (some evaluation in the box may return
// NaN) and `maybe_error` (some evaluation may throw sketch::EvalError — the
// concrete interpreter throws on division by zero rather than returning
// inf/NaN). The transfer functions mirror sketch/eval.cpp exactly, including
// its non-IEEE corners (std::min/std::max argument-order NaN behaviour, the
// llround+clamp `choose` selector). Interval corners are evaluated with the
// same double operations the interpreter uses; IEEE rounding is monotone, so
// the computed corners dominate every interior concrete result without any
// outward ulp padding. The
// soundness contract — every concrete evaluation at a point inside the box
// lands in the returned interval (or is flagged) — is property-tested in
// tests/analyze_test.cpp and is what makes the GridFinder pruning and the
// Z3 bound precheck safe (docs/ANALYSIS.md has the full argument).
//
// On top of the interpreter, analyze() runs a lint pass producing the
// structured diagnostics of sketch/diagnostics.h: division hazards, NaN /
// overflow escapes, dead or overlapping `choose` arms, selector grids that
// do not match their alternatives, unused declarations, degenerate hole
// dimensions and constant-foldable subtrees.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "sketch/ast.h"
#include "sketch/diagnostics.h"

namespace compsynth::sketch {

/// The abstract value: a guaranteed enclosure of every non-NaN result a
/// concrete evaluation can produce, plus poison flags for the two ways an
/// evaluation can fail to produce an ordinary number.
struct Interval {
  double lo = 0;
  double hi = 0;
  /// Some evaluation inside the box may return NaN (e.g. inf - inf after an
  /// overflow). NaN results are NOT required to lie in [lo, hi].
  bool maybe_nan = false;
  /// Some evaluation inside the box may throw EvalError (division by zero).
  bool maybe_error = false;

  static Interval point(double v);
  static Interval of(double a, double b);  // unordered endpoints accepted
  static Interval top();                   // [-inf, +inf], both flags set

  /// True when a concrete outcome is accounted for: a NaN needs maybe_nan,
  /// anything else must lie in [lo, hi].
  bool admits(double v) const;
  bool finite() const;  // both endpoints finite
};

// Transfer functions, exposed for unit tests. Each returns a sound
// enclosure of { a_op_b : a in ia, b in ib } under eval.cpp's semantics.
Interval interval_neg(const Interval& a);
Interval interval_add(const Interval& a, const Interval& b);
Interval interval_sub(const Interval& a, const Interval& b);
Interval interval_mul(const Interval& a, const Interval& b);
Interval interval_div(const Interval& a, const Interval& b);
Interval interval_min(const Interval& a, const Interval& b);
Interval interval_max(const Interval& a, const Interval& b);
Interval interval_hull(const Interval& a, const Interval& b);

/// A box: one interval per metric and one per hole, the abstract analogue
/// of (scenario, hole_values) inputs to eval_with_values.
struct Box {
  std::vector<Interval> metrics;
  std::vector<Interval> holes;
};

/// The box covering a sketch's whole input space: metric ranges x full hole
/// grids.
Box full_box(const Sketch& sketch);

/// Interval spanned by a hole grid (or by the index subrange
/// [first, last], inclusive; indices are clamped to the grid).
Interval grid_interval(const HoleSpec& spec);
Interval grid_interval(const HoleSpec& spec, std::int64_t first,
                       std::int64_t last);

/// Evaluates a numeric expression over a box. The expression must be
/// well-typed for the box's arities (use analyze_expr for untrusted input).
Interval eval_interval(const Expr& e, const Box& box);

struct AnalysisResult {
  /// Guaranteed output enclosure over the full box. Meaningful only when
  /// `well_typed`; otherwise Interval::top().
  Interval output = Interval::top();
  /// No error-severity type/arity/reference problems were found; the
  /// interval result and the numeric-hazard lint pass ran.
  bool well_typed = false;
  std::vector<Diagnostic> diagnostics;
};

/// Full analysis of a constructed (hence already type-valid) sketch.
AnalysisResult analyze(const Sketch& sketch);

/// Tolerant analysis of a possibly ill-formed body against declaration
/// lists — the lint entry point for raw parses (parser.h's RawSketch),
/// which reports every problem it can find instead of throwing on the
/// first. Declaration validity (inverted metric ranges, duplicate names)
/// is checked here too, mirroring the Sketch constructor.
AnalysisResult analyze_expr(const Expr& body,
                            std::span<const MetricSpec> metrics,
                            std::span<const HoleSpec> holes);

/// Which metrics / holes the expression reads (kChoice counts as reading
/// its selector hole). Shared by the lint pass and GridFinder's
/// degenerate-dimension pruning.
std::vector<bool> used_metrics(const Expr& e, std::size_t metric_count);
std::vector<bool> used_holes(const Expr& e, std::size_t hole_count);

/// Range of `choose` arm indices reachable for selector values in `sel`,
/// mirroring eval.cpp's llround + clamp semantics. first <= last, both in
/// [0, arm_count). Exposed for eval_interval's tests.
std::pair<std::int64_t, std::int64_t> reachable_arms(const Interval& sel,
                                                     std::size_t arm_count);

}  // namespace compsynth::sketch
