// Wire protocol for distributed version-space sync (docs/DISTRIBUTED.md is
// the field-by-field reference).
//
// Workers speak the same line-delimited flat JSON as the synthesis daemon
// (serve/protocol.h): one request object per line, one response object per
// line, readable with obs::parse_flat_json. Four verbs:
//
//   hello     capability probe: protocol version + schema handshake
//   ping      liveness heartbeat (the coordinator's idle-time health check)
//   shard     compute one fixed-range shard of a full kBatch sync
//   shutdown  drain and stop the worker
//
// A shard request carries everything the computation depends on — sketch DSL
// text, serialized preference graph, tie tolerance, the [lo, hi) candidate
// range — so shards are pure functions of the request and re-dispatching one
// (after a crash, or speculatively against a straggler) is idempotent: any
// valid response for shard k is byte-identical to any other. The response's
// `blob` is the `shard <k> <lo> <hi> <count> <hex>` record of the
// `gridfinder 2` save-state format, guarded by `crc` (util::crc32 over the
// blob bytes) against transport damage; structural damage is caught by
// solver::GridFinder::parse_shard_blob on the coordinator side.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <variant>

#include "serve/protocol.h"

namespace compsynth::dist {

/// Stamped into every request/response as "v"; bump on incompatible changes.
inline constexpr int kWireVersion = 1;

enum class WireVerb { kHello, kPing, kShard, kShutdown };

/// "hello", "ping", "shard", "shutdown" — the wire spelling.
const char* wire_verb_name(WireVerb verb);
std::optional<WireVerb> parse_wire_verb(std::string_view name);

/// One shard-computation request, fully self-contained.
struct ShardRequest {
  /// Coordinator-chosen sync id; echoed back so interleaved responses from
  /// distinct syncs can never be confused.
  std::string job;
  std::size_t shard = 0;
  std::int64_t lo = 0;
  std::int64_t hi = 0;
  /// FinderConfig::tie_tolerance — part of the candidate-survival predicate.
  double tie = 1e-4;
  /// Sketch DSL text (sketch::print_sketch / parse_sketch round-trip).
  std::string sketch;
  /// Preference graph text (pref::serialize / deserialize round-trip).
  std::string graph;
};

struct WireRequest {
  WireVerb verb = WireVerb::kPing;
  ShardRequest shard;  // meaningful only when verb == kShard
};

/// Parses one request line; returns the request or the error response to
/// send back (codes from serve/protocol.h). Unknown keys are ignored.
std::variant<WireRequest, serve::ParseError> parse_wire_request(
    std::string_view line);

/// Renders request lines (no trailing newline); round-trip through
/// parse_wire_request.
std::string render_shard_request(const ShardRequest& req);
std::string render_simple_request(WireVerb verb);

/// One parsed shard response. On ok, `blob` has already passed the CRC
/// check; structural validation (parse_shard_blob) is the caller's next
/// step.
struct ShardResponse {
  bool ok = false;
  std::string code;   // E_* when !ok
  std::string error;  // human message when !ok
  std::string job;
  std::size_t shard = 0;
  std::int64_t lo = 0;
  std::int64_t hi = 0;
  long long count = 0;
  std::string blob;
  double secs = 0;
};

/// Parses and transport-validates one shard response line: flat JSON, all
/// required fields present and well-typed, and crc32(blob) matching the
/// `crc` field. Returns nullopt with `*why` set on any violation — the
/// coordinator treats that as a worker failure.
std::optional<ShardResponse> parse_shard_response(std::string_view line,
                                                  std::string* why);

}  // namespace compsynth::dist
