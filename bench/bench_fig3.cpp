// Figure 3 of the paper: robustness across target functions. Each hole of
// the Fig. 2b target is tuned separately over 5 values (l_thrsh in
// [20, 80], the others in [1, 5]) and every variant must still synthesize a
// correct (ranking-equivalent) objective. The paper plots, per variant, the
// average number of iterations against the average synthesis time per
// iteration.
#include "bench_common.h"
#include "sketch/library.h"
#include "util/table.h"

namespace compsynth::bench {
namespace {

synth::ExperimentSpec variant_spec(double tp, double l, double s1, double s2,
                                   std::uint64_t seed) {
  synth::ExperimentSpec spec{.sketch = sketch::swan_sketch(),
                             .target = sketch::swan_target_with(tp, l, s1, s2)};
  spec.backend = synth::Backend::kZ3;
  spec.repetitions = repetitions(3);  // paper used 9; 3 keeps the suite <20 min
  spec.config.seed = seed;
  return spec;
}

std::string label(const char* hole, double v) {
  return std::string(hole) + "=" + util::format_number(v);
}

// Baseline plus four per-hole sweeps, exactly the paper's tuning ranges.
void BM_Fig3(benchmark::State& state) {
  const auto kind = static_cast<int>(state.range(0));
  const auto step = static_cast<int>(state.range(1));
  const double tuned[] = {1, 2, 3, 4, 5};
  const double tuned_l[] = {20, 35, 50, 65, 80};
  double tp = 1, l = 50, s1 = 1, s2 = 5;
  std::string name = "baseline";
  switch (kind) {
    case 0: break;
    case 1: tp = tuned[step];   name = label("tp_thrsh", tp); break;
    case 2: l = tuned_l[step];  name = label("l_thrsh", l); break;
    case 3: s1 = tuned[step];   name = label("slope1", s1); break;
    case 4: s2 = tuned[step];   name = label("slope2", s2); break;
    default: break;
  }
  run_and_record(state, name,
                 variant_spec(tp, l, s1, s2, 7000 + 100 * kind + step));
}
BENCHMARK(BM_Fig3)
    ->Args({0, 0})
    ->Args({1, 0})->Args({1, 1})->Args({1, 2})->Args({1, 3})->Args({1, 4})
    ->Args({2, 0})->Args({2, 1})->Args({2, 2})->Args({2, 3})->Args({2, 4})
    ->Args({3, 0})->Args({3, 1})->Args({3, 2})->Args({3, 3})->Args({3, 4})
    ->Args({4, 0})->Args({4, 1})->Args({4, 2})->Args({4, 3})->Args({4, 4})
    ->Iterations(1)->UseManualTime()->Unit(benchmark::kSecond);

void print_fig3() {
  print_series(
      "Figure 3: tuned thresholds/slopes (x = avg iterations, y = avg s/iter)",
      {"paper: all 20 variants + baseline synthesize correct objectives;",
       "iteration counts and per-iteration times vary by variant."});
}

}  // namespace
}  // namespace compsynth::bench

COMPSYNTH_BENCH_MAIN(compsynth::bench::print_fig3)
