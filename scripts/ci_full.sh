#!/usr/bin/env bash
# Full local CI sweep, in dependency order:
#   1. configure + build the main tree
#   2. the complete ctest suite (unit, integration, differential, lint
#      gates, docs_check, docs_blocks, session kill/resume end to end)
#   3. the standalone docs checkers (links + code blocks)
#   4. the address+undefined sanitizer build/test sweep
#
# Run it before sending a change; scripts/check_tsan.sh adds the (slower)
# ThreadSanitizer pass that exercises the parallel version-space engine.
#
# Usage:
#   scripts/ci_full.sh                 # everything
#   COMPSYNTH_SKIP_SANITIZERS=1 scripts/ci_full.sh   # fast pass, no asan/ubsan
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
build="${BUILD_DIR:-$repo/build}"

echo "== configure + build ($build) =="
cmake -B "$build" -S "$repo" >/dev/null
cmake --build "$build" -j "$(nproc)"

echo "== test suite =="
ctest --test-dir "$build" -j "$(nproc)" --output-on-failure

echo "== docs: links =="
"$repo/scripts/check_docs_links.sh" "$repo"

echo "== docs: code blocks =="
"$repo/scripts/check_docs_blocks.sh" "$repo" "$build/tools/compsynth_lint"

if [ "${COMPSYNTH_SKIP_SANITIZERS:-0}" != "1" ]; then
  echo "== asan + ubsan sweep =="
  "$repo/scripts/check_asan_ubsan.sh"
else
  echo "== asan + ubsan sweep skipped (COMPSYNTH_SKIP_SANITIZERS=1) =="
fi

echo "ci_full: all green"
