file(REMOVE_RECURSE
  "CMakeFiles/compsynth_sketch.dir/ast.cpp.o"
  "CMakeFiles/compsynth_sketch.dir/ast.cpp.o.d"
  "CMakeFiles/compsynth_sketch.dir/eval.cpp.o"
  "CMakeFiles/compsynth_sketch.dir/eval.cpp.o.d"
  "CMakeFiles/compsynth_sketch.dir/lexer.cpp.o"
  "CMakeFiles/compsynth_sketch.dir/lexer.cpp.o.d"
  "CMakeFiles/compsynth_sketch.dir/library.cpp.o"
  "CMakeFiles/compsynth_sketch.dir/library.cpp.o.d"
  "CMakeFiles/compsynth_sketch.dir/parser.cpp.o"
  "CMakeFiles/compsynth_sketch.dir/parser.cpp.o.d"
  "CMakeFiles/compsynth_sketch.dir/printer.cpp.o"
  "CMakeFiles/compsynth_sketch.dir/printer.cpp.o.d"
  "CMakeFiles/compsynth_sketch.dir/typecheck.cpp.o"
  "CMakeFiles/compsynth_sketch.dir/typecheck.cpp.o.d"
  "libcompsynth_sketch.a"
  "libcompsynth_sketch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compsynth_sketch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
