// Checkpoint management: periodic atomic snapshots + crash recovery.
//
// A CheckpointManager owns a directory of numbered snapshot files
// ("<prefix>-NNNNNN.csnap", NNNNNN = the iteration captured). Writes go
// through the atomic tmp-write-then-rename protocol of snapshot.h, a
// bounded number of recent snapshots is retained, and recover_latest scans
// a directory for the newest snapshot that still decodes — skipping torn or
// corrupt files, which is exactly what a crash mid-write leaves behind.
//
// Fault injection: when a util::FaultInjector with torn_write_p > 0 is
// attached, an injected torn write deliberately bypasses the atomic
// protocol and leaves a truncated file at the final path, so the recovery
// path is testable end to end (tests/fault_test.cpp).
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "session/snapshot.h"
#include "util/fault.h"

namespace compsynth::obs {
struct RunContext;
}

namespace compsynth::session {

struct CheckpointConfig {
  /// Directory the snapshots live in; created (recursively) if missing.
  std::string directory;

  /// Snapshot file name prefix: "<prefix>-NNNNNN.csnap".
  std::string prefix = "session";

  /// Most-recent snapshots kept on disk; older ones are deleted after each
  /// successful write. <= 0 keeps everything.
  int keep = 4;

  /// Optional fault injection (torn_write faults only; see header comment).
  std::shared_ptr<util::FaultInjector> injector;

  /// Optional observability: checkpoint writes emit "checkpoint_write"
  /// trace events and session.* metrics; injected torn writes emit "fault"
  /// events (site=checkpoint). Non-owning; may be null.
  const obs::RunContext* obs = nullptr;
};

class CheckpointManager {
 public:
  /// Creates `config.directory` if needed; throws SnapshotError when the
  /// directory cannot be created or the prefix is empty.
  explicit CheckpointManager(CheckpointConfig config);

  /// Writes `snap` as "<prefix>-NNNNNN.csnap" (NNNNNN = meta.iteration) and
  /// prunes old snapshots per `keep`. Returns the path written. An injected
  /// torn write leaves a truncated file at the final path instead (and still
  /// returns that path) — recovery is expected to skip it.
  std::string write(const Snapshot& snap);

  /// Paths of this manager's snapshot files, oldest first.
  std::vector<std::string> list() const;

  const CheckpointConfig& config() const { return config_; }

  /// Scans `directory` for "*.csnap" files and returns the newest one that
  /// decodes cleanly (nullopt when none does). Torn/corrupt files are
  /// skipped and reported through `corrupt` when given; `path_out` receives
  /// the winning file's path. Any prefix is accepted — recovery does not
  /// need to know the writing manager's configuration.
  static std::optional<Snapshot> recover_latest(
      const std::string& directory, std::string* path_out = nullptr,
      std::vector<std::string>* corrupt = nullptr);

 private:
  CheckpointConfig config_;
};

/// Convenience glue for SynthesisConfig::checkpoint: returns a hook that
/// stamps `meta` (iteration is taken from the state) and writes one snapshot
/// per invocation through `manager`, which must outlive the returned
/// function.
std::function<void(const synth::SessionState&)> checkpoint_hook(
    CheckpointManager& manager, SnapshotMeta meta);

}  // namespace compsynth::session
