#include "oracle/oracle.h"

#include <sstream>
#include <stdexcept>
#include <vector>

#include "obs/run_context.h"

namespace compsynth::oracle {

namespace {

const char* preference_name(Preference p) {
  switch (p) {
    case Preference::kFirst: return "first";
    case Preference::kSecond: return "second";
    case Preference::kTie: return "tie";
  }
  return "?";
}

// Runs `attempt_fn` under the retry policy: OracleTimeout is surfaced as a
// "fault" event + oracle.timeouts, then retried with backoff ("retry" event
// + oracle.retries) until the policy's attempt budget is exhausted, at which
// point the timeout escapes to the synthesis loop.
template <typename F>
auto with_retry(const util::RetryPolicy& policy, const obs::RunContext* obs,
                const char* op, F&& attempt_fn) {
  for (int attempt = 1;; ++attempt) {
    try {
      return attempt_fn();
    } catch (const OracleTimeout&) {
      if (obs::active(obs)) {
        obs->count("oracle.timeouts");
        if (obs->tracing()) {
          obs::TraceEvent e("fault");
          e.str("site", "oracle").str("kind", "timeout").str("op", op)
              .integer("attempt", attempt);
          obs->emit(e);
        }
      }
      if (attempt >= policy.max_attempts) throw;
      const double backoff = policy.backoff_before(attempt + 1);
      if (obs::active(obs)) {
        obs->count("oracle.retries");
        if (obs->tracing()) {
          obs::TraceEvent e("retry");
          e.str("site", "oracle").str("op", op)
              .integer("attempt", attempt + 1)
              .num("backoff_s", backoff);
          obs->emit(e);
        }
      }
      util::sleep_seconds(backoff);
    }
  }
}

}  // namespace

Preference Oracle::compare(const pref::Scenario& a, const pref::Scenario& b) {
  ++comparisons_;
  const Preference answer =
      with_retry(retry_, obs_, "compare", [&] { return do_compare(a, b); });
  if (obs::active(obs_)) {
    obs_->count("oracle.comparisons");
    if (obs_->tracing()) {
      obs::TraceEvent e("oracle_query");
      e.str("kind", "compare")
          .integer("index", comparisons_)
          .str("answer", preference_name(answer));
      obs_->emit(e);
    }
  }
  return answer;
}

RankingResponse Oracle::rank(std::span<const pref::Scenario> scenarios) {
  if (!scenarios.empty()) ++rankings_;
  RankingResponse response =
      with_retry(retry_, obs_, "rank", [&] { return do_rank(scenarios); });
  if (!scenarios.empty() && obs::active(obs_)) {
    obs_->count("oracle.rankings");
    if (obs_->tracing()) {
      obs::TraceEvent e("oracle_query");
      e.str("kind", "rank")
          .integer("index", rankings_)
          .integer("batch", static_cast<long long>(scenarios.size()))
          .integer("preferences",
                   static_cast<long long>(response.preferences.size()))
          .integer("ties", static_cast<long long>(response.ties.size()));
      obs_->emit(e);
    }
  }
  return response;
}

RankingResponse Oracle::do_rank(std::span<const pref::Scenario> scenarios) {
  // Generic ranking via comparisons only. NOTE: noisy users make the
  // comparison relation inconsistent (not a strict weak order), so feeding
  // it to std::sort would be undefined behaviour. A hand-rolled insertion
  // ranking is safe under arbitrary (even contradictory) answers.
  std::vector<std::size_t> order;
  order.reserve(scenarios.size());
  for (std::size_t i = 0; i < scenarios.size(); ++i) {
    std::size_t pos = 0;
    while (pos < order.size() &&
           do_compare(scenarios[i], scenarios[order[pos]]) != Preference::kFirst) {
      ++pos;
    }
    order.insert(order.begin() + static_cast<std::ptrdiff_t>(pos), i);
  }

  // Report the adjacent relations of the chain; transitivity of the
  // synthesized objective makes the chain as informative as all O(n^2)
  // pairs.
  RankingResponse out;
  for (std::size_t k = 0; k + 1 < order.size(); ++k) {
    const std::size_t hi = order[k];
    const std::size_t lo = order[k + 1];
    switch (do_compare(scenarios[hi], scenarios[lo])) {
      case Preference::kFirst:
        out.preferences.push_back({hi, lo});
        break;
      case Preference::kSecond:
        // Inconsistent answers (noise) are recorded as given.
        out.preferences.push_back({lo, hi});
        break;
      case Preference::kTie:
        out.ties.push_back({hi, lo});
        break;
    }
  }
  return out;
}

void Oracle::save_state(std::ostream& out) const {
  out << "oracle " << comparisons_ << ' ' << rankings_ << '\n';
  do_save_state(out);
}

std::string Oracle::save_state() const {
  std::ostringstream os;
  save_state(os);
  return os.str();
}

void Oracle::restore_state(std::istream& in) {
  std::string tag;
  long comparisons = 0, rankings = 0;
  if (!(in >> tag >> comparisons >> rankings) || tag != "oracle") {
    throw std::invalid_argument("Oracle::restore_state: malformed header");
  }
  in.ignore();  // trailing newline before subclass state
  // Subclass restore runs first so a throw leaves the counters untouched.
  do_restore_state(in);
  comparisons_ = comparisons;
  rankings_ = rankings;
}

void Oracle::restore_state(const std::string& state) {
  std::istringstream is(state);
  restore_state(is);
}

void Oracle::do_save_state(std::ostream&) const {}
void Oracle::do_restore_state(std::istream&) {}

}  // namespace compsynth::oracle
