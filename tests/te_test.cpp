// Traffic-engineering substrate tests: topology invariants, k-shortest
// paths, and the allocator family (throughput / Eq 2.1 / max-min / Danna /
// priority layering), including cross-policy invariants.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "sketch/library.h"
#include "te/allocator.h"
#include "te/scenario_gen.h"
#include "te/topology.h"
#include "te/tunnel.h"
#include "util/rng.h"

namespace compsynth::te {
namespace {

// A 4-node diamond: s -> {a (fast), b (slow)} -> t.
//   s-a: 10 Gbps, 1 ms    a-t: 10 Gbps, 1 ms
//   s-b: 10 Gbps, 10 ms   b-t: 10 Gbps, 10 ms
Topology diamond() {
  Topology t;
  const NodeId s = t.add_node("s");
  const NodeId a = t.add_node("a");
  const NodeId b = t.add_node("b");
  const NodeId d = t.add_node("t");
  t.add_duplex_link(s, a, 10, 1);
  t.add_duplex_link(a, d, 10, 1);
  t.add_duplex_link(s, b, 10, 10);
  t.add_duplex_link(b, d, 10, 10);
  return t;
}

// --- Topology ----------------------------------------------------------------

TEST(Topology, AbileneIsStronglyConnected) {
  const Topology t = abilene();
  EXPECT_EQ(t.node_count(), 11u);
  EXPECT_EQ(t.link_count(), 28u);  // 14 duplex trunks
  EXPECT_TRUE(t.strongly_connected());
}

TEST(Topology, RandomWanIsStronglyConnected) {
  util::Rng rng(5);
  for (int i = 0; i < 5; ++i) {
    const Topology t = random_wan(rng, 8, 6);
    EXPECT_TRUE(t.strongly_connected());
    EXPECT_EQ(t.node_count(), 8u);
  }
}

TEST(Topology, RejectsBadLinks) {
  Topology t;
  const NodeId a = t.add_node("a");
  const NodeId b = t.add_node("b");
  EXPECT_THROW(t.add_link(a, a, 1, 1), std::invalid_argument);
  EXPECT_THROW(t.add_link(a, 99, 1, 1), std::invalid_argument);
  EXPECT_THROW(t.add_link(a, b, 0, 1), std::invalid_argument);
  EXPECT_THROW(t.add_link(a, b, 1, -1), std::invalid_argument);
}

// --- Tunnels -------------------------------------------------------------------

TEST(Tunnel, ShortestPathPrefersLowLatency) {
  const Topology t = diamond();
  const Tunnel path = shortest_tunnel(t, 0, 3);
  EXPECT_DOUBLE_EQ(path.latency_ms, 2);  // via a
  EXPECT_EQ(path.links.size(), 2u);
}

TEST(Tunnel, KShortestFindsBothDiamondArms) {
  const Topology t = diamond();
  const std::vector<Tunnel> paths = k_shortest_tunnels(t, 0, 3, 5);
  ASSERT_GE(paths.size(), 2u);
  EXPECT_DOUBLE_EQ(paths[0].latency_ms, 2);
  EXPECT_DOUBLE_EQ(paths[1].latency_ms, 20);
  // Latency must be non-decreasing.
  for (std::size_t i = 1; i < paths.size(); ++i) {
    EXPECT_GE(paths[i].latency_ms, paths[i - 1].latency_ms);
  }
}

TEST(Tunnel, PathsAreLooplessAndDistinct) {
  const Topology t = abilene();
  const std::vector<Tunnel> paths = k_shortest_tunnels(t, 0, 10, 4);
  ASSERT_GE(paths.size(), 2u);
  for (std::size_t i = 0; i < paths.size(); ++i) {
    // Loopless: no node visited twice.
    std::vector<NodeId> nodes{0};
    for (const LinkId l : paths[i].links) nodes.push_back(t.link(l).to);
    auto sorted = nodes;
    std::sort(sorted.begin(), sorted.end());
    EXPECT_EQ(std::adjacent_find(sorted.begin(), sorted.end()), sorted.end())
        << "path " << i << " has a loop";
    for (std::size_t j = i + 1; j < paths.size(); ++j) {
      EXPECT_NE(paths[i].links, paths[j].links);
    }
  }
}

TEST(Tunnel, UnreachableDestinationThrowsInMakeRequest) {
  Topology t;
  t.add_node("a");
  t.add_node("b");
  t.add_node("c");
  t.add_link(0, 1, 1, 1);  // c is isolated
  EXPECT_THROW(make_request(t, Flow{.src = 0, .dst = 2, .demand_gbps = 1}),
               std::invalid_argument);
}

// --- Allocators ------------------------------------------------------------------

std::vector<FlowRequest> diamond_flow(double demand) {
  const Topology t = diamond();
  return {make_request(t, Flow{.src = 0, .dst = 3, .demand_gbps = demand}, 3)};
}

TEST(Allocator, MaxThroughputSaturatesDemandWhenCapacityAllows) {
  const Topology t = diamond();
  const auto reqs = diamond_flow(5);
  const Allocation a = max_throughput(t, reqs);
  ASSERT_TRUE(a.feasible);
  EXPECT_NEAR(a.total_throughput_gbps, 5, 1e-6);
}

TEST(Allocator, MaxThroughputUsesBothArmsWhenDemandExceedsOne) {
  const Topology t = diamond();
  const auto reqs = diamond_flow(15);  // each arm caps at 10
  const Allocation a = max_throughput(t, reqs);
  ASSERT_TRUE(a.feasible);
  EXPECT_NEAR(a.total_throughput_gbps, 15, 1e-6);
}

TEST(Allocator, CapacityLimitsThroughput) {
  const Topology t = diamond();
  const auto reqs = diamond_flow(100);
  const Allocation a = max_throughput(t, reqs);
  ASSERT_TRUE(a.feasible);
  EXPECT_NEAR(a.total_throughput_gbps, 20, 1e-6);  // 2 arms x 10 Gbps
}

TEST(Allocator, Eq21LatencyPenaltySteersTrafficToFastArm) {
  const Topology t = diamond();
  const auto reqs = diamond_flow(15);
  // epsilon = 0: indifferent; throughput 15 using both arms.
  const Allocation loose = swan_allocation(t, reqs, 0.0);
  ASSERT_TRUE(loose.feasible);
  EXPECT_NEAR(loose.total_throughput_gbps, 15, 1e-6);
  // Large epsilon: the slow arm (20 ms) costs more than its unit of
  // throughput is worth (1 - 0.06*20 < 0), so only the fast arm carries.
  const Allocation tight = swan_allocation(t, reqs, 0.06);
  ASSERT_TRUE(tight.feasible);
  EXPECT_NEAR(tight.total_throughput_gbps, 10, 1e-6);
  EXPECT_NEAR(tight.weighted_latency_ms, 2, 1e-6);  // fast arm only: 1+1 ms
  EXPECT_LT(tight.weighted_latency_ms, loose.weighted_latency_ms + 1e-9);
}

TEST(Allocator, Eq21IsMonotoneInEpsilon) {
  const Topology t = abilene();
  util::Rng rng(11);
  const auto reqs = random_workload(t, rng, 8, 1, 6);
  double prev_latency = std::numeric_limits<double>::infinity();
  double prev_throughput = std::numeric_limits<double>::infinity();
  for (const double eps : {0.0, 0.005, 0.01, 0.02, 0.05}) {
    const Allocation a = swan_allocation(t, reqs, eps);
    ASSERT_TRUE(a.feasible);
    // Throughput can only shrink as the latency penalty grows...
    EXPECT_LE(a.total_throughput_gbps, prev_throughput + 1e-6);
    prev_throughput = a.total_throughput_gbps;
    prev_latency = a.weighted_latency_ms;
  }
  (void)prev_latency;
}

TEST(Allocator, MaxMinFairSplitsSharedBottleneckEvenly) {
  // Two flows share one 10 Gbps link; each demands 8 -> 5/5.
  Topology t;
  const NodeId s = t.add_node("s");
  const NodeId d = t.add_node("d");
  t.add_link(s, d, 10, 1);
  std::vector<FlowRequest> reqs{
      make_request(t, Flow{.src = s, .dst = d, .demand_gbps = 8, .name = "f0"}, 1),
      make_request(t, Flow{.src = s, .dst = d, .demand_gbps = 8, .name = "f1"}, 1)};
  const Allocation a = max_min_fair(t, reqs);
  ASSERT_TRUE(a.feasible);
  EXPECT_NEAR(a.flow_rates[0], 5, 1e-6);
  EXPECT_NEAR(a.flow_rates[1], 5, 1e-6);
}

TEST(Allocator, MaxMinGivesLeftoverToUnconstrainedFlow) {
  // Same bottleneck, but f0 only wants 2 -> f0=2, f1=8.
  Topology t;
  t.add_node("s");
  t.add_node("d");
  t.add_link(0, 1, 10, 1);
  std::vector<FlowRequest> reqs{
      make_request(t, Flow{.src = 0, .dst = 1, .demand_gbps = 2}, 1),
      make_request(t, Flow{.src = 0, .dst = 1, .demand_gbps = 20}, 1)};
  const Allocation a = max_min_fair(t, reqs);
  ASSERT_TRUE(a.feasible);
  EXPECT_NEAR(a.flow_rates[0], 2, 1e-6);
  EXPECT_NEAR(a.flow_rates[1], 8, 1e-6);
}

TEST(Allocator, WeightedMaxMinRespectsWeights) {
  Topology t;
  t.add_node("s");
  t.add_node("d");
  t.add_link(0, 1, 9, 1);
  std::vector<FlowRequest> reqs{
      make_request(t, Flow{.src = 0, .dst = 1, .demand_gbps = 20, .weight = 2}, 1),
      make_request(t, Flow{.src = 0, .dst = 1, .demand_gbps = 20, .weight = 1}, 1)};
  const Allocation a = max_min_fair(t, reqs);
  ASSERT_TRUE(a.feasible);
  EXPECT_NEAR(a.flow_rates[0], 6, 1e-6);
  EXPECT_NEAR(a.flow_rates[1], 3, 1e-6);
}

TEST(Allocator, MaxMinMatchesWaterFillingOnThreeFlows) {
  // Bottleneck 12, demands {3, 10, 10} -> water level 4.5: {3, 4.5, 4.5}.
  Topology t;
  t.add_node("s");
  t.add_node("d");
  t.add_link(0, 1, 12, 1);
  std::vector<FlowRequest> reqs{
      make_request(t, Flow{.src = 0, .dst = 1, .demand_gbps = 3}, 1),
      make_request(t, Flow{.src = 0, .dst = 1, .demand_gbps = 10}, 1),
      make_request(t, Flow{.src = 0, .dst = 1, .demand_gbps = 10}, 1)};
  const Allocation a = max_min_fair(t, reqs);
  ASSERT_TRUE(a.feasible);
  EXPECT_NEAR(a.flow_rates[0], 3, 1e-6);
  EXPECT_NEAR(a.flow_rates[1], 4.5, 1e-6);
  EXPECT_NEAR(a.flow_rates[2], 4.5, 1e-6);
}

TEST(Allocator, DannaInterpolatesFairnessAndThroughput) {
  // f0: short path, f1 shares its bottleneck. Max throughput may starve one
  // flow; q=1 forces the full max-min vector.
  const Topology t = abilene();
  util::Rng rng(3);
  const auto reqs = random_workload(t, rng, 10, 2, 8);
  const Allocation fair = max_min_fair(t, reqs);
  const double topt = optimal_throughput(t, reqs);
  ASSERT_TRUE(fair.feasible);

  const Allocation q0 = danna_balanced(t, reqs, 0.0);
  const Allocation q1 = danna_balanced(t, reqs, 1.0);
  ASSERT_TRUE(q0.feasible);
  ASSERT_TRUE(q1.feasible);
  // q=0 is unconstrained -> optimal throughput.
  EXPECT_NEAR(q0.total_throughput_gbps, topt, 1e-5);
  // q=1 keeps every flow at or above its max-min share.
  for (std::size_t f = 0; f < reqs.size(); ++f) {
    EXPECT_GE(q1.flow_rates[f], fair.flow_rates[f] - 1e-5);
  }
  // Throughput shrinks (weakly) as fairness tightens.
  double prev = std::numeric_limits<double>::infinity();
  for (const double q : {0.0, 0.25, 0.5, 0.75, 1.0}) {
    const Allocation a = danna_balanced(t, reqs, q);
    ASSERT_TRUE(a.feasible);
    EXPECT_LE(a.total_throughput_gbps, prev + 1e-5);
    prev = a.total_throughput_gbps;
  }
}

TEST(Allocator, PriorityLayeringServesHighClassFirst) {
  // One 10 Gbps link, high-priority flow demands 8, low demands 8.
  Topology t;
  t.add_node("s");
  t.add_node("d");
  t.add_link(0, 1, 10, 1);
  std::vector<FlowRequest> reqs{
      make_request(t, Flow{.src = 0, .dst = 1, .demand_gbps = 8, .priority = 1}, 1),
      make_request(t, Flow{.src = 0, .dst = 1, .demand_gbps = 8, .priority = 0}, 1)};
  const Allocation a = priority_layered(t, reqs);
  ASSERT_TRUE(a.feasible);
  EXPECT_NEAR(a.flow_rates[0], 8, 1e-5);   // high class gets its full demand
  EXPECT_NEAR(a.flow_rates[1], 2, 1e-4);   // low class gets the residual
}

TEST(Allocator, ValidationRejectsBadRequests) {
  const Topology t = diamond();
  std::vector<FlowRequest> no_tunnels(1);
  no_tunnels[0].flow.demand_gbps = 1;
  EXPECT_THROW(max_throughput(t, no_tunnels), std::invalid_argument);
  auto reqs = diamond_flow(5);
  reqs[0].flow.demand_gbps = -1;
  EXPECT_THROW(max_throughput(t, reqs), std::invalid_argument);
  reqs[0].flow.demand_gbps = 1;
  reqs[0].flow.weight = 0;
  EXPECT_THROW(max_min_fair(t, reqs), std::invalid_argument);
  EXPECT_THROW(swan_allocation(t, diamond_flow(1), -0.1), std::invalid_argument);
  EXPECT_THROW(danna_balanced(t, diamond_flow(1), 1.5), std::invalid_argument);
}

// --- Capacity-respect property over random workloads ---------------------------

class AllocatorProperty : public ::testing::TestWithParam<int> {};

TEST_P(AllocatorProperty, AllPoliciesRespectCapacitiesAndDemands) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 31 + 7);
  const Topology t = random_wan(rng, 6, 4);
  const auto reqs = random_workload(t, rng, 6, 0.5, 4);

  const std::vector<Allocation> allocations{
      max_throughput(t, reqs), swan_allocation(t, reqs, 0.01),
      max_min_fair(t, reqs), danna_balanced(t, reqs, 0.5)};

  for (const Allocation& a : allocations) {
    ASSERT_TRUE(a.feasible);
    // Demands respected.
    for (std::size_t f = 0; f < reqs.size(); ++f) {
      EXPECT_LE(a.flow_rates[f], reqs[f].flow.demand_gbps + 1e-5);
      EXPECT_GE(a.flow_rates[f], -1e-9);
    }
    // Link capacities respected.
    std::vector<double> load(t.link_count(), 0.0);
    for (std::size_t f = 0; f < reqs.size(); ++f) {
      for (std::size_t tun = 0; tun < reqs[f].tunnels.size(); ++tun) {
        for (const LinkId l : reqs[f].tunnels[tun].links) {
          load[l] += a.tunnel_rates[f][tun];
        }
      }
    }
    for (std::size_t l = 0; l < t.link_count(); ++l) {
      EXPECT_LE(load[l], t.link(l).capacity_gbps + 1e-5);
    }
  }

  // Fairness sanity: max-min rate vector is dominated by optimal throughput.
  EXPECT_LE(allocations[2].total_throughput_gbps,
            allocations[0].total_throughput_gbps + 1e-5);
}

INSTANTIATE_TEST_SUITE_P(RandomWorkloads, AllocatorProperty, ::testing::Range(0, 12));

// --- Scenario generation --------------------------------------------------------

TEST(ScenarioGen, EpsilonSweepProducesTradeoffCurve) {
  const Topology t = abilene();
  util::Rng rng(17);
  const auto reqs = random_workload(t, rng, 8, 1, 6);
  const std::vector<double> eps{0, 0.005, 0.01, 0.02, 0.04};
  const auto designs = sweep_epsilon(t, reqs, eps);
  ASSERT_EQ(designs.size(), 5u);
  for (std::size_t i = 1; i < designs.size(); ++i) {
    EXPECT_LE(designs[i].scenario.metrics[0], designs[i - 1].scenario.metrics[0] + 1e-6);
  }
}

TEST(ScenarioGen, PickBestAgreesWithDirectEvaluation) {
  const Topology t = diamond();
  const auto reqs = diamond_flow(15);
  const std::vector<double> eps{0, 0.06};
  const auto designs = sweep_epsilon(t, reqs, eps);
  const auto& sk = sketch::swan_sketch();
  // Target with latency threshold 5 ms: only the eps=0.06 design (4 ms)
  // satisfies (fast arm only, 2 ms), and the +1000 bonus dominates -> it wins.
  const auto objective = sketch::swan_target_with(1, 5, 1, 1);
  EXPECT_EQ(pick_best(sk, objective, designs), 1u);
  // A throughput-only objective prefers the eps=0 design.
  const auto tput_lover = sketch::swan_target_with(0, 200, 0, 0);
  EXPECT_EQ(pick_best(sk, tput_lover, designs), 0u);
}

TEST(ScenarioGen, ScenariosFitSwanMetricRanges) {
  const Topology t = diamond();
  const auto designs =
      sweep_epsilon(t, diamond_flow(8), std::vector<double>{0, 0.01});
  for (const auto& d : designs) {
    EXPECT_TRUE(pref::in_range(d.scenario, sketch::swan_sketch()));
  }
}

}  // namespace
}  // namespace compsynth::te

// --- Waxman topologies and gravity demands ------------------------------------

namespace compsynth::te {
namespace {

TEST(Waxman, IsStronglyConnectedAndGeometric) {
  util::Rng rng(77);
  for (int i = 0; i < 4; ++i) {
    const Topology t = waxman_wan(rng, 12, 0.5, 0.5);
    EXPECT_TRUE(t.strongly_connected());
    EXPECT_EQ(t.node_count(), 12u);
    EXPECT_GE(t.link_count(), 24u);  // at least the ring, duplex
    for (const Link& l : t.links()) {
      EXPECT_GT(l.capacity_gbps, 0);
      EXPECT_GE(l.latency_ms, 0.5);
      EXPECT_LE(l.latency_ms, 60.0 + 1e-9);
    }
  }
}

TEST(Waxman, HigherAlphaMeansDenserGraphs) {
  util::Rng rng1(5), rng2(5);
  const Topology sparse = waxman_wan(rng1, 20, 0.1, 0.3);
  const Topology dense = waxman_wan(rng2, 20, 0.9, 0.9);
  EXPECT_GT(dense.link_count(), sparse.link_count());
}

TEST(Waxman, RejectsBadParameters) {
  util::Rng rng(1);
  EXPECT_THROW(waxman_wan(rng, 1), std::invalid_argument);
  EXPECT_THROW(waxman_wan(rng, 5, 0), std::invalid_argument);
  EXPECT_THROW(waxman_wan(rng, 5, 1.5), std::invalid_argument);
  EXPECT_THROW(waxman_wan(rng, 5, 0.5, -1), std::invalid_argument);
  EXPECT_THROW(waxman_wan(rng, 5, 0.5, 0.5, 10, 2), std::invalid_argument);
}

TEST(Gravity, DemandsSumToTotalAndDescend) {
  const Topology t = abilene();
  util::Rng rng(8);
  const auto demands = gravity_demands(t, rng, 100.0, 1000);  // all pairs
  double total = 0;
  for (std::size_t i = 0; i < demands.size(); ++i) {
    EXPECT_GT(demands[i].demand_gbps, 0);
    EXPECT_NE(demands[i].src, demands[i].dst);
    if (i > 0) {
      EXPECT_LE(demands[i].demand_gbps, demands[i - 1].demand_gbps + 1e-12);
    }
    total += demands[i].demand_gbps;
  }
  EXPECT_EQ(demands.size(), 11u * 10u);  // every ordered pair
  EXPECT_NEAR(total, 100.0, 1e-9);
}

TEST(Gravity, TopPairsTruncates) {
  const Topology t = abilene();
  util::Rng rng(8);
  const auto demands = gravity_demands(t, rng, 100.0, 7);
  EXPECT_EQ(demands.size(), 7u);
}

TEST(Gravity, FeedsTheAllocatorEndToEnd) {
  util::Rng rng(31);
  const Topology t = waxman_wan(rng, 10, 0.6, 0.6);
  const auto demands = gravity_demands(t, rng, 30.0, 8);
  std::vector<FlowRequest> requests;
  for (const Demand& d : demands) {
    requests.push_back(make_request(
        t, Flow{.src = d.src, .dst = d.dst, .demand_gbps = d.demand_gbps}, 3));
  }
  const Allocation a = max_throughput(t, requests);
  ASSERT_TRUE(a.feasible);
  EXPECT_GT(a.total_throughput_gbps, 0);
}

}  // namespace
}  // namespace compsynth::te
