# Empty compiler generated dependencies file for compsynth_sketch.
# This may be replaced when dependencies are built.
