// compsynth_session — durable synthesis sessions: checkpoint, crash,
// resume, inspect (docs/GUIDE.md §Durable sessions walks through all of it).
//
// Usage:
//   compsynth_session run     <sketch-file> --target <expr> --dir <dir> [options]
//   compsynth_session resume  <sketch-file> --target <expr> --dir <dir> [options]
//   compsynth_session inspect <snapshot-file-or-dir>
//
// `run` executes the interaction loop with an oracle simulated from
// --target, writing an atomic snapshot to --dir every --every iterations.
// `resume` recovers the newest valid snapshot from --dir (skipping torn or
// corrupt files) and continues the identical run — same objective, same
// oracle query sequence as an uninterrupted run. `inspect` prints a
// snapshot's manifest and state summary without running anything.
//
// Options (run/resume):
//   --backend z3|grid          candidate finder (default: grid)
//   --portfolio [mode]         race the grid and Z3 finders per query; mode =
//                              race (default) | pin-grid | pin-z3. Overrides
//                              --backend; the mode is recorded in the
//                              snapshot's backend tag, so resume must pass
//                              the same mode.
//   --solver-cache [n]         cache Z3 verdicts across queries (n = max
//                              entries, default 4096); contents persist
//                              through snapshots via the @cache section
//   --no-incremental           rebuild the Z3 encoding per query instead of
//                              extending it via push/pop
//   --dir <dir>                snapshot directory (required)
//   --every <k>                checkpoint every k iterations (default 1)
//   --keep <n>                 snapshots retained on disk (default 4)
//   --pairs/--initial/--max-iters/--seed   as in compsynth_cli
//   --stop-after <n>           exit(42) right after the checkpoint at
//                              iteration n — a simulated crash for tests
//   --trace <file>             JSONL trace (docs/OBSERVABILITY.md)
//   --metrics                  print the metrics registry after the run
//   --quiet                    suppress the transcript
//
// Fault injection (run/resume; all probabilities default 0):
//   --fault-oracle-timeout <p>   oracle query times out (retried w/ backoff)
//   --fault-oracle-slowdown <p>  oracle query stalls briefly
//   --fault-z3-failure <p>       Z3 check fails transiently (retried)
//   --fault-z3-slowdown <p>      Z3 check stalls briefly
//   --fault-torn-write <p>       checkpoint write is torn (tests recovery)
//   --fault-seed <n>             injector decision-stream seed
//   --retry-attempts <n>         retry budget per query (default 8 when any
//                                fault probability is set, else 3)
//   --retry-backoff <s>          initial backoff seconds (default 0: tests
//                                should not sleep)
//
// Exit status: 0 converged, 2 contradictory answers, 3 iteration budget,
// 4 solver gave up, 42 simulated crash (--stop-after), 1 usage/runtime error.
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <memory>
#include <optional>
#include <sstream>
#include <string>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "oracle/ground_truth.h"
#include "oracle/variants.h"
#include "session/checkpoint.h"
#include "session/snapshot.h"
#include "sketch/parser.h"
#include "sketch/printer.h"
#include "solver/z3_finder.h"
#include "synth/synthesizer.h"
#include "util/fault.h"

namespace {

using namespace compsynth;

struct Options {
  std::string command;
  std::string sketch_path;  // or snapshot path for `inspect`
  std::optional<std::string> target_expr;
  std::string backend = "grid";
  bool portfolio = false;
  std::string dir;
  int every = 1;
  int keep = 4;
  int stop_after = 0;
  std::optional<std::string> trace_path;
  bool print_metrics = false;
  bool quiet = false;
  util::FaultPlan faults;
  std::optional<int> retry_attempts;
  double retry_backoff_s = 0;
  synth::SynthesisConfig config;
};

void usage(std::ostream& os) {
  os << "usage: compsynth_session run|resume <sketch-file> --target <expr> "
        "--dir <dir>\n"
        "         [--backend z3|grid] [--portfolio [race|pin-grid|pin-z3]]\n"
        "         [--solver-cache [entries]] [--no-incremental]\n"
        "         [--every k] [--keep n] [--pairs k]\n"
        "         [--initial n] [--max-iters n] [--seed n] [--stop-after n]\n"
        "         [--trace file] [--metrics] [--quiet]\n"
        "         [--fault-oracle-timeout p] [--fault-oracle-slowdown p]\n"
        "         [--fault-z3-failure p] [--fault-z3-slowdown p]\n"
        "         [--fault-torn-write p] [--fault-seed n]\n"
        "         [--retry-attempts n] [--retry-backoff s]\n"
        "       compsynth_session inspect <snapshot-file-or-dir>\n";
}

std::optional<Options> parse_args(int argc, char** argv) {
  if (argc < 2) return std::nullopt;
  Options opt;
  opt.command = argv[1];
  if (opt.command != "run" && opt.command != "resume" &&
      opt.command != "inspect") {
    std::cerr << "unknown command '" << opt.command << "'\n";
    return std::nullopt;
  }
  auto need_value = [&](int& i) -> std::optional<std::string> {
    if (i + 1 >= argc) {
      std::cerr << argv[i] << " requires a value\n";
      return std::nullopt;
    }
    return std::string(argv[++i]);
  };
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value_for = [&](auto setter) -> bool {
      if (auto v = need_value(i)) {
        setter(*v);
        return true;
      }
      return false;
    };
    if (arg == "--help" || arg == "-h") return std::nullopt;
    if (arg == "--quiet") {
      opt.quiet = true;
    } else if (arg == "--metrics") {
      opt.print_metrics = true;
    } else if (arg == "--target") {
      if (!value_for([&](const std::string& v) { opt.target_expr = v; })) return std::nullopt;
    } else if (arg == "--backend") {
      if (!value_for([&](const std::string& v) { opt.backend = v; })) return std::nullopt;
      if (opt.backend != "z3" && opt.backend != "grid") {
        std::cerr << "unknown backend '" << opt.backend << "'\n";
        return std::nullopt;
      }
    } else if (arg == "--portfolio") {
      opt.portfolio = true;
      if (i + 1 < argc) {
        const std::string next = argv[i + 1];
        if (next == "race" || next == "pin-grid" || next == "pin-z3") {
          ++i;
          opt.config.portfolio_mode =
              next == "race"       ? solver::PortfolioMode::kRace
              : next == "pin-grid" ? solver::PortfolioMode::kPinGrid
                                   : solver::PortfolioMode::kPinZ3;
        }
      }
    } else if (arg == "--solver-cache") {
      std::size_t entries = 4096;
      if (i + 1 < argc) {
        const std::string next = argv[i + 1];
        if (!next.empty() &&
            next.find_first_not_of("0123456789") == std::string::npos) {
          ++i;
          entries = static_cast<std::size_t>(std::stoull(next));
        }
      }
      opt.config.solver_cache = std::make_shared<solver::SolverCache>(entries);
    } else if (arg == "--no-incremental") {
      opt.config.finder.incremental = false;
    } else if (arg == "--dir") {
      if (!value_for([&](const std::string& v) { opt.dir = v; })) return std::nullopt;
    } else if (arg == "--every") {
      if (!value_for([&](const std::string& v) { opt.every = std::stoi(v); })) return std::nullopt;
    } else if (arg == "--keep") {
      if (!value_for([&](const std::string& v) { opt.keep = std::stoi(v); })) return std::nullopt;
    } else if (arg == "--stop-after") {
      if (!value_for([&](const std::string& v) { opt.stop_after = std::stoi(v); })) return std::nullopt;
    } else if (arg == "--pairs") {
      if (!value_for([&](const std::string& v) { opt.config.pairs_per_iteration = std::stoi(v); })) return std::nullopt;
    } else if (arg == "--initial") {
      if (!value_for([&](const std::string& v) { opt.config.initial_scenarios = std::stoi(v); })) return std::nullopt;
    } else if (arg == "--max-iters") {
      if (!value_for([&](const std::string& v) { opt.config.max_iterations = std::stoi(v); })) return std::nullopt;
    } else if (arg == "--seed") {
      if (!value_for([&](const std::string& v) { opt.config.seed = std::stoull(v); })) return std::nullopt;
    } else if (arg == "--trace") {
      if (!value_for([&](const std::string& v) { opt.trace_path = v; })) return std::nullopt;
    } else if (arg == "--fault-oracle-timeout") {
      if (!value_for([&](const std::string& v) { opt.faults.oracle_timeout_p = std::stod(v); })) return std::nullopt;
    } else if (arg == "--fault-oracle-slowdown") {
      if (!value_for([&](const std::string& v) { opt.faults.oracle_slowdown_p = std::stod(v); })) return std::nullopt;
    } else if (arg == "--fault-z3-failure") {
      if (!value_for([&](const std::string& v) { opt.faults.z3_failure_p = std::stod(v); })) return std::nullopt;
    } else if (arg == "--fault-z3-slowdown") {
      if (!value_for([&](const std::string& v) { opt.faults.z3_slowdown_p = std::stod(v); })) return std::nullopt;
    } else if (arg == "--fault-torn-write") {
      if (!value_for([&](const std::string& v) { opt.faults.torn_write_p = std::stod(v); })) return std::nullopt;
    } else if (arg == "--fault-seed") {
      if (!value_for([&](const std::string& v) { opt.faults.seed = std::stoull(v); })) return std::nullopt;
    } else if (arg == "--retry-attempts") {
      if (!value_for([&](const std::string& v) { opt.retry_attempts = std::stoi(v); })) return std::nullopt;
    } else if (arg == "--retry-backoff") {
      if (!value_for([&](const std::string& v) { opt.retry_backoff_s = std::stod(v); })) return std::nullopt;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "unknown option '" << arg << "'\n";
      return std::nullopt;
    } else if (opt.sketch_path.empty()) {
      opt.sketch_path = arg;
    } else {
      std::cerr << "unexpected argument '" << arg << "'\n";
      return std::nullopt;
    }
  }
  if (opt.sketch_path.empty()) {
    std::cerr << "missing " << (opt.command == "inspect" ? "snapshot" : "sketch")
              << " path\n";
    return std::nullopt;
  }
  if (opt.command != "inspect") {
    if (opt.dir.empty()) {
      std::cerr << "--dir is required for " << opt.command << "\n";
      return std::nullopt;
    }
    if (!opt.target_expr) {
      std::cerr << "--target is required (compsynth_session simulates the "
                   "user; use compsynth_cli for interactive sessions)\n";
      return std::nullopt;
    }
  }
  return opt;
}

std::string read_file_text(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open '" + path + "'");
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

int inspect(const std::string& path) {
  std::string chosen = path;
  std::vector<std::string> corrupt;
  std::optional<session::Snapshot> snap;
  if (std::filesystem::is_regular_file(path)) {
    snap = session::read_file(path);
  } else {
    snap = session::CheckpointManager::recover_latest(path, &chosen, &corrupt);
    if (!snap) {
      std::cerr << "no valid snapshot under '" << path << "'\n";
      return 1;
    }
  }
  std::cout << "snapshot:    " << chosen << "\n"
            << "format:      v" << snap->meta.version << "\n"
            << "sketch:      " << snap->meta.sketch << "\n"
            << "backend:     " << snap->meta.backend << "\n"
            << "seed:        " << snap->meta.seed << "\n"
            << "run id:      " << snap->meta.run_id << "\n"
            << "iteration:   " << snap->meta.iteration << "\n"
            << "interactions:" << ' ' << snap->state.interactions << "\n"
            << "user answers:" << ' ' << snap->state.oracle_comparisons << "\n"
            << "graph:       " << snap->state.graph.vertex_count()
            << " scenarios, " << snap->state.graph.edges().size()
            << " preferences, " << snap->state.graph.ties().size() << " ties\n"
            << "solver time: " << snap->state.total_solver_seconds << " s\n";
  for (const std::string& bad : corrupt) {
    std::cout << "skipped (torn/corrupt): " << bad << "\n";
  }
  return 0;
}

int finish(const Options& opt, const sketch::Sketch& sk,
           const synth::SynthesisResult& result,
           const obs::MetricsRegistry& metrics) {
  if (!opt.quiet) {
    std::cout << "iterations: " << result.iterations
              << "  user answers: " << result.oracle_comparisons
              << "  solver time: " << result.total_solver_seconds << " s\n";
  }
  if (opt.print_metrics) std::cout << "\n" << metrics.render_markdown();
  switch (result.status) {
    case synth::SynthesisStatus::kConverged:
      std::cout << "converged:\n  "
                << sketch::print_instantiated(sk, *result.objective) << "\n";
      return 0;
    case synth::SynthesisStatus::kIterationLimit:
      std::cout << "iteration budget exhausted\n";
      return 3;
    case synth::SynthesisStatus::kNoCandidate:
      std::cout << "the answers contradict every instance of this sketch\n";
      return 2;
    case synth::SynthesisStatus::kSolverGaveUp:
      std::cout << "solver gave up\n";
      return 4;
  }
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  const std::optional<Options> opt = parse_args(argc, argv);
  if (!opt) {
    usage(std::cerr);
    return 1;
  }

  try {
    if (opt->command == "inspect") return inspect(opt->sketch_path);

    const sketch::Sketch sk = sketch::parse_sketch(read_file_text(opt->sketch_path));

    // Observability: both run and resume share the wiring with compsynth_cli.
    obs::MetricsRegistry metrics;
    std::unique_ptr<obs::FileTraceSink> trace_sink;
    synth::SynthesisConfig config = opt->config;
    if (opt->print_metrics) config.obs.metrics = &metrics;
    if (opt->trace_path) {
      trace_sink = std::make_unique<obs::FileTraceSink>(*opt->trace_path);
      config.obs.tracer = trace_sink.get();
    }
    config.obs.run_id = sk.name();
    config.obs.seed = config.seed;

    // Retry policies: with faults injected the default 3 attempts abort real
    // runs too often at the probabilities the fault suite uses, so the
    // budget widens unless the user pinned it.
    util::RetryPolicy retry;
    retry.max_attempts = opt->retry_attempts.value_or(opt->faults.any() ? 8 : 3);
    retry.initial_backoff_s = opt->retry_backoff_s;
    config.finder.retry = retry;

    // One injector per fault site (forked seeds): each site's decision
    // stream is saved/restored by the component that owns it, so resumed
    // runs replay the identical fault sequence.
    std::shared_ptr<util::FaultInjector> oracle_injector, z3_injector,
        checkpoint_injector;
    if (opt->faults.oracle_timeout_p > 0 || opt->faults.oracle_slowdown_p > 0) {
      util::FaultPlan plan = opt->faults;
      plan.seed = opt->faults.seed;
      oracle_injector = std::make_shared<util::FaultInjector>(plan);
    }
    if (opt->faults.z3_failure_p > 0 || opt->faults.z3_slowdown_p > 0) {
      util::FaultPlan plan = opt->faults;
      plan.seed = opt->faults.seed ^ 0x5a3c0ffeeULL;
      z3_injector = std::make_shared<util::FaultInjector>(plan);
    }
    if (opt->faults.torn_write_p > 0) {
      util::FaultPlan plan = opt->faults;
      plan.seed = opt->faults.seed ^ 0x70a2317eULL;
      checkpoint_injector = std::make_shared<util::FaultInjector>(plan);
    }

    // The user model: ground truth from --target, wrapped behind the fault
    // injector when oracle faults are on. Construction must be identical
    // across run and resume (restore_state expects the same topology).
    std::unique_ptr<oracle::Oracle> user = std::make_unique<oracle::GroundTruthOracle>(
        sk, sketch::parse_expr(*opt->target_expr, sk),
        config.finder.tie_tolerance);
    if (oracle_injector != nullptr) {
      user = std::make_unique<oracle::FlakyOracle>(std::move(user), oracle_injector);
    }
    user->set_retry_policy(retry);

    // Checkpointing: every snapshot write is atomic unless the torn-write
    // injector fires (which is the point of --fault-torn-write).
    session::CheckpointConfig ckpt;
    ckpt.directory = opt->dir;
    ckpt.keep = opt->keep;
    ckpt.injector = checkpoint_injector;
    ckpt.obs = &config.obs;
    session::CheckpointManager manager(ckpt);

    // The backend tag names the finder topology a resume must reconstruct;
    // a portfolio's mode changes that topology's determinism, so it is part
    // of the tag.
    std::string backend_tag = opt->backend;
    if (opt->portfolio) {
      switch (opt->config.portfolio_mode) {
        case solver::PortfolioMode::kRace: backend_tag = "portfolio-race"; break;
        case solver::PortfolioMode::kPinGrid:
          backend_tag = "portfolio-pin-grid";
          break;
        case solver::PortfolioMode::kPinZ3:
          backend_tag = "portfolio-pin-z3";
          break;
      }
    }

    session::SnapshotMeta meta;
    meta.sketch = sk.name();
    meta.backend = backend_tag;
    meta.seed = config.seed;
    meta.run_id = config.obs.run_id;
    const auto write_snapshot = session::checkpoint_hook(manager, meta);
    const int stop_after = opt->stop_after;
    config.checkpoint = [&, write_snapshot](const synth::SessionState& st) {
      write_snapshot(st);
      if (stop_after > 0 && st.iterations >= stop_after) {
        std::cout << "simulated crash after iteration " << st.iterations
                  << " (snapshot is on disk)\n";
        std::cout.flush();
        std::_Exit(42);  // no unwinding — as close to kill -9 as portable code gets
      }
    };
    config.checkpoint_every = opt->every;

    synth::Synthesizer synthesizer =
        opt->portfolio ? synth::make_portfolio_synthesizer(sk, config)
        : opt->backend == "grid" ? synth::make_grid_synthesizer(sk, config)
                                 : synth::make_z3_synthesizer(sk, config);
    if (auto* z3 = dynamic_cast<solver::Z3Finder*>(&synthesizer.finder())) {
      z3->set_fault_injector(z3_injector);
    } else if (auto* pf =
                   dynamic_cast<solver::PortfolioFinder*>(&synthesizer.finder())) {
      pf->z3().set_fault_injector(z3_injector);
    }

    synth::SynthesisResult result;
    if (opt->command == "run") {
      result = synthesizer.run(*user);
    } else {
      std::string chosen;
      std::vector<std::string> corrupt;
      std::optional<session::Snapshot> snap =
          session::CheckpointManager::recover_latest(opt->dir, &chosen, &corrupt);
      if (!snap) {
        std::cerr << "error: no valid snapshot under '" << opt->dir << "'\n";
        return 1;
      }
      for (const std::string& bad : corrupt) {
        if (!opt->quiet) std::cout << "skipped torn/corrupt snapshot " << bad << "\n";
      }
      if (snap->meta.sketch != sk.name() || snap->meta.backend != backend_tag ||
          snap->meta.seed != config.seed) {
        std::cerr << "error: snapshot '" << chosen << "' was written by sketch '"
                  << snap->meta.sketch << "' backend '" << snap->meta.backend
                  << "' seed " << snap->meta.seed
                  << "; refusing to resume with a different configuration\n";
        return 1;
      }
      if (!opt->quiet) {
        std::cout << "resuming from " << chosen << " (iteration "
                  << snap->meta.iteration << ")\n";
      }
      result = synthesizer.resume(*user, std::move(snap->state));
    }
    return finish(*opt, sk, result, metrics);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
