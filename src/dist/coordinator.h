// The coordinator side of distributed version-space sync
// (docs/DISTRIBUTED.md).
//
// ShardCoordinator implements solver::ShardSyncBackend: when a GridFinder
// performs a full kBatch rebuild, sync_shards() receives the machine-
// independent fixed-range shard list and farms it out to the configured
// compsynth_worker endpoints over the dist wire protocol (dist/wire.h),
// then returns the per-shard records in shard order — a sequence the
// finder merges into a survivor set byte-identical to the local scan's.
//
// The robustness model (docs/DISTRIBUTED.md §Failure model):
//
//  - Shards are pure functions of (sketch, graph, tie, range), so every
//    dispatch is idempotent and the first structurally valid response for a
//    shard wins; duplicates from retries or speculation are discarded.
//  - Each worker gets one connection thread with per-request kernel
//    deadlines (shard_deadline_s). A transport failure — refused, timeout,
//    EOF, torn line — or an invalid response (CRC mismatch, torn blob,
//    identity mismatch) is a strike; the shard is re-queued for any worker,
//    and a worker at max_worker_strikes is retired for the sync.
//  - Idle connection threads heartbeat their worker with `ping` so a
//    crashed worker is detected even when no shard is in flight on it.
//  - Stragglers are speculatively re-issued: once completed-shard timings
//    exist, a shard in flight longer than straggler_factor × the median
//    (floored at min_straggler_s) is dispatched a second time in parallel.
//  - A shard that exhausts max_shard_attempts, or the retirement of every
//    worker, aborts the sync: sync_shards returns nullopt and the finder
//    falls back to the local scan. Distribution can change where the work
//    runs, never whether it completes or what it produces.
//
// Observability (schema rev 1.6): "shard_dispatch" / "shard_reissue" /
// "worker_fail" trace events plus a "dist_sync" span; counters
// dist.{shards_dispatched,shards_completed,reissues,worker_failures,
// fallbacks} and the dist.shard.seconds histogram.
#pragma once

#include <atomic>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "obs/run_context.h"
#include "solver/shard_sync.h"
#include "util/fault.h"

namespace compsynth::dist {

struct CoordinatorConfig {
  /// Worker endpoints ("unix:<path>" / "tcp:[host:]<port>"). Empty = the
  /// coordinator declines every sync (pure local fallback).
  std::vector<std::string> workers;
  /// Sketch DSL text shipped with every shard request; must describe the
  /// same sketch the GridFinder using this backend was built over.
  std::string sketch_text;
  /// FinderConfig::tie_tolerance of that finder.
  double tie_tolerance = 1e-4;
  /// Per-request kernel deadline: a worker that neither answers nor fails
  /// within this window counts as failed for the attempt.
  double shard_deadline_s = 30;
  /// Dispatches (primary + retries + speculative) allowed per shard before
  /// the sync aborts into local fallback.
  int max_shard_attempts = 3;
  /// Failures tolerated per worker per sync before it is retired.
  int max_worker_strikes = 2;
  /// Speculative re-issue threshold: in-flight longer than
  /// straggler_factor × median completed-shard time (floored at
  /// min_straggler_s). Before any shard completes the threshold is
  /// shard_deadline_s (no baseline to judge by).
  double straggler_factor = 4.0;
  double min_straggler_s = 0.25;
  /// Idle-connection heartbeat period.
  double heartbeat_interval_s = 0.25;
  /// Connect-time retry (rides out a worker that is still binding).
  util::RetryPolicy connect_retry;
  obs::RunContext obs;
};

class ShardCoordinator final : public solver::ShardSyncBackend {
 public:
  explicit ShardCoordinator(CoordinatorConfig config);

  /// See solver::ShardSyncBackend. Thread-compatible: one sync at a time
  /// per coordinator (the finder calls it from sync(), which is already
  /// single-threaded per finder).
  std::optional<std::vector<std::string>> sync_shards(
      const pref::PreferenceGraph& graph,
      const std::vector<solver::ShardRange>& ranges) override;

 private:
  struct Sync;
  void worker_loop(Sync& sync, std::size_t worker_index,
                   const std::vector<solver::ShardRange>& ranges,
                   const std::string& graph_text);

  CoordinatorConfig config_;
  std::atomic<long> job_counter_{0};
};

}  // namespace compsynth::dist
