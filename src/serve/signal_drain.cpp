#include "serve/signal_drain.h"

#include <csignal>
#include <pthread.h>

#include <utility>

namespace compsynth::serve {

SignalDrain::SignalDrain(std::function<void()> on_signal)
    : on_signal_(std::move(on_signal)) {
  sigset_t set;
  sigemptyset(&set);
  sigaddset(&set, SIGTERM);
  sigaddset(&set, SIGINT);
  sigaddset(&set, SIGUSR1);
  // Block before any other thread exists so every later thread inherits the
  // mask and only the sigwait thread ever consumes these signals.
  pthread_sigmask(SIG_BLOCK, &set, nullptr);
  waiter_ = std::thread([this, set] {
    for (;;) {
      int sig = 0;
      if (sigwait(&set, &sig) != 0) continue;
      if (stopping_.load(std::memory_order_acquire)) return;
      if (sig == SIGTERM || sig == SIGINT) {
        // First termination signal starts the drain; later ones are
        // absorbed so a double Ctrl-C can't kill the process mid-flush.
        if (!signaled_.exchange(true, std::memory_order_acq_rel)) {
          if (on_signal_) on_signal_();
        }
      }
    }
  });
}

SignalDrain::~SignalDrain() {
  stopping_.store(true, std::memory_order_release);
  pthread_kill(waiter_.native_handle(), SIGUSR1);
  if (waiter_.joinable()) waiter_.join();
}

}  // namespace compsynth::serve
