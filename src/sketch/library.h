// Built-in sketches and targets used across examples, tests and benches.
//
// All sketches here are authored in the DSL itself and parsed at first use,
// which keeps a single source of truth and continuously exercises the parser.
#pragma once

#include "sketch/ast.h"

namespace compsynth::sketch {

/// The paper's Fig. 2a SWAN sketch over (throughput, latency) with the
/// paper's ClosedInRange bounds (throughput <= 10 Gbps, latency <= 200 ms).
/// Hole grids: tp_thrsh in {0..10} step 1, l_thrsh in {0..200} step 5,
/// slope1/slope2 in {0..10} step 1. The grids cover every target variant in
/// Fig. 3 (l_thrsh in [20,80], the others in [1,5]).
const Sketch& swan_sketch();

/// The paper's Fig. 2b target: (tp_thrsh, l_thrsh, slope1, slope2) = (1, 50, 1, 5).
HoleAssignment swan_target();

/// A target assignment with the given hole values snapped to the grid —
/// used by the Fig. 3 variant sweep.
HoleAssignment swan_target_with(double tp_thrsh, double l_thrsh, double slope1,
                                double slope2);

/// A generalization with three satisfaction regions (the paper notes the
/// sketch "can be generalized to support multiple regions").
const Sketch& swan_multi_region_sketch();

/// A structural-hole generalization: a `choose` hole selects the very *form*
/// of the latency penalty (throughput-proportional vs additive vs capped),
/// alongside a slope and a bonus threshold. Exercises categorical holes.
const Sketch& swan_form_sketch();

/// Target assignment for swan_form_sketch: `form` in {0, 1, 2} picks the
/// penalty alternative; slope/l_thrsh are snapped to their grids.
HoleAssignment swan_form_target(std::int64_t form, double slope, double l_thrsh);

/// Flow-level SWAN extension over three metrics: aggregate throughput,
/// traffic-weighted latency, and the worst flow's delivered demand fraction
/// (paper §3's "throughput and latency of individual flows" direction).
/// Pairs with te::to_fair_scenario.
const Sketch& swan_fair_sketch();

/// Multi-class extension over (high-class throughput, low-class throughput,
/// latency): learns how the architect trades interactive traffic against
/// background traffic — strict priority and plain fairness are both special
/// cases (paper §2's priority discussion). Pairs with te::to_class_scenario.
const Sketch& swan_priority_sketch();

/// QoE sketch for adaptive-bitrate video (paper §6.2): metrics are average
/// bitrate (Mbps), rebuffering ratio (%), bitrate switches per session and
/// startup delay (s); holes weigh the penalties, with a bonus region for
/// sessions whose rebuffering stays under a tolerable threshold.
const Sketch& abr_qoe_sketch();

/// Home-network policy sketch (paper §6.2): metrics are per-class bandwidth
/// shares (Mbps) for interactive, streaming and bulk traffic; the interactive
/// weight is pinned (an objective is only identified up to monotone scaling,
/// so one weight can be fixed without loss of expressiveness) and a bonus
/// fires when interactive traffic meets a minimum guarantee.
const Sketch& homenet_sketch();

}  // namespace compsynth::sketch
