file(REMOVE_RECURSE
  "libcompsynth_oracle.a"
)
