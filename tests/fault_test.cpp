// Fault tolerance: synthesis under injected oracle timeouts and Z3
// failures must still converge (with the retries visible in metrics and
// trace events), retry exhaustion must surface cleanly, and a torn
// checkpoint write must be survived by recovering the previous snapshot.
#include <gtest/gtest.h>

#include <filesystem>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "obs/run_context.h"
#include "oracle/ground_truth.h"
#include "oracle/variants.h"
#include "session/checkpoint.h"
#include "session/snapshot.h"
#include "sketch/library.h"
#include "solver/equivalence.h"
#include "solver/z3_finder.h"
#include "synth/synthesizer.h"
#include "util/fault.h"

namespace compsynth {
namespace {

/// Collects event types in memory so tests can assert on what was traced.
class RecordingSink final : public obs::TraceSink {
 public:
  void emit(std::string_view, const obs::TraceEvent& event) override {
    std::lock_guard<std::mutex> lock(mu_);
    types_.push_back(event.type());
  }
  long count(const std::string& type) const {
    std::lock_guard<std::mutex> lock(mu_);
    long n = 0;
    for (const auto& t : types_) n += (t == type) ? 1 : 0;
    return n;
  }

 private:
  mutable std::mutex mu_;
  std::vector<std::string> types_;
};

util::RetryPolicy fast_retry(int attempts) {
  util::RetryPolicy policy;
  policy.max_attempts = attempts;
  policy.initial_backoff_s = 0;  // exercise the machinery, not the clock
  return policy;
}

long counter_value(const obs::MetricsRegistry& metrics,
                   const std::string& name) {
  for (const auto& [k, v] : metrics.counters()) {
    if (k == name) return v;
  }
  return 0;
}

TEST(FaultSuite, OracleTimeoutsAreRetriedAndSynthesisConverges) {
  const auto& sk = sketch::swan_sketch();
  const auto target = sketch::swan_target();

  util::FaultPlan plan;
  plan.oracle_timeout_p = 0.2;  // the acceptance-criteria fault rate
  plan.seed = 0xF00D;
  auto injector = std::make_shared<util::FaultInjector>(plan);

  obs::MetricsRegistry metrics;
  RecordingSink sink;
  synth::SynthesisConfig config;
  config.seed = 7;
  config.max_iterations = 300;
  config.obs.metrics = &metrics;
  config.obs.tracer = &sink;
  config.obs.run_id = "fault-oracle";

  oracle::FlakyOracle user(
      std::make_unique<oracle::GroundTruthOracle>(
          sk, target, config.finder.tie_tolerance),
      injector);
  user.set_retry_policy(fast_retry(8));

  synth::Synthesizer s = synth::make_grid_synthesizer(sk, config);
  const synth::SynthesisResult r = s.run(user);
  ASSERT_EQ(r.status, synth::SynthesisStatus::kConverged);
  ASSERT_TRUE(r.objective.has_value());
  EXPECT_TRUE(
      solver::ranking_equivalent(sk, *r.objective, target, config.finder));

  // At p=0.2 over a whole session some timeouts must have fired, every one
  // of them retried, and all of it must be visible to observability.
  EXPECT_GT(user.timeouts_injected(), 0);
  EXPECT_EQ(counter_value(metrics, "oracle.timeouts"),
            user.timeouts_injected());
  EXPECT_EQ(counter_value(metrics, "oracle.retries"),
            user.timeouts_injected());
  EXPECT_EQ(sink.count("fault"), user.timeouts_injected());
  EXPECT_EQ(sink.count("retry"), user.timeouts_injected());
}

TEST(FaultSuite, Z3FailuresAreRetriedAndSynthesisConverges) {
  const auto& sk = sketch::swan_sketch();
  const auto target = sketch::swan_target();

  util::FaultPlan plan;
  plan.z3_failure_p = 0.1;  // the acceptance-criteria fault rate
  plan.seed = 0xBEEF;
  auto injector = std::make_shared<util::FaultInjector>(plan);

  obs::MetricsRegistry metrics;
  RecordingSink sink;
  synth::SynthesisConfig config;
  config.seed = 5;
  config.max_iterations = 60;
  config.finder.retry = fast_retry(8);
  config.obs.metrics = &metrics;
  config.obs.tracer = &sink;
  config.obs.run_id = "fault-z3";

  synth::Synthesizer s = synth::make_z3_synthesizer(sk, config);
  auto* finder = dynamic_cast<solver::Z3Finder*>(&s.finder());
  ASSERT_NE(finder, nullptr);
  finder->set_fault_injector(injector);

  oracle::GroundTruthOracle user(sk, target, config.finder.tie_tolerance);
  const synth::SynthesisResult r = s.run(user);
  ASSERT_EQ(r.status, synth::SynthesisStatus::kConverged);
  ASSERT_TRUE(r.objective.has_value());

  EXPECT_GT(injector->injected(), 0);
  EXPECT_EQ(counter_value(metrics, "z3.failures"), injector->injected());
  EXPECT_EQ(counter_value(metrics, "z3.retries"), injector->injected());
  EXPECT_EQ(sink.count("fault"), injector->injected());
  EXPECT_EQ(sink.count("retry"), injector->injected());
}

TEST(FaultSuite, OracleRetryExhaustionSurfacesTimeout) {
  const auto& sk = sketch::swan_sketch();
  util::FaultPlan plan;
  plan.oracle_timeout_p = 1.0;  // every attempt fails
  auto injector = std::make_shared<util::FaultInjector>(plan);
  oracle::FlakyOracle user(
      std::make_unique<oracle::GroundTruthOracle>(sk, sketch::swan_target()),
      injector);
  user.set_retry_policy(fast_retry(3));
  const pref::Scenario a{{5, 10}};
  const pref::Scenario b{{2, 100}};
  EXPECT_THROW(user.compare(a, b), oracle::OracleTimeout);
  EXPECT_EQ(user.timeouts_injected(), 3);  // one per attempt
}

TEST(FaultSuite, Z3RetryExhaustionDegradesToSolverGaveUp) {
  const auto& sk = sketch::swan_sketch();
  util::FaultPlan plan;
  plan.z3_failure_p = 1.0;  // the solver never answers
  auto injector = std::make_shared<util::FaultInjector>(plan);

  synth::SynthesisConfig config;
  config.seed = 3;
  config.finder.retry = fast_retry(2);
  synth::Synthesizer s = synth::make_z3_synthesizer(sk, config);
  auto* finder = dynamic_cast<solver::Z3Finder*>(&s.finder());
  ASSERT_NE(finder, nullptr);
  finder->set_fault_injector(injector);

  oracle::GroundTruthOracle user(sk, sketch::swan_target(),
                                 config.finder.tie_tolerance);
  const synth::SynthesisResult r = s.run(user);
  EXPECT_EQ(r.status, synth::SynthesisStatus::kSolverGaveUp);
}

TEST(FaultSuite, TornWriteRecoveryFallsBackToPreviousSnapshot) {
  const std::string dir = testing::TempDir() + "compsynth_torn";
  std::filesystem::remove_all(dir);

  session::Snapshot snap;
  snap.meta.sketch = "swan";
  snap.meta.backend = "grid";
  snap.meta.seed = 1;
  snap.state.iterations = 1;
  snap.meta.iteration = 1;
  snap.state.graph.intern(pref::Scenario{{5, 10}});
  snap.state.oracle_state = "oracle 0 0\n";

  obs::MetricsRegistry metrics;
  obs::RunContext obs;
  obs.metrics = &metrics;

  // First write is clean...
  session::CheckpointConfig clean;
  clean.directory = dir;
  clean.obs = &obs;
  session::CheckpointManager clean_manager(clean);
  const std::string good = clean_manager.write(snap);

  // ...the next one is torn mid-write (truncated bytes at the final path).
  util::FaultPlan plan;
  plan.torn_write_p = 1.0;
  session::CheckpointConfig torn = clean;
  torn.injector = std::make_shared<util::FaultInjector>(plan);
  session::CheckpointManager torn_manager(torn);
  snap.meta.iteration = snap.state.iterations = 2;
  const std::string bad = torn_manager.write(snap);

  EXPECT_EQ(counter_value(metrics, "session.torn_writes"), 1);
  EXPECT_EQ(counter_value(metrics, "session.checkpoint_writes"), 2);

  std::string recovered_path;
  std::vector<std::string> corrupt;
  const auto recovered = session::CheckpointManager::recover_latest(
      dir, &recovered_path, &corrupt);
  ASSERT_TRUE(recovered.has_value());
  EXPECT_EQ(recovered->meta.iteration, 1);
  EXPECT_EQ(recovered_path, good);
  ASSERT_EQ(corrupt.size(), 1u);
  EXPECT_EQ(corrupt[0], bad);
}

TEST(FaultSuite, InjectorDecisionStreamSurvivesSaveRestore) {
  util::FaultPlan plan;
  plan.oracle_timeout_p = 0.5;
  util::FaultInjector a(plan);
  for (int i = 0; i < 10; ++i) (void)a.oracle_timeout();

  const std::string saved = a.save_state();
  std::vector<bool> expect;
  for (int i = 0; i < 50; ++i) expect.push_back(a.oracle_timeout());

  util::FaultInjector b(plan);
  b.restore_state(saved);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(b.oracle_timeout(), expect[static_cast<std::size_t>(i)]) << i;
  }
}

}  // namespace
}  // namespace compsynth
