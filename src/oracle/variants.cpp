#include "oracle/variants.h"

#include <istream>
#include <ostream>
#include <stdexcept>
#include <string>

namespace compsynth::oracle {

namespace {

// State fragments are line-oriented; a truncated stream is a hard error.
std::string read_state_line(std::istream& in, const char* who) {
  std::string line;
  if (!std::getline(in, line)) {
    throw std::invalid_argument(std::string(who) + ": truncated state");
  }
  return line;
}

// Reads "<tag> <counter>\n" and returns the counter.
long read_tagged_counter(std::istream& in, const char* tag, const char* who) {
  std::string seen;
  long value = 0;
  if (!(in >> seen >> value) || seen != tag) {
    throw std::invalid_argument(std::string(who) + ": malformed state");
  }
  in.ignore();  // trailing newline
  return value;
}

}  // namespace

NoisyOracle::NoisyOracle(std::unique_ptr<Oracle> inner, double flip_probability,
                         std::uint64_t seed)
    : inner_(std::move(inner)), flip_probability_(flip_probability), rng_(seed) {
  if (inner_ == nullptr) throw std::invalid_argument("NoisyOracle: null inner oracle");
  if (flip_probability_ < 0 || flip_probability_ > 1) {
    throw std::invalid_argument("NoisyOracle: flip probability outside [0,1]");
  }
}

Preference NoisyOracle::do_compare(const pref::Scenario& a, const pref::Scenario& b) {
  const Preference truth = inner_->compare(a, b);
  if (truth == Preference::kTie || !rng_.bernoulli(flip_probability_)) return truth;
  ++flips_;
  return truth == Preference::kFirst ? Preference::kSecond : Preference::kFirst;
}

void NoisyOracle::do_save_state(std::ostream& out) const {
  out << "noisy " << flips_ << '\n' << rng_.save_state() << '\n';
  inner_->save_state(out);
}

void NoisyOracle::do_restore_state(std::istream& in) {
  const long flips = read_tagged_counter(in, "noisy", "NoisyOracle");
  rng_.restore_state(read_state_line(in, "NoisyOracle"));
  inner_->restore_state(in);
  flips_ = flips;
}

IndifferentOracle::IndifferentOracle(std::unique_ptr<Oracle> inner,
                                     double indifference, std::uint64_t seed)
    : inner_(std::move(inner)), indifference_(indifference), rng_(seed) {
  if (inner_ == nullptr) {
    throw std::invalid_argument("IndifferentOracle: null inner oracle");
  }
  if (indifference_ < 0 || indifference_ > 1) {
    throw std::invalid_argument("IndifferentOracle: indifference outside [0,1]");
  }
}

Preference IndifferentOracle::do_compare(const pref::Scenario& a,
                                         const pref::Scenario& b) {
  const Preference truth = inner_->compare(a, b);
  if (truth == Preference::kTie || !rng_.bernoulli(indifference_)) return truth;
  ++abstentions_;
  return Preference::kTie;
}

void IndifferentOracle::do_save_state(std::ostream& out) const {
  out << "indifferent " << abstentions_ << '\n' << rng_.save_state() << '\n';
  inner_->save_state(out);
}

void IndifferentOracle::do_restore_state(std::istream& in) {
  const long abstentions =
      read_tagged_counter(in, "indifferent", "IndifferentOracle");
  rng_.restore_state(read_state_line(in, "IndifferentOracle"));
  inner_->restore_state(in);
  abstentions_ = abstentions;
}

DriftingOracle::DriftingOracle(std::unique_ptr<Oracle> before,
                               std::unique_ptr<Oracle> after, long drift_after)
    : before_(std::move(before)), after_(std::move(after)), drift_after_(drift_after) {
  if (before_ == nullptr || after_ == nullptr) {
    throw std::invalid_argument("DriftingOracle: null inner oracle");
  }
  if (drift_after_ < 0) {
    throw std::invalid_argument("DriftingOracle: negative drift point");
  }
}

Preference DriftingOracle::do_compare(const pref::Scenario& a,
                                      const pref::Scenario& b) {
  Oracle& active = answered_ < drift_after_ ? *before_ : *after_;
  ++answered_;
  return active.compare(a, b);
}

void DriftingOracle::do_save_state(std::ostream& out) const {
  out << "drifting " << answered_ << '\n';
  before_->save_state(out);
  after_->save_state(out);
}

void DriftingOracle::do_restore_state(std::istream& in) {
  const long answered = read_tagged_counter(in, "drifting", "DriftingOracle");
  before_->restore_state(in);
  after_->restore_state(in);
  answered_ = answered;
}

FlakyOracle::FlakyOracle(std::unique_ptr<Oracle> inner,
                         std::shared_ptr<util::FaultInjector> injector)
    : inner_(std::move(inner)), injector_(std::move(injector)) {
  if (inner_ == nullptr) throw std::invalid_argument("FlakyOracle: null inner oracle");
  if (injector_ == nullptr) throw std::invalid_argument("FlakyOracle: null injector");
}

void FlakyOracle::maybe_inject() {
  if (injector_->oracle_slowdown()) {
    util::sleep_seconds(injector_->plan().oracle_slowdown_s);
  }
  if (injector_->oracle_timeout()) {
    ++timeouts_;
    throw OracleTimeout("injected oracle timeout");
  }
}

Preference FlakyOracle::do_compare(const pref::Scenario& a,
                                   const pref::Scenario& b) {
  maybe_inject();
  return inner_->compare(a, b);
}

RankingResponse FlakyOracle::do_rank(std::span<const pref::Scenario> scenarios) {
  maybe_inject();
  return inner_->rank(scenarios);
}

void FlakyOracle::do_save_state(std::ostream& out) const {
  out << "flaky " << timeouts_ << '\n' << injector_->save_state();
  inner_->save_state(out);
}

void FlakyOracle::do_restore_state(std::istream& in) {
  const long timeouts = read_tagged_counter(in, "flaky", "FlakyOracle");
  // The injector serializes as two lines: "faults <n>" plus the RNG state.
  const std::string counters = read_state_line(in, "FlakyOracle");
  const std::string rng = read_state_line(in, "FlakyOracle");
  injector_->restore_state(counters + '\n' + rng + '\n');
  inner_->restore_state(in);
  timeouts_ = timeouts;
}

InteractiveOracle::InteractiveOracle(sketch::Sketch sketch, std::istream& in,
                                     std::ostream& out)
    : sketch_(std::move(sketch)), in_(in), out_(out) {}

Preference InteractiveOracle::do_compare(const pref::Scenario& a,
                                         const pref::Scenario& b) {
  out_ << "\nWhich scenario do you prefer?\n"
       << "  [1] " << pref::to_string(a, sketch_) << '\n'
       << "  [2] " << pref::to_string(b, sketch_) << '\n'
       << "  [=] indistinguishable\n"
       << "> " << std::flush;
  std::string line;
  while (std::getline(in_, line)) {
    if (line == "1") return Preference::kFirst;
    if (line == "2") return Preference::kSecond;
    if (line == "=" || line == "tie") return Preference::kTie;
    out_ << "please answer 1, 2 or =\n> " << std::flush;
  }
  // Input exhausted (EOF): treat as indifference so synthesis can wind down.
  return Preference::kTie;
}

}  // namespace compsynth::oracle
