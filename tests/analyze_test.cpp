// Tests for the sketch static analyzer (sketch/analyze.h): transfer
// functions, reachable-arm computation, usage maps, lint diagnostics, and
// the property-based soundness check that underwrites the GridFinder
// pruning and the Z3 bound precheck — every concrete evaluation at a point
// inside a box must land in the interval computed for that box (or be
// covered by a poison flag).

#include "sketch/analyze.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <random>
#include <vector>

#include "sketch/ast.h"
#include "sketch/eval.h"
#include "sketch/library.h"
#include "sketch/parser.h"

namespace compsynth::sketch {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// --- Interval basics & transfer functions ----------------------------------

TEST(Interval, AdmitsAndFlags) {
  const Interval i = Interval::of(3, -1);  // unordered endpoints accepted
  EXPECT_EQ(i.lo, -1);
  EXPECT_EQ(i.hi, 3);
  EXPECT_TRUE(i.admits(0));
  EXPECT_TRUE(i.admits(-1));
  EXPECT_TRUE(i.admits(3));
  EXPECT_FALSE(i.admits(3.0001));
  EXPECT_FALSE(i.admits(std::nan("")));
  EXPECT_TRUE(Interval::top().admits(std::nan("")));
  EXPECT_TRUE(i.finite());
  EXPECT_FALSE(Interval::top().finite());
}

TEST(Interval, AddCrossInfinityIsNan) {
  // [-inf, 0] + [0, +inf]: no corner is NaN (-inf+0, -inf+inf... wait,
  // -inf + +inf IS a corner here), but the interior pairing check must also
  // catch [-inf, 5] + [1, +inf] where the NaN pair (-inf, +inf) is formed
  // from one endpoint of each operand.
  const Interval a = Interval::of(-kInf, 5);
  const Interval b = Interval::of(1, kInf);
  const Interval s = interval_add(a, b);
  EXPECT_TRUE(s.maybe_nan);
  EXPECT_EQ(s.lo, -kInf);
  EXPECT_EQ(s.hi, kInf);
  // Finite + finite never produces NaN.
  EXPECT_FALSE(interval_add(Interval::of(0, 1), Interval::of(2, 3)).maybe_nan);
}

TEST(Interval, SubMirrorsAdd) {
  const Interval d = interval_sub(Interval::of(0, kInf), Interval::of(0, kInf));
  EXPECT_TRUE(d.maybe_nan);  // inf - inf
  const Interval e = interval_sub(Interval::of(0, 1), Interval::of(0, 1));
  EXPECT_EQ(e.lo, -1);
  EXPECT_EQ(e.hi, 1);
  EXPECT_FALSE(e.maybe_nan);
}

TEST(Interval, MulZeroTimesInfinityIsNan) {
  // 0 is interior to a, +inf is an endpoint of b: 0 * inf = NaN even though
  // no corner product is NaN-free... the corners are (-1*1, -1*inf, 2*1,
  // 2*inf), none NaN, so only the explicit check catches it.
  const Interval p = interval_mul(Interval::of(-1, 2), Interval::of(1, kInf));
  EXPECT_TRUE(p.maybe_nan);
  const Interval q = interval_mul(Interval::of(1, 2), Interval::of(3, 4));
  EXPECT_EQ(q.lo, 3);
  EXPECT_EQ(q.hi, 8);
  EXPECT_FALSE(q.maybe_nan);
}

TEST(Interval, DivByRangeContainingZero) {
  const Interval d = interval_div(Interval::of(1, 2), Interval::of(-1, 1));
  EXPECT_TRUE(d.maybe_error);  // eval.cpp throws on x/0
  EXPECT_EQ(d.lo, -kInf);
  EXPECT_EQ(d.hi, kInf);
  const Interval ok = interval_div(Interval::of(4, 8), Interval::of(2, 4));
  EXPECT_FALSE(ok.maybe_error);
  EXPECT_EQ(ok.lo, 1);
  EXPECT_EQ(ok.hi, 4);
}

TEST(Interval, MinMaxPropagateNanAsymmetrically) {
  // std::min(x, NaN) == x but std::min(NaN, x) == NaN: a NaN in the RIGHT
  // operand can vanish, a NaN in the LEFT operand poisons the result.
  Interval a = Interval::of(0, 1);
  Interval b = Interval::of(5, 6);
  b.maybe_nan = true;
  const Interval m = interval_min(a, b);
  // min(x in [0,1], NaN) == x, so the result stays in [0, 1] but must also
  // cover min over b's numeric part — hi is min(1, 6) = 1 and the NaN case
  // folds back to a's values, all within [0, 1].
  EXPECT_FALSE(m.maybe_nan);
  EXPECT_TRUE(m.admits(0));
  EXPECT_TRUE(m.admits(1));
  a.maybe_nan = true;
  b.maybe_nan = false;
  EXPECT_TRUE(interval_min(a, b).maybe_nan);  // min(NaN, x) == NaN
}

TEST(Interval, HullAndNeg) {
  const Interval h = interval_hull(Interval::of(0, 1), Interval::of(5, 9));
  EXPECT_EQ(h.lo, 0);
  EXPECT_EQ(h.hi, 9);
  const Interval n = interval_neg(Interval::of(-2, 3));
  EXPECT_EQ(n.lo, -3);
  EXPECT_EQ(n.hi, 2);
}

// --- Grids and reachable arms ----------------------------------------------

TEST(GridInterval, FullAndSubrange) {
  const HoleSpec spec{.name = "h", .lo = 10, .step = 2.5, .count = 5};
  const Interval full = grid_interval(spec);
  EXPECT_EQ(full.lo, 10);
  EXPECT_EQ(full.hi, 20);
  const Interval sub = grid_interval(spec, 1, 3);
  EXPECT_EQ(sub.lo, 12.5);
  EXPECT_EQ(sub.hi, 17.5);
  const Interval clamped = grid_interval(spec, -7, 99);
  EXPECT_EQ(clamped.lo, 10);
  EXPECT_EQ(clamped.hi, 20);
}

TEST(ReachableArms, MirrorsLlroundClamp) {
  // Selector interval [0.4, 1.6] rounds to arms 0..2.
  auto [lo, hi] = reachable_arms(Interval::of(0.4, 1.6), 4);
  EXPECT_EQ(lo, 0);
  EXPECT_EQ(hi, 2);
  // Out-of-range selectors clamp.
  std::tie(lo, hi) = reachable_arms(Interval::of(-50, -10), 3);
  EXPECT_EQ(lo, 0);
  EXPECT_EQ(hi, 0);
  std::tie(lo, hi) = reachable_arms(Interval::of(10, 50), 3);
  EXPECT_EQ(lo, 2);
  EXPECT_EQ(hi, 2);
  // A NaN selector may pick any arm.
  Interval sel = Interval::point(1);
  sel.maybe_nan = true;
  std::tie(lo, hi) = reachable_arms(sel, 3);
  EXPECT_EQ(lo, 0);
  EXPECT_EQ(hi, 2);
}

// --- Usage maps ------------------------------------------------------------

TEST(Usage, ChoiceCountsSelectorAndReferencedLeaves) {
  const Sketch& s = swan_form_sketch();
  const auto metrics = used_metrics(*s.body(), s.metrics().size());
  const auto holes = used_holes(*s.body(), s.holes().size());
  for (bool u : metrics) EXPECT_TRUE(u);
  for (bool u : holes) EXPECT_TRUE(u);

  // An expression reading only metric 1 and hole 0 (as a choice selector).
  const ExprPtr e = choice(0, {constant(1), constant(2), metric(1)});
  const auto m2 = used_metrics(*e, 3);
  EXPECT_EQ(m2, (std::vector<bool>{false, true, false}));
  const auto h2 = used_holes(*e, 2);
  EXPECT_EQ(h2, (std::vector<bool>{true, false}));
}

// --- Whole-sketch analysis -------------------------------------------------

TEST(Analyze, LibrarySketchesAreCleanAndBounded) {
  for (const Sketch* s :
       {&swan_sketch(), &swan_form_sketch(), &abr_qoe_sketch(),
        &homenet_sketch()}) {
    const AnalysisResult r = analyze(*s);
    EXPECT_TRUE(r.well_typed) << s->name();
    EXPECT_FALSE(has_errors(r.diagnostics)) << s->name();
    EXPECT_FALSE(r.output.maybe_nan) << s->name();
    EXPECT_FALSE(r.output.maybe_error) << s->name();
    EXPECT_TRUE(r.output.finite()) << s->name();
  }
}

TEST(Analyze, SwanOutputIntervalAdmitsSampledEvals) {
  const Sketch& s = swan_sketch();
  const AnalysisResult r = analyze(s);
  std::mt19937 rng(7);
  std::vector<double> metrics(s.metrics().size());
  std::vector<double> holes(s.holes().size());
  for (int trial = 0; trial < 200; ++trial) {
    for (std::size_t m = 0; m < metrics.size(); ++m) {
      std::uniform_real_distribution<double> d(s.metrics()[m].lo,
                                               s.metrics()[m].hi);
      metrics[m] = d(rng);
    }
    for (std::size_t h = 0; h < holes.size(); ++h) {
      std::uniform_int_distribution<std::int64_t> d(0, s.holes()[h].count - 1);
      holes[h] = s.holes()[h].value_at(d(rng));
    }
    const double v = eval_with_values(s, holes, metrics);
    EXPECT_TRUE(r.output.admits(v)) << v;
  }
}

// --- Lint diagnostics ------------------------------------------------------

AnalysisResult lint(std::string_view source) {
  const RawSketch raw = parse_sketch_raw(source);
  return analyze_expr(*raw.body, raw.metrics, raw.holes);
}

bool emits(const AnalysisResult& r, DiagCode code) {
  for (const Diagnostic& d : r.diagnostics) {
    if (d.code == code) return true;
  }
  return false;
}

TEST(Lint, DivisionHazards) {
  const auto r = lint("sketch s(x in [1, 2]) { x / 0 }");
  EXPECT_TRUE(emits(r, DiagCode::kDivisionByZero));
  EXPECT_TRUE(has_errors(r.diagnostics));
  const auto w = lint("sketch s(x in [1, 2], y in [-1, 1]) { x / y }");
  EXPECT_TRUE(emits(w, DiagCode::kDivisionByZero));
  EXPECT_FALSE(has_errors(w.diagnostics));  // range hazard is a warning
}

TEST(Lint, ChooseShapeProblems) {
  const auto dead = lint(
      "sketch s(x in [0, 1]) { hole f in grid(0, 1, 2);"
      " choose f { x, 2*x, 3*x } }");
  EXPECT_TRUE(emits(dead, DiagCode::kDeadChooseArm));

  const auto gap = lint(
      "sketch s(x in [0, 1]) { hole f in grid(0, 1, 4);"
      " choose f { x, 2*x } }");
  EXPECT_TRUE(emits(gap, DiagCode::kSelectorGap));

  const auto noncanon = lint(
      "sketch s(x in [0, 1]) { hole f in grid(1, 2, 2);"
      " choose f { x, 2*x } }");
  EXPECT_TRUE(emits(noncanon, DiagCode::kNonCanonicalSelector));

  const auto overlap = lint(
      "sketch s(x in [0, 1]) { hole f in grid(0, 1, 2);"
      " choose f { x + 1, x + 1 } }");
  EXPECT_TRUE(emits(overlap, DiagCode::kOverlappingArms));
}

TEST(Lint, UsageProblems) {
  const auto unused_h = lint(
      "sketch s(x in [0, 1]) { hole a in grid(0, 1, 5);"
      " hole b in grid(0, 1, 5); x + a }");
  EXPECT_TRUE(emits(unused_h, DiagCode::kUnusedHole));

  const auto unused_m = lint("sketch s(x in [0, 1], y in [0, 1]) { x }");
  EXPECT_TRUE(emits(unused_m, DiagCode::kUnusedMetric));

  const auto degen = lint(
      "sketch s(x in [0, 1]) { hole a in grid(3, 1, 1); x + a }");
  EXPECT_TRUE(emits(degen, DiagCode::kDegenerateGrid));
}

TEST(Lint, DeclarationProblems) {
  const auto inverted = lint("sketch s(x in [5, 2]) { x }");
  EXPECT_TRUE(emits(inverted, DiagCode::kTypeError));
  EXPECT_FALSE(inverted.well_typed);

  const auto dup = lint("sketch s(x in [0, 1], x in [0, 2]) { x }");
  EXPECT_TRUE(emits(dup, DiagCode::kTypeError));

  // A nonpositive grid step is rejected by the parser before lint runs;
  // programmatically-built declaration lists still reach the A002 check.
  const std::vector<MetricSpec> ms = {{.name = "x", .lo = 0, .hi = 1}};
  const std::vector<HoleSpec> hs = {
      {.name = "a", .lo = 0, .step = 0, .count = 3}};
  const ExprPtr body = add(metric(0), hole(0));
  const auto badstep = analyze_expr(*body, ms, hs);
  EXPECT_TRUE(emits(badstep, DiagCode::kTypeError));
}

TEST(Lint, ConstFoldableNote) {
  const auto r = lint("sketch s(x in [0, 1]) { x + (2*3 + 1) }");
  EXPECT_TRUE(emits(r, DiagCode::kConstantFoldable));
  EXPECT_FALSE(has_errors(r.diagnostics));
}

TEST(Lint, DiagnosticsCarryPositionsAndRender) {
  const auto r = lint("sketch s(x in [1, 2]) {\n  x / 0\n}");
  ASSERT_FALSE(r.diagnostics.empty());
  const Diagnostic& d = r.diagnostics.front();
  EXPECT_EQ(d.code, DiagCode::kDivisionByZero);
  EXPECT_EQ(d.line, 2u);
  EXPECT_GT(d.column, 0u);
  const std::string text = render(d, "s.sketch");
  EXPECT_NE(text.find("s.sketch:2:"), std::string::npos);
  EXPECT_NE(text.find("A101"), std::string::npos);
}

// --- Property-based soundness ----------------------------------------------
//
// Random well-typed numeric expressions over random boxes: every concrete
// evaluation at a point inside the box must be admitted by eval_interval's
// result, and an EvalError may only occur when maybe_error is set. 120
// expressions x 100 points = 12000 concrete checks.

class RandomExpr {
 public:
  RandomExpr(std::mt19937& rng, std::size_t metric_count,
             std::span<const HoleSpec> holes)
      : rng_(rng), metric_count_(metric_count), holes_(holes) {}

  bool has_div = false;

  ExprPtr numeric(int depth) {
    std::uniform_int_distribution<int> pick(0, depth <= 0 ? 2 : 9);
    switch (pick(rng_)) {
      case 0:
        return constant(random_constant());
      case 1:
        return metric(random_index(metric_count_));
      case 2:
        return hole(random_index(holes_.size()));
      case 3:
        return neg(numeric(depth - 1));
      case 4:
      case 5:
      case 6: {
        std::uniform_int_distribution<int> op(0, 5);
        const auto b = static_cast<BinOp>(op(rng_));
        if (b == BinOp::kDiv) has_div = true;
        return binary(b, numeric(depth - 1), numeric(depth - 1));
      }
      case 7:
      case 8:
        return ite(boolean(depth - 1), numeric(depth - 1), numeric(depth - 1));
      default:
        // Hole 0 is always the canonical 3-way selector grid(0, 1, 3).
        return choice(0, {numeric(depth - 1), numeric(depth - 1),
                          numeric(depth - 1)});
    }
  }

 private:
  ExprPtr boolean(int depth) {
    std::uniform_int_distribution<int> pick(0, depth <= 0 ? 0 : 3);
    switch (pick(rng_)) {
      case 0:
      case 1: {
        std::uniform_int_distribution<int> op(0, 5);
        return compare(static_cast<CmpOp>(op(rng_)), numeric(depth - 1),
                       numeric(depth - 1));
      }
      case 2: {
        std::uniform_int_distribution<int> op(0, 1);
        return bool_binary(static_cast<BoolOp>(op(rng_)), boolean(depth - 1),
                           boolean(depth - 1));
      }
      default:
        return logical_not(boolean(depth - 1));
    }
  }

  double random_constant() {
    // Mix of ordinary values, zero (division bait) and huge magnitudes
    // (overflow bait).
    static constexpr double kPool[] = {0,    1,     -1,    0.5,  -3,
                                       10,   -42,   1e-3,  1e3,  1e155,
                                       -1e155, 7.25, 100,  -0.1, 2};
    std::uniform_int_distribution<std::size_t> d(0, std::size(kPool) - 1);
    return kPool[d(rng_)];
  }

  std::size_t random_index(std::size_t count) {
    std::uniform_int_distribution<std::size_t> d(0, count - 1);
    return d(rng_);
  }

  std::mt19937& rng_;
  std::size_t metric_count_;
  std::span<const HoleSpec> holes_;
};

TEST(Soundness, RandomExpressionsOverRandomBoxes) {
  std::mt19937 rng(20260806);
  const std::vector<HoleSpec> holes = {
      {.name = "sel", .lo = 0, .step = 1, .count = 3},
      {.name = "a", .lo = -5, .step = 0.5, .count = 21},
      {.name = "b", .lo = 0, .step = 100, .count = 11},
  };
  constexpr std::size_t kMetrics = 3;
  constexpr int kExprs = 120;
  constexpr int kPoints = 100;
  long checked = 0;

  for (int t = 0; t < kExprs; ++t) {
    RandomExpr gen(rng, kMetrics, holes);
    const ExprPtr e = gen.numeric(5);

    // A random box: sub-ranges of plausible metric spans plus the full hole
    // grids (what the pruner evaluates) on even trials, random hole
    // sub-ranges on odd trials.
    Box box;
    for (std::size_t m = 0; m < kMetrics; ++m) {
      std::uniform_real_distribution<double> d(-1e3, 1e3);
      box.metrics.push_back(Interval::of(d(rng), d(rng)));
    }
    for (const HoleSpec& h : holes) {
      if (t % 2 == 0) {
        box.holes.push_back(grid_interval(h));
      } else {
        std::uniform_int_distribution<std::int64_t> d(0, h.count - 1);
        box.holes.push_back(grid_interval(h, d(rng), d(rng)));
      }
    }

    const Interval iv = eval_interval(*e, box);
    if (!gen.has_div) {
      EXPECT_FALSE(iv.maybe_error);  // division is the only EvalError source
    }

    std::vector<double> metrics(kMetrics);
    std::vector<double> hole_values(holes.size());
    for (int p = 0; p < kPoints; ++p) {
      for (std::size_t m = 0; m < kMetrics; ++m) {
        std::uniform_real_distribution<double> d(box.metrics[m].lo,
                                                 box.metrics[m].hi);
        metrics[m] = d(rng);
      }
      for (std::size_t h = 0; h < holes.size(); ++h) {
        std::uniform_real_distribution<double> d(box.holes[h].lo,
                                                 box.holes[h].hi);
        hole_values[h] = d(rng);
      }
      ++checked;
      try {
        const double v = eval_numeric(*e, metrics, hole_values);
        EXPECT_TRUE(iv.admits(v))
            << "escape: value " << v << " not in [" << iv.lo << ", " << iv.hi
            << "] nan=" << iv.maybe_nan << " expr trial " << t;
        if (HasFailure()) return;
      } catch (const EvalError&) {
        EXPECT_TRUE(iv.maybe_error) << "unflagged EvalError, trial " << t;
        if (HasFailure()) return;
      }
    }
  }
  EXPECT_GE(checked, 10000);
}

}  // namespace
}  // namespace compsynth::sketch
