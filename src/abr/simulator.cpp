#include "abr/simulator.h"

#include <algorithm>
#include <stdexcept>

#include "sketch/library.h"

namespace compsynth::abr {

SessionMetrics simulate(const Video& video, const Trace& trace,
                        AbrAlgorithm& algorithm, SimulatorConfig config) {
  if (video.ladder_mbps.empty() || video.chunk_count == 0) {
    throw std::invalid_argument("simulate: empty video");
  }
  if (!std::is_sorted(video.ladder_mbps.begin(), video.ladder_mbps.end())) {
    throw std::invalid_argument("simulate: bitrate ladder must ascend");
  }
  if (config.startup_buffer_seconds < video.chunk_seconds) {
    config.startup_buffer_seconds = video.chunk_seconds;  // need >= 1 chunk
  }

  SessionMetrics m;
  AbrObservation obs;
  obs.chunks_total = video.chunk_count;

  double clock = 0;            // wall time
  double buffer = 0;           // seconds of video buffered
  bool playing = false;
  double bitrate_sum = 0;

  for (std::size_t chunk = 0; chunk < video.chunk_count; ++chunk) {
    obs.buffer_seconds = buffer;
    obs.next_chunk = chunk;
    std::size_t rung = algorithm.choose(obs, video);
    rung = std::min(rung, video.ladder_mbps.size() - 1);

    if (chunk > 0 && rung != obs.last_rung) m.switch_count += 1;
    obs.last_rung = rung;
    m.rung_choices.push_back(rung);
    bitrate_sum += video.ladder_mbps[rung];

    const double megabits = video.ladder_mbps[rung] * video.chunk_seconds;
    const double dl = trace.download_seconds(megabits, clock);
    clock += dl;

    if (playing) {
      if (dl > buffer) {
        // Buffer ran dry mid-download: playback stalled.
        m.total_stall_seconds += dl - buffer;
        buffer = 0;
      } else {
        buffer -= dl;
      }
    }
    buffer += video.chunk_seconds;
    obs.throughput_history_mbps.push_back(dl > 0 ? megabits / dl : megabits);

    if (!playing && buffer >= config.startup_buffer_seconds) {
      playing = true;
      m.startup_seconds = clock;
    }

    // Buffer-full backpressure: wait (while playback drains) before fetching
    // the next chunk.
    if (playing && buffer > config.max_buffer_seconds) {
      const double wait = buffer - config.max_buffer_seconds;
      clock += wait;
      buffer -= wait;
    }
  }
  if (!playing) m.startup_seconds = clock;  // tiny videos: start at the end

  m.average_bitrate_mbps = bitrate_sum / static_cast<double>(video.chunk_count);
  const double play_seconds =
      static_cast<double>(video.chunk_count) * video.chunk_seconds;
  m.rebuffer_ratio_percent =
      100.0 * m.total_stall_seconds / (play_seconds + m.total_stall_seconds);
  return m;
}

pref::Scenario to_scenario(const SessionMetrics& m) {
  const sketch::Sketch& sk = sketch::abr_qoe_sketch();
  pref::Scenario s;
  s.metrics = {m.average_bitrate_mbps, m.rebuffer_ratio_percent, m.switch_count,
               m.startup_seconds};
  for (std::size_t i = 0; i < s.metrics.size(); ++i) {
    s.metrics[i] = std::clamp(s.metrics[i], sk.metrics()[i].lo, sk.metrics()[i].hi);
  }
  return s;
}

}  // namespace compsynth::abr
