#include "sketch/lexer.h"

#include <cctype>
#include <charconv>

namespace compsynth::sketch {

std::string_view token_kind_name(TokenKind kind) {
  switch (kind) {
    case TokenKind::kIdent: return "identifier";
    case TokenKind::kNumber: return "number";
    case TokenKind::kLParen: return "'('";
    case TokenKind::kRParen: return "')'";
    case TokenKind::kLBrace: return "'{'";
    case TokenKind::kRBrace: return "'}'";
    case TokenKind::kLBracket: return "'['";
    case TokenKind::kRBracket: return "']'";
    case TokenKind::kComma: return "','";
    case TokenKind::kSemicolon: return "';'";
    case TokenKind::kPlus: return "'+'";
    case TokenKind::kMinus: return "'-'";
    case TokenKind::kStar: return "'*'";
    case TokenKind::kSlash: return "'/'";
    case TokenKind::kLt: return "'<'";
    case TokenKind::kLe: return "'<='";
    case TokenKind::kGt: return "'>'";
    case TokenKind::kGe: return "'>='";
    case TokenKind::kEqEq: return "'=='";
    case TokenKind::kNe: return "'!='";
    case TokenKind::kAndAnd: return "'&&'";
    case TokenKind::kOrOr: return "'||'";
    case TokenKind::kBang: return "'!'";
    case TokenKind::kEnd: return "end of input";
  }
  return "?";
}

ParseError::ParseError(std::size_t line, std::size_t column, const std::string& what)
    : std::runtime_error(std::to_string(line) + ":" + std::to_string(column) +
                         ": " + what),
      line_(line),
      column_(column) {}

namespace {

class Lexer {
 public:
  explicit Lexer(std::string_view source) : src_(source) {}

  std::vector<Token> run() {
    std::vector<Token> out;
    for (;;) {
      skip_whitespace_and_comments();
      Token t = next_token();
      const bool done = t.kind == TokenKind::kEnd;
      out.push_back(std::move(t));
      if (done) return out;
    }
  }

 private:
  bool at_end() const { return pos_ >= src_.size(); }
  char peek() const { return src_[pos_]; }

  char advance() {
    const char c = src_[pos_++];
    if (c == '\n') {
      ++line_;
      column_ = 1;
    } else {
      ++column_;
    }
    return c;
  }

  bool match(char expected) {
    if (at_end() || peek() != expected) return false;
    advance();
    return true;
  }

  void skip_whitespace_and_comments() {
    while (!at_end()) {
      const char c = peek();
      if (c == '#') {
        while (!at_end() && peek() != '\n') advance();
      } else if (std::isspace(static_cast<unsigned char>(c))) {
        advance();
      } else {
        return;
      }
    }
  }

  Token make(TokenKind kind, std::size_t line, std::size_t column) {
    Token t;
    t.kind = kind;
    t.line = line;
    t.column = column;
    return t;
  }

  Token next_token() {
    const std::size_t line = line_;
    const std::size_t column = column_;
    if (at_end()) return make(TokenKind::kEnd, line, column);

    const char c = advance();
    switch (c) {
      case '(': return make(TokenKind::kLParen, line, column);
      case ')': return make(TokenKind::kRParen, line, column);
      case '{': return make(TokenKind::kLBrace, line, column);
      case '}': return make(TokenKind::kRBrace, line, column);
      case '[': return make(TokenKind::kLBracket, line, column);
      case ']': return make(TokenKind::kRBracket, line, column);
      case ',': return make(TokenKind::kComma, line, column);
      case ';': return make(TokenKind::kSemicolon, line, column);
      case '+': return make(TokenKind::kPlus, line, column);
      case '-': return make(TokenKind::kMinus, line, column);
      case '*': return make(TokenKind::kStar, line, column);
      case '/': return make(TokenKind::kSlash, line, column);
      case '<': return make(match('=') ? TokenKind::kLe : TokenKind::kLt, line, column);
      case '>': return make(match('=') ? TokenKind::kGe : TokenKind::kGt, line, column);
      case '=':
        if (match('=')) return make(TokenKind::kEqEq, line, column);
        throw ParseError(line, column, "expected '==' (assignment is not part of the DSL)");
      case '!':
        return make(match('=') ? TokenKind::kNe : TokenKind::kBang, line, column);
      case '&':
        if (match('&')) return make(TokenKind::kAndAnd, line, column);
        throw ParseError(line, column, "expected '&&'");
      case '|':
        if (match('|')) return make(TokenKind::kOrOr, line, column);
        throw ParseError(line, column, "expected '||'");
      default:
        break;
    }

    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && !at_end() && std::isdigit(static_cast<unsigned char>(peek())))) {
      return lex_number(c, line, column);
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      return lex_ident(c, line, column);
    }
    throw ParseError(line, column, std::string("unexpected character '") + c + "'");
  }

  Token lex_number(char first, std::size_t line, std::size_t column) {
    std::string text(1, first);
    auto take_digits = [&] {
      while (!at_end() && std::isdigit(static_cast<unsigned char>(peek()))) {
        text += advance();
      }
    };
    take_digits();
    if (!at_end() && peek() == '.') {
      text += advance();
      take_digits();
    }
    if (!at_end() && (peek() == 'e' || peek() == 'E')) {
      text += advance();
      if (!at_end() && (peek() == '+' || peek() == '-')) text += advance();
      if (at_end() || !std::isdigit(static_cast<unsigned char>(peek()))) {
        throw ParseError(line, column, "malformed exponent in number '" + text + "'");
      }
      take_digits();
    }
    double value = 0;
    const auto [ptr, ec] =
        std::from_chars(text.data(), text.data() + text.size(), value);
    if (ec != std::errc{} || ptr != text.data() + text.size()) {
      throw ParseError(line, column, "malformed number '" + text + "'");
    }
    Token t = make(TokenKind::kNumber, line, column);
    t.text = std::move(text);
    t.number = value;
    return t;
  }

  Token lex_ident(char first, std::size_t line, std::size_t column) {
    std::string text(1, first);
    while (!at_end() &&
           (std::isalnum(static_cast<unsigned char>(peek())) || peek() == '_')) {
      text += advance();
    }
    Token t = make(TokenKind::kIdent, line, column);
    t.text = std::move(text);
    return t;
  }

  std::string_view src_;
  std::size_t pos_ = 0;
  std::size_t line_ = 1;
  std::size_t column_ = 1;
};

}  // namespace

std::vector<Token> tokenize(std::string_view source) { return Lexer(source).run(); }

}  // namespace compsynth::sketch
