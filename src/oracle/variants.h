// Imperfect and interactive user models (paper §6.1: "Robustness to user
// inputs" — architects can provide inconsistent or vague preferences).
#pragma once

#include <iosfwd>
#include <memory>
#include <utility>

#include "oracle/oracle.h"
#include "sketch/ast.h"
#include "util/rng.h"

namespace compsynth::oracle {

/// Wraps another oracle and flips each *strict* answer with probability
/// `flip_probability` (ties pass through). Models a user who occasionally
/// misjudges close calls; drives the noise-robustness ablation.
class NoisyOracle final : public Oracle {
 public:
  NoisyOracle(std::unique_ptr<Oracle> inner, double flip_probability,
              std::uint64_t seed);

  long flips() const { return flips_; }

 protected:
  Preference do_compare(const pref::Scenario& a, const pref::Scenario& b) override;
  void do_save_state(std::ostream& out) const override;
  void do_restore_state(std::istream& in) override;

 private:
  std::unique_ptr<Oracle> inner_;
  double flip_probability_;
  util::Rng rng_;
  long flips_ = 0;
};

/// Wraps another oracle and answers "tie" whenever the inner oracle's
/// latent values are closer than a coarse indifference band — a vague user
/// who only distinguishes clearly different scenarios. Implemented by
/// delegating to the inner oracle with its own (tight) tolerance and
/// coarsening: any strict answer is downgraded to a tie with probability
/// `indifference` when scenarios are near each other in metric space.
class IndifferentOracle final : public Oracle {
 public:
  /// `indifference` in [0,1]: probability of abstaining on a strict call.
  IndifferentOracle(std::unique_ptr<Oracle> inner, double indifference,
                    std::uint64_t seed);

  long abstentions() const { return abstentions_; }

 protected:
  Preference do_compare(const pref::Scenario& a, const pref::Scenario& b) override;
  void do_save_state(std::ostream& out) const override;
  void do_restore_state(std::istream& in) override;

 private:
  std::unique_ptr<Oracle> inner_;
  double indifference_;
  util::Rng rng_;
  long abstentions_ = 0;
};

/// A user whose latent intent *changes* after a given number of answers —
/// e.g. an architect who recalibrates what "acceptable latency" means
/// halfway through a session. Early answers then contradict later ones,
/// which exercises the §6.1 repair machinery end to end.
class DriftingOracle final : public Oracle {
 public:
  /// Answers the first `drift_after` comparisons with `before`, the rest
  /// with `after`. Both oracles are owned.
  DriftingOracle(std::unique_ptr<Oracle> before, std::unique_ptr<Oracle> after,
                 long drift_after);

  bool drifted() const { return answered_ >= drift_after_; }

 protected:
  Preference do_compare(const pref::Scenario& a, const pref::Scenario& b) override;
  void do_save_state(std::ostream& out) const override;
  void do_restore_state(std::istream& in) override;

 private:
  std::unique_ptr<Oracle> before_;
  std::unique_ptr<Oracle> after_;
  long drift_after_;
  long answered_ = 0;
};

/// Wraps another oracle behind an injected fault model (util::FaultPlan): a
/// query may time out (throwing OracleTimeout, which exercises the base
/// class's retry-with-backoff machinery end to end) or stall briefly before
/// answering. The injector's decision stream is seeded and part of the
/// oracle's saved state, so a checkpoint-kill-resume run replays the
/// identical fault sequence (tests/fault_test.cpp).
class FlakyOracle final : public Oracle {
 public:
  /// `injector` is shared so a harness can observe injection counts; give
  /// each fault site its own injector when snapshot/resume fidelity matters
  /// (the decision stream is saved through whichever component owns it).
  FlakyOracle(std::unique_ptr<Oracle> inner,
              std::shared_ptr<util::FaultInjector> injector);

  /// Timeouts this wrapper has thrown (each retried attempt counts).
  long timeouts_injected() const { return timeouts_; }

 protected:
  Preference do_compare(const pref::Scenario& a, const pref::Scenario& b) override;
  RankingResponse do_rank(std::span<const pref::Scenario> scenarios) override;
  void do_save_state(std::ostream& out) const override;
  void do_restore_state(std::istream& in) override;

 private:
  void maybe_inject();

  std::unique_ptr<Oracle> inner_;
  std::shared_ptr<util::FaultInjector> injector_;
  long timeouts_ = 0;
};

/// A human at a terminal: prints both scenarios (named metrics) and reads
/// "1", "2" or "=" from the input stream. Used by examples/interactive.
class InteractiveOracle final : public Oracle {
 public:
  InteractiveOracle(sketch::Sketch sketch, std::istream& in, std::ostream& out);

 protected:
  Preference do_compare(const pref::Scenario& a, const pref::Scenario& b) override;

 private:
  sketch::Sketch sketch_;
  std::istream& in_;
  std::ostream& out_;
};

}  // namespace compsynth::oracle
