# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for compsynth_solver.
