#include "util/log.h"

#include <atomic>
#include <sstream>

#include "util/line_writer.h"

namespace compsynth::util {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarn};

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kError: return "ERROR";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kOff: break;
  }
  return "OFF";
}
}  // namespace

void set_level(LogLevel level) { g_level.store(level); }

LogLevel level() { return g_level.load(); }

void log_line(LogLevel lvl, const std::string& message) {
  if (static_cast<int>(lvl) > static_cast<int>(level())) return;
  // Render first, then hand the finished line to the shared mutex-guarded
  // stderr writer: log calls from concurrent ThreadPool workers used to
  // interleave mid-line through the raw std::cerr inserters.
  std::ostringstream line;
  line << "[compsynth " << level_name(lvl) << "] " << message;
  stderr_line_writer().write_line(line.str());
}

}  // namespace compsynth::util
