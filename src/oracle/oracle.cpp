#include "oracle/oracle.h"

#include <vector>

#include "obs/run_context.h"

namespace compsynth::oracle {

namespace {

const char* preference_name(Preference p) {
  switch (p) {
    case Preference::kFirst: return "first";
    case Preference::kSecond: return "second";
    case Preference::kTie: return "tie";
  }
  return "?";
}

}  // namespace

Preference Oracle::compare(const pref::Scenario& a, const pref::Scenario& b) {
  ++comparisons_;
  const Preference answer = do_compare(a, b);
  if (obs::active(obs_)) {
    obs_->count("oracle.comparisons");
    if (obs_->tracing()) {
      obs::TraceEvent e("oracle_query");
      e.str("kind", "compare")
          .integer("index", comparisons_)
          .str("answer", preference_name(answer));
      obs_->emit(e);
    }
  }
  return answer;
}

RankingResponse Oracle::rank(std::span<const pref::Scenario> scenarios) {
  if (!scenarios.empty()) ++rankings_;
  RankingResponse response = do_rank(scenarios);
  if (!scenarios.empty() && obs::active(obs_)) {
    obs_->count("oracle.rankings");
    if (obs_->tracing()) {
      obs::TraceEvent e("oracle_query");
      e.str("kind", "rank")
          .integer("index", rankings_)
          .integer("batch", static_cast<long long>(scenarios.size()))
          .integer("preferences",
                   static_cast<long long>(response.preferences.size()))
          .integer("ties", static_cast<long long>(response.ties.size()));
      obs_->emit(e);
    }
  }
  return response;
}

RankingResponse Oracle::do_rank(std::span<const pref::Scenario> scenarios) {
  // Generic ranking via comparisons only. NOTE: noisy users make the
  // comparison relation inconsistent (not a strict weak order), so feeding
  // it to std::sort would be undefined behaviour. A hand-rolled insertion
  // ranking is safe under arbitrary (even contradictory) answers.
  std::vector<std::size_t> order;
  order.reserve(scenarios.size());
  for (std::size_t i = 0; i < scenarios.size(); ++i) {
    std::size_t pos = 0;
    while (pos < order.size() &&
           do_compare(scenarios[i], scenarios[order[pos]]) != Preference::kFirst) {
      ++pos;
    }
    order.insert(order.begin() + static_cast<std::ptrdiff_t>(pos), i);
  }

  // Report the adjacent relations of the chain; transitivity of the
  // synthesized objective makes the chain as informative as all O(n^2)
  // pairs.
  RankingResponse out;
  for (std::size_t k = 0; k + 1 < order.size(); ++k) {
    const std::size_t hi = order[k];
    const std::size_t lo = order[k + 1];
    switch (do_compare(scenarios[hi], scenarios[lo])) {
      case Preference::kFirst:
        out.preferences.push_back({hi, lo});
        break;
      case Preference::kSecond:
        // Inconsistent answers (noise) are recorded as given.
        out.preferences.push_back({lo, hi});
        break;
      case Preference::kTie:
        out.ties.push_back({hi, lo});
        break;
    }
  }
  return out;
}

}  // namespace compsynth::oracle
