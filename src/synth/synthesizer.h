// The comparative synthesizer: the paper's §3/§4 interaction loop.
//
//   1. Sample `initial_scenarios` random in-range scenarios and ask the user
//      to rank them; seed the preference graph G with the answers.
//   2. Repeat: ask the candidate finder for two G-consistent candidates that
//      disagree on `pairs_per_iteration` fresh scenario pairs; present each
//      pair to the user; record the answers in G.
//   3. Stop when the finder reports that all consistent candidates rank
//      identically (the paper's UNSAT case) and return one of them.
//
// Timing follows §4.3: per-iteration synthesis time measures solver work
// only ("we omit the time spent by the oracle").
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "obs/run_context.h"
#include "oracle/oracle.h"
#include "pref/graph.h"
#include "sketch/ast.h"
#include "solver/finder.h"
#include "solver/grid_finder.h"
#include "solver/portfolio_finder.h"
#include "solver/solver_cache.h"
#include "util/rng.h"

namespace compsynth::synth {

struct SessionState;

struct SynthesisConfig {
  /// Random scenarios ranked once up front (5 in the paper; Fig. 5 sweeps
  /// 0..10).
  int initial_scenarios = 5;

  /// Distinguishing pairs the user ranks per iteration (1 in the paper;
  /// Fig. 4 sweeps 1..5).
  int pairs_per_iteration = 1;

  /// Safety valve on the interaction loop.
  int max_iterations = 500;

  /// Seed for the initial scenario sampler.
  std::uint64_t seed = 1;

  /// Margins; tie_tolerance must match the oracle's.
  solver::FinderConfig finder;

  /// Where scenarios may live: the sketch's metric box, optionally narrowed
  /// by a boolean constraint over the metrics (solver::ScenarioDomain) —
  /// e.g. an achievable throughput/latency frontier. Applies to both the
  /// initial random scenarios and the solver-proposed distinguishing ones.
  solver::ScenarioDomain scenario_domain;

  /// Evaluator and parallelism for the grid back-end factories (ignored by
  /// the Z3 back-end): the batched lane evaluator is the default; kCompiled
  /// selects the scalar tape, kTree the reference AST interpreter, and
  /// grid_threads follows GridFinderConfig::threads (0 = shared pool,
  /// 1 = sequential). All three produce identical survivor sequences
  /// (docs/EVALUATOR.md).
  solver::EvalBackend grid_eval_backend = solver::EvalBackend::kBatch;
  int grid_threads = 0;

  /// Analysis-driven version-space pruning for the grid back-end
  /// (GridFinderConfig::analysis_pruning): interval-refuted grid regions are
  /// skipped and degenerate (unread) hole dimensions replicated instead of
  /// enumerated. Survivor sets are provably identical either way
  /// (tests/prune_differential_test.cpp); this is purely a speed knob.
  bool grid_analysis_pruning = true;

  /// Distribution seam for the grid back-end (non-owning; must outlive the
  /// synthesizer): forwarded to GridFinderConfig::shard_backend so full
  /// kBatch rebuilds can be farmed out to compsynth_worker processes via a
  /// dist::ShardCoordinator. Backend failure falls back to the local scan —
  /// results are byte-identical either way (docs/DISTRIBUTED.md).
  solver::ShardSyncBackend* grid_shard_backend = nullptr;

  /// Cross-query result cache for the Z3 back-end (docs/SOLVER.md §Cache).
  /// When set, make_z3_synthesizer / make_portfolio_synthesizer wire it into
  /// the Z3Finder, which then replays cached verdicts for repeated
  /// (sketch, graph, domain) queries without touching the solver. Shared_ptr
  /// so several synthesizers (e.g. bench variants, or a portfolio's Z3 leg
  /// across restarts) can share one cache; its contents ride through
  /// checkpoints via SessionState::cache_state. Null = no caching.
  std::shared_ptr<solver::SolverCache> solver_cache;

  /// Leg selection for make_portfolio_synthesizer (ignored by the other
  /// factories): kRace races grid vs Z3 per query; kPinGrid / kPinZ3 pin
  /// one leg for deterministic differential runs.
  solver::PortfolioMode portfolio_mode = solver::PortfolioMode::kRace;

  /// Noise handling (§6.1): record contradictory answers instead of
  /// rejecting them, and greedily repair cycles / drop least-trusted answers
  /// when G becomes unsatisfiable.
  bool tolerate_inconsistency = false;

  /// Per-iteration records kept in the result (costs a little memory).
  bool keep_transcript = true;

  /// Observability wiring (docs/OBSERVABILITY.md). The synthesizer threads
  /// the context (non-owning metrics/tracer pointers, run id, seed) through
  /// the finder, the oracle and the preference graph for the duration of
  /// run(), emitting run_start / iteration / run_end events and synth.*
  /// metrics. Default-constructed = fully off (no clock reads, no locks).
  obs::RunContext obs;

  /// Durable sessions (docs/PERSISTENCE.md): when set, invoked with the
  /// complete SessionState after every `checkpoint_every`-th completed
  /// iteration and once more when the loop ends. The hook typically hands
  /// the state to a session::CheckpointManager, which writes an atomic
  /// snapshot file; Synthesizer::resume continues the identical run from
  /// any such state. Null (the default) disables checkpointing entirely.
  std::function<void(const SessionState&)> checkpoint;
  int checkpoint_every = 1;
};

enum class SynthesisStatus {
  kConverged,        // unique ranking reached; objective holds the solution
  kIterationLimit,   // max_iterations hit; objective is a best-effort pick
  kNoCandidate,      // no sketch instance is consistent with the user
  kSolverGaveUp,     // the finder returned unknown
};

/// One interaction-loop step, for transcripts and the per-iteration timing
/// columns of Table 1 / Figs. 3-5.
struct IterationRecord {
  int index = 0;              // 1-based
  double solver_seconds = 0;  // finder time for this step
  int pairs_presented = 0;    // scenario pairs the user ranked
  int edges_added = 0;
  int ties_added = 0;
};

/// Complete mid-run synthesis state, captured at an iteration boundary.
/// Everything a later process needs to continue the identical run: the
/// preference graph, the loop counters and transcript, and the opaque state
/// blobs of the finder (RNG stream, version space / query counters) and the
/// oracle (interaction counters, per-variant RNG streams). Produced by the
/// SynthesisConfig::checkpoint hook and consumed by Synthesizer::resume;
/// session/snapshot.h serializes it to disk.
struct SessionState {
  int iterations = 0;
  int interactions = 0;
  int repair_rounds = 0;
  double total_solver_seconds = 0;
  /// Oracle comparisons attributable to this logical session (the oracle's
  /// absolute counter may predate the session).
  long oracle_comparisons = 0;
  std::vector<IterationRecord> transcript;
  pref::PreferenceGraph graph{true};
  std::string finder_state;  ///< CandidateFinder::save_state blob
  std::string oracle_state;  ///< oracle::Oracle::save_state blob
  /// solver::SolverCache::save_state blob, filled only when the run has a
  /// SynthesisConfig::solver_cache. Losing it is harmless for correctness
  /// (the cache is a pure accelerator) but a resumed session would re-pay
  /// every solver query the original had already answered.
  std::string cache_state;
};

struct SynthesisResult {
  SynthesisStatus status = SynthesisStatus::kSolverGaveUp;
  std::optional<sketch::HoleAssignment> objective;

  /// Number of interaction-loop iterations executed, *including* the final
  /// converging query (the query that proves uniqueness still runs the
  /// solver even though the user is not consulted) — matching the paper's
  /// "# Iterations" accounting.
  int iterations = 0;

  /// Iterations in which the user was actually shown scenarios.
  int interactions = 0;

  double total_solver_seconds = 0;
  double average_iteration_seconds = 0;

  long oracle_comparisons = 0;   // individual pairwise answers
  std::vector<IterationRecord> transcript;
  pref::PreferenceGraph graph{true};  // final preference graph (by value)
};

class Synthesizer {
 public:
  /// Takes ownership of the finder (the solver back-end strategy).
  Synthesizer(sketch::Sketch sketch, std::unique_ptr<solver::CandidateFinder> finder,
              SynthesisConfig config = {});

  /// Runs the full interaction loop against `user`.
  SynthesisResult run(oracle::Oracle& user);

  /// Resumes from a previously recorded preference graph (see
  /// pref/serialize.h): the initial random-scenario phase is skipped when
  /// `initial` already has vertices, and the loop continues from there.
  SynthesisResult run(oracle::Oracle& user, pref::PreferenceGraph initial);

  /// Resumes from a checkpointed SessionState: restores the finder's and the
  /// oracle's internal state from the opaque blobs, then continues the loop
  /// at the recorded iteration. A resumed run is provably identical to one
  /// that was never interrupted — same objective, same oracle query sequence
  /// (tests/session_test.cpp kills and resumes at every iteration boundary).
  /// Requires a synthesizer and oracle constructed with the same
  /// configuration/topology that produced the state; throws
  /// std::invalid_argument when the blobs do not match.
  SynthesisResult resume(oracle::Oracle& user, SessionState state);

  const SynthesisConfig& config() const { return config_; }

  /// The owned back-end (for wiring fault injectors or query logs from a
  /// harness before run/resume). Never null.
  solver::CandidateFinder& finder() { return *finder_; }

 private:
  SynthesisResult run_impl(oracle::Oracle& user, SessionState st, bool resumed);
  void seed_graph(pref::PreferenceGraph& graph, oracle::Oracle& user,
                  util::Rng& rng) const;
  void record_answer(pref::PreferenceGraph& graph, pref::VertexId v1,
                     pref::VertexId v2, oracle::Preference answer,
                     IterationRecord& record) const;

  sketch::Sketch sketch_;
  std::unique_ptr<solver::CandidateFinder> finder_;
  SynthesisConfig config_;
};

/// Convenience factories wiring the standard back-ends.
Synthesizer make_z3_synthesizer(const sketch::Sketch& sketch,
                                SynthesisConfig config = {},
                                solver::Viability viability = {});
Synthesizer make_grid_synthesizer(const sketch::Sketch& sketch,
                                  SynthesisConfig config = {},
                                  solver::Viability viability = {});

/// Grid back-end with the active-learning bisection query strategy: each
/// question is chosen to split the surviving candidate set most evenly,
/// reducing the number of user interactions (see bench_ablation_query).
Synthesizer make_bisection_synthesizer(const sketch::Sketch& sketch,
                                       SynthesisConfig config = {},
                                       solver::Viability viability = {});

/// Portfolio back-end (solver/portfolio_finder.h): a GridFinder and a
/// Z3Finder answering every query per config.portfolio_mode — racing
/// concurrently (kRace, the performance default) or pinned to one leg for
/// deterministic runs. config.solver_cache, if set, accelerates the Z3 leg.
Synthesizer make_portfolio_synthesizer(const sketch::Sketch& sketch,
                                       SynthesisConfig config = {},
                                       solver::Viability viability = {});

}  // namespace compsynth::synth
