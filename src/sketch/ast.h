// Abstract syntax for objective-function sketches (paper §4.1).
//
// An objective function is represented as a *program*: an arithmetic
// expression over named metrics (throughput, latency, ...) that may contain
// *holes* — unknown constants the synthesizer must fill. A Sketch bundles the
// expression body with the declarations of its metrics (with the paper's
// ClosedInRange bounds) and its holes (each ranging over a finite value
// grid, which is what makes "UNSAT => unique solution" reachable; see
// DESIGN.md §6).
//
// Expression nodes are immutable and shared via shared_ptr<const Expr>, so
// sub-expressions may be reused freely and Sketch objects are cheap to copy.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

namespace compsynth::sketch {

/// Index of a metric within a Sketch's metric declarations.
using MetricId = std::size_t;
/// Index of a hole within a Sketch's hole declarations.
using HoleId = std::size_t;

/// Binary arithmetic operators.
enum class BinOp { kAdd, kSub, kMul, kDiv, kMin, kMax };

/// Comparison operators (produce booleans).
enum class CmpOp { kLt, kLe, kGt, kGe, kEq, kNe };

/// Binary boolean connectives.
enum class BoolOp { kAnd, kOr };

struct Expr;
using ExprPtr = std::shared_ptr<const Expr>;

/// A single immutable AST node. The static type of a node (numeric vs
/// boolean) is implied by its kind; Typecheck (typecheck.h) validates that
/// children have the expected types.
struct Expr {
  enum class Kind {
    kConst,      // numeric literal                      -> numeric
    kMetric,     // reference to a metric argument       -> numeric
    kHole,       // reference to an unknown hole         -> numeric
    kNeg,        // unary minus                          -> numeric
    kBinary,     // + - * / min max                      -> numeric
    kIte,        // if <bool> then <num> else <num>      -> numeric
    kChoice,     // choose <hole> { e0 | e1 | ... }      -> numeric
                 // structural hole: the selector hole (an integer grid
                 // 0..N-1) picks which alternative *is* the expression —
                 // the paper's "exact functions left unspecified"
    kCmp,        // < <= > >= == !=                      -> boolean
    kBoolBinary, // && ||                                -> boolean
    kNot,        // !                                    -> boolean
    kBoolConst,  // true / false                         -> boolean
  };

  Kind kind;
  double literal = 0;          // kConst; for kBoolConst: 0 = false, 1 = true
  MetricId metric = 0;         // kMetric
  HoleId hole = 0;             // kHole
  BinOp bin_op = BinOp::kAdd;  // kBinary
  CmpOp cmp_op = CmpOp::kLt;   // kCmp
  BoolOp bool_op = BoolOp::kAnd;  // kBoolBinary
  std::vector<ExprPtr> children;  // arity depends on kind

  /// 1-based source position stamped by the parser; 0 = synthesized node
  /// (built through the node constructors rather than parsed). Consumed by
  /// the static analyzer's diagnostics (sketch/diagnostics.h); ignored by
  /// evaluation, printing and structural comparison.
  std::uint32_t line = 0;
  std::uint32_t column = 0;
};

/// Copy of `e` carrying the given source position (nodes are immutable, so
/// stamping allocates a shallow copy; children are shared).
ExprPtr with_location(const ExprPtr& e, std::uint32_t line, std::uint32_t column);

/// True if nodes of this kind denote numeric values.
bool is_numeric_kind(Expr::Kind kind);

// --- Node constructors -----------------------------------------------------

ExprPtr constant(double value);
ExprPtr bool_constant(bool value);
ExprPtr metric(MetricId id);
ExprPtr hole(HoleId id);
ExprPtr neg(ExprPtr operand);
ExprPtr binary(BinOp op, ExprPtr lhs, ExprPtr rhs);
ExprPtr ite(ExprPtr condition, ExprPtr then_branch, ExprPtr else_branch);
/// Structural hole: `selector` indexes into `alternatives` (>= 2 of them).
/// The selector hole must be an integer grid {0, 1, ..., N-1}; the Sketch
/// constructor validates this.
ExprPtr choice(HoleId selector, std::vector<ExprPtr> alternatives);
ExprPtr compare(CmpOp op, ExprPtr lhs, ExprPtr rhs);
ExprPtr bool_binary(BoolOp op, ExprPtr lhs, ExprPtr rhs);
ExprPtr logical_not(ExprPtr operand);

// Shorthand numeric builders.
ExprPtr add(ExprPtr lhs, ExprPtr rhs);
ExprPtr sub(ExprPtr lhs, ExprPtr rhs);
ExprPtr mul(ExprPtr lhs, ExprPtr rhs);

// --- Declarations ----------------------------------------------------------

/// A metric argument of the objective: a name plus the paper's ClosedInRange
/// bounds within which scenario values (and distinguishing scenarios created
/// by the synthesizer) must lie.
struct MetricSpec {
  std::string name;
  double lo = 0;
  double hi = 0;
  /// Declaration position (1-based; 0 = not parsed from source).
  std::uint32_t line = 0;
  std::uint32_t column = 0;
};

/// A hole ranging over the finite arithmetic grid
///   { lo, lo + step, ..., lo + (count-1) * step }.
/// Finite hole domains keep the candidate space a finite version space.
struct HoleSpec {
  std::string name;
  double lo = 0;
  double step = 1;
  std::int64_t count = 0;
  /// Declaration position (1-based; 0 = not parsed from source).
  std::uint32_t line = 0;
  std::uint32_t column = 0;

  /// The value at grid index i. Requires 0 <= i < count.
  double value_at(std::int64_t i) const;

  /// Index of the grid point nearest to v (clamped to the grid).
  std::int64_t nearest_index(double v) const;

  double max_value() const { return value_at(count - 1); }
};

/// Concrete values for every hole of a sketch, stored as grid indices so
/// equality is exact. assignment.index[h] selects HoleSpec::value_at.
struct HoleAssignment {
  std::vector<std::int64_t> index;

  friend bool operator==(const HoleAssignment&, const HoleAssignment&) = default;
};

/// A sketch: the partial program of Fig. 2a. Immutable after construction;
/// construction validates well-formedness (see sketch.cpp) and throws
/// std::invalid_argument on malformed input.
class Sketch {
 public:
  Sketch(std::string name, std::vector<MetricSpec> metrics,
         std::vector<HoleSpec> holes, ExprPtr body);

  const std::string& name() const { return name_; }
  const std::vector<MetricSpec>& metrics() const { return metrics_; }
  const std::vector<HoleSpec>& holes() const { return holes_; }
  const ExprPtr& body() const { return body_; }

  /// Looks up a metric/hole by name; returns npos when absent.
  static constexpr std::size_t npos = static_cast<std::size_t>(-1);
  std::size_t metric_index(std::string_view name) const;
  std::size_t hole_index(std::string_view name) const;

  /// Total number of points in the hole grid (product of counts).
  /// Saturates at int64 max.
  std::int64_t candidate_space_size() const;

  /// Maps a HoleAssignment to concrete hole values.
  std::vector<double> hole_values(const HoleAssignment& a) const;

  /// True if every index in `a` is within its hole's grid.
  bool valid_assignment(const HoleAssignment& a) const;

 private:
  std::string name_;
  std::vector<MetricSpec> metrics_;
  std::vector<HoleSpec> holes_;
  ExprPtr body_;
};

}  // namespace compsynth::sketch
