// Repetition harness shared by the benches and integration tests.
//
// The paper runs every configuration nine times (random initial scenarios
// make runs non-deterministic) and reports average / median / SIQR of the
// iteration count and synthesis times. This harness reproduces that
// protocol: it builds a fresh synthesizer + ground-truth oracle per
// repetition, varies the seed, and aggregates.
#pragma once

#include <vector>

#include "synth/synthesizer.h"
#include "util/stats.h"

namespace compsynth::synth {

enum class Backend { kZ3, kGrid, kGridBisection };

struct ExperimentSpec {
  sketch::Sketch sketch;
  sketch::HoleAssignment target;  // the latent user intent
  SynthesisConfig config;
  Backend backend = Backend::kZ3;
  int repetitions = 9;  // the paper's count

  /// When set, each learned objective is checked (via Z3) to be
  /// ranking-equivalent to the target; reported as `correct` per run.
  bool verify_equivalence = true;

  /// Optional user imperfection: probability of flipping a strict answer.
  double oracle_flip_probability = 0;

  /// Observability template for the repetitions: each rep runs with a copy
  /// whose run_id gains a "/repN" suffix and whose seed is the rep's actual
  /// seed, so traces from all reps interleave distinguishably in one file.
  obs::RunContext obs;
};

struct RunOutcome {
  SynthesisStatus status = SynthesisStatus::kSolverGaveUp;
  int iterations = 0;
  int interactions = 0;
  double total_seconds = 0;
  double avg_iteration_seconds = 0;
  long oracle_comparisons = 0;
  bool correct = false;
};

struct ExperimentOutcome {
  std::vector<RunOutcome> runs;
  util::Summary iterations;
  util::Summary interactions;
  util::Summary total_seconds;
  util::Summary avg_iteration_seconds;
  int converged_runs = 0;
  int correct_runs = 0;
};

/// Runs `spec.repetitions` independent synthesis runs and aggregates.
ExperimentOutcome run_experiment(const ExperimentSpec& spec);

}  // namespace compsynth::synth
