// Preference graph invariants: interning, cycle handling, reachability,
// topological order, repair.
#include <gtest/gtest.h>

#include "pref/graph.h"
#include "sketch/library.h"

namespace compsynth::pref {
namespace {

Scenario sc(double t, double l) { return Scenario{{t, l}}; }

TEST(Scenario, ToStringUsesMetricNames) {
  const std::string s = to_string(sc(2, 100), sketch::swan_sketch());
  EXPECT_EQ(s, "(throughput = 2, latency = 100)");
}

TEST(Scenario, InRangeChecksBoundsInclusive) {
  const auto& sk = sketch::swan_sketch();
  EXPECT_TRUE(in_range(sc(0, 0), sk));
  EXPECT_TRUE(in_range(sc(10, 200), sk));
  EXPECT_FALSE(in_range(sc(10.01, 0), sk));
  EXPECT_FALSE(in_range(sc(0, -0.1), sk));
  EXPECT_FALSE(in_range(Scenario{{1}}, sk));  // arity mismatch
}

TEST(Graph, InternDeduplicatesExactScenarios) {
  PreferenceGraph g;
  const VertexId a = g.intern(sc(1, 2));
  const VertexId b = g.intern(sc(1, 2));
  const VertexId c = g.intern(sc(1, 3));
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_EQ(g.vertex_count(), 2u);
}

TEST(Graph, AddPreferenceBasics) {
  PreferenceGraph g;
  const VertexId a = g.intern(sc(5, 10));
  const VertexId b = g.intern(sc(2, 100));
  EXPECT_EQ(g.add_preference(a, b), AddResult::kAdded);
  EXPECT_EQ(g.add_preference(a, b), AddResult::kDuplicate);
  EXPECT_EQ(g.add_preference(a, a), AddResult::kSelfLoop);
  EXPECT_EQ(g.edges().size(), 1u);
  // Duplicate merged weight.
  EXPECT_DOUBLE_EQ(g.edges()[0].weight, 2.0);
}

TEST(Graph, RejectsCycleByDefault) {
  PreferenceGraph g;
  const VertexId a = g.intern(sc(1, 1));
  const VertexId b = g.intern(sc(2, 2));
  const VertexId c = g.intern(sc(3, 3));
  EXPECT_EQ(g.add_preference(a, b), AddResult::kAdded);
  EXPECT_EQ(g.add_preference(b, c), AddResult::kAdded);
  EXPECT_EQ(g.add_preference(c, a), AddResult::kCycle);
  EXPECT_FALSE(g.has_cycle());
}

TEST(Graph, TolerantModeRecordsCycles) {
  PreferenceGraph g(/*allow_inconsistent=*/true);
  const VertexId a = g.intern(sc(1, 1));
  const VertexId b = g.intern(sc(2, 2));
  EXPECT_EQ(g.add_preference(a, b), AddResult::kAdded);
  EXPECT_EQ(g.add_preference(b, a), AddResult::kAdded);
  EXPECT_TRUE(g.has_cycle());
}

TEST(Graph, ReachabilityIsTransitive) {
  PreferenceGraph g;
  const VertexId a = g.intern(sc(1, 1));
  const VertexId b = g.intern(sc(2, 2));
  const VertexId c = g.intern(sc(3, 3));
  g.add_preference(a, b);
  g.add_preference(b, c);
  EXPECT_TRUE(g.reachable(a, c));
  EXPECT_FALSE(g.reachable(c, a));
  EXPECT_TRUE(g.reachable(b, b));
}

TEST(Graph, TopologicalOrderRespectsEdges) {
  PreferenceGraph g;
  const VertexId a = g.intern(sc(1, 1));
  const VertexId b = g.intern(sc(2, 2));
  const VertexId c = g.intern(sc(3, 3));
  g.add_preference(b, c);
  g.add_preference(a, b);
  const auto order = g.topological_order();
  ASSERT_EQ(order.size(), 3u);
  auto pos = [&](VertexId v) {
    return std::find(order.begin(), order.end(), v) - order.begin();
  };
  EXPECT_LT(pos(a), pos(b));
  EXPECT_LT(pos(b), pos(c));
}

TEST(Graph, TopologicalOrderEmptyOnCycle) {
  PreferenceGraph g(true);
  const VertexId a = g.intern(sc(1, 1));
  const VertexId b = g.intern(sc(2, 2));
  g.add_preference(a, b);
  g.add_preference(b, a);
  EXPECT_TRUE(g.topological_order().empty());
}

TEST(Graph, TiesAreSymmetricAndDeduplicated) {
  PreferenceGraph g;
  const VertexId a = g.intern(sc(1, 1));
  const VertexId b = g.intern(sc(2, 2));
  EXPECT_TRUE(g.add_tie(a, b));
  EXPECT_FALSE(g.add_tie(b, a));
  EXPECT_FALSE(g.add_tie(a, a));
  EXPECT_EQ(g.ties().size(), 1u);
}

TEST(Graph, RepairRemovesLowestWeightEdgeInCycle) {
  PreferenceGraph g(true);
  const VertexId a = g.intern(sc(1, 1));
  const VertexId b = g.intern(sc(2, 2));
  const VertexId c = g.intern(sc(3, 3));
  g.add_preference(a, b, 5.0);
  g.add_preference(b, c, 5.0);
  g.add_preference(c, a, 1.0);  // least trusted
  ASSERT_TRUE(g.has_cycle());
  const auto removed = g.repair();
  ASSERT_EQ(removed.size(), 1u);
  EXPECT_EQ(removed[0].better, c);
  EXPECT_EQ(removed[0].worse, a);
  EXPECT_FALSE(g.has_cycle());
  EXPECT_EQ(g.edges().size(), 2u);
}

TEST(Graph, RepairHandlesMultipleOverlappingCycles) {
  PreferenceGraph g(true);
  const VertexId a = g.intern(sc(1, 1));
  const VertexId b = g.intern(sc(2, 2));
  const VertexId c = g.intern(sc(3, 3));
  g.add_preference(a, b, 1.0);
  g.add_preference(b, a, 2.0);
  g.add_preference(b, c, 1.0);
  g.add_preference(c, b, 3.0);
  g.repair();
  EXPECT_FALSE(g.has_cycle());
}

TEST(Graph, DropLightestEdge) {
  PreferenceGraph g;
  const VertexId a = g.intern(sc(1, 1));
  const VertexId b = g.intern(sc(2, 2));
  const VertexId c = g.intern(sc(3, 3));
  g.add_preference(a, b, 3.0);
  g.add_preference(b, c, 0.5);
  const auto removed = g.drop_lightest_edge();
  ASSERT_TRUE(removed.has_value());
  EXPECT_DOUBLE_EQ(removed->weight, 0.5);
  EXPECT_EQ(g.edges().size(), 1u);
  PreferenceGraph empty;
  EXPECT_FALSE(empty.drop_lightest_edge().has_value());
}

TEST(Graph, UnknownVertexThrows) {
  PreferenceGraph g;
  const VertexId a = g.intern(sc(1, 1));
  EXPECT_THROW(g.add_preference(a, 42), std::out_of_range);
  EXPECT_THROW(g.add_tie(42, a), std::out_of_range);
}

}  // namespace
}  // namespace compsynth::pref

// --- Transitive reduction -------------------------------------------------------

namespace compsynth::pref {
namespace {

TEST(TransitiveReduce, RemovesImpliedEdges) {
  PreferenceGraph g;
  const VertexId a = g.intern(Scenario{{1, 1}});
  const VertexId b = g.intern(Scenario{{2, 2}});
  const VertexId c = g.intern(Scenario{{3, 3}});
  g.add_preference(a, b);
  g.add_preference(b, c);
  // Direct a > c is implied; recording is rejected as duplicate? No — it is
  // a fresh edge, then reduced away.
  EXPECT_EQ(g.add_preference(a, c), AddResult::kAdded);
  EXPECT_EQ(g.transitive_reduce(), 1u);
  EXPECT_EQ(g.edges().size(), 2u);
  // Reachability is preserved.
  EXPECT_TRUE(g.reachable(a, c));
}

TEST(TransitiveReduce, NoOpOnIrreducibleGraphs) {
  PreferenceGraph g;
  const VertexId a = g.intern(Scenario{{1, 1}});
  const VertexId b = g.intern(Scenario{{2, 2}});
  const VertexId c = g.intern(Scenario{{3, 3}});
  g.add_preference(a, b);
  g.add_preference(a, c);
  EXPECT_EQ(g.transitive_reduce(), 0u);
  EXPECT_EQ(g.edges().size(), 2u);
}

TEST(TransitiveReduce, HandlesLongChainsWithShortcuts) {
  PreferenceGraph g;
  std::vector<VertexId> v;
  for (int i = 0; i < 6; ++i) {
    v.push_back(g.intern(Scenario{{static_cast<double>(i)}}));
  }
  for (int i = 0; i + 1 < 6; ++i) g.add_preference(v[i], v[i + 1]);
  g.add_preference(v[0], v[3]);
  g.add_preference(v[1], v[5]);
  g.add_preference(v[0], v[5]);
  EXPECT_EQ(g.transitive_reduce(), 3u);
  EXPECT_EQ(g.edges().size(), 5u);  // the chain only
  for (int i = 0; i < 6; ++i) {
    for (int j = i + 1; j < 6; ++j) EXPECT_TRUE(g.reachable(v[i], v[j]));
  }
}

TEST(TransitiveReduce, ThrowsOnCyclicGraph) {
  PreferenceGraph g(true);
  const VertexId a = g.intern(Scenario{{1}});
  const VertexId b = g.intern(Scenario{{2}});
  g.add_preference(a, b);
  g.add_preference(b, a);
  EXPECT_THROW(g.transitive_reduce(), std::logic_error);
}

}  // namespace
}  // namespace compsynth::pref
