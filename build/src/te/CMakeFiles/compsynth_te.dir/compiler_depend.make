# Empty compiler generated dependencies file for compsynth_te.
# This may be replaced when dependencies are built.
