#include "solver/z3_finder.h"

#include <cmath>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <utility>

#include "obs/run_context.h"
#include "solver/z3_encoder.h"
#include "util/log.h"

namespace compsynth::solver {

namespace {

constexpr int kMaxViabilityBlocks = 256;

const char* check_result_name(z3::check_result r) {
  if (r == z3::sat) return "sat";
  if (r == z3::unsat) return "unsat";
  return "unknown";
}

void set_timeout(z3::context& ctx, z3::solver& s, unsigned timeout_ms) {
  if (timeout_ms == 0) return;
  z3::params p(ctx);
  p.set("timeout", timeout_ms);
  s.set(p);
}

// The queries we emit are pure QF_NRA, for which the nlsat tactic is a
// complete decision procedure — and measurably faster here than the default
// portfolio (the final uniqueness proof drops ~10x). nlsat is primary.
z3::solver make_solver(z3::context& ctx, unsigned timeout_ms) {
  z3::solver s = z3::tactic(ctx, "qfnra-nlsat").mk_solver();
  set_timeout(ctx, s, timeout_ms);
  return s;
}

// Retry an `unknown` (timeout / resource-out) with the default portfolio
// solver, which sometimes succeeds where a single tactic stalls.
z3::check_result check_with_fallback(z3::context& ctx, z3::solver& s,
                                     unsigned timeout_ms) {
  const z3::check_result r = s.check();
  if (r != z3::unknown) return r;
  util::log(util::LogLevel::kDebug, "nlsat returned unknown; retrying with default solver");
  z3::solver fallback(ctx);
  set_timeout(ctx, fallback, timeout_ms);
  for (const z3::expr& a : s.assertions()) fallback.add(a);
  const z3::check_result r2 = fallback.check();
  if (r2 != z3::unknown) s = std::move(fallback);  // expose the model via `s`
  return r2;
}

// check_with_fallback wrapped in a "z3_query" span: one event + one
// z3_query.seconds sample per solver invocation, with kind/result/index.
// When a fault injector is attached, a check may be preceded by an injected
// slowdown and/or replaced by an injected transient failure; failures are
// retried with backoff per `retry` ("fault"/"retry" events, z3.failures /
// z3.retries counters) and degrade to `unknown` once the budget is spent.
z3::check_result timed_check(const obs::RunContext* obs, z3::context& ctx,
                             z3::solver& s, unsigned timeout_ms,
                             const char* kind, long index,
                             util::FaultInjector* injector,
                             const util::RetryPolicy& retry) {
  for (int attempt = 1;; ++attempt) {
    if (injector != nullptr && injector->z3_slowdown()) {
      util::sleep_seconds(injector->plan().z3_slowdown_s);
    }
    if (injector == nullptr || !injector->z3_failure()) {
      obs::Span span(obs, "z3_query");
      const z3::check_result r = check_with_fallback(ctx, s, timeout_ms);
      if (obs != nullptr) obs->count("z3.queries");
      if (obs::TraceEvent* e = span.event()) {
        e->str("kind", kind).integer("index", index).str(
            "result", check_result_name(r));
        if (attempt > 1) e->integer("attempt", attempt);
      }
      return r;
    }
    if (obs::active(obs)) {
      obs->count("z3.failures");
      if (obs->tracing()) {
        obs::TraceEvent e("fault");
        e.str("site", "z3").str("kind", "failure").str("op", kind)
            .integer("index", index).integer("attempt", attempt);
        obs->emit(e);
      }
    }
    if (attempt >= retry.max_attempts) {
      util::log(util::LogLevel::kWarn,
                "Z3Finder: transient failure persisted past the retry "
                "budget; reporting unknown");
      return z3::unknown;
    }
    const double backoff = retry.backoff_before(attempt + 1);
    if (obs::active(obs)) {
      obs->count("z3.retries");
      if (obs->tracing()) {
        obs::TraceEvent e("retry");
        e.str("site", "z3").str("op", kind).integer("attempt", attempt + 1)
            .num("backoff_s", backoff);
        obs->emit(e);
      }
    }
    util::sleep_seconds(backoff);
  }
}

// Encodes the sketch body at a concrete scenario under the given hole vars.
z3::expr objective_at(z3::context& ctx, const sketch::Sketch& sk,
                      const std::vector<z3::expr>& hole_vars,
                      const pref::Scenario& scenario) {
  const std::vector<z3::expr> metrics = encode_scenario(ctx, scenario.metrics);
  return encode_numeric(ctx, *sk.body(), metrics, hole_vars);
}

// Adds G's constraints (edges strict, ties within tolerance) for one
// candidate's hole variables.
void add_graph_constraints(z3::context& ctx, z3::solver& s,
                           const sketch::Sketch& sk,
                           const pref::PreferenceGraph& graph,
                           const std::vector<z3::expr>& hole_vars,
                           double tie_bound) {
  for (const pref::Edge& e : graph.edges()) {
    const z3::expr better = objective_at(ctx, sk, hole_vars, graph.scenario(e.better));
    const z3::expr worse = objective_at(ctx, sk, hole_vars, graph.scenario(e.worse));
    s.add(better > worse);
  }
  const z3::expr bound = real_of_double(ctx, tie_bound);
  for (const auto& [u, v] : graph.ties()) {
    const z3::expr fu = objective_at(ctx, sk, hole_vars, graph.scenario(u));
    const z3::expr fv = objective_at(ctx, sk, hole_vars, graph.scenario(v));
    s.add(fu - fv <= bound);
    s.add(fv - fu <= bound);
  }
}

}  // namespace

Z3Finder::Z3Finder(sketch::Sketch sketch, FinderConfig config, Viability viability,
                   ScenarioDomain domain)
    : sketch_(std::move(sketch)),
      config_(config),
      viability_(std::move(viability)),
      domain_(std::move(domain)) {
  validate_domain(sketch_, domain_);
  if (config_.distinguish_margin <= config_.tie_tolerance) {
    throw std::invalid_argument(
        "Z3Finder: distinguish_margin must exceed tie_tolerance "
        "(otherwise an oracle tie answer cannot eliminate candidates)");
  }
  // Interval precheck: a finite, NaN/error-free enclosure of the objective
  // over the whole input space can be asserted on every encoded objective
  // term. The bound is implied by the existing range/grid constraints, so
  // verdicts (sat/unsat) are unchanged; it only narrows the real search.
  const sketch::AnalysisResult analysis = sketch::analyze(sketch_);
  if (analysis.well_typed && !analysis.output.maybe_nan &&
      !analysis.output.maybe_error && analysis.output.finite()) {
    objective_bounds_ = analysis.output;
  }
}

void Z3Finder::log_query(z3::solver& solver, const char* kind) {
  if (query_log_ == nullptr) return;
  *query_log_ << "; compsynth query " << query_count_ << " (" << kind << ")\n"
              << solver.to_smt2() << "\n";
}

FinderResult Z3Finder::find_distinguishing(const pref::PreferenceGraph& graph,
                                           int num_pairs) {
  if (num_pairs < 1) throw std::invalid_argument("find_distinguishing: num_pairs < 1");

  z3::context ctx;
  z3::solver solver = make_solver(ctx, config_.timeout_ms);

  const std::vector<z3::expr> ha = make_hole_vars(ctx, sketch_, "a_");
  const std::vector<z3::expr> hb = make_hole_vars(ctx, sketch_, "b_");
  solver.add(hole_domain_constraint(ctx, sketch_, ha));
  solver.add(hole_domain_constraint(ctx, sketch_, hb));

  // Tie bound gets a hair of slack over the oracle's tolerance so that exact
  // rational arithmetic never rejects the (double-evaluated) ground truth.
  const double tie_bound = config_.tie_tolerance + 1e-9;
  add_graph_constraints(ctx, solver, sketch_, graph, ha, tie_bound);
  add_graph_constraints(ctx, solver, sketch_, graph, hb, tie_bound);

  // Fresh scenario variables for each requested distinguishing pair.
  const z3::expr margin = real_of_double(ctx, config_.distinguish_margin);
  std::vector<std::vector<z3::expr>> s1_vars, s2_vars;
  for (int p = 0; p < num_pairs; ++p) {
    auto make_scenario_vars = [&](const char* tag) {
      std::vector<z3::expr> vars;
      for (const sketch::MetricSpec& m : sketch_.metrics()) {
        const std::string name = "p" + std::to_string(p) + "_" + tag + "_" + m.name;
        z3::expr v = ctx.real_const(name.c_str());
        solver.add(v >= real_of_double(ctx, m.lo));
        solver.add(v <= real_of_double(ctx, m.hi));
        vars.push_back(std::move(v));
      }
      if (domain_.constraint != nullptr) {
        solver.add(encode_bool(ctx, *domain_.constraint, vars, {}));
      }
      return vars;
    };
    s1_vars.push_back(make_scenario_vars("s1"));
    s2_vars.push_back(make_scenario_vars("s2"));

    const z3::expr fa1 = encode_numeric(ctx, *sketch_.body(), s1_vars.back(), ha);
    const z3::expr fa2 = encode_numeric(ctx, *sketch_.body(), s2_vars.back(), ha);
    const z3::expr fb1 = encode_numeric(ctx, *sketch_.body(), s1_vars.back(), hb);
    const z3::expr fb2 = encode_numeric(ctx, *sketch_.body(), s2_vars.back(), hb);
    solver.add(fa1 >= fa2 + margin);
    solver.add(fb2 >= fb1 + margin);
    if (objective_bounds_) {
      const z3::expr lo = real_of_double(ctx, objective_bounds_->lo);
      const z3::expr hi = real_of_double(ctx, objective_bounds_->hi);
      for (const z3::expr& f : {fa1, fa2, fb1, fb2}) {
        solver.add(f >= lo);
        solver.add(f <= hi);
      }
    }
  }

  // Multiple pairs must be genuinely different questions: each pair's
  // preferred scenario must differ from every earlier pair's by at least 1%
  // of some metric's range. (Without this the solver happily returns k
  // copies of one disagreement and the extra answers teach nothing.) The
  // over-constrained query going UNSAT does NOT prove ranking uniqueness —
  // fewer than k separated witnesses may remain — so that case re-checks
  // with a single pair.
  for (int p = 1; p < num_pairs; ++p) {
    for (int q = 0; q < p; ++q) {
      z3::expr separated = ctx.bool_val(false);
      for (std::size_t m = 0; m < sketch_.metrics().size(); ++m) {
        const sketch::MetricSpec& spec = sketch_.metrics()[m];
        const z3::expr delta = real_of_double(ctx, (spec.hi - spec.lo) * 0.01);
        separated = separated || (s1_vars[p][m] - s1_vars[q][m] >= delta) ||
                    (s1_vars[q][m] - s1_vars[p][m] >= delta);
      }
      solver.add(separated);
    }
  }

  for (int attempt = 0; attempt < kMaxViabilityBlocks; ++attempt) {
    ++query_count_;
    log_query(solver, "distinguishing");
    const z3::check_result r =
        timed_check(obs_, ctx, solver, config_.timeout_ms, "distinguishing",
                    query_count_, injector_.get(), config_.retry);
    if (r == z3::unsat) {
      if (num_pairs > 1) return find_distinguishing(graph, 1);
      // Distinguish "no candidate at all" from "unique ranking", and carry
      // the unique ranking's representative out to the caller.
      FinderResult res;
      if (auto representative = find_consistent(graph)) {
        res.status = FinderStatus::kUniqueRanking;
        res.candidate_a = *std::move(representative);
      } else {
        res.status = FinderStatus::kNoCandidate;
      }
      return res;
    }
    if (r == z3::unknown) { FinderResult res; res.status = FinderStatus::kUnknown; return res; }

    const z3::model model = solver.get_model();
    auto extract_assignment = [&](const std::vector<z3::expr>& vars) {
      sketch::HoleAssignment a;
      for (std::size_t i = 0; i < vars.size(); ++i) {
        a.index.push_back(sketch_.holes()[i].nearest_index(value_of(model, vars[i])));
      }
      return a;
    };
    FinderResult res;
    res.status = FinderStatus::kFound;
    res.candidate_a = extract_assignment(ha);
    res.candidate_b = extract_assignment(hb);

    if (viability_.concrete) {
      const std::vector<double> va = sketch_.hole_values(res.candidate_a);
      const std::vector<double> vb = sketch_.hole_values(res.candidate_b);
      z3::expr block = ctx.bool_val(false);
      bool blocked = false;
      auto block_assignment = [&](const std::vector<z3::expr>& vars,
                                  const std::vector<double>& vals) {
        z3::expr same = ctx.bool_val(true);
        for (std::size_t i = 0; i < vars.size(); ++i) {
          same = same && (vars[i] == real_of_double(ctx, vals[i]));
        }
        block = block || !same;
      };
      if (!viability_.concrete(va)) {
        block_assignment(ha, va);
        blocked = true;
      }
      if (!viability_.concrete(vb)) {
        block_assignment(hb, vb);
        blocked = true;
      }
      if (blocked) {
        solver.add(block);
        continue;  // re-check with the non-viable assignment(s) excluded
      }
    }

    for (int p = 0; p < num_pairs; ++p) {
      DistinguishingPair pair;
      for (const z3::expr& v : s1_vars[p]) {
        pair.preferred_by_a.metrics.push_back(value_of(model, v));
      }
      for (const z3::expr& v : s2_vars[p]) {
        pair.preferred_by_b.metrics.push_back(value_of(model, v));
      }
      res.pairs.push_back(std::move(pair));
    }
    return res;
  }
  util::log(util::LogLevel::kWarn, "Z3Finder: viability blocking budget exhausted");
  { FinderResult res; res.status = FinderStatus::kUnknown; return res; }
}

std::optional<sketch::HoleAssignment> Z3Finder::find_consistent(
    const pref::PreferenceGraph& graph) {
  z3::context ctx;
  z3::solver solver = make_solver(ctx, config_.timeout_ms);
  const std::vector<z3::expr> holes = make_hole_vars(ctx, sketch_, "h_");
  solver.add(hole_domain_constraint(ctx, sketch_, holes));
  add_graph_constraints(ctx, solver, sketch_, graph, holes,
                        config_.tie_tolerance + 1e-9);

  for (int attempt = 0; attempt < kMaxViabilityBlocks; ++attempt) {
    ++query_count_;
    log_query(solver, "consistent");
    if (timed_check(obs_, ctx, solver, config_.timeout_ms, "consistent",
                    query_count_, injector_.get(),
                    config_.retry) != z3::sat) {
      return std::nullopt;
    }
    const z3::model model = solver.get_model();
    sketch::HoleAssignment a;
    for (std::size_t i = 0; i < holes.size(); ++i) {
      a.index.push_back(sketch_.holes()[i].nearest_index(value_of(model, holes[i])));
    }
    if (!viability_.concrete || viability_.concrete(sketch_.hole_values(a))) {
      return a;
    }
    z3::expr same = ctx.bool_val(true);
    const std::vector<double> vals = sketch_.hole_values(a);
    for (std::size_t i = 0; i < holes.size(); ++i) {
      same = same && (holes[i] == real_of_double(ctx, vals[i]));
    }
    solver.add(!same);
  }
  util::log(util::LogLevel::kWarn, "Z3Finder: viability blocking budget exhausted");
  return std::nullopt;
}

std::string Z3Finder::save_state() const {
  std::ostringstream os;
  os << "z3finder 1\nqueries " << query_count_ << "\nfaults "
     << (injector_ != nullptr ? 1 : 0) << '\n';
  if (injector_ != nullptr) os << injector_->save_state();
  return os.str();
}

void Z3Finder::restore_state(const std::string& state) {
  const auto bad = [](const char* why) {
    throw std::invalid_argument(std::string("Z3Finder::restore_state: ") + why);
  };
  std::istringstream in(state);
  std::string tag;
  int version = 0;
  if (!(in >> tag >> version) || tag != "z3finder") bad("malformed header");
  if (version != 1) bad("unsupported version");
  long queries = 0;
  if (!(in >> tag >> queries) || tag != "queries") bad("malformed counter");
  int had_injector = 0;
  if (!(in >> tag >> had_injector) || tag != "faults") bad("malformed flag");
  if ((had_injector != 0) != (injector_ != nullptr)) {
    bad("fault injector presence mismatch (configure the same FaultPlan "
        "before restoring)");
  }
  if (injector_ != nullptr) {
    in.ignore();  // newline before the injector's own two lines
    std::string counters, rng;
    if (!std::getline(in, counters) || !std::getline(in, rng)) {
      bad("truncated injector state");
    }
    injector_->restore_state(counters + '\n' + rng + '\n');
  }
  query_count_ = queries;
}

}  // namespace compsynth::solver
