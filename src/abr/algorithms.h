// Standard ABR policies (the state of the art the paper's §6.2 references).
#pragma once

#include <cstddef>

#include "abr/simulator.h"

namespace compsynth::abr {

/// Always streams one fixed rung (debug/baseline).
class FixedAbr final : public AbrAlgorithm {
 public:
  explicit FixedAbr(std::size_t rung) : rung_(rung) {}
  std::size_t choose(const AbrObservation&, const Video& video) override;
  const char* name() const override { return "fixed"; }

 private:
  std::size_t rung_;
};

/// Rate-based: highest rung below safety * harmonic mean of the last k
/// observed download throughputs (the classic throughput-rule).
class RateBasedAbr final : public AbrAlgorithm {
 public:
  explicit RateBasedAbr(double safety = 0.9, std::size_t window = 5)
      : safety_(safety), window_(window) {}
  std::size_t choose(const AbrObservation& obs, const Video& video) override;
  const char* name() const override { return "rate"; }

 private:
  double safety_;
  std::size_t window_;
};

/// Buffer-based (BBA-0): linear map from buffer occupancy to the ladder
/// between a reservoir and a cushion.
class BufferBasedAbr final : public AbrAlgorithm {
 public:
  BufferBasedAbr(double reservoir_seconds = 5, double cushion_seconds = 20)
      : reservoir_(reservoir_seconds), cushion_(cushion_seconds) {}
  std::size_t choose(const AbrObservation& obs, const Video& video) override;
  const char* name() const override { return "buffer"; }

 private:
  double reservoir_;
  double cushion_;
};

/// MPC-lite: greedy one-step lookahead that scores each rung with a linear
/// QoE estimate (bitrate - rebuffer-risk - switch penalty) under the
/// harmonic-mean bandwidth prediction. The linear weights are exactly the
/// kind of ad-hoc composite the paper argues should be *learned* instead.
class HybridAbr final : public AbrAlgorithm {
 public:
  HybridAbr(double rebuffer_weight = 4.0, double switch_weight = 1.0)
      : rebuffer_weight_(rebuffer_weight), switch_weight_(switch_weight) {}
  std::size_t choose(const AbrObservation& obs, const Video& video) override;
  const char* name() const override { return "hybrid"; }

 private:
  double rebuffer_weight_;
  double switch_weight_;
};

/// BOLA-BASIC (Spiteri et al.): a Lyapunov-drift controller that needs no
/// bandwidth prediction at all. Each chunk picks the rung maximizing
///   (V * (utility_r + gamma) - Q) / size_r
/// where utility_r = ln(size_r / size_min), Q is the buffer level in chunks,
/// V and gamma derive from the buffer target. Buffer-only control like BBA,
/// but with a principled objective.
class BolaAbr final : public AbrAlgorithm {
 public:
  /// `buffer_target_seconds` sets how much buffer BOLA tries to hold.
  explicit BolaAbr(double buffer_target_seconds = 15);
  std::size_t choose(const AbrObservation& obs, const Video& video) override;
  const char* name() const override { return "bola"; }

 private:
  double buffer_target_;
};

/// Harmonic mean of the last `window` entries (0 when empty).
double harmonic_mean_tail(const std::vector<double>& xs, std::size_t window);

}  // namespace compsynth::abr
