#include "session/snapshot.h"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <utility>

#include "obs/trace.h"
#include "pref/serialize.h"
#include "util/checksum.h"

namespace compsynth::session {

namespace {

std::string render_double(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

[[noreturn]] void bad(const std::string& what) { throw SnapshotError(what); }

void append_section(std::string& payload, const char* name,
                    const std::string& body) {
  payload += '@';
  payload += name;
  payload += ' ';
  payload += std::to_string(body.size());
  payload += '\n';
  payload += body;
  payload += '\n';
}

// The @synth section: loop counters + transcript, line oriented. The graph
// tolerance flag rides here so decode knows which mode to deserialize the
// @graph section in (it precedes @graph in the payload).
std::string encode_synth_section(const synth::SessionState& st) {
  std::ostringstream os;
  os << "tolerant " << (st.graph.allows_inconsistent() ? 1 : 0) << '\n'
     << "iterations " << st.iterations << '\n'
     << "interactions " << st.interactions << '\n'
     << "repair_rounds " << st.repair_rounds << '\n'
     << "total_solver_seconds " << render_double(st.total_solver_seconds)
     << '\n'
     << "oracle_comparisons " << st.oracle_comparisons << '\n'
     << "transcript " << st.transcript.size() << '\n';
  for (const synth::IterationRecord& r : st.transcript) {
    os << "it " << r.index << ' ' << render_double(r.solver_seconds) << ' '
       << r.pairs_presented << ' ' << r.edges_added << ' ' << r.ties_added
       << '\n';
  }
  return os.str();
}

long read_counter(std::istream& in, const char* tag) {
  std::string seen;
  long value = 0;
  if (!(in >> seen >> value) || seen != tag) {
    bad(std::string("@synth section: expected '") + tag + "' counter");
  }
  return value;
}

// Fills everything but the graph (which needs the tolerance flag first);
// returns that flag.
bool decode_synth_section(const std::string& body, synth::SessionState& st) {
  std::istringstream in(body);
  const bool tolerant = read_counter(in, "tolerant") != 0;
  st.iterations = static_cast<int>(read_counter(in, "iterations"));
  st.interactions = static_cast<int>(read_counter(in, "interactions"));
  st.repair_rounds = static_cast<int>(read_counter(in, "repair_rounds"));
  std::string seen;
  if (!(in >> seen >> st.total_solver_seconds) ||
      seen != "total_solver_seconds") {
    bad("@synth section: expected 'total_solver_seconds'");
  }
  st.oracle_comparisons = read_counter(in, "oracle_comparisons");
  const long records = read_counter(in, "transcript");
  if (records < 0) bad("@synth section: negative transcript count");
  st.transcript.clear();
  st.transcript.reserve(static_cast<std::size_t>(records));
  for (long i = 0; i < records; ++i) {
    synth::IterationRecord r;
    if (!(in >> seen >> r.index >> r.solver_seconds >> r.pairs_presented >>
          r.edges_added >> r.ties_added) ||
        seen != "it") {
      bad("@synth section: malformed transcript record");
    }
    st.transcript.push_back(r);
  }
  return tolerant;
}

// Reads one "@name <bytes>" section at `pos`, advancing it. The expected
// order is fixed; a missing or out-of-order section is a hard error.
std::string take_section(const std::string& payload, std::size_t& pos,
                         const char* name) {
  const std::size_t eol = payload.find('\n', pos);
  if (eol == std::string::npos) bad("truncated payload (no section header)");
  const std::string header = payload.substr(pos, eol - pos);
  std::istringstream hs(header);
  std::string seen;
  long long bytes = -1;
  if (!(hs >> seen >> bytes) || seen != std::string("@") + name || bytes < 0) {
    bad("expected section '@" + std::string(name) + "', found '" + header +
        "'");
  }
  pos = eol + 1;
  if (pos + static_cast<std::size_t>(bytes) > payload.size()) {
    bad("section '@" + std::string(name) + "' overruns the payload");
  }
  std::string body = payload.substr(pos, static_cast<std::size_t>(bytes));
  pos += static_cast<std::size_t>(bytes);
  if (pos >= payload.size() || payload[pos] != '\n') {
    bad("section '@" + std::string(name) + "' is not newline-terminated");
  }
  ++pos;
  return body;
}

std::string manifest_string(const obs::JsonObject& manifest, const char* key) {
  const auto it = manifest.find(key);
  if (it == manifest.end() || it->second.kind != obs::JsonValue::Kind::kString) {
    bad(std::string("manifest: missing string field '") + key + "'");
  }
  return it->second.str;
}

double manifest_number(const obs::JsonObject& manifest, const char* key) {
  const auto it = manifest.find(key);
  if (it == manifest.end() || it->second.kind != obs::JsonValue::Kind::kNumber) {
    bad(std::string("manifest: missing numeric field '") + key + "'");
  }
  return it->second.num;
}

}  // namespace

std::string encode(const Snapshot& snap) {
  std::string payload;
  append_section(payload, "synth", encode_synth_section(snap.state));
  append_section(payload, "graph", pref::serialize(snap.state.graph));
  append_section(payload, "finder", snap.state.finder_state);
  append_section(payload, "oracle", snap.state.oracle_state);
  append_section(payload, "cache", snap.state.cache_state);

  std::ostringstream os;
  os << kSnapshotMagic << ' ' << kSnapshotFormatVersion << '\n'
     << "{\"v\":" << kSnapshotFormatVersion << ",\"sketch\":\""
     << obs::json_escape(snap.meta.sketch) << "\",\"backend\":\""
     << obs::json_escape(snap.meta.backend) << "\",\"seed\":" << snap.meta.seed
     << ",\"iteration\":" << snap.meta.iteration << ",\"run\":\""
     << obs::json_escape(snap.meta.run_id)
     << "\",\"payload_bytes\":" << payload.size() << ",\"payload_crc32\":\""
     << util::crc32_hex(util::crc32(payload)) << "\"}\n"
     << payload;
  return os.str();
}

Snapshot decode(const std::string& bytes) {
  // Line 1: magic + version.
  const std::size_t magic_eol = bytes.find('\n');
  if (magic_eol == std::string::npos) bad("missing magic line");
  {
    std::istringstream ms(bytes.substr(0, magic_eol));
    std::string magic;
    int version = 0;
    if (!(ms >> magic >> version) || magic != kSnapshotMagic) {
      bad("not a compsynth snapshot (bad magic)");
    }
    if (version != 1 && version != kSnapshotFormatVersion) {
      bad("snapshot format version " + std::to_string(version) +
          " is not supported by this build (supported: 1.." +
          std::to_string(kSnapshotFormatVersion) +
          "); it was written by a newer compsynth");
    }
  }

  // Line 2: flat-JSON manifest.
  const std::size_t manifest_eol = bytes.find('\n', magic_eol + 1);
  if (manifest_eol == std::string::npos) bad("missing manifest line");
  const auto manifest = obs::parse_flat_json(
      bytes.substr(magic_eol + 1, manifest_eol - magic_eol - 1));
  if (!manifest) bad("manifest line is not valid flat JSON");

  Snapshot snap;
  snap.meta.version = static_cast<int>(manifest_number(*manifest, "v"));
  snap.meta.sketch = manifest_string(*manifest, "sketch");
  snap.meta.backend = manifest_string(*manifest, "backend");
  snap.meta.seed =
      static_cast<std::uint64_t>(manifest_number(*manifest, "seed"));
  snap.meta.iteration = static_cast<int>(manifest_number(*manifest, "iteration"));
  snap.meta.run_id = manifest_string(*manifest, "run");

  // Integrity: declared length first (catches truncation cheaply), then the
  // CRC over the payload (catches torn/garbled middles).
  const auto declared =
      static_cast<std::size_t>(manifest_number(*manifest, "payload_bytes"));
  const std::string payload = bytes.substr(manifest_eol + 1);
  if (payload.size() != declared) {
    bad("payload is " + std::to_string(payload.size()) +
        " bytes, manifest declares " + std::to_string(declared) +
        " (torn write?)");
  }
  if (util::crc32_hex(util::crc32(payload)) !=
      manifest_string(*manifest, "payload_crc32")) {
    bad("payload CRC mismatch (torn or corrupted write)");
  }

  std::size_t pos = 0;
  const std::string synth_body = take_section(payload, pos, "synth");
  const std::string graph_body = take_section(payload, pos, "graph");
  snap.state.finder_state = take_section(payload, pos, "finder");
  snap.state.oracle_state = take_section(payload, pos, "oracle");
  // v1 snapshots predate the solver cache and simply lack the section;
  // resuming with an empty (cold) cache is correctness-neutral.
  if (snap.meta.version >= 2) {
    snap.state.cache_state = take_section(payload, pos, "cache");
  }
  if (pos != payload.size()) bad("trailing bytes after the last section");

  const bool tolerant = decode_synth_section(synth_body, snap.state);
  try {
    snap.state.graph = pref::deserialize(graph_body, tolerant);
  } catch (const pref::SerializeError& e) {
    bad(std::string("@graph section: ") + e.what());
  }
  return snap;
}

void write_file(const Snapshot& snap, const std::string& path) {
  const std::string bytes = encode(snap);
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) bad("cannot open '" + tmp + "' for writing");
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    out.flush();
    if (!out) bad("short write to '" + tmp + "'");
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    std::filesystem::remove(tmp, ec);
    bad("cannot rename '" + tmp + "' over '" + path + "'");
  }
}

Snapshot read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) bad("cannot open '" + path + "'");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (in.bad()) bad("I/O error reading '" + path + "'");
  try {
    return decode(buffer.str());
  } catch (const SnapshotError& e) {
    bad("'" + path + "': " + e.what());
  }
}

}  // namespace compsynth::session
