file(REMOVE_RECURSE
  "libcompsynth_synth.a"
)
