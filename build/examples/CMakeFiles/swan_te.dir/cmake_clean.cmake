file(REMOVE_RECURSE
  "CMakeFiles/swan_te.dir/swan_te.cpp.o"
  "CMakeFiles/swan_te.dir/swan_te.cpp.o.d"
  "swan_te"
  "swan_te.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/swan_te.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
