// The paper's ideal user: answers by evaluating a latent target objective.
#pragma once

#include <span>
#include <vector>

#include "oracle/oracle.h"
#include "sketch/ast.h"

namespace compsynth::oracle {

/// Evaluates every scenario with a fixed target function (the ground truth
/// of Fig. 2b) and prefers the higher value. Differences within
/// `tie_tolerance` are reported as ties — this must match the synthesizer's
/// FinderConfig::tie_tolerance for the loop-progress guarantee to hold.
class GroundTruthOracle final : public Oracle {
 public:
  /// Target defined by a hole assignment of `sketch`.
  GroundTruthOracle(sketch::Sketch sketch, const sketch::HoleAssignment& target,
                    double tie_tolerance = 1e-4);

  /// Target defined by an arbitrary expression over the sketch's metrics
  /// (may lie outside the sketch's candidate space — used to study behaviour
  /// when the user's intent is not expressible).
  GroundTruthOracle(sketch::Sketch sketch, sketch::ExprPtr target_body,
                    double tie_tolerance = 1e-4);

  /// The latent objective value of a scenario (test/diagnostic access).
  double target_value(const pref::Scenario& s) const;

 protected:
  Preference do_compare(const pref::Scenario& a, const pref::Scenario& b) override;
  RankingResponse do_rank(std::span<const pref::Scenario> scenarios) override;

 private:
  sketch::Sketch sketch_;
  sketch::ExprPtr target_body_;        // used when hole_values_ empty
  std::vector<double> hole_values_;    // used otherwise
  double tie_tolerance_;
};

}  // namespace compsynth::oracle
