file(REMOVE_RECURSE
  "CMakeFiles/test_pref.dir/pref_test.cpp.o"
  "CMakeFiles/test_pref.dir/pref_test.cpp.o.d"
  "test_pref"
  "test_pref.pdb"
  "test_pref[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pref.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
