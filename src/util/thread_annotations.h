// Clang thread-safety-analysis attribute macros.
//
// Under Clang with -Wthread-safety (the COMPSYNTH_THREAD_SAFETY CMake
// option, default ON when the compiler supports it) these expand to the
// attributes that let the compiler prove, per translation unit, that every
// GUARDED_BY field is only touched with its mutex held and that every
// ACQUIRE has a matching RELEASE on every path. On GCC/MSVC they expand to
// nothing — the annotations are free documentation there, and the Clang CI
// leg (scripts/ci_full.sh "thread-safety build" stage) is what enforces
// them. docs/CONCURRENCY.md describes the locking model the annotations
// encode; src/util/sync.h provides the annotated Mutex/MutexLock/CondVar
// primitives the rest of the tree locks with.
//
// The macro set and spellings follow the Clang documentation's mutex.h
// reference header (capability-style names): GUARDED_BY / PT_GUARDED_BY on
// data members, REQUIRES / EXCLUDES on functions that expect a lock held /
// not held, ACQUIRE / RELEASE / TRY_ACQUIRE on lock primitives, CAPABILITY /
// SCOPED_CAPABILITY on the primitives' types, and NO_THREAD_SAFETY_ANALYSIS
// as the per-function escape hatch (every use must carry a written
// justification; scripts/check_static.sh counts them).
#pragma once

#if defined(__clang__) && !defined(SWIG)
#define COMPSYNTH_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define COMPSYNTH_THREAD_ANNOTATION(x)  // no-op outside Clang
#endif

/// Declares that a type is a synchronization capability (a mutex).
#define CAPABILITY(x) COMPSYNTH_THREAD_ANNOTATION(capability(x))

/// Declares an RAII type that acquires a capability in its constructor and
/// releases it in its destructor.
#define SCOPED_CAPABILITY COMPSYNTH_THREAD_ANNOTATION(scoped_lockable)

/// The annotated data member may only be read or written while holding `x`.
#define GUARDED_BY(x) COMPSYNTH_THREAD_ANNOTATION(guarded_by(x))

/// The annotated pointer's *pointee* may only be accessed while holding `x`
/// (the pointer itself is unguarded).
#define PT_GUARDED_BY(x) COMPSYNTH_THREAD_ANNOTATION(pt_guarded_by(x))

/// The function may only be called with the listed capabilities held; it
/// neither acquires nor releases them.
#define REQUIRES(...) \
  COMPSYNTH_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/// The function may only be called with the listed capabilities held in
/// shared (reader) mode.
#define REQUIRES_SHARED(...) \
  COMPSYNTH_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))

/// The function must NOT be called with the listed capabilities held (it
/// acquires them itself; calling with them held would deadlock).
#define EXCLUDES(...) COMPSYNTH_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// The function acquires the listed capabilities (or `this` when empty) and
/// holds them on return.
#define ACQUIRE(...) \
  COMPSYNTH_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/// The function releases the listed capabilities (or `this` when empty).
#define RELEASE(...) \
  COMPSYNTH_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/// The function attempts the acquisition; the first argument is the return
/// value meaning success.
#define TRY_ACQUIRE(...) \
  COMPSYNTH_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

/// Asserts (without acquiring) that the calling thread already holds the
/// capability — for code reached only from annotated callers the analysis
/// cannot see through (callbacks, std::function).
#define ASSERT_CAPABILITY(x) \
  COMPSYNTH_THREAD_ANNOTATION(assert_capability(x))

/// Documents lock-ordering constraints; Clang checks declared orderings.
#define ACQUIRED_BEFORE(...) \
  COMPSYNTH_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))
#define ACQUIRED_AFTER(...) \
  COMPSYNTH_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))

/// The function returns a reference to the named capability.
#define RETURN_CAPABILITY(x) COMPSYNTH_THREAD_ANNOTATION(lock_returned(x))

/// Disables the analysis for one function. Escape hatch of last resort:
/// every use must carry a comment justifying why the locking is correct but
/// not expressible (scripts/check_static.sh tallies uses).
#define NO_THREAD_SAFETY_ANALYSIS \
  COMPSYNTH_THREAD_ANNOTATION(no_thread_safety_analysis)
