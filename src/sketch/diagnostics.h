// Structured diagnostics for the sketch static analyzer (sketch/analyze.h).
//
// Every finding carries a stable code (rendered as "A<nnn>", the catalogue
// lives in docs/ANALYSIS.md), a severity, a 1-based source position (0/0
// when the offending node was built programmatically rather than parsed)
// and a human-readable message. Errors describe sketches that either cannot
// be constructed (`Sketch`'s validation would throw) or whose evaluation is
// guaranteed to fail; warnings describe suspicious-but-runnable constructs;
// notes are advisory.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace compsynth::sketch {

enum class Severity { kError, kWarning, kNote };

/// Stable diagnostic codes. Grouped by hundreds: A0xx front-end failures,
/// A1xx numeric hazards, A2xx choose/selector problems, A3xx dead or
/// degenerate structure. Codes are part of the tool contract (compsynth_lint
/// prints them and the lint corpus asserts them); never renumber.
enum class DiagCode {
  kParseError = 1,          // A001: source does not parse
  kTypeError = 2,           // A002: ill-typed body / invalid declarations
  kDivisionByZero = 101,    // A101: divisor range contains (or is) zero
  kPossibleNan = 102,       // A102: operation may produce NaN
  kPossibleOverflow = 103,  // A103: operation may overflow to +/-inf
  kDeadChooseArm = 201,     // A201: alternative no selector value reaches
  kOverlappingArms = 202,   // A202: structurally identical alternatives
  kSelectorGap = 203,       // A203: selector value with no alternative
  kNonCanonicalSelector = 204,  // A204: selector grid is not grid(0, 1, N)
  kUnusedHole = 301,        // A301: declared hole never read by the body
  kUnusedMetric = 302,      // A302: declared metric never read by the body
  kDegenerateGrid = 303,    // A303: hole grid cannot change the output
  kConstantFoldable = 304,  // A304: subtree evaluates to a constant
};

/// "A101"-style rendering of a code.
std::string diag_code_name(DiagCode code);

/// "error" / "warning" / "note".
std::string_view severity_name(Severity severity);

struct Diagnostic {
  DiagCode code = DiagCode::kParseError;
  Severity severity = Severity::kError;
  std::uint32_t line = 0;    // 1-based; 0 = no source position
  std::uint32_t column = 0;  // 1-based; 0 = no source position
  std::string message;
};

/// One-line rendering: "<file>:<line>:<col>: <severity> A<nnn>: <message>".
/// `file` may be empty; position is omitted when unknown.
std::string render(const Diagnostic& d, std::string_view file = {});

/// True if any diagnostic has error severity.
bool has_errors(std::span<const Diagnostic> diagnostics);

/// Number of diagnostics at the given severity.
std::size_t count_severity(std::span<const Diagnostic> diagnostics,
                           Severity severity);

}  // namespace compsynth::sketch
