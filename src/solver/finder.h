// Candidate finders: the solver back-ends of the comparative synthesizer.
//
// A finder answers the central query of paper §4.2: given the preference
// graph G, find two viable candidate objective functions fa, fb that both
// honor every recorded preference yet *disagree* on the ordering of some
// fresh pair of in-range scenarios. When no such pair of candidates exists
// (the paper's UNSAT case), all G-consistent candidates induce the same
// ranking and synthesis has converged.
//
// Two implementations exist: Z3Finder (solver/z3_finder.h) encodes the query
// to Z3 exactly as the paper describes; GridFinder (solver/grid_finder.h)
// maintains an explicit version space over the finite hole grid and serves
// as a solver-free baseline and differential-testing partner.
#pragma once

#include <functional>
#include <optional>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "pref/graph.h"
#include "pref/scenario.h"
#include "sketch/ast.h"
#include "util/fault.h"

namespace compsynth::obs {
struct RunContext;
}

namespace compsynth::solver {

/// Margins controlling strictness (see DESIGN.md §6 and the loop-progress
/// argument in pref/graph.h). Invariant: distinguish_margin > tie_tolerance.
struct FinderConfig {
  /// Scenario pairs whose objective values differ by at most this much are
  /// considered indistinguishable; tie constraints use this bound (plus a
  /// small slack for double rounding).
  double tie_tolerance = 1e-4;

  /// Distinguishing scenarios must separate the two candidates by at least
  /// this margin, which must exceed tie_tolerance so that every oracle
  /// answer eliminates at least one candidate.
  double distinguish_margin = 4e-4;

  /// Per-query soft timeout for SMT-backed finders (0 = none).
  unsigned timeout_ms = 120000;

  /// Keep the SMT sketch+G encoding alive across queries (push/pop),
  /// asserting only the preference graph's new constraints each round
  /// instead of rebuilding the context. Transparent to verdicts and models
  /// (docs/SOLVER.md §Incremental); off = rebuild from scratch per query.
  /// GridFinder ignores this (its version space is inherently incremental).
  bool incremental = true;

  /// Discharge provably-UNSAT queries with the static analyzer's interval
  /// bounds before invoking the solver (docs/SOLVER.md §Pre-checks).
  /// Automatically inert when the sketch's analysis cannot certify clean
  /// finite bounds. GridFinder ignores this (it has analysis_pruning).
  bool interval_precheck = true;

  /// Retry policy for transient back-end failures (an injected or real
  /// solver hiccup): the query is re-issued with backoff up to max_attempts
  /// times, each fault/retry surfaced as trace events and solver metrics.
  /// After the budget is exhausted the finder reports kUnknown rather than
  /// aborting the session.
  util::RetryPolicy retry;
};

/// Optional domain-specific viability check ("Viable(f)" in the paper's
/// query; the SWAN case study skips it). `concrete` filters hole-value
/// vectors; SMT back-ends enforce it via model blocking. Empty functions
/// mean "always viable".
struct Viability {
  std::function<bool(std::span<const double>)> concrete;
};

/// Where distinguishing scenarios may live. The paper's ClosedInRange is the
/// metric box built into every sketch; `constraint` optionally narrows it to
/// an arbitrary region given as a boolean DSL expression over the metrics
/// (holes are not allowed) — e.g. the achievable throughput/latency frontier
/// of a concrete network, parsed with sketch::parse_expr. Null = box only.
struct ScenarioDomain {
  sketch::ExprPtr constraint;
};

/// Validates a scenario-domain constraint against a sketch (boolean, metrics
/// only). Throws sketch::TypeError / std::invalid_argument on violation.
void validate_domain(const sketch::Sketch& sketch, const ScenarioDomain& domain);

/// True when `metrics` lies in the sketch box and satisfies the constraint.
bool domain_contains(const sketch::Sketch& sketch, const ScenarioDomain& domain,
                     std::span<const double> metrics);

/// One distinguishing scenario pair: candidate A ranks `preferred_by_a`
/// strictly above `preferred_by_b`; candidate B ranks them the other way.
struct DistinguishingPair {
  pref::Scenario preferred_by_a;
  pref::Scenario preferred_by_b;
};

enum class FinderStatus {
  kFound,          // two disagreeing candidates + pair(s) returned
  kUniqueRanking,  // UNSAT: all consistent candidates rank identically
  kNoCandidate,    // no candidate is consistent with G (user contradicted
                   // the sketch, or noise corrupted G)
  kUnknown,        // back-end gave up (timeout / incompleteness)
};

struct FinderResult {
  FinderStatus status = FinderStatus::kUnknown;
  sketch::HoleAssignment candidate_a;
  sketch::HoleAssignment candidate_b;
  /// Non-empty iff status == kFound; up to the requested number of pairs
  /// (an implementation may return fewer if it can only separate on fewer).
  std::vector<DistinguishingPair> pairs;
};

/// Abstract finder interface. Implementations are bound to one sketch at
/// construction and must be usable for many queries over a growing graph.
class CandidateFinder {
 public:
  virtual ~CandidateFinder() = default;

  CandidateFinder(const CandidateFinder&) = delete;
  CandidateFinder& operator=(const CandidateFinder&) = delete;

  /// The paper's distinguishing query. `num_pairs` >= 1 requests several
  /// pairs per interaction (the Fig. 4 experiment).
  virtual FinderResult find_distinguishing(const pref::PreferenceGraph& graph,
                                           int num_pairs) = 0;

  /// Any single candidate consistent with G (used to extract the final
  /// objective once the ranking is unique). nullopt when none exists.
  virtual std::optional<sketch::HoleAssignment> find_consistent(
      const pref::PreferenceGraph& graph) = 0;

  /// Observability: when set (non-owning; may be null), back-ends emit
  /// per-query trace events ("z3_query", "grid_sync", "pair_search") and
  /// record solver.* metrics. The synthesizer wires this up per run.
  /// Virtual so composite finders (solver/portfolio_finder.h) can forward
  /// the context to their legs.
  virtual void set_run_context(const obs::RunContext* ctx) { obs_ = ctx; }

  /// Durable-session persistence (docs/PERSISTENCE.md): back-ends serialize
  /// whatever internal state a resumed run needs to continue the identical
  /// query sequence — RNG streams, version-space membership, incremental
  /// cursors. The blob is opaque to callers; restore_state expects a finder
  /// constructed over the same sketch and configuration and throws
  /// std::invalid_argument on malformed or mismatched input. The defaults
  /// are for stateless finders: an empty blob, accepted back verbatim.
  virtual std::string save_state() const { return {}; }
  virtual void restore_state(const std::string& state) {
    if (!state.empty()) {
      throw std::invalid_argument(
          "CandidateFinder::restore_state: unexpected state for a stateless "
          "finder");
    }
  }

 protected:
  CandidateFinder() = default;

  const obs::RunContext* obs_ = nullptr;
};

}  // namespace compsynth::solver
