# Empty dependencies file for compsynth_cli.
# This may be replaced when dependencies are built.
