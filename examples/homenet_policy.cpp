// Configuring a home network from preferences (paper §6.2, "Configuring
// home networks").
//
// Nobody configures per-class weights on their home router. This example
// learns a household's bandwidth-sharing objective from simple comparisons
// ("evening A: calls crisp but the backup crawled — evening B: backup flew
// but the call stuttered — which was better?") and uses it to pick a
// sharing policy.
//
// Build & run:  ./build/examples/homenet_policy
#include <cstdio>

#include "homenet/policy.h"
#include "oracle/ground_truth.h"
#include "sketch/library.h"
#include "sketch/printer.h"
#include "synth/synthesizer.h"
#include "util/rng.h"
#include "util/table.h"

int main() {
  using namespace compsynth;

  // 1. An evening household and the candidate policies.
  util::Rng rng(808);
  const std::vector<homenet::AppDemand> apps = homenet::random_household(rng, 8);
  const double uplink_mbps = 60;
  std::vector<homenet::Policy> policies = homenet::standard_policies();

  util::Table table({"policy", "interactive (Mbps)", "streaming (Mbps)",
                     "bulk (Mbps)"});
  for (const auto& p : policies) {
    const homenet::ClassAllocation a = homenet::allocate(apps, uplink_mbps, p);
    table.add_row({p.label, util::format_number(a.rate_mbps[0]),
                   util::format_number(a.rate_mbps[1]),
                   util::format_number(a.rate_mbps[2])});
  }
  std::printf("Candidate policies on a %.0f Mbps uplink:\n%s\n", uplink_mbps,
              table.to_string().c_str());

  // 2. The household's latent objective: video calls must get 15 Mbps;
  //    beyond that, streaming matters a little more than bulk.
  const sketch::Sketch& sk = sketch::homenet_sketch();
  sketch::HoleAssignment latent;
  latent.index = {sk.holes()[0].nearest_index(15),  // min_interactive
                  sk.holes()[1].nearest_index(3),   // w_streaming
                  sk.holes()[2].nearest_index(1)};  // w_bulk

  synth::SynthesisConfig config;
  config.seed = 5;
  synth::Synthesizer synthesizer = synth::make_grid_synthesizer(sk, config);
  oracle::GroundTruthOracle household(sk, latent, config.finder.tie_tolerance);
  const synth::SynthesisResult learned = synthesizer.run(household);
  if (!learned.objective) {
    std::printf("synthesis failed\n");
    return 1;
  }
  std::printf("Learned household objective after %d interactions:\n  %s\n\n",
              learned.interactions,
              sketch::print_instantiated(sk, *learned.objective).c_str());

  // 3. Pick the policy.
  const std::size_t picked = homenet::pick_best(sk, *learned.objective, apps,
                                                uplink_mbps, policies);
  const std::size_t truth =
      homenet::pick_best(sk, latent, apps, uplink_mbps, policies);
  std::printf("learned objective picks:   %s\n", policies[picked].label.c_str());
  std::printf("latent household would pick: %s\n", policies[truth].label.c_str());
  std::printf("agreement: %s\n", picked == truth ? "YES" : "NO");
  return picked == truth ? 0 : 1;
}
