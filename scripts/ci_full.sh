#!/usr/bin/env bash
# Full local CI sweep, in dependency order:
#   1. configure + build the main tree
#   2. the complete ctest suite (unit, integration, differential, lint
#      gates, docs_check, docs_blocks, session kill/resume end to end)
#   3. the synthesis-service end-to-end smokes, re-run explicitly so a
#      daemon/protocol regression is named in the CI log even when the
#      suite above was filtered (serve_smoke drives every protocol verb
#      and error code through a live daemon; serve_kill_resume kill -9s
#      the daemon mid-run and diffs against an uninterrupted reference)
#   4. the distributed-sync end-to-end stage (test_dist differential +
#      fault-injection suite; dist_kill_worker kill -9s a worker mid-sync)
#   5. the standalone docs checkers (links + code blocks + README index
#      completeness, which gates docs/SERVICE.md and friends)
#   6. the concurrency-convention static pass (scripts/check_static.sh)
#   7. the thread-safety analysis build: with clang++ on PATH, a full
#      -Wthread-safety -Werror=thread-safety configure+build in its own
#      build dir (plus the negative-control ctest); otherwise a named skip
#   8. the address+undefined sanitizer build/test sweep
#   9. the ThreadSanitizer build/test sweep (scripts/check_tsan.sh) over
#      the concurrent paths, including the seeded stress suite
#
# Usage:
#   scripts/ci_full.sh                 # everything
#   COMPSYNTH_SKIP_SANITIZERS=1 scripts/ci_full.sh   # fast pass, no
#                                      # asan/ubsan/tsan rebuilds
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
build="${BUILD_DIR:-$repo/build}"

echo "== configure + build ($build) =="
cmake -B "$build" -S "$repo" >/dev/null
cmake --build "$build" -j "$(nproc)"

echo "== test suite =="
ctest --test-dir "$build" -j "$(nproc)" --output-on-failure

echo "== synthesis service end to end =="
ctest --test-dir "$build" -R '^serve_(smoke|kill_resume)$' --output-on-failure

echo "== distributed sync end to end =="
# The coordinator/worker fault-tolerance path, re-run explicitly: test_dist
# is the differential + fault-injection suite, dist_kill_worker kill -9s a
# live worker mid-sync and diffs against a pure local run.
ctest --test-dir "$build" -R '^(test_dist|dist_kill_worker)$' --output-on-failure

echo "== docs: links =="
"$repo/scripts/check_docs_links.sh" "$repo"

echo "== docs: code blocks =="
"$repo/scripts/check_docs_blocks.sh" "$repo" "$build/tools/compsynth_lint"

echo "== static pass: concurrency conventions =="
bash "$repo/scripts/check_static.sh"
bash "$repo/scripts/check_static.sh" --self-test

echo "== thread-safety analysis build =="
if command -v clang++ >/dev/null 2>&1; then
  tsbuild="$repo/build-thread-safety"
  cmake -B "$tsbuild" -S "$repo" \
    -DCMAKE_CXX_COMPILER=clang++ \
    -DCOMPSYNTH_THREAD_SAFETY=ON >/dev/null
  cmake --build "$tsbuild" -j "$(nproc)"
  ctest --test-dir "$tsbuild" -R '^thread_safety_negative$' --output-on-failure
else
  echo "thread-safety build skipped (no clang++ on PATH; annotations are"
  echo "inert under this toolchain — scripts/check_static.sh still gates"
  echo "annotation coverage)"
fi

if [ "${COMPSYNTH_SKIP_SANITIZERS:-0}" != "1" ]; then
  echo "== asan + ubsan sweep =="
  "$repo/scripts/check_asan_ubsan.sh"
  echo "== tsan sweep =="
  "$repo/scripts/check_tsan.sh"
else
  echo "== asan/ubsan/tsan sweeps skipped (COMPSYNTH_SKIP_SANITIZERS=1) =="
fi

echo "ci_full: all green"
