// Home-network policy substrate: demand aggregation, water-filling
// allocation (guarantees + weights), scenario projection, policy selection.
#include <gtest/gtest.h>

#include "homenet/policy.h"
#include "sketch/library.h"
#include "util/rng.h"

namespace compsynth::homenet {
namespace {

AppDemand app(TrafficClass c, double mbps) {
  return AppDemand{.device = "d", .traffic_class = c, .demand_mbps = mbps};
}

TEST(ClassDemands, AggregatesPerClass) {
  const std::vector<AppDemand> apps{app(TrafficClass::kInteractive, 3),
                                    app(TrafficClass::kInteractive, 2),
                                    app(TrafficClass::kBulk, 40)};
  const auto d = class_demands(apps);
  EXPECT_DOUBLE_EQ(d[0], 5);
  EXPECT_DOUBLE_EQ(d[1], 0);
  EXPECT_DOUBLE_EQ(d[2], 40);
}

TEST(ClassDemands, RejectsNegativeDemand) {
  const std::vector<AppDemand> apps{app(TrafficClass::kBulk, -1)};
  EXPECT_THROW(class_demands(apps), std::invalid_argument);
}

TEST(Allocate, UnderloadedLinkSatisfiesEveryone) {
  const std::vector<AppDemand> apps{app(TrafficClass::kInteractive, 5),
                                    app(TrafficClass::kStreaming, 10),
                                    app(TrafficClass::kBulk, 20)};
  const ClassAllocation a = allocate(apps, 100, Policy{});
  EXPECT_DOUBLE_EQ(a.rate_mbps[0], 5);
  EXPECT_DOUBLE_EQ(a.rate_mbps[1], 10);
  EXPECT_DOUBLE_EQ(a.rate_mbps[2], 20);
}

TEST(Allocate, EqualWeightsSplitContendedLinkEvenly) {
  const std::vector<AppDemand> apps{app(TrafficClass::kInteractive, 50),
                                    app(TrafficClass::kStreaming, 50),
                                    app(TrafficClass::kBulk, 50)};
  const ClassAllocation a = allocate(apps, 30, Policy{});
  EXPECT_NEAR(a.rate_mbps[0], 10, 1e-9);
  EXPECT_NEAR(a.rate_mbps[1], 10, 1e-9);
  EXPECT_NEAR(a.rate_mbps[2], 10, 1e-9);
}

TEST(Allocate, WeightsSkewShares) {
  const std::vector<AppDemand> apps{app(TrafficClass::kInteractive, 100),
                                    app(TrafficClass::kStreaming, 100),
                                    app(TrafficClass::kBulk, 100)};
  Policy p;
  p.weight[0] = 6;
  p.weight[1] = 3;
  p.weight[2] = 1;
  const ClassAllocation a = allocate(apps, 100, p);
  EXPECT_NEAR(a.rate_mbps[0], 60, 1e-9);
  EXPECT_NEAR(a.rate_mbps[1], 30, 1e-9);
  EXPECT_NEAR(a.rate_mbps[2], 10, 1e-9);
}

TEST(Allocate, SaturatedClassReleasesShareToOthers) {
  // Interactive only wants 4; the rest splits 48/48... weights equal:
  // water level saturates interactive first, remainder split by weight.
  const std::vector<AppDemand> apps{app(TrafficClass::kInteractive, 4),
                                    app(TrafficClass::kStreaming, 100),
                                    app(TrafficClass::kBulk, 100)};
  const ClassAllocation a = allocate(apps, 100, Policy{});
  EXPECT_NEAR(a.rate_mbps[0], 4, 1e-9);
  EXPECT_NEAR(a.rate_mbps[1], 48, 1e-9);
  EXPECT_NEAR(a.rate_mbps[2], 48, 1e-9);
}

TEST(Allocate, GuaranteeGrantsBeforeWeights) {
  const std::vector<AppDemand> apps{app(TrafficClass::kInteractive, 20),
                                    app(TrafficClass::kBulk, 100)};
  Policy p;
  p.weight[0] = 1;
  p.weight[2] = 10;  // bulk would dominate without the guarantee
  p.guarantee_mbps[0] = 15;
  const ClassAllocation a = allocate(apps, 30, p);
  EXPECT_GE(a.rate_mbps[0], 15 - 1e-9);
  EXPECT_NEAR(a.total(), 30, 1e-9);
}

TEST(Allocate, GuaranteeClippedToDemand) {
  const std::vector<AppDemand> apps{app(TrafficClass::kInteractive, 2),
                                    app(TrafficClass::kBulk, 100)};
  Policy p;
  p.guarantee_mbps[0] = 15;
  const ClassAllocation a = allocate(apps, 30, p);
  EXPECT_NEAR(a.rate_mbps[0], 2, 1e-9);   // only wants 2
  EXPECT_NEAR(a.rate_mbps[2], 28, 1e-9);
}

TEST(Allocate, ZeroWeightClassOnlyGetsGuarantee) {
  const std::vector<AppDemand> apps{app(TrafficClass::kInteractive, 50),
                                    app(TrafficClass::kBulk, 50)};
  Policy p;
  p.weight[2] = 0;
  p.guarantee_mbps[2] = 5;
  const ClassAllocation a = allocate(apps, 40, p);
  EXPECT_NEAR(a.rate_mbps[2], 5, 1e-9);
  EXPECT_NEAR(a.rate_mbps[0], 35, 1e-9);
}

TEST(Allocate, NeverExceedsCapacityOrDemand) {
  util::Rng rng(21);
  for (int i = 0; i < 20; ++i) {
    const auto apps = random_household(rng, 6);
    const auto demands = class_demands(apps);
    for (const Policy& p : standard_policies()) {
      const ClassAllocation a = allocate(apps, 50, p);
      EXPECT_LE(a.total(), 50 + 1e-6);
      for (std::size_t c = 0; c < kClassCount; ++c) {
        EXPECT_LE(a.rate_mbps[c], demands[c] + 1e-9);
        EXPECT_GE(a.rate_mbps[c], -1e-12);
      }
    }
  }
}

TEST(Allocate, RejectsBadInputs) {
  const std::vector<AppDemand> apps{app(TrafficClass::kBulk, 5)};
  EXPECT_THROW(allocate(apps, 0, Policy{}), std::invalid_argument);
  Policy p;
  p.weight[1] = -1;
  EXPECT_THROW(allocate(apps, 10, p), std::invalid_argument);
}

TEST(Scenario, ProjectionClampsToSketchRanges) {
  ClassAllocation a;
  a.rate_mbps[0] = 250;  // above the sketch's 100 Mbps bound
  a.rate_mbps[1] = 20;
  a.rate_mbps[2] = 0;
  const pref::Scenario s = to_scenario(a);
  EXPECT_TRUE(pref::in_range(s, sketch::homenet_sketch()));
  EXPECT_DOUBLE_EQ(s.metrics[0], 100);
}

TEST(PickBest, GuaranteeLovingObjectivePrefersGuaranteedPolicy) {
  // A household whose latent objective demands >= 20 Mbps interactive.
  const auto& sk = sketch::homenet_sketch();
  sketch::HoleAssignment objective;
  objective.index = {sk.holes()[0].nearest_index(20),  // min_interactive
                     sk.holes()[1].nearest_index(1),   // w_streaming
                     sk.holes()[2].nearest_index(1)};  // w_bulk

  // Demands: calls want 25, streaming 40, bulk 60; capacity 60.
  const std::vector<AppDemand> apps{app(TrafficClass::kInteractive, 25),
                                    app(TrafficClass::kStreaming, 40),
                                    app(TrafficClass::kBulk, 60)};
  std::vector<Policy> policies = standard_policies();
  // Raise the guarantee policy to meet the latent 20 Mbps requirement.
  for (Policy& p : policies) {
    if (p.label == "guaranteed-calls") p.guarantee_mbps[0] = 20;
  }
  const std::size_t best = pick_best(sk, objective, apps, 60, policies);
  const ClassAllocation chosen = allocate(apps, 60, policies[best]);
  EXPECT_GE(chosen.rate_mbps[0], 20 - 1e-9)
      << "picked policy '" << policies[best].label
      << "' violates the latent interactive guarantee";
}

TEST(RandomHousehold, IsReproducibleAndClassed) {
  util::Rng a(7), b(7);
  const auto h1 = random_household(a, 10);
  const auto h2 = random_household(b, 10);
  ASSERT_EQ(h1.size(), h2.size());
  for (std::size_t i = 0; i < h1.size(); ++i) {
    EXPECT_EQ(h1[i].traffic_class, h2[i].traffic_class);
    EXPECT_DOUBLE_EQ(h1[i].demand_mbps, h2[i].demand_mbps);
  }
}

}  // namespace
}  // namespace compsynth::homenet
