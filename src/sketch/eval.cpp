#include "sketch/eval.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace compsynth::sketch {

double eval_numeric(const Expr& e, std::span<const double> metrics,
                    std::span<const double> holes) {
  switch (e.kind) {
    case Expr::Kind::kConst:
      return e.literal;
    case Expr::Kind::kMetric:
      assert(e.metric < metrics.size());
      return metrics[e.metric];
    case Expr::Kind::kHole:
      assert(e.hole < holes.size());
      return holes[e.hole];
    case Expr::Kind::kNeg:
      return -eval_numeric(*e.children[0], metrics, holes);
    case Expr::Kind::kBinary: {
      const double a = eval_numeric(*e.children[0], metrics, holes);
      const double b = eval_numeric(*e.children[1], metrics, holes);
      switch (e.bin_op) {
        case BinOp::kAdd: return a + b;
        case BinOp::kSub: return a - b;
        case BinOp::kMul: return a * b;
        case BinOp::kDiv:
          if (b == 0) throw EvalError("division by zero");
          return a / b;
        case BinOp::kMin: return std::min(a, b);
        case BinOp::kMax: return std::max(a, b);
      }
      break;
    }
    case Expr::Kind::kIte:
      return eval_bool(*e.children[0], metrics, holes)
                 ? eval_numeric(*e.children[1], metrics, holes)
                 : eval_numeric(*e.children[2], metrics, holes);
    case Expr::Kind::kChoice: {
      assert(e.hole < holes.size());
      const auto raw = static_cast<std::int64_t>(std::llround(holes[e.hole]));
      const auto idx = static_cast<std::size_t>(std::clamp<std::int64_t>(
          raw, 0, static_cast<std::int64_t>(e.children.size()) - 1));
      return eval_numeric(*e.children[idx], metrics, holes);
    }
    case Expr::Kind::kCmp:
    case Expr::Kind::kBoolBinary:
    case Expr::Kind::kNot:
    case Expr::Kind::kBoolConst:
      break;
  }
  throw EvalError("eval_numeric: boolean node in numeric position");
}

bool eval_bool(const Expr& e, std::span<const double> metrics,
               std::span<const double> holes) {
  switch (e.kind) {
    case Expr::Kind::kBoolConst:
      return e.literal != 0;
    case Expr::Kind::kCmp: {
      const double a = eval_numeric(*e.children[0], metrics, holes);
      const double b = eval_numeric(*e.children[1], metrics, holes);
      switch (e.cmp_op) {
        case CmpOp::kLt: return a < b;
        case CmpOp::kLe: return a <= b;
        case CmpOp::kGt: return a > b;
        case CmpOp::kGe: return a >= b;
        case CmpOp::kEq: return a == b;
        case CmpOp::kNe: return a != b;
      }
      break;
    }
    case Expr::Kind::kBoolBinary: {
      // No short-circuiting: both operands are pure, and evaluating both
      // keeps the semantics aligned with the Z3 encoding.
      const bool a = eval_bool(*e.children[0], metrics, holes);
      const bool b = eval_bool(*e.children[1], metrics, holes);
      return e.bool_op == BoolOp::kAnd ? (a && b) : (a || b);
    }
    case Expr::Kind::kNot:
      return !eval_bool(*e.children[0], metrics, holes);
    case Expr::Kind::kConst:
    case Expr::Kind::kMetric:
    case Expr::Kind::kHole:
    case Expr::Kind::kNeg:
    case Expr::Kind::kBinary:
    case Expr::Kind::kIte:
    case Expr::Kind::kChoice:
      break;
  }
  throw EvalError("eval_bool: numeric node in boolean position");
}

double eval(const Sketch& sketch, const HoleAssignment& assignment,
            std::span<const double> metrics) {
  const std::vector<double> holes = sketch.hole_values(assignment);
  return eval_with_values(sketch, holes, metrics);
}

double eval_with_values(const Sketch& sketch, std::span<const double> hole_values,
                        std::span<const double> metrics) {
  if (metrics.size() != sketch.metrics().size()) {
    throw EvalError("eval: scenario arity does not match sketch metrics");
  }
  if (hole_values.size() != sketch.holes().size()) {
    throw EvalError("eval: hole values arity does not match sketch holes");
  }
  return eval_numeric(*sketch.body(), metrics, hole_values);
}

}  // namespace compsynth::sketch
