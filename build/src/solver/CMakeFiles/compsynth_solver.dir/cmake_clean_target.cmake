file(REMOVE_RECURSE
  "libcompsynth_solver.a"
)
