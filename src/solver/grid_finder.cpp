#include "solver/grid_finder.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <utility>

#include "sketch/eval.h"
#include "util/log.h"

namespace compsynth::solver {

namespace {

constexpr std::int64_t kMaxEnumerableCandidates = 4'000'000;

}  // namespace

GridFinder::GridFinder(sketch::Sketch sketch, GridFinderConfig config,
                       Viability viability, ScenarioDomain domain)
    : sketch_(std::move(sketch)),
      config_(config),
      viability_(std::move(viability)),
      domain_(std::move(domain)),
      rng_(config.seed) {
  validate_domain(sketch_, domain_);
  if (config_.base.distinguish_margin <= config_.base.tie_tolerance) {
    throw std::invalid_argument(
        "GridFinder: distinguish_margin must exceed tie_tolerance");
  }
  if (sketch_.candidate_space_size() > kMaxEnumerableCandidates) {
    throw std::invalid_argument(
        "GridFinder: hole grid too large to enumerate; use Z3Finder");
  }
}

bool GridFinder::consistent(const sketch::HoleAssignment& a,
                            const pref::PreferenceGraph& graph,
                            std::size_t first_edge, std::size_t first_tie) const {
  const std::vector<double> values = sketch_.hole_values(a);
  const double tie_bound = config_.base.tie_tolerance + 1e-9;
  const auto& edges = graph.edges();
  for (std::size_t i = first_edge; i < edges.size(); ++i) {
    const double better = sketch::eval_with_values(
        sketch_, values, graph.scenario(edges[i].better).metrics);
    const double worse = sketch::eval_with_values(
        sketch_, values, graph.scenario(edges[i].worse).metrics);
    if (!(better > worse)) return false;
  }
  const auto& ties = graph.ties();
  for (std::size_t i = first_tie; i < ties.size(); ++i) {
    const double fu =
        sketch::eval_with_values(sketch_, values, graph.scenario(ties[i].first).metrics);
    const double fv =
        sketch::eval_with_values(sketch_, values, graph.scenario(ties[i].second).metrics);
    if (std::abs(fu - fv) > tie_bound) return false;
  }
  return true;
}

void GridFinder::sync(const pref::PreferenceGraph& graph) {
  const bool shrunk =
      graph.edges().size() < edges_seen_ || graph.ties().size() < ties_seen_;
  if (!initialized_ || shrunk) {
    survivors_.clear();
    sketch::HoleAssignment cursor;
    cursor.index.assign(sketch_.holes().size(), 0);
    for (;;) {
      const bool viable = !viability_.concrete ||
                          viability_.concrete(sketch_.hole_values(cursor));
      if (viable && consistent(cursor, graph, 0, 0)) survivors_.push_back(cursor);
      // Odometer increment over the grid.
      std::size_t pos = 0;
      while (pos < cursor.index.size()) {
        if (++cursor.index[pos] < sketch_.holes()[pos].count) break;
        cursor.index[pos] = 0;
        ++pos;
      }
      if (pos == cursor.index.size()) break;
    }
    initialized_ = true;
  } else {
    std::erase_if(survivors_, [&](const sketch::HoleAssignment& a) {
      return !consistent(a, graph, edges_seen_, ties_seen_);
    });
  }
  edges_seen_ = graph.edges().size();
  ties_seen_ = graph.ties().size();
  util::log(util::LogLevel::kDebug, "GridFinder: version space size ",
            survivors_.size());
}

std::vector<double> GridFinder::boundary_values(const sketch::HoleAssignment& a,
                                                std::size_t metric) const {
  const sketch::MetricSpec& m = sketch_.metrics()[metric];
  const double nudge = (m.hi - m.lo) * 1e-3;
  std::vector<double> out{m.lo, m.hi};
  for (const double v : sketch_.hole_values(a)) {
    if (v > m.lo && v < m.hi) {
      out.push_back(v);
      out.push_back(std::min(m.hi, v + nudge));
      out.push_back(std::max(m.lo, v - nudge));
    }
  }
  return out;
}

std::optional<DistinguishingPair> GridFinder::distinguish(
    const sketch::HoleAssignment& a, const sketch::HoleAssignment& b) {
  const std::vector<double> va = sketch_.hole_values(a);
  const std::vector<double> vb = sketch_.hole_values(b);
  const double margin = config_.base.distinguish_margin;
  const std::size_t n_metrics = sketch_.metrics().size();

  // Boundary candidates per metric: hole values of either candidate (where
  // piecewise objectives flip regions), nudged to both sides, plus range
  // endpoints and midpoints.
  std::vector<std::vector<double>> boundaries(n_metrics);
  std::size_t cross_size = 1;
  for (std::size_t m = 0; m < n_metrics; ++m) {
    boundaries[m] = boundary_values(a, m);
    const std::vector<double> more = boundary_values(b, m);
    boundaries[m].insert(boundaries[m].end(), more.begin(), more.end());
    const sketch::MetricSpec& spec = sketch_.metrics()[m];
    boundaries[m].push_back((spec.lo + spec.hi) / 2);
    std::sort(boundaries[m].begin(), boundaries[m].end());
    boundaries[m].erase(std::unique(boundaries[m].begin(), boundaries[m].end()),
                        boundaries[m].end());
    cross_size *= boundaries[m].size();
  }

  auto check = [&](const pref::Scenario& s1, const pref::Scenario& s2)
      -> std::optional<DistinguishingPair> {
    const double fa1 = sketch::eval_with_values(sketch_, va, s1.metrics);
    const double fa2 = sketch::eval_with_values(sketch_, va, s2.metrics);
    const double fb1 = sketch::eval_with_values(sketch_, vb, s1.metrics);
    const double fb2 = sketch::eval_with_values(sketch_, vb, s2.metrics);
    if (fa1 >= fa2 + margin && fb2 >= fb1 + margin) {
      return DistinguishingPair{s1, s2};
    }
    if (fa2 >= fa1 + margin && fb1 >= fb2 + margin) {
      return DistinguishingPair{s2, s1};
    }
    return std::nullopt;
  };

  // Deterministic pass: for objectives that are piecewise products of the
  // metrics (the SWAN family), any ranking disagreement is witnessed at the
  // cross product of boundary values. Enumerate it when small enough.
  if (cross_size <= 1024) {
    std::vector<pref::Scenario> grid_points;
    grid_points.reserve(cross_size);
    std::vector<std::size_t> idx(n_metrics, 0);
    for (;;) {
      pref::Scenario s;
      s.metrics.reserve(n_metrics);
      for (std::size_t m = 0; m < n_metrics; ++m) {
        s.metrics.push_back(boundaries[m][idx[m]]);
      }
      if (domain_contains(sketch_, domain_, s.metrics)) {
        grid_points.push_back(std::move(s));
      }
      std::size_t pos = 0;
      while (pos < n_metrics && ++idx[pos] == boundaries[pos].size()) {
        idx[pos++] = 0;
      }
      if (pos == n_metrics) break;
    }
    // Cache both candidates' values so each pair test is two comparisons.
    std::vector<double> fa(grid_points.size()), fb(grid_points.size());
    for (std::size_t i = 0; i < grid_points.size(); ++i) {
      fa[i] = sketch::eval_with_values(sketch_, va, grid_points[i].metrics);
      fb[i] = sketch::eval_with_values(sketch_, vb, grid_points[i].metrics);
    }
    // Randomize the scan order so repeated calls surface different pairs
    // (the synthesizer wants fresh scenarios each iteration).
    std::vector<std::size_t> order(grid_points.size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    rng_.shuffle(order);
    for (const std::size_t i : order) {
      for (const std::size_t j : order) {
        if (fa[i] >= fa[j] + margin && fb[j] >= fb[i] + margin) {
          return DistinguishingPair{grid_points[i], grid_points[j]};
        }
      }
    }
  }

  // Randomized fallback for sketch families whose disagreements are not
  // boundary-witnessed (or whose boundary cross product is too large).
  auto sample_scenario = [&] {
    pref::Scenario s;
    s.metrics.reserve(n_metrics);
    for (std::size_t m = 0; m < n_metrics; ++m) {
      const sketch::MetricSpec& spec = sketch_.metrics()[m];
      if (rng_.bernoulli(0.5)) {
        s.metrics.push_back(rng_.uniform_real(spec.lo, spec.hi));
      } else {
        s.metrics.push_back(boundaries[m][rng_.index(boundaries[m].size())]);
      }
    }
    return s;
  };
  for (int i = 0; i < config_.scenario_samples; ++i) {
    const pref::Scenario s1 = sample_scenario();
    const pref::Scenario s2 = sample_scenario();
    if (domain_.constraint != nullptr &&
        (!domain_contains(sketch_, domain_, s1.metrics) ||
         !domain_contains(sketch_, domain_, s2.metrics))) {
      continue;
    }
    if (auto hit = check(s1, s2)) return hit;
  }
  return std::nullopt;
}

FinderResult GridFinder::find_distinguishing(const pref::PreferenceGraph& graph,
                                             int num_pairs) {
  if (num_pairs < 1) throw std::invalid_argument("find_distinguishing: num_pairs < 1");
  sync(graph);
  if (survivors_.empty()) { FinderResult res; res.status = FinderStatus::kNoCandidate; return res; }
  if (survivors_.size() == 1) {
    FinderResult res;
    res.status = FinderStatus::kUniqueRanking;
    res.candidate_a = survivors_.front();
    return res;
  }

  // Candidate pair schedule: exhaustive for small version spaces (so the
  // "unique ranking" verdict is as strong as possible), random otherwise.
  std::vector<std::pair<std::size_t, std::size_t>> schedule;
  if (survivors_.size() <= 48) {
    for (std::size_t i = 0; i < survivors_.size(); ++i) {
      for (std::size_t j = i + 1; j < survivors_.size(); ++j) {
        schedule.emplace_back(i, j);
      }
    }
    rng_.shuffle(schedule);
  } else {
    for (int attempt = 0; attempt < config_.candidate_pair_budget; ++attempt) {
      const std::size_t ia = rng_.index(survivors_.size());
      std::size_t ib = rng_.index(survivors_.size() - 1);
      if (ib >= ia) ++ib;
      schedule.emplace_back(ia, ib);
    }
  }

  // Collect disagreement witnesses. Under kFirstFound the first one wins
  // (mirroring an SMT solver's arbitrary model); under kBisection several
  // are scored by how evenly the user's answer would split the version
  // space, and the most informative one is asked.
  struct Witness {
    std::size_t ia = 0, ib = 0;
    DistinguishingPair pair;
  };
  std::vector<Witness> witnesses;
  const int wanted =
      config_.strategy == QueryStrategy::kBisection ? config_.bisection_samples : 1;

  for (const auto& [ia, ib] : schedule) {
    if (static_cast<int>(witnesses.size()) >= wanted) break;
    if (auto pair = distinguish(survivors_[ia], survivors_[ib])) {
      witnesses.push_back(Witness{ia, ib, *std::move(pair)});
    }
  }

  if (witnesses.empty()) {
    // No disagreement among the survivors: report (approximate) ranking
    // uniqueness with an arbitrary representative.
    FinderResult res;
    res.status = FinderStatus::kUniqueRanking;
    res.candidate_a = survivors_.front();
    return res;
  }

  std::size_t chosen = 0;
  if (witnesses.size() > 1) {
    // Guaranteed elimination of an answer = survivors inconsistent with it;
    // the worst case over the two strict answers is the witness's value.
    long best_score = -1;
    for (std::size_t w = 0; w < witnesses.size(); ++w) {
      const auto& p = witnesses[w].pair;
      long prefer_1 = 0, prefer_2 = 0;
      for (const sketch::HoleAssignment& cand : survivors_) {
        const std::vector<double> values = sketch_.hole_values(cand);
        const double f1 =
            sketch::eval_with_values(sketch_, values, p.preferred_by_a.metrics);
        const double f2 =
            sketch::eval_with_values(sketch_, values, p.preferred_by_b.metrics);
        if (f1 > f2) ++prefer_1;
        else if (f2 > f1) ++prefer_2;
      }
      const long score = std::min(prefer_1, prefer_2);
      if (score > best_score) {
        best_score = score;
        chosen = w;
      }
    }
  }

  FinderResult res;
  res.status = FinderStatus::kFound;
  res.candidate_a = survivors_[witnesses[chosen].ia];
  res.candidate_b = survivors_[witnesses[chosen].ib];
  res.pairs.push_back(std::move(witnesses[chosen].pair));

  // Additional pairs (Fig. 4 protocol) come from the same candidate pair.
  for (int tries = 0;
       static_cast<int>(res.pairs.size()) < num_pairs && tries < 4 * num_pairs;
       ++tries) {
    const auto pair = distinguish(res.candidate_a, res.candidate_b);
    if (!pair) break;
    const bool duplicate = std::any_of(
        res.pairs.begin(), res.pairs.end(), [&](const DistinguishingPair& p) {
          return p.preferred_by_a == pair->preferred_by_a &&
                 p.preferred_by_b == pair->preferred_by_b;
        });
    if (!duplicate) res.pairs.push_back(*pair);
  }
  return res;
}

std::optional<sketch::HoleAssignment> GridFinder::find_consistent(
    const pref::PreferenceGraph& graph) {
  sync(graph);
  if (survivors_.empty()) return std::nullopt;
  return survivors_.front();
}

}  // namespace compsynth::solver
