// A self-contained dense two-phase simplex LP solver.
//
// Solves   maximize c.x   subject to   A x {<=,>=,=} b,   x >= 0.
//
// This is the optimization substrate under every allocator in src/te (the
// paper's motivating SWAN formulations are all LPs). Implementation: dense
// tableau, two phases (artificial variables drive feasibility), Bland's rule
// throughout — slower per pivot than Dantzig but provably cycle-free, which
// matters because degenerate TE instances (parallel tunnels with equal
// latencies) are common. Problem sizes here are tiny (tens of variables,
// hundreds of constraints), so dense O(m*n) pivots are plenty fast.
#pragma once

#include <cstddef>
#include <vector>

namespace compsynth::te::lp {

enum class Relation { kLe, kGe, kEq };

struct Constraint {
  std::vector<double> coeffs;  // padded/truncated to num_vars
  Relation rel = Relation::kLe;
  double rhs = 0;
};

/// maximize objective . x  subject to constraints, x >= 0.
struct LinearProgram {
  explicit LinearProgram(std::size_t num_vars)
      : num_vars(num_vars), objective(num_vars, 0.0) {}

  std::size_t num_vars;
  std::vector<double> objective;
  std::vector<Constraint> constraints;

  void add(Relation rel, std::vector<double> coeffs, double rhs);
  void add_le(std::vector<double> coeffs, double rhs) { add(Relation::kLe, std::move(coeffs), rhs); }
  void add_ge(std::vector<double> coeffs, double rhs) { add(Relation::kGe, std::move(coeffs), rhs); }
  void add_eq(std::vector<double> coeffs, double rhs) { add(Relation::kEq, std::move(coeffs), rhs); }
};

enum class SolveStatus { kOptimal, kInfeasible, kUnbounded, kIterationLimit };

struct Solution {
  SolveStatus status = SolveStatus::kInfeasible;
  double objective = 0;
  std::vector<double> x;  // primal values, size num_vars (valid iff kOptimal)
};

/// Solves the LP. Deterministic; no allocation failure handling beyond what
/// std::vector provides.
Solution solve(const LinearProgram& lp);

}  // namespace compsynth::te::lp
