// SWAN traffic-engineering walkthrough (paper §2 + §6.1 "tractability").
//
// The architect cannot write down how she trades throughput against
// latency, but she *can* compare concrete outcomes. This example:
//
//   1. builds the Abilene backbone and a random inter-PoP workload;
//   2. generates candidate designs with tractable LP objectives — an
//      Eq. (2.1) epsilon sweep and a Danna fairness sweep — using the
//      in-repo simplex solver;
//   3. learns the architect's objective from preference queries alone
//      (simulated architect with a latent SWAN-sketch intent);
//   4. uses the learned objective to pick the final design, and compares
//      that with the latent intent's own pick.
//
// Build & run:  ./build/examples/swan_te
#include <cstdio>

#include "oracle/ground_truth.h"
#include "sketch/eval.h"
#include "sketch/library.h"
#include "sketch/printer.h"
#include "synth/synthesizer.h"
#include "te/scenario_gen.h"
#include "util/rng.h"
#include "util/table.h"

int main() {
  using namespace compsynth;

  // 1. Network + workload.
  const te::Topology topo = te::abilene();
  util::Rng rng(4242);
  const std::vector<te::FlowRequest> requests =
      te::random_workload(topo, rng, 12, 1, 6);
  std::printf("Abilene: %zu nodes, %zu links; %zu flows, T_opt = %.2f Gbps\n\n",
              topo.node_count(), topo.link_count(), requests.size(),
              te::optimal_throughput(topo, requests));

  // 2. Candidate designs from tractable LP objectives.
  const std::vector<double> epsilons{0, 0.002, 0.005, 0.01, 0.02, 0.04, 0.08};
  std::vector<te::CandidateDesign> designs =
      te::sweep_epsilon(topo, requests, epsilons);
  const std::vector<double> q_fairs{0.5, 1.0};
  const auto fair_designs = te::sweep_fairness(topo, requests, q_fairs);
  designs.insert(designs.end(), fair_designs.begin(), fair_designs.end());

  util::Table table({"design", "throughput (Gbps)", "weighted latency (ms)"});
  for (const auto& d : designs) {
    table.add_row({d.label,
                   util::format_number(d.allocation.total_throughput_gbps),
                   util::format_number(d.allocation.weighted_latency_ms)});
  }
  std::printf("Candidate designs (each an LP solve):\n%s\n",
              table.to_string().c_str());

  // 3. Learn the architect's objective from comparisons only.
  const sketch::Sketch& sk = sketch::swan_sketch();
  const sketch::HoleAssignment latent = sketch::swan_target_with(3, 40, 1, 4);
  synth::SynthesisConfig config;
  config.seed = 77;
  synth::Synthesizer synthesizer = synth::make_grid_synthesizer(sk, config);
  oracle::GroundTruthOracle architect(sk, latent, config.finder.tie_tolerance);
  const synth::SynthesisResult learned = synthesizer.run(architect);
  if (!learned.objective) {
    std::printf("synthesis failed\n");
    return 1;
  }
  std::printf("Learned objective after %d interactions:\n  %s\n\n",
              learned.interactions,
              sketch::print_instantiated(sk, *learned.objective).c_str());

  // 4. Pick the design.
  const std::size_t picked = te::pick_best(sk, *learned.objective, designs);
  const std::size_t truth = te::pick_best(sk, latent, designs);
  std::printf("learned objective picks:  %s\n", designs[picked].label.c_str());
  std::printf("latent intent would pick: %s\n", designs[truth].label.c_str());
  std::printf("agreement: %s\n", picked == truth ? "YES" : "NO");
  return picked == truth ? 0 : 1;
}
