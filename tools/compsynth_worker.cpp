// compsynth_worker — a distributed version-space sync worker.
//
// Serves shard-computation requests from a dist::ShardCoordinator over the
// line-delimited JSON wire protocol of docs/DISTRIBUTED.md: each request
// carries a sketch, a preference graph and a [lo, hi) candidate range, and
// the worker answers with that shard's survivor record (CRC-guarded).
// Workers hold no sync state between requests, so any number of them can be
// pointed at by a coordinator and killed/restarted freely — a lost worker
// costs re-dispatch time, never correctness.
//
// Usage:
//   compsynth_worker --listen <endpoint> [options]
//
// Options:
//   --listen E            unix:<path> or tcp:[host:]<port> (tcp:0 picks an
//                         ephemeral port; the chosen one is printed)
//   --fault-drop P        drop the connection mid-response with probability P
//   --fault-stall P       stall before answering with probability P
//   --fault-stall-s S     stall duration in seconds (default 0.05)
//   --fault-truncate P    return a blob truncated mid-bitmap with
//                         probability P (CRC recomputed: structurally torn,
//                         transport-clean)
//   --fault-crash-ack P   crash the worker right after a successful
//                         response with probability P
//   --fault-seed N        fault-stream seed (default 1)
//   --trace FILE          append a JSONL trace (schema rev 1.6, worker_shard
//                         events; docs/OBSERVABILITY.md)
//   --metrics             print the metrics registry as Markdown at exit
//
// Prints "listening on <endpoint>" once bound — scripts wait for that line —
// and exits 0 after a `shutdown` request or SIGTERM/SIGINT drains (in-flight
// requests answered, traces/metrics flushed), 1 on usage or startup errors.
#include <iostream>
#include <optional>
#include <string>

#include "dist/worker.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "serve/signal_drain.h"
#include "util/fault.h"

namespace {

using namespace compsynth;

struct Options {
  std::string listen;
  util::FaultPlan faults;
  std::optional<std::string> trace_path;
  bool print_metrics = false;
};

int usage(const char* argv0) {
  std::cerr << "usage: " << argv0
            << " --listen <unix:PATH|tcp:[HOST:]PORT>\n"
               "  [--fault-drop P] [--fault-stall P] [--fault-stall-s S]\n"
               "  [--fault-truncate P] [--fault-crash-ack P] [--fault-seed N]\n"
               "  [--trace FILE] [--metrics]\n";
  return 1;
}

std::optional<Options> parse_args(int argc, char** argv) {
  Options opt;
  opt.faults.seed = 1;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::optional<std::string> {
      if (i + 1 >= argc) return std::nullopt;
      return std::string(argv[++i]);
    };
    if (arg == "--listen") {
      auto v = next();
      if (!v) return std::nullopt;
      opt.listen = *v;
    } else if (arg == "--fault-drop") {
      auto v = next();
      if (!v) return std::nullopt;
      opt.faults.worker_drop_p = std::stod(*v);
    } else if (arg == "--fault-stall") {
      auto v = next();
      if (!v) return std::nullopt;
      opt.faults.worker_stall_p = std::stod(*v);
    } else if (arg == "--fault-stall-s") {
      auto v = next();
      if (!v) return std::nullopt;
      opt.faults.worker_stall_s = std::stod(*v);
    } else if (arg == "--fault-truncate") {
      auto v = next();
      if (!v) return std::nullopt;
      opt.faults.worker_truncate_p = std::stod(*v);
    } else if (arg == "--fault-crash-ack") {
      auto v = next();
      if (!v) return std::nullopt;
      opt.faults.worker_crash_after_ack_p = std::stod(*v);
    } else if (arg == "--fault-seed") {
      auto v = next();
      if (!v) return std::nullopt;
      opt.faults.seed = std::stoull(*v);
    } else if (arg == "--trace") {
      auto v = next();
      if (!v) return std::nullopt;
      opt.trace_path = *v;
    } else if (arg == "--metrics") {
      opt.print_metrics = true;
    } else {
      std::cerr << "unknown option: " << arg << "\n";
      return std::nullopt;
    }
  }
  if (opt.listen.empty()) return std::nullopt;
  return opt;
}

}  // namespace

int main(int argc, char** argv) {
  const std::optional<Options> opt = parse_args(argc, argv);
  if (!opt) return usage(argv[0]);

  try {
    obs::MetricsRegistry metrics;
    std::optional<obs::FileTraceSink> sink;
    if (opt->trace_path) sink.emplace(*opt->trace_path);

    obs::RunContext obs;
    obs.metrics = &metrics;
    obs.tracer = sink ? &*sink : nullptr;
    obs.run_id = "worker";

    dist::WorkerConfig config;
    config.listen = opt->listen;
    config.faults = opt->faults;
    config.obs = obs;

    dist::Worker worker(config);
    // Constructed before start() so every server thread inherits the signal
    // mask: SIGTERM/SIGINT drain gracefully (in-flight responses land,
    // traces/metrics flush, exit 0).
    serve::SignalDrain drain([&worker] { worker.stop(); });
    worker.start();
    std::cout << "listening on " << worker.endpoint() << std::endl;

    worker.wait();

    if (opt->print_metrics) std::cout << metrics.render_markdown();
    return 0;
  } catch (const std::exception& ex) {
    std::cerr << "compsynth_worker: " << ex.what() << "\n";
    return 1;
  }
}
