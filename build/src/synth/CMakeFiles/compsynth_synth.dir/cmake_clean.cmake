file(REMOVE_RECURSE
  "CMakeFiles/compsynth_synth.dir/experiment.cpp.o"
  "CMakeFiles/compsynth_synth.dir/experiment.cpp.o.d"
  "CMakeFiles/compsynth_synth.dir/synthesizer.cpp.o"
  "CMakeFiles/compsynth_synth.dir/synthesizer.cpp.o.d"
  "libcompsynth_synth.a"
  "libcompsynth_synth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compsynth_synth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
