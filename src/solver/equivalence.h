// Ranking-equivalence checks between two concrete objective functions.
//
// Synthesis is correct when the learned candidate is *ranking-equivalent* to
// the user's latent target: no pair of in-range scenarios exists that the two
// functions order in opposite directions (by at least the distinguishing
// margin). This is the success criterion behind the paper's claim that all
// Fig. 3 variants were "successfully synthesized".
#pragma once

#include <optional>

#include "solver/finder.h"

namespace compsynth::solver {

/// Searches (exactly, via Z3) for a scenario pair that candidates `a` and
/// `b` of `sketch` order in opposite directions with at least
/// `config.distinguish_margin` separation. Returns the witness pair when one
/// exists, nullopt when the two candidates are ranking-equivalent.
std::optional<DistinguishingPair> find_ranking_difference(
    const sketch::Sketch& sketch, const sketch::HoleAssignment& a,
    const sketch::HoleAssignment& b, const FinderConfig& config = {});

/// True when no margin-separated ranking disagreement exists.
bool ranking_equivalent(const sketch::Sketch& sketch,
                        const sketch::HoleAssignment& a,
                        const sketch::HoleAssignment& b,
                        const FinderConfig& config = {});

}  // namespace compsynth::solver
