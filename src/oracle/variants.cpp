#include "oracle/variants.h"

#include <istream>
#include <ostream>
#include <stdexcept>
#include <string>

namespace compsynth::oracle {

NoisyOracle::NoisyOracle(std::unique_ptr<Oracle> inner, double flip_probability,
                         std::uint64_t seed)
    : inner_(std::move(inner)), flip_probability_(flip_probability), rng_(seed) {
  if (inner_ == nullptr) throw std::invalid_argument("NoisyOracle: null inner oracle");
  if (flip_probability_ < 0 || flip_probability_ > 1) {
    throw std::invalid_argument("NoisyOracle: flip probability outside [0,1]");
  }
}

Preference NoisyOracle::do_compare(const pref::Scenario& a, const pref::Scenario& b) {
  const Preference truth = inner_->compare(a, b);
  if (truth == Preference::kTie || !rng_.bernoulli(flip_probability_)) return truth;
  ++flips_;
  return truth == Preference::kFirst ? Preference::kSecond : Preference::kFirst;
}

IndifferentOracle::IndifferentOracle(std::unique_ptr<Oracle> inner,
                                     double indifference, std::uint64_t seed)
    : inner_(std::move(inner)), indifference_(indifference), rng_(seed) {
  if (inner_ == nullptr) {
    throw std::invalid_argument("IndifferentOracle: null inner oracle");
  }
  if (indifference_ < 0 || indifference_ > 1) {
    throw std::invalid_argument("IndifferentOracle: indifference outside [0,1]");
  }
}

Preference IndifferentOracle::do_compare(const pref::Scenario& a,
                                         const pref::Scenario& b) {
  const Preference truth = inner_->compare(a, b);
  if (truth == Preference::kTie || !rng_.bernoulli(indifference_)) return truth;
  ++abstentions_;
  return Preference::kTie;
}

DriftingOracle::DriftingOracle(std::unique_ptr<Oracle> before,
                               std::unique_ptr<Oracle> after, long drift_after)
    : before_(std::move(before)), after_(std::move(after)), drift_after_(drift_after) {
  if (before_ == nullptr || after_ == nullptr) {
    throw std::invalid_argument("DriftingOracle: null inner oracle");
  }
  if (drift_after_ < 0) {
    throw std::invalid_argument("DriftingOracle: negative drift point");
  }
}

Preference DriftingOracle::do_compare(const pref::Scenario& a,
                                      const pref::Scenario& b) {
  Oracle& active = answered_ < drift_after_ ? *before_ : *after_;
  ++answered_;
  return active.compare(a, b);
}

InteractiveOracle::InteractiveOracle(sketch::Sketch sketch, std::istream& in,
                                     std::ostream& out)
    : sketch_(std::move(sketch)), in_(in), out_(out) {}

Preference InteractiveOracle::do_compare(const pref::Scenario& a,
                                         const pref::Scenario& b) {
  out_ << "\nWhich scenario do you prefer?\n"
       << "  [1] " << pref::to_string(a, sketch_) << '\n'
       << "  [2] " << pref::to_string(b, sketch_) << '\n'
       << "  [=] indistinguishable\n"
       << "> " << std::flush;
  std::string line;
  while (std::getline(in_, line)) {
    if (line == "1") return Preference::kFirst;
    if (line == "2") return Preference::kSecond;
    if (line == "=" || line == "tie") return Preference::kTie;
    out_ << "please answer 1, 2 or =\n> " << std::flush;
  }
  // Input exhausted (EOF): treat as indifference so synthesis can wind down.
  return Preference::kTie;
}

}  // namespace compsynth::oracle
