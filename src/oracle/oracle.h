// User models for comparative synthesis.
//
// The paper evaluates with "an oracle playing the role of an ideal user"
// (§4.3): it evaluates scenarios with the latent ground-truth objective and
// answers preference queries accordingly. This header defines the oracle
// interface; concrete oracles (ground truth, noisy, indifferent,
// interactive) live in the sibling headers.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "pref/scenario.h"

namespace compsynth::obs {
struct RunContext;
}

namespace compsynth::oracle {

/// Answer to a two-scenario comparison.
enum class Preference {
  kFirst,   // the first scenario is preferred
  kSecond,  // the second scenario is preferred
  kTie,     // indistinguishable / incomparable (partial ranking, §4.2)
};

/// A (partial) ranking over a scenario set, expressed as index pairs.
struct RankingResponse {
  struct RankedPair {
    std::size_t better = 0;
    std::size_t worse = 0;
  };
  struct TiePair {
    std::size_t a = 0;
    std::size_t b = 0;
  };
  std::vector<RankedPair> preferences;
  std::vector<TiePair> ties;
};

/// Abstract user. Non-virtual public API counts interactions (the paper's
/// cost metric for the human in the loop); subclasses implement do_compare /
/// do_rank.
class Oracle {
 public:
  virtual ~Oracle() = default;

  Oracle(const Oracle&) = delete;
  Oracle& operator=(const Oracle&) = delete;

  /// Compares two scenarios. Counts as one interaction.
  Preference compare(const pref::Scenario& a, const pref::Scenario& b);

  /// Ranks a set of scenarios (e.g. the initial random batch). Counts as one
  /// interaction regardless of set size — the user answers in one sitting.
  RankingResponse rank(std::span<const pref::Scenario> scenarios);

  long comparisons() const { return comparisons_; }
  long rankings() const { return rankings_; }

  /// Observability: when set (non-owning; may be null), every compare/rank
  /// call emits an "oracle_query" trace event and bumps the oracle.*
  /// counters. The synthesizer wires this up for the duration of a run and
  /// clears it before returning.
  void set_run_context(const obs::RunContext* ctx) { obs_ = ctx; }

 protected:
  Oracle() = default;

  virtual Preference do_compare(const pref::Scenario& a,
                                const pref::Scenario& b) = 0;

  /// Default ranking: chain the scenarios via insertion using do_compare.
  /// Ground-truth oracles override this with an exact sort.
  virtual RankingResponse do_rank(std::span<const pref::Scenario> scenarios);

 private:
  long comparisons_ = 0;
  long rankings_ = 0;
  const obs::RunContext* obs_ = nullptr;
};

}  // namespace compsynth::oracle
