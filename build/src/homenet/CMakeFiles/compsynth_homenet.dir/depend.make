# Empty dependencies file for compsynth_homenet.
# This may be replaced when dependencies are built.
