#include "te/scenario_gen.h"

#include <algorithm>
#include <limits>
#include <stdexcept>

#include "sketch/eval.h"
#include "sketch/library.h"
#include "util/table.h"

namespace compsynth::te {

pref::Scenario to_scenario(const Allocation& alloc) {
  return pref::Scenario{{alloc.total_throughput_gbps, alloc.weighted_latency_ms}};
}

pref::Scenario to_fair_scenario(const Allocation& alloc,
                                const std::vector<FlowRequest>& requests) {
  if (alloc.flow_rates.size() != requests.size()) {
    throw std::invalid_argument("to_fair_scenario: allocation/request mismatch");
  }
  double min_frac = 1.0;
  for (std::size_t f = 0; f < requests.size(); ++f) {
    const double demand = requests[f].flow.demand_gbps;
    if (demand <= 0) continue;
    min_frac = std::min(min_frac, std::clamp(alloc.flow_rates[f] / demand, 0.0, 1.0));
  }
  return pref::Scenario{
      {alloc.total_throughput_gbps, alloc.weighted_latency_ms, min_frac}};
}

pref::Scenario to_class_scenario(const Allocation& alloc,
                                 const std::vector<FlowRequest>& requests) {
  if (alloc.flow_rates.size() != requests.size()) {
    throw std::invalid_argument("to_class_scenario: allocation/request mismatch");
  }
  double hi = 0, lo = 0;
  for (std::size_t f = 0; f < requests.size(); ++f) {
    (requests[f].flow.priority > 0 ? hi : lo) += alloc.flow_rates[f];
  }
  const sketch::Sketch& sk = sketch::swan_priority_sketch();
  pref::Scenario s{{hi, lo, alloc.weighted_latency_ms}};
  for (std::size_t i = 0; i < s.metrics.size(); ++i) {
    s.metrics[i] = std::clamp(s.metrics[i], sk.metrics()[i].lo, sk.metrics()[i].hi);
  }
  return s;
}

std::vector<CandidateDesign> sweep_class_weights(
    const Topology& topo, const std::vector<FlowRequest>& requests,
    std::span<const double> hi_class_weights) {
  std::vector<CandidateDesign> out;
  out.reserve(hi_class_weights.size() + 1);
  for (const double w : hi_class_weights) {
    if (w <= 0) throw std::invalid_argument("sweep_class_weights: weight <= 0");
    std::vector<FlowRequest> weighted = requests;
    for (FlowRequest& r : weighted) {
      r.flow.weight = r.flow.priority > 0 ? w : 1.0;
    }
    CandidateDesign d;
    d.label = "weighted-maxmin hi:lo=" + util::format_number(w, 3) + ":1";
    d.knob = w;
    d.allocation = max_min_fair(topo, weighted);
    d.scenario = to_class_scenario(d.allocation, requests);
    out.push_back(std::move(d));
  }
  // SWAN's default: strict priority between classes, max-min within.
  CandidateDesign strict;
  strict.label = "strict priority";
  strict.knob = std::numeric_limits<double>::infinity();
  strict.allocation = priority_layered(topo, requests);
  strict.scenario = to_class_scenario(strict.allocation, requests);
  out.push_back(std::move(strict));
  return out;
}

std::vector<CandidateDesign> sweep_epsilon(const Topology& topo,
                                           const std::vector<FlowRequest>& requests,
                                           std::span<const double> epsilons) {
  std::vector<CandidateDesign> out;
  out.reserve(epsilons.size());
  for (const double eps : epsilons) {
    CandidateDesign d;
    d.label = "swan eps=" + util::format_number(eps, 4);
    d.knob = eps;
    d.allocation = swan_allocation(topo, requests, eps);
    d.scenario = to_scenario(d.allocation);
    out.push_back(std::move(d));
  }
  return out;
}

std::vector<CandidateDesign> sweep_fairness(const Topology& topo,
                                            const std::vector<FlowRequest>& requests,
                                            std::span<const double> q_fairs) {
  std::vector<CandidateDesign> out;
  out.reserve(q_fairs.size());
  for (const double q : q_fairs) {
    CandidateDesign d;
    d.label = "danna q=" + util::format_number(q, 3);
    d.knob = q;
    d.allocation = danna_balanced(topo, requests, q);
    d.scenario = to_scenario(d.allocation);
    out.push_back(std::move(d));
  }
  return out;
}

std::size_t pick_best(const sketch::Sketch& sketch,
                      const sketch::HoleAssignment& objective,
                      std::span<const CandidateDesign> designs) {
  if (designs.empty()) throw std::invalid_argument("pick_best: no designs");
  std::size_t best = 0;
  double best_value = -std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < designs.size(); ++i) {
    const double v = sketch::eval(sketch, objective, designs[i].scenario.metrics);
    if (v > best_value) {
      best_value = v;
      best = i;
    }
  }
  return best;
}

std::vector<FlowRequest> random_workload(const Topology& topo, util::Rng& rng,
                                         std::size_t flows, double min_demand,
                                         double max_demand, int k_tunnels) {
  if (topo.node_count() < 2) {
    throw std::invalid_argument("random_workload: topology too small");
  }
  if (min_demand < 0 || max_demand < min_demand) {
    throw std::invalid_argument("random_workload: bad demand range");
  }
  std::vector<FlowRequest> out;
  out.reserve(flows);
  while (out.size() < flows) {
    Flow f;
    f.src = rng.index(topo.node_count());
    f.dst = rng.index(topo.node_count());
    if (f.src == f.dst) continue;
    f.demand_gbps = rng.uniform_real(min_demand, max_demand);
    f.name = "f" + std::to_string(out.size());
    out.push_back(make_request(topo, std::move(f), k_tunnels));
  }
  return out;
}

}  // namespace compsynth::te
