// Seeded concurrency stress tests over the shared-state surfaces annotated
// in this tree (docs/CONCURRENCY.md): metrics instruments, the solver
// cache, the thread pool, the portfolio's cancel/interrupt paths and the
// session host. Every test asserts an invariant that a lost update or a
// torn read would break (histogram count == bin sum, LRU residency bound,
// no lost answers), so the suite is meaningful both natively — where a race
// shows up as a wrong count — and under TSan (scripts/check_tsan.sh runs
// `ctest -R ConcurrencyStress` instrumented), where the same schedules
// surface the underlying data race directly.
//
// All workloads are seeded and fixed-size: thread counts, iteration counts
// and RNG streams are constants, so a failure reproduces.
#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "oracle/oracle.h"
#include "pref/graph.h"
#include "serve/protocol.h"
#include "serve/session_host.h"
#include "sketch/eval.h"
#include "sketch/library.h"
#include "sketch/parser.h"
#include "solver/grid_finder.h"
#include "solver/solver_cache.h"
#include "solver/z3_finder.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace compsynth {
namespace {

/// Spin barrier: releases all waiters at once so racing threads actually
/// race instead of running serially on a 1-core machine's scheduler.
class SpinBarrier {
 public:
  explicit SpinBarrier(int parties) : remaining_(parties) {}
  void arrive_and_wait() {
    if (remaining_.fetch_sub(1, std::memory_order_acq_rel) == 1) return;
    while (remaining_.load(std::memory_order_acquire) > 0) {
      std::this_thread::yield();
    }
  }

 private:
  std::atomic<int> remaining_;
};

// --- MetricsRegistry / Histogram -------------------------------------------

TEST(ConcurrencyStressMetrics, HistogramCountMatchesBinSum) {
  constexpr int kThreads = 4;
  constexpr int kPerThread = 5000;
  obs::Histogram h;
  SpinBarrier barrier(kThreads);
  std::vector<std::thread> threads;
  std::vector<double> mins(kThreads), maxes(kThreads), sums(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      util::Rng rng(1000u + static_cast<std::uint64_t>(t));
      double lo = 1e9, hi = -1e9, sum = 0;
      barrier.arrive_and_wait();
      for (int i = 0; i < kPerThread; ++i) {
        const double v = rng.uniform_real(1e-6, 10.0);
        h.record(v);
        lo = std::min(lo, v);
        hi = std::max(hi, v);
        sum += v;
      }
      mins[static_cast<std::size_t>(t)] = lo;
      maxes[static_cast<std::size_t>(t)] = hi;
      sums[static_cast<std::size_t>(t)] = sum;
    });
  }
  for (std::thread& th : threads) th.join();

  EXPECT_EQ(h.count(), static_cast<long>(kThreads) * kPerThread);
  // Every recorded sample landed in exactly one bin: quantile(1.0) walks
  // the bins to the last rank, which only exists if no bin increment was
  // lost. Cross-check through the exact aggregates.
  double expect_min = 1e9, expect_max = -1e9, expect_sum = 0;
  for (int t = 0; t < kThreads; ++t) {
    expect_min = std::min(expect_min, mins[static_cast<std::size_t>(t)]);
    expect_max = std::max(expect_max, maxes[static_cast<std::size_t>(t)]);
    expect_sum += sums[static_cast<std::size_t>(t)];
  }
  EXPECT_DOUBLE_EQ(h.min(), expect_min);
  EXPECT_DOUBLE_EQ(h.max(), expect_max);
  EXPECT_NEAR(h.sum(), expect_sum, 1e-6 * expect_sum);
  EXPECT_GE(h.quantile(1.0), h.quantile(0.0));
}

// Pins the first-record min/max fix (obs/metrics.cpp): before the
// +/-infinity seeds, a thread that observed count_ == 0 could CAS its own
// value over a legitimately recorded 0.0, because 0.0 was indistinguishable
// from the unrecorded sentinel. With 0.0 and -1.0 racing, a lost update
// shows up as max() == -1 (the 0.0 vanished).
TEST(ConcurrencyStressMetrics, FirstRecordRaceCannotLoseAValue) {
  constexpr int kRounds = 300;
  for (int round = 0; round < kRounds; ++round) {
    obs::Histogram h;
    SpinBarrier barrier(2);
    std::thread a([&] {
      barrier.arrive_and_wait();
      h.record(0.0);
    });
    std::thread b([&] {
      barrier.arrive_and_wait();
      h.record(-1.0);
    });
    a.join();
    b.join();
    ASSERT_EQ(h.count(), 2) << "round " << round;
    ASSERT_DOUBLE_EQ(h.min(), -1.0) << "round " << round;
    ASSERT_DOUBLE_EQ(h.max(), 0.0) << "round " << round;
  }
}

TEST(ConcurrencyStressMetrics, RegistryResolutionIsStableUnderContention) {
  constexpr int kThreads = 4;
  constexpr int kPerThread = 2000;
  obs::MetricsRegistry reg;
  SpinBarrier barrier(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      util::Rng rng(2000u + static_cast<std::uint64_t>(t));
      barrier.arrive_and_wait();
      for (int i = 0; i < kPerThread; ++i) {
        // Mix fresh resolutions with held references: both must hit the
        // same instrument, or counts leak.
        reg.counter("stress.counter").add(1);
        reg.gauge("stress.gauge").set(static_cast<double>(i));
        reg.histogram("stress.hist").record(rng.uniform_real(0.0, 1.0));
      }
    });
  }
  for (std::thread& th : threads) th.join();
  EXPECT_EQ(reg.counter("stress.counter").value(),
            static_cast<long>(kThreads) * kPerThread);
  EXPECT_EQ(reg.histogram("stress.hist").count(),
            static_cast<long>(kThreads) * kPerThread);
  EXPECT_EQ(reg.counters().size(), 1u);
  EXPECT_EQ(reg.gauges().size(), 1u);
  EXPECT_EQ(reg.histograms().size(), 1u);
}

// --- SolverCache ------------------------------------------------------------

TEST(ConcurrencyStressSolverCache, BoundedAndCoherentUnderChurn) {
  constexpr int kThreads = 4;
  constexpr int kPerThread = 4000;
  constexpr std::size_t kCapacity = 32;
  constexpr int kKeySpace = 100;  // > capacity, so eviction churns
  solver::SolverCache cache(kCapacity);
  SpinBarrier barrier(kThreads);
  std::vector<long> lookups(kThreads), corrupt(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      util::Rng rng(3000u + static_cast<std::uint64_t>(t));
      long my_lookups = 0, my_corrupt = 0;
      barrier.arrive_and_wait();
      for (int i = 0; i < kPerThread; ++i) {
        const std::string key =
            "k" + std::to_string(rng.uniform_int(0, kKeySpace - 1));
        if (rng.bernoulli(0.5)) {
          cache.store(key, key + ":value");
        } else {
          ++my_lookups;
          // A hit must return the value stored under exactly this key;
          // anything else means entries_/order_ tore under contention.
          if (const auto v = cache.lookup(key)) {
            if (*v != key + ":value") ++my_corrupt;
          }
        }
      }
      lookups[static_cast<std::size_t>(t)] = my_lookups;
      corrupt[static_cast<std::size_t>(t)] = my_corrupt;
    });
  }
  for (std::thread& th : threads) th.join();

  long total_lookups = 0, total_corrupt = 0;
  for (int t = 0; t < kThreads; ++t) {
    total_lookups += lookups[static_cast<std::size_t>(t)];
    total_corrupt += corrupt[static_cast<std::size_t>(t)];
  }
  EXPECT_EQ(total_corrupt, 0);
  EXPECT_LE(cache.size(), kCapacity);
  const solver::SolverCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.hits + stats.misses, total_lookups);
  EXPECT_EQ(stats.stores,
            static_cast<long long>(kThreads) * kPerThread - total_lookups);
  // Eviction kept the map and the FIFO queue in lockstep: a desynced pair
  // would leave size() above the bound or save_state inconsistent.
  EXPECT_NO_THROW({
    solver::SolverCache restored(kCapacity);
    restored.restore_state(cache.save_state());
    EXPECT_EQ(restored.size(), cache.size());
  });
}

// --- ThreadPool -------------------------------------------------------------

TEST(ConcurrencyStressThreadPool, SubmitRacesParallelFor) {
  constexpr int kSubmitters = 2;
  constexpr int kTasksPerSubmitter = 500;
  constexpr std::size_t kRange = 20000;
  std::atomic<long> submitted_done{0};
  std::atomic<long> chunked_done{0};
  {
    util::ThreadPool pool(3);
    SpinBarrier barrier(kSubmitters + 1);
    std::vector<std::thread> submitters;
    for (int t = 0; t < kSubmitters; ++t) {
      submitters.emplace_back([&] {
        barrier.arrive_and_wait();
        for (int i = 0; i < kTasksPerSubmitter; ++i) {
          pool.submit([&submitted_done] {
            submitted_done.fetch_add(1, std::memory_order_relaxed);
          });
        }
      });
    }
    barrier.arrive_and_wait();
    for (int round = 0; round < 10; ++round) {
      pool.parallel_for(
          0, kRange,
          [&](std::size_t lo, std::size_t hi) {
            chunked_done.fetch_add(static_cast<long>(hi - lo),
                                   std::memory_order_relaxed);
          },
          64);
    }
    for (std::thread& th : submitters) th.join();
    // Pool destructor drains the queue: every submitted task completes.
  }
  EXPECT_EQ(submitted_done.load(),
            static_cast<long>(kSubmitters) * kTasksPerSubmitter);
  EXPECT_EQ(chunked_done.load(), static_cast<long>(kRange) * 10);
}

TEST(ConcurrencyStressThreadPool, ParallelForRethrowsWhileSubmitsInterleave) {
  util::ThreadPool pool(3);
  std::atomic<long> noise_done{0};
  std::atomic<bool> stop{false};
  std::thread noise([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      pool.submit(
          [&noise_done] { noise_done.fetch_add(1, std::memory_order_relaxed); });
      std::this_thread::yield();
    }
  });
  for (int round = 0; round < 20; ++round) {
    EXPECT_THROW(
        pool.parallel_for(
            0, 1000,
            [&](std::size_t lo, std::size_t) {
              if (lo == 0) throw std::runtime_error("chunk failure");
            },
            16),
        std::runtime_error);
  }
  stop.store(true);
  noise.join();
}

// --- Portfolio cancel / interrupt storms ------------------------------------

TEST(ConcurrencyStressPortfolio, GridCancelStorm) {
  solver::GridFinder finder(sketch::swan_sketch());
  const pref::PreferenceGraph empty;
  for (int round = 0; round < 15; ++round) {
    std::atomic<bool> cancel{false};
    finder.set_cancel_flag(&cancel);
    SpinBarrier barrier(2);
    std::thread storm([&] {
      barrier.arrive_and_wait();
      // Flip as fast as possible; the searcher polls with relaxed loads, so
      // any observed true must abort promptly and cleanly.
      for (int i = 0; i < 2000; ++i) {
        cancel.store(i % 2 == 0, std::memory_order_relaxed);
      }
      cancel.store(true, std::memory_order_relaxed);
    });
    barrier.arrive_and_wait();
    const solver::FinderResult r = finder.find_distinguishing(empty, 1);
    storm.join();
    // Either the search won the race (kFound) or the cancel landed
    // (kUnknown); anything else means cancellation corrupted the search.
    EXPECT_TRUE(r.status == solver::FinderStatus::kFound ||
                r.status == solver::FinderStatus::kUnknown)
        << "round " << round;
    finder.set_cancel_flag(nullptr);
  }
  // The finder survives the storm in a usable state.
  EXPECT_EQ(finder.find_distinguishing(empty, 1).status,
            solver::FinderStatus::kFound);
}

TEST(ConcurrencyStressPortfolio, Z3InterruptStorm) {
  solver::FinderConfig config;
  config.timeout_ms = 60000;
  solver::Z3Finder finder(sketch::swan_sketch(), config);
  const pref::PreferenceGraph empty;
  std::atomic<bool> stop{false};
  std::thread storm([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      finder.interrupt();
      std::this_thread::yield();
    }
  });
  for (int round = 0; round < 10; ++round) {
    const solver::FinderResult r = finder.find_distinguishing(empty, 1);
    // An interrupt mid-check yields kUnknown; between checks it is absorbed
    // by reset_after_interrupt on the next entry. Both are fine — a crash,
    // a hang or any other status is not.
    EXPECT_TRUE(r.status == solver::FinderStatus::kFound ||
                r.status == solver::FinderStatus::kUnknown)
        << "round " << round;
  }
  stop.store(true);
  storm.join();
  // With the storm over, the finder recovers and answers authoritatively.
  EXPECT_EQ(finder.find_distinguishing(empty, 1).status,
            solver::FinderStatus::kFound);
}

// --- SessionHost ------------------------------------------------------------

constexpr char kServeSketch[] = R"(
sketch serve(throughput in [0, 10], latency in [0, 100]) {
  hole weight in grid(0, 0.25, 5);
  hole bonus_thrsh in grid(0, 20, 5);
  if latency <= bonus_thrsh
  then throughput - weight*latency + 100
  else throughput - weight*latency
}
)";

struct StressTempRoot {
  std::filesystem::path path;
  StressTempRoot() {
    static std::atomic<int> counter{0};
    path = std::filesystem::temp_directory_path() /
           ("compsynth_stress_test_" + std::to_string(::getpid()) + "_" +
            std::to_string(counter.fetch_add(1)));
    std::filesystem::create_directories(path);
  }
  ~StressTempRoot() {
    std::error_code ec;
    std::filesystem::remove_all(path, ec);
  }
};

/// Drives one session to completion through the host API, judging each pair
/// against a latent target assignment. Runs on a plain thread, so failures
/// are reported through the returned struct instead of gtest macros
/// (EXPECT_* is not safe off the main thread).
struct DriverOutcome {
  bool completed = false;
  long answers = 0;
  std::string error;
};

DriverOutcome drive_session(serve::SessionHost& host, const sketch::Sketch& sk,
                            const std::string& id,
                            const sketch::HoleAssignment& target,
                            int evict_every) {
  DriverOutcome out;
  for (int step = 0; step < 5000; ++step) {
    serve::SessionView view;
    const serve::HostResult r = host.next(id, 30000, &view);
    if (!r.ok) {
      out.error = "next: " + r.code + ": " + r.message;
      return out;
    }
    if (view.phase == serve::SessionPhase::kDone) {
      out.completed = true;
      return out;
    }
    if (view.phase != serve::SessionPhase::kWaiting) {
      out.error = std::string("unexpected phase ") + phase_name(view.phase) +
                  (view.phase == serve::SessionPhase::kFailed
                       ? ": " + view.error
                       : "");
      return out;
    }
    const double va = sketch::eval(sk, target, view.pending->a.metrics);
    const double vb = sketch::eval(sk, target, view.pending->b.metrics);
    const oracle::Preference pref = va > vb + 1e-4 ? oracle::Preference::kFirst
                                    : vb > va + 1e-4
                                        ? oracle::Preference::kSecond
                                        : oracle::Preference::kTie;
    const serve::HostResult ar = host.answer(id, view.pending->index, pref);
    if (!ar.ok) {
      out.error = "answer: " + ar.code + ": " + ar.message;
      return out;
    }
    ++out.answers;
    if (evict_every > 0 && out.answers % evict_every == 0) {
      const serve::HostResult er = host.evict(id);
      if (!er.ok) {
        out.error = "evict: " + er.code + ": " + er.message;
        return out;
      }
    }
  }
  out.error = "session did not complete within the step budget";
  return out;
}

long logged_answer_count(const std::filesystem::path& root,
                         const std::string& id) {
  std::ifstream in(root / id / "answers.log");
  long n = 0;
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty()) ++n;
  }
  return n;
}

TEST(ConcurrencyStressServe, ConcurrentSessionsLoseNoAnswers) {
  constexpr int kSessions = 4;
  const sketch::Sketch sk = sketch::parse_sketch(kServeSketch);
  StressTempRoot root;
  util::ThreadPool pool(3);
  serve::HostConfig config;
  config.root = root.path.string();
  config.max_active = 2;  // below kSessions: the LRU churns mid-drive
  config.pool = &pool;
  serve::SessionHost host(config);
  host.register_sketch(sk);

  std::vector<DriverOutcome> outcomes(kSessions);
  SpinBarrier barrier(kSessions);
  std::vector<std::thread> drivers;
  for (int i = 0; i < kSessions; ++i) {
    drivers.emplace_back([&, i] {
      const std::string id = "stress-" + std::to_string(i);
      serve::CreateParams params;
      params.id = id;
      params.seed = 100u + static_cast<std::uint64_t>(i);
      params.initial = 5;
      params.pairs = 1;
      params.max_iters = 200;
      barrier.arrive_and_wait();
      const serve::HostResult cr = host.create(params);
      if (!cr.ok) {
        outcomes[static_cast<std::size_t>(i)].error =
            "create: " + cr.code + ": " + cr.message;
        return;
      }
      const sketch::HoleAssignment target{
          {static_cast<std::int64_t>(i % 5),
           static_cast<std::int64_t>((static_cast<std::uint64_t>(i) * 3 + 1) %
                                     5)}};
      outcomes[static_cast<std::size_t>(i)] =
          drive_session(host, sk, id, target, /*evict_every=*/3);
    });
  }
  for (std::thread& th : drivers) th.join();

  for (int i = 0; i < kSessions; ++i) {
    const DriverOutcome& out = outcomes[static_cast<std::size_t>(i)];
    const std::string id = "stress-" + std::to_string(i);
    EXPECT_TRUE(out.completed) << id << ": " << out.error;
    // Durability-before-ack means every acked answer is a log line: a
    // mismatch here is a lost (or duplicated) answer under concurrency.
    EXPECT_EQ(logged_answer_count(root.path, id), out.answers) << id;
    serve::SessionView view;
    const serve::HostResult ir = host.inspect(id, &view);
    ASSERT_TRUE(ir.ok) << id << ": " << ir.code;
    EXPECT_EQ(view.phase == serve::SessionPhase::kDone ||
                  view.phase == serve::SessionPhase::kSwapped,
              true)
        << id << ": " << phase_name(view.phase);
  }
  const serve::HostStats stats = host.stats();
  EXPECT_EQ(stats.sessions_created, kSessions);
  EXPECT_LE(stats.sessions_resident, 2);
  host.drain();
}

}  // namespace
}  // namespace compsynth
