#include "session/checkpoint.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <utility>

#include "obs/run_context.h"

namespace compsynth::session {

namespace fs = std::filesystem;

namespace {

std::string snapshot_name(const std::string& prefix, int iteration) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "-%06d", iteration);
  return prefix + buf + kSnapshotExtension;
}

bool has_snapshot_extension(const fs::path& p) {
  return p.extension() == kSnapshotExtension;
}

}  // namespace

CheckpointManager::CheckpointManager(CheckpointConfig config)
    : config_(std::move(config)) {
  if (config_.prefix.empty()) {
    throw SnapshotError("CheckpointManager: empty snapshot prefix");
  }
  if (config_.directory.empty()) {
    throw SnapshotError("CheckpointManager: empty snapshot directory");
  }
  std::error_code ec;
  fs::create_directories(config_.directory, ec);
  if (ec) {
    throw SnapshotError("CheckpointManager: cannot create directory '" +
                        config_.directory + "': " + ec.message());
  }
}

std::string CheckpointManager::write(const Snapshot& snap) {
  const std::string path =
      (fs::path(config_.directory) / snapshot_name(config_.prefix,
                                                   snap.meta.iteration))
          .string();

  const bool torn =
      config_.injector != nullptr && config_.injector->torn_write();
  if (torn) {
    // Simulate a crash mid-write on a filesystem without the atomic rename
    // protocol: a truncated snapshot lands at the *final* path. Recovery
    // must detect it (short payload / CRC mismatch) and fall back.
    const std::string bytes = encode(snap);
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out) throw SnapshotError("cannot open '" + path + "' for writing");
    const auto cut = static_cast<std::streamsize>(bytes.size() / 2);
    out.write(bytes.data(), cut);
    if (obs::active(config_.obs)) {
      config_.obs->count("session.torn_writes");
      if (config_.obs->tracing()) {
        obs::TraceEvent e("fault");
        e.str("site", "checkpoint")
            .str("kind", "torn_write")
            .integer("iteration", snap.meta.iteration)
            .str("path", path);
        config_.obs->emit(e);
      }
    }
  } else {
    write_file(snap, path);
  }

  if (obs::active(config_.obs)) {
    config_.obs->count("session.checkpoint_writes");
    if (config_.obs->tracing()) {
      obs::TraceEvent e("checkpoint_write");
      e.str("path", path)
          .integer("iteration", snap.meta.iteration)
          .boolean("torn", torn);
      config_.obs->emit(e);
    }
  }

  // Retention: keep the newest `keep` snapshots of this prefix (name order
  // == iteration order thanks to the zero-padded counter).
  if (config_.keep > 0) {
    std::vector<std::string> mine = list();
    while (mine.size() > static_cast<std::size_t>(config_.keep)) {
      std::error_code ec;
      fs::remove(mine.front(), ec);  // best effort; recovery tolerates leftovers
      mine.erase(mine.begin());
    }
  }
  return path;
}

std::vector<std::string> CheckpointManager::list() const {
  std::vector<std::string> out;
  std::error_code ec;
  for (fs::directory_iterator it(config_.directory, ec), end;
       !ec && it != end; it.increment(ec)) {
    const fs::path& p = it->path();
    if (!has_snapshot_extension(p)) continue;
    if (p.filename().string().rfind(config_.prefix + "-", 0) != 0) continue;
    out.push_back(p.string());
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::optional<Snapshot> CheckpointManager::recover_latest(
    const std::string& directory, std::string* path_out,
    std::vector<std::string>* corrupt) {
  std::vector<std::string> candidates;
  std::error_code ec;
  for (fs::directory_iterator it(directory, ec), end; !ec && it != end;
       it.increment(ec)) {
    if (has_snapshot_extension(it->path())) {
      candidates.push_back(it->path().string());
    }
  }
  std::sort(candidates.rbegin(), candidates.rend());  // newest first
  for (const std::string& path : candidates) {
    try {
      Snapshot snap = read_file(path);
      if (path_out != nullptr) *path_out = path;
      return snap;
    } catch (const SnapshotError&) {
      if (corrupt != nullptr) corrupt->push_back(path);
    }
  }
  return std::nullopt;
}

std::function<void(const synth::SessionState&)> checkpoint_hook(
    CheckpointManager& manager, SnapshotMeta meta) {
  return [&manager, meta](const synth::SessionState& state) {
    Snapshot snap;
    snap.meta = meta;
    snap.meta.iteration = state.iterations;
    snap.state = state;
    manager.write(snap);
  };
}

}  // namespace compsynth::session
