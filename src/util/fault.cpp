#include "util/fault.h"

#include <algorithm>
#include <chrono>
#include <sstream>
#include <thread>

namespace compsynth::util {

std::string FaultInjector::save_state() const {
  MutexLock lock(mu_);
  std::ostringstream os;
  os << "faults " << injected_ << '\n' << rng_.save_state() << '\n';
  return os.str();
}

void FaultInjector::restore_state(const std::string& state) {
  std::istringstream is(state);
  std::string tag;
  long injected = 0;
  if (!(is >> tag >> injected) || tag != "faults") {
    throw std::invalid_argument("FaultInjector::restore_state: malformed state");
  }
  is.ignore();  // the newline after the counter
  std::string rng_state;
  std::getline(is, rng_state);
  MutexLock lock(mu_);
  rng_.restore_state(rng_state);  // throws before any member is touched
  injected_ = injected;
}

double RetryPolicy::backoff_before(int attempt) const {
  if (attempt <= 1 || initial_backoff_s <= 0) return 0;
  double backoff = initial_backoff_s;
  for (int i = 2; i < attempt; ++i) backoff *= backoff_multiplier;
  return std::min(backoff, max_backoff_s);
}

void sleep_seconds(double s) {
  if (s <= 0) return;
  std::this_thread::sleep_for(std::chrono::duration<double>(s));
}

}  // namespace compsynth::util
