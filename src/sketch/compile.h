// Compiled evaluator for sketch expressions.
//
// Lowers a (type-checked) Expr tree into a flat instruction tape executed by
// a small stack machine: one contiguous std::vector<Instr>, no recursion, no
// per-node shared_ptr hops. Bulk candidate scoring — GridFinder's version
// space sync, distinguishing-pair search and bisection scoring — runs the
// tape instead of the tree interpreter; eval.h remains the reference
// semantics and tests/compile_test.cpp cross-checks the two on every library
// sketch plus fuzzer-generated ASTs (including error paths).
//
// Semantics are bit-for-bit those of eval_numeric/eval_bool:
//   * kIte evaluates the condition and then ONLY the taken branch; kChoice
//     evaluates only the selected alternative (selector rounded with
//     std::llround and clamped to [0, N-1]). Branches therefore compile to
//     jump-guarded regions — a division by zero in an untaken branch must
//     not throw.
//   * Division by zero throws EvalError("division by zero") when reached.
//   * Ill-typed nodes (boolean in numeric position or vice versa) compile to
//     kRaise instructions that throw the interpreter's exact message when —
//     and only when — execution reaches them; compilation itself never
//     throws on ill-typed input.
//   * && / || evaluate both operands (no short-circuit), like the tree
//     interpreter and the Z3 encoding.
// Constant folding only replaces a subtree with the double the interpreter
// would have produced for it (and never folds a division whose divisor folds
// to zero), so folded and unfolded tapes agree bit-for-bit.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "sketch/ast.h"
#include "sketch/eval.h"

namespace compsynth::sketch {

namespace internal {
struct BatchProgram;
}  // namespace internal

/// One tape instruction. Booleans live on the same stack as numbers,
/// encoded as 1.0 / 0.0 (comparisons push exactly these two values).
struct Instr {
  enum class Op : std::uint8_t {
    kPushConst,   // push value
    kPushMetric,  // push metrics[a]
    kPushHole,    // push holes[a]
    kNeg,         // unary minus on top of stack
    kAdd, kSub, kMul,
    kDiv,         // throws EvalError on zero divisor
    kMin, kMax,
    kLt, kLe, kGt, kGe, kEq, kNe,  // pop 2 numbers, push 1.0 / 0.0
    kAnd, kOr,    // pop 2 booleans (both already evaluated), push combined
    kNot,         // invert boolean on top of stack
    kJump,        // pc += a (relative to the instruction after this one)
    kJumpIfZero,  // pop; if it is 0.0, pc += a
    kChoice,      // clamp(llround(holes[a])) into the jump table at
                  // tables[b] (layout: count, then count offsets)
    kRaise,       // throw EvalError: a = 0 numeric-position, 1 bool-position
  };

  Op op;
  std::int32_t a = 0;  // metric/hole id, jump offset, table base or message id
  std::int32_t b = 0;  // kChoice: base index into the jump-offset table
  double value = 0;    // kPushConst payload
};

/// A sketch body lowered to a tape, ready for repeated evaluation.
///
/// Immutable after construction; eval/eval_many are const and safe to call
/// concurrently from many threads (each call uses its own value stack).
class CompiledSketch {
 public:
  /// Compiles the sketch's body. Never throws on the (always well-typed)
  /// trees a Sketch can hold; arity errors surface at eval time exactly as
  /// with eval_with_values.
  explicit CompiledSketch(const Sketch& sketch);

  /// Compiles a bare numeric expression over `metric_count` metrics and
  /// `hole_count` holes — the tree need not be well-typed (ill-typed nodes
  /// become runtime raises). Used by the differential tests.
  CompiledSketch(const Expr& body, std::size_t metric_count,
                 std::size_t hole_count);

  /// Evaluates the tape. Argument and error semantics match
  /// eval_with_values(sketch, holes, metrics) bit-for-bit.
  double eval(std::span<const double> metrics,
              std::span<const double> holes) const;

  /// Batched evaluation over `out.size()` scenarios stored contiguously in
  /// `metrics_flat` (scenario i occupies [i*metric_count, (i+1)*metric_count)).
  /// Equivalent to calling eval per scenario, amortizing the stack setup.
  void eval_many(std::span<const double> metrics_flat,
                 std::span<const double> holes, std::span<double> out) const;

  std::size_t metric_count() const { return metric_count_; }
  std::size_t hole_count() const { return hole_count_; }

  /// Introspection for tests and diagnostics.
  const std::vector<Instr>& tape() const { return tape_; }
  std::size_t max_stack() const { return max_stack_; }

 private:
  double run(std::span<const double> metrics, std::span<const double> holes,
             double* stack) const;

  std::vector<Instr> tape_;
  std::vector<std::int32_t> tables_;  // kChoice jump tables, back to back
  std::size_t metric_count_ = 0;
  std::size_t hole_count_ = 0;
  std::size_t max_stack_ = 0;
};

// --- Batched (multi-candidate) evaluation ------------------------------------

/// Number of candidates a BatchTape evaluates per call. Fixed at 8 on every
/// back-end (AVX2 uses two 4-wide registers, the scalar fallback plain
/// 8-element loops) so batch shapes, survivor grouping and serialized state
/// are identical regardless of which ISA the dispatcher selects.
inline constexpr std::size_t kBatchLaneWidth = 8;

/// Lane kernels the runtime dispatcher can select between.
enum class LaneIsa : std::uint8_t {
  kScalar = 0,  // portable fallback, always available
  kAvx2 = 1,    // x86-64 AVX2, built only when the toolchain supports -mavx2
};

/// Stable lower-case name ("scalar" / "avx2") for traces and benches.
const char* lane_isa_name(LaneIsa isa);

/// True when `isa` can run on this build and host (kScalar always can).
bool lane_isa_supported(LaneIsa isa);

/// The kernel BatchTape::eval_lanes currently dispatches to. Selected once
/// at startup: COMPSYNTH_LANE_ISA=scalar|avx2|auto overrides auto-detection
/// (an unsupported request falls back to scalar).
LaneIsa active_lane_isa();

/// Overrides the dispatched kernel; returns false (and changes nothing) if
/// `isa` is unsupported. For benches and tests that must measure both paths
/// in one process — production code relies on the startup selection.
bool set_active_lane_isa(LaneIsa isa);

/// Per-lane evaluation outcome. A lane with any code but kNone took a
/// raising path: its output value is meaningless and the scalar interpreter
/// would have thrown the corresponding EvalError for that candidate.
enum class LaneError : std::uint8_t {
  kNone = 0,
  kDivZero = 1,       // EvalError("division by zero")
  kRaiseNumeric = 2,  // boolean node in numeric position
  kRaiseBool = 3,     // numeric node in boolean position
};

/// The exact EvalError message the scalar interpreter uses for `err`
/// (nullptr for kNone).
const char* lane_error_message(LaneError err);

/// Throws the EvalError the scalar interpreter would have thrown for `err`.
[[noreturn]] void throw_lane_error(LaneError err);

/// A sketch body lowered once into a structured masked tape that evaluates
/// kLaneWidth candidates against one scenario per call, candidates stored
/// structure-of-arrays. Semantics per lane are bit-for-bit those of
/// CompiledSketch::eval / the tree interpreter, including lazy kIte/kChoice
/// (masked regions instead of jumps) and reachable-only errors, which
/// surface as per-lane poison codes instead of exceptions so one raising
/// candidate cannot abort its batch siblings.
///
/// Immutable after construction; eval_lanes is const and safe to call
/// concurrently from many threads (each call uses its own stacks).
class BatchTape {
 public:
  static constexpr std::size_t kLaneWidth = kBatchLaneWidth;

  explicit BatchTape(const Sketch& sketch);

  /// Compiles a bare numeric expression; ill-typed nodes become per-lane
  /// poison at run time, mirroring CompiledSketch. Used by the tests.
  BatchTape(const Expr& body, std::size_t metric_count,
            std::size_t hole_count);

  BatchTape(BatchTape&&) noexcept;
  BatchTape& operator=(BatchTape&&) noexcept;
  ~BatchTape();

  /// Evaluates kLaneWidth candidates against one scenario.
  ///   metrics      — metric_count doubles (one scenario)
  ///   holes_lanes  — hole_count x kLaneWidth doubles, SoA: hole h of lane l
  ///                  at holes_lanes[h * kLaneWidth + l]
  ///   out, err     — kLaneWidth results / per-lane error codes; out[l] is
  ///                  meaningful only when err[l] == LaneError::kNone
  /// Fewer than kLaneWidth real candidates? Pad the spare lanes with any
  /// in-domain values (e.g. a copy of the last real candidate) and ignore
  /// their outputs. Throws EvalError only for arity mismatches.
  void eval_lanes(std::span<const double> metrics,
                  std::span<const double> holes_lanes, double* out,
                  LaneError* err) const;

  std::size_t metric_count() const;
  std::size_t hole_count() const;

  /// Introspection for tests and diagnostics.
  std::size_t op_count() const;
  std::size_t max_stack() const;       // value-stack bound, in lane vectors
  std::size_t max_mask_depth() const;  // mask-frame nesting bound

 private:
  std::unique_ptr<internal::BatchProgram> program_;
};

/// Vectorized lane-compare reductions for the batch survivor loops, dispatched
/// exactly like BatchTape::eval_lanes (scalar / AVX2, per active_lane_isa()).
/// Both take kBatchLaneWidth-element arrays and return a bitmask with bit l
/// set when lane l satisfies the predicate; NaN operands compare false in
/// both, matching the scalar consistency checks `a > b` and
/// `std::abs(a - b) > bound`.
unsigned lane_gt_bits(const double* a, const double* b);
unsigned lane_abs_diff_gt_bits(const double* a, const double* b, double bound);

}  // namespace compsynth::sketch
