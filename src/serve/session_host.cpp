#include "serve/session_host.h"

#include <chrono>
#include <cstdint>
#include <fstream>
#include <iterator>
#include <stdexcept>
#include <utility>

#include "obs/trace.h"
#include "session/checkpoint.h"
#include "session/snapshot.h"
#include "sketch/printer.h"
#include "synth/synthesizer.h"

namespace compsynth::serve {

namespace {

// Thrown by ReplayOracle when the answer log is exhausted: the synthesizer
// has discovered the session's next distinguishing pair and must now wait
// for a human. Deliberately NOT a std::exception (and not a
// util::TransientError), so no retry wrapper or generic handler between the
// oracle and run_advance can swallow it.
struct PendingQuerySignal {
  PendingQuery query;
};

// The passive architect: replays acked answers from the session log,
// verifying that the resumed loop re-asks the identical queries, and
// signals the first unanswered query instead of blocking.
class ReplayOracle final : public oracle::Oracle {
 public:
  explicit ReplayOracle(const std::vector<AnswerRecord>& log) : log_(&log) {}

 protected:
  oracle::Preference do_compare(const pref::Scenario& a,
                                const pref::Scenario& b) override {
    if (consumed_ < log_->size()) {
      const AnswerRecord& rec = (*log_)[consumed_];
      const std::string ka = scenario_key(a);
      const std::string kb = scenario_key(b);
      if (rec.key_a != ka || rec.key_b != kb) {
        throw std::runtime_error(
            "serve replay diverged at answers.log entry " +
            std::to_string(consumed_) + ": logged pair [" + rec.key_a +
            " | " + rec.key_b + "] but the resumed loop asked [" + ka +
            " | " + kb + "]");
      }
      return (*log_)[consumed_++].answer;
    }
    throw PendingQuerySignal{
        {static_cast<long>(consumed_), a, b}};
  }

  // The consumed-count is the session's real answer cursor: the base class
  // counts compare() calls, but the seed-phase ranking consumes answers
  // through do_compare directly, so we persist our own position.
  void do_save_state(std::ostream& out) const override {
    out << "serve " << consumed_ << "\n";
  }
  void do_restore_state(std::istream& in) override {
    std::string tag;
    std::size_t n = 0;
    if (!(in >> tag >> n) || tag != "serve") {
      throw std::invalid_argument("ReplayOracle: malformed state blob");
    }
    consumed_ = n;
  }

 private:
  const std::vector<AnswerRecord>* log_;
  std::size_t consumed_ = 0;
};

const char* status_name(synth::SynthesisStatus status) {
  switch (status) {
    case synth::SynthesisStatus::kConverged: return "converged";
    case synth::SynthesisStatus::kIterationLimit: return "iteration_limit";
    case synth::SynthesisStatus::kNoCandidate: return "no_candidate";
    case synth::SynthesisStatus::kSolverGaveUp: return "solver_gave_up";
  }
  return "?";
}

// Stable across processes (std::hash is not guaranteed to be), so a
// restarted daemon re-derives the same per-session fault stream.
std::uint64_t fnv1a64(std::string_view s) {
  std::uint64_t h = 1469598103934665603ULL;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

void atomic_write_file(const std::filesystem::path& path,
                       const std::string& content) {
  const std::filesystem::path tmp = path.string() + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    out << content;
    out.flush();
    if (!out) {
      throw std::runtime_error("cannot write " + tmp.string());
    }
  }
  std::filesystem::rename(tmp, path);
}

std::optional<obs::JsonObject> read_flat_json_file(
    const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  std::string line;
  std::getline(in, line);
  return obs::parse_flat_json(line);
}

std::string json_string_field(const obs::JsonObject& obj, const char* name) {
  const auto it = obj.find(name);
  if (it == obj.end() || it->second.kind != obs::JsonValue::Kind::kString) {
    throw std::runtime_error(std::string("missing string field '") + name +
                             "'");
  }
  return it->second.str;
}

long long json_int_field(const obs::JsonObject& obj, const char* name) {
  const auto it = obj.find(name);
  if (it == obj.end() || it->second.kind != obs::JsonValue::Kind::kNumber) {
    throw std::runtime_error(std::string("missing numeric field '") + name +
                             "'");
  }
  return static_cast<long long>(it->second.num);
}

}  // namespace

const char* phase_name(SessionPhase phase) {
  switch (phase) {
    case SessionPhase::kAdvancing: return "advancing";
    case SessionPhase::kWaiting: return "waiting";
    case SessionPhase::kDone: return "done";
    case SessionPhase::kFailed: return "failed";
    case SessionPhase::kSwapped: return "swapped";
  }
  return "?";
}

struct SessionHost::SessionEntry {
  util::Mutex mu;
  /// Signaled on every phase change and on detach; next/answer/drop wait.
  util::CondVar cv;

  // Immutable after construction (mirrors session.json).
  CreateParams params;
  std::filesystem::path dir;
  obs::RunContext run_obs;  // per-session context; address must stay stable
  std::unique_ptr<session::CheckpointManager> ckpt;

  std::ofstream log_out GUARDED_BY(mu);
  std::vector<AnswerRecord> log GUARDED_BY(mu);
  SessionPhase phase GUARDED_BY(mu) = SessionPhase::kAdvancing;
  /// An advance task is in flight.
  bool advancing GUARDED_BY(mu) = false;
  /// Dropped from the resident map (swapped out).
  bool detached GUARDED_BY(mu) = false;
  std::optional<PendingQuery> pending GUARDED_BY(mu);
  /// Newest checkpoint, in memory.
  std::optional<synth::SessionState> snap GUARDED_BY(mu);
  int iterations GUARDED_BY(mu) = 0;
  std::string done_status GUARDED_BY(mu);
  std::string objective GUARDED_BY(mu);
  std::string error GUARDED_BY(mu);

  // Guarded by the *host's* mu_, not this entry's mu (GUARDED_BY cannot
  // name another object's capability from here); only SessionHost code
  // holding mu_ may touch it.
  std::uint64_t lru = 0;
};

SessionHost::SessionHost(HostConfig config)
    : config_(std::move(config)), root_(config_.root) {
  if (root_.empty()) {
    throw std::invalid_argument("SessionHost: root directory is required");
  }
  std::filesystem::create_directories(root_);
}

SessionHost::~SessionHost() { drain(); }

void SessionHost::register_sketch(sketch::Sketch sk) {
  sketches_.push_back(std::move(sk));
}

const sketch::Sketch* SessionHost::find_sketch(const std::string& name) const {
  if (sketches_.empty()) return nullptr;
  if (name.empty()) return &sketches_.front();
  for (const sketch::Sketch& sk : sketches_) {
    if (sk.name() == name) return &sk;
  }
  return nullptr;
}

// --- per-entry plumbing ----------------------------------------------------

void SessionHost::write_session_json(const SessionEntry& e) {
  JsonWriter w;
  w.integer("v", 1);
  w.str("id", e.params.id);
  w.str("sketch", e.params.sketch);
  w.str("backend", e.params.backend);
  w.integer("seed", static_cast<long long>(e.params.seed));
  w.integer("initial", e.params.initial);
  w.integer("pairs", e.params.pairs);
  w.integer("max_iters", e.params.max_iters);
  atomic_write_file(e.dir / "session.json", w.done() + "\n");
}

namespace {

CreateParams read_session_json(const std::filesystem::path& path) {
  const std::optional<obs::JsonObject> obj = read_flat_json_file(path);
  if (!obj) {
    throw std::runtime_error("cannot parse " + path.string());
  }
  CreateParams p;
  p.id = json_string_field(*obj, "id");
  p.sketch = json_string_field(*obj, "sketch");
  p.backend = json_string_field(*obj, "backend");
  p.seed = static_cast<std::uint64_t>(json_int_field(*obj, "seed"));
  p.initial = static_cast<int>(json_int_field(*obj, "initial"));
  p.pairs = static_cast<int>(json_int_field(*obj, "pairs"));
  p.max_iters = static_cast<int>(json_int_field(*obj, "max_iters"));
  return p;
}

}  // namespace

void SessionHost::load_answer_log(SessionEntry& e) REQUIRES(e.mu) {
  const std::filesystem::path path = e.dir / "answers.log";
  std::string content;
  {
    std::ifstream in(path, std::ios::binary);
    if (!in) return;  // no answers yet
    content.assign(std::istreambuf_iterator<char>(in),
                   std::istreambuf_iterator<char>());
  }
  std::size_t pos = 0;
  for (;;) {
    const std::size_t nl = content.find('\n', pos);
    // A trailing fragment without its newline is a torn append (the answer
    // was never acked); drop it and re-present the query.
    if (nl == std::string::npos) break;
    const std::string_view line(content.data() + pos, nl - pos);
    pos = nl + 1;
    if (line.empty()) continue;
    const std::size_t p1 = line.find('|');
    const std::size_t p2 = p1 == std::string_view::npos
                               ? std::string_view::npos
                               : line.find('|', p1 + 1);
    const std::size_t p3 = p2 == std::string_view::npos
                               ? std::string_view::npos
                               : line.find('|', p2 + 1);
    if (p3 == std::string_view::npos) {
      throw std::runtime_error("answers.log corrupt: malformed line");
    }
    long index = -1;
    try {
      index = std::stol(std::string(line.substr(0, p1)));
    } catch (const std::exception&) {
      throw std::runtime_error("answers.log corrupt: bad index");
    }
    if (index != static_cast<long>(e.log.size())) {
      throw std::runtime_error("answers.log corrupt: index out of sequence");
    }
    const std::optional<oracle::Preference> answer =
        parse_preference(line.substr(p1 + 1, p2 - p1 - 1));
    if (!answer) {
      throw std::runtime_error("answers.log corrupt: bad answer");
    }
    AnswerRecord rec;
    rec.answer = *answer;
    rec.key_a = std::string(line.substr(p2 + 1, p3 - p2 - 1));
    rec.key_b = std::string(line.substr(p3 + 1));
    e.log.push_back(std::move(rec));
  }
  // Dropping the torn tail in memory is not enough: the bytes must also go
  // from the file, or the next acked answer would append onto the fragment
  // and fuse into one corrupt line. Must run before open_answer_log.
  if (pos < content.size()) {
    std::filesystem::resize_file(path, pos);
  }
}

void SessionHost::drain() {
  const util::MutexLock lk(mu_);
  drained_.wait(mu_, [this]() REQUIRES(mu_) { return in_flight_ == 0; });
}

HostStats SessionHost::stats() const {
  const util::MutexLock lk(mu_);
  return stats_;
}

SessionView SessionHost::view_of(SessionEntry& e) const REQUIRES(e.mu) {
  SessionView v;
  v.id = e.params.id;
  v.phase = e.phase;
  v.resident = !e.detached;
  v.answers = static_cast<long>(e.log.size());
  v.iterations = e.iterations;
  if (e.phase == SessionPhase::kWaiting) v.pending = e.pending;
  v.status = e.done_status;
  v.objective = e.objective;
  v.error = e.error;
  return v;
}

// Builds the per-entry runtime pieces shared by create and rehydrate: the
// session's RunContext and its CheckpointManager (with a per-session
// deterministic fault injector when torn-write rehearsal is on). The
// answers.log append stream is opened separately (open_answer_log) because
// rehydration must truncate any torn tail from the log *before* an append
// stream exists.
void SessionHost::init_entry(SessionEntry& e) {
  e.run_obs.metrics = config_.obs.metrics;
  e.run_obs.tracer = config_.obs.tracer;
  e.run_obs.run_id = e.params.id;
  e.run_obs.seed = e.params.seed;
  session::CheckpointConfig ck;
  ck.directory = (e.dir).string();
  ck.keep = config_.keep_snapshots;
  ck.obs = &e.run_obs;
  if (config_.checkpoint_faults.torn_write_p > 0) {
    util::FaultPlan plan;
    plan.torn_write_p = config_.checkpoint_faults.torn_write_p;
    plan.seed = config_.checkpoint_faults.seed ^ fnv1a64(e.params.id);
    ck.injector = std::make_shared<util::FaultInjector>(plan);
  }
  e.ckpt = std::make_unique<session::CheckpointManager>(ck);
}

void SessionHost::open_answer_log(SessionEntry& e) REQUIRES(e.mu) {
  e.log_out.open(e.dir / "answers.log", std::ios::app | std::ios::binary);
  if (!e.log_out) {
    throw std::runtime_error("cannot open " + (e.dir / "answers.log").string());
  }
}

HostResult SessionHost::create(const CreateParams& params) {
  if (!valid_session_id(params.id)) {
    return HostResult::failure(kErrId, "malformed session id");
  }
  if (find_sketch(params.sketch) == nullptr) {
    return HostResult::failure(
        kErrSketch, sketches_.empty()
                        ? "no sketches registered with this daemon"
                        : "sketch '" + params.sketch + "' is not registered");
  }
  if (params.backend != "grid" && params.backend != "bisection" &&
      params.backend != "z3") {
    return HostResult::failure(kErrBackend,
                               "backend must be grid, bisection or z3");
  }
  if (params.initial < 0 || params.pairs < 1 || params.max_iters < 1) {
    return HostResult::failure(kErrField, "initial/pairs/max_iters out of range");
  }

  std::shared_ptr<SessionEntry> e;
  long resident = 0;
  {
    const util::MutexLock lk(mu_);
    if (residents_.count(params.id) != 0) {
      return HostResult::failure(
          kErrExists, "session '" + params.id + "' already exists");
    }
    const std::filesystem::path dir = root_ / params.id;
    std::error_code ec;
    if (std::filesystem::exists(dir, ec)) {
      return HostResult::failure(
          kErrExists, "session '" + params.id + "' already exists on disk");
    }
    std::filesystem::create_directories(dir, ec);
    if (ec) {
      return HostResult::failure(
          kErrInternal, "cannot create " + dir.string() + ": " + ec.message());
    }
    e = std::make_shared<SessionEntry>();
    e->params = params;
    if (e->params.sketch.empty()) {
      e->params.sketch = sketches_.front().name();
    }
    e->dir = dir;
    // The entry is unpublished, so this lock is uncontended; it exists to
    // satisfy the guarded-field contract (log_out is GUARDED_BY(e->mu)).
    // mu_ -> entry mu matches the documented lock order.
    const util::MutexLock elk(e->mu);
    try {
      init_entry(*e);
      open_answer_log(*e);
      write_session_json(*e);
    } catch (const std::exception& ex) {
      // The entry never reached residents_; undo the directory so a
      // transient failure does not poison the id with E_EXISTS forever.
      e->log_out.close();
      std::error_code cleanup_ec;
      std::filesystem::remove_all(dir, cleanup_ec);
      return HostResult::failure(kErrInternal, ex.what());
    }
    e->lru = ++lru_clock_;
    residents_[params.id] = e;
    ++stats_.sessions_created;
    stats_.sessions_resident = static_cast<long>(residents_.size());
    resident = stats_.sessions_resident;
  }
  config_.obs.count("serve.sessions_created");
  config_.obs.gauge("serve.sessions_active", static_cast<double>(resident));
  schedule_advance(e);
  enforce_cap();
  return HostResult::success();
}

std::shared_ptr<SessionHost::SessionEntry> SessionHost::acquire(
    const std::string& id, HostResult* error) {
  std::shared_ptr<SessionEntry> e;
  bool rehydrated = false;
  int snapshot_iteration = -1;
  long replayed = 0;
  {
    const util::MutexLock lk(mu_);
    const auto it = residents_.find(id);
    if (it != residents_.end()) {
      e = it->second;
      e->lru = ++lru_clock_;
    } else {
      e = rehydrate_locked(id, error);
      if (e == nullptr) return nullptr;
      rehydrated = true;
      const util::MutexLock elk(e->mu);
      snapshot_iteration = e->snap ? e->snap->iterations : 0;
      replayed = static_cast<long>(e->log.size());
    }
  }
  if (rehydrated) {
    config_.obs.count("serve.rehydrations");
    config_.obs.gauge("serve.sessions_active",
                      static_cast<double>(stats().sessions_resident));
    if (config_.obs.tracing()) {
      obs::TraceEvent ev("session_rehydrate");
      ev.str("session", id)
          .integer("snapshot_iteration", snapshot_iteration)
          .integer("replayed", replayed);
      config_.obs.emit(ev);
    }
    schedule_advance(e);  // no-op when the session is already done/failed
    enforce_cap();
  }
  return e;
}

std::shared_ptr<SessionHost::SessionEntry> SessionHost::rehydrate_locked(
    const std::string& id, HostResult* error) {
  const std::filesystem::path dir = root_ / id;
  std::error_code ec;
  if (!std::filesystem::exists(dir / "session.json", ec)) {
    *error =
        HostResult::failure(kErrUnknownSession, "unknown session '" + id + "'");
    return nullptr;
  }
  auto e = std::make_shared<SessionEntry>();
  // Unpublished entry: uncontended, taken for the guarded-field contract
  // (load_answer_log fills e->log). mu_ is already held (mu_ -> entry mu).
  const util::MutexLock elk(e->mu);
  try {
    e->params = read_session_json(dir / "session.json");
    if (e->params.id != id) {
      throw std::runtime_error("session.json id mismatch");
    }
    e->dir = dir;
    init_entry(*e);
    load_answer_log(*e);  // truncates any torn tail before the stream opens
    open_answer_log(*e);
    std::string snap_path;
    std::optional<session::Snapshot> snap =
        session::CheckpointManager::recover_latest(dir.string(), &snap_path);
    if (snap) {
      if (snap->meta.backend != e->params.backend ||
          snap->meta.seed != e->params.seed) {
        throw std::runtime_error(
            "snapshot identity (backend/seed) disagrees with session.json");
      }
      e->iterations = snap->state.iterations;
      e->snap = std::move(snap->state);
    }
    const std::optional<obs::JsonObject> done =
        read_flat_json_file(dir / "done.json");
    if (done) {
      e->phase = SessionPhase::kDone;
      e->done_status = json_string_field(*done, "status");
      e->objective = json_string_field(*done, "objective");
      e->iterations = static_cast<int>(json_int_field(*done, "iterations"));
    }
  } catch (const std::exception& ex) {
    *error = HostResult::failure(
        kErrInternal, "cannot rehydrate session '" + id + "': " + ex.what());
    return nullptr;
  }
  e->lru = ++lru_clock_;
  residents_[id] = e;
  ++stats_.rehydrations;
  stats_.sessions_resident = static_cast<long>(residents_.size());
  return e;
}

void SessionHost::schedule_advance(const std::shared_ptr<SessionEntry>& e) {
  {
    const util::MutexLock lk(e->mu);
    if (e->detached || e->advancing || e->phase == SessionPhase::kDone ||
        e->phase == SessionPhase::kFailed) {
      return;
    }
    e->advancing = true;
    e->phase = SessionPhase::kAdvancing;
    e->pending.reset();
  }
  {
    const util::MutexLock lk(mu_);
    ++in_flight_;
    ++stats_.advances;
  }
  config_.obs.count("serve.advances");
  SessionHost* self = this;
  auto task = [self, e] { self->run_advance(e); };
  if (config_.pool != nullptr) {
    config_.pool->submit(std::move(task));
  } else {
    task();
  }
}

void SessionHost::run_advance(const std::shared_ptr<SessionEntry>& e) {
  std::vector<AnswerRecord> log;
  std::optional<synth::SessionState> snap;
  {
    const util::MutexLock lk(e->mu);
    log = e->log;
    snap = e->snap;
  }

  const sketch::Sketch* sk = find_sketch(e->params.sketch);
  std::optional<PendingQuery> pending;
  std::optional<synth::SynthesisResult> result;
  std::string error;
  if (sk == nullptr) {
    error = "sketch '" + e->params.sketch +
            "' is no longer registered with this daemon";
  } else {
    ReplayOracle oracle(log);
    try {
      // A fresh synthesizer per advance: run()/resume() determinism assumes
      // a finder in construction state, and a previous advance that escaped
      // mid-iteration left the old one dirty.
      synth::SynthesisConfig cfg;
      cfg.initial_scenarios = e->params.initial;
      cfg.pairs_per_iteration = e->params.pairs;
      cfg.max_iterations = e->params.max_iters;
      cfg.seed = e->params.seed;
      cfg.grid_threads = config_.grid_threads;
      cfg.keep_transcript = false;
      cfg.obs = e->run_obs;
      cfg.checkpoint_every = config_.checkpoint_every;
      session::SnapshotMeta meta;
      meta.sketch = sk->name();
      meta.backend = e->params.backend;
      meta.seed = e->params.seed;
      meta.run_id = e->params.id;
      const auto to_disk = session::checkpoint_hook(*e->ckpt, meta);
      cfg.checkpoint = [e, to_disk](const synth::SessionState& st) {
        to_disk(st);  // durable first, then the in-memory mirror
        const util::MutexLock lk(e->mu);
        e->snap = st;
        e->iterations = st.iterations;
      };
      synth::Synthesizer s =
          e->params.backend == "z3"
              ? synth::make_z3_synthesizer(*sk, cfg)
              : e->params.backend == "bisection"
                    ? synth::make_bisection_synthesizer(*sk, cfg)
                    : synth::make_grid_synthesizer(*sk, cfg);
      result = snap ? s.resume(oracle, *snap) : s.run(oracle);
    } catch (const PendingQuerySignal& sig) {
      pending = sig.query;
    } catch (const std::exception& ex) {
      error = ex.what();
    }
  }

  std::string objective;
  if (result) {
    if (result->objective && sk != nullptr) {
      objective = sketch::print_instantiated(*sk, *result->objective);
    }
    // Completion is durable before it is visible: a restarted daemon reads
    // done.json instead of re-running the (already converged) loop.
    JsonWriter w;
    w.integer("v", 1);
    w.str("status", status_name(result->status));
    w.str("objective", objective);
    w.integer("iterations", result->iterations);
    w.integer("answers", static_cast<long long>(log.size()));
    try {
      atomic_write_file(e->dir / "done.json", w.done() + "\n");
    } catch (const std::exception& ex) {
      result.reset();
      error = ex.what();
    }
  }

  {
    const util::MutexLock lk(e->mu);
    if (pending) {
      e->pending = *pending;
      e->phase = SessionPhase::kWaiting;
    } else if (result) {
      e->phase = SessionPhase::kDone;
      e->done_status = status_name(result->status);
      e->objective = objective;
      e->iterations = result->iterations;
    } else {
      e->phase = SessionPhase::kFailed;
      e->error = error;
    }
    e->advancing = false;
  }
  e->cv.notify_all();
  {
    const util::MutexLock lk(mu_);
    --in_flight_;
  }
  drained_.notify_all();
}

HostResult SessionHost::next(const std::string& id, int wait_ms,
                             SessionView* view) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(wait_ms > 0 ? wait_ms : 0);
  for (;;) {
    HostResult error;
    const std::shared_ptr<SessionEntry> e = acquire(id, &error);
    if (e == nullptr) return error;
    const util::MutexLock lk(e->mu);
    while (!e->detached && e->phase == SessionPhase::kAdvancing &&
           wait_ms > 0) {
      if (e->cv.wait_until(e->mu, deadline) == std::cv_status::timeout) break;
    }
    if (e->detached) continue;  // swapped out while we looked; re-acquire
    *view = view_of(*e);
    return HostResult::success();
  }
}

HostResult SessionHost::answer(const std::string& id, long index,
                               oracle::Preference answer) {
  for (;;) {
    HostResult error;
    const std::shared_ptr<SessionEntry> e = acquire(id, &error);
    if (e == nullptr) return error;
    util::MutexLock lk(e->mu);
    if (e->detached) continue;
    if (index >= 0 && index < static_cast<long>(e->log.size())) {
      // Idempotent re-delivery of the acked answer succeeds; a contradictory
      // one is refused rather than silently acked-as-OK while the original
      // answer stands.
      const oracle::Preference acked =
          e->log[static_cast<std::size_t>(index)].answer;
      if (answer != acked) {
        return HostResult::failure(
            kErrAnswer, "index " + std::to_string(index) +
                            " was already acked as '" +
                            preference_name(acked) +
                            "'; contradictory re-delivery refused");
      }
      return HostResult::success();
    }
    switch (e->phase) {
      case SessionPhase::kDone:
        return HostResult::failure(kErrState,
                                   "session is done; no query pending");
      case SessionPhase::kFailed:
        return HostResult::failure(kErrState, "session failed: " + e->error);
      case SessionPhase::kAdvancing:
        // An advance is (re)discovering the pending pair — typically the
        // LRU swapped this session out between the client's `next` and its
        // `answer`, and rehydration is replaying. The answer is not wrong,
        // just early: wait for the pair to be re-published, then validate
        // against it.
        e->cv.wait(e->mu, [&]() REQUIRES(e->mu) {
          return e->detached || e->phase != SessionPhase::kAdvancing;
        });
        continue;
      case SessionPhase::kSwapped:
        continue;  // unreachable for resident entries
      case SessionPhase::kWaiting:
        break;
    }
    if (!e->pending || index != e->pending->index) {
      return HostResult::failure(
          kErrIndex,
          "expected index " +
              (e->pending ? std::to_string(e->pending->index) : "?"));
    }
    AnswerRecord rec;
    rec.answer = answer;
    rec.key_a = scenario_key(e->pending->a);
    rec.key_b = scenario_key(e->pending->b);
    // The ack is durable before it is given: log line flushed first.
    e->log_out << e->log.size() << '|' << preference_name(answer) << '|'
               << rec.key_a << '|' << rec.key_b << '\n';
    e->log_out.flush();
    if (!e->log_out) {
      return HostResult::failure(kErrInternal, "cannot append to answers.log");
    }
    e->log.push_back(std::move(rec));
    // schedule_advance re-takes e->mu; drop it first (never held across).
    lk.release();
    schedule_advance(e);
    return HostResult::success();
  }
}

HostResult SessionHost::evict(const std::string& id) {
  std::shared_ptr<SessionEntry> e;
  {
    const util::MutexLock lk(mu_);
    const auto it = residents_.find(id);
    if (it == residents_.end()) {
      std::error_code ec;
      if (!std::filesystem::exists(root_ / id / "session.json", ec)) {
        return HostResult::failure(kErrUnknownSession,
                                   "unknown session '" + id + "'");
      }
      return HostResult::success();  // already swapped out
    }
    e = it->second;
  }
  drop(e, "evict");
  return HostResult::success();
}

// Swaps one resident entry to disk: waits out any in-flight advance (its
// checkpoint must land before the memory goes away — though even that is
// belt-and-braces, since the answers.log alone can rebuild the state), then
// detaches the entry under both locks so no new advance can start on it.
void SessionHost::drop(const std::shared_ptr<SessionEntry>& e,
                       const char* reason) {
  for (;;) {
    {
      const util::MutexLock lk(e->mu);
      e->cv.wait(e->mu, [&]() REQUIRES(e->mu) {
        return !e->advancing || e->detached;
      });
      if (e->detached) return;  // someone else swapped it
    }
    // mu_ before e->mu: the documented lock order (docs/CONCURRENCY.md).
    const util::MutexLock host(mu_);
    const util::MutexLock lk(e->mu);
    if (e->detached) return;
    if (e->advancing) continue;  // an answer slipped in; wait again
    e->detached = true;
    residents_.erase(e->params.id);
    ++stats_.swaps;
    stats_.sessions_resident = static_cast<long>(residents_.size());
    break;
  }
  e->cv.notify_all();
  config_.obs.count("serve.swaps");
  config_.obs.gauge("serve.sessions_active",
                    static_cast<double>(stats().sessions_resident));
  if (config_.obs.tracing()) {
    obs::TraceEvent ev("session_swap");
    ev.str("session", e->params.id).str("reason", reason);
    config_.obs.emit(ev);
  }
}

// LRU bound: while too many sessions are resident, swap out the
// least-recently-touched one that is neither mid-advance nor the newest
// touch (evicting the entry the current request just pulled in would
// livelock a tiny --max-active against itself).
void SessionHost::enforce_cap() {
  if (config_.max_active <= 0) return;
  for (;;) {
    std::shared_ptr<SessionEntry> victim;
    bool retry = false;
    {
      const util::MutexLock host(mu_);
      if (static_cast<int>(residents_.size()) <= config_.max_active) return;
      std::uint64_t oldest = UINT64_MAX;
      std::uint64_t newest = 0;
      for (const auto& [id, entry] : residents_) {
        newest = std::max(newest, entry->lru);
      }
      for (const auto& [id, entry] : residents_) {
        if (entry->lru == newest) continue;
        const util::MutexLock lk(entry->mu);
        if (entry->advancing) continue;
        if (entry->lru < oldest) {
          oldest = entry->lru;
          victim = entry;
        }
      }
      if (victim == nullptr) return;  // everything is computing; retry later
      {
        const util::MutexLock lk(victim->mu);
        if (victim->advancing) {
          retry = true;  // started advancing since selection
        } else {
          victim->detached = true;
          residents_.erase(victim->params.id);
          ++stats_.swaps;
          stats_.sessions_resident = static_cast<long>(residents_.size());
        }
      }
    }
    if (retry) continue;
    victim->cv.notify_all();
    config_.obs.count("serve.swaps");
    config_.obs.gauge("serve.sessions_active",
                      static_cast<double>(stats().sessions_resident));
    if (config_.obs.tracing()) {
      obs::TraceEvent ev("session_swap");
      ev.str("session", victim->params.id).str("reason", "lru");
      config_.obs.emit(ev);
    }
  }
}

HostResult SessionHost::inspect(const std::string& id, SessionView* view) {
  {
    const util::MutexLock lk(mu_);
    const auto it = residents_.find(id);
    if (it != residents_.end()) {
      const util::MutexLock elk(it->second->mu);
      *view = view_of(*it->second);
      return HostResult::success();
    }
  }
  // Disk-only view: never rehydrates.
  const std::filesystem::path dir = root_ / id;
  std::error_code ec;
  if (!std::filesystem::exists(dir / "session.json", ec)) {
    return HostResult::failure(kErrUnknownSession,
                               "unknown session '" + id + "'");
  }
  view->id = id;
  view->resident = false;
  view->phase = SessionPhase::kSwapped;
  view->answers = 0;
  {
    // Count only newline-terminated records, matching load_answer_log: a
    // torn trailing fragment was never acked and will not be replayed.
    std::ifstream in(dir / "answers.log", std::ios::binary);
    if (in) {
      const std::string content((std::istreambuf_iterator<char>(in)),
                                std::istreambuf_iterator<char>());
      std::size_t pos = 0;
      for (;;) {
        const std::size_t nl = content.find('\n', pos);
        if (nl == std::string::npos) break;
        if (nl > pos) ++view->answers;
        pos = nl + 1;
      }
    }
  }
  try {
    const std::optional<obs::JsonObject> done =
        read_flat_json_file(dir / "done.json");
    if (done) {
      view->phase = SessionPhase::kDone;
      view->status = json_string_field(*done, "status");
      view->objective = json_string_field(*done, "objective");
      view->iterations = static_cast<int>(json_int_field(*done, "iterations"));
    }
  } catch (const std::exception& ex) {
    return HostResult::failure(kErrInternal, ex.what());
  }
  return HostResult::success();
}

}  // namespace compsynth::serve
