#include <gtest/gtest.h>

#include "sketch/ast.h"
#include "sketch/eval.h"
#include "sketch/library.h"
#include "sketch/parser.h"
#include "sketch/printer.h"
#include "sketch/typecheck.h"

namespace compsynth::sketch {
namespace {

// --- AST construction -------------------------------------------------------

TEST(Ast, HoleGridValues) {
  HoleSpec h{.name = "x", .lo = 0, .step = 5, .count = 41};
  EXPECT_DOUBLE_EQ(h.value_at(0), 0);
  EXPECT_DOUBLE_EQ(h.value_at(10), 50);
  EXPECT_DOUBLE_EQ(h.max_value(), 200);
  EXPECT_THROW(h.value_at(41), std::out_of_range);
  EXPECT_THROW(h.value_at(-1), std::out_of_range);
}

TEST(Ast, NearestIndexSnapsAndClamps) {
  HoleSpec h{.name = "x", .lo = 0, .step = 5, .count = 41};
  EXPECT_EQ(h.nearest_index(50), 10);
  EXPECT_EQ(h.nearest_index(51.9), 10);
  EXPECT_EQ(h.nearest_index(52.6), 11);
  EXPECT_EQ(h.nearest_index(-100), 0);
  EXPECT_EQ(h.nearest_index(1e9), 40);
}

TEST(Ast, SketchRejectsDuplicateNames) {
  EXPECT_THROW(Sketch("s", {{"x", 0, 1}, {"x", 0, 1}}, {}, metric(0)),
               std::invalid_argument);
  EXPECT_THROW(
      Sketch("s", {{"x", 0, 1}}, {{"x", 0, 1, 2}}, metric(0)),
      std::invalid_argument);
}

TEST(Ast, SketchRejectsInvertedMetricRange) {
  EXPECT_THROW(Sketch("s", {{"x", 5, 1}}, {}, metric(0)), std::invalid_argument);
}

TEST(Ast, SketchRejectsEmptyGrid) {
  EXPECT_THROW(Sketch("s", {{"x", 0, 1}}, {{"h", 0, 1, 0}}, metric(0)),
               std::invalid_argument);
}

TEST(Ast, CandidateSpaceSizeIsGridProduct) {
  const Sketch& s = swan_sketch();
  EXPECT_EQ(s.candidate_space_size(), 11 * 41 * 11 * 11);
}

TEST(Ast, ValidAssignmentChecksArityAndBounds) {
  const Sketch& s = swan_sketch();
  EXPECT_TRUE(s.valid_assignment(swan_target()));
  HoleAssignment bad;
  bad.index = {0, 0, 0};
  EXPECT_FALSE(s.valid_assignment(bad));
  bad.index = {0, 0, 0, 99};
  EXPECT_FALSE(s.valid_assignment(bad));
}

// --- Type checking ----------------------------------------------------------

TEST(Typecheck, RejectsBooleanBody) {
  EXPECT_THROW(Sketch("s", {{"x", 0, 1}}, {}, compare(CmpOp::kLt, metric(0), constant(1))),
               TypeError);
}

TEST(Typecheck, RejectsArithmeticOnBooleans) {
  EXPECT_THROW(
      Sketch("s", {{"x", 0, 1}}, {},
             add(bool_constant(true), constant(1))),
      TypeError);
}

TEST(Typecheck, RejectsNumericCondition) {
  EXPECT_THROW(Sketch("s", {{"x", 0, 1}}, {}, ite(constant(1), metric(0), metric(0))),
               TypeError);
}

TEST(Typecheck, RejectsOutOfRangeReferences) {
  EXPECT_THROW(Sketch("s", {{"x", 0, 1}}, {}, metric(3)), TypeError);
  EXPECT_THROW(Sketch("s", {{"x", 0, 1}}, {}, hole(0)), TypeError);
}

// --- Evaluation --------------------------------------------------------------

TEST(Eval, SwanTargetMatchesPaperExamples) {
  // Fig. 2b: f(t, l) = if t >= 1 && l <= 50 then t - 1*t*l + 1000
  //                    else t - 5*t*l
  const Sketch& s = swan_sketch();
  const HoleAssignment target = swan_target();
  // Satisfying scenario (5, 10): 5 - 5*10 + 1000 = 955.
  EXPECT_DOUBLE_EQ(eval(s, target, std::vector<double>{5, 10}), 955);
  // Unsatisfying scenario (2, 100): 2 - 5*2*100 = -998.
  EXPECT_DOUBLE_EQ(eval(s, target, std::vector<double>{2, 100}), -998);
  // The paper's preference edge: f(2,100) > f(5,10) is FALSE for the target;
  // the target prefers (5,10).
  EXPECT_GT(eval(s, target, std::vector<double>{5, 10}),
            eval(s, target, std::vector<double>{2, 100}));
}

TEST(Eval, BoundaryBelongsToSatisfyingRegion) {
  const Sketch& s = swan_sketch();
  const HoleAssignment target = swan_target();  // thresholds (1, 50)
  // Exactly at both thresholds: satisfied (>= and <= are inclusive).
  EXPECT_DOUBLE_EQ(eval(s, target, std::vector<double>{1, 50}),
                   1 - 1.0 * 1 * 50 + 1000);
  // Just outside in latency.
  EXPECT_DOUBLE_EQ(eval(s, target, std::vector<double>{1, 50.0001}),
                   1 - 5.0 * 1 * 50.0001);
}

TEST(Eval, MinMaxAndDivision) {
  const Sketch s("t", {{"x", 0, 10}}, {},
                 binary(BinOp::kMin, metric(0),
                        binary(BinOp::kDiv, constant(10), constant(4))));
  EXPECT_DOUBLE_EQ(eval(s, HoleAssignment{}, std::vector<double>{1}), 1);
  EXPECT_DOUBLE_EQ(eval(s, HoleAssignment{}, std::vector<double>{9}), 2.5);
}

TEST(Eval, DivisionByZeroThrows) {
  const Sketch s("t", {{"x", 0, 10}}, {},
                 binary(BinOp::kDiv, constant(1), metric(0)));
  EXPECT_THROW(eval(s, HoleAssignment{}, std::vector<double>{0}), EvalError);
}

TEST(Eval, ArityMismatchThrows) {
  const Sketch& s = swan_sketch();
  EXPECT_THROW(eval(s, swan_target(), std::vector<double>{1}), EvalError);
}

// --- Parser -------------------------------------------------------------------

TEST(Parser, ParsesSwanSketchShape) {
  const Sketch& s = swan_sketch();
  EXPECT_EQ(s.name(), "swan");
  ASSERT_EQ(s.metrics().size(), 2u);
  EXPECT_EQ(s.metrics()[0].name, "throughput");
  EXPECT_DOUBLE_EQ(s.metrics()[1].hi, 200);
  ASSERT_EQ(s.holes().size(), 4u);
  EXPECT_EQ(s.hole_index("slope2"), 3u);
  EXPECT_EQ(s.metric_index("latency"), 1u);
  EXPECT_EQ(s.metric_index("nope"), Sketch::npos);
}

TEST(Parser, OperatorPrecedence) {
  const Sketch s = parse_sketch("sketch t(x in [0,10]) { 1 + 2*x - 3 }");
  // 1 + (2*x) - 3 at x=5 -> 8.
  EXPECT_DOUBLE_EQ(eval(s, HoleAssignment{}, std::vector<double>{5}), 8);
}

TEST(Parser, UnaryMinusBindsTighterThanMul) {
  const Sketch s = parse_sketch("sketch t(x in [0,10]) { -x*2 }");
  EXPECT_DOUBLE_EQ(eval(s, HoleAssignment{}, std::vector<double>{3}), -6);
}

TEST(Parser, BooleanPrecedenceAndIte) {
  const Sketch s = parse_sketch(
      "sketch t(x in [0,10], y in [0,10]) {"
      "  if x >= 1 && y <= 2 || x >= 9 then 1 else 0 }");
  EXPECT_DOUBLE_EQ(eval(s, HoleAssignment{}, std::vector<double>{1, 2}), 1);
  EXPECT_DOUBLE_EQ(eval(s, HoleAssignment{}, std::vector<double>{1, 3}), 0);
  EXPECT_DOUBLE_EQ(eval(s, HoleAssignment{}, std::vector<double>{9.5, 9}), 1);
}

TEST(Parser, MinMaxCalls) {
  const Sketch s = parse_sketch("sketch t(x in [0,10]) { max(min(x, 5), 2) }");
  EXPECT_DOUBLE_EQ(eval(s, HoleAssignment{}, std::vector<double>{0}), 2);
  EXPECT_DOUBLE_EQ(eval(s, HoleAssignment{}, std::vector<double>{3}), 3);
  EXPECT_DOUBLE_EQ(eval(s, HoleAssignment{}, std::vector<double>{8}), 5);
}

TEST(Parser, CommentsAndScientificNumbers) {
  const Sketch s = parse_sketch(
      "# leading comment\n"
      "sketch t(x in [0, 1e2]) { x * 2.5e-1 } # trailing");
  EXPECT_DOUBLE_EQ(s.metrics()[0].hi, 100);
  EXPECT_DOUBLE_EQ(eval(s, HoleAssignment{}, std::vector<double>{8}), 2);
}

TEST(Parser, ReportsPositionOnError) {
  try {
    parse_sketch("sketch t(x in [0,10]) { x + }");
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_EQ(e.line(), 1u);
    EXPECT_GT(e.column(), 20u);
  }
}

TEST(Parser, RejectsUnknownIdentifier) {
  EXPECT_THROW(parse_sketch("sketch t(x in [0,10]) { y }"), ParseError);
}

TEST(Parser, RejectsSingleAmpersand) {
  EXPECT_THROW(parse_sketch("sketch t(x in [0,1]) { if x>0 & x<1 then 1 else 0 }"),
               ParseError);
}

TEST(Parser, RejectsNonIntegerGridCount) {
  EXPECT_THROW(
      parse_sketch("sketch t(x in [0,1]) { hole h in grid(0, 1, 2.5); x }"),
      ParseError);
}

TEST(Parser, RejectsZeroStepMultiPointGrid) {
  EXPECT_THROW(
      parse_sketch("sketch t(x in [0,1]) { hole h in grid(0, 0, 3); x }"),
      ParseError);
}

TEST(Parser, StandaloneExprUsesSketchScope) {
  const Sketch& s = swan_sketch();
  const ExprPtr e = parse_expr("throughput - 2*latency", s);
  EXPECT_DOUBLE_EQ(eval_numeric(*e, std::vector<double>{10, 3},
                                std::vector<double>{}),
                   4);
}

TEST(Parser, StandaloneExprValidatesChooseSelectorGrid) {
  // swan's tp_thrsh is grid(0, 1, 11): canonical for an 11-arm choose but
  // not for a 2-arm one. The standalone-expression path must apply the same
  // selector-grid validation as the Sketch constructor.
  const Sketch& s = swan_sketch();
  EXPECT_THROW(parse_expr("choose tp_thrsh { throughput, latency }", s),
               TypeError);
  // A canonical selector is fine.
  EXPECT_NO_THROW(
      parse_expr("choose slope1 { 0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10 }", s));
}

TEST(Parser, NegativeGridAndRangeBounds) {
  const Sketch s = parse_sketch(
      "sketch t(x in [-5, 5]) { hole h in grid(-2, 1, 5); x + h }");
  EXPECT_DOUBLE_EQ(s.metrics()[0].lo, -5);
  EXPECT_DOUBLE_EQ(s.holes()[0].value_at(0), -2);
  EXPECT_DOUBLE_EQ(s.holes()[0].value_at(4), 2);
}

// --- Printer ------------------------------------------------------------------

TEST(Printer, RoundTripsSwanSketch) {
  const Sketch& original = swan_sketch();
  const std::string text = print_sketch(original);
  const Sketch reparsed = parse_sketch(text);
  EXPECT_EQ(print_sketch(reparsed), text);
  // Same semantics on a probe point.
  const HoleAssignment t = swan_target();
  EXPECT_DOUBLE_EQ(eval(original, t, std::vector<double>{3, 42}),
                   eval(reparsed, t, std::vector<double>{3, 42}));
}

TEST(Printer, ParenthesizesOnlyWhereNeeded) {
  const Sketch s = parse_sketch("sketch t(x in [0,10]) { (x + 1) * (x - 2) }");
  const std::string body = print_expr(*s.body(), s);
  EXPECT_EQ(body, "(x + 1)*(x - 2)");
}

TEST(Printer, RightAssociativeSubtractionKeepsParens) {
  const Sketch s = parse_sketch("sketch t(x in [0,10]) { x - (x - 1) }");
  EXPECT_EQ(print_expr(*s.body(), s), "x - (x - 1)");
  const Sketch s2 = parse_sketch("sketch t(x in [0,10]) { x - x - 1 }");
  EXPECT_EQ(print_expr(*s2.body(), s2), "x - x - 1");
}

TEST(Printer, InstantiatedShowsHoleValues) {
  const std::string text =
      print_instantiated(swan_sketch(), swan_target());
  EXPECT_NE(text.find("throughput >= 1"), std::string::npos);
  EXPECT_NE(text.find("latency <= 50"), std::string::npos);
  EXPECT_NE(text.find("5*throughput*latency"), std::string::npos);
}

// --- Library ------------------------------------------------------------------

TEST(Library, AllBuiltinsParse) {
  EXPECT_EQ(swan_sketch().holes().size(), 4u);
  EXPECT_EQ(swan_multi_region_sketch().holes().size(), 7u);
  EXPECT_EQ(abr_qoe_sketch().metrics().size(), 4u);
  EXPECT_EQ(homenet_sketch().metrics().size(), 3u);
}

TEST(Library, TargetVariantsSnapToGrid) {
  const HoleAssignment a = swan_target_with(2, 35, 3, 4);
  const Sketch& s = swan_sketch();
  EXPECT_DOUBLE_EQ(s.holes()[0].value_at(a.index[0]), 2);
  EXPECT_DOUBLE_EQ(s.holes()[1].value_at(a.index[1]), 35);
  EXPECT_DOUBLE_EQ(s.holes()[2].value_at(a.index[2]), 3);
  EXPECT_DOUBLE_EQ(s.holes()[3].value_at(a.index[3]), 4);
}

// --- Property-style sweep: printer/parser round trip over grammar samples ----

class RoundTrip : public ::testing::TestWithParam<const char*> {};

TEST_P(RoundTrip, PrintParsePrintIsStable) {
  const Sketch s = parse_sketch(GetParam());
  const std::string once = print_sketch(s);
  const std::string twice = print_sketch(parse_sketch(once));
  EXPECT_EQ(once, twice);
}

INSTANTIATE_TEST_SUITE_P(
    GrammarSamples, RoundTrip,
    ::testing::Values(
        "sketch a(x in [0,1]) { x }",
        "sketch b(x in [0,1]) { -x + 2 }",
        "sketch c(x in [0,1], y in [0,1]) { if x > y then x else y }",
        "sketch d(x in [0,1]) { hole h in grid(0, 0.5, 3); x*h + h }",
        "sketch e(x in [0,1]) { min(x, max(1 - x, 0.5)) }",
        "sketch f(x in [0,1], y in [0,2]) { if !(x >= y) && true then x/y else 0 }",
        "sketch g(x in [0,1]) { if x == 0.5 || x != 0.25 then 1 else 2 }",
        "sketch h(x in [0,4]) { x - (x - 1) - 2*(x + 3) }"));

}  // namespace
}  // namespace compsynth::sketch
