// Preference-graph persistence: lossless round trips, malformed-input
// rejection, and session resume through the synthesizer.
#include <gtest/gtest.h>

#include "oracle/ground_truth.h"
#include "pref/serialize.h"
#include "sketch/library.h"
#include "solver/equivalence.h"
#include "synth/synthesizer.h"

namespace compsynth::pref {
namespace {

PreferenceGraph sample_graph() {
  PreferenceGraph g;
  const VertexId a = g.intern(Scenario{{5, 10}});
  const VertexId b = g.intern(Scenario{{2, 100}});
  const VertexId c = g.intern(Scenario{{0.1, 0.25}});
  g.add_preference(a, b, 2.5);
  g.add_preference(a, c);
  g.add_tie(b, c);
  return g;
}

TEST(Serialize, RoundTripIsLossless) {
  const PreferenceGraph g = sample_graph();
  const std::string text = serialize(g);
  const PreferenceGraph g2 = deserialize(text);
  ASSERT_EQ(g2.vertex_count(), g.vertex_count());
  for (VertexId v = 0; v < g.vertex_count(); ++v) {
    EXPECT_EQ(g2.scenario(v), g.scenario(v));
  }
  ASSERT_EQ(g2.edges().size(), g.edges().size());
  for (std::size_t i = 0; i < g.edges().size(); ++i) {
    EXPECT_EQ(g2.edges()[i], g.edges()[i]);
  }
  EXPECT_EQ(g2.ties(), g.ties());
  // Idempotent second round trip.
  EXPECT_EQ(serialize(g2), text);
}

TEST(Serialize, ExactDoublesSurvive) {
  PreferenceGraph g;
  g.intern(Scenario{{0.1, 1.0 / 3.0, 1e-17, 123456789.123456789}});
  const PreferenceGraph g2 = deserialize(serialize(g));
  EXPECT_EQ(g2.scenario(0), g.scenario(0));  // bitwise-equal doubles
}

TEST(Serialize, CommentsAndBlankLinesIgnored) {
  const PreferenceGraph g = deserialize(
      "# header\n"
      "\n"
      "scenario 0 1 2\n"
      "# interlude\n"
      "scenario 1 3 4\n"
      "prefer 0 1 1\n");
  EXPECT_EQ(g.vertex_count(), 2u);
  EXPECT_EQ(g.edges().size(), 1u);
}

TEST(Serialize, RejectsMalformedInput) {
  EXPECT_THROW(deserialize("bogus 1 2\n"), SerializeError);
  EXPECT_THROW(deserialize("scenario 1 1 2\n"), SerializeError);  // non-dense id
  EXPECT_THROW(deserialize("scenario 0\n"), SerializeError);      // no metrics
  EXPECT_THROW(deserialize("scenario 0 1 x\n"), SerializeError);  // bad number
  EXPECT_THROW(deserialize("scenario 0 1\nprefer 0 7 1\n"), SerializeError);
  EXPECT_THROW(deserialize("scenario 0 1\nprefer 0 0 1\n"), SerializeError);
  EXPECT_THROW(deserialize("scenario 0 1\ntie 0 9\n"), SerializeError);
  EXPECT_THROW(deserialize("scenario 0 1\nscenario 1 1\nprefer 0 1\n"),
               SerializeError);  // missing weight
}

TEST(Serialize, CycleRequiresInconsistentMode) {
  const std::string text =
      "scenario 0 1\n"
      "scenario 1 2\n"
      "prefer 0 1 1\n"
      "prefer 1 0 1\n";
  EXPECT_THROW(deserialize(text, false), SerializeError);
  const PreferenceGraph g = deserialize(text, true);
  EXPECT_TRUE(g.has_cycle());
}

TEST(Serialize, EmptyGraphRoundTrips) {
  const PreferenceGraph g;
  const PreferenceGraph g2 = deserialize(serialize(g));
  EXPECT_EQ(g2.vertex_count(), 0u);
  EXPECT_TRUE(g2.edges().empty());
  EXPECT_TRUE(g2.ties().empty());
  EXPECT_EQ(serialize(g2), serialize(g));
}

TEST(Serialize, TransitiveEdgesSurviveExactly) {
  // a > b > c plus the explicit transitive closure edge a > c: serialization
  // must preserve the edge *list*, not just the implied partial order.
  PreferenceGraph g;
  const VertexId a = g.intern(Scenario{{3, 1}});
  const VertexId b = g.intern(Scenario{{2, 1}});
  const VertexId c = g.intern(Scenario{{1, 1}});
  g.add_preference(a, b);
  g.add_preference(b, c);
  g.add_preference(a, c, 0.5);  // redundant but weighted differently
  const PreferenceGraph g2 = deserialize(serialize(g));
  ASSERT_EQ(g2.edges().size(), 3u);
  for (std::size_t i = 0; i < g.edges().size(); ++i) {
    EXPECT_EQ(g2.edges()[i], g.edges()[i]);
  }
}

TEST(Serialize, UnicodeScenarioLabelsRoundTrip) {
  PreferenceGraph g;
  const VertexId a = g.intern(Scenario{{5, 10}});
  const VertexId b = g.intern(Scenario{{2, 100}});
  const VertexId c = g.intern(Scenario{{1, 1}});
  g.set_label(a, "peak-hour");
  g.set_label(b, "流量高峰 (müßig) 🌐");
  // c stays unlabelled; labels are annotations, not identity.
  const std::string text = serialize(g);
  const PreferenceGraph g2 = deserialize(text);
  EXPECT_EQ(g2.scenario(a).label, "peak-hour");
  EXPECT_EQ(g2.scenario(b).label, "流量高峰 (müßig) 🌐");
  EXPECT_TRUE(g2.scenario(c).label.empty());
  EXPECT_EQ(serialize(g2), text);
  // Labelled and unlabelled scenarios with equal metrics are the same vertex.
  EXPECT_EQ(g2.scenario(a), g.scenario(a));
}

TEST(Serialize, RejectsMalformedLabels) {
  EXPECT_THROW(deserialize("scenario 0 1 2\nlabel 7 x\n"), SerializeError);
  EXPECT_THROW(deserialize("scenario 0 1 2\nlabel 0\n"), SerializeError);
  EXPECT_THROW(deserialize("label 0 early\nscenario 0 1 2\n"), SerializeError);
}

TEST(Serialize, SynthesizerResumesFromSavedSession) {
  // Phase 1: run a budgeted session, save the graph mid-flight.
  const auto& sk = sketch::swan_sketch();
  const auto target = sketch::swan_target();
  synth::SynthesisConfig config;
  config.seed = 321;
  config.max_iterations = 6;  // interrupted early
  oracle::GroundTruthOracle user(sk, target, config.finder.tie_tolerance);
  synth::Synthesizer first = synth::make_grid_synthesizer(sk, config);
  const synth::SynthesisResult partial = first.run(user);
  ASSERT_EQ(partial.status, synth::SynthesisStatus::kIterationLimit);
  const std::string saved = serialize(partial.graph);

  // Phase 2: resume in a new synthesizer from the saved graph.
  synth::SynthesisConfig resume_config;
  resume_config.seed = 322;
  synth::Synthesizer second = synth::make_grid_synthesizer(sk, resume_config);
  const synth::SynthesisResult resumed = second.run(user, deserialize(saved));
  ASSERT_EQ(resumed.status, synth::SynthesisStatus::kConverged);
  ASSERT_TRUE(resumed.objective.has_value());
  EXPECT_TRUE(solver::ranking_equivalent(sk, *resumed.objective, target,
                                         resume_config.finder));

  // Resume must not repeat the up-front ranking: fewer total interactions
  // than a cold run with the same convergence.
  EXPECT_GT(resumed.graph.vertex_count(), partial.graph.vertex_count());
}

}  // namespace
}  // namespace compsynth::pref
