// User models for comparative synthesis.
//
// The paper evaluates with "an oracle playing the role of an ideal user"
// (§4.3): it evaluates scenarios with the latent ground-truth objective and
// answers preference queries accordingly. This header defines the oracle
// interface; concrete oracles (ground truth, noisy, indifferent,
// interactive) live in the sibling headers.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <span>
#include <string>
#include <vector>

#include "pref/scenario.h"
#include "util/fault.h"

namespace compsynth::obs {
struct RunContext;
}

namespace compsynth::oracle {

/// Thrown by a user model when an answer does not arrive in time (a remote
/// service stalls, an injected fault fires). Oracle::compare / rank catch it
/// and retry per the configured RetryPolicy before letting it escape.
class OracleTimeout : public util::TransientError {
 public:
  explicit OracleTimeout(const std::string& what) : TransientError(what) {}
};

/// Answer to a two-scenario comparison.
enum class Preference {
  kFirst,   // the first scenario is preferred
  kSecond,  // the second scenario is preferred
  kTie,     // indistinguishable / incomparable (partial ranking, §4.2)
};

/// A (partial) ranking over a scenario set, expressed as index pairs.
struct RankingResponse {
  struct RankedPair {
    std::size_t better = 0;
    std::size_t worse = 0;
  };
  struct TiePair {
    std::size_t a = 0;
    std::size_t b = 0;
  };
  std::vector<RankedPair> preferences;
  std::vector<TiePair> ties;
};

/// Abstract user. Non-virtual public API counts interactions (the paper's
/// cost metric for the human in the loop); subclasses implement do_compare /
/// do_rank.
class Oracle {
 public:
  virtual ~Oracle() = default;

  Oracle(const Oracle&) = delete;
  Oracle& operator=(const Oracle&) = delete;

  /// Compares two scenarios. Counts as one interaction.
  Preference compare(const pref::Scenario& a, const pref::Scenario& b);

  /// Ranks a set of scenarios (e.g. the initial random batch). Counts as one
  /// interaction regardless of set size — the user answers in one sitting.
  RankingResponse rank(std::span<const pref::Scenario> scenarios);

  long comparisons() const { return comparisons_; }
  long rankings() const { return rankings_; }

  /// Retry policy for transient failures: a do_compare / do_rank that throws
  /// OracleTimeout is retried (with backoff) up to max_attempts times; each
  /// fault and retry is surfaced as a "fault" / "retry" trace event and the
  /// oracle.timeouts / oracle.retries counters. After the last attempt the
  /// exception escapes to the caller. Defaults to 3 attempts.
  void set_retry_policy(util::RetryPolicy policy) { retry_ = policy; }
  const util::RetryPolicy& retry_policy() const { return retry_; }

  /// Observability: when set (non-owning; may be null), every compare/rank
  /// call emits an "oracle_query" trace event and bumps the oracle.*
  /// counters. The synthesizer wires this up for the duration of a run and
  /// clears it before returning.
  void set_run_context(const obs::RunContext* ctx) { obs_ = ctx; }

  /// Durable-session persistence (docs/PERSISTENCE.md): writes the
  /// interaction counters plus any subclass state (RNG streams of noisy /
  /// indifferent variants, nested inner oracles) so a resumed session's user
  /// model continues the identical answer stream. restore_state throws
  /// std::invalid_argument / SerializeError-style exceptions on malformed
  /// input and expects an oracle constructed with the same topology.
  void save_state(std::ostream& out) const;
  std::string save_state() const;
  void restore_state(std::istream& in);
  void restore_state(const std::string& state);

 protected:
  Oracle() = default;

  virtual Preference do_compare(const pref::Scenario& a,
                                const pref::Scenario& b) = 0;

  /// Default ranking: chain the scenarios via insertion using do_compare.
  /// Ground-truth oracles override this with an exact sort.
  virtual RankingResponse do_rank(std::span<const pref::Scenario> scenarios);

  /// Subclass hooks for save_state/restore_state: append/consume extra state
  /// (strictly in the same order). Stateless oracles keep the defaults.
  virtual void do_save_state(std::ostream& out) const;
  virtual void do_restore_state(std::istream& in);

 private:
  long comparisons_ = 0;
  long rankings_ = 0;
  util::RetryPolicy retry_;
  const obs::RunContext* obs_ = nullptr;
};

}  // namespace compsynth::oracle
